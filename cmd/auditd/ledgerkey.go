package main

// Ledger signing-key management. The seed file holds the 32-byte
// ed25519 seed hex-encoded; the derived public key is mirrored to
// <file>.pub so operators can hand it to verifiers without ever
// touching the private half (purposectl verify-proof -pubkey-file).

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// loadLedgerKey reads (or, if absent, generates) the signing seed.
// An empty path means an ephemeral key: fine for experiments, useless
// across restarts — crash recovery would re-sign with a different key
// and every saved root would stop verifying — so it is refused when a
// seed file is expected to persist and merely warned about otherwise.
func loadLedgerKey(log *slog.Logger, path string) (ed25519.PrivateKey, error) {
	if path == "" {
		seed := make([]byte, ed25519.SeedSize)
		if _, err := rand.Read(seed); err != nil {
			return nil, fmt.Errorf("generating ledger key: %w", err)
		}
		key := ed25519.NewKeyFromSeed(seed)
		log.Warn("no -ledger-key: using an ephemeral signing key; roots will not verify across restarts",
			"public_key", hex.EncodeToString(key.Public().(ed25519.PublicKey)))
		return key, nil
	}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		seed, err := hex.DecodeString(strings.TrimSpace(string(data)))
		if err != nil || len(seed) != ed25519.SeedSize {
			return nil, fmt.Errorf("ledger key %s: want %d hex-encoded bytes", path, ed25519.SeedSize)
		}
		key := ed25519.NewKeyFromSeed(seed)
		if err := writePub(path, key); err != nil {
			return nil, err
		}
		return key, nil
	case os.IsNotExist(err):
		seed := make([]byte, ed25519.SeedSize)
		if _, err := rand.Read(seed); err != nil {
			return nil, fmt.Errorf("generating ledger key: %w", err)
		}
		if err := os.WriteFile(path, []byte(hex.EncodeToString(seed)+"\n"), 0o600); err != nil {
			return nil, fmt.Errorf("saving ledger key: %w", err)
		}
		key := ed25519.NewKeyFromSeed(seed)
		if err := writePub(path, key); err != nil {
			return nil, err
		}
		log.Info("ledger signing key generated", "path", path,
			"public_key", hex.EncodeToString(key.Public().(ed25519.PublicKey)))
		return key, nil
	default:
		return nil, fmt.Errorf("reading ledger key: %w", err)
	}
}

// writePub mirrors the public key next to the seed file.
func writePub(path string, key ed25519.PrivateKey) error {
	pub := hex.EncodeToString(key.Public().(ed25519.PublicKey))
	if err := os.WriteFile(path+".pub", []byte(pub+"\n"), 0o644); err != nil {
		return fmt.Errorf("saving ledger public key: %w", err)
	}
	return nil
}
