package main

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
}

// TestLoadLedgerKeyRoundTrip: a generated seed file loads back to the
// same key, and the public half is mirrored alongside for verifiers.
func TestLoadLedgerKeyRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.key")
	k1, err := loadLedgerKey(testLogger(), path)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := loadLedgerKey(testLogger(), path)
	if err != nil {
		t.Fatal(err)
	}
	if !k1.Equal(k2) {
		t.Error("reloaded key differs from the generated one")
	}
	pubData, err := os.ReadFile(path + ".pub")
	if err != nil {
		t.Fatalf("public key file not written: %v", err)
	}
	pub, err := hex.DecodeString(strings.TrimSpace(string(pubData)))
	if err != nil || len(pub) != ed25519.PublicKeySize {
		t.Fatalf("public key file %q is not a hex ed25519 key", pubData)
	}
	if !k1.Public().(ed25519.PublicKey).Equal(ed25519.PublicKey(pub)) {
		t.Error("mirrored public key does not match the seed")
	}
	if info, err := os.Stat(path); err != nil || info.Mode().Perm() != 0o600 {
		t.Errorf("seed file mode %v, want 0600", info.Mode().Perm())
	}
}

// TestLoadLedgerKeyRejectsGarbage: a malformed seed file is a loud
// error, never silently regenerated — that would fork the root chain.
func TestLoadLedgerKeyRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.key")
	if err := os.WriteFile(path, []byte("not-hex\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := loadLedgerKey(testLogger(), path); err == nil {
		t.Error("garbage seed file accepted")
	}
}

// TestLoadLedgerKeyEphemeral: no path yields a usable one-off key.
func TestLoadLedgerKeyEphemeral(t *testing.T) {
	k, err := loadLedgerKey(testLogger(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != ed25519.PrivateKeySize {
		t.Errorf("ephemeral key has %d bytes, want %d", len(k), ed25519.PrivateKeySize)
	}
}
