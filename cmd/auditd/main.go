// Command auditd serves the purpose-control analysis as a long-running
// HTTP service: audit entries stream in (NDJSON or CSV), are sharded by
// case across a pool of online monitors, and verdicts are queryable
// while the stream is still flowing. The live state checkpoints to disk
// periodically and on SIGTERM, so a restart resumes mid-case instead of
// losing history.
//
// Usage:
//
//	auditd -builtin hospital -addr :8443
//	auditd -proc treat.json:HT -proc trial.bpmn:CT [-policy pol.txt] \
//	       -shards 8 -queue 1024 \
//	       -checkpoint /var/lib/auditd/state.json -checkpoint-every 30s \
//	       [-addr-file /run/auditd.addr]
//
// Endpoints: POST /v1/events (ingest; 202, or 429 + Retry-After under
// backpressure), GET /v1/cases[?outcome=|purpose=|since=],
// GET /v1/cases/{id}, GET /v1/purposes, GET /v1/quarantine, /metrics
// (Prometheus text), /healthz, /readyz.
//
// -addr-file writes the actually bound address (useful with :0 in
// scripts). SIGINT/SIGTERM drain the shard queues, write a final
// checkpoint, and exit 0; startup or serve errors exit 2.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/server"
)

func main() {
	var (
		procs  cli.ProcList
		addr   = flag.String("addr", ":8443", "listen address (use :0 for an ephemeral port)")
		addrFS = flag.String("addr-file", "", "write the bound address to this file once listening")
		shards = flag.Int("shards", 8, "monitor shards (cases are hash-partitioned)")
		queue  = flag.Int("queue", 1024, "per-shard queue depth (full queue => 429 backpressure)")
		ckpt   = flag.String("checkpoint", "", "checkpoint file (restored on start, written periodically and on shutdown)")
		every  = flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval")
		pol    = flag.String("policy", "", "policy file (textual format; supplies the role hierarchy)")
		bltn   = flag.String("builtin", "", "use a built-in scenario: 'hospital' (Figures 1-4)")
		drain  = flag.Duration("drain-timeout", 30*time.Second, "max wait for queues to drain on shutdown")
	)
	flag.Var(&procs, "proc", cli.ProcUsage)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(log)
	if err := run(log, *addr, *addrFS, *shards, *queue, *ckpt, *every, *drain, *pol, *bltn, procs); err != nil {
		log.Error("auditd failed", "err", err)
		os.Exit(cli.ExitUsage)
	}
}

// buildRegistry assembles the registry and role hierarchy from the
// builtin scenario or the -proc/-policy bindings, exactly as purposectl
// does (shared loaders in internal/cli).
func buildRegistry(builtin, polFile string, procs []string) (*core.Registry, *policy.RoleHierarchy, error) {
	if builtin != "" {
		sc, err := cli.Builtin(builtin)
		if err != nil {
			return nil, nil, err
		}
		var roles *policy.RoleHierarchy
		if sc.Policy != nil {
			roles = sc.Policy.Roles
		}
		return sc.Registry, roles, nil
	}
	if len(procs) == 0 {
		return nil, nil, fmt.Errorf("no processes: use -proc or -builtin")
	}
	reg := core.NewRegistry()
	if err := cli.LoadProcs(reg, procs); err != nil {
		return nil, nil, err
	}
	var roles *policy.RoleHierarchy
	if polFile != "" {
		f, err := os.Open(polFile)
		if err != nil {
			return nil, nil, err
		}
		p, err := policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		roles = p.Roles
	}
	return reg, roles, nil
}

func run(log *slog.Logger, addr, addrFile string, shards, queue int, ckpt string, every, drainTimeout time.Duration, polFile, builtin string, procs []string) error {
	reg, roles, err := buildRegistry(builtin, polFile, procs)
	if err != nil {
		return err
	}

	srv := server.New(reg, core.NewChecker(reg, roles), server.Config{
		Shards:          shards,
		QueueDepth:      queue,
		CheckpointPath:  ckpt,
		CheckpointEvery: every,
		Logger:          log,
	})
	if err := srv.Start(); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String())
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		log.Info("signal received, draining")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Stop accepting HTTP first (waits for in-flight requests), then
	// drain the shard queues and write the final checkpoint.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	return srv.Shutdown(shutdownCtx)
}
