// Command auditd serves the purpose-control analysis as a long-running
// HTTP service: audit entries stream in (NDJSON or CSV), are sharded by
// case across a pool of online monitors, and verdicts are queryable
// while the stream is still flowing. The live state checkpoints to disk
// periodically and on SIGTERM, so a restart resumes mid-case instead of
// losing history.
//
// Usage:
//
//	auditd -builtin hospital -addr :8443
//	auditd -proc treat.json:HT -proc trial.bpmn:CT [-policy pol.txt] \
//	       -shards 8 -queue 1024 \
//	       -checkpoint /var/lib/auditd/state.json -checkpoint-every 30s \
//	       [-wal-dir /var/lib/auditd/wal] [-fsync always|interval|off] \
//	       [-wal-segment-bytes N] [-wal-failure failstop|shed] \
//	       [-addr-file /run/auditd.addr] \
//	       [-compiled] [-minimize] [-automata-dir /var/lib/auditd/automata] \
//	       [-binary-artifacts] [-binary-checkpoint] \
//	       [-ledger] [-ledger-key /var/lib/auditd/ledger.key] \
//	       [-ledger-batch 64] [-ledger-wait 500ms]
//
// -wal-dir enables the write-ahead ingest log (DESIGN.md §14): every
// entry is logged before dispatch, so acknowledged means durable and a
// kill -9 loses nothing — boot restores the checkpoint and replays the
// log tail. -fsync picks the durability policy (always = fsync per
// append; interval = background fsync, bounded loss window; off =
// page-cache only). -wal-failure picks the degradation when a log
// write fails: failstop (default) wedges all ingest and fails /readyz
// so the node is pulled; shed returns per-request 503s while queries
// keep serving.
//
// -compiled replays on ahead-of-time determinized purpose automata
// (DESIGN.md §11); purposes that cannot be compiled stay on the
// interpreter, per case. -minimize (implies -compiled) runs the
// Hopcroft minimization and alphabet-compaction pass on each automaton
// (DESIGN.md §13), shrinking the tables at no change in verdicts.
// -automata-dir (implies -compiled) is a content-addressed artifact
// cache: matching artifacts load instead of recompiling, fresh
// compiles are saved for the next boot. -binary-artifacts saves fresh
// compiles in the flat binary container format instead of gzip+JSON;
// loads auto-detect whichever format is present. -binary-checkpoint
// does the same for the periodic state snapshot: writes use the binary
// container, restore accepts either format (DESIGN.md §13).
//
// -ledger (requires -wal-dir) seals every WAL-appended entry into a
// tamper-evident Merkle ledger (DESIGN.md §15): batches of -ledger-batch
// entries (or a -ledger-wait timeout) close into ed25519-signed roots,
// each chained to its predecessor. GET /v1/proofs/{case} then serves a
// verdict with an inclusion proof any holder of the public key can
// check offline (purposectl verify-proof); GET /v1/roots serves the
// signed root chain. -ledger-key names the hex seed file (generated if
// absent; the public key is mirrored to <file>.pub).
//
// Endpoints: POST /v1/events (ingest; 202, or 429 + Retry-After under
// backpressure; honors a W3C traceparent header),
// GET /v1/cases[?outcome=|purpose=|since=], GET /v1/cases/{id},
// GET /v1/cases/{id}/explain (structured first-deviation explanation),
// GET /v1/traces[?trace_id=|case=] (recent spans), GET /v1/purposes,
// GET /v1/quarantine, GET /v1/status (deep operational view; what
// purposectl top renders), GET /v1/watch (SSE verdict transitions),
// GET /v1/proofs/{case} (verdict + Merkle inclusion proof),
// GET /v1/roots (signed root chain), /debug/flightrecorder (live
// flight-recorder ring), /metrics (Prometheus text), /healthz, /readyz.
//
// -stage-sample times the pipeline stages (decode, WAL append/fsync,
// queue wait, replay, ledger seal) on 1-in-N batches into the
// auditd_stage_latency_seconds histograms (DESIGN.md §17); traced
// requests are always timed. -flight-dir / -flight-events configure
// the per-shard flight recorder, whose ring dumps to a timestamped
// JSON file on shard panic, WAL failure, or SIGQUIT (the process keeps
// serving; SIGINT/SIGTERM still shut down).
//
// -debug-addr serves net/http/pprof on a second listener, kept off the
// public surface (profiles leak internals); -trace-buffer bounds the
// span ring behind /v1/traces.
//
// -addr-file writes the actually bound address (useful with :0 in
// scripts). SIGINT/SIGTERM drain the shard queues, write a final
// checkpoint, and exit 0; startup or serve errors exit 2.
package main

import (
	"context"
	"crypto/ed25519"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/policy"
	"repro/internal/server"
)

// options carries everything main parses from the command line into
// run; one struct instead of a positional-parameter avalanche.
type options struct {
	addr        string
	addrFile    string
	debugAddr   string
	shards      int
	queue       int
	traceBuffer int

	stageSample  int
	flightDir    string
	flightEvents int

	checkpoint       string
	checkpointEvery  time.Duration
	binaryCheckpoint bool
	drainTimeout     time.Duration

	walDir          string
	walFsync        string
	walSegmentBytes int64
	walFailure      string

	policyFile string
	builtin    string
	procs      []string

	compiled        bool
	automataDir     string
	minimize        bool
	binaryArtifacts bool

	ledger      bool
	ledgerKey   string
	ledgerBatch int
	ledgerWait  time.Duration
}

func main() {
	var (
		o        options
		procs    cli.ProcList
		comp     = flag.Bool("compiled", false, "replay on ahead-of-time compiled purpose automata (interpreter fallback per purpose)")
		segBytes = flag.Int64("wal-segment-bytes", 0, "rotate WAL segments at this size in bytes (0 = 64 MiB default)")
	)
	flag.StringVar(&o.addr, "addr", ":8443", "listen address (use :0 for an ephemeral port)")
	flag.StringVar(&o.addrFile, "addr-file", "", "write the bound address to this file once listening")
	flag.IntVar(&o.shards, "shards", 8, "monitor shards (cases are hash-partitioned)")
	flag.IntVar(&o.queue, "queue", 1024, "per-shard queue depth (full queue => 429 backpressure)")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "checkpoint file (restored on start, written periodically and on shutdown)")
	flag.DurationVar(&o.checkpointEvery, "checkpoint-every", 30*time.Second, "periodic checkpoint interval")
	flag.StringVar(&o.walDir, "wal-dir", "", "write-ahead ingest log directory (empty = no WAL; entries are durable before they are acknowledged)")
	flag.StringVar(&o.walFsync, "fsync", "", "WAL durability policy: always|interval|off (default interval)")
	flag.StringVar(&o.walFailure, "wal-failure", "", "WAL write-failure policy: failstop|shed (default failstop)")
	flag.StringVar(&o.policyFile, "policy", "", "policy file (textual format; supplies the role hierarchy)")
	flag.StringVar(&o.builtin, "builtin", "", "use a built-in scenario: 'hospital' (Figures 1-4)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "max wait for queues to drain on shutdown (expired: partial checkpoint, stragglers stay in the WAL)")
	flag.StringVar(&o.automataDir, "automata-dir", "", "artifact cache for compiled automata: load matching artifacts at boot, save fresh compiles (implies -compiled)")
	flag.BoolVar(&o.minimize, "minimize", false, "minimize compiled automata (Hopcroft + alphabet compaction; implies -compiled, changes artifact fingerprints)")
	flag.BoolVar(&o.binaryArtifacts, "binary-artifacts", false, "save fresh compiles in the flat binary artifact format (loads auto-detect either format)")
	flag.BoolVar(&o.binaryCheckpoint, "binary-checkpoint", false, "write checkpoints in the flat binary container format (restore auto-detects either format)")
	flag.BoolVar(&o.ledger, "ledger", false, "seal WAL-appended entries into a signed Merkle ledger (requires -wal-dir; serves /v1/proofs and /v1/roots)")
	flag.StringVar(&o.ledgerKey, "ledger-key", "", "ed25519 seed file for root signing (hex; created if absent, public key written alongside as <file>.pub)")
	flag.IntVar(&o.ledgerBatch, "ledger-batch", 0, "seal a ledger batch at this many entries (0 = default 64; 1 = a signed root per entry)")
	flag.DurationVar(&o.ledgerWait, "ledger-wait", 500*time.Millisecond, "seal a partial batch this long after its first entry (0 = size/shutdown cuts only)")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty = disabled)")
	flag.IntVar(&o.traceBuffer, "trace-buffer", 0, "spans held in the /v1/traces ring buffer (0 = default)")
	flag.IntVar(&o.stageSample, "stage-sample", 0, "time pipeline stages on 1-in-N batches (0 = default 64, 1 = every batch, negative = off; traced requests are always timed)")
	flag.StringVar(&o.flightDir, "flight-dir", "", "directory for flight-recorder dump files (empty = system temp dir)")
	flag.IntVar(&o.flightEvents, "flight-events", 0, "flight-recorder events held per shard ring (0 = default)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Var(&procs, "proc", cli.ProcUsage)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("auditd"))
		return
	}
	o.procs = procs
	o.walSegmentBytes = *segBytes
	o.compiled = *comp || o.automataDir != "" || o.minimize

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(log)
	if err := run(log, o); err != nil {
		log.Error("auditd failed", "err", err)
		os.Exit(cli.ExitUsage)
	}
}

// buildRegistry assembles the registry and role hierarchy from the
// builtin scenario or the -proc/-policy bindings, exactly as purposectl
// does (shared loaders in internal/cli).
func buildRegistry(builtin, polFile string, procs []string) (*core.Registry, *policy.RoleHierarchy, error) {
	if builtin != "" {
		sc, err := cli.Builtin(builtin)
		if err != nil {
			return nil, nil, err
		}
		var roles *policy.RoleHierarchy
		if sc.Policy != nil {
			roles = sc.Policy.Roles
		}
		return sc.Registry, roles, nil
	}
	if len(procs) == 0 {
		return nil, nil, fmt.Errorf("no processes: use -proc or -builtin")
	}
	reg := core.NewRegistry()
	if err := cli.LoadProcs(reg, procs); err != nil {
		return nil, nil, err
	}
	var roles *policy.RoleHierarchy
	if polFile != "" {
		f, err := os.Open(polFile)
		if err != nil {
			return nil, nil, err
		}
		p, err := policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return nil, nil, err
		}
		roles = p.Roles
	}
	return reg, roles, nil
}

// setupCompiled switches the checker onto the table-driven fast path:
// per purpose it probes the artifact cache by content address, installs
// a hit, compiles (and saves) on a miss, and leaves non-compilable
// purposes on the interpreter with the cause logged. Boot never fails
// because of the automata — the interpreter is always a valid engine.
func setupCompiled(log *slog.Logger, c *core.Checker, reg *core.Registry, dir string, binary bool) {
	c.UseCompiled = true
	for _, name := range reg.Purposes() {
		if dir != "" {
			fp, err := c.AutomatonFingerprint(name)
			if err != nil {
				log.Warn("automaton fingerprint", "purpose", name, "err", err)
				continue
			}
			if d, err := encode.LoadAutomaton(dir, fp); err == nil {
				if err := c.SetCompiled(name, d); err == nil {
					log.Info("automaton loaded", "purpose", name, "fingerprint", fp[:12], "states", len(d.States))
					continue
				}
			} else if !errors.Is(err, os.ErrNotExist) {
				log.Warn("automaton artifact unreadable, recompiling", "purpose", name, "err", err)
			}
		}
		d, err := c.EnsureCompiled(name)
		if err != nil {
			log.Warn("purpose stays interpreted", "purpose", name, "cause", err)
			continue
		}
		log.Info("automaton compiled", "purpose", name, "fingerprint", d.Fingerprint[:12], "states", len(d.States))
		if dir != "" {
			save := encode.SaveAutomaton
			if binary {
				save = encode.SaveAutomatonBinary
			}
			if path, err := save(dir, d); err != nil {
				log.Warn("automaton artifact not saved", "purpose", name, "err", err)
			} else {
				log.Info("automaton saved", "purpose", name, "path", path)
			}
		}
	}
}

// debugServer mounts net/http/pprof on its own mux (pprof only
// auto-registers on http.DefaultServeMux, which we never serve) and
// listens on addr in the background.
func debugServer(log *slog.Logger, addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Info("pprof listening", "addr", ln.Addr().String())
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Warn("pprof server stopped", "err", err)
		}
	}()
	return nil
}

func run(log *slog.Logger, o options) error {
	reg, roles, err := buildRegistry(o.builtin, o.policyFile, o.procs)
	if err != nil {
		return err
	}
	checker := core.NewChecker(reg, roles)
	checker.MinimizeAutomata = o.minimize
	if o.compiled {
		setupCompiled(log, checker, reg, o.automataDir, o.binaryArtifacts)
	}

	var ledgerKey ed25519.PrivateKey
	if o.ledger {
		if o.walDir == "" {
			return fmt.Errorf("-ledger requires -wal-dir: sealing covers the durable ingest path")
		}
		ledgerKey, err = loadLedgerKey(log, o.ledgerKey)
		if err != nil {
			return err
		}
	}

	srv := server.New(reg, checker, server.Config{
		Shards:           o.shards,
		QueueDepth:       o.queue,
		CheckpointPath:   o.checkpoint,
		CheckpointEvery:  o.checkpointEvery,
		BinaryCheckpoint: o.binaryCheckpoint,
		WALDir:           o.walDir,
		WALFsync:         o.walFsync,
		WALSegmentBytes:  o.walSegmentBytes,
		WALFailure:       o.walFailure,
		TraceBuffer:      o.traceBuffer,
		StageSample:      o.stageSample,
		FlightDir:        o.flightDir,
		FlightEvents:     o.flightEvents,
		LedgerKey:        ledgerKey,
		LedgerBatch:      o.ledgerBatch,
		LedgerWait:       o.ledgerWait,
		Logger:           log,
	})
	if err := srv.Start(); err != nil {
		return err
	}

	if o.debugAddr != "" {
		if err := debugServer(log, o.debugAddr); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String())
	if o.addrFile != "" {
		if err := os.WriteFile(o.addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			return err
		}
	}

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGQUIT dumps the flight recorder and keeps serving — the
	// kill -QUIT analogue of the JVM thread dump. Shutdown signals stay
	// on the NotifyContext above.
	quitc := make(chan os.Signal, 1)
	signal.Notify(quitc, syscall.SIGQUIT)
	defer signal.Stop(quitc)
	go func() {
		for range quitc {
			srv.DumpFlightRecorder("sigquit")
		}
	}()
	select {
	case <-ctx.Done():
		log.Info("signal received, draining")
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	}

	// Stop accepting HTTP first (waits for in-flight requests), then
	// drain the shard queues and write the final checkpoint.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Warn("http shutdown", "err", err)
	}
	return srv.Shutdown(shutdownCtx)
}
