package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCOWSSource(t *testing.T) {
	if err := run(`P.T!<> | P.T?<>.P.E!<> | P.E?<>`, "", "", "", "", 5, 100, 10, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunBuiltinWithDOT(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "ct.dot")
	if err := run("", "", "clinicaltrial", dot, "", 2, 1000, 20, false, "", ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "T91", "T95"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestRunTreatmentBudget(t *testing.T) {
	// The treatment process's observable LTS is finite; exploration
	// with a generous budget must complete without error.
	if err := run("", "", "treatment", "", "", 0, 3000, 10, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunProcFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	spec := `{
	  "name": "Mini", "pools": ["P"],
	  "elements": [
	    {"id":"S","kind":"start","pool":"P"},
	    {"id":"T1","kind":"task","pool":"P"},
	    {"id":"E","kind":"end","pool":"P"}
	  ],
	  "flows": [
	    {"from":"S","to":"T1","kind":"sequence"},
	    {"from":"T1","to":"E","kind":"sequence"}
	  ]
	}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, "", "", "", 1, 100, 10, false, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []func() error{
		func() error { return run("", "", "", "", "", 0, 100, 10, false, "", "") },    // nothing given
		func() error { return run("P.!", "", "", "", "", 0, 100, 10, false, "", "") }, // bad COWS
		func() error { return run("", "missing.json", "", "", "", 0, 100, 10, false, "", "") },
		func() error { return run("", "", "nope", "", "", 0, 100, 10, false, "", "") },
	}
	for i, f := range cases {
		if err := f(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunCompileArtifact(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "", "clinicaltrial", "", "", 0, 1000, 10, true, dir, ""); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || !strings.HasSuffix(ents[0].Name(), ".dfa.json.gz") {
		t.Fatalf("expected one .dfa.json.gz artifact, got %v", ents)
	}
}

func TestRunStatsNeedsProcess(t *testing.T) {
	if err := run(`P.T!<> | P.T?<>.P.E!<> | P.E?<>`, "", "", "", "", 0, 100, 10, true, "", ""); err == nil {
		t.Fatal("-stats on a raw COWS service should fail (no task alphabet)")
	}
}
