// Command ltsdump explores the labeled transition system of a COWS
// service or an encoded BPMN process: state/edge statistics, Graphviz
// output, and (bounded) observable trace enumeration.
//
// Usage:
//
//	ltsdump -cows 'P.T!<> | P.T?<>.P.E!<> | P.E?<>'
//	ltsdump -proc process.json [-dot out.dot] [-traces 20] [-max 5000]
//	ltsdump -builtin treatment -dot fig1.dot
//	ltsdump -builtin clinicaltrial -stats
//	ltsdump -proc process.json [-policy pol.txt] -compile ./automata
//
// -stats determinizes the process into the table-driven replay
// automaton (DESIGN.md §11) and prints its table sizes; -compile DIR
// additionally saves the content-addressed artifact under DIR for
// auditd -automata-dir. -policy supplies the role hierarchy so the
// fingerprint matches a checker running under the same policy.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bpmn"
	"repro/internal/cli"
	"repro/internal/cows"
	"repro/internal/encode"
	"repro/internal/hospital"
	"repro/internal/lts"
	"repro/internal/policy"
)

func main() {
	var (
		cowsSrc  = flag.String("cows", "", "COWS service in textual syntax")
		procFile = flag.String("proc", "", "BPMN process JSON to encode and explore")
		builtin  = flag.String("builtin", "", "built-in process: treatment, clinicaltrial")
		dotOut   = flag.String("dot", "", "write Graphviz DOT of the observable LTS")
		procDot  = flag.String("procdot", "", "write Graphviz DOT of the BPMN diagram itself")
		traces   = flag.Int("traces", 0, "enumerate up to N maximal observable traces")
		maxState = flag.Int("max", 10000, "state budget for exploration")
		depth    = flag.Int("depth", 40, "trace depth bound")
		stats    = flag.Bool("stats", false, "determinize into the replay automaton and print table statistics")
		compile  = flag.String("compile", "", "compile the replay automaton and save the content-addressed artifact under this directory")
		polFile  = flag.String("policy", "", "policy file supplying the role hierarchy for automaton compilation")
		version  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("ltsdump"))
		return
	}

	if err := run(*cowsSrc, *procFile, *builtin, *dotOut, *procDot, *traces, *maxState, *depth, *stats, *compile, *polFile); err != nil {
		fmt.Fprintln(os.Stderr, "ltsdump:", err)
		os.Exit(2)
	}
}

func run(cowsSrc, procFile, builtin, dotOut, procDot string, traces, maxState, depth int, stats bool, compileDir, polFile string) error {
	var (
		service cows.Service
		obs     lts.Observability
		name    = "lts"
		proc    *bpmn.Process
		err     error
	)
	switch {
	case cowsSrc != "":
		service, err = cows.Parse(cowsSrc)
		if err != nil {
			return err
		}
		obs = func(l cows.Label) bool { return l.Kind == cows.LComm }
	case procFile != "" || builtin != "":
		switch builtin {
		case "treatment":
			proc, err = hospital.Treatment()
		case "clinicaltrial":
			proc, err = hospital.ClinicalTrial()
		case "":
			var f *os.File
			f, err = os.Open(procFile)
			if err != nil {
				return err
			}
			if strings.HasSuffix(procFile, ".bpmn") || strings.HasSuffix(procFile, ".xml") {
				proc, err = bpmn.DecodeXML(f)
			} else {
				proc, err = bpmn.DecodeJSON(f)
			}
			f.Close()
		default:
			return fmt.Errorf("unknown builtin %q", builtin)
		}
		if err != nil {
			return err
		}
		name = proc.Name
		service, err = encode.Encode(proc)
		if err != nil {
			return err
		}
		obs = encode.Observability(proc)
		rep, err := encode.Report(proc)
		if err != nil {
			return err
		}
		st := proc.Stats()
		fmt.Printf("process %s: %d pools, %d tasks, %d gateways, %d events, %d seq flows, %d msg flows\n",
			proc.Name, st.Pools, st.Tasks, st.Gateways, st.Events, st.SeqFlows, st.MsgFlows)
		fmt.Printf("COWS encoding: %d AST nodes over %d element services\n", rep.TotalSize, len(rep.Elements))
		if procDot != "" {
			if err := os.WriteFile(procDot, []byte(proc.DOT()), 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", procDot)
		}
	default:
		return fmt.Errorf("need one of -cows, -proc, -builtin")
	}

	if stats || compileDir != "" {
		if proc == nil {
			return fmt.Errorf("-stats/-compile need a BPMN process (-proc or -builtin)")
		}
		var roles *policy.RoleHierarchy
		if polFile != "" {
			f, err := os.Open(polFile)
			if err != nil {
				return err
			}
			p, err := policy.ParsePolicy(f)
			f.Close()
			if err != nil {
				return err
			}
			roles = p.Roles
		}
		d, err := encode.CompileProcess(proc, roles)
		if err != nil {
			return fmt.Errorf("compiling %s: %w", proc.Name, err)
		}
		fmt.Println(d.Stats())
		fmt.Printf("fingerprint: %s\n", d.Fingerprint)
		if compileDir != "" {
			path, err := encode.SaveAutomaton(compileDir, d)
			if err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", path)
		}
	}

	y := lts.NewSystem(obs)
	g, err := y.ExploreObservable(service, maxState)
	truncated := false
	if errors.Is(err, lts.ErrBudgetExceeded) {
		truncated = true
	} else if err != nil {
		return err
	}
	suffix := ""
	if truncated {
		suffix = fmt.Sprintf(" (budget %d hit; partial)", maxState)
	}
	fmt.Printf("observable LTS: %d states, %d transitions%s\n", g.NumStates(), g.NumEdges(), suffix)
	fmt.Printf("labels: %v\n", g.LabelSet())

	if dotOut != "" {
		if err := os.WriteFile(dotOut, []byte(g.DOT(name, false)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotOut)
	}
	if traces > 0 {
		res, err := y.ObservableTraces(service, lts.TraceLimits{MaxDepth: depth, MaxTraces: traces})
		if err != nil {
			return err
		}
		for _, tr := range res.Traces {
			fmt.Println("  trace:", tr)
		}
		if !res.Exhaustive {
			fmt.Println("  (truncated)")
		}
	}
	return nil
}
