package main

import "testing"

// TestFigureExperimentsRun smoke-tests the figure reproductions (the
// P-series is exercised by `go test -bench` at the repository root and
// by running benchtab itself; re-running testing.Benchmark inside a test
// would be slow for no added assurance).
func TestFigureExperimentsRun(t *testing.T) {
	for _, e := range []struct {
		name string
		fn   func() error
	}{
		{"F1", expF1},
		{"F2", expF2},
		{"F3", expF3},
		{"F4", expF4},
		{"F5", expF5},
		{"F6", expF6},
		{"F7to10", expF7to10},
		{"P7", expP7},
		{"P8", expP8},
	} {
		t.Run(e.name, func(t *testing.T) {
			if err := e.fn(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
