// Command benchtab regenerates every experiment in DESIGN.md §5 /
// EXPERIMENTS.md: the figure reproductions F1–F10 and the performance
// claims P1–P8. Timed rows use testing.Benchmark, so numbers are
// directly comparable to `go test -bench`.
//
// Usage:
//
//	benchtab              # all experiments
//	benchtab -exp F4,P1   # a selection
//	benchtab -exp P1,P3 -quick -json BENCH.json
//	                      # CI smoke: ~100 iterations per point, with
//	                      # the timed P1/P3 rows also written as JSON
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/cows"
	"repro/internal/encode"
	"repro/internal/hospital"
	"repro/internal/lts"
	"repro/internal/naive"
	"repro/internal/obs"
	"repro/internal/petri"
	"repro/internal/policy"
	"repro/internal/server"
	"repro/internal/wal"
	"repro/internal/workload"
)

// quickIters, when positive, switches bench() from testing.Benchmark's
// adaptive ~1s runs to a fixed iteration count — the CI smoke mode.
var quickIters int

// benchRow is one timed measurement, recorded for -json output.
type benchRow struct {
	Exp        string  `json:"exp"`
	Name       string  `json:"name"`
	Entries    int     `json:"entries,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	NsPerOp    int64   `json:"ns_per_op"`
	NsPerEntry float64 `json:"ns_per_entry,omitempty"`
	// AllocsPerEntry records heap allocations per decoded entry for
	// the P6 decode rows (testing.AllocsPerRun; exact, not timed).
	AllocsPerEntry float64 `json:"allocs_per_entry,omitempty"`
}

var benchRows []benchRow

func record(r benchRow) { benchRows = append(benchRows, r) }

func main() {
	// Benchmark methodology (P3): parallel-scaling rows are only
	// meaningful at the machine's real parallelism, so pin GOMAXPROCS
	// to NumCPU explicitly and record both in the JSON output instead
	// of inheriting whatever the environment set.
	runtime.GOMAXPROCS(runtime.NumCPU())
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	jsonFlag := flag.String("json", "", "write timed rows (P1, P3, P4, P5) as JSON to this file")
	quickFlag := flag.Bool("quick", false, "fixed 100-iteration timing instead of ~1s adaptive runs")
	guardFlag := flag.String("guard", "", "comma-separated baseline BENCH_*.json files; exit 1 if any shared timed row's ns/entry regresses more than -guard-slack")
	slackFlag := flag.Float64("guard-slack", 0.25, "tolerated fractional ns/entry regression vs the baseline")
	slackExpFlag := flag.String("guard-slack-exp", "", "per-experiment slack overrides, e.g. P1=0.05,P4=0.05")
	retriesFlag := flag.Int("guard-retries", 3, "extra measurement rounds if the guard fails; per-row minima merge across rounds")
	versionFlag := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *versionFlag {
		fmt.Println(cli.VersionString("benchtab"))
		return
	}
	if *quickFlag {
		quickIters = 100
	}

	all := []struct {
		id  string
		fn  func() error
		doc string
	}{
		{"F1", expF1, "Fig. 1 treatment process"},
		{"F2", expF2, "Fig. 2 clinical trial process"},
		{"F3", expF3, "Fig. 3 policy decisions"},
		{"F4", expF4, "Fig. 4 per-case verdicts"},
		{"F5", expF5, "Fig. 5 WeakNext"},
		{"F6", expF6, "Fig. 6 replay walkthrough"},
		{"F7", expF7to10, "Figs. 7-10 appendix encodings"},
		{"P1", expP1, "check time vs trail length"},
		{"P2", expP2, "check time vs process size"},
		{"P3", expP3, "parallel case checking"},
		{"P4", expP4, "Algorithm 1 vs naive enumeration; compiled automaton vs interpreter"},
		{"P5", expP5, "detection & cost vs token replay; observer overhead"},
		{"P6", expP6, "OR fan-out growth; raw-speed tier (decode, dispatch, minimize, binary boot)"},
		{"P7", expP7, "well-foundedness detection; WAL ingest overhead"},
		{"P8", expP8, "mimicry requires collusion"},
		{"P10", expP10, "stage-timer sampling overhead"},
	}
	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	runSelected := func() {
		for _, e := range all {
			if len(want) > 0 && !want[e.id] && !(e.id == "F7" && (want["F8"] || want["F9"] || want["F10"])) {
				continue
			}
			fmt.Printf("\n===== %s: %s =====\n", e.id, e.doc)
			if err := e.fn(); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", e.id, err)
				os.Exit(1)
			}
		}
	}
	runSelected()
	best := benchRows
	var guardErr error
	if *guardFlag != "" {
		slackByExp, err := parseSlackByExp(*slackExpFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: -guard-slack-exp: %v\n", err)
			os.Exit(1)
		}
		baselines := strings.Split(*guardFlag, ",")
		// A shared CI box stalls whole measurement windows at once, so a
		// single round over-reports ns/entry by tens of percent. Noise is
		// strictly one-sided: re-measure and keep each row's minimum, and
		// accept as soon as the merged best run is inside the slack.
		for round := 0; ; round++ {
			guardErr = guard(best, baselines, *slackFlag, slackByExp)
			if guardErr == nil || round >= *retriesFlag {
				break
			}
			fmt.Printf("\nbenchguard: regression may be measurement noise; re-measuring (round %d/%d)\n",
				round+2, *retriesFlag+1)
			benchRows = nil
			runSelected()
			best = mergeMinRows(best, benchRows)
		}
	}
	if *jsonFlag != "" {
		out := struct {
			Quick      bool       `json:"quick"`
			GoMaxProcs int        `json:"gomaxprocs"`
			NumCPU     int        `json:"numcpu"`
			Rows       []benchRow `json:"rows"`
		}{Quick: quickIters > 0, GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), Rows: best}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: encoding %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonFlag, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchtab: writing %s: %v\n", *jsonFlag, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %d timed rows to %s\n", len(best), *jsonFlag)
	}
	if guardErr != nil {
		fmt.Fprintf(os.Stderr, "benchtab: benchguard: %v\n", guardErr)
		os.Exit(1)
	}
}

// mergeMinRows folds a fresh measurement round into the running best
// rows, keeping the smaller ns/entry per (exp, name) key.
func mergeMinRows(best, fresh []benchRow) []benchRow {
	idx := map[string]int{}
	for i, r := range best {
		idx[r.Exp+"/"+r.Name] = i
	}
	for _, r := range fresh {
		i, ok := idx[r.Exp+"/"+r.Name]
		if !ok {
			idx[r.Exp+"/"+r.Name] = len(best)
			best = append(best, r)
			continue
		}
		if r.NsPerEntry > 0 && (best[i].NsPerEntry <= 0 || r.NsPerEntry < best[i].NsPerEntry) {
			best[i] = r
		}
	}
	return best
}

// parseSlackByExp parses "P1=0.05,P4=0.05" into per-experiment slack
// fractions that override the global -guard-slack for those rows.
func parseSlackByExp(s string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		exp, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("%q: want EXP=FRACTION", part)
		}
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(val), "%g", &f); err != nil || f < 0 {
			return nil, fmt.Errorf("%q: bad fraction", part)
		}
		out[strings.TrimSpace(strings.ToUpper(exp))] = f
	}
	return out, nil
}

// guard compares this run's timed rows against checked-in baselines.
// Later baseline files override earlier ones per (exp, name) key; only
// rows measured by both sides are compared, so a guard run may select
// any experiment subset. CI wall-clock noise is absorbed by the slack;
// a genuine hot-path regression blows well past it. slackByExp tightens
// (or loosens) the tolerance for individual experiments — the PR 5
// observer work holds the nil-observer replay rows to 5%.
func guard(rows []benchRow, baselines []string, slack float64, slackByExp map[string]float64) error {
	// Each baseline row remembers which file it came from, so a
	// regression message names the file to re-baseline (or bisect
	// against) instead of leaving the reader to grep every BENCH_*.json.
	type baseRow struct {
		row  benchRow
		file string
	}
	base := map[string]baseRow{}
	for _, file := range baselines {
		file = strings.TrimSpace(file)
		if file == "" {
			continue
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		var doc struct {
			Rows []benchRow `json:"rows"`
		}
		if err := json.Unmarshal(data, &doc); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		for _, r := range doc.Rows {
			if r.NsPerEntry > 0 {
				base[r.Exp+"/"+r.Name] = baseRow{row: r, file: file}
			}
		}
	}
	if len(base) == 0 {
		return fmt.Errorf("no ns/entry baseline rows in %v", baselines)
	}
	fmt.Printf("\n===== benchguard (slack %.0f%%) =====\n", slack*100)
	fmt.Printf("%-28s %-12s %-12s %s\n", "row", "baseline", "current", "delta")
	var failures []string
	compared := 0
	for _, r := range rows {
		b, ok := base[r.Exp+"/"+r.Name]
		if !ok || r.NsPerEntry <= 0 {
			continue
		}
		// Sub-100-entry points time in single-digit microseconds, where
		// quick mode's fixed iteration count is scheduler noise, not
		// signal; the long-trail rows are the regression detectors.
		if r.Entries < 100 {
			continue
		}
		compared++
		rowSlack := slack
		if s, ok := slackByExp[r.Exp]; ok {
			rowSlack = s
		}
		delta := r.NsPerEntry/b.row.NsPerEntry - 1
		mark := ""
		if delta > rowSlack {
			mark = "  REGRESSION"
			failures = append(failures, fmt.Sprintf(
				"series %s row %q (%d entries): measured %.1f ns/entry vs baseline %.1f ns/entry in %s — %+.0f%% exceeds the allowed %.0f%% slack",
				r.Exp, r.Name, r.Entries, r.NsPerEntry, b.row.NsPerEntry, b.file, delta*100, rowSlack*100))
		}
		fmt.Printf("%-28s %-12.1f %-12.1f %+.0f%%%s\n", r.Exp+"/"+r.Name, b.row.NsPerEntry, r.NsPerEntry, delta*100, mark)
	}
	if compared == 0 {
		return fmt.Errorf("no timed rows shared with the baseline (ran the wrong -exp selection?)")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d row(s) regressed past their slack:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Printf("benchguard: %d rows within slack\n", compared)
	return nil
}

func bench(f func() error) (time.Duration, error) {
	if quickIters > 0 {
		if err := f(); err != nil { // warm once outside the timer
			return 0, err
		}
		// Same total work as one quickIters loop, but split into
		// repetitions and keep the fastest: scheduler preemption and
		// noisy-neighbor stalls only ever slow a sample down, so the
		// minimum is the stable estimator the benchguard compares.
		const reps = 5
		iters := quickIters / reps
		if iters < 1 {
			iters = 1
		}
		best := time.Duration(-1)
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				if err := f(); err != nil {
					return 0, err
				}
			}
			if d := time.Since(start) / time.Duration(iters); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	var err error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if e := f(); e != nil {
				err = e
				b.FailNow()
			}
		}
	})
	if err != nil {
		return 0, err
	}
	return time.Duration(r.NsPerOp()), nil
}

func procSummary(p *bpmn.Process) error {
	st := p.Stats()
	fmt.Printf("process %-22s pools=%d tasks=%d gateways=%d events=%d seqflows=%d msgflows=%d errorEdges=%d\n",
		p.Name, st.Pools, st.Tasks, st.Gateways, st.Events, st.SeqFlows, st.MsgFlows, st.ErrorEdge)
	rep, err := encode.Report(p)
	if err != nil {
		return err
	}
	fmt.Printf("COWS encoding: %d AST nodes over %d element services; well-founded: yes (validated)\n",
		rep.TotalSize, len(rep.Elements))
	return nil
}

func expF1() error {
	p, err := hospital.Treatment()
	if err != nil {
		return err
	}
	if err := procSummary(p); err != nil {
		return err
	}
	// Observable LTS fragment statistics (the space Algorithm 1 walks).
	y := encode.NewSystem(p)
	s, err := encode.Encode(p)
	if err != nil {
		return err
	}
	g, err := y.ExploreObservable(s, 3000)
	if err != nil && g == nil {
		return err
	}
	complete := "complete"
	if !g.Complete {
		complete = "truncated at budget (process cycles make the space unbounded)"
	}
	fmt.Printf("observable LTS: %d states, %d transitions (%s)\n", g.NumStates(), g.NumEdges(), complete)
	return nil
}

func expF2() error {
	p, err := hospital.ClinicalTrial()
	if err != nil {
		return err
	}
	if err := procSummary(p); err != nil {
		return err
	}
	y := encode.NewSystem(p)
	s, err := encode.Encode(p)
	if err != nil {
		return err
	}
	g, err := y.ExploreObservable(s, 100)
	if err != nil {
		return err
	}
	fmt.Printf("observable LTS: %d states, %d transitions (complete, linear)\n", g.NumStates(), g.NumEdges())
	return nil
}

func expF3() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	obj := policy.MustParseObject
	rows := []struct {
		desc string
		req  policy.AccessRequest
	}{
		{"GP reads clinical for treatment", policy.AccessRequest{User: "John", Role: "GP", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T01", Case: "HT-1"}},
		{"Cardiologist writes clinical", policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T09", Case: "HT-1"}},
		{"LabTech writes Tests subsection", policy.AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical/Tests"), Task: "T15", Case: "HT-1"}},
		{"LabTech writes whole Clinical", policy.AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T15", Case: "HT-1"}},
		{"Trial read, Alice (consented)", policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Alice]EPR/Clinical"), Task: "T92", Case: "CT-1"}},
		{"Trial read, Jane (no consent)", policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "CT-1"}},
		{"Task outside claimed purpose", policy.AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "HT-1"}},
	}
	fmt.Printf("%-36s %s\n", "request", "decision")
	for _, r := range rows {
		dec := sc.Framework.PDP.Evaluate(r.req)
		verdict := "DENY"
		if dec.Granted {
			verdict = "PERMIT"
		}
		fmt.Printf("%-36s %s\n", r.desc, verdict)
	}
	return nil
}

func expF4() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	res, err := sc.Framework.Audit(sc.Trail)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %-20s %-8s %-13s %s\n", "case", "purpose", "entries", "verdict", "detail")
	for _, rep := range res.CaseReports {
		verdict, detail := "COMPLIANT", ""
		switch {
		case !rep.Compliant:
			verdict = "INFRINGEMENT"
			detail = rep.Violation.Reason
		case rep.Pending:
			detail = "pending (mid-flight)"
		default:
			detail = "complete"
		}
		fmt.Printf("%-7s %-20s %-8d %-13s %s\n", rep.Case, rep.Purpose, rep.Entries, verdict, detail)
	}
	fmt.Printf("preventive layer (Def. 3) findings: %d — the re-purposing is invisible to it\n", len(res.PolicyFindings))
	return nil
}

func expF5() error {
	src := `
		x.tau!<> | y.obs1!<> |
		( x.tau?<>.( a.obs2!<> | b.obs3!<> | (a.obs2?<>.0 + b.obs3?<>.0) )
		+ y.obs1?<>.( c.tau2!<> | d.obs4!<> | (c.tau2?<>.0 + d.obs4?<>.0) ) )`
	s, err := cows.Parse(src)
	if err != nil {
		return err
	}
	y := lts.NewSystem(func(l cows.Label) bool {
		return l.Kind == cows.LComm && strings.HasPrefix(l.Op, "obs")
	})
	obs, err := y.WeakNext(s)
	if err != nil {
		return err
	}
	fmt.Printf("WeakNext(s) returns %d states (paper: s1, s2, s3):\n", len(obs))
	for _, o := range obs {
		fmt.Printf("  via %-8s after %d silent step(s)\n", o.Label, o.Silent)
	}
	return nil
}

func expF6() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	checker := sc.Framework.Checker
	fmt.Printf("%-4s %-8s %-9s %-8s %s\n", "step", "entry", "status", "configs", "active tasks (union)")
	checker.TraceFn = func(i int, e audit.Entry, configs []*core.Configuration) {
		set := map[string]bool{}
		for _, conf := range configs {
			for _, a := range conf.ActiveTasks() {
				set[a.String()] = true
			}
		}
		var active []string
		for a := range set {
			active = append(active, a)
		}
		sort.Strings(active)
		fmt.Printf("%-4d %-8s %-9s %-8d {%s}\n", i+1, e.Task, e.Status, len(configs), strings.Join(active, ", "))
	}
	defer func() { checker.TraceFn = nil }()
	rep, err := checker.CheckCase(sc.Trail, "HT-1")
	if err != nil {
		return err
	}
	fmt.Println(rep)
	return nil
}

func expF7to10() error {
	y := lts.NewSystem(func(l cows.Label) bool { return l.Kind == cows.LComm })
	examples := []struct {
		fig string
		src string
	}{
		{"Fig. 7 (sequence flow)", `P.T!<> | P.T?<>.P.E!<> | P.E?<>`},
		{"Fig. 8 (exclusive gateway)", `
			P.T!<> | P.T?<>.P.G!<>
			| P.G?<>.[k:kill][sys:name]( sys.T1!<> | sys.T2!<>
				| sys.T1?<>.(kill(k) | {|P.T1!<>|}) | sys.T2?<>.(kill(k) | {|P.T2!<>|}) )
			| P.T1?<>.P.E1!<> | P.E1?<> | P.T2?<>.P.E2!<> | P.E2?<>`},
		{"Fig. 9 (error event)", `
			P.T!<> | P.T?<>.[k:kill][sys:name]( sys.Err!<> | sys.T2!<>
				| sys.Err?<>.(kill(k) | {|P.T1!<>|}) | sys.T2?<>.(kill(k) | {|P.T2!<>|}) )
			| P.T1?<>.P.E1!<> | P.E1?<> | P.T2?<>.P.E2!<> | P.E2?<>`},
		{"Fig. 10 (message flow cycle)", `
			P1.T1!<> | *[z:var] P1.S2?<$z>.P1.T1!<> | *P1.T1?<>.P1.E1!<>
			| *P1.E1?<>.P2.S3!<msg1> | *[z:var] P2.S3?<$z>.P2.T2!<>
			| *P2.T2?<>.P2.E2!<> | *P2.E2?<>.P1.S2!<msg2>`},
	}
	for _, ex := range examples {
		s, err := cows.Parse(ex.src)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.fig, err)
		}
		g, err := y.Explore(s, 500)
		if err != nil {
			return fmt.Errorf("%s: %w", ex.fig, err)
		}
		fmt.Printf("%-28s LTS: %2d states %2d transitions; labels %v\n", ex.fig, g.NumStates(), g.NumEdges(), g.LabelSet())
	}
	return nil
}

func loopedProcess() *bpmn.Process {
	return bpmn.NewBuilder("Loop").Pool("P").
		Start("S", "P").Task("T1", "P", "").XOR("G", "P").
		Task("T2", "P", "").Task("T3", "P", "").
		XOR("M", "P").XOR("G2", "P").Task("T4", "P", "").End("E", "P").
		Seq("S", "T1", "G").Seq("G", "T2", "M").Seq("G", "T3", "M").
		Seq("M", "G2").Seq("G2", "T1").Seq("G2", "T4", "E").
		MustBuild()
}

func longTrail(n int) *audit.Trail {
	pairs := (n - 1) / 2
	if pairs < 1 {
		pairs = 1
	}
	var entries []audit.Entry
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	add := func(task string) {
		entries = append(entries, audit.Entry{
			User: "u", Role: "P", Action: "read", Task: task, Case: "LP-1",
			Time: base.Add(time.Duration(len(entries)) * time.Minute), Status: audit.Success,
		})
	}
	for i := 0; i < pairs; i++ {
		add("T1")
		add("T2")
	}
	add("T4")
	return audit.NewTrail(entries)
}

func expP1() error {
	reg := core.NewRegistry()
	if _, err := reg.Register(loopedProcess(), "LP"); err != nil {
		return err
	}
	checker := core.NewChecker(reg, nil)
	fmt.Printf("%-9s %-12s %s\n", "entries", "time/check", "time/entry")
	for _, steps := range []int{10, 100, 1000, 5000} {
		trail := longTrail(steps)
		caseID := trail.Cases()[0]
		if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
			return fmt.Errorf("warmup: %v %v", rep, err)
		}
		d, err := bench(func() error {
			rep, err := checker.CheckCase(trail, caseID)
			if err != nil {
				return err
			}
			if !rep.Compliant {
				return fmt.Errorf("rejected")
			}
			return nil
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-9d %-12v %v\n", trail.Len(), d, d/time.Duration(trail.Len()))
		record(benchRow{
			Exp: "P1", Name: fmt.Sprintf("steps=%d", steps),
			Entries: trail.Len(), NsPerOp: d.Nanoseconds(),
			NsPerEntry: float64(d.Nanoseconds()) / float64(trail.Len()),
		})
	}
	return nil
}

func expP2() error {
	fmt.Printf("%-7s %-9s %-12s\n", "tasks", "entries", "time/check")
	for _, tasks := range []int{5, 20, 50, 100, 200} {
		proc := workload.MustGenerate(workload.DefaultProcParams("Sized", 3, tasks))
		reg := core.NewRegistry()
		if _, err := reg.Register(proc, "SZ"); err != nil {
			return err
		}
		params := workload.DefaultTrailParams(5, 1, "SZ")
		params.MaxSteps = 400
		trail, err := workload.NewSimulator(reg, params).Generate()
		if err != nil {
			return err
		}
		caseID := trail.Cases()[0]
		checker := core.NewChecker(reg, nil)
		if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
			return fmt.Errorf("warmup: %v %v", rep, err)
		}
		d, err := bench(func() error {
			_, err := checker.CheckCase(trail, caseID)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-7d %-9d %-12v\n", tasks, trail.Len(), d)
	}
	return nil
}

func expP3() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	trail, cases, err := workload.HospitalDay(sc.Registry, hospital.TreatmentCode, 2000, 21)
	if err != nil {
		return err
	}
	store := audit.NewStore()
	if err := store.AppendAll(trail.Entries()); err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	checker := core.NewChecker(sc.Registry, roles)
	// Warm the shared caches so the sweep measures steady-state scaling.
	if _, err := core.CheckStoreParallel(checker, store, 1); err != nil {
		return err
	}
	fmt.Printf("hospital-day load: %d entries across %d cases\n", store.Len(), cases)
	fmt.Printf("%-9s %-12s\n", "workers", "time/sweep")
	sweep := map[int]time.Duration{}
	for _, workers := range []int{1, 2, 4, 8} {
		d, err := bench(func() error {
			_, err := core.CheckStoreParallel(checker, store, workers)
			return err
		})
		if err != nil {
			return err
		}
		sweep[workers] = d
		fmt.Printf("%-9d %-12v\n", workers, d)
		record(benchRow{
			Exp: "P3", Name: fmt.Sprintf("workers=%d", workers),
			Entries: store.Len(), Workers: workers, NsPerOp: d.Nanoseconds(),
			NsPerEntry: float64(d.Nanoseconds()) / float64(store.Len()),
		})
	}
	// Scaling claim, guarded by real parallelism: on a box with 4+
	// schedulable CPUs the 4-worker sweep must beat 1 worker by >1.5x.
	// On smaller boxes (CI containers pinned to 1-2 CPUs) the workers
	// time-slice one core and the claim is vacuous, so it is reported
	// but not enforced — and quick mode's fixed iteration counts are
	// too noisy to gate on either way.
	if procs := runtime.GOMAXPROCS(0); procs >= 4 {
		speedup := float64(sweep[1]) / float64(sweep[4])
		fmt.Printf("parallel speedup at 4 workers (GOMAXPROCS=%d): %.2fx\n", procs, speedup)
		if speedup <= 1.5 && quickIters == 0 {
			return fmt.Errorf("parallel sweep speedup %.2fx at 4 workers, want >1.5x", speedup)
		}
	} else {
		fmt.Printf("parallel speedup check skipped: GOMAXPROCS=%d < 4 (workers would time-slice)\n", procs)
	}
	return nil
}

func expP4() error {
	reg := core.NewRegistry()
	if _, err := reg.Register(loopedProcess(), "LP"); err != nil {
		return err
	}
	// Naive trace enumeration is exponential; the sweep is meaningful in
	// adaptive mode but too slow for the fixed-iteration CI smoke, which
	// only needs the timed engine comparison below.
	if quickIters == 0 {
		fmt.Printf("%-9s %-14s %-14s %s\n", "entries", "Algorithm 1", "naive", "traces materialized")
		for _, steps := range []int{4, 8, 16, 24} {
			trail := longTrail(steps)
			caseID := trail.Cases()[0]
			checker := core.NewChecker(reg, nil)
			dAlg, err := bench(func() error {
				_, err := checker.CheckCase(trail, caseID)
				return err
			})
			if err != nil {
				return err
			}
			nv := naive.NewChecker(reg, nil)
			nv.Slack = 2
			nv.MaxTraces = 1 << 20
			traces := 0
			dNv, err := bench(func() error {
				res, err := nv.CheckCase(trail, caseID)
				if err != nil {
					return err
				}
				traces = res.TracesEnumerated
				return nil
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-9d %-14v %-14v %d\n", trail.Len(), dAlg, dNv, traces)
		}
		fmt.Println()
	}

	// Interpreted vs ahead-of-time compiled replay (DESIGN.md §11) on
	// the same looped process: the compiled engine does one array lookup
	// per entry where the interpreter advances configuration sets.
	interp := core.NewChecker(reg, nil)
	compiled := interp.Clone()
	compiled.UseCompiled = true
	if _, err := compiled.EnsureCompiled("Loop"); err != nil {
		return err
	}
	st, err := compiled.CompiledStatus("Loop")
	if err != nil {
		return err
	}
	fmt.Println(st)
	fmt.Printf("%-9s %-14s %-14s %s\n", "entries", "interpreted", "compiled", "speedup")
	for _, steps := range []int{10, 100, 1000, 5000} {
		trail := longTrail(steps)
		caseID := trail.Cases()[0]
		check := func(c *core.Checker) func() error {
			return func() error {
				rep, err := c.CheckCase(trail, caseID)
				if err != nil {
					return err
				}
				if !rep.Compliant {
					return fmt.Errorf("rejected at %d", rep.StepsReplayed)
				}
				return nil
			}
		}
		if err := check(compiled)(); err != nil { // warm both engines
			return err
		}
		dI, err := bench(check(interp))
		if err != nil {
			return err
		}
		dC, err := bench(check(compiled))
		if err != nil {
			return err
		}
		fmt.Printf("%-9d %-14v %-14v %.1fx\n", trail.Len(), dI, dC, float64(dI)/float64(dC))
		n := float64(trail.Len())
		record(benchRow{
			Exp: "P4", Name: fmt.Sprintf("interpreted/steps=%d", steps),
			Entries: trail.Len(), NsPerOp: dI.Nanoseconds(),
			NsPerEntry: float64(dI.Nanoseconds()) / n,
		})
		record(benchRow{
			Exp: "P4", Name: fmt.Sprintf("compiled/steps=%d", steps),
			Entries: trail.Len(), NsPerOp: dC.Nanoseconds(),
			NsPerEntry: float64(dC.Nanoseconds()) / n,
		})
	}
	return nil
}

func expP5() error {
	proc := workload.MustGenerate(workload.DefaultProcParams("Gap", 5, 10))
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "GP"); err != nil {
		return err
	}
	roles := policy.NewRoleHierarchy()
	if err := roles.Add("R0"); err != nil {
		return err
	}
	checker := core.NewChecker(reg, roles)
	net, err := petri.FromBPMN(proc)
	if err != nil {
		return err
	}
	replayer := &petri.Replayer{Net: net}

	sim := workload.NewSimulator(reg, workload.DefaultTrailParams(13, 30, "GP"))
	trail, err := sim.Generate()
	if err != nil {
		return err
	}
	inj := workload.NewInjector(99)

	type counts struct{ applied, alg1, replay int }
	perKind := map[workload.ViolationKind]*counts{}
	for kind := workload.ViolationKind(0); kind < workload.NumViolationKinds; kind++ {
		perKind[kind] = &counts{}
	}
	for _, caseID := range trail.Cases() {
		entries := trail.ByCase(caseID).Entries()
		for kind := workload.ViolationKind(0); kind < workload.NumViolationKinds; kind++ {
			mut, ok := inj.Inject(kind, entries)
			if !ok {
				continue
			}
			c := perKind[kind]
			c.applied++
			mt := audit.NewTrail(mut)
			mutCase := mt.Cases()[len(mt.Cases())-1]
			rep, err := checker.CheckCase(mt, mutCase)
			if err != nil {
				return err
			}
			if !rep.Compliant {
				c.alg1++
			}
			res, err := replayer.ReplayCase(mt, mutCase)
			if err != nil {
				return err
			}
			if res.Flagged() {
				c.replay++
			}
		}
	}
	fmt.Printf("%-15s %-9s %-14s %-14s\n", "violation", "injected", "Algorithm 1", "token replay")
	for kind := workload.ViolationKind(0); kind < workload.NumViolationKinds; kind++ {
		c := perKind[kind]
		if c.applied == 0 {
			continue
		}
		fmt.Printf("%-15s %-9d %-14s %-14s\n", kind, c.applied,
			fmt.Sprintf("%d/%d", c.alg1, c.applied), fmt.Sprintf("%d/%d", c.replay, c.applied))
	}
	fmt.Println("(token replay sees task names only: role/actor violations are structurally invisible to it)")

	// Cost on the paper's HT-1.
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	hroles, err := hospital.Roles()
	if err != nil {
		return err
	}
	hnet, err := petri.FromBPMN(sc.Treatment)
	if err != nil {
		return err
	}
	hreplayer := &petri.Replayer{Net: hnet}
	hchecker := core.NewChecker(sc.Registry, hroles)
	if _, err := hchecker.CheckCase(sc.Trail, "HT-1"); err != nil {
		return err
	}
	dAlg, err := bench(func() error {
		_, err := hchecker.CheckCase(sc.Trail, "HT-1")
		return err
	})
	if err != nil {
		return err
	}
	dTok, err := bench(func() error {
		_, err := hreplayer.ReplayCase(sc.Trail, "HT-1")
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("cost on HT-1 (16 entries): Algorithm 1 %v, token replay %v\n", dAlg, dTok)

	// Observer overhead (DESIGN.md §12): the nil-observer fast path vs a
	// ring-buffer replay tracer on the looped process. The nil rows are
	// the PR 5 "disabled tracing is free" claim; the ring rows bound what
	// enabling it costs.
	lreg := core.NewRegistry()
	if _, err := lreg.Register(loopedProcess(), "LP"); err != nil {
		return err
	}
	oc := core.NewChecker(lreg, nil)
	tracer := obs.NewReplayTracer(obs.NewRing(obs.DefaultRingCapacity))
	fmt.Printf("%-9s %-14s %-14s %s\n", "entries", "observer=nil", "observer=ring", "overhead")
	for _, steps := range []int{1000, 5000} {
		trail := longTrail(steps)
		caseID := trail.Cases()[0]
		check := func() error {
			rep, err := oc.CheckCase(trail, caseID)
			if err != nil {
				return err
			}
			if !rep.Compliant {
				return fmt.Errorf("rejected at %d", rep.StepsReplayed)
			}
			return nil
		}
		if err := check(); err != nil { // warm the shared caches
			return err
		}
		oc.Observer = nil
		dNil, err := bench(check)
		if err != nil {
			return err
		}
		oc.Observer = tracer
		dRing, err := bench(check)
		oc.Observer = nil
		if err != nil {
			return err
		}
		n := float64(trail.Len())
		fmt.Printf("%-9d %-14v %-14v %+.0f%%\n", trail.Len(), dNil, dRing,
			(float64(dRing)/float64(dNil)-1)*100)
		record(benchRow{
			Exp: "P5", Name: fmt.Sprintf("observer=nil/steps=%d", steps),
			Entries: trail.Len(), NsPerOp: dNil.Nanoseconds(),
			NsPerEntry: float64(dNil.Nanoseconds()) / n,
		})
		record(benchRow{
			Exp: "P5", Name: fmt.Sprintf("observer=ring/steps=%d", steps),
			Entries: trail.Len(), NsPerOp: dRing.Nanoseconds(),
			NsPerEntry: float64(dRing.Nanoseconds()) / n,
		})
	}
	return nil
}

func expP6() error {
	fmt.Printf("%-10s %-13s %-12s\n", "branches", "peak configs", "time/check")
	for _, branches := range []int{2, 3, 4, 5, 6} {
		bl := bpmn.NewBuilder("ORFan").Pool("P").
			Start("S", "P").OR("G", "P").OR("J", "P").
			Task("TZ", "P", "").End("E", "P")
		var tasks []string
		for i := 0; i < branches; i++ {
			id := fmt.Sprintf("T%d", i)
			bl.Task(id, "P", "")
			bl.Seq("G", id, "J")
			tasks = append(tasks, id)
		}
		proc := bl.Seq("S", "G").Seq("J", "TZ", "E").PairOR("G", "J").MustBuild()
		reg := core.NewRegistry()
		if _, err := reg.Register(proc, "OF"); err != nil {
			return err
		}
		var entries []audit.Entry
		base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
		for i, task := range append(tasks, "TZ") {
			entries = append(entries, audit.Entry{
				User: "u", Role: "P", Action: "read", Task: task, Case: "OF-1",
				Time: base.Add(time.Duration(i) * time.Minute), Status: audit.Success,
			})
		}
		trail := audit.NewTrail(entries)
		checker := core.NewChecker(reg, nil)
		rep, err := checker.CheckCase(trail, "OF-1")
		if err != nil || !rep.Compliant {
			return fmt.Errorf("warmup: %v %v", rep, err)
		}
		d, err := bench(func() error {
			_, err := checker.CheckCase(trail, "OF-1")
			return err
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %-13d %-12v\n", branches, rep.PeakConfigurations, d)
	}

	// Raw-speed tier (DESIGN.md §13): the PR 6 performance story,
	// measured end to end — zero-allocation NDJSON decode, batched
	// shard dispatch, minimized-automaton replay, and binary
	// artifact/checkpoint boot. These rows feed BENCH_pr6.json.
	trail, doc, err := p6Doc()
	if err != nil {
		return err
	}
	if err := expP6decode(trail, doc); err != nil {
		return err
	}
	if err := expP6dispatch(trail); err != nil {
		return err
	}
	if err := expP6replay(); err != nil {
		return err
	}
	if err := expP6boot(); err != nil {
		return err
	}
	return expP6restore(trail)
}

// p6Reps is the measurement-round count for the manually timed P6
// rows (minimum over rounds, like bench()'s quick mode).
const p6Reps = 5

// minTimed runs f p6Reps times and keeps the smallest duration it
// reports — f times only the section under test and does its cleanup
// (flush, shutdown) off the clock.
func minTimed(f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(-1)
	for r := 0; r < p6Reps; r++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// p6Doc builds the shared P6 workload: a hospital-day trail and its
// NDJSON document.
func p6Doc() (*audit.Trail, []byte, error) {
	sc, err := hospital.NewScenario()
	if err != nil {
		return nil, nil, err
	}
	trail, _, err := workload.HospitalDay(sc.Registry, hospital.TreatmentCode, 4000, 17)
	if err != nil {
		return nil, nil, err
	}
	var buf bytes.Buffer
	for _, e := range trail.Entries() {
		if err := audit.AppendJSONL(&buf, e); err != nil {
			return nil, nil, err
		}
	}
	return trail, buf.Bytes(), nil
}

// expP6decode compares the zero-allocation EntryScanner against a
// plain bufio + encoding/json line decoder on the same document, and
// asserts the strict-mode fast path really is allocation-free per
// entry (exact, via testing.AllocsPerRun — not a timing claim).
func expP6decode(trail *audit.Trail, doc []byte) error {
	n := trail.Len()
	sc := audit.NewEntryScanner(bytes.NewReader(nil), audit.DecodeOptions{})
	rd := bytes.NewReader(doc)
	scanAll := func() error {
		rd.Reset(doc)
		sc.Reset(rd)
		count := 0
		for sc.Scan() {
			count++
		}
		if err := sc.Err(); err != nil {
			return err
		}
		if count != n || sc.Fallbacks() != 0 {
			return fmt.Errorf("scanned %d/%d entries, %d fallbacks", count, n, sc.Fallbacks())
		}
		return nil
	}
	if err := scanAll(); err != nil { // warm the intern tables
		return err
	}
	dFast, err := minTimed(func() (time.Duration, error) {
		t0 := time.Now()
		err := scanAll()
		return time.Since(t0), err
	})
	if err != nil {
		return err
	}
	var scanErr error
	allocs := testing.AllocsPerRun(3, func() {
		if err := scanAll(); err != nil {
			scanErr = err
		}
	}) / float64(n)
	if scanErr != nil {
		return scanErr
	}
	if allocs != 0 {
		return fmt.Errorf("strict-mode NDJSON decode allocates %.4f/entry, want 0", allocs)
	}

	// The baseline: the wire shape through encoding/json, one line at
	// a time — what DecodeJSONLEntries did before the scanner.
	type wireEntry struct {
		User   string    `json:"user"`
		Role   string    `json:"role"`
		Action string    `json:"action"`
		Object string    `json:"object,omitempty"`
		Task   string    `json:"task"`
		Case   string    `json:"case"`
		Time   time.Time `json:"time"`
		Status string    `json:"status"`
	}
	lineBuf := make([]byte, 64<<10)
	stdAll := func() error {
		scn := bufio.NewScanner(bytes.NewReader(doc))
		scn.Buffer(lineBuf, 1<<20)
		count := 0
		for scn.Scan() {
			var w wireEntry
			if err := json.Unmarshal(scn.Bytes(), &w); err != nil {
				return err
			}
			count++
		}
		if err := scn.Err(); err != nil {
			return err
		}
		if count != n {
			return fmt.Errorf("stdlib decoded %d/%d entries", count, n)
		}
		return nil
	}
	dStd, err := minTimed(func() (time.Duration, error) {
		t0 := time.Now()
		err := stdAll()
		return time.Since(t0), err
	})
	if err != nil {
		return err
	}
	stdAllocs := testing.AllocsPerRun(3, func() {
		if err := stdAll(); err != nil {
			scanErr = err
		}
	}) / float64(n)
	if scanErr != nil {
		return scanErr
	}
	fmt.Printf("\nNDJSON decode (%d entries):\n", n)
	fmt.Printf("%-16s %-12s %-12s %s\n", "decoder", "time/doc", "ns/entry", "allocs/entry")
	fmt.Printf("%-16s %-12v %-12.1f %.2f\n", "scanner", dFast, float64(dFast.Nanoseconds())/float64(n), allocs)
	fmt.Printf("%-16s %-12v %-12.1f %.2f\n", "encoding/json", dStd, float64(dStd.Nanoseconds())/float64(n), stdAllocs)
	record(benchRow{
		Exp: "P6", Name: "decode/scanner", Entries: n, NsPerOp: dFast.Nanoseconds(),
		NsPerEntry: float64(dFast.Nanoseconds()) / float64(n), AllocsPerEntry: allocs,
	})
	record(benchRow{
		Exp: "P6", Name: "decode/stdlib", Entries: n, NsPerOp: dStd.Nanoseconds(),
		NsPerEntry: float64(dStd.Nanoseconds()) / float64(n), AllocsPerEntry: stdAllocs,
	})
	return nil
}

// expP6dispatch compares producer-side ingest throughput: one entry
// per shard message (IngestEntry) vs batched per-case dispatch
// (IngestEntries). Queues are deep enough that nothing blocks; the
// timer covers only the producer loop, with the drain (Flush) and
// Shutdown off the clock.
func expP6dispatch(trail *audit.Trail) error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	entries := trail.Entries()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	run := func(batched bool) (time.Duration, error) {
		return minTimed(func() (time.Duration, error) {
			srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles),
				server.Config{Shards: 4, QueueDepth: 1 << 18, Logger: quiet})
			if err := srv.Start(); err != nil {
				return 0, err
			}
			defer srv.Shutdown(context.Background())
			t0 := time.Now()
			if batched {
				if n, ok := srv.IngestEntries(entries); !ok {
					return 0, fmt.Errorf("batched ingest rejected after %d entries", n)
				}
			} else {
				for i := range entries {
					if !srv.IngestEntry(entries[i]) {
						return 0, fmt.Errorf("single ingest rejected at entry %d", i)
					}
				}
			}
			d := time.Since(t0)
			srv.Flush()
			return d, nil
		})
	}
	dSingle, err := run(false)
	if err != nil {
		return err
	}
	dBatched, err := run(true)
	if err != nil {
		return err
	}
	n := float64(len(entries))
	speedup := float64(dSingle) / float64(dBatched)
	fmt.Printf("\nshard dispatch (%d entries, producer side):\n", len(entries))
	fmt.Printf("%-16s %-12s %s\n", "dispatch", "time/doc", "ns/entry")
	fmt.Printf("%-16s %-12v %.1f\n", "single", dSingle, float64(dSingle.Nanoseconds())/n)
	fmt.Printf("%-16s %-12v %.1f   (%.1fx)\n", "batched", dBatched, float64(dBatched.Nanoseconds())/n, speedup)
	record(benchRow{
		Exp: "P6", Name: "dispatch/single", Entries: len(entries), NsPerOp: dSingle.Nanoseconds(),
		NsPerEntry: float64(dSingle.Nanoseconds()) / n,
	})
	record(benchRow{
		Exp: "P6", Name: "dispatch/batched", Entries: len(entries), NsPerOp: dBatched.Nanoseconds(),
		NsPerEntry: float64(dBatched.Nanoseconds()) / n,
	})
	// Quick mode's short rounds are scheduler noise on shared CI boxes;
	// the checked-in BENCH_pr6.json is generated in adaptive mode where
	// the claim must hold.
	if speedup < 2 && quickIters == 0 {
		return fmt.Errorf("batched dispatch only %.2fx over single-entry, want >=2x", speedup)
	}
	return nil
}

// expP6replay compares table-driven replay on the dense vs the
// Hopcroft-minimized automaton (same purpose, same trail; reports are
// proven byte-identical by the core differential tests).
func expP6replay() error {
	reg := core.NewRegistry()
	if _, err := reg.Register(loopedProcess(), "LP"); err != nil {
		return err
	}
	dense := core.NewChecker(reg, nil)
	dense.UseCompiled = true
	min := core.NewChecker(reg, nil)
	min.UseCompiled = true
	min.MinimizeAutomata = true
	dd, err := dense.EnsureCompiled("Loop")
	if err != nil {
		return err
	}
	dm, err := min.EnsureCompiled("Loop")
	if err != nil {
		return err
	}
	if !dm.Minimized {
		return fmt.Errorf("MinimizeAutomata checker compiled an unminimized table")
	}
	fmt.Printf("\nminimized replay: dense %d states x %d symbols, minimized %d states x %d columns\n",
		dd.NumStates(), dd.NumSymbols(), dm.NumStates(), dm.Stats().Columns)
	trail := longTrail(5000)
	caseID := trail.Cases()[0]
	check := func(c *core.Checker) func() error {
		return func() error {
			rep, err := c.CheckCase(trail, caseID)
			if err != nil {
				return err
			}
			if !rep.Compliant {
				return fmt.Errorf("rejected at %d", rep.StepsReplayed)
			}
			return nil
		}
	}
	if err := check(min)(); err != nil { // warm both engines
		return err
	}
	if err := check(dense)(); err != nil {
		return err
	}
	dDense, err := bench(check(dense))
	if err != nil {
		return err
	}
	dMin, err := bench(check(min))
	if err != nil {
		return err
	}
	n := float64(trail.Len())
	fmt.Printf("%-16s %-12s %s\n", "table", "time/check", "ns/entry")
	fmt.Printf("%-16s %-12v %.1f\n", "dense", dDense, float64(dDense.Nanoseconds())/n)
	fmt.Printf("%-16s %-12v %.1f\n", "minimized", dMin, float64(dMin.Nanoseconds())/n)
	record(benchRow{
		Exp: "P6", Name: "replay/dense", Entries: trail.Len(), NsPerOp: dDense.Nanoseconds(),
		NsPerEntry: float64(dDense.Nanoseconds()) / n,
	})
	record(benchRow{
		Exp: "P6", Name: "replay/minimized", Entries: trail.Len(), NsPerOp: dMin.Nanoseconds(),
		NsPerEntry: float64(dMin.Nanoseconds()) / n,
	})
	return nil
}

// expP6boot compares automaton artifact load time: the gzip+JSON
// envelope vs the flat binary container, same DFA.
func expP6boot() error {
	p, err := hospital.Treatment()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	d, err := encode.CompileProcess(p, roles)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchtab-p6-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	jsonPath, err := encode.SaveAutomaton(dir, d)
	if err != nil {
		return err
	}
	binPath, err := encode.SaveAutomatonBinary(dir, d)
	if err != nil {
		return err
	}
	// LoadAutomaton prefers the binary artifact when both exist, so
	// time the envelope from its own directory.
	jsonDir := filepath.Join(dir, "json-only")
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return err
	}
	if err := os.Rename(jsonPath, encode.ArtifactPath(jsonDir, d.Fingerprint)); err != nil {
		return err
	}
	const loads = 25
	timeLoads := func(dir string) (time.Duration, error) {
		return minTimed(func() (time.Duration, error) {
			t0 := time.Now()
			for i := 0; i < loads; i++ {
				if _, err := encode.LoadAutomaton(dir, d.Fingerprint); err != nil {
					return 0, err
				}
			}
			return time.Since(t0) / loads, nil
		})
	}
	dJSON, err := timeLoads(jsonDir)
	if err != nil {
		return err
	}
	dBin, err := timeLoads(dir)
	if err != nil {
		return err
	}
	jsonSize := fileSize(encode.ArtifactPath(jsonDir, d.Fingerprint))
	binSize := fileSize(binPath)
	fmt.Printf("\nartifact boot (%d states, %d symbols):\n", d.NumStates(), d.NumSymbols())
	fmt.Printf("%-16s %-12s %s\n", "format", "time/load", "bytes")
	fmt.Printf("%-16s %-12v %d\n", "gzip+json", dJSON, jsonSize)
	fmt.Printf("%-16s %-12v %d   (%.1fx faster)\n", "binary", dBin, binSize, float64(dJSON)/float64(dBin))
	record(benchRow{
		Exp: "P6", Name: "boot/artifact-json", Entries: d.NumStates(), NsPerOp: dJSON.Nanoseconds(),
		NsPerEntry: float64(dJSON.Nanoseconds()) / float64(d.NumStates()),
	})
	record(benchRow{
		Exp: "P6", Name: "boot/artifact-binary", Entries: d.NumStates(), NsPerOp: dBin.Nanoseconds(),
		NsPerEntry: float64(dBin.Nanoseconds()) / float64(d.NumStates()),
	})
	return nil
}

// expP6restore compares server boot from a JSON vs a binary
// checkpoint holding the same hospital-day state. The timed section
// is New+Start (restore runs inside Start); shutdown is off the
// clock.
func expP6restore(trail *audit.Trail) error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "benchtab-p6-ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := func(path string, binary bool) server.Config {
		return server.Config{
			Shards: 4, QueueDepth: 1 << 18, CheckpointPath: path,
			BinaryCheckpoint: binary, CheckpointEvery: time.Hour, Logger: quiet,
		}
	}
	write := func(path string, binary bool) error {
		srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles), cfg(path, binary))
		if err := srv.Start(); err != nil {
			return err
		}
		if n, ok := srv.IngestEntries(trail.Entries()); !ok {
			return fmt.Errorf("checkpoint ingest rejected after %d entries", n)
		}
		return srv.Shutdown(context.Background())
	}
	jsonPath := filepath.Join(dir, "ckpt.json")
	binPath := filepath.Join(dir, "ckpt.bin")
	if err := write(jsonPath, false); err != nil {
		return err
	}
	if err := write(binPath, true); err != nil {
		return err
	}
	timeRestore := func(path string, binary bool) (time.Duration, error) {
		return minTimed(func() (time.Duration, error) {
			t0 := time.Now()
			srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles), cfg(path, binary))
			if err := srv.Start(); err != nil {
				return 0, err
			}
			d := time.Since(t0)
			return d, srv.Shutdown(context.Background())
		})
	}
	dJSON, err := timeRestore(jsonPath, false)
	if err != nil {
		return err
	}
	dBin, err := timeRestore(binPath, true)
	if err != nil {
		return err
	}
	n := float64(trail.Len())
	fmt.Printf("\ncheckpoint restore (%d-entry day):\n", trail.Len())
	fmt.Printf("%-16s %-12s %s\n", "format", "time/boot", "bytes")
	fmt.Printf("%-16s %-12v %d\n", "json", dJSON, fileSize(jsonPath))
	fmt.Printf("%-16s %-12v %d   (%.1fx faster)\n", "binary", dBin, fileSize(binPath), float64(dJSON)/float64(dBin))
	record(benchRow{
		Exp: "P6", Name: "restore/checkpoint-json", Entries: trail.Len(), NsPerOp: dJSON.Nanoseconds(),
		NsPerEntry: float64(dJSON.Nanoseconds()) / n,
	})
	record(benchRow{
		Exp: "P6", Name: "restore/checkpoint-binary", Entries: trail.Len(), NsPerOp: dBin.Nanoseconds(),
		NsPerEntry: float64(dBin.Nanoseconds()) / n,
	})
	return nil
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return -1
	}
	return fi.Size()
}

func expP7() error {
	_, err := bpmn.NewBuilder("gateCycle").Pool("P").
		Start("S", "P").XOR("G1", "P").XOR("G2", "P").Task("T", "P", "").End("E", "P").
		Seq("S", "G1").Seq("G1", "G2").Seq("G2", "G1").Seq("G2", "T", "E").
		Build()
	fmt.Printf("gateway-only cycle rejected at diagram level: %v\n", err != nil)
	if err != nil {
		fmt.Printf("  %v\n", err)
	}

	// And the semantic guard: a silent-diverging COWS service.
	s := cows.MustParse(`sys.tick!<> | *sys.tick?<>.sys.tick!<>`)
	y := lts.NewSystem(func(l cows.Label) bool { return false })
	_, werr := y.WeakNext(s)
	fmt.Printf("silent divergence rejected by WeakNext guard: %v\n", werr != nil)
	if werr != nil {
		fmt.Printf("  %v\n", werr)
	}
	return expP7wal()
}

// expP7wal measures what the durability tier costs the full ingest
// pipeline — NDJSON scan + decode + WAL append + batched dispatch,
// the same work POST /v1/events does per line — with no WAL and then
// with the log under each fsync policy. The timer runs through
// Flush(), i.e. until every entry reached its monitor: on small-core
// boxes a producer-only window nondeterministically absorbs the shard
// consumers' replay work whenever the scheduler preempts the
// producer, so ingest-to-applied is the only stably measurable
// quantity (and the one a caller of ?wait=1 actually sees). Shutdown
// stays off the clock. These rows feed BENCH_pr7.json; the headline
// claim — interval-fsync ingest within 2x of the no-WAL pipeline — is
// asserted in adaptive runs, where quick mode's short rounds would be
// scheduler noise.
func expP7wal() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	trail, doc, err := p6Doc()
	if err != nil {
		return err
	}
	n := float64(trail.Len())
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	// Decoded lines are handed to IngestEntries in bounded chunks, like
	// the HTTP handler's per-request batching.
	const maxIngestChunk = 256
	scanner := audit.NewEntryScanner(bytes.NewReader(nil), audit.DecodeOptions{})
	rd := bytes.NewReader(doc)
	chunk := make([]audit.Entry, 0, maxIngestChunk)

	run := func(fsync string) (time.Duration, error) {
		return minTimed(func() (time.Duration, error) {
			cfg := server.Config{Shards: 4, QueueDepth: 1 << 18, Logger: quiet}
			if fsync != "" {
				dir, err := os.MkdirTemp("", "benchtab-wal-*")
				if err != nil {
					return 0, err
				}
				defer os.RemoveAll(dir)
				cfg.WALDir = dir
				cfg.WALFsync = fsync
			}
			srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles), cfg)
			if err := srv.Start(); err != nil {
				return 0, err
			}
			defer srv.Shutdown(context.Background())
			rd.Reset(doc)
			scanner.Reset(rd)
			fed := 0
			t0 := time.Now()
			for {
				chunk = chunk[:0]
				for len(chunk) < maxIngestChunk && scanner.Scan() {
					chunk = append(chunk, *scanner.Entry())
				}
				if len(chunk) == 0 {
					break
				}
				if got, ok := srv.IngestEntries(chunk); !ok {
					return 0, fmt.Errorf("ingest rejected after %d entries", fed+got)
				}
				fed += len(chunk)
			}
			srv.Flush()
			d := time.Since(t0)
			if err := scanner.Err(); err != nil {
				return 0, err
			}
			if fed != trail.Len() {
				return 0, fmt.Errorf("fed %d of %d entries", fed, trail.Len())
			}
			return d, nil
		})
	}

	policies := []struct{ name, fsync string }{
		{"none", ""},
		{"off", wal.FsyncOff},
		{"interval", wal.FsyncInterval},
		{"always", wal.FsyncAlways},
	}
	durs := map[string]time.Duration{}
	fmt.Printf("\nWAL ingest overhead (%d entries, decode+dispatch pipeline):\n", trail.Len())
	fmt.Printf("%-16s %-12s %s\n", "wal", "time/doc", "ns/entry")
	for _, p := range policies {
		d, err := run(p.fsync)
		if err != nil {
			return fmt.Errorf("wal/%s: %w", p.name, err)
		}
		durs[p.name] = d
		perEntry := float64(d.Nanoseconds()) / n
		if p.name == "none" {
			fmt.Printf("%-16s %-12v %.1f\n", p.name, d, perEntry)
		} else {
			fmt.Printf("%-16s %-12v %.1f   (%.2fx)\n", p.name, d, perEntry,
				float64(d)/float64(durs["none"]))
		}
		// The always row is informational only: per-chunk fsync latency
		// on shared/virtualized storage swings by multiples between
		// runs, which is not a code-regression signal the benchguard
		// should gate on.
		if p.name != "always" {
			record(benchRow{
				Exp: "P7", Name: "wal/" + p.name, Entries: trail.Len(),
				NsPerOp: d.Nanoseconds(), NsPerEntry: perEntry,
			})
		}
	}
	// The durability sweet spot must stay cheap: interval fsync within
	// 2x of running without a WAL at all.
	overhead := float64(durs["interval"]) / float64(durs["none"])
	if overhead > 2 && quickIters == 0 {
		return fmt.Errorf("interval-fsync ingest is %.2fx the no-WAL path, want <=2x", overhead)
	}
	return nil
}

func expP8() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	checker := sc.Framework.Checker
	base := time.Date(2026, 2, 1, 8, 0, 0, 0, time.UTC)
	mk := func(seq int, user, role, task, caseID string) audit.Entry {
		return audit.Entry{
			User: user, Role: role, Action: "read",
			Object: policy.MustParseObject("[Jane]EPR/Clinical"),
			Task:   task, Case: caseID,
			Time: base.Add(time.Duration(seq) * time.Minute), Status: audit.Success,
		}
	}
	solo := audit.NewTrail([]audit.Entry{mk(0, "Bob", "Cardiologist", "T01", "HT-99")})
	rep, err := checker.CheckCase(solo, "HT-99")
	if err != nil {
		return err
	}
	fmt.Printf("solo mimicry (cardiologist performs GP task): detected=%v (%s)\n", !rep.Compliant, rep.Violation.Reason)

	coll := audit.NewTrail([]audit.Entry{
		mk(0, "John", "GP", "T01", "HT-98"),
		mk(1, "John", "GP", "T05", "HT-98"),
		mk(2, "Bob", "Cardiologist", "T06", "HT-98"),
	})
	rep, err = checker.CheckCase(coll, "HT-98")
	if err != nil {
		return err
	}
	fmt.Printf("colluding mimicry prefix (GP + cardiologist): accepted=%v — simulation needs every role\n", rep.Compliant)

	extended := append(sc.Trail.ByCase("HT-1").Entries(), mk(100000, "Bob", "Cardiologist", "T06", "HT-1"))
	rep, err = checker.CheckCase(audit.NewTrail(extended), "HT-1")
	if err != nil {
		return err
	}
	fmt.Printf("reusing completed case HT-1 as cover: detected=%v at entry %d\n", !rep.Compliant, rep.StepsReplayed)
	return expP8ledger()
}

// expP8ledger measures what tamper evidence costs the durable ingest
// pipeline: the same decode+WAL+dispatch path as expP7wal (interval
// fsync throughout), with the Merkle ledger sealing every acknowledged
// entry. The grid walks batch size (1 = direct per-entry signing, the
// naive construction) and the wait-ms partial-batch timer; the headline
// claim — batch-64 sealing within 2x of the no-ledger pipeline — is
// asserted in adaptive runs only, like expP7wal's WAL claim.
func expP8ledger() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	trail, doc, err := p6Doc()
	if err != nil {
		return err
	}
	n := float64(trail.Len())
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	// A fixed signing key: key generation is a setup cost, not part of
	// the sealing path being measured.
	seed := sha256.Sum256([]byte("benchtab-p8-ledger-key"))
	key := ed25519.NewKeyFromSeed(seed[:])
	const maxIngestChunk = 256
	scanner := audit.NewEntryScanner(bytes.NewReader(nil), audit.DecodeOptions{})
	rd := bytes.NewReader(doc)
	chunk := make([]audit.Entry, 0, maxIngestChunk)

	run := func(batch int, wait time.Duration) (time.Duration, error) {
		return minTimed(func() (time.Duration, error) {
			dir, err := os.MkdirTemp("", "benchtab-ledger-*")
			if err != nil {
				return 0, err
			}
			defer os.RemoveAll(dir)
			cfg := server.Config{
				Shards: 4, QueueDepth: 1 << 18, Logger: quiet,
				WALDir: dir, WALFsync: wal.FsyncInterval,
			}
			if batch > 0 {
				cfg.LedgerKey = key
				cfg.LedgerBatch = batch
				cfg.LedgerWait = wait
			}
			srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles), cfg)
			if err := srv.Start(); err != nil {
				return 0, err
			}
			defer srv.Shutdown(context.Background())
			rd.Reset(doc)
			scanner.Reset(rd)
			fed := 0
			t0 := time.Now()
			for {
				chunk = chunk[:0]
				for len(chunk) < maxIngestChunk && scanner.Scan() {
					chunk = append(chunk, *scanner.Entry())
				}
				if len(chunk) == 0 {
					break
				}
				if got, ok := srv.IngestEntries(chunk); !ok {
					return 0, fmt.Errorf("ingest rejected after %d entries", fed+got)
				}
				fed += len(chunk)
			}
			srv.Flush()
			d := time.Since(t0)
			if err := scanner.Err(); err != nil {
				return 0, err
			}
			if fed != trail.Len() {
				return 0, fmt.Errorf("fed %d of %d entries", fed, trail.Len())
			}
			return d, nil
		})
	}

	points := []struct {
		name  string
		batch int
		wait  time.Duration
	}{
		{"none", 0, 0},
		{"direct-b1", 1, 0},
		{"b16", 16, 0},
		{"b64", 64, 0},
		{"b64w5ms", 64, 5 * time.Millisecond},
		{"b256", 256, 0},
	}
	durs := map[string]time.Duration{}
	fmt.Printf("\nMerkle ledger sealing overhead (%d entries, interval-fsync WAL pipeline):\n", trail.Len())
	fmt.Printf("%-16s %-12s %s\n", "ledger", "time/doc", "ns/entry")
	for _, p := range points {
		d, err := run(p.batch, p.wait)
		if err != nil {
			return fmt.Errorf("ledger/%s: %w", p.name, err)
		}
		durs[p.name] = d
		perEntry := float64(d.Nanoseconds()) / n
		if p.name == "none" {
			fmt.Printf("%-16s %-12v %.1f\n", p.name, d, perEntry)
		} else {
			fmt.Printf("%-16s %-12v %.1f   (%.2fx)\n", p.name, d, perEntry,
				float64(d)/float64(durs["none"]))
		}
		record(benchRow{
			Exp: "P8", Name: "ledger/" + p.name, Entries: trail.Len(),
			NsPerOp: d.Nanoseconds(), NsPerEntry: perEntry,
		})
	}
	// Batched sealing must stay cheap: the default batch-64 ledger
	// within 2x of the same pipeline with no ledger at all.
	overhead := float64(durs["b64"]) / float64(durs["none"])
	if overhead > 2 && quickIters == 0 {
		return fmt.Errorf("batch-64 ledger ingest is %.2fx the no-ledger path, want <=2x", overhead)
	}
	return nil
}

// expP10 measures what the stage-timer telemetry (PR 10) costs the
// same full ingest pipeline expP7wal times — NDJSON scan + decode +
// batched dispatch through Flush() — with stage timing off, at the
// default 1-in-64 batch sampling, and timing every batch. The
// flight recorder runs in all three rows (it is always on in
// production); only the sampling rate varies, so the delta is purely
// the time.Now calls and histogram observes. The headline claim —
// default sampling within 1.05x of timing disabled — is asserted in
// adaptive runs only; quick mode's 100-iteration rounds are scheduler
// noise at this resolution.
func expP10() error {
	sc, err := hospital.NewScenario()
	if err != nil {
		return err
	}
	roles, err := hospital.Roles()
	if err != nil {
		return err
	}
	trail, doc, err := p6Doc()
	if err != nil {
		return err
	}
	n := float64(trail.Len())
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	const maxIngestChunk = 256
	scanner := audit.NewEntryScanner(bytes.NewReader(nil), audit.DecodeOptions{})
	rd := bytes.NewReader(doc)
	chunk := make([]audit.Entry, 0, maxIngestChunk)

	// runOnce is one boot-ingest-flush measurement; unlike the other
	// pipeline experiments the rows are NOT measured with minTimed
	// back to back — see the interleaving note below.
	runOnce := func(sample int) (time.Duration, error) {
		cfg := server.Config{
			Shards: 4, QueueDepth: 1 << 18,
			StageSample: sample, Logger: quiet,
		}
		srv := server.New(sc.Registry, core.NewChecker(sc.Registry, roles), cfg)
		if err := srv.Start(); err != nil {
			return 0, err
		}
		defer srv.Shutdown(context.Background())
		rd.Reset(doc)
		scanner.Reset(rd)
		fed := 0
		// Level the GC state each boot so a row doesn't pay for the
		// heap its predecessors grew.
		runtime.GC()
		t0 := time.Now()
		for {
			chunk = chunk[:0]
			for len(chunk) < maxIngestChunk && scanner.Scan() {
				chunk = append(chunk, *scanner.Entry())
			}
			if len(chunk) == 0 {
				break
			}
			if got, ok := srv.IngestEntries(chunk); !ok {
				return 0, fmt.Errorf("ingest rejected after %d entries", fed+got)
			}
			fed += len(chunk)
		}
		srv.Flush()
		d := time.Since(t0)
		if err := scanner.Err(); err != nil {
			return 0, err
		}
		if fed != trail.Len() {
			return 0, fmt.Errorf("fed %d of %d entries", fed, trail.Len())
		}
		return d, nil
	}

	points := []struct {
		name   string
		sample int
	}{
		{"off", -1},
		{"1in64", 64},
		{"always", 1},
	}
	// Sampling's true cost (one atomic counter probe per batch, a few
	// time.Now calls on 1-in-64 of them) sits below this machine's
	// drift over a measurement session: whichever row runs last
	// inherits the heap, frequency scaling, and scheduler state its
	// predecessors left behind, so back-to-back minTimed rows have
	// shown both +21% and -25% for a change that costs neither.
	// Measure round-robin instead — one run of each row per round,
	// per-row minima across rounds — so drift lands on every row
	// equally, and grant the 5% assertion extra rounds before failing,
	// the same merge strategy the bench guard uses.
	durs := map[string]time.Duration{}
	round := func(pts []struct {
		name   string
		sample int
	}) error {
		for _, p := range pts {
			d, err := runOnce(p.sample)
			if err != nil {
				return fmt.Errorf("stages/%s: %w", p.name, err)
			}
			if cur, ok := durs[p.name]; !ok || d < cur {
				durs[p.name] = d
			}
		}
		return nil
	}
	for r := 0; r < p6Reps; r++ {
		if err := round(points); err != nil {
			return err
		}
	}
	const p10Retries = 4
	for r := 0; r < p10Retries && quickIters == 0 &&
		float64(durs["1in64"]) > 1.05*float64(durs["off"]); r++ {
		if err := round(points[:2]); err != nil {
			return err
		}
	}
	fmt.Printf("\nstage-timer sampling overhead (%d entries, decode+dispatch pipeline):\n", trail.Len())
	fmt.Printf("%-16s %-12s %s\n", "stages", "time/doc", "ns/entry")
	for _, p := range points {
		d := durs[p.name]
		perEntry := float64(d.Nanoseconds()) / n
		if p.name == "off" {
			fmt.Printf("%-16s %-12v %.1f\n", p.name, d, perEntry)
		} else {
			fmt.Printf("%-16s %-12v %.1f   (%.2fx)\n", p.name, d, perEntry,
				float64(d)/float64(durs["off"]))
		}
		record(benchRow{
			Exp: "P10", Name: "stages/" + p.name, Entries: trail.Len(),
			NsPerOp: d.Nanoseconds(), NsPerEntry: perEntry,
		})
	}
	// Default sampling must be free enough to leave on everywhere.
	overhead := float64(durs["1in64"]) / float64(durs["off"])
	if overhead > 1.05 && quickIters == 0 {
		return fmt.Errorf("1-in-64 stage sampling is %.2fx the untimed pipeline, want <=1.05x", overhead)
	}
	return nil
}
