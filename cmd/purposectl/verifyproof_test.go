package main

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/ledger"
	"repro/internal/policy"
)

// proofFixture seals a small trail and writes a /v1/proofs-shaped
// bundle plus the matching public-key file to dir.
func proofFixture(t *testing.T, dir string) (bundlePath, pubPath string) {
	t.Helper()
	seed := sha256.Sum256([]byte("verify-proof-test-seed"))
	key := ed25519.NewKeyFromSeed(seed[:])
	l, err := ledger.New(ledger.Options{Key: key, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2011, 4, 1, 9, 0, 0, 0, time.UTC)
	var entries []audit.Entry
	for i := 0; i < 7; i++ {
		entries = append(entries, audit.Entry{
			User: "alice", Role: "doctor", Action: "execute",
			Object: policy.Object{Subject: "Jane", Path: []string{"EPR"}},
			Task:   "T01", Case: "HT-1", Time: base.Add(time.Duration(i) * time.Minute),
			Status: audit.Success,
		})
	}
	if err := l.Append(entries, 0); err != nil {
		t.Fatal(err)
	}
	proof, err := l.ProveCase("HT-1")
	if err != nil {
		t.Fatal(err)
	}
	bundle := map[string]any{"case": "HT-1", "outcome": "violation", "proof": proof}
	data, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	bundlePath = filepath.Join(dir, "proof.json")
	if err := os.WriteFile(bundlePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	pubPath = filepath.Join(dir, "ledger.key.pub")
	pub := hex.EncodeToString(key.Public().(ed25519.PublicKey))
	if err := os.WriteFile(pubPath, []byte(pub+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return bundlePath, pubPath
}

func TestVerifyProofAccepts(t *testing.T) {
	dir := t.TempDir()
	bundle, pub := proofFixture(t, dir)
	if code := verifyProofMain([]string{"-bundle", bundle, "-pubkey-file", pub}); code != cli.ExitClean {
		t.Errorf("valid bundle: exit %d, want %d", code, cli.ExitClean)
	}
	// The embedded-key fallback still verifies (with a warning).
	if code := verifyProofMain([]string{"-bundle", bundle}); code != cli.ExitClean {
		t.Errorf("embedded key: exit %d, want %d", code, cli.ExitClean)
	}
}

func TestVerifyProofRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	bundle, pub := proofFixture(t, dir)
	orig, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][2]string{
		"entry field":     {`"alice"`, `"mallory"`},
		"root leaf count": {`"leaves": 3`, `"leaves": 2`},
	}
	for name, m := range mutations {
		if !strings.Contains(string(orig), m[0]) {
			t.Fatalf("%s: mutation target %q not in bundle", name, m[0])
		}
		mutated := strings.Replace(string(orig), m[0], m[1], 1)
		path := filepath.Join(dir, "tampered.json")
		if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
		if code := verifyProofMain([]string{"-bundle", path, "-pubkey-file", pub}); code != cli.ExitProblem {
			t.Errorf("%s: exit %d, want %d", name, code, cli.ExitProblem)
		}
	}
}

func TestVerifyProofRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	bundle, _ := proofFixture(t, dir)
	seed := sha256.Sum256([]byte("some-other-key"))
	other := ed25519.NewKeyFromSeed(seed[:])
	pub := hex.EncodeToString(other.Public().(ed25519.PublicKey))
	if code := verifyProofMain([]string{"-bundle", bundle, "-pubkey", pub}); code != cli.ExitProblem {
		t.Errorf("wrong key: exit %d, want %d", code, cli.ExitProblem)
	}
}

func TestVerifyProofUsageErrors(t *testing.T) {
	dir := t.TempDir()
	bundle, pub := proofFixture(t, dir)
	for name, args := range map[string][]string{
		"missing bundle":  {"-bundle", filepath.Join(dir, "nope.json"), "-pubkey-file", pub},
		"both key flags":  {"-bundle", bundle, "-pubkey", "ab", "-pubkey-file", pub},
		"bad key hex":     {"-bundle", bundle, "-pubkey", "zz"},
		"not a proof doc": {"-bundle", pub},
	} {
		if code := verifyProofMain(args); code != cli.ExitUsage {
			t.Errorf("%s: exit %d, want %d", name, code, cli.ExitUsage)
		}
	}
}
