// Command purposectl audits audit trails for purpose compliance: it
// replays every case of a trail against the organizational process its
// case code claims as purpose (Algorithm 1 of the paper) and, when a
// policy is supplied, additionally evaluates every logged action against
// the data protection policy (Definition 3).
//
// Usage:
//
//	purposectl -builtin hospital [-object "[Jane]EPR"] [-v]
//	purposectl -proc treat.json:HT -proc trial.bpmn:CT -trail day.csv \
//	           [-policy pol.txt] [-object OBJ] [-case HT-1] [-skips N] [-v]
//
// Processes are BPMN files — our JSON interchange (internal/bpmn.Spec)
// or OMG BPMN 2.0 XML (.bpmn/.xml) — bound to case codes with
// file:CODE[,CODE...]. Trails are CSV (Figure 4 layout) or JSONL,
// selected by extension. -skips N allows up to N unlogged task
// executions per case (partial-trail analysis, paper Section 7). Exit
// status is 1 when infringements or policy findings are reported, 2 on
// usage or input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/policy"
)

type procFlags []string

func (p *procFlags) String() string     { return strings.Join(*p, " ") }
func (p *procFlags) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	var (
		procs    procFlags
		trailArg = flag.String("trail", "", "trail file (.csv or .jsonl)")
		policyF  = flag.String("policy", "", "policy file (textual format)")
		builtin  = flag.String("builtin", "", "use a built-in scenario: 'hospital' (Figures 1-4)")
		object   = flag.String("object", "", "investigate one object, e.g. \"[Jane]EPR\"")
		caseID   = flag.String("case", "", "check a single case id")
		skips    = flag.Int("skips", 0, "allow up to N unlogged task executions per case")
		verbose  = flag.Bool("v", false, "print compliant cases too")
	)
	flag.Var(&procs, "proc", "process binding file.json:CODE[,CODE...] (repeatable)")
	flag.Parse()

	bad, findings, err := run(os.Stdout, procs, *trailArg, *policyF, *builtin, *object, *caseID, *skips, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl:", err)
		os.Exit(2)
	}
	if bad > 0 || findings > 0 {
		os.Exit(1)
	}
}

// run performs the audit and returns the infringement and policy
// finding counts; main maps them to the exit status.
func run(w io.Writer, procs []string, trailArg, policyF, builtin, object, caseID string, skips int, verbose bool) (int, int, error) {
	var (
		reg     = core.NewRegistry()
		pol     *policy.Policy
		consent *policy.ConsentRegistry
		trail   *audit.Trail
	)

	switch builtin {
	case "hospital":
		sc, err := hospital.NewScenario()
		if err != nil {
			return 0, 0, err
		}
		reg, pol, consent, trail = sc.Registry, sc.Policy, sc.Consents, sc.Trail
	case "":
		for _, spec := range procs {
			file, codes, ok := strings.Cut(spec, ":")
			if !ok {
				return 0, 0, fmt.Errorf("-proc %q: want file.json:CODE[,CODE...]", spec)
			}
			f, err := os.Open(file)
			if err != nil {
				return 0, 0, err
			}
			var proc *bpmn.Process
			if strings.HasSuffix(file, ".bpmn") || strings.HasSuffix(file, ".xml") {
				proc, err = bpmn.DecodeXML(f)
			} else {
				proc, err = bpmn.DecodeJSON(f)
			}
			f.Close()
			if err != nil {
				return 0, 0, err
			}
			if _, err := reg.Register(proc, strings.Split(codes, ",")...); err != nil {
				return 0, 0, err
			}
		}
		if len(procs) == 0 {
			return 0, 0, fmt.Errorf("no processes: use -proc or -builtin")
		}
	default:
		return 0, 0, fmt.Errorf("unknown builtin %q", builtin)
	}

	if trailArg != "" {
		f, err := os.Open(trailArg)
		if err != nil {
			return 0, 0, err
		}
		defer f.Close()
		if strings.HasSuffix(trailArg, ".jsonl") {
			trail, err = audit.ReadJSONL(f)
		} else {
			trail, err = audit.ReadCSV(f)
		}
		if err != nil {
			return 0, 0, err
		}
	}
	if trail == nil {
		return 0, 0, fmt.Errorf("no trail: use -trail (or -builtin hospital)")
	}

	if policyF != "" {
		f, err := os.Open(policyF)
		if err != nil {
			return 0, 0, err
		}
		pol, err = policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return 0, 0, err
		}
	}
	if consent == nil {
		consent = policy.NewConsentRegistry()
	}

	fw := core.NewFramework(reg, pol, consent)

	check := func(caseID string) (*core.Report, error) {
		if skips > 0 {
			srep, err := fw.Checker.CheckCaseWithSkips(trail, caseID, skips)
			if err != nil {
				return nil, err
			}
			if srep.Compliant && srep.SkipsUsed > 0 {
				fmt.Fprintf(w, "case %s: compliant with %d hypothesized unlogged execution(s): %v\n",
					caseID, srep.SkipsUsed, srep.SkippedLabels)
			}
			return &srep.Report, nil
		}
		return fw.Checker.CheckCase(trail, caseID)
	}

	var reports []*core.Report
	var findings []core.EntryFinding
	switch {
	case caseID != "":
		rep, err := check(caseID)
		if err != nil {
			return 0, 0, err
		}
		reports = []*core.Report{rep}
	case object != "":
		obj, err := policy.ParseObject(object)
		if err != nil {
			return 0, 0, err
		}
		res, err := fw.AuditObject(trail, obj)
		if err != nil {
			return 0, 0, err
		}
		reports, findings = res.CaseReports, res.PolicyFindings
	default:
		res, err := fw.Audit(trail)
		if err != nil {
			return 0, 0, err
		}
		reports, findings = res.CaseReports, res.PolicyFindings
	}
	if skips > 0 {
		// Re-examine infringements with the skip budget; gaps that a
		// few unlogged executions explain are downgraded in place.
		for i, rep := range reports {
			if rep.Compliant {
				continue
			}
			re, err := check(rep.Case)
			if err != nil {
				return 0, 0, err
			}
			reports[i] = re
		}
	}

	bad := 0
	for _, rep := range reports {
		if !rep.Compliant {
			bad++
			fmt.Fprintln(w, rep)
		} else if verbose {
			fmt.Fprintln(w, rep)
		}
	}
	nFindings := 0
	if pol != nil {
		nFindings = len(findings)
		for _, f := range findings {
			fmt.Fprintf(w, "policy finding (entry %d): %s: %s\n", f.Index, f.Entry, f.Reason)
		}
	}
	fmt.Fprintf(w, "checked %d case(s): %d infringement(s), %d policy finding(s)\n",
		len(reports), bad, nFindings)
	return bad, nFindings, nil
}
