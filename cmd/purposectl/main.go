// Command purposectl audits audit trails for purpose compliance: it
// replays every case of a trail against the organizational process its
// case code claims as purpose (Algorithm 1 of the paper) and, when a
// policy is supplied, additionally evaluates every logged action against
// the data protection policy (Definition 3).
//
// Usage:
//
//	purposectl -builtin hospital [-object "[Jane]EPR"] [-v]
//	purposectl -proc treat.json:HT -proc trial.bpmn:CT -trail day.csv \
//	           [-policy pol.txt] [-object OBJ] [-case HT-1] [-skips N] \
//	           [-lenient] [-explain] [-trace spans.jsonl] [-v]
//	purposectl verify-proof -bundle proof.json [-pubkey HEX | -pubkey-file F]
//	purposectl test [-cover-min PCT] [-summary FILE] [-v] ./scenarios/...
//	purposectl top [-addr http://127.0.0.1:8443] [-interval 2s] [-once]
//
// top renders a live terminal dashboard over a running auditd's
// GET /v1/status: ingest totals and rate, verdict counts, per-shard
// queue depth / high-water / restarts, WAL and ledger progress, and
// flight-recorder state. -once prints a single plain snapshot and
// exits, for scripts and CI.
//
// test runs declarative purpose-test fixtures (*.scenario.json): each
// pairs a process, a policy and annotated trails declaring the expected
// verdict and first deviation; every trail is replayed through the
// interpreter and both compiled engines, which must agree byte-for-byte
// (DESIGN.md §16).
//
// verify-proof checks a proof bundle from auditd's GET /v1/proofs/{case}
// offline — entry inclusion in signed Merkle roots, root-chain
// continuity, signatures — against a pinned public key (DESIGN.md §15).
//
// -explain prints a structured account under every non-compliant case:
// the diverging entry, the expected tasks at that point, and a
// nearest-miss hint (DESIGN.md §12). -trace records one span per case
// replay to a JSONL file (same span model auditd serves at /v1/traces).
//
// Processes are BPMN files — our JSON interchange (internal/bpmn.Spec)
// or OMG BPMN 2.0 XML (.bpmn/.xml) — bound to case codes with
// file:CODE[,CODE...]. Trails are CSV (Figure 4 layout) or JSONL,
// selected by extension. -skips N allows up to N unlogged task
// executions per case (partial-trail analysis, paper Section 7).
//
// -lenient switches ingestion to degraded mode: malformed trail lines
// are quarantined (and summarized) instead of aborting the run, and
// entries are ingested with per-case ordering and a bounded reorder
// buffer, recording duplicates and clock skew as anomalies.
//
// Exit status: 0 when every case is compliant; 1 when infringements or
// policy findings are reported; 2 on usage or input errors; 3 when the
// only irregularities are indeterminate cases (analysis abandoned on a
// budget or cap — neither compliance nor violation is claimed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/policy"
)

// options collects everything run needs; flags map onto it 1:1.
type options struct {
	procs   []string
	trail   string
	policy  string
	builtin string
	object  string
	caseID  string
	from    string
	to      string
	skips   int
	lenient bool
	explain bool
	trace   string
	verbose bool
}

// summary is what a run found; main maps it to the exit status.
type summary struct {
	cases         int
	infringements int
	indeterminate int
	findings      int
	quarantined   int
	anomalies     int
}

// exitCode maps a run summary onto the shared cli exit-status scale.
func exitCode(s summary) int {
	return cli.ExitCode(s.infringements, s.findings, s.indeterminate)
}

func main() {
	// Subcommand dispatch ahead of the top-level flags: verify-proof has
	// its own flag set and exit-code mapping.
	if len(os.Args) > 1 && os.Args[1] == "verify-proof" {
		os.Exit(verifyProofMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "test" {
		os.Exit(testMain(os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		os.Exit(topMain(os.Args[2:]))
	}
	var (
		procs cli.ProcList
		o     options
	)
	flag.StringVar(&o.trail, "trail", "", "trail file (.csv or .jsonl)")
	flag.StringVar(&o.policy, "policy", "", "policy file (textual format)")
	flag.StringVar(&o.builtin, "builtin", "", "use a built-in scenario: 'hospital' (Figures 1-4)")
	flag.StringVar(&o.object, "object", "", "investigate one object, e.g. \"[Jane]EPR\"")
	flag.StringVar(&o.caseID, "case", "", "check a single case id")
	flag.StringVar(&o.from, "from", "", "audit only entries at or after this time, "+cli.TimeUsage)
	flag.StringVar(&o.to, "to", "", "audit only entries before this time, "+cli.TimeUsage)
	flag.IntVar(&o.skips, "skips", 0, "allow up to N unlogged task executions per case")
	flag.BoolVar(&o.lenient, "lenient", false, "quarantine malformed trail lines and absorb ordering anomalies instead of aborting")
	flag.BoolVar(&o.explain, "explain", false, "print a structured explanation under every non-compliant case")
	flag.StringVar(&o.trace, "trace", "", "record one span per case replay to this JSONL file")
	flag.BoolVar(&o.verbose, "v", false, "print compliant cases too")
	version := flag.Bool("version", false, "print version and exit")
	flag.Var(&procs, "proc", cli.ProcUsage)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("purposectl"))
		return
	}
	o.procs = procs

	s, err := run(os.Stdout, o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl:", err)
		fmt.Fprintln(os.Stderr, cli.ExitCodesHelp)
		os.Exit(cli.ExitUsage)
	}
	os.Exit(exitCode(s))
}

// loadTrail reads the trail file; in lenient mode malformed lines are
// quarantined and entries pass through a per-case lenient store whose
// anomalies are reported alongside.
func loadTrail(path string, lenient bool) (*audit.Trail, *audit.Quarantine, []audit.Anomaly, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	jsonl := strings.HasSuffix(path, ".jsonl")
	if !lenient {
		var trail *audit.Trail
		if jsonl {
			trail, err = audit.ReadJSONL(f)
		} else {
			trail, err = audit.ReadCSV(f)
		}
		return trail, nil, nil, err
	}
	opts := audit.DecodeOptions{Lenient: true}
	var (
		entries []audit.Entry
		q       *audit.Quarantine
	)
	if jsonl {
		entries, q, err = audit.DecodeJSONLEntries(f, opts)
	} else {
		entries, q, err = audit.DecodeCSVEntries(f, opts)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	store := audit.NewStoreWith(audit.StoreOptions{Order: audit.OrderPerCaseLenient})
	for _, e := range entries {
		if err := store.Append(e); err != nil {
			return nil, nil, nil, err
		}
	}
	return store.Trail(), q, store.Anomalies(), nil
}

// run performs the audit and returns what it found; main maps the
// summary to the exit status.
func run(w io.Writer, o options) (summary, error) {
	var (
		s       summary
		reg     = core.NewRegistry()
		pol     *policy.Policy
		consent *policy.ConsentRegistry
		trail   *audit.Trail
	)

	if o.builtin != "" {
		sc, err := cli.Builtin(o.builtin)
		if err != nil {
			return s, err
		}
		reg, pol, consent, trail = sc.Registry, sc.Policy, sc.Consents, sc.Trail
	} else {
		if len(o.procs) == 0 {
			return s, fmt.Errorf("no processes: use -proc or -builtin")
		}
		if err := cli.LoadProcs(reg, o.procs); err != nil {
			return s, err
		}
	}

	if o.trail != "" {
		var (
			q     *audit.Quarantine
			anoms []audit.Anomaly
			err   error
		)
		trail, q, anoms, err = loadTrail(o.trail, o.lenient)
		if err != nil {
			return s, err
		}
		if q != nil && q.Len() > 0 {
			s.quarantined = q.Len()
			fmt.Fprintln(w, q.Summary())
			if o.verbose {
				for _, r := range q.Records {
					fmt.Fprintf(w, "  quarantined line %d: %v\n", r.Line, r.Err)
				}
			}
		}
		if len(anoms) > 0 {
			s.anomalies = len(anoms)
			kinds := map[audit.AnomalyKind]int{}
			for _, a := range anoms {
				kinds[a.Kind]++
			}
			fmt.Fprintf(w, "ingest absorbed %d ordering anomaly(ies):", len(anoms))
			for _, k := range []audit.AnomalyKind{audit.AnomalyReordered, audit.AnomalySkew, audit.AnomalyDuplicate} {
				if kinds[k] > 0 {
					fmt.Fprintf(w, " %d %s", kinds[k], k)
				}
			}
			fmt.Fprintln(w)
			if o.verbose {
				for _, a := range anoms {
					fmt.Fprintf(w, "  %s\n", a)
				}
			}
		}
	}
	if trail == nil {
		return s, fmt.Errorf("no trail: use -trail (or -builtin hospital)")
	}
	if o.from != "" || o.to != "" {
		var from, to time.Time
		var err error
		if o.from != "" {
			if from, err = cli.ParseTime(o.from); err != nil {
				return s, err
			}
		}
		if o.to != "" {
			if to, err = cli.ParseTime(o.to); err != nil {
				return s, err
			}
		}
		trail = cli.Window(trail, from, to)
	}

	if o.policy != "" {
		f, err := os.Open(o.policy)
		if err != nil {
			return s, err
		}
		pol, err = policy.ParsePolicy(f)
		f.Close()
		if err != nil {
			return s, err
		}
	}
	if consent == nil {
		consent = policy.NewConsentRegistry()
	}

	fw := core.NewFramework(reg, pol, consent)

	if o.trace != "" {
		// Framework audits replay cases sequentially, so the
		// single-goroutine replay tracer is safe on the shared checker.
		f, err := os.Create(o.trace)
		if err != nil {
			return s, err
		}
		exp := obs.NewJSONLExporter(f)
		fw.Checker.Observer = obs.NewReplayTracer(exp)
		defer func() {
			if err := exp.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "purposectl: span export:", err)
			}
			f.Close()
		}()
	}

	check := func(caseID string) (*core.Report, error) {
		if o.skips > 0 {
			srep, err := fw.Checker.CheckCaseWithSkips(trail, caseID, o.skips)
			if err != nil {
				return nil, err
			}
			if srep.Compliant && srep.SkipsUsed > 0 {
				fmt.Fprintf(w, "case %s: compliant with %d hypothesized unlogged execution(s): %v\n",
					caseID, srep.SkipsUsed, srep.SkippedLabels)
			}
			return &srep.Report, nil
		}
		return fw.Checker.CheckCase(trail, caseID)
	}

	var reports []*core.Report
	var findings []core.EntryFinding
	switch {
	case o.caseID != "":
		rep, err := check(o.caseID)
		if err != nil {
			return s, err
		}
		reports = []*core.Report{rep}
	case o.object != "":
		obj, err := policy.ParseObject(o.object)
		if err != nil {
			return s, err
		}
		res, err := fw.AuditObject(trail, obj)
		if err != nil {
			return s, err
		}
		reports, findings = res.CaseReports, res.PolicyFindings
	default:
		res, err := fw.Audit(trail)
		if err != nil {
			return s, err
		}
		reports, findings = res.CaseReports, res.PolicyFindings
	}
	if o.skips > 0 {
		// Re-examine infringements with the skip budget; gaps that a
		// few unlogged executions explain are downgraded in place.
		// Indeterminate cases are left alone: the skip search runs under
		// the same budgets that already failed.
		for i, rep := range reports {
			if rep.Compliant || rep.Outcome == core.OutcomeIndeterminate {
				continue
			}
			re, err := check(rep.Case)
			if err != nil {
				return s, err
			}
			reports[i] = re
		}
	}

	s.cases = len(reports)
	for _, rep := range reports {
		switch {
		case rep.Outcome == core.OutcomeIndeterminate:
			s.indeterminate++
			fmt.Fprintln(w, rep)
			if o.explain {
				obs.WriteExplanation(w, rep.Explanation)
			}
		case !rep.Compliant:
			s.infringements++
			fmt.Fprintln(w, rep)
			if o.explain {
				obs.WriteExplanation(w, rep.Explanation)
			}
		case o.verbose:
			fmt.Fprintln(w, rep)
		}
	}
	if pol != nil {
		s.findings = len(findings)
		for _, f := range findings {
			fmt.Fprintf(w, "policy finding (entry %d): %s: %s\n", f.Index, f.Entry, f.Reason)
		}
	}
	fmt.Fprintf(w, "checked %d case(s): %d infringement(s), %d indeterminate, %d policy finding(s)\n",
		s.cases, s.infringements, s.indeterminate, s.findings)
	return s, nil
}
