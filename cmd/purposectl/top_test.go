package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// statusFixture is a representative /v1/status document (the wire
// format purposectl top consumes; see internal/server.statusReply).
const statusFixture = `{
  "version": "v1.2.3",
  "go_version": "go1.24",
  "compiler_fingerprint": "deadbeefcafe0123",
  "uptime_seconds": 125.4,
  "ready": true,
  "cases": 17,
  "purposes": 2,
  "ingested": 4047,
  "rejected": 1,
  "quarantined": 2,
  "dropped": 0,
  "verdicts": {"compliant": 12, "violation": 4, "indeterminate": 1},
  "shards": [
    {"id": 1, "pending": 0, "depth": 1024, "high_water": 37, "cases": 8, "restarts": 0, "last_fed_lsn": 2048},
    {"id": 0, "pending": 3, "depth": 1024, "high_water": 99, "cases": 9, "restarts": 2, "failed": true, "last_fed_lsn": 1999}
  ],
  "wal": {"records": 4047, "last_lsn": 4047, "fsyncs": 17, "segments": 2, "bytes": 1536000},
  "ledger": {"head_seq": 63, "sealed_leaves": 4032, "open_leaves": 15, "sealed_lsn": 4032},
  "stage_sample_every": 64,
  "watchers": 1,
  "flight": {"events_held": 260, "total": 1900, "dumps": 1, "last_dump": "/tmp/flightrec-sigquit-1.json"},
  "snapshots": 4,
  "snapshot_age_seconds": 12.5
}`

// TestTopRendersStatus: fetch + render against a stub auditd — the
// same path `purposectl top -once` takes — must produce a dashboard
// with the identity line, totals, and one row per shard in id order.
func TestTopRendersStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/status" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(statusFixture))
	}))
	defer ts.Close()

	st, err := fetchStatus(http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	renderStatus(&buf, st, -1)
	out := buf.String()

	for _, want := range []string{
		"auditd v1.2.3 (go1.24, compiler deadbeefcafe)",
		"up 2m5s",
		"READY",
		"cases 17  purposes 2  ingested 4047",
		"violation 4",
		"stage sampling 1-in-64",
		"watchers 1",
		"1 dumps",
		"last flight dump: /tmp/flightrec-sigquit-1.json",
		"wal: 4047 records",
		"1.5 MiB",
		"ledger: head 63",
		"checkpoints: 4 written",
		"FAILED", // shard 0 is failed
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Shard rows render sorted by id even though the document isn't.
	if i0, i1 := strings.Index(out, "\n    0 "), strings.Index(out, "\n    1 "); i0 < 0 || i1 < 0 || i0 > i1 {
		t.Errorf("shard rows missing or unsorted (id 0 at %d, id 1 at %d):\n%s", i0, i1, out)
	}
}

// TestTopUnreachable: a dead server is a usage-style failure, not a
// panic or a hang.
func TestTopUnreachable(t *testing.T) {
	if code := topMain([]string{"-addr", "http://127.0.0.1:1", "-once"}); code == 0 {
		t.Errorf("top -once against nothing = exit %d, want non-zero", code)
	}
}
