package main

// purposectl top: a terminal dashboard over auditd's GET /v1/status —
// the ops surface for "what is the server doing right now". Refreshes
// in place every -interval; -once prints a single snapshot and exits
// (scripting / CI). The structs here mirror the /v1/status JSON shape
// by field name only: purposectl deliberately does not import
// internal/server, so the two binaries stay decoupled at the wire
// format, same as any external consumer.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
)

// topStatus decodes the /v1/status document.
type topStatus struct {
	Version             string  `json:"version"`
	GoVersion           string  `json:"go_version"`
	CompilerFingerprint string  `json:"compiler_fingerprint"`
	UptimeSeconds       float64 `json:"uptime_seconds"`
	Ready               bool    `json:"ready"`

	Cases    int `json:"cases"`
	Purposes int `json:"purposes"`

	Ingested    int64 `json:"ingested"`
	Rejected    int64 `json:"rejected"`
	Quarantined int64 `json:"quarantined"`
	Dropped     int64 `json:"dropped"`
	Verdicts    struct {
		Compliant     int64 `json:"compliant"`
		Violation     int64 `json:"violation"`
		Indeterminate int64 `json:"indeterminate"`
	} `json:"verdicts"`

	Shards []struct {
		ID         int    `json:"id"`
		Pending    int64  `json:"pending"`
		Depth      int64  `json:"depth"`
		HighWater  int64  `json:"high_water"`
		Cases      int    `json:"cases"`
		Restarts   int64  `json:"restarts"`
		Failed     bool   `json:"failed"`
		LastFedLSN uint64 `json:"last_fed_lsn"`
	} `json:"shards"`

	WAL *struct {
		Records  uint64 `json:"records"`
		LastLSN  uint64 `json:"last_lsn"`
		Fsyncs   uint64 `json:"fsyncs"`
		Segments int    `json:"segments"`
		Bytes    int64  `json:"bytes"`
		Failed   bool   `json:"failed"`
	} `json:"wal"`
	Ledger *struct {
		HeadSeq      int    `json:"head_seq"`
		SealedLeaves uint64 `json:"sealed_leaves"`
		OpenLeaves   int    `json:"open_leaves"`
		SealedLSN    uint64 `json:"sealed_lsn"`
	} `json:"ledger"`

	StageSampleEvery int `json:"stage_sample_every"`
	Watchers         int `json:"watchers"`
	Flight           struct {
		EventsHeld int    `json:"events_held"`
		Total      uint64 `json:"total"`
		Dumps      int64  `json:"dumps"`
		LastDump   string `json:"last_dump"`
	} `json:"flight"`

	Snapshots          int64   `json:"snapshots"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
}

func fetchStatus(client *http.Client, base string) (topStatus, error) {
	var st topStatus
	resp, err := client.Get(strings.TrimRight(base, "/") + "/v1/status")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return st, fmt.Errorf("GET /v1/status: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("decode /v1/status: %w", err)
	}
	return st, nil
}

// humanBytes renders a byte count in the nearest binary unit.
func humanBytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// renderStatus writes one dashboard frame. rate is entries/sec since
// the previous frame (NaN-free: negative means unknown, printed blank).
func renderStatus(w io.Writer, st topStatus, rate float64) {
	state := "READY"
	if !st.Ready {
		state = "NOT READY"
	}
	fmt.Fprintf(w, "auditd %s (%s, compiler %s)  up %s  %s\n",
		st.Version, st.GoVersion, shortFP(st.CompilerFingerprint),
		(time.Duration(st.UptimeSeconds * float64(time.Second))).Round(time.Second), state)
	fmt.Fprintf(w, "cases %d  purposes %d  ingested %d", st.Cases, st.Purposes, st.Ingested)
	if rate >= 0 {
		fmt.Fprintf(w, " (%.0f/s)", rate)
	}
	fmt.Fprintf(w, "  rejected %d  quarantined %d  dropped %d\n", st.Rejected, st.Quarantined, st.Dropped)
	fmt.Fprintf(w, "verdicts: compliant %d  violation %d  indeterminate %d\n",
		st.Verdicts.Compliant, st.Verdicts.Violation, st.Verdicts.Indeterminate)

	sampling := "off"
	switch {
	case st.StageSampleEvery == 1:
		sampling = "every batch"
	case st.StageSampleEvery > 1:
		sampling = fmt.Sprintf("1-in-%d", st.StageSampleEvery)
	}
	fmt.Fprintf(w, "stage sampling %s  watchers %d  flight %d held / %d total / %d dumps\n",
		sampling, st.Watchers, st.Flight.EventsHeld, st.Flight.Total, st.Flight.Dumps)
	if st.Flight.LastDump != "" {
		fmt.Fprintf(w, "last flight dump: %s\n", st.Flight.LastDump)
	}
	if st.WAL != nil {
		failed := ""
		if st.WAL.Failed {
			failed = "  FAILED"
		}
		fmt.Fprintf(w, "wal: %d records  lsn %d  fsyncs %d  %d segments  %s%s\n",
			st.WAL.Records, st.WAL.LastLSN, st.WAL.Fsyncs, st.WAL.Segments, humanBytes(st.WAL.Bytes), failed)
	}
	if st.Ledger != nil {
		fmt.Fprintf(w, "ledger: head %d  sealed %d  open %d  sealed-lsn %d\n",
			st.Ledger.HeadSeq, st.Ledger.SealedLeaves, st.Ledger.OpenLeaves, st.Ledger.SealedLSN)
	}
	if st.Snapshots > 0 {
		fmt.Fprintf(w, "checkpoints: %d written, last %s ago\n", st.Snapshots,
			(time.Duration(st.SnapshotAgeSeconds * float64(time.Second))).Round(time.Second))
	}

	fmt.Fprintf(w, "\n%5s %8s %6s %6s %6s %9s %9s  %s\n",
		"shard", "pending", "depth", "high", "cases", "restarts", "fed-lsn", "state")
	shards := st.Shards
	sort.SliceStable(shards, func(i, j int) bool { return shards[i].ID < shards[j].ID })
	for _, sh := range shards {
		state := "ok"
		if sh.Failed {
			state = "FAILED"
		}
		fmt.Fprintf(w, "%5d %8d %6d %6d %6d %9d %9d  %s\n",
			sh.ID, sh.Pending, sh.Depth, sh.HighWater, sh.Cases, sh.Restarts, sh.LastFedLSN, state)
	}
}

// shortFP abbreviates a compiler fingerprint for the header line.
func shortFP(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}

// topMain implements the top subcommand; returns the process exit code.
func topMain(args []string) int {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8443", "auditd base URL")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen control)")
	fs.Parse(args)

	client := &http.Client{Timeout: 10 * time.Second}
	st, err := fetchStatus(client, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl top:", err)
		return cli.ExitUsage
	}
	if *once {
		renderStatus(os.Stdout, st, -1)
		return 0
	}

	rate := -1.0 // unknown until a second sample gives a delta
	prev, prevAt := st.Ingested, time.Now()
	for {
		// Home + clear: redraw the frame in place like top(1).
		fmt.Print("\x1b[H\x1b[2J")
		renderStatus(os.Stdout, st, rate)
		time.Sleep(*interval)
		st, err = fetchStatus(client, *addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "purposectl top:", err)
			return cli.ExitUsage
		}
		now := time.Now()
		if dt := now.Sub(prevAt).Seconds(); dt > 0 {
			rate = float64(st.Ingested-prev) / dt
		}
		prev, prevAt = st.Ingested, now
	}
}
