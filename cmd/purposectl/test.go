package main

// test: the declarative purpose-test runner. It discovers
// *.scenario.json fixtures, replays every trail through the interpreter,
// the compiled automaton and the minimized automaton, requires the three
// reports to be byte-identical, checks each trail's declared verdict and
// first-deviation, and reports DFA state/edge coverage per purpose.
//
// Usage:
//
//	purposectl test ./scenarios/...
//	purposectl test -cover-min 60 -v scenarios/insurance-claim.scenario.json
//	purposectl test -summary "$GITHUB_STEP_SUMMARY" ./scenarios/...
//
// Arguments are fixture files, directories, or dir/... recursive
// patterns. -cover-min fails any fixture whose trails visit less than
// the given percentage of its purpose's DFA states. -summary appends a
// Markdown results table to the named file (GitHub step summaries).
//
// Exit status: 0 when every fixture passes, 1 when any assertion fails,
// 2 on usage errors or unloadable fixtures.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/scenario"
)

// testMain runs the subcommand and returns the process exit code; main
// dispatches to it before the top-level flag parse.
func testMain(args []string) int {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	coverMin := fs.Float64("cover-min", 0, "minimum DFA state coverage percentage per fixture (0 = no floor)")
	verbose := fs.Bool("v", false, "print every trail's verdict, not just failures")
	summary := fs.String("summary", "", "append a Markdown results table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}
	paths := fs.Args()
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "purposectl test: no fixtures named (try: purposectl test ./scenarios/...)")
		return cli.ExitUsage
	}

	code, md := runScenarios(os.Stdout, paths, scenario.Options{CoverMin: *coverMin}, *verbose)
	if *summary != "" && md != "" {
		if err := appendFile(*summary, md); err != nil {
			fmt.Fprintln(os.Stderr, "purposectl test: summary:", err)
			return cli.ExitUsage
		}
	}
	return code
}

// runScenarios executes the corpus, writing human output to w, and
// returns the exit code plus the Markdown summary table.
func runScenarios(w io.Writer, paths []string, opts scenario.Options, verbose bool) (int, string) {
	files, err := scenario.Discover(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl test:", err)
		return cli.ExitUsage, ""
	}

	var md strings.Builder
	md.WriteString("### Scenario corpus\n\n| fixture | trails | result | DFA state coverage |\n|---|---|---|---|\n")
	fixtures, trails, failed := 0, 0, 0
	for _, file := range files {
		fx, err := scenario.Load(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "purposectl test:", err)
			return cli.ExitUsage, ""
		}
		res, err := scenario.Run(fx, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "purposectl test:", err)
			return cli.ExitUsage, ""
		}
		fixtures++
		trails += len(res.Trails)

		status := "ok"
		if !res.OK() {
			status, failed = "FAIL", failed+1
		}
		fmt.Fprintf(w, "%-4s %s (%d trails)\n", status, fx.Name, len(res.Trails))
		if verbose {
			for _, tr := range res.Trails {
				fmt.Fprintf(w, "     %-28s %s\n", tr.Name, tr.Report.Outcome)
			}
		}
		covCell := "— (interpreter fallback)"
		for _, cr := range res.Coverage {
			fmt.Fprintf(w, "     cover %s\n", cr)
			covCell = fmt.Sprintf("%.1f%% states, %.1f%% edges", cr.StatePct(), cr.EdgePct())
		}
		for _, f := range res.Failures {
			fmt.Fprintf(w, "     FAIL %s\n", f)
		}
		mdStatus := "✅"
		if !res.OK() {
			mdStatus = "❌"
		}
		fmt.Fprintf(&md, "| %s | %d | %s | %s |\n", fx.Name, len(res.Trails), mdStatus, covCell)
	}

	fmt.Fprintf(w, "\n%d fixtures, %d trails", fixtures, trails)
	if failed > 0 {
		fmt.Fprintf(w, ", %d FAILED\n", failed)
		fmt.Fprintf(&md, "\n**%d of %d fixtures failed.**\n", failed, fixtures)
		return cli.ExitProblem, md.String()
	}
	fmt.Fprintln(w, ", all passing")
	fmt.Fprintf(&md, "\nAll %d fixtures (%d trails) passing; three engines byte-identical.\n", fixtures, trails)
	return cli.ExitClean, md.String()
}

// appendFile appends text to path, creating it if needed.
func appendFile(path, text string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(text); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
