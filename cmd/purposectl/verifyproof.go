package main

// verify-proof: the offline half of the tamper-evident ledger
// (DESIGN.md §15). It checks a proof bundle fetched from auditd's
// GET /v1/proofs/{case} — entry inclusion proofs, the signed root
// chain, and the verdict they anchor — with nothing but the bundle and
// the signer's public key. No server, no WAL, no trust in the bundle's
// own embedded key unless the caller accepts it explicitly.
//
// Usage:
//
//	purposectl verify-proof -bundle proof.json -pubkey-file ledger.key.pub
//	curl -s $AUDITD/v1/proofs/HT-11 | purposectl verify-proof -pubkey HEX
//
// Exit status: 0 when the proof verifies, 1 when it does not (any
// mutation of an entry, a root, or a signature), 2 on usage errors.

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/ledger"
)

// proofDoc is the accepted input shape: either a bare ledger.CaseProof
// or auditd's /v1/proofs bundle wrapping one (extra fields ignored).
type proofDoc struct {
	Case    string            `json:"case"`
	Outcome string            `json:"outcome"`
	Proof   *ledger.CaseProof `json:"proof"`
	// Bare-proof fields, set when the document IS the proof.
	Entries json.RawMessage `json:"entries"`
	Roots   json.RawMessage `json:"roots"`
}

// verifyProofMain runs the subcommand and returns the process exit
// code; main dispatches to it before the top-level flag parse.
func verifyProofMain(args []string) int {
	fs := flag.NewFlagSet("verify-proof", flag.ContinueOnError)
	bundle := fs.String("bundle", "-", "proof bundle file from GET /v1/proofs/{case} ('-' = stdin)")
	pubHex := fs.String("pubkey", "", "signer's ed25519 public key, hex")
	pubFile := fs.String("pubkey-file", "", "file holding the signer's public key in hex (auditd writes <ledger-key>.pub)")
	if err := fs.Parse(args); err != nil {
		return cli.ExitUsage
	}

	pub, pinned, err := resolvePubKey(*pubHex, *pubFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl verify-proof:", err)
		return cli.ExitUsage
	}

	var data []byte
	if *bundle == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*bundle)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "purposectl verify-proof:", err)
		return cli.ExitUsage
	}

	var doc proofDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintln(os.Stderr, "purposectl verify-proof: decoding bundle:", err)
		return cli.ExitUsage
	}
	proof := doc.Proof
	if proof == nil {
		// Not a wrapped bundle; try the document as a bare CaseProof.
		proof = &ledger.CaseProof{}
		if err := json.Unmarshal(data, proof); err != nil || len(proof.Entries) == 0 {
			fmt.Fprintln(os.Stderr, "purposectl verify-proof: no proof in document (want a /v1/proofs bundle or a bare case proof)")
			return cli.ExitUsage
		}
	}

	if !pinned {
		fmt.Fprintln(os.Stderr, "warning: no -pubkey/-pubkey-file; trusting the key embedded in the bundle (proves internal consistency, not origin)")
	}
	if err := ledger.VerifyCaseProof(pub, proof); err != nil {
		fmt.Printf("INVALID  case %s: %v\n", proof.Case, err)
		return cli.ExitProblem
	}
	head := proof.Roots[len(proof.Roots)-1]
	fmt.Printf("OK  case %s: %d entries proven against %d signed roots (head seq %d, %d leaves sealed)\n",
		proof.Case, len(proof.Entries), len(proof.Roots), head.Seq, head.FirstLSN+uint64(head.Leaves)-1)
	if doc.Outcome != "" {
		fmt.Printf("    verdict in bundle: %s\n", doc.Outcome)
	}
	return cli.ExitClean
}

// resolvePubKey picks the verification key: an explicit hex key, a key
// file, or (neither given) the bundle's embedded key with pinned=false.
func resolvePubKey(pubHex, pubFile string) (ed25519.PublicKey, bool, error) {
	if pubHex != "" && pubFile != "" {
		return nil, false, fmt.Errorf("use -pubkey or -pubkey-file, not both")
	}
	if pubFile != "" {
		data, err := os.ReadFile(pubFile)
		if err != nil {
			return nil, false, err
		}
		pubHex = strings.TrimSpace(string(data))
	}
	if pubHex == "" {
		return nil, false, nil
	}
	key, err := hex.DecodeString(pubHex)
	if err != nil || len(key) != ed25519.PublicKeySize {
		return nil, false, fmt.Errorf("public key: want %d hex-encoded bytes", ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(key), true, nil
}
