package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/policy"
)

func TestRunBuiltinHospital(t *testing.T) {
	var b strings.Builder
	s, err := run(&b, options{builtin: "hospital"})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 5 || s.findings != 0 || s.indeterminate != 0 {
		t.Fatalf("summary=%+v, want 5 infringements only", s)
	}
	out := b.String()
	for _, want := range []string{"HT-11", "INFRINGEMENT", "checked 8 case(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if exitCode(s) != 1 {
		t.Errorf("exit code = %d, want 1", exitCode(s))
	}
}

func TestRunObjectInvestigation(t *testing.T) {
	var b strings.Builder
	s, err := run(&b, options{builtin: "hospital", object: "[Jane]EPR", verbose: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 1 {
		t.Fatalf("infringements=%d, want 1 (only HT-11 touches Jane)", s.infringements)
	}
	if !strings.Contains(b.String(), "HT-1 ") || !strings.Contains(b.String(), "HT-11") {
		t.Errorf("expected HT-1 and HT-11 in output:\n%s", b.String())
	}
}

func TestRunSingleCase(t *testing.T) {
	var b strings.Builder
	s, err := run(&b, options{builtin: "hospital", caseID: "HT-1", verbose: true})
	if err != nil || s.infringements != 0 {
		t.Fatalf("summary=%+v err=%v", s, err)
	}
	if !strings.Contains(b.String(), "checked 1 case(s)") {
		t.Errorf("output:\n%s", b.String())
	}
	if exitCode(s) != 0 {
		t.Errorf("exit code = %d, want 0", exitCode(s))
	}
}

func mkEntry(min int, task, caseID string) audit.Entry {
	return audit.Entry{
		User: "u", Role: "P", Action: "read",
		Object: policy.MustParseObject("[S1]Doc"),
		Task:   task, Case: caseID,
		Time:   time.Date(2026, 5, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute),
		Status: audit.Success,
	}
}

// writeFlowProc writes the 2-task linear test process and returns its
// -proc binding spec.
func writeFlowProc(t *testing.T, dir string) string {
	t.Helper()
	proc := bpmn.NewBuilder("Flow").Pool("P").
		Start("S", "P").Task("A", "P", "").Task("B", "P", "").End("E", "P").
		Seq("S", "A", "B", "E").MustBuild()
	procPath := filepath.Join(dir, "flow.json")
	pf, err := os.Create(procPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.EncodeJSON(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()
	return procPath + ":FL"
}

func TestRunWithFiles(t *testing.T) {
	dir := t.TempDir()
	procSpec := writeFlowProc(t, dir)

	// A trail with one good and one bad case.
	trail := audit.NewTrail([]audit.Entry{
		mkEntry(0, "A", "FL-1"), mkEntry(1, "B", "FL-1"),
		mkEntry(5, "B", "FL-2"),
	})
	trailPath := filepath.Join(dir, "trail.csv")
	tf, err := os.Create(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.WriteCSV(tf, trail); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	// A policy file.
	polPath := filepath.Join(dir, "pol.txt")
	polText := "role P\npermit P read [*]Doc for Flow\n"
	if err := os.WriteFile(polPath, []byte(polText), 0o644); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	s, err := run(&b, options{procs: []string{procSpec}, trail: trailPath, policy: polPath})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 1 || s.findings != 0 {
		t.Fatalf("summary=%+v, want 1 infringement\n%s", s, b.String())
	}

	// JSONL input too.
	jsonlPath := filepath.Join(dir, "trail.jsonl")
	jf, _ := os.Create(jsonlPath)
	if err := audit.WriteJSONL(jf, trail); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	s, err = run(&b, options{procs: []string{procSpec}, trail: jsonlPath})
	if err != nil || s.infringements != 1 {
		t.Fatalf("jsonl: summary=%+v err=%v", s, err)
	}
}

func TestRunLenientTrail(t *testing.T) {
	dir := t.TempDir()
	procSpec := writeFlowProc(t, dir)

	// Serialize a clean trail, then corrupt one line and duplicate
	// another — strict mode must abort, lenient mode must quarantine,
	// flag the duplicate and still reach verdicts.
	trail := audit.NewTrail([]audit.Entry{
		mkEntry(0, "A", "FL-1"), mkEntry(1, "B", "FL-1"),
		mkEntry(5, "A", "FL-2"),
	})
	var enc strings.Builder
	if err := audit.WriteCSV(&enc, trail); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(enc.String(), "\n"), "\n")
	lines[3] = "CORRUPTED RECORD"   // FL-2's A entry
	lines = append(lines, lines[1]) // duplicate FL-1's A entry
	src := strings.Join(lines, "\n") + "\n"
	trailPath := filepath.Join(dir, "trail.csv")
	if err := os.WriteFile(trailPath, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if _, err := run(&b, options{procs: []string{procSpec}, trail: trailPath}); err == nil {
		t.Fatalf("strict mode accepted a corrupt trail")
	}

	b.Reset()
	s, err := run(&b, options{procs: []string{procSpec}, trail: trailPath, lenient: true, verbose: true})
	if err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	if s.quarantined != 1 || s.anomalies != 1 {
		t.Fatalf("summary=%+v, want 1 quarantined + 1 anomaly\n%s", s, b.String())
	}
	// FL-1 stays compliant; FL-2 lost its only entry to quarantine and
	// checks as an empty (pending, compliant) case.
	if s.infringements != 0 {
		t.Fatalf("summary=%+v\n%s", s, b.String())
	}
	out := b.String()
	for _, want := range []string{"quarantined", "duplicate", "checked"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExplain(t *testing.T) {
	var b strings.Builder
	s, err := run(&b, options{builtin: "hospital", explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 5 {
		t.Fatalf("summary=%+v", s)
	}
	out := b.String()
	for _, want := range []string{
		"violation at entry 0", "expected: GP.T01 → tasks T01", "hint:", "reason:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTraceExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "spans.jsonl")
	var b strings.Builder
	if _, err := run(&b, options{builtin: "hospital", trace: tracePath}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	// One replay span per audited case (8 hospital cases).
	if len(lines) != 8 {
		t.Fatalf("%d spans exported, want 8:\n%s", len(lines), data)
	}
	if !strings.Contains(string(data), `"name":"replay"`) ||
		!strings.Contains(string(data), `"outcome":"violation"`) {
		t.Fatalf("span export lacks expected attributes:\n%s", data)
	}
}

func TestExitCodes(t *testing.T) {
	cases := []struct {
		s    summary
		want int
	}{
		{summary{}, 0},
		{summary{cases: 3}, 0},
		{summary{infringements: 1}, 1},
		{summary{findings: 2}, 1},
		{summary{indeterminate: 1}, 3},
		{summary{infringements: 1, indeterminate: 1}, 1},
		{summary{quarantined: 4, anomalies: 2}, 0},
	}
	for _, c := range cases {
		if got := exitCode(c.s); got != c.want {
			t.Errorf("exitCode(%+v) = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestRunUsageErrors(t *testing.T) {
	var b strings.Builder
	cases := []options{
		{},
		{builtin: "nope"},
		{procs: []string{"badspec"}, trail: "x.csv"},
		{procs: []string{"missing.json:XX"}, trail: "x.csv"},
		{builtin: "hospital", trail: "missing.csv"},
		{builtin: "hospital", object: "[bad"},
		{builtin: "hospital", policy: "missing.txt"},
	}
	for i, o := range cases {
		if _, err := run(&b, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunWithBPMNXMLAndSkips(t *testing.T) {
	dir := t.TempDir()
	xmlSrc := `<?xml version="1.0"?>
<definitions xmlns="http://www.omg.org/spec/BPMN/20100524/MODEL" id="d">
  <process id="Intake">
    <startEvent id="S"/>
    <task id="T_a"/><task id="T_b"/><task id="T_c"/>
    <endEvent id="E"/>
    <sequenceFlow id="f1" sourceRef="S" targetRef="T_a"/>
    <sequenceFlow id="f2" sourceRef="T_a" targetRef="T_b"/>
    <sequenceFlow id="f3" sourceRef="T_b" targetRef="T_c"/>
    <sequenceFlow id="f4" sourceRef="T_c" targetRef="E"/>
  </process>
</definitions>`
	procPath := filepath.Join(dir, "intake.bpmn")
	if err := os.WriteFile(procPath, []byte(xmlSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// Trail with a gap: T_b was never logged.
	mk := func(min int, task string) audit.Entry {
		return audit.Entry{
			User: "u", Role: "Intake", Action: "read",
			Object: policy.MustParseObject("[S1]Doc"),
			Task:   task, Case: "IN-1",
			Time:   time.Date(2026, 5, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute),
			Status: audit.Success,
		}
	}
	trail := audit.NewTrail([]audit.Entry{mk(0, "T_a"), mk(1, "T_c")})
	trailPath := filepath.Join(dir, "trail.csv")
	tf, _ := os.Create(trailPath)
	if err := audit.WriteCSV(tf, trail); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	// Without skips: infringement.
	var b strings.Builder
	s, err := run(&b, options{procs: []string{procPath + ":IN"}, trail: trailPath})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 1 {
		t.Fatalf("summary=%+v, want 1 infringement\n%s", s, b.String())
	}
	// With a skip budget: explained.
	b.Reset()
	s, err = run(&b, options{procs: []string{procPath + ":IN"}, trail: trailPath, skips: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.infringements != 0 {
		t.Fatalf("summary=%+v with skips\n%s", s, b.String())
	}
	if !strings.Contains(b.String(), "hypothesized unlogged") || !strings.Contains(b.String(), "T_b") {
		t.Errorf("missing skip explanation:\n%s", b.String())
	}
}
