package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/policy"
)

func TestRunBuiltinHospital(t *testing.T) {
	var b strings.Builder
	bad, findings, err := run(&b, nil, "", "", "hospital", "", "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 5 || findings != 0 {
		t.Fatalf("bad=%d findings=%d, want 5/0", bad, findings)
	}
	out := b.String()
	for _, want := range []string{"HT-11", "INFRINGEMENT", "checked 8 case(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunObjectInvestigation(t *testing.T) {
	var b strings.Builder
	bad, _, err := run(&b, nil, "", "", "hospital", "[Jane]EPR", "", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("bad=%d, want 1 (only HT-11 touches Jane)", bad)
	}
	if !strings.Contains(b.String(), "HT-1 ") || !strings.Contains(b.String(), "HT-11") {
		t.Errorf("expected HT-1 and HT-11 in output:\n%s", b.String())
	}
}

func TestRunSingleCase(t *testing.T) {
	var b strings.Builder
	bad, _, err := run(&b, nil, "", "", "hospital", "", "HT-1", 0, true)
	if err != nil || bad != 0 {
		t.Fatalf("bad=%d err=%v", bad, err)
	}
	if !strings.Contains(b.String(), "checked 1 case(s)") {
		t.Errorf("output:\n%s", b.String())
	}
}

func TestRunWithFiles(t *testing.T) {
	dir := t.TempDir()

	// A tiny process file.
	proc := bpmn.NewBuilder("Flow").Pool("P").
		Start("S", "P").Task("A", "P", "").Task("B", "P", "").End("E", "P").
		Seq("S", "A", "B", "E").MustBuild()
	procPath := filepath.Join(dir, "flow.json")
	pf, err := os.Create(procPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := proc.EncodeJSON(pf); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	// A trail with one good and one bad case.
	mk := func(min int, task, caseID string) audit.Entry {
		return audit.Entry{
			User: "u", Role: "P", Action: "read",
			Object: policy.MustParseObject("[S1]Doc"),
			Task:   task, Case: caseID,
			Time:   time.Date(2026, 5, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute),
			Status: audit.Success,
		}
	}
	trail := audit.NewTrail([]audit.Entry{
		mk(0, "A", "FL-1"), mk(1, "B", "FL-1"),
		mk(5, "B", "FL-2"),
	})
	trailPath := filepath.Join(dir, "trail.csv")
	tf, err := os.Create(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.WriteCSV(tf, trail); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	// A policy file.
	polPath := filepath.Join(dir, "pol.txt")
	polText := "role P\npermit P read [*]Doc for Flow\n"
	if err := os.WriteFile(polPath, []byte(polText), 0o644); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	bad, findings, err := run(&b, []string{procPath + ":FL"}, trailPath, polPath, "", "", "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 || findings != 0 {
		t.Fatalf("bad=%d findings=%d, want 1/0\n%s", bad, findings, b.String())
	}

	// JSONL input too.
	jsonlPath := filepath.Join(dir, "trail.jsonl")
	jf, _ := os.Create(jsonlPath)
	if err := audit.WriteJSONL(jf, trail); err != nil {
		t.Fatal(err)
	}
	jf.Close()
	bad, _, err = run(&b, []string{procPath + ":FL"}, jsonlPath, "", "", "", "", 0, false)
	if err != nil || bad != 1 {
		t.Fatalf("jsonl: bad=%d err=%v", bad, err)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var b strings.Builder
	cases := []func() error{
		func() error { _, _, err := run(&b, nil, "", "", "", "", "", 0, false); return err },
		func() error { _, _, err := run(&b, nil, "", "", "nope", "", "", 0, false); return err },
		func() error { _, _, err := run(&b, []string{"badspec"}, "x.csv", "", "", "", "", 0, false); return err },
		func() error { _, _, err := run(&b, []string{"missing.json:XX"}, "x.csv", "", "", "", "", 0, false); return err },
		func() error { _, _, err := run(&b, nil, "missing.csv", "", "hospital", "", "", 0, false); return err },
		func() error { _, _, err := run(&b, nil, "", "", "hospital", "[bad", "", 0, false); return err },
		func() error { _, _, err := run(&b, nil, "", "missing.txt", "hospital", "", "", 0, false); return err },
	}
	for i, f := range cases {
		if err := f(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunWithBPMNXMLAndSkips(t *testing.T) {
	dir := t.TempDir()
	xmlSrc := `<?xml version="1.0"?>
<definitions xmlns="http://www.omg.org/spec/BPMN/20100524/MODEL" id="d">
  <process id="Intake">
    <startEvent id="S"/>
    <task id="T_a"/><task id="T_b"/><task id="T_c"/>
    <endEvent id="E"/>
    <sequenceFlow id="f1" sourceRef="S" targetRef="T_a"/>
    <sequenceFlow id="f2" sourceRef="T_a" targetRef="T_b"/>
    <sequenceFlow id="f3" sourceRef="T_b" targetRef="T_c"/>
    <sequenceFlow id="f4" sourceRef="T_c" targetRef="E"/>
  </process>
</definitions>`
	procPath := filepath.Join(dir, "intake.bpmn")
	if err := os.WriteFile(procPath, []byte(xmlSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// Trail with a gap: T_b was never logged.
	mk := func(min int, task string) audit.Entry {
		return audit.Entry{
			User: "u", Role: "Intake", Action: "read",
			Object: policy.MustParseObject("[S1]Doc"),
			Task:   task, Case: "IN-1",
			Time:   time.Date(2026, 5, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute),
			Status: audit.Success,
		}
	}
	trail := audit.NewTrail([]audit.Entry{mk(0, "T_a"), mk(1, "T_c")})
	trailPath := filepath.Join(dir, "trail.csv")
	tf, _ := os.Create(trailPath)
	if err := audit.WriteCSV(tf, trail); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	// Without skips: infringement.
	var b strings.Builder
	bad, _, err := run(&b, []string{procPath + ":IN"}, trailPath, "", "", "", "", 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 1 {
		t.Fatalf("bad=%d, want 1\n%s", bad, b.String())
	}
	// With a skip budget: explained.
	b.Reset()
	bad, _, err = run(&b, []string{procPath + ":IN"}, trailPath, "", "", "", "", 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if bad != 0 {
		t.Fatalf("bad=%d with skips, want 0\n%s", bad, b.String())
	}
	if !strings.Contains(b.String(), "hypothesized unlogged") || !strings.Contains(b.String(), "T_b") {
		t.Errorf("missing skip explanation:\n%s", b.String())
	}
}
