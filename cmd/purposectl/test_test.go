package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/scenario"
)

const passingFixture = `{
  "name": "cmd-pass",
  "process": {
    "name": "CmdPass",
    "pools": ["Ops"],
    "elements": [
      {"id": "S1", "kind": "start", "pool": "Ops"},
      {"id": "T01", "kind": "task", "pool": "Ops", "name": "Only step"},
      {"id": "E1", "kind": "end", "pool": "Ops"}
    ],
    "flows": [
      {"from": "S1", "to": "T01", "kind": "sequence"},
      {"from": "T01", "to": "E1", "kind": "sequence"}
    ]
  },
  "case_codes": ["CP"],
  "trails": [
    {
      "name": "ok",
      "case": "CP-1",
      "entries": [{"time": "202608080900", "user": "u1", "role": "Ops", "task": "T01"}],
      "expect": {"verdict": "compliant"}
    }
  ]
}`

// writeScenario drops fixture JSON into dir under name.scenario.json.
func writeScenario(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name+scenario.Ext)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScenariosPass(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "cmd-pass", passingFixture)

	var out strings.Builder
	code, md := runScenarios(&out, []string{dir}, scenario.Options{CoverMin: 60}, true)
	if code != cli.ExitClean {
		t.Fatalf("exit = %d, output:\n%s", code, out.String())
	}
	for _, want := range []string{"ok   cmd-pass (1 trails)", "compliant", "cover CmdPass:", "all passing"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	for _, want := range []string{"| fixture |", "| cmd-pass | 1 | ✅ |", "All 1 fixtures"} {
		if !strings.Contains(md, want) {
			t.Errorf("summary missing %q:\n%s", want, md)
		}
	}
}

func TestRunScenariosFailure(t *testing.T) {
	dir := t.TempDir()
	// Same process, but the trail claims a violation that never happens.
	broken := strings.Replace(passingFixture, `"verdict": "compliant"`, `"verdict": "violation"`, 1)
	broken = strings.Replace(broken, `"name": "cmd-pass"`, `"name": "cmd-fail"`, 1)
	writeScenario(t, dir, "cmd-fail", broken)

	var out strings.Builder
	code, md := runScenarios(&out, []string{dir}, scenario.Options{}, false)
	if code != cli.ExitProblem {
		t.Fatalf("exit = %d, want %d; output:\n%s", code, cli.ExitProblem, out.String())
	}
	for _, want := range []string{"FAIL cmd-fail", "verdict = compliant, want violation", "1 FAILED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(md, "❌") || !strings.Contains(md, "1 of 1 fixtures failed") {
		t.Errorf("summary did not flag the failure:\n%s", md)
	}
}

func TestRunScenariosUsageErrors(t *testing.T) {
	var out strings.Builder
	if code, _ := runScenarios(&out, []string{filepath.Join(t.TempDir(), "nope")}, scenario.Options{}, false); code != cli.ExitUsage {
		t.Errorf("missing path: exit = %d, want %d", code, cli.ExitUsage)
	}
	dir := t.TempDir()
	writeScenario(t, dir, "bad", `{"name": "bad"`)
	if code, _ := runScenarios(&out, []string{dir}, scenario.Options{}, false); code != cli.ExitUsage {
		t.Errorf("unparsable fixture: exit = %d, want %d", code, cli.ExitUsage)
	}
}

func TestTestMainSummaryFile(t *testing.T) {
	dir := t.TempDir()
	writeScenario(t, dir, "cmd-pass", passingFixture)
	sum := filepath.Join(dir, "summary.md")

	if code := testMain([]string{"-cover-min", "60", "-summary", sum, dir}); code != cli.ExitClean {
		t.Fatalf("exit = %d", code)
	}
	b, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "### Scenario corpus") {
		t.Fatalf("summary file:\n%s", b)
	}

	// A second run appends rather than truncates (step summaries are
	// append-only).
	if code := testMain([]string{"-summary", sum, dir}); code != cli.ExitClean {
		t.Fatalf("second run exit = %d", code)
	}
	b2, err := os.ReadFile(sum)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2) <= len(b) {
		t.Fatal("summary file was not appended to")
	}
}

func TestTestMainUsage(t *testing.T) {
	if code := testMain(nil); code != cli.ExitUsage {
		t.Errorf("no args: exit = %d, want %d", code, cli.ExitUsage)
	}
	if code := testMain([]string{"-definitely-not-a-flag"}); code != cli.ExitUsage {
		t.Errorf("bad flag: exit = %d, want %d", code, cli.ExitUsage)
	}
}

// TestCorpusViaCommand runs the real checked-in corpus through the
// subcommand path, mirroring what ci.sh invokes.
func TestCorpusViaCommand(t *testing.T) {
	var out strings.Builder
	code, md := runScenarios(&out, []string{"../../scenarios/..."}, scenario.Options{CoverMin: 60}, false)
	if code != cli.ExitClean {
		t.Fatalf("corpus run exit = %d:\n%s", code, out.String())
	}
	if !strings.Contains(md, "✅") || strings.Contains(md, "❌") {
		t.Fatalf("corpus summary:\n%s", md)
	}
}
