package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/cli"
	"repro/internal/core"
)

func TestGenerateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.csv")

	if err := run(12, 2, 7, 5, "GEN", 2, procPath, trailPath, "", "", false, 0); err != nil {
		t.Fatal(err)
	}

	pf, err := os.Open(procPath)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := bpmn.DecodeJSON(pf)
	pf.Close()
	if err != nil {
		t.Fatalf("generated process does not round-trip: %v", err)
	}
	if proc.Stats().Tasks < 12 || proc.Stats().Pools != 2 {
		t.Fatalf("stats = %+v", proc.Stats())
	}

	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadCSV(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(trail.Cases()) != 5 {
		t.Fatalf("cases = %v", trail.Cases())
	}

	// The generated trail must replay cleanly against the generated
	// process.
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "GEN"); err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(reg, nil)
	reports, err := checker.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Compliant {
			t.Errorf("generated case rejected: %s", rep)
		}
	}
}

func TestGenerateWithViolations(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.jsonl")

	if err := run(10, 1, 3, 6, "GEN", 1, procPath, trailPath, "wrong-role", "", false, 0); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	// At least one entry carries the injected role.
	found := false
	for i := 0; i < trail.Len(); i++ {
		if trail.At(i).Role == "Intruder" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wrong-role injection in output")
	}
}

func TestStreamBuiltinHospital(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "feed.ndjson")

	if err := run(0, 0, 0, 0, "", 0, "", outPath, "", "hospital", true, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := audit.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("streamed NDJSON does not parse: %v", err)
	}
	want, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Trail.Len() {
		t.Fatalf("streamed %d entries, Figure 4 trail has %d", got.Len(), want.Trail.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), want.Trail.At(i)
		if g.Case != w.Case || g.Task != w.Task || g.User != w.User || !g.Time.Equal(w.Time) {
			t.Fatalf("entry %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestDueBy(t *testing.T) {
	const total = 1000
	// At the start exactly one entry is due; entry n is due at n/rate
	// seconds.
	if got := dueBy(0, 100, total); got != 1 {
		t.Fatalf("dueBy(0) = %d, want 1", got)
	}
	if got := dueBy(time.Second, 100, total); got != 101 {
		t.Fatalf("dueBy(1s, 100/s) = %d, want 101", got)
	}
	// A stalled writer catches up in one burst: the schedule is
	// absolute, not relative to the last emission.
	if got := dueBy(2500*time.Millisecond, 100, total); got != 251 {
		t.Fatalf("dueBy(2.5s, 100/s) = %d, want 251", got)
	}
	// Monotone in elapsed time.
	prev := 0
	for ms := 0; ms <= 1000; ms += 7 {
		got := dueBy(time.Duration(ms)*time.Millisecond, 50, total)
		if got < prev {
			t.Fatalf("dueBy not monotone: %d then %d at %dms", prev, got, ms)
		}
		prev = got
	}
	// Clamped at the trail length.
	if got := dueBy(time.Hour, 100, total); got != total {
		t.Fatalf("dueBy(1h) = %d, want %d", got, total)
	}
	// rate <= 0 means unthrottled: everything due.
	if got := dueBy(0, 0, total); got != total {
		t.Fatalf("dueBy(rate=0) = %d, want %d", got, total)
	}
	// Absurd elapsed*rate products clamp instead of going negative.
	if got := dueBy(1<<60, 1e12, total); got != total {
		t.Fatalf("dueBy(overflow) = %d, want %d", got, total)
	}
}

// TestStreamPaced runs the paced emitter at a rate high enough that
// the whole Figure 4 trail is due within a tick or two; the output
// must still be byte-complete NDJSON.
func TestStreamPaced(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "feed.ndjson")
	if err := run(0, 0, 0, 0, "", 0, "", outPath, "", "hospital", true, 5000); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := audit.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("paced NDJSON does not parse: %v", err)
	}
	want, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Trail.Len() {
		t.Fatalf("paced stream emitted %d entries, want %d", got.Len(), want.Trail.Len())
	}
}

func TestBadViolationKind(t *testing.T) {
	if err := run(5, 1, 1, 1, "GEN", 1, "", os.DevNull, "no-such-kind", "", false, 0); err == nil {
		t.Fatalf("unknown violation kind accepted")
	}
}
