package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/cli"
	"repro/internal/core"
)

func TestGenerateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.csv")

	if err := run(12, 2, 7, 5, "GEN", 2, procPath, trailPath, "", "", false, 0, "", 0); err != nil {
		t.Fatal(err)
	}

	pf, err := os.Open(procPath)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := bpmn.DecodeJSON(pf)
	pf.Close()
	if err != nil {
		t.Fatalf("generated process does not round-trip: %v", err)
	}
	if proc.Stats().Tasks < 12 || proc.Stats().Pools != 2 {
		t.Fatalf("stats = %+v", proc.Stats())
	}

	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadCSV(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(trail.Cases()) != 5 {
		t.Fatalf("cases = %v", trail.Cases())
	}

	// The generated trail must replay cleanly against the generated
	// process.
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "GEN"); err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(reg, nil)
	reports, err := checker.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Compliant {
			t.Errorf("generated case rejected: %s", rep)
		}
	}
}

func TestGenerateWithViolations(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.jsonl")

	if err := run(10, 1, 3, 6, "GEN", 1, procPath, trailPath, "wrong-role", "", false, 0, "", 0); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	// At least one entry carries the injected role.
	found := false
	for i := 0; i < trail.Len(); i++ {
		if trail.At(i).Role == "Intruder" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wrong-role injection in output")
	}
}

func TestStreamBuiltinHospital(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "feed.ndjson")

	if err := run(0, 0, 0, 0, "", 0, "", outPath, "", "hospital", true, 0, "", 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := audit.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("streamed NDJSON does not parse: %v", err)
	}
	want, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Trail.Len() {
		t.Fatalf("streamed %d entries, Figure 4 trail has %d", got.Len(), want.Trail.Len())
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), want.Trail.At(i)
		if g.Case != w.Case || g.Task != w.Task || g.User != w.User || !g.Time.Equal(w.Time) {
			t.Fatalf("entry %d: got %+v want %+v", i, g, w)
		}
	}
}

func TestDueBy(t *testing.T) {
	const total = 1000
	// At the start exactly one entry is due; entry n is due at n/rate
	// seconds.
	if got := dueBy(0, 100, total); got != 1 {
		t.Fatalf("dueBy(0) = %d, want 1", got)
	}
	if got := dueBy(time.Second, 100, total); got != 101 {
		t.Fatalf("dueBy(1s, 100/s) = %d, want 101", got)
	}
	// A stalled writer catches up in one burst: the schedule is
	// absolute, not relative to the last emission.
	if got := dueBy(2500*time.Millisecond, 100, total); got != 251 {
		t.Fatalf("dueBy(2.5s, 100/s) = %d, want 251", got)
	}
	// Monotone in elapsed time.
	prev := 0
	for ms := 0; ms <= 1000; ms += 7 {
		got := dueBy(time.Duration(ms)*time.Millisecond, 50, total)
		if got < prev {
			t.Fatalf("dueBy not monotone: %d then %d at %dms", prev, got, ms)
		}
		prev = got
	}
	// Clamped at the trail length.
	if got := dueBy(time.Hour, 100, total); got != total {
		t.Fatalf("dueBy(1h) = %d, want %d", got, total)
	}
	// rate <= 0 means unthrottled: everything due.
	if got := dueBy(0, 0, total); got != total {
		t.Fatalf("dueBy(rate=0) = %d, want %d", got, total)
	}
	// Absurd elapsed*rate products clamp instead of going negative.
	if got := dueBy(1<<60, 1e12, total); got != total {
		t.Fatalf("dueBy(overflow) = %d, want %d", got, total)
	}
}

// TestStreamPaced runs the paced emitter at a rate high enough that
// the whole Figure 4 trail is due within a tick or two; the output
// must still be byte-complete NDJSON.
func TestStreamPaced(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "feed.ndjson")
	if err := run(0, 0, 0, 0, "", 0, "", outPath, "", "hospital", true, 5000, "", 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := audit.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("paced NDJSON does not parse: %v", err)
	}
	want, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Trail.Len() {
		t.Fatalf("paced stream emitted %d entries, want %d", got.Len(), want.Trail.Len())
	}
}

// flakyIngest fakes auditd's /v1/events: it accepts at most capacity
// lines per request until unblocked, answering 429 with the exact
// rejected_at_line, so the poster's resume logic is exercised against
// the real response contract.
type flakyIngest struct {
	mu       sync.Mutex
	capacity int // lines accepted per request while limited
	limited  int // requests that stay limited before opening up
	requests int
	lines    []string
}

func (f *flakyIngest) handler(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requests++
	body, _ := io.ReadAll(r.Body)
	all := strings.Split(strings.TrimSuffix(string(body), "\n"), "\n")
	take := len(all)
	status := http.StatusAccepted
	if f.limited > 0 && take > f.capacity {
		f.limited--
		take = f.capacity
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	}
	f.lines = append(f.lines, all[:take]...)
	w.WriteHeader(status)
	reply := map[string]any{"accepted": take}
	if status == http.StatusTooManyRequests {
		reply["rejected_at_line"] = take + 1
	}
	json.NewEncoder(w).Encode(reply)
}

// TestPostResumesThroughBackpressure drives the poster against a
// server that keeps answering 429 after 3 lines: every entry must
// arrive exactly once, in order, and the waits must follow the
// server's Retry-After hint.
func TestPostResumesThroughBackpressure(t *testing.T) {
	sc, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyIngest{capacity: 3, limited: 1000}
	ts := httptest.NewServer(http.HandlerFunc(f.handler))
	defer ts.Close()

	var waits []time.Duration
	p := &poster{
		url:        ts.URL,
		client:     ts.Client(),
		maxRetries: 8,
		sleep:      func(d time.Duration) { waits = append(waits, d) },
		warn:       io.Discard,
	}
	if err := p.stream(sc.Trail, 0); err != nil {
		t.Fatal(err)
	}
	if want := (sc.Trail.Len() + 2) / 3; f.requests != want {
		t.Errorf("requests = %d, want %d (3 lines per attempt)", f.requests, want)
	}
	if len(f.lines) != sc.Trail.Len() {
		t.Fatalf("server holds %d lines, want %d", len(f.lines), sc.Trail.Len())
	}
	got, err := audit.ReadJSONL(strings.NewReader(strings.Join(f.lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("delivered stream does not parse: %v", err)
	}
	for i := 0; i < got.Len(); i++ {
		g, w := got.At(i), sc.Trail.At(i)
		if g.Case != w.Case || g.Task != w.Task || g.User != w.User {
			t.Fatalf("entry %d out of order: got %+v want %+v", i, g, w)
		}
	}
	// Every 429 made progress, so each wait restarts the backoff
	// schedule from the jittered Retry-After second: [0.5s, 1.5s).
	for _, d := range waits {
		if d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Errorf("wait %v outside the jittered Retry-After window", d)
		}
	}
}

// TestPostGivesUpWithoutProgress caps the retry budget against a
// server that rejects everything and checks the error names the
// resume line.
func TestPostGivesUpWithoutProgress(t *testing.T) {
	sc, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	f := &flakyIngest{capacity: 0, limited: 1 << 30}
	ts := httptest.NewServer(http.HandlerFunc(f.handler))
	defer ts.Close()

	p := &poster{
		url:        ts.URL,
		client:     ts.Client(),
		maxRetries: 3,
		sleep:      func(time.Duration) {},
		warn:       io.Discard,
	}
	err = p.stream(sc.Trail, 0)
	if err == nil {
		t.Fatal("poster kept retrying a dead server")
	}
	if !strings.Contains(err.Error(), "resume at line 1") {
		t.Errorf("error does not name the resume line: %v", err)
	}
	if f.requests != 4 {
		t.Errorf("requests = %d, want 4 (initial + 3 retries)", f.requests)
	}
}

// TestPostFatalOnBadRequest: a 400 means the bytes themselves are
// refused — retrying cannot help and the poster must stop immediately.
func TestPostFatalOnBadRequest(t *testing.T) {
	sc, err := cli.Builtin("hospital")
	if err != nil {
		t.Fatal(err)
	}
	requests := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{"error": "unsupported media type"})
	}))
	defer ts.Close()

	p := &poster{
		url:        ts.URL,
		client:     ts.Client(),
		maxRetries: 8,
		sleep:      func(time.Duration) {},
		warn:       io.Discard,
	}
	if err := p.stream(sc.Trail, 0); err == nil {
		t.Fatal("400 did not stop the poster")
	}
	if requests != 1 {
		t.Errorf("requests = %d, want 1 (no retry on a permanent rejection)", requests)
	}
}

// TestBackoffDelay pins the schedule's envelope: exponential growth
// capped at backoffCap, Retry-After override, jitter within 50-150%.
func TestBackoffDelay(t *testing.T) {
	for n := 0; n < 12; n++ {
		base := backoffBase << min(n, 10)
		if base > backoffCap {
			base = backoffCap
		}
		for i := 0; i < 16; i++ {
			d := backoffDelay(n, "")
			if d < base/2 || d >= base+base/2 {
				t.Fatalf("backoffDelay(%d) = %v outside [%v, %v)", n, d, base/2, base+base/2)
			}
		}
	}
	for i := 0; i < 16; i++ {
		if d := backoffDelay(0, "7"); d < 3500*time.Millisecond || d >= 10500*time.Millisecond {
			t.Fatalf("Retry-After=7 gave %v", d)
		}
	}
	// Unparseable header falls back to the exponential schedule.
	if d := backoffDelay(0, "soon"); d >= backoffBase+backoffBase/2 {
		t.Fatalf("junk Retry-After honored: %v", d)
	}
}

func TestBadViolationKind(t *testing.T) {
	if err := run(5, 1, 1, 1, "GEN", 1, "", os.DevNull, "no-such-kind", "", false, 0, "", 0); err == nil {
		t.Fatalf("unknown violation kind accepted")
	}
}
