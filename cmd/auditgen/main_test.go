package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
)

func TestGenerateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.csv")

	if err := run(12, 2, 7, 5, "GEN", 2, procPath, trailPath, ""); err != nil {
		t.Fatal(err)
	}

	pf, err := os.Open(procPath)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := bpmn.DecodeJSON(pf)
	pf.Close()
	if err != nil {
		t.Fatalf("generated process does not round-trip: %v", err)
	}
	if proc.Stats().Tasks < 12 || proc.Stats().Pools != 2 {
		t.Fatalf("stats = %+v", proc.Stats())
	}

	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadCSV(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(trail.Cases()) != 5 {
		t.Fatalf("cases = %v", trail.Cases())
	}

	// The generated trail must replay cleanly against the generated
	// process.
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "GEN"); err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(reg, nil)
	reports, err := checker.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Compliant {
			t.Errorf("generated case rejected: %s", rep)
		}
	}
}

func TestGenerateWithViolations(t *testing.T) {
	dir := t.TempDir()
	procPath := filepath.Join(dir, "proc.json")
	trailPath := filepath.Join(dir, "trail.jsonl")

	if err := run(10, 1, 3, 6, "GEN", 1, procPath, trailPath, "wrong-role"); err != nil {
		t.Fatal(err)
	}
	tf, err := os.Open(trailPath)
	if err != nil {
		t.Fatal(err)
	}
	trail, err := audit.ReadJSONL(tf)
	tf.Close()
	if err != nil {
		t.Fatal(err)
	}
	// At least one entry carries the injected role.
	found := false
	for i := 0; i < trail.Len(); i++ {
		if trail.At(i).Role == "Intruder" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no wrong-role injection in output")
	}
}

func TestBadViolationKind(t *testing.T) {
	if err := run(5, 1, 1, 1, "GEN", 1, "", os.DevNull, "no-such-kind"); err == nil {
		t.Fatalf("unknown violation kind accepted")
	}
}
