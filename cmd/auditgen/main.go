// Command auditgen synthesizes benchmark inputs: random well-founded
// BPMN processes and valid (optionally perturbed) audit trails simulated
// from their COWS semantics.
//
// Usage:
//
//	auditgen -tasks 20 -seed 1 -cases 10 -code GEN \
//	         -proc-out proc.json -out trail.csv \
//	         [-pools 2] [-violate wrong-role] [-actions 3]
//	auditgen -builtin hospital -stream -rate 50 | curl --data-binary @- ...
//
// The generated process goes to -proc-out (BPMN JSON), the trail to
// -out (CSV, or JSONL by extension). With -violate, one injection of the
// given kind is applied per case where applicable.
//
// -stream switches the output to NDJSON written one entry at a time
// (each line flushed), paced at -rate events per second (0 =
// unthrottled) — a live feed for auditd's POST /v1/events. -builtin
// hospital replays the paper's Figure 4 trail instead of generating
// one.
//
// -post URL skips the pipe and speaks to auditd directly: the stream
// is sent as POST bursts and the client resumes through backpressure.
// A 429 names the exact line the server stopped at (rejected_at_line),
// so the retry resends precisely the unaccepted tail; 429/503 waits
// honor the server's Retry-After hint when present and fall back to
// exponential backoff with jitter. -max-retries bounds consecutive
// zero-progress attempts. Delivery is exactly-once across HTTP-level
// rejections; a connection that dies after the server read the body
// cannot be distinguished from one that died before, so those retries
// are at-least-once (the trade is documented, not hidden).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	var (
		tasks   = flag.Int("tasks", 15, "approximate task count")
		pools   = flag.Int("pools", 1, "pool segments")
		seed    = flag.Int64("seed", 1, "generation seed")
		cases   = flag.Int("cases", 10, "process instances to simulate")
		code    = flag.String("code", "GEN", "case code prefix")
		actions = flag.Int("actions", 2, "max log entries per task execution")
		procOut = flag.String("proc-out", "", "write the process as BPMN JSON")
		out     = flag.String("out", "", "write the trail (.csv or .jsonl; default stdout CSV)")
		violate = flag.String("violate", "", "inject a violation per case: skip-task, swap-adjacent, wrong-role, foreign-task, re-purpose, fake-failure")
		builtin = flag.String("builtin", "", "emit a built-in trail instead of generating: 'hospital' (Figure 4)")
		stream  = flag.Bool("stream", false, "write NDJSON one entry at a time (flushed per line), for live ingestion")
		rate    = flag.Float64("rate", 0, "with -stream: events per second (0 = unthrottled)")
		postURL = flag.String("post", "", "POST the stream to this auditd /v1/events URL (resumes through 429/503 backpressure by line offset)")
		retries = flag.Int("max-retries", 8, "with -post: give up after this many consecutive attempts without progress")
		version = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(cli.VersionString("auditgen"))
		return
	}

	if err := run(*tasks, *pools, *seed, *cases, *code, *actions, *procOut, *out, *violate, *builtin, *stream, *rate, *postURL, *retries); err != nil {
		fmt.Fprintln(os.Stderr, "auditgen:", err)
		os.Exit(2)
	}
}

func run(tasks, pools int, seed int64, cases int, code string, actions int, procOut, out, violate, builtin string, stream bool, rate float64, postURL string, maxRetries int) error {
	trail, err := buildTrail(tasks, pools, seed, cases, code, actions, procOut, violate, builtin)
	if err != nil {
		return err
	}

	if postURL != "" {
		p := &poster{
			url:        postURL,
			client:     http.DefaultClient,
			maxRetries: maxRetries,
			sleep:      time.Sleep,
			warn:       os.Stderr,
		}
		return p.stream(trail, rate)
	}

	var w *os.File = os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if stream {
		return streamJSONL(w, trail, rate)
	}
	if strings.HasSuffix(out, ".jsonl") {
		return audit.WriteJSONL(w, trail)
	}
	return audit.WriteCSV(w, trail)
}

func buildTrail(tasks, pools int, seed int64, cases int, code string, actions int, procOut, violate, builtin string) (*audit.Trail, error) {
	if builtin != "" {
		sc, err := cli.Builtin(builtin)
		if err != nil {
			return nil, err
		}
		return sc.Trail, nil
	}

	params := workload.DefaultProcParams("Generated", seed, tasks)
	params.Pools = pools
	proc, err := workload.Generate(params)
	if err != nil {
		return nil, err
	}
	if procOut != "" {
		f, err := os.Create(procOut)
		if err != nil {
			return nil, err
		}
		if err := proc.EncodeJSON(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}

	reg := core.NewRegistry()
	if _, err := reg.Register(proc, code); err != nil {
		return nil, err
	}
	tp := workload.DefaultTrailParams(seed+1, cases, code)
	tp.ActionsPerTask = actions
	trail, err := workload.NewSimulator(reg, tp).Generate()
	if err != nil {
		return nil, err
	}

	if violate != "" {
		kind, err := parseKind(violate)
		if err != nil {
			return nil, err
		}
		inj := workload.NewInjector(seed + 2)
		var entries []audit.Entry
		for _, caseID := range trail.Cases() {
			slice := trail.ByCase(caseID).Entries()
			if mut, ok := inj.Inject(kind, slice); ok {
				entries = append(entries, mut...)
			} else {
				entries = append(entries, slice...)
			}
		}
		trail = audit.NewTrail(entries)
	}
	return trail, nil
}

// minTickPeriod floors the pacer's ticker: above ~200 events/s a
// per-entry sleep oversleeps more than the period itself (timer slop
// is tens to hundreds of microseconds), so high rates emit small
// bursts every few milliseconds instead of one entry per wakeup.
const minTickPeriod = 5 * time.Millisecond

// dueBy reports how many entries of a rate-paced stream should have
// been emitted once elapsed time has passed: entry n is due at
// n/rate seconds after the start. The schedule is absolute, so a
// stalled writer (slow pipe, scheduler hiccup) catches up with one
// burst instead of compounding the drift into a permanently slower
// stream. rate <= 0 means everything is due.
func dueBy(elapsed time.Duration, rate float64, total int) int {
	if rate <= 0 {
		return total
	}
	due := int(elapsed.Seconds()*rate) + 1
	if due > total {
		due = total
	}
	if due < 0 { // elapsed*rate overflowed int
		due = total
	}
	return due
}

// streamJSONL writes the trail as NDJSON for live ingestion. rate > 0
// paces emission at that many events per second against an absolute
// schedule (see dueBy), flushing once per burst; unthrottled output
// flushes per line so a downstream reader sees each event as it
// happens.
func streamJSONL(w *os.File, t *audit.Trail, rate float64) error {
	bw := bufio.NewWriter(w)
	entries := t.Entries()
	if rate <= 0 {
		for _, e := range entries {
			if err := audit.AppendJSONL(bw, e); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		return nil
	}
	period := time.Duration(float64(time.Second) / rate)
	if period < minTickPeriod {
		period = minTickPeriod
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	start := time.Now()
	emitted := 0
	for emitted < len(entries) {
		due := dueBy(time.Since(start), rate, len(entries))
		for ; emitted < due; emitted++ {
			if err := audit.AppendJSONL(bw, entries[emitted]); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if emitted < len(entries) {
			<-tick.C
		}
	}
	return nil
}

// poster delivers a trail to auditd's POST /v1/events with
// resume-by-line retries. One poster drives one stream; sleep and warn
// are swappable for tests.
type poster struct {
	url        string
	client     *http.Client
	maxRetries int
	sleep      func(time.Duration)
	warn       io.Writer
}

// ingestReply is the subset of auditd's ingest response the retry loop
// steers by.
type ingestReply struct {
	Accepted       int    `json:"accepted"`
	Quarantined    int    `json:"quarantined"`
	RejectedAtLine int    `json:"rejected_at_line"`
	Error          string `json:"error"`
}

// backoffBase/backoffCap bound the client-side wait when the server
// does not name one: 100ms doubling per consecutive failure, capped at
// 5s, each draw jittered to 50-150% so a fleet of stalled producers
// does not re-arrive in lockstep.
const (
	backoffBase = 100 * time.Millisecond
	backoffCap  = 5 * time.Second
)

// backoffDelay picks the wait before retry attempt n (0-based). A
// Retry-After of s seconds takes precedence over the exponential
// schedule; jitter applies to both.
func backoffDelay(n int, retryAfter string) time.Duration {
	d := backoffBase << min(n, 10)
	if d > backoffCap {
		d = backoffCap
	}
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// stream sends the trail as NDJSON bursts, paced like streamJSONL when
// rate > 0, resuming by line offset through 429/503 rejections.
func (p *poster) stream(t *audit.Trail, rate float64) error {
	entries := t.Entries()
	lines := make([][]byte, len(entries))
	for i, e := range entries {
		var buf bytes.Buffer
		if err := audit.AppendJSONL(&buf, e); err != nil {
			return err
		}
		lines[i] = buf.Bytes()
	}

	start := time.Now()
	sent, failures := 0, 0
	for sent < len(lines) {
		due := dueBy(time.Since(start), rate, len(lines))
		if due <= sent {
			p.sleep(minTickPeriod)
			continue
		}
		n, retryAfter, err := p.post(lines[sent:due])
		sent += n
		if err == nil {
			failures = 0
			continue
		}
		if errors.Is(err, errPermanent) {
			return err
		}
		if n > 0 {
			failures = 0 // partial acceptance is progress; restart the budget
		}
		if failures >= p.maxRetries {
			return fmt.Errorf("giving up after %d attempts without progress, resume at line %d: %w",
				failures, sent+1, err)
		}
		d := backoffDelay(failures, retryAfter)
		failures++
		fmt.Fprintf(p.warn, "auditgen: %v; %d/%d sent, retrying in %v\n", err, sent, len(lines), d)
		p.sleep(d)
	}
	return nil
}

// post sends one burst and reports how many of its lines the server
// accepted. A non-nil error means the remainder must be resent: the
// count is exact for HTTP-level rejections (the 429/503 body names the
// stopping line), but a transport failure cannot reveal how much of
// the body the server consumed — that retry is at-least-once.
func (p *poster) post(lines [][]byte) (accepted int, retryAfter string, err error) {
	body := bytes.Join(lines, nil)
	resp, err := p.client.Post(p.url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return 0, "", fmt.Errorf("post: %w", err)
	}
	defer resp.Body.Close()
	var reply ingestReply
	if derr := json.NewDecoder(resp.Body).Decode(&reply); derr != nil && resp.StatusCode != http.StatusServiceUnavailable {
		return 0, "", fmt.Errorf("status %s with undecodable body: %w", resp.Status, derr)
	}
	switch resp.StatusCode {
	case http.StatusAccepted:
		return len(lines), "", nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		if reply.RejectedAtLine > 0 {
			accepted = reply.RejectedAtLine - 1
		}
		msg := reply.Error
		if msg == "" {
			msg = "backpressure"
		}
		return accepted, resp.Header.Get("Retry-After"),
			fmt.Errorf("server refused at line %d of burst (%s): %s", accepted+1, resp.Status, msg)
	default:
		// 400 and friends: resending the same bytes cannot succeed.
		return 0, "", fmt.Errorf("%w: %s: %s", errPermanent, resp.Status, reply.Error)
	}
}

// errPermanent marks server answers no retry can fix.
var errPermanent = errors.New("ingest rejected permanently")

func parseKind(s string) (workload.ViolationKind, error) {
	for k := workload.ViolationKind(0); k < workload.NumViolationKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown violation kind %q", s)
}
