// Command auditgen synthesizes benchmark inputs: random well-founded
// BPMN processes and valid (optionally perturbed) audit trails simulated
// from their COWS semantics.
//
// Usage:
//
//	auditgen -tasks 20 -seed 1 -cases 10 -code GEN \
//	         -proc-out proc.json -out trail.csv \
//	         [-pools 2] [-violate wrong-role] [-actions 3]
//
// The generated process goes to -proc-out (BPMN JSON), the trail to
// -out (CSV, or JSONL by extension). With -violate, one injection of the
// given kind is applied per case where applicable.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	var (
		tasks   = flag.Int("tasks", 15, "approximate task count")
		pools   = flag.Int("pools", 1, "pool segments")
		seed    = flag.Int64("seed", 1, "generation seed")
		cases   = flag.Int("cases", 10, "process instances to simulate")
		code    = flag.String("code", "GEN", "case code prefix")
		actions = flag.Int("actions", 2, "max log entries per task execution")
		procOut = flag.String("proc-out", "", "write the process as BPMN JSON")
		out     = flag.String("out", "", "write the trail (.csv or .jsonl; default stdout CSV)")
		violate = flag.String("violate", "", "inject a violation per case: skip-task, swap-adjacent, wrong-role, foreign-task, re-purpose, fake-failure")
	)
	flag.Parse()

	if err := run(*tasks, *pools, *seed, *cases, *code, *actions, *procOut, *out, *violate); err != nil {
		fmt.Fprintln(os.Stderr, "auditgen:", err)
		os.Exit(2)
	}
}

func run(tasks, pools int, seed int64, cases int, code string, actions int, procOut, out, violate string) error {
	params := workload.DefaultProcParams("Generated", seed, tasks)
	params.Pools = pools
	proc, err := workload.Generate(params)
	if err != nil {
		return err
	}
	if procOut != "" {
		f, err := os.Create(procOut)
		if err != nil {
			return err
		}
		if err := proc.EncodeJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	reg := core.NewRegistry()
	if _, err := reg.Register(proc, code); err != nil {
		return err
	}
	tp := workload.DefaultTrailParams(seed+1, cases, code)
	tp.ActionsPerTask = actions
	trail, err := workload.NewSimulator(reg, tp).Generate()
	if err != nil {
		return err
	}

	if violate != "" {
		kind, err := parseKind(violate)
		if err != nil {
			return err
		}
		inj := workload.NewInjector(seed + 2)
		var entries []audit.Entry
		for _, caseID := range trail.Cases() {
			slice := trail.ByCase(caseID).Entries()
			if mut, ok := inj.Inject(kind, slice); ok {
				entries = append(entries, mut...)
			} else {
				entries = append(entries, slice...)
			}
		}
		trail = audit.NewTrail(entries)
	}

	var w *os.File = os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if strings.HasSuffix(out, ".jsonl") {
		return audit.WriteJSONL(w, trail)
	}
	return audit.WriteCSV(w, trail)
}

func parseKind(s string) (workload.ViolationKind, error) {
	for k := workload.ViolationKind(0); k < workload.NumViolationKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown violation kind %q", s)
}
