.PHONY: ci lint cover scenarios benchguard test bench fuzz chaos serve smoke proofs crash

ci:
	sh ./ci.sh

# gofmt + go vet + pinned staticcheck (skipped with a warning offline).
lint:
	sh ./ci.sh lint

# Coverage ratchet over the verdict-bearing engines.
cover:
	sh ./ci.sh cover

# Declarative purpose-test corpus: purposectl test ./scenarios/... with
# the DFA state-coverage floor, plus a short scenario fuzz.
scenarios:
	sh ./ci.sh scenarios

# Quick P1/P3/P4 timing run vs the checked-in BENCH_*.json baselines.
benchguard:
	sh ./ci.sh benchguard

test:
	go test ./...

bench:
	go test -bench . -benchmem .

# Short fuzz pass over the ingestion surface (decoders must never panic;
# strict and lenient decoding must agree on clean input).
fuzz:
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime 5s
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzReadJSONL$$' -fuzztime 5s
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzParsePaperTime$$' -fuzztime 5s
	go test ./internal/core/ -run '^$$' -fuzz '^FuzzCompiledReplay$$' -fuzztime 5s

# Fault-injection chaos suite under the race detector.
chaos:
	go test -race -run TestChaosPipeline ./internal/faultinject/

# Run the streaming audit server over the paper's hospital scenario.
serve:
	go run ./cmd/auditd -builtin hospital -addr :8443 -checkpoint auditd.ckpt.json

# End-to-end server smoke: random port, stream the Figure 4 trail,
# assert the known violations and metrics, clean SIGTERM drain.
smoke:
	sh ./ci.sh smoke

# Ledger proof smoke: stream the trail, verify every case's inclusion
# proof offline with only the public key, reject three tampered bundles.
proofs:
	sh ./ci.sh proofs

# kill -9 crash-recovery smoke: WAL replay restores every acknowledged
# entry and the rebuilt ledger re-signs a byte-identical root chain.
crash:
	sh ./ci.sh crash
