.PHONY: ci test bench fuzz chaos serve smoke

ci:
	sh ./ci.sh

test:
	go test ./...

bench:
	go test -bench . -benchmem .

# Short fuzz pass over the ingestion surface (decoders must never panic;
# strict and lenient decoding must agree on clean input).
fuzz:
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzReadCSV$$' -fuzztime 5s
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzReadJSONL$$' -fuzztime 5s
	go test ./internal/audit/ -run '^$$' -fuzz '^FuzzParsePaperTime$$' -fuzztime 5s

# Fault-injection chaos suite under the race detector.
chaos:
	go test -race -run TestChaosPipeline ./internal/faultinject/

# Run the streaming audit server over the paper's hospital scenario.
serve:
	go run ./cmd/auditd -builtin hospital -addr :8443 -checkpoint auditd.ckpt.json

# End-to-end server smoke: random port, stream the Figure 4 trail,
# assert the known violations and metrics, clean SIGTERM drain.
smoke:
	sh ./ci.sh smoke
