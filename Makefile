.PHONY: ci test bench

ci:
	sh ./ci.sh

test:
	go test ./...

bench:
	go test -bench . -benchmem .
