#!/bin/sh
# CI gate: static checks, full build, race-enabled tests, then a quick
# benchmark smoke of the P1 (trail length) and P3 (parallel cases)
# performance claims, recorded to BENCH_pr1.json for regression
# tracking. Run via `make ci` or directly.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== benchmark smoke (P1, P3) =="
go run ./cmd/benchtab -exp P1,P3 -quick -json BENCH_pr1.json
