#!/bin/sh
# CI gate: static checks, full build, race-enabled tests (the chaos
# suite in internal/faultinject runs under -race here), a fuzz smoke
# over the ingestion surface, a quick benchmark smoke of the P1
# (trail length) and P3 (parallel cases) performance claims (recorded
# to BENCH_pr1.json for regression tracking), and an end-to-end smoke
# of the auditd streaming server. Run via `make ci` or directly;
# `sh ci.sh smoke` runs only the server smoke (also `make smoke`).
set -eu

SMOKE_TMP=""
SMOKE_PID=""
cleanup() {
	[ -n "$SMOKE_PID" ] && kill "$SMOKE_PID" 2>/dev/null || true
	[ -n "$SMOKE_TMP" ] && rm -rf "$SMOKE_TMP" || true
}
trap cleanup EXIT

# server_smoke boots auditd on a random port, streams the Figure 4
# hospital trail into it, asserts the five known infringements are
# reported and the metrics moved, then SIGTERMs it and requires a
# clean drain with a final checkpoint on disk.
server_smoke() {
	echo "== auditd server smoke =="
	SMOKE_TMP=$(mktemp -d)
	go build -o "$SMOKE_TMP/auditd" ./cmd/auditd
	go build -o "$SMOKE_TMP/auditgen" ./cmd/auditgen

	"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 \
		-addr-file "$SMOKE_TMP/addr" -checkpoint "$SMOKE_TMP/ckpt.json" \
		2>"$SMOKE_TMP/auditd.log" &
	SMOKE_PID=$!

	i=0
	while [ ! -s "$SMOKE_TMP/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "auditd never wrote its address; log:" >&2
			cat "$SMOKE_TMP/auditd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$SMOKE_TMP/addr")
	curl -sf "http://$addr/readyz" >/dev/null

	# Ingest the Figure 4 trail as an NDJSON stream; ?wait=1 blocks
	# until every entry reached its monitor.
	"$SMOKE_TMP/auditgen" -builtin hospital -stream |
		curl -sf --data-binary @- "http://$addr/v1/events?wait=1" \
			>"$SMOKE_TMP/ingest.json"
	grep -q '"accepted": 28' "$SMOKE_TMP/ingest.json" || {
		echo "unexpected ingest result:" >&2
		cat "$SMOKE_TMP/ingest.json" >&2
		exit 1
	}

	# The paper's five infringing cases must be reported as violations.
	curl -sf "http://$addr/v1/cases?outcome=violation" >"$SMOKE_TMP/violations.json"
	n=$(grep -c '"outcome": "violation"' "$SMOKE_TMP/violations.json")
	if [ "$n" -ne 5 ]; then
		echo "expected 5 violating cases, got $n:" >&2
		cat "$SMOKE_TMP/violations.json" >&2
		exit 1
	fi
	curl -sf "http://$addr/v1/cases/HT-11" | grep -q '"outcome": "violation"' || {
		echo "HT-11 (the paper's re-purposing attack) not flagged" >&2
		exit 1
	}

	# Observability: the ingest and verdict series moved.
	curl -sf "http://$addr/metrics" >"$SMOKE_TMP/metrics.txt"
	grep -q '^auditd_events_ingested_total 28$' "$SMOKE_TMP/metrics.txt" || {
		echo "ingest counter did not move:" >&2
		grep ^auditd_events "$SMOKE_TMP/metrics.txt" >&2
		exit 1
	}
	grep -q '^auditd_verdicts_total{outcome="violation"} [1-9]' "$SMOKE_TMP/metrics.txt" || {
		echo "violation verdict counter did not move" >&2
		exit 1
	}

	# Clean shutdown: SIGTERM must drain and write a final checkpoint.
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/auditd.log" >&2
		exit 1
	}
	SMOKE_PID=""
	[ -s "$SMOKE_TMP/ckpt.json" ] || {
		echo "no final checkpoint written" >&2
		exit 1
	}
	grep -q '"monitor"' "$SMOKE_TMP/ckpt.json" || {
		echo "checkpoint has no monitor state" >&2
		exit 1
	}
	echo "server smoke OK ($n violations, clean drain, checkpoint written)"
	rm -rf "$SMOKE_TMP"
	SMOKE_TMP=""
}

if [ "${1:-all}" = smoke ]; then
	server_smoke
	exit 0
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos test -race =="
go test -race -run TestChaosPipeline ./internal/faultinject/

echo "== fuzz smoke =="
for target in FuzzReadCSV FuzzReadJSONL FuzzParsePaperTime; do
	go test ./internal/audit/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done

echo "== benchmark smoke (P1, P3) =="
go run ./cmd/benchtab -exp P1,P3 -quick -json BENCH_pr1.json

server_smoke
