#!/bin/sh
# CI gate: lint (gofmt, go vet, staticcheck when available), full
# build, race-enabled tests (the chaos suite in internal/faultinject
# runs under -race here), a fuzz smoke over the ingestion surface plus
# the compiled-vs-interpreted differential target, a coverage ratchet
# on the replay engines and the observability layer, the declarative
# purpose-test corpus (every scenario fixture replayed through both
# engines with byte-identical reports and a DFA state-coverage floor),
# a benchmark guard
# failing on ns/entry regressions of the P1/P3/P4/P5/P6/P7 claims vs
# the checked-in baselines (nil-observer replay rows are held to 5%),
# an end-to-end smoke of the auditd streaming server including a
# reboot from a binary checkpoint, a proofs smoke that verifies ledger
# inclusion proofs offline (and that tampering fails loudly), and a
# crash-recovery smoke that kill -9s the daemon mid-trail and requires
# the write-ahead log to restore every acknowledged entry — with the
# rebuilt ledger signing roots byte-identical to an uninterrupted run.
#
# Stages run standalone too:
#   sh ci.sh            # everything
#   sh ci.sh lint       # gofmt + vet + staticcheck
#   sh ci.sh cover      # coverage ratchet (internal/core, internal/automaton, internal/obs, internal/encode, internal/ledger, internal/scenario)
#   sh ci.sh scenarios  # declarative purpose-test corpus (purposectl test ./scenarios/...)
#   sh ci.sh benchguard # quick P1/P3/P4/P5/P6/P7/P8/P10 run vs BENCH_pr*.json
#   sh ci.sh smoke      # auditd server smoke (also `make smoke`)
#   sh ci.sh proofs     # ledger proof smoke: fetch, verify offline, tamper
#   sh ci.sh crash      # kill -9 crash-recovery smoke over the WAL + ledger
set -eu

# Coverage floor for the verdict-bearing engines. Raise it when
# coverage grows; never lower it to make a PR pass.
COVER_MIN=85.0
# Tolerated ns/entry regression vs the checked-in benchmark baselines.
BENCH_SLACK=0.25
# Minimum DFA state coverage each scenario fixture's trails must reach
# (see DESIGN.md §16). Fixtures that legitimately fall back to the
# interpreter (allow_fallback) are exempt — there is no table to cover.
SCENARIO_COVER_MIN=60
# Pinned staticcheck build (must match GitHub Actions; see ci.yml).
STATICCHECK_VERSION=2025.1.1

SMOKE_TMP=""
SMOKE_PID=""
cleanup() {
	[ -n "$SMOKE_PID" ] && kill "$SMOKE_PID" 2>/dev/null || true
	[ -n "$SMOKE_TMP" ] && rm -rf "$SMOKE_TMP" || true
}
trap cleanup EXIT

# server_smoke boots auditd on a random port, streams the Figure 4
# hospital trail into it, asserts the five known infringements are
# reported and the metrics moved, then SIGTERMs it and requires a
# clean drain with a final checkpoint on disk.
server_smoke() {
	echo "== auditd server smoke =="
	SMOKE_TMP=$(mktemp -d)
	go build -o "$SMOKE_TMP/auditd" ./cmd/auditd
	go build -o "$SMOKE_TMP/auditgen" ./cmd/auditgen

	# -stage-sample 1 times every batch: the 28-entry trail produces
	# only a handful of batches, so the default 1-in-64 sampling would
	# leave the stage histograms empty and the assertions below flaky.
	"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 \
		-addr-file "$SMOKE_TMP/addr" -checkpoint "$SMOKE_TMP/ckpt.json" \
		-stage-sample 1 2>"$SMOKE_TMP/auditd.log" &
	SMOKE_PID=$!

	i=0
	while [ ! -s "$SMOKE_TMP/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "auditd never wrote its address; log:" >&2
			cat "$SMOKE_TMP/auditd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$SMOKE_TMP/addr")
	curl -sf "http://$addr/readyz" >/dev/null

	# Ingest the Figure 4 trail as an NDJSON stream; ?wait=1 blocks
	# until every entry reached its monitor.
	"$SMOKE_TMP/auditgen" -builtin hospital -stream |
		curl -sf --data-binary @- "http://$addr/v1/events?wait=1" \
			>"$SMOKE_TMP/ingest.json"
	grep -q '"accepted": 28' "$SMOKE_TMP/ingest.json" || {
		echo "unexpected ingest result:" >&2
		cat "$SMOKE_TMP/ingest.json" >&2
		exit 1
	}

	# The paper's five infringing cases must be reported as violations.
	# Count via the endpoint's total field: the per-case explanation
	# repeats the outcome string, so grep -c would double-count.
	curl -sf "http://$addr/v1/cases?outcome=violation" >"$SMOKE_TMP/violations.json"
	n=$(sed -n 's/^  "total": \([0-9][0-9]*\)$/\1/p' "$SMOKE_TMP/violations.json")
	if [ "$n" != 5 ]; then
		echo "expected 5 violating cases, got ${n:-none}:" >&2
		cat "$SMOKE_TMP/violations.json" >&2
		exit 1
	fi
	curl -sf "http://$addr/v1/cases/HT-11" | grep -q '"outcome": "violation"' || {
		echo "HT-11 (the paper's re-purposing attack) not flagged" >&2
		exit 1
	}

	# The explain endpoint names the diverging entry and expected tasks.
	curl -sf "http://$addr/v1/cases/HT-10/explain" >"$SMOKE_TMP/explain.json"
	grep -q '"expected_tasks"' "$SMOKE_TMP/explain.json" &&
		grep -q '"nearest_miss"' "$SMOKE_TMP/explain.json" || {
		echo "explain endpoint lacks the structured explanation:" >&2
		cat "$SMOKE_TMP/explain.json" >&2
		exit 1
	}

	# Observability: the ingest and verdict series moved.
	curl -sf "http://$addr/metrics" >"$SMOKE_TMP/metrics.txt"
	grep -q '^auditd_events_ingested_total 28$' "$SMOKE_TMP/metrics.txt" || {
		echo "ingest counter did not move:" >&2
		grep ^auditd_events "$SMOKE_TMP/metrics.txt" >&2
		exit 1
	}
	grep -q '^auditd_verdicts_total{outcome="violation"} [1-9]' "$SMOKE_TMP/metrics.txt" || {
		echo "violation verdict counter did not move" >&2
		exit 1
	}
	grep -q '^auditd_purpose_verdicts_total{purpose="HealthcareTreatment",outcome="violation"} [1-9]' "$SMOKE_TMP/metrics.txt" || {
		echo "per-purpose verdict counter did not move" >&2
		exit 1
	}
	grep -q '^auditd_go_goroutines ' "$SMOKE_TMP/metrics.txt" || {
		echo "runtime gauges missing" >&2
		exit 1
	}

	# PR 10: every batch was stage-timed (-stage-sample 1), so the
	# stage-latency histograms must have observations, and the build
	# identity series must be present.
	grep -q '^auditd_stage_latency_seconds_count{stage="replay"} [1-9]' "$SMOKE_TMP/metrics.txt" &&
		grep -q '^auditd_stage_latency_seconds_count{stage="decode"} [1-9]' "$SMOKE_TMP/metrics.txt" &&
		grep -q '^auditd_stage_latency_seconds_count{stage="queue_wait"} [1-9]' "$SMOKE_TMP/metrics.txt" || {
		echo "stage-latency histograms did not fill:" >&2
		grep ^auditd_stage "$SMOKE_TMP/metrics.txt" >&2
		exit 1
	}
	grep -q '^auditd_build_info{version=' "$SMOKE_TMP/metrics.txt" || {
		echo "auditd_build_info series missing" >&2
		exit 1
	}

	# PR 10: /v1/status is the deep operational view purposectl top
	# renders — the totals must reflect the ingest that just happened.
	curl -sf "http://$addr/v1/status" >"$SMOKE_TMP/status.json"
	grep -q '"ready": true' "$SMOKE_TMP/status.json" &&
		grep -q '"ingested": 28' "$SMOKE_TMP/status.json" &&
		grep -q '"stage_sample_every": 1' "$SMOKE_TMP/status.json" &&
		grep -q '"shards"' "$SMOKE_TMP/status.json" || {
		echo "/v1/status incomplete:" >&2
		cat "$SMOKE_TMP/status.json" >&2
		exit 1
	}

	# Clean shutdown: SIGTERM must drain and write a final checkpoint.
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/auditd.log" >&2
		exit 1
	}
	SMOKE_PID=""
	[ -s "$SMOKE_TMP/ckpt.json" ] || {
		echo "no final checkpoint written" >&2
		exit 1
	}
	grep -q '"monitor"' "$SMOKE_TMP/ckpt.json" || {
		echo "checkpoint has no monitor state" >&2
		exit 1
	}

	# Binary-checkpoint boot: the raw-speed tier (-minimize,
	# -binary-checkpoint) must write a flat binary container on TERM and
	# a fresh boot from that file must still know all five violations
	# without re-ingesting anything.
	: >"$SMOKE_TMP/addr"
	"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 -minimize \
		-addr-file "$SMOKE_TMP/addr" -checkpoint "$SMOKE_TMP/ckpt.bin" \
		-binary-checkpoint 2>"$SMOKE_TMP/auditd2.log" &
	SMOKE_PID=$!
	i=0
	while [ ! -s "$SMOKE_TMP/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "binary-checkpoint auditd never wrote its address; log:" >&2
			cat "$SMOKE_TMP/auditd2.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$SMOKE_TMP/addr")
	"$SMOKE_TMP/auditgen" -builtin hospital -stream |
		curl -sf --data-binary @- "http://$addr/v1/events?wait=1" >/dev/null
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "binary-checkpoint auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/auditd2.log" >&2
		exit 1
	}
	SMOKE_PID=""
	magic=$(od -An -tx1 -N4 "$SMOKE_TMP/ckpt.bin" | tr -d ' ')
	if [ "$magic" != "89504342" ]; then
		echo "checkpoint is not a binary container (magic: $magic)" >&2
		exit 1
	fi

	: >"$SMOKE_TMP/addr"
	"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 -minimize \
		-addr-file "$SMOKE_TMP/addr" -checkpoint "$SMOKE_TMP/ckpt.bin" \
		-binary-checkpoint 2>"$SMOKE_TMP/auditd3.log" &
	SMOKE_PID=$!
	i=0
	while [ ! -s "$SMOKE_TMP/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "auditd did not boot from the binary checkpoint; log:" >&2
			cat "$SMOKE_TMP/auditd3.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$SMOKE_TMP/addr")
	curl -sf "http://$addr/v1/cases?outcome=violation" >"$SMOKE_TMP/violations2.json"
	b=$(sed -n 's/^  "total": \([0-9][0-9]*\)$/\1/p' "$SMOKE_TMP/violations2.json")
	if [ "$b" != 5 ]; then
		echo "expected 5 violations restored from binary checkpoint, got ${b:-none}:" >&2
		cat "$SMOKE_TMP/violations2.json" >&2
		exit 1
	fi
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "restored auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/auditd3.log" >&2
		exit 1
	}
	SMOKE_PID=""

	echo "server smoke OK ($n violations, clean drain, binary checkpoint reboot)"
	rm -rf "$SMOKE_TMP"
	SMOKE_TMP=""
}

# proofs_smoke exercises the tamper-evident ledger end to end: boot
# auditd with sealing enabled, stream the Figure 4 trail, fetch the
# proof bundle for every case, and verify each offline with only the
# mirrored public key — then flip bytes in an infringing case's bundle
# (an entry field, a root's leaf count, its signature) and require the
# verifier to fail loudly on all three.
proofs_smoke() {
	echo "== ledger proofs smoke (fetch, verify offline, tamper) =="
	SMOKE_TMP=$(mktemp -d)
	go build -o "$SMOKE_TMP/auditd" ./cmd/auditd
	go build -o "$SMOKE_TMP/auditgen" ./cmd/auditgen
	go build -o "$SMOKE_TMP/purposectl" ./cmd/purposectl

	"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 \
		-addr-file "$SMOKE_TMP/addr" -checkpoint "$SMOKE_TMP/ckpt.json" \
		-wal-dir "$SMOKE_TMP/wal" \
		-ledger -ledger-key "$SMOKE_TMP/ledger.key" -ledger-batch 4 -ledger-wait 0 \
		2>"$SMOKE_TMP/auditd.log" &
	SMOKE_PID=$!
	i=0
	while [ ! -s "$SMOKE_TMP/addr" ]; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "ledger auditd never wrote its address; log:" >&2
			cat "$SMOKE_TMP/auditd.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	addr=$(cat "$SMOKE_TMP/addr")

	"$SMOKE_TMP/auditgen" -builtin hospital -stream >"$SMOKE_TMP/trail.ndjson"
	curl -sf --data-binary @"$SMOKE_TMP/trail.ndjson" \
		"http://$addr/v1/events?wait=1" >/dev/null

	# Every case in the trail must yield a bundle that verifies offline
	# with only the mirrored public key.
	cases=$(sed -n 's/.*"case":[[:space:]]*"\([^"]*\)".*/\1/p' "$SMOKE_TMP/trail.ndjson" | sort -u)
	for c in $cases; do
		curl -sf "http://$addr/v1/proofs/$c" >"$SMOKE_TMP/proof-$c.json"
		"$SMOKE_TMP/purposectl" verify-proof -bundle "$SMOKE_TMP/proof-$c.json" \
			-pubkey-file "$SMOKE_TMP/ledger.key.pub" >/dev/null || {
			echo "proof for case $c does not verify offline" >&2
			cat "$SMOKE_TMP/proof-$c.json" >&2
			exit 1
		}
	done

	# The signed root chain verifies and is fully sealed (28 entries at
	# batch 4 = 7 batches, no open tail).
	curl -sf "http://$addr/metrics" >"$SMOKE_TMP/metrics.txt"
	grep -q '^auditd_ledger_batches_total 7$' "$SMOKE_TMP/metrics.txt" &&
		grep -q '^auditd_ledger_open_leaves 0$' "$SMOKE_TMP/metrics.txt" || {
		echo "ledger did not seal 7 full batches:" >&2
		grep ^auditd_ledger "$SMOKE_TMP/metrics.txt" >&2
		exit 1
	}

	# Tampering must fail loudly: an entry field, a root's leaf count,
	# and a root signature (halves swapped keeps it well-formed hex).
	bundle="$SMOKE_TMP/proof-HT-11.json"
	sed 's/"Bob"/"Eve"/' "$bundle" >"$SMOKE_TMP/tampered-entry.json"
	sed 's/"leaves": 4/"leaves": 3/' "$bundle" >"$SMOKE_TMP/tampered-root.json"
	sed -E 's/"sig": "([0-9a-f]{64})([0-9a-f]{64})"/"sig": "\2\1"/' \
		"$bundle" >"$SMOKE_TMP/tampered-sig.json"
	for mut in entry root sig; do
		if cmp -s "$bundle" "$SMOKE_TMP/tampered-$mut.json"; then
			echo "tamper '$mut' mutated nothing in the bundle" >&2
			exit 1
		fi
		set +e
		"$SMOKE_TMP/purposectl" verify-proof -bundle "$SMOKE_TMP/tampered-$mut.json" \
			-pubkey-file "$SMOKE_TMP/ledger.key.pub" >/dev/null 2>&1
		code=$?
		set -e
		if [ "$code" != 1 ]; then
			echo "tampered bundle ($mut) exited $code, want 1" >&2
			exit 1
		fi
	done

	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "ledger auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/auditd.log" >&2
		exit 1
	}
	SMOKE_PID=""
	nc=$(echo "$cases" | wc -w)
	echo "proofs smoke OK ($nc cases verified offline, 3 tampers rejected)"
	rm -rf "$SMOKE_TMP"
	SMOKE_TMP=""
}

# crash_smoke proves the write-ahead log keeps every acknowledged
# entry across kill -9. It streams the first half of the Figure 4
# trail (fsync always, so the 202 means "on disk"), SIGKILLs the
# daemon before any checkpoint exists (-checkpoint-every 1h), reboots
# from the WAL alone, streams the second half, and requires the five
# known infringements plus verdicts identical to an uninterrupted
# control run — nothing acknowledged may be lost, nothing replayed
# twice. The ledger rides along: the crashed-and-rebuilt run must sign
# a root chain byte-identical to the uninterrupted control's, and its
# proofs must still verify offline.
crash_smoke() {
	echo "== crash-recovery smoke (WAL + ledger, kill -9) =="
	SMOKE_TMP=$(mktemp -d)
	go build -o "$SMOKE_TMP/auditd" ./cmd/auditd
	go build -o "$SMOKE_TMP/auditgen" ./cmd/auditgen
	go build -o "$SMOKE_TMP/purposectl" ./cmd/purposectl

	"$SMOKE_TMP/auditgen" -builtin hospital -stream >"$SMOKE_TMP/trail.ndjson"
	lines=$(wc -l <"$SMOKE_TMP/trail.ndjson")
	half=$((lines / 2))
	head -n "$half" "$SMOKE_TMP/trail.ndjson" >"$SMOKE_TMP/first.ndjson"
	tail -n +"$((half + 1))" "$SMOKE_TMP/trail.ndjson" >"$SMOKE_TMP/second.ndjson"

	# crash_boot starts auditd with the durable WAL config; $1 names the
	# log file, the remaining args are appended to the command line.
	crash_boot() {
		log="$1"
		shift
		: >"$SMOKE_TMP/addr"
		"$SMOKE_TMP/auditd" -builtin hospital -addr 127.0.0.1:0 \
			-addr-file "$SMOKE_TMP/addr" -checkpoint-every 1h \
			"$@" 2>"$SMOKE_TMP/$log.log" &
		SMOKE_PID=$!
		i=0
		while [ ! -s "$SMOKE_TMP/addr" ]; do
			i=$((i + 1))
			if [ "$i" -gt 100 ]; then
				echo "auditd ($log) never wrote its address; log:" >&2
				cat "$SMOKE_TMP/$log.log" >&2
				exit 1
			fi
			sleep 0.1
		done
		addr=$(cat "$SMOKE_TMP/addr")
	}

	# -ledger-wait 0 keeps sealing deterministic: batches close on size
	# alone, so the root chain depends only on the entry sequence.
	ledger_flags="-ledger -ledger-key $SMOKE_TMP/ledger.key -ledger-batch 4 -ledger-wait 0"

	# shellcheck disable=SC2086
	crash_boot crash1 -checkpoint "$SMOKE_TMP/crash-ckpt.json" \
		-wal-dir "$SMOKE_TMP/wal" -fsync always $ledger_flags
	curl -sf --data-binary @"$SMOKE_TMP/first.ndjson" \
		"http://$addr/v1/events?wait=1" >"$SMOKE_TMP/ingest1.json"
	grep -q "\"accepted\": $half" "$SMOKE_TMP/ingest1.json" || {
		echo "first half not fully acknowledged:" >&2
		cat "$SMOKE_TMP/ingest1.json" >&2
		exit 1
	}

	# Every acknowledged entry is fsynced; nothing else may save us.
	kill -9 "$SMOKE_PID"
	wait "$SMOKE_PID" 2>/dev/null || true
	SMOKE_PID=""
	if [ -e "$SMOKE_TMP/crash-ckpt.json" ]; then
		echo "checkpoint written before the crash; the test proves nothing" >&2
		exit 1
	fi

	mkdir -p "$SMOKE_TMP/flight"
	# shellcheck disable=SC2086
	crash_boot crash2 -checkpoint "$SMOKE_TMP/crash-ckpt.json" \
		-wal-dir "$SMOKE_TMP/wal" -fsync always \
		-flight-dir "$SMOKE_TMP/flight" $ledger_flags
	curl -sf "http://$addr/metrics" >"$SMOKE_TMP/crash-metrics.txt"
	grep -q "^auditd_wal_replayed_total $half$" "$SMOKE_TMP/crash-metrics.txt" || {
		echo "reboot did not replay the $half acknowledged entries:" >&2
		grep ^auditd_wal "$SMOKE_TMP/crash-metrics.txt" >&2
		exit 1
	}
	curl -sf --data-binary @"$SMOKE_TMP/second.ndjson" \
		"http://$addr/v1/events?wait=1" >"$SMOKE_TMP/ingest2.json"
	grep -q "\"accepted\": $((lines - half))" "$SMOKE_TMP/ingest2.json" || {
		echo "second half not fully acknowledged:" >&2
		cat "$SMOKE_TMP/ingest2.json" >&2
		exit 1
	}

	# PR 10: SIGQUIT dumps the flight recorder and the daemon keeps
	# serving; the dump is a valid JSON post-mortem of the replay the
	# reboot just did.
	kill -QUIT "$SMOKE_PID"
	i=0
	until ls "$SMOKE_TMP"/flight/flightrec-sigquit-*.json >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "SIGQUIT produced no flight dump; log:" >&2
			cat "$SMOKE_TMP/crash2.log" >&2
			exit 1
		fi
		sleep 0.1
	done
	dump=$(ls "$SMOKE_TMP"/flight/flightrec-sigquit-*.json | head -n 1)
	grep -q '"reason": "sigquit"' "$dump" &&
		grep -q '"batch_fed"' "$dump" || {
		echo "flight dump incomplete:" >&2
		cat "$dump" >&2
		exit 1
	}
	curl -sf "http://$addr/readyz" >/dev/null || {
		echo "auditd stopped serving after SIGQUIT" >&2
		exit 1
	}

	# PR 10: purposectl top -once renders the live dashboard.
	"$SMOKE_TMP/purposectl" top -once -addr "http://$addr" >"$SMOKE_TMP/top.txt"
	grep -q '^auditd ' "$SMOKE_TMP/top.txt" &&
		grep -q 'wal: ' "$SMOKE_TMP/top.txt" &&
		grep -q 'shard ' "$SMOKE_TMP/top.txt" || {
		echo "purposectl top -once did not render:" >&2
		cat "$SMOKE_TMP/top.txt" >&2
		exit 1
	}

	curl -sf "http://$addr/v1/cases?outcome=violation" >"$SMOKE_TMP/crash-violations.json"
	v=$(sed -n 's/^  "total": \([0-9][0-9]*\)$/\1/p' "$SMOKE_TMP/crash-violations.json")
	if [ "$v" != 5 ]; then
		echo "expected 5 violations after the kill -9 reboot, got ${v:-none}:" >&2
		cat "$SMOKE_TMP/crash-violations.json" >&2
		exit 1
	fi
	curl -sf "http://$addr/v1/cases" >"$SMOKE_TMP/crash-cases.json"
	curl -sf "http://$addr/v1/roots" >"$SMOKE_TMP/crash-roots.json"
	curl -sf "http://$addr/v1/proofs/HT-11" >"$SMOKE_TMP/crash-proof.json"
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || {
		echo "rebooted auditd exited non-zero; log:" >&2
		cat "$SMOKE_TMP/crash2.log" >&2
		exit 1
	}
	SMOKE_PID=""

	# The ledger rebuilt across the crash must still prove inclusion —
	# offline, against the mirrored public key.
	"$SMOKE_TMP/purposectl" verify-proof -bundle "$SMOKE_TMP/crash-proof.json" \
		-pubkey-file "$SMOKE_TMP/ledger.key.pub" >/dev/null || {
		echo "post-crash ledger proof does not verify offline" >&2
		cat "$SMOKE_TMP/crash-proof.json" >&2
		exit 1
	}

	# Control: the same trail through an uninterrupted daemon (its own
	# WAL, the same signing key). Verdicts must match the crashed run
	# byte for byte once the run-dependent fields (update time, shard
	# index, WAL position) are projected out.
	# shellcheck disable=SC2086
	crash_boot control -checkpoint "$SMOKE_TMP/control-ckpt.json" \
		-wal-dir "$SMOKE_TMP/control-wal" -fsync always $ledger_flags
	curl -sf --data-binary @"$SMOKE_TMP/trail.ndjson" \
		"http://$addr/v1/events?wait=1" >/dev/null
	curl -sf "http://$addr/v1/cases" >"$SMOKE_TMP/control-cases.json"
	curl -sf "http://$addr/v1/roots" >"$SMOKE_TMP/control-roots.json"
	kill -TERM "$SMOKE_PID"
	wait "$SMOKE_PID" || true
	SMOKE_PID=""

	# A signed root commits to nothing run-dependent: the kill -9 run's
	# chain must be byte-identical to the uninterrupted control's.
	diff -u "$SMOKE_TMP/control-roots.json" "$SMOKE_TMP/crash-roots.json" || {
		echo "root chain after kill -9 rebuild diverges from the uninterrupted run" >&2
		exit 1
	}

	for f in crash control; do
		grep -vE '"(updated|shard|wal_lsn)":' "$SMOKE_TMP/$f-cases.json" \
			>"$SMOKE_TMP/$f-cases.norm"
	done
	diff -u "$SMOKE_TMP/control-cases.norm" "$SMOKE_TMP/crash-cases.norm" || {
		echo "verdicts after kill -9 reboot diverge from the uninterrupted run" >&2
		exit 1
	}

	echo "crash smoke OK ($half acknowledged entries survived kill -9, $v violations, verdicts identical, root chains byte-identical)"
	rm -rf "$SMOKE_TMP"
	SMOKE_TMP=""
}

# lint gates on gofmt and go vet unconditionally. staticcheck is
# version-pinned; when the binary is absent it is installed on the
# spot, and an install failure (e.g. no network in a sealed container)
# downgrades the stage to a warning instead of a hard failure —
# GitHub Actions always has the network, so the check is never skipped
# where it matters.
lint() {
	echo "== gofmt =="
	unformatted=$(gofmt -l .)
	if [ -n "$unformatted" ]; then
		echo "gofmt: the following files need formatting:" >&2
		echo "$unformatted" >&2
		exit 1
	fi

	echo "== go vet =="
	go vet ./...

	echo "== staticcheck ($STATICCHECK_VERSION) =="
	if ! command -v staticcheck >/dev/null 2>&1; then
		GOBIN="$(go env GOPATH)/bin" go install \
			"honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" 2>/dev/null || true
		PATH="$(go env GOPATH)/bin:$PATH"
	fi
	if command -v staticcheck >/dev/null 2>&1; then
		staticcheck ./...
	else
		echo "staticcheck unavailable (offline?); skipping" >&2
	fi
}

# cover ratchets statement coverage of the packages that decide and
# explain verdicts: the interpreter (internal/core), the table compiler
# (internal/automaton), the observability layer (internal/obs), the
# artifact codec (internal/encode — it deserializes what the automata
# trust), the tamper-evidence layer (internal/ledger — it signs what
# auditors rely on) and the scenario framework (internal/scenario — it
# decides what the corpus asserts). The combined figure must stay
# >= COVER_MIN.
cover() {
	echo "== coverage ratchet (internal/core, internal/automaton, internal/obs, internal/encode, internal/ledger, internal/scenario; min ${COVER_MIN}%) =="
	go test -coverprofile=cover.out ./internal/core/ ./internal/automaton/ ./internal/obs/ ./internal/encode/ ./internal/ledger/ ./internal/scenario/
	total=$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
	echo "combined engine coverage: ${total}%"
	if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
		echo "Engine coverage: **${total}%** (floor ${COVER_MIN}%)" >>"$GITHUB_STEP_SUMMARY"
	fi
	awk -v t="$total" -v min="$COVER_MIN" 'BEGIN { exit (t+0 >= min+0) ? 0 : 1 }' || {
		echo "coverage ${total}% fell below the ${COVER_MIN}% floor" >&2
		exit 1
	}
}

# scenarios runs the declarative purpose-test corpus: every
# *.scenario.json fixture replays its annotated trails through the
# interpreter, the compiled automaton and the minimized automaton,
# requires byte-identical reports, checks the declared verdicts and
# first deviations, and holds each fixture's DFA state coverage to
# SCENARIO_COVER_MIN (DESIGN.md §16). A short run of the scenario
# fuzzer rides along, co-mutating a process and its trail to hunt for
# engine disagreement beyond the curated corpus.
scenarios() {
	echo "== scenario corpus (purposectl test, state-coverage floor ${SCENARIO_COVER_MIN}%) =="
	if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
		go run ./cmd/purposectl test -cover-min "$SCENARIO_COVER_MIN" \
			-summary "$GITHUB_STEP_SUMMARY" ./scenarios/...
	else
		go run ./cmd/purposectl test -cover-min "$SCENARIO_COVER_MIN" ./scenarios/...
	fi

	echo "== scenario fuzz smoke =="
	go test ./internal/scenario/ -run '^$' -fuzz '^FuzzScenario$' -fuzztime 5s
}

# benchguard replays the timed P1 (trail length), P3 (parallel cases),
# P4 (compiled vs interpreted), P5 (observer overhead), P6
# (raw-speed tier: decode, dispatch, minimized replay, binary
# boot/restore) and P7 (WAL ingest overhead) series in quick mode and
# fails if any long-trail row's ns/entry regressed more than
# BENCH_SLACK vs the checked-in baselines (later files override
# earlier rows). The P1/P4 nil-observer replay rows are held to 5%: a
# disabled observer must stay free. P6 gets 50%: its replay rows sit
# around 20 ns/entry where quick-mode scheduler noise dwarfs the 25%
# band — the tier's hard claims (zero decode allocations, batched
# dispatch >= 2x) are asserted inside benchtab itself on every full
# run. P7 also gets 50%: its rows time a full ingest-to-applied drain
# whose wall clock rides the box's disk and scheduler; the tier's hard
# claim (interval fsync <= 2x no-WAL) is likewise asserted inside
# benchtab on every full run. P8 (Merkle ledger sealing) rides the same
# pipeline and gets the same 50% band, with its hard claim (batch-64
# sealing <= 2x no-ledger) asserted inside benchtab on full runs. P10
# (stage-timer sampling) times the same drain and gets 50% too; its
# hard claim (1-in-64 sampling <= 1.05x untimed) is asserted inside
# benchtab on full runs.
benchguard() {
	echo "== benchguard (P1, P3, P4, P5, P6, P7, P8, P10 vs checked-in baselines) =="
	go run ./cmd/benchtab -exp P1,P3,P4,P5,P6,P7,P8,P10 -quick \
		-guard BENCH_pr1.json,BENCH_pr4.json,BENCH_pr5.json,BENCH_pr6.json,BENCH_pr7.json,BENCH_pr8.json,BENCH_pr10.json \
		-guard-slack "$BENCH_SLACK" -guard-slack-exp P1=0.05,P4=0.05,P6=0.5,P7=0.5,P8=0.5,P10=0.5
}

case "${1:-all}" in
smoke)
	server_smoke
	exit 0
	;;
proofs)
	proofs_smoke
	exit 0
	;;
crash)
	crash_smoke
	exit 0
	;;
lint)
	lint
	exit 0
	;;
cover)
	cover
	exit 0
	;;
scenarios)
	scenarios
	exit 0
	;;
benchguard)
	benchguard
	exit 0
	;;
all) ;;
*)
	echo "usage: sh ci.sh [all|lint|cover|scenarios|benchguard|smoke|proofs|crash]" >&2
	exit 2
	;;
esac

lint

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos test -race =="
go test -race -run TestChaosPipeline ./internal/faultinject/

echo "== fuzz smoke =="
for target in FuzzReadCSV FuzzReadJSONL FuzzParsePaperTime; do
	go test ./internal/audit/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done
go test ./internal/core/ -run '^$' -fuzz '^FuzzCompiledReplay$' -fuzztime 5s

cover

scenarios

benchguard

server_smoke

proofs_smoke

crash_smoke
