#!/bin/sh
# CI gate: static checks, full build, race-enabled tests (the chaos
# suite in internal/faultinject runs under -race here), a fuzz smoke
# over the ingestion surface, then a quick benchmark smoke of the P1
# (trail length) and P3 (parallel cases) performance claims, recorded
# to BENCH_pr1.json for regression tracking. Run via `make ci` or
# directly.
set -eu

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos test -race =="
go test -race -run TestChaosPipeline ./internal/faultinject/

echo "== fuzz smoke =="
for target in FuzzReadCSV FuzzReadJSONL FuzzParsePaperTime; do
	go test ./internal/audit/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done

echo "== benchmark smoke (P1, P3) =="
go run ./cmd/benchtab -exp P1,P3 -quick -json BENCH_pr1.json
