// Purpose control outside healthcare: a bank's loan-origination
// process (see internal/loan). Credit bureau reports may be pulled for
// the purpose of deciding a loan application — not for prospecting. A
// clerk who pulls reports under fabricated application cases to build
// a marketing list re-purposes the data exactly like the paper's
// cardiologist; the preventive layer authorizes every single pull, and
// Algorithm 1 flags every fabricated case.
//
//	go run ./examples/loanorigination
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/loan"
	"repro/internal/policy"
)

func main() {
	proc, err := loan.Process()
	if err != nil {
		log.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, loan.Code); err != nil {
		log.Fatal(err)
	}
	pol, err := loan.Policy()
	if err != nil {
		log.Fatal(err)
	}
	fw := core.NewFramework(reg, pol, policy.NewConsentRegistry())
	trail := loan.Trail()

	res, err := fw.Audit(trail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy findings (preventive layer): %d\n\n", len(res.PolicyFindings))
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
	}

	// Rank the infringements for the investigation queue.
	scorer := core.NewSeverityScorer(nil)
	fmt.Println("\ninvestigation queue (most severe first):")
	for _, sr := range scorer.Rank(res, trail) {
		fmt.Printf("  %-8s score %d (consent %d, sensitivity %d, spread %d, progress %d)\n",
			sr.Report.Case, sr.Score, sr.Consent, sr.Sensitivity, sr.Spread, sr.Progress)
	}
}
