// Purpose control outside healthcare: a bank's loan-origination
// process. Credit bureau reports may be pulled for the purpose of
// deciding a loan application — not for prospecting. A clerk who pulls
// reports under fabricated application cases to build a marketing list
// re-purposes the data exactly like the paper's cardiologist; the
// preventive layer authorizes every single pull, and Algorithm 1 flags
// every fabricated case.
//
//	go run ./examples/loanorigination
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/policy"
)

func buildLoanProcess() (*bpmn.Process, error) {
	// Intake clerk receives the application; credit analysis may fail
	// (missing documents loop back to intake); underwriting orders
	// income verification and/or collateral appraisal (inclusive);
	// then the decision is made.
	return bpmn.NewBuilder("LoanOrigination").
		Pool("IntakeClerk").Pool("CreditAnalyst").Pool("Underwriter").
		Start("S1", "IntakeClerk").
		Task("L01", "IntakeClerk", "register application, collect documents").
		MessageEnd("E1", "IntakeClerk").
		MessageStart("S1b", "IntakeClerk").
		Seq("S1", "L01").Seq("S1b", "L01").Seq("L01", "E1").
		MessageStart("S2", "CreditAnalyst").
		FallibleTask("L02", "CreditAnalyst", "pull credit report, assess", "L02b").
		Task("L02b", "CreditAnalyst", "request missing documents").
		MessageEnd("E2", "CreditAnalyst").
		MessageEnd("E2b", "CreditAnalyst").
		Seq("S2", "L02").Seq("L02", "E2").Seq("L02b", "E2b").
		MessageStart("S3", "Underwriter").
		OR("G1", "Underwriter").
		Task("L03", "Underwriter", "verify income").
		Task("L04", "Underwriter", "appraise collateral").
		OR("J1", "Underwriter").
		Task("L05", "Underwriter", "decide application").
		End("E3", "Underwriter").
		Seq("S3", "G1").Seq("G1", "L03", "J1").Seq("G1", "L04", "J1").
		Seq("J1", "L05", "E3").
		PairOR("G1", "J1").
		Msg("E1", "S2").   // application forwarded to credit analysis
		Msg("E2", "S3").   // credit ok: to underwriting
		Msg("E2b", "S1b"). // documents missing: back to intake
		Build()
}

func main() {
	proc, err := buildLoanProcess()
	if err != nil {
		log.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "LA"); err != nil {
		log.Fatal(err)
	}

	pol, err := policy.ParsePolicyString(`
		role BankStaff
		role IntakeClerk   : BankStaff
		role CreditAnalyst : BankStaff
		role Underwriter   : BankStaff

		permit BankStaff     read  [*]Application          for LoanOrigination
		permit IntakeClerk   write [*]Application          for LoanOrigination
		permit CreditAnalyst read  [*]CreditReport         for LoanOrigination
		permit CreditAnalyst write [*]Application/Credit   for LoanOrigination
		permit Underwriter   write [*]Application/Decision for LoanOrigination
	`)
	if err != nil {
		log.Fatal(err)
	}
	fw := core.NewFramework(reg, pol, policy.NewConsentRegistry())

	t0 := time.Date(2026, 7, 3, 9, 0, 0, 0, time.UTC)
	mk := func(min int, user, role, action, object, task, caseID string) audit.Entry {
		return audit.Entry{
			User: user, Role: role, Action: action,
			Object: policy.MustParseObject(object),
			Task:   task, Case: caseID,
			Time: t0.Add(time.Duration(min) * time.Minute), Status: audit.Success,
		}
	}

	// LA-1: a genuine application, straight through with both checks.
	genuine := []audit.Entry{
		mk(0, "ida", "IntakeClerk", "write", "[Kim]Application", "L01", "LA-1"),
		mk(10, "carl", "CreditAnalyst", "read", "[Kim]CreditReport", "L02", "LA-1"),
		mk(11, "carl", "CreditAnalyst", "write", "[Kim]Application/Credit", "L02", "LA-1"),
		mk(20, "uma", "Underwriter", "read", "[Kim]Application", "L03", "LA-1"),
		mk(25, "uma", "Underwriter", "read", "[Kim]Application", "L04", "LA-1"),
		mk(30, "uma", "Underwriter", "write", "[Kim]Application/Decision", "L05", "LA-1"),
	}
	// LA-50x: carl harvests credit reports under fabricated
	// applications — every pull individually authorized.
	harvest := []audit.Entry{
		mk(40, "carl", "CreditAnalyst", "read", "[Lee]CreditReport", "L02", "LA-501"),
		mk(41, "carl", "CreditAnalyst", "read", "[Mia]CreditReport", "L02", "LA-502"),
		mk(42, "carl", "CreditAnalyst", "read", "[Noa]CreditReport", "L02", "LA-503"),
	}
	trail := audit.NewTrail(append(genuine, harvest...))

	res, err := fw.Audit(trail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy findings (preventive layer): %d\n\n", len(res.PolicyFindings))
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
	}

	// Rank the infringements for the investigation queue.
	scorer := core.NewSeverityScorer(nil)
	fmt.Println("\ninvestigation queue (most severe first):")
	for _, sr := range scorer.Rank(res, trail) {
		fmt.Printf("  %-8s score %d (consent %d, sensitivity %d, spread %d, progress %d)\n",
			sr.Report.Case, sr.Score, sr.Consent, sr.Sensitivity, sr.Spread, sr.Progress)
	}
}
