// Online purpose-control monitoring: the resumable variant of
// Algorithm 1 the paper calls for in Section 4 ("the analysis should be
// resumed when new actions within the process instance are recorded").
// Entries stream into a Monitor as they are logged; deviations are
// flagged on the exact entry that deviates. The stream is also sealed
// into a hash-chained secure log ([18,19]) and verified at the end.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
)

func main() {
	sc, err := hospital.NewScenario()
	if err != nil {
		log.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		log.Fatal(err)
	}
	checker := core.NewChecker(sc.Registry, roles)
	monitor := core.NewMonitor(checker)

	key := []byte("hospital-audit-log-key")
	seal := audit.NewSecureLog(key)

	fmt.Println("== Streaming the Figure 4 trail through the online monitor")
	flagged := 0
	for i := 0; i < sc.Trail.Len(); i++ {
		e := sc.Trail.At(i)
		seal.Append(e)
		v, err := monitor.Feed(e)
		if err != nil {
			log.Fatal(err)
		}
		if !v.OK {
			flagged++
			fmt.Printf("!! entry %2d flagged live: %s\n", i, e)
			fmt.Printf("   %s\n", v.Violation)
		}
	}
	fmt.Printf("flagged %d entries while streaming\n\n", flagged)

	fmt.Println("== Case status at end of stream")
	status, err := monitor.Status()
	if err != nil {
		log.Fatal(err)
	}
	for _, cs := range status {
		state := "in flight"
		switch {
		case cs.Deviated:
			state = "DEVIATED"
		case cs.CanComplete:
			state = "completable"
		}
		fmt.Printf("case %-6s (%s): %2d entries, %d live configurations, %s\n",
			cs.Case, cs.Purpose, cs.Entries, cs.Configurations, state)
	}

	fmt.Println("\n== Verifying the sealed log")
	if err := audit.Verify(key, seal.Entries(), seal.Len()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hash chain and %d HMAC seals verify under the initial key\n", seal.Len())

	// Tamper and re-verify.
	tampered := seal.Entries()
	tampered[5].Entry.User = "Mallory"
	if err := audit.Verify(key, tampered, len(tampered)); err != nil {
		fmt.Printf("tampering with entry 5 detected: %v\n", err)
	} else {
		log.Fatal("tampering went undetected")
	}
}
