// The paper's running example end to end (Sections 2–4, Figures 1–4):
// the treatment and clinical-trial processes, the Figure 3 policy, the
// Figure 4 audit trail, and the investigation of Jane's EPR that exposes
// the cardiologist's re-purposing — invisible to the preventive layer,
// caught by Algorithm 1.
//
//	go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"repro/internal/hospital"
	"repro/internal/policy"
)

func main() {
	sc, err := hospital.NewScenario()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Processes (Figures 1 and 2)")
	st := sc.Treatment.Stats()
	fmt.Printf("%s: %d pools, %d tasks, %d gateways, %d message flows\n",
		sc.Treatment.Name, st.Pools, st.Tasks, st.Gateways, st.MsgFlows)
	st = sc.Trial.Stats()
	fmt.Printf("%s: %d pools, %d tasks\n", sc.Trial.Name, st.Pools, st.Tasks)

	fmt.Println("\n== The audit trail (Figure 4)")
	fmt.Printf("%d entries across cases %v\n", sc.Trail.Len(), sc.Trail.Cases())

	fmt.Println("\n== Preventive layer (Definition 3) sees nothing wrong")
	res, err := sc.Framework.Audit(sc.Trail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy findings: %d\n", len(res.PolicyFindings))

	fmt.Println("\n== Purpose control (Algorithm 1) per case")
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
	}

	fmt.Println("\n== Investigating Jane's EPR (Section 4)")
	jane := policy.MustParseObject("[Jane]EPR")
	reports, err := sc.Framework.Checker.CheckObject(sc.Trail, jane)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		fmt.Println(rep)
	}
	fmt.Println("\nJane's data were accessed under HT-11 claiming treatment, but the")
	fmt.Println("trail is not a valid execution of the treatment process: the claimed")
	fmt.Println("purpose was false. Bob harvested her EPR for his clinical trial —")
	fmt.Println("for which Jane explicitly withheld consent.")
}
