// Consent and re-purposing: the clinical-trial side of the paper's
// scenario. Shows the HIS answering the same query differently depending
// on the claimed purpose (Figure 3's [X] consent statements, footnote
// 3), the legitimate trial run under CT-1, and how claiming the wrong
// purpose to widen the result set is caught a posteriori.
//
//	go run ./examples/clinicaltrial
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/audit"
	"repro/internal/hospital"
	"repro/internal/policy"
)

func main() {
	sc, err := hospital.NewScenario()
	if err != nil {
		log.Fatal(err)
	}
	pdp := sc.Framework.PDP

	// The ward's patients.
	patients := []policy.Object{
		policy.MustParseObject("[Alice]EPR/Clinical"),
		policy.MustParseObject("[Jane]EPR/Clinical"),
		policy.MustParseObject("[David]EPR/Clinical"),
	}

	fmt.Println("== What the HIS returns per claimed purpose (footnote 3)")
	trialQuery := policy.AccessRequest{
		User: "Bob", Role: "Cardiologist", Action: "read", Task: "T92", Case: "CT-1",
	}
	visible := pdp.VisibleObjects(trialQuery, patients)
	fmt.Printf("claimed purpose ClinicalTrial (consent-gated): %v\n", visible)

	treatQuery := policy.AccessRequest{
		User: "Bob", Role: "Cardiologist", Action: "read", Task: "T06", Case: "HT-50",
	}
	visible = pdp.VisibleObjects(treatQuery, patients)
	fmt.Printf("claimed purpose HealthcareTreatment:          %v\n", visible)
	fmt.Println("→ claiming treatment exposes Jane's EPR, which the trial may not see.")

	// A fully honest trial: every access under CT-2 with consent.
	fmt.Println("\n== An honest trial (CT-2) replays cleanly")
	t0 := time.Date(2026, 7, 2, 9, 0, 0, 0, time.UTC)
	mk := func(min int, action, object, task string) audit.Entry {
		var obj policy.Object
		if object != "" {
			obj = policy.MustParseObject(object)
		}
		return audit.Entry{
			User: "Bob", Role: "Cardiologist", Action: action, Object: obj,
			Task: task, Case: "CT-2",
			Time: t0.Add(time.Duration(min) * time.Minute), Status: audit.Success,
		}
	}
	honest := audit.NewTrail([]audit.Entry{
		mk(0, "write", "ClinicalTrial/Criteria", "T91"),
		mk(1, "read", "[Alice]EPR/Clinical", "T92"),
		mk(2, "read", "[David]EPR/Clinical", "T92"),
		mk(3, "write", "ClinicalTrial/ListOfSelCand", "T92"),
		mk(4, "write", "ClinicalTrial/ListOfEnrCand", "T93"),
		mk(5, "write", "ClinicalTrial/Measurements", "T94"),
		mk(6, "write", "ClinicalTrial/Results", "T95"),
	})
	res, err := sc.Framework.Audit(honest)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
	}
	fmt.Printf("policy findings: %d\n", len(res.PolicyFindings))

	// The dishonest variant: reading Jane inside the trial case is
	// caught PREVENTIVELY (no consent), and the paper's actual attack —
	// reading her under a fake treatment case — is caught by
	// Algorithm 1 (see the hospital example).
	fmt.Println("\n== Reading Jane inside the trial case: preventive layer catches it")
	dishonest := audit.NewTrail(append(honest.Entries(),
		mk(30, "read", "[Jane]EPR/Clinical", "T94")))
	res, err = sc.Framework.Audit(dishonest)
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range res.PolicyFindings {
		fmt.Printf("policy finding: %s\n    %s\n", f.Entry, f.Reason)
	}
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
	}
}
