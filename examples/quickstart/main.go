// Quickstart: define a small organizational process, bind it to a
// purpose, log some actions, and ask the framework whether the data were
// actually processed for the claimed purpose.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/policy"
)

func main() {
	// 1. The organizational process: how "order fulfillment" is
	//    supposed to happen. Purposes ARE processes in this framework.
	proc, err := bpmn.NewBuilder("OrderFulfillment").
		Pool("Clerk").
		Start("S", "Clerk").
		Task("Validate", "Clerk", "validate the order").
		Task("Charge", "Clerk", "charge the customer").
		Task("Ship", "Clerk", "ship the goods").
		End("E", "Clerk").
		Seq("S", "Validate", "Charge", "Ship", "E").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Register it under the case code "OF": case OF-1 claims the
	//    OrderFulfillment purpose.
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "OF"); err != nil {
		log.Fatal(err)
	}

	// 3. A data protection policy for the preventive layer.
	pol := policy.NewPolicy(nil)
	if err := pol.Roles.Add("Clerk"); err != nil {
		log.Fatal(err)
	}
	for _, action := range []string{"read", "write"} {
		if err := pol.Permit("Clerk", action, "[*]Order", "OrderFulfillment"); err != nil {
			log.Fatal(err)
		}
	}
	fw := core.NewFramework(reg, pol, policy.NewConsentRegistry())

	// 4. Two logged cases: OF-1 follows the process; OF-2 charges the
	//    customer without ever validating the order.
	t0 := time.Date(2026, 7, 1, 9, 0, 0, 0, time.UTC)
	entry := func(min int, task, caseID string) audit.Entry {
		return audit.Entry{
			User: "eve", Role: "Clerk", Action: "write",
			Object: policy.MustParseObject("[Acme]Order/42"),
			Task:   task, Case: caseID,
			Time: t0.Add(time.Duration(min) * time.Minute), Status: audit.Success,
		}
	}
	trail := audit.NewTrail([]audit.Entry{
		entry(0, "Validate", "OF-1"),
		entry(1, "Charge", "OF-1"),
		entry(2, "Ship", "OF-1"),
		entry(10, "Charge", "OF-2"), // no validation first!
	})

	// 5. Audit: Algorithm 1 per case, Definition 3 per entry.
	res, err := fw.Audit(trail)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range res.CaseReports {
		fmt.Println(rep)
		if rep.Violation != nil {
			fmt.Println("   ", rep.Violation)
		}
	}
	fmt.Printf("%d infringement(s), %d policy finding(s)\n",
		len(res.Infringements()), len(res.PolicyFindings))
}
