// The closed loop: an organization running its processes through a
// workflow engine (the transactional substrate of Section 3.5), which
// offers worklists from the live COWS semantics, refuses off-process
// work up front, and writes the audit database that purpose control
// later replays. A trail produced by the engine is compliant by
// construction; an entry smuggled into the database behind the engine's
// back is caught by Algorithm 1.
//
//	go run ./examples/workflow
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/policy"
	"repro/internal/wfm"
)

func main() {
	sc, err := hospital.NewScenario()
	if err != nil {
		log.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		log.Fatal(err)
	}
	clock := func() func() time.Time {
		t := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
		return func() time.Time { t = t.Add(time.Minute); return t }
	}()
	eng := wfm.New(sc.Registry, roles, clock)

	caseID, err := eng.Start(hospital.TreatmentCode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started case %s (%s)\n", caseID, hospital.TreatmentPurpose)

	show := func() {
		offers, err := eng.Worklist(caseID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  worklist:")
		for _, o := range offers {
			mark := ""
			if o.Active {
				mark = " (active)"
			}
			fmt.Printf(" %s/%s%s", o.Role, o.Task, mark)
		}
		fmt.Println()
	}

	jane := policy.MustParseObject("[Jane]EPR/Clinical")
	do := func(user, role, task string) {
		if err := eng.Execute(caseID, user, role, task, wfm.Action{Verb: "read", Object: jane}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s) executed %s\n", user, role, task)
		show()
	}

	show()
	do("John", "GP", "T01")

	// The engine is the preventive twin of Algorithm 1: the HT-11
	// attack cannot even start here.
	err = eng.Execute(caseID, "Bob", "Cardiologist", "T06", wfm.Action{Verb: "read", Object: jane})
	fmt.Printf("Bob tries T06 out of order -> refused: %v\n", err != nil)

	do("John", "GP", "T05")
	do("Bob", "Cardiologist", "T06")
	do("Bob", "Cardiologist", "T07")
	do("John", "GP", "T01")
	do("John", "GP", "T02")
	do("John", "GP", "T03")
	do("John", "GP", "T04")

	st, err := eng.CaseStatus(caseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case %s can complete: %v\n\n", caseID, st.CanComplete)

	// The engine's own audit database replays cleanly...
	checker := core.NewChecker(sc.Registry, roles)
	trail := eng.AuditStore().Trail()
	rep, err := checker.CheckCase(trail, caseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auditing the engine's own trail:", rep)

	// ...but an entry smuggled in behind the engine's back does not.
	smuggled := append(trail.Entries(), audit.Entry{
		User: "Bob", Role: "Cardiologist", Action: "read", Object: jane,
		Task: "T06", Case: caseID, Time: clock(), Status: audit.Success,
	})
	rep, err = checker.CheckCase(audit.NewTrail(smuggled), caseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auditing the tampered trail:  ", rep)
}
