// Benchmarks regenerating the paper's experiments (see DESIGN.md §5 and
// EXPERIMENTS.md). The paper reports no measured numbers — only the
// claims that Algorithm 1 is tractable, scales, parallelizes across
// cases (Sections 1, 4, 7), and beats naive trace enumeration
// (Section 1); each claim is a benchmark family here:
//
//	P1  BenchmarkTrailLength      check time vs trail length
//	P2  BenchmarkProcessSize      check time vs process size
//	P3  BenchmarkParallelCases    hospital-day throughput vs workers
//	P4  BenchmarkNaiveVsAlg1      Algorithm 1 vs trace enumeration
//	P5  BenchmarkTokenReplay      Algorithm 1 vs Petri token replay
//	P6  BenchmarkORBranching      configuration growth vs OR fan-out
//
// plus micro-benchmarks of the substrate (COWS stepping, WeakNext,
// canonicalization, encoding, secure logging).
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/cows"
	"repro/internal/encode"
	"repro/internal/hospital"
	"repro/internal/lts"
	"repro/internal/naive"
	"repro/internal/petri"
	"repro/internal/workload"
)

// loopedProcess builds a process whose trails can be made arbitrarily
// long: T1 → (T2|T3) → loop back or exit.
func loopedProcess(name string) *bpmn.Process {
	return bpmn.NewBuilder(name).Pool("P").
		Start("S", "P").Task("T1", "P", "").XOR("G", "P").
		Task("T2", "P", "").Task("T3", "P", "").
		XOR("M", "P").XOR("G2", "P").Task("T4", "P", "").End("E", "P").
		Seq("S", "T1", "G").Seq("G", "T2", "M").Seq("G", "T3", "M").
		Seq("M", "G2").Seq("G2", "T1").Seq("G2", "T4", "E").
		MustBuild()
}

// longTrail builds a valid single-case trail of exactly n entries on the
// looped process: (T1, T2)* iterations ending with T4 — deterministic
// length, so the P1 series measures trail length and nothing else.
func longTrail(n int) *audit.Trail {
	pairs := (n - 1) / 2
	if pairs < 1 {
		pairs = 1
	}
	tasks := make([]string, 0, 2*pairs+1)
	for i := 0; i < pairs; i++ {
		tasks = append(tasks, "T1", "T2")
	}
	tasks = append(tasks, "T4")
	return taskTrail("LP-1", tasks)
}

// BenchmarkTrailLength (P1): Algorithm 1's replay cost as the audit
// trail grows — the paper's tractability claim. Reported ns/op covers
// one full case check; see ns/entry in the custom metric.
func BenchmarkTrailLength(b *testing.B) {
	for _, steps := range []int{10, 100, 1000, 5000} {
		b.Run(fmt.Sprintf("steps=%d", steps), func(b *testing.B) {
			reg := core.NewRegistry()
			reg.MustRegister(loopedProcess("Loop"), "LP")
			trail := longTrail(steps)
			caseID := trail.Cases()[0]
			checker := core.NewChecker(reg, nil)
			// Warm the LTS caches once; steady-state checking is
			// what a deployed auditor sees.
			if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
				b.Fatalf("warmup: %v %v", rep, err)
			}
			entries := trail.Len()
			b.ReportMetric(float64(entries), "entries")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := checker.CheckCase(trail, caseID)
				if err != nil || !rep.Compliant {
					b.Fatalf("%v %v", rep, err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(entries), "ns/entry")
		})
	}
}

// BenchmarkProcessSize (P2): replay cost as the process grows.
func BenchmarkProcessSize(b *testing.B) {
	for _, tasks := range []int{5, 20, 50, 100, 200} {
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			proc := workload.MustGenerate(workload.DefaultProcParams("Sized", 3, tasks))
			reg := core.NewRegistry()
			reg.MustRegister(proc, "SZ")
			params := workload.DefaultTrailParams(5, 1, "SZ")
			params.MaxSteps = 400
			trail, err := workload.NewSimulator(reg, params).Generate()
			if err != nil {
				b.Fatal(err)
			}
			caseID := trail.Cases()[0]
			checker := core.NewChecker(reg, nil)
			if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
				b.Fatalf("warmup: %v %v", rep, err)
			}
			b.ReportMetric(float64(trail.Len()), "entries")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
	}
}

// BenchmarkParallelCases (P3): the paper's "massive parallelization"
// across independent cases, on a hospital-day-shaped load (Section 1's
// 20k record opens scaled down to keep bench times sane; scale with
// -benchtime).
func BenchmarkParallelCases(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	trail, _, err := workload.HospitalDay(sc.Registry, hospital.TreatmentCode, 2000, 21)
	if err != nil {
		b.Fatal(err)
	}
	store := audit.NewStore()
	if err := store.AppendAll(trail.Entries()); err != nil {
		b.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		b.Fatal(err)
	}
	checker := core.NewChecker(sc.Registry, roles)
	// Warm the shared LTS/configuration caches once so the worker sweep
	// measures steady-state scaling, not the one-time derivation cost.
	if _, err := core.CheckStoreParallel(checker, store, 1); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportMetric(float64(store.Len()), "entries")
			for i := 0; i < b.N; i++ {
				reports, err := core.CheckStoreParallel(checker, store, workers)
				if err != nil {
					b.Fatal(err)
				}
				for id, rep := range reports {
					if !rep.Compliant {
						b.Fatalf("case %s rejected: %s", id, rep)
					}
				}
			}
		})
	}
}

// BenchmarkCheckTrailParallel: Checker.CheckTrailParallel on the same
// hospital-day load — the report-ordered variant of P3, sharing one
// warm checker across workers.
func BenchmarkCheckTrailParallel(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	trail, _, err := workload.HospitalDay(sc.Registry, hospital.TreatmentCode, 500, 21)
	if err != nil {
		b.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		b.Fatal(err)
	}
	checker := core.NewChecker(sc.Registry, roles)
	if _, err := checker.CheckTrail(trail); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := checker.CheckTrailParallel(trail, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNaiveVsAlg1 (P4): the Section 1 comparison. The naive
// checker materializes the trace set (exponential in loop iterations ×
// branching); Algorithm 1 replays in time linear in the trail.
func BenchmarkNaiveVsAlg1(b *testing.B) {
	for _, steps := range []int{4, 8, 16, 24} {
		reg := core.NewRegistry()
		reg.MustRegister(loopedProcess("Loop"), "LP")
		trail := longTrail(steps)
		caseID := trail.Cases()[0]

		b.Run(fmt.Sprintf("alg1/steps=%d", steps), func(b *testing.B) {
			checker := core.NewChecker(reg, nil)
			for i := 0; i < b.N; i++ {
				if rep, err := checker.CheckCase(trail, caseID); err != nil || !rep.Compliant {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
		b.Run(fmt.Sprintf("naive/steps=%d", steps), func(b *testing.B) {
			nv := naive.NewChecker(reg, nil)
			nv.Slack = 2
			nv.MaxTraces = 1 << 20
			traces := 0
			for i := 0; i < b.N; i++ {
				res, err := nv.CheckCase(trail, caseID)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Compliant && res.Exhaustive {
					b.Fatalf("naive rejected a valid trail")
				}
				traces = res.TracesEnumerated
			}
			b.ReportMetric(float64(traces), "traces")
		})
	}
}

// BenchmarkTokenReplay (P5, cost side): Petri-net token replay on the
// same hospital cases Algorithm 1 checks. (Capability side — what token
// replay cannot detect — is TestDetectionGapVersusTokenReplay in
// internal/workload and the P5 table in cmd/benchtab.)
func BenchmarkTokenReplay(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	net, err := petri.FromBPMN(sc.Treatment)
	if err != nil {
		b.Fatal(err)
	}
	replayer := &petri.Replayer{Net: net}
	roles, err := hospital.Roles()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("tokenreplay/HT-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := replayer.ReplayCase(sc.Trail, "HT-1")
			if err != nil || res.Flagged() {
				b.Fatalf("%+v %v", res, err)
			}
		}
	})
	b.Run("alg1/HT-1", func(b *testing.B) {
		checker := core.NewChecker(sc.Registry, roles)
		if rep, err := checker.CheckCase(sc.Trail, "HT-1"); err != nil || !rep.Compliant {
			b.Fatalf("warmup: %v %v", rep, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := checker.CheckCase(sc.Trail, "HT-1")
			if err != nil || !rep.Compliant {
				b.Fatalf("%v %v", rep, err)
			}
		}
	})
}

// BenchmarkORBranching (P6): the cost driver of Definition 6 — the
// configuration set tracks every consistent OR-subset hypothesis, so
// peak configurations (and time) grow with inclusive fan-out.
func BenchmarkORBranching(b *testing.B) {
	for _, branches := range []int{2, 3, 4, 5, 6} {
		b.Run(fmt.Sprintf("branches=%d", branches), func(b *testing.B) {
			bl := bpmn.NewBuilder("ORFan").Pool("P").
				Start("S", "P").OR("G", "P").OR("J", "P").
				Task("TZ", "P", "").End("E", "P")
			for i := 0; i < branches; i++ {
				id := fmt.Sprintf("T%d", i)
				bl.Task(id, "P", "")
				bl.Seq("G", id, "J")
			}
			proc := bl.Seq("S", "G").Seq("J", "TZ", "E").PairOR("G", "J").MustBuild()
			reg := core.NewRegistry()
			reg.MustRegister(proc, "OF")

			// Trail: all branches fire, then the join task.
			steps := make([]string, 0, branches+1)
			for i := 0; i < branches; i++ {
				steps = append(steps, fmt.Sprintf("T%d", i))
			}
			steps = append(steps, "TZ")
			trail := taskTrail("OF-1", steps)
			checker := core.NewChecker(reg, nil)
			rep, err := checker.CheckCase(trail, "OF-1")
			if err != nil || !rep.Compliant {
				b.Fatalf("warmup: %v %v", rep, err)
			}
			b.ReportMetric(float64(rep.PeakConfigurations), "peakconfigs")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rep, err := checker.CheckCase(trail, "OF-1"); err != nil || !rep.Compliant {
					b.Fatalf("%v %v", rep, err)
				}
			}
		})
	}
}

// taskTrail builds a one-case trail of successive success entries in
// pool P.
func taskTrail(caseID string, tasks []string) *audit.Trail {
	var entries []audit.Entry
	base, _ := audit.ParsePaperTime("202607050900")
	for i, task := range tasks {
		entries = append(entries, audit.Entry{
			User: "u", Role: "P", Action: "read",
			Task: task, Case: caseID,
			Time: base.Add(time.Duration(i) * time.Minute), Status: audit.Success,
		})
	}
	return audit.NewTrail(entries)
}

//
// Substrate micro-benchmarks.
//

// BenchmarkCOWSStep measures one derivation step on the encoded Fig. 1
// process.
func BenchmarkCOWSStep(b *testing.B) {
	treatment, err := hospital.Treatment()
	if err != nil {
		b.Fatal(err)
	}
	s, err := encode.Encode(treatment)
	if err != nil {
		b.Fatal(err)
	}
	e := cows.NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Step(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeakNext measures Definition 7 (cold cache) on Fig. 1.
func BenchmarkWeakNext(b *testing.B) {
	treatment, err := hospital.Treatment()
	if err != nil {
		b.Fatal(err)
	}
	s, err := encode.Encode(treatment)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := lts.NewSystem(encode.Observability(treatment))
		if _, err := y.WeakNext(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanon measures state canonicalization on the Fig. 1
// encoding.
func BenchmarkCanon(b *testing.B) {
	treatment, err := hospital.Treatment()
	if err != nil {
		b.Fatal(err)
	}
	s, err := encode.Encode(treatment)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cows.Canon(s)
	}
}

// BenchmarkEncode measures BPMN→COWS translation of Fig. 1.
func BenchmarkEncode(b *testing.B) {
	treatment, err := hospital.Treatment()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := encode.Encode(treatment); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecureLogAppend measures the hash-chain sealing rate.
func BenchmarkSecureLogAppend(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	entries := sc.Trail.Entries()
	l := audit.NewSecureLog([]byte("bench-key"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(entries[i%len(entries)])
	}
}

// BenchmarkMonitorFeed measures online per-entry cost on the Figure 4
// stream.
func BenchmarkMonitorFeed(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		b.Fatal(err)
	}
	entries := sc.Trail.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(entries) == 0 {
			b.StopTimer()
			checker := core.NewChecker(sc.Registry, roles)
			bmMonitor = core.NewMonitor(checker)
			b.StartTimer()
		}
		if _, err := bmMonitor.Feed(entries[i%len(entries)]); err != nil {
			b.Fatal(err)
		}
	}
}

var bmMonitor *core.Monitor

// BenchmarkSkipBudget measures the cost of the partial-trail extension
// (Section 7 future work): replaying HT-1 with the T10 entry removed
// under growing skip budgets.
func BenchmarkSkipBudget(b *testing.B) {
	sc, err := hospital.NewScenario()
	if err != nil {
		b.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		b.Fatal(err)
	}
	var entries []audit.Entry
	for _, e := range sc.Trail.ByCase("HT-1").Entries() {
		if e.Task == "T10" {
			continue
		}
		entries = append(entries, e)
	}
	partial := audit.NewTrail(entries)
	checker := core.NewChecker(sc.Registry, roles)
	if _, err := checker.CheckCaseWithSkips(partial, "HT-1", 1); err != nil {
		b.Fatal(err)
	}
	for _, budget := range []int{0, 1, 2, 3} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := checker.CheckCaseWithSkips(partial, "HT-1", budget)
				if err != nil {
					b.Fatal(err)
				}
				if budget >= 1 && !rep.Compliant {
					b.Fatalf("budget %d rejected: %+v", budget, rep)
				}
			}
		})
	}
}
