// Package repro is a from-scratch Go reproduction of Petković, Prandi
// and Zannone, "Purpose Control: Did You Process the Data for the
// Intended Purpose?" (SDM@VLDB 2011): a purpose-control framework that
// detects privacy infringements by replaying audit trails against the
// COWS semantics of the organizational processes that operationalize
// each purpose.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); runnable entry points are under cmd/ and examples/.
// The benchmarks in bench_test.go regenerate the paper's experiments
// (EXPERIMENTS.md).
package repro
