package ledger

// Proof formats and their offline verification. A CaseProof is
// self-contained: entries in the standard JSONL wire form, sibling
// paths into signed batch roots, and the contiguous run of signed
// roots from the earliest referenced batch through the head. Checking
// it needs only the signing public key — no WAL, no checkpoint, no
// process models — which is the whole point: a verdict bundle handed
// to a regulator stays checkable after the daemon is gone.

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/audit"
)

// ErrProof reports a failed proof verification.
var ErrProof = errors.New("ledger: proof verification failed")

// SignedRoot is one sealed batch's public commitment. Sig is the
// ed25519 signature over ChainHash, which itself binds the Merkle
// root to the predecessor root's chain hash and the batch's position
// — so a verifier holding a run of roots checks both integrity and
// consistency (root N ⊆ root M) in one chain walk.
type SignedRoot struct {
	Seq       uint64 `json:"seq"`
	FirstLSN  uint64 `json:"first_lsn"`
	Leaves    int    `json:"leaves"`
	Root      string `json:"root"`       // hex Merkle root
	PrevChain string `json:"prev_chain"` // hex chain hash of root Seq-1 (seed for Seq 1)
	ChainHash string `json:"chain_hash"` // hex H(0x02 || prev || seq || firstLSN || leaves || root)
	Sig       string `json:"sig"`        // hex ed25519 over ChainHash
}

// ProofStep is one sibling on the path from a leaf to its root.
type ProofStep struct {
	Hash string `json:"hash"`
	Left bool   `json:"left"`
}

// EntryProof proves one entry into one signed root.
type EntryProof struct {
	// Entry is the JSONL wire form — the bytes the canonical
	// serialization (and hence the leaf hash) is recomputed from.
	Entry     json.RawMessage `json:"entry"`
	LSN       uint64          `json:"lsn"`
	Batch     uint64          `json:"batch"` // root Seq
	Index     int             `json:"index"` // leaf index within the batch
	PrevChain string          `json:"prev_chain"`
	Path      []ProofStep     `json:"path"`
}

// CaseProof is the full evidence for one case: every recorded entry
// with its inclusion proof, plus the signed-root chain covering them.
type CaseProof struct {
	Case      string       `json:"case"`
	Entries   []EntryProof `json:"entries"`
	Roots     []SignedRoot `json:"roots"`
	PublicKey string       `json:"public_key"`
}

// maxPathLen bounds proof paths (2^64 leaves is far beyond any batch).
const maxPathLen = 64

// VerifyRoots checks a run of signed roots: valid signatures, an
// unbroken hash chain, contiguous sequence numbers and leaf ranges.
// The chain hash is recomputed from the stated fields — never trusted
// from the ChainHash column — so any mutated field breaks either the
// recomputation or the signature.
func VerifyRoots(pub ed25519.PublicKey, roots []SignedRoot) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: bad public key length %d", ErrProof, len(pub))
	}
	if len(roots) == 0 {
		return fmt.Errorf("%w: no signed roots", ErrProof)
	}
	var prevChain []byte
	for i, r := range roots {
		if r.Leaves <= 0 || r.FirstLSN == 0 {
			return fmt.Errorf("%w: root seq %d has an empty leaf range", ErrProof, r.Seq)
		}
		if i > 0 {
			if r.Seq != roots[i-1].Seq+1 {
				return fmt.Errorf("%w: root sequence gap after seq %d", ErrProof, roots[i-1].Seq)
			}
			if r.FirstLSN != roots[i-1].FirstLSN+uint64(roots[i-1].Leaves) {
				return fmt.Errorf("%w: leaf range gap at root seq %d", ErrProof, r.Seq)
			}
		}
		rootB, err := decodeHash(r.Root)
		if err != nil {
			return fmt.Errorf("%w: root seq %d: %v", ErrProof, r.Seq, err)
		}
		prevB, err := decodeHash(r.PrevChain)
		if err != nil {
			return fmt.Errorf("%w: root seq %d prev chain: %v", ErrProof, r.Seq, err)
		}
		switch {
		case r.Seq == 1 && !bytes.Equal(prevB, rootChainSeed()):
			return fmt.Errorf("%w: first root not anchored at the chain seed", ErrProof)
		case i > 0 && !bytes.Equal(prevB, prevChain):
			return fmt.Errorf("%w: root chain broken at seq %d", ErrProof, r.Seq)
		}
		ch := rootChainHash(prevB, r.Seq, r.FirstLSN, r.Leaves, rootB)
		if hex.EncodeToString(ch) != r.ChainHash {
			return fmt.Errorf("%w: chain hash mismatch at root seq %d", ErrProof, r.Seq)
		}
		sig, err := hex.DecodeString(r.Sig)
		if err != nil || len(sig) != ed25519.SignatureSize {
			return fmt.Errorf("%w: malformed signature on root seq %d", ErrProof, r.Seq)
		}
		if !ed25519.Verify(pub, ch, sig) {
			return fmt.Errorf("%w: bad signature on root seq %d", ErrProof, r.Seq)
		}
		prevChain = ch
	}
	return nil
}

// VerifyCaseProof checks a CaseProof against a pinned public key (nil
// falls back to the proof's embedded key — self-consistency only; pin
// the key for real verification). On success every entry in the proof
// is proven recorded, in order, under the signed root chain.
func VerifyCaseProof(pub ed25519.PublicKey, p *CaseProof) error {
	if pub == nil {
		b, err := hex.DecodeString(p.PublicKey)
		if err != nil || len(b) != ed25519.PublicKeySize {
			return fmt.Errorf("%w: malformed embedded public key", ErrProof)
		}
		pub = ed25519.PublicKey(b)
	}
	if err := VerifyRoots(pub, p.Roots); err != nil {
		return err
	}
	bySeq := map[uint64]SignedRoot{}
	for _, r := range p.Roots {
		bySeq[r.Seq] = r
	}
	if len(p.Entries) == 0 {
		return fmt.Errorf("%w: proof carries no entries", ErrProof)
	}
	var prevLSN uint64
	var prevChainHex string
	for i, ep := range p.Entries {
		e, err := audit.DecodeEntryJSON(ep.Entry)
		if err != nil {
			return fmt.Errorf("%w: entry %d undecodable: %v", ErrProof, i, err)
		}
		if e.Case != p.Case {
			return fmt.Errorf("%w: entry %d belongs to case %q, not %q", ErrProof, i, e.Case, p.Case)
		}
		if ep.LSN <= prevLSN {
			return fmt.Errorf("%w: entries out of LSN order at %d", ErrProof, i)
		}
		r, ok := bySeq[ep.Batch]
		if !ok {
			return fmt.Errorf("%w: entry %d references missing root seq %d", ErrProof, i, ep.Batch)
		}
		if ep.Index < 0 || ep.Index >= r.Leaves {
			return fmt.Errorf("%w: entry %d index %d outside root seq %d", ErrProof, i, ep.Index, ep.Batch)
		}
		if ep.LSN != r.FirstLSN+uint64(ep.Index) {
			return fmt.Errorf("%w: entry %d LSN %d does not match index %d of root seq %d", ErrProof, i, ep.LSN, ep.Index, ep.Batch)
		}
		prev, err := decodeHash(ep.PrevChain)
		if err != nil {
			return fmt.Errorf("%w: entry %d prev chain: %v", ErrProof, i, err)
		}
		// Consecutive leaves of the same case must chain directly.
		if prevLSN != 0 && ep.LSN == prevLSN+1 && ep.PrevChain != prevChainHex {
			return fmt.Errorf("%w: leaf chain broken between LSN %d and %d", ErrProof, prevLSN, ep.LSN)
		}
		chain := audit.ChainNext(prev, e)
		cur := leafHash(chain)
		if len(ep.Path) > maxPathLen {
			return fmt.Errorf("%w: entry %d path too long", ErrProof, i)
		}
		for _, step := range ep.Path {
			sib, err := decodeHash(step.Hash)
			if err != nil {
				return fmt.Errorf("%w: entry %d path: %v", ErrProof, i, err)
			}
			if step.Left {
				cur = nodeHash(sib, cur[:])
			} else {
				cur = nodeHash(cur[:], sib)
			}
		}
		if hex.EncodeToString(cur[:]) != r.Root {
			return fmt.Errorf("%w: entry at LSN %d does not prove into root seq %d", ErrProof, ep.LSN, ep.Batch)
		}
		prevLSN = ep.LSN
		prevChainHex = hex.EncodeToString(chain)
	}
	return nil
}

func decodeHash(s string) ([]byte, error) {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil, err
	}
	if len(b) != 32 {
		return nil, fmt.Errorf("hash is %d bytes, want 32", len(b))
	}
	return b, nil
}
