// Package ledger implements the tamper-evident audit ledger the paper
// assumes exists (§3.4 cites secure-logging work and moves on): a
// batched Merkle tree over the same canonical entry serializations
// that audit.SecureLog seals. Leaves accumulate into batches closed by
// size or by a wait timer; each batch's Merkle root is chained to its
// predecessor and ed25519-signed, so a verdict can ship with an
// inclusion proof (entry → signed root) and a consistency proof (the
// presented roots form one unbroken chain) that a regulator checks
// offline with nothing but the public key.
//
// Leaf identity is the WAL LSN: the server appends to the ledger under
// the same lock that assigns LSNs, so the leaf sequence is dense and
// the ledger rebuilds deterministically from WAL replay after a crash
// — the rebuilt roots are byte-identical to an uninterrupted run's.
// Nothing wall-clock enters the signed material for the same reason.
//
// The per-leaf hash chain is audit.ChainNext — SecureLog's chain —
// which makes SecureLog a single-entry view of the same construction:
// SealedEntries() returns a slice audit.Verify accepts when the
// optional SealKey is set (the hospital HIS uses this; auditd leaves
// it off to keep per-entry HMACs out of the ingest hot path).
package ledger

import (
	"bytes"
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
)

// DefaultBatch is the batch size when Options.Batch is unset.
const DefaultBatch = 64

// ErrUnknownCase reports a proof request for a case with no leaves.
var ErrUnknownCase = errors.New("ledger: case has no recorded entries")

// Options configures a Ledger.
type Options struct {
	// Key signs batch roots (required).
	Key ed25519.PrivateKey
	// Batch closes a batch at this many leaves (default DefaultBatch;
	// 1 is the direct ledger — every entry its own signed root).
	Batch int
	// Wait, when positive, seals a partial batch this long after its
	// first leaf arrives, bounding how long an acknowledged entry can
	// stay unprovable. Zero means batches close on size or Cut only —
	// the deterministic mode crash-recovery comparisons rely on.
	Wait time.Duration
	// SealKey, when set, additionally computes SecureLog-compatible
	// per-leaf HMAC seals under the evolving key, so SealedEntries()
	// verifies with audit.Verify(SealKey, ...).
	SealKey []byte
	// OnSeal, when set, observes every sealed batch (metrics hook).
	// Called with the ledger lock held; it must not call back in.
	OnSeal func(root SignedRoot, dur time.Duration)
}

// leaf is one appended entry with its chain hash (and optional seal).
type leaf struct {
	entry audit.Entry
	lsn   uint64
	chain []byte
	seal  []byte
}

// sealedBatch is a closed batch: its leaves, its signed root, and the
// chain tips needed to link neighbours.
type sealedBatch struct {
	root      SignedRoot
	chainHash []byte // decoded root.ChainHash
	endChain  []byte // leaf chain after the last leaf
	leaves    []leaf
}

// Ledger is the batched Merkle audit ledger. Safe for concurrent use.
type Ledger struct {
	mu   sync.Mutex
	opts Options
	pub  ed25519.PublicKey

	chain         []byte // live leaf-chain tip (open leaves included)
	hmacKey       []byte // evolving seal key (nil = seals disabled)
	prevRootChain []byte // chain hash of the last sealed root

	batches []*sealedBatch
	open    []leaf
	lastLSN uint64
	byCase  map[string][]uint64 // case → leaf LSNs, ascending

	timer    *time.Timer
	timerGen uint64
	closed   bool

	sealedLeaves uint64
	forcedCuts   uint64
}

// New builds an empty ledger.
func New(opts Options) (*Ledger, error) {
	if len(opts.Key) != ed25519.PrivateKeySize {
		return nil, errors.New("ledger: ed25519 signing key required")
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	l := &Ledger{
		opts:          opts,
		pub:           opts.Key.Public().(ed25519.PublicKey),
		chain:         audit.ChainSeed(),
		prevRootChain: rootChainSeed(),
		byCase:        map[string][]uint64{},
	}
	if opts.SealKey != nil {
		l.hmacKey = append([]byte(nil), opts.SealKey...)
	}
	return l, nil
}

// PublicKey returns the root-signing public key.
func (l *Ledger) PublicKey() ed25519.PublicKey {
	return append(ed25519.PublicKey(nil), l.pub...)
}

// Append records entries as consecutive leaves starting at firstLSN
// (0 = continue from the last leaf). A gap or overlap is an error:
// leaf identity is the WAL LSN and the sequence must stay dense, or
// crash rebuilds would sign different trees than the original run.
func (l *Ledger) Append(entries []audit.Entry, firstLSN uint64) error {
	if len(entries) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("ledger: closed")
	}
	if firstLSN == 0 {
		firstLSN = l.lastLSN + 1
	}
	if firstLSN != l.lastLSN+1 {
		return fmt.Errorf("ledger: leaf sequence gap: append at LSN %d, want %d", firstLSN, l.lastLSN+1)
	}
	for i := range entries {
		l.chain = audit.ChainNext(l.chain, entries[i])
		lf := leaf{entry: entries[i], lsn: firstLSN + uint64(i), chain: l.chain}
		if l.hmacKey != nil {
			lf.seal = audit.SealChain(l.hmacKey, l.chain)
			l.hmacKey = audit.EvolveKey(l.hmacKey)
		}
		wasEmpty := len(l.open) == 0
		l.open = append(l.open, lf)
		l.byCase[lf.entry.Case] = append(l.byCase[lf.entry.Case], lf.lsn)
		l.lastLSN = lf.lsn
		if len(l.open) >= l.opts.Batch {
			l.sealLocked()
		} else if wasEmpty && l.opts.Wait > 0 {
			l.armTimerLocked()
		}
	}
	return nil
}

// armTimerLocked schedules a wait-ms cut for the batch that just
// opened. The generation counter voids the timer if the batch seals
// on size first.
func (l *Ledger) armTimerLocked() {
	gen := l.timerGen
	l.timer = time.AfterFunc(l.opts.Wait, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if l.closed || gen != l.timerGen || len(l.open) == 0 {
			return
		}
		l.sealLocked()
	})
}

// sealLocked closes the open batch: Merkle root, chain link, signature.
func (l *Ledger) sealLocked() {
	start := time.Now()
	leaves := l.open
	l.open = nil
	l.timerGen++
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	hashes := make([][32]byte, len(leaves))
	for i := range leaves {
		hashes[i] = leafHash(leaves[i].chain)
	}
	root := merkleRoot(hashes)
	seq := uint64(len(l.batches)) + 1
	ch := rootChainHash(l.prevRootChain, seq, leaves[0].lsn, len(leaves), root[:])
	sr := SignedRoot{
		Seq:       seq,
		FirstLSN:  leaves[0].lsn,
		Leaves:    len(leaves),
		Root:      hex.EncodeToString(root[:]),
		PrevChain: hex.EncodeToString(l.prevRootChain),
		ChainHash: hex.EncodeToString(ch),
		Sig:       hex.EncodeToString(ed25519.Sign(l.opts.Key, ch)),
	}
	l.batches = append(l.batches, &sealedBatch{
		root:      sr,
		chainHash: ch,
		endChain:  leaves[len(leaves)-1].chain,
		leaves:    leaves,
	})
	l.prevRootChain = ch
	l.sealedLeaves += uint64(len(leaves))
	if l.opts.OnSeal != nil {
		l.opts.OnSeal(sr, time.Since(start))
	}
}

// Cut seals the open batch, if any — shutdown and on-demand proofs.
func (l *Ledger) Cut() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.open) > 0 {
		l.sealLocked()
	}
}

// Close stops the wait timer and refuses further appends.
func (l *Ledger) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.timerGen++
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
}

// Head returns the newest signed root, if any batch has sealed.
func (l *Ledger) Head() (SignedRoot, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.batches) == 0 {
		return SignedRoot{}, false
	}
	return l.batches[len(l.batches)-1].root, true
}

// Roots returns the signed roots with Seq > since, oldest first.
func (l *Ledger) Roots(since uint64) []SignedRoot {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []SignedRoot
	for _, b := range l.batches {
		if b.root.Seq > since {
			out = append(out, b.root)
		}
	}
	return out
}

// LastLSN returns the LSN of the last appended leaf (sealed or open).
func (l *Ledger) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// LastSealedLSN returns the LSN of the last leaf inside a signed root.
func (l *Ledger) LastSealedLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSealedLSNLocked()
}

func (l *Ledger) lastSealedLSNLocked() uint64 {
	if len(l.batches) == 0 {
		return 0
	}
	b := l.batches[len(l.batches)-1]
	return b.root.FirstLSN + uint64(b.root.Leaves) - 1
}

// Stats returns sealed batch/leaf counts, open leaves, and forced cuts.
func (l *Ledger) Stats() (batches int, sealedLeaves uint64, open int, forcedCuts uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.batches), l.sealedLeaves, len(l.open), l.forcedCuts
}

// SealedEntries returns every leaf as a SecureLog-compatible sealed
// entry (seals are empty unless Options.SealKey was set). Open leaves
// are included: the chain covers them even before a root does.
func (l *Ledger) SealedEntries() []audit.SealedEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []audit.SealedEntry
	emit := func(lf leaf) {
		out = append(out, audit.SealedEntry{
			Entry: lf.entry,
			Chain: hex.EncodeToString(lf.chain),
			Seal:  hex.EncodeToString(lf.seal),
		})
	}
	for _, b := range l.batches {
		for _, lf := range b.leaves {
			emit(lf)
		}
	}
	for _, lf := range l.open {
		emit(lf)
	}
	return out
}

// ProveCase builds the inclusion proof for every leaf of the case. If
// the case has leaves in the open batch, the batch is sealed first (a
// forced cut) so the proof covers everything recorded.
func (l *Ledger) ProveCase(caseID string) (*CaseProof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lsns := l.byCase[caseID]
	if len(lsns) == 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCase, caseID)
	}
	if len(l.open) > 0 && lsns[len(lsns)-1] >= l.open[0].lsn {
		l.forcedCuts++
		l.sealLocked()
	}
	p := &CaseProof{Case: caseID, PublicKey: hex.EncodeToString(l.pub)}
	firstSeq := uint64(0)
	for _, lsn := range lsns {
		bi := l.batchForLocked(lsn)
		if bi < 0 {
			return nil, fmt.Errorf("ledger: no sealed batch covers LSN %d", lsn)
		}
		b := l.batches[bi]
		idx := int(lsn - b.root.FirstLSN)
		prev := audit.ChainSeed()
		switch {
		case idx > 0:
			prev = b.leaves[idx-1].chain
		case bi > 0:
			prev = l.batches[bi-1].endChain
		}
		raw, err := encodeEntryJSON(b.leaves[idx].entry)
		if err != nil {
			return nil, err
		}
		hashes := make([][32]byte, len(b.leaves))
		for i := range b.leaves {
			hashes[i] = leafHash(b.leaves[i].chain)
		}
		p.Entries = append(p.Entries, EntryProof{
			Entry:     raw,
			LSN:       lsn,
			Batch:     b.root.Seq,
			Index:     idx,
			PrevChain: hex.EncodeToString(prev),
			Path:      merklePath(hashes, idx),
		})
		if firstSeq == 0 || b.root.Seq < firstSeq {
			firstSeq = b.root.Seq
		}
	}
	// Every root from the earliest referenced batch through the head:
	// their chain doubles as the consistency proof tying old evidence
	// into the current tree.
	for _, b := range l.batches {
		if b.root.Seq >= firstSeq {
			p.Roots = append(p.Roots, b.root)
		}
	}
	return p, nil
}

// batchForLocked finds the sealed batch containing lsn (-1 if open or
// out of range).
func (l *Ledger) batchForLocked(lsn uint64) int {
	i := sort.Search(len(l.batches), func(i int) bool {
		return l.batches[i].root.FirstLSN > lsn
	}) - 1
	if i < 0 {
		return -1
	}
	b := l.batches[i]
	if lsn >= b.root.FirstLSN+uint64(b.root.Leaves) {
		return -1
	}
	return i
}

// encodeEntryJSON renders one entry in the JSONL wire form — the same
// bytes auditd ingests, so a proof bundle round-trips through the
// standard codec.
func encodeEntryJSON(e audit.Entry) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := audit.AppendJSONL(&buf, e); err != nil {
		return nil, err
	}
	return json.RawMessage(bytes.TrimRight(buf.Bytes(), "\n")), nil
}
