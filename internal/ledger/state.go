package ledger

// Checkpoint persistence. The exported state carries only the sealed
// batches — each root plus its entries in wire form; chains, Merkle
// trees and the case index are recomputed on load and checked against
// the stored roots and signatures, so a tampered checkpoint refuses
// to restore instead of silently re-serving edited history. Open
// leaves are deliberately absent: they rebuild from WAL replay (the
// server clamps WAL truncation to the last checkpointed sealed LSN).

import (
	"crypto/ed25519"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/audit"
)

// stateVersion guards the exported shape.
const stateVersion = 1

// BatchState is one sealed batch at rest.
type BatchState struct {
	Root    SignedRoot        `json:"root"`
	Entries []json.RawMessage `json:"entries"`
}

// State is the ledger's checkpointable form.
type State struct {
	Version int          `json:"version"`
	Batches []BatchState `json:"batches,omitempty"`
}

// LastLSN returns the last sealed leaf LSN the state covers.
func (st *State) LastLSN() uint64 {
	if st == nil || len(st.Batches) == 0 {
		return 0
	}
	r := st.Batches[len(st.Batches)-1].Root
	return r.FirstLSN + uint64(r.Leaves) - 1
}

// ExportState snapshots the sealed batches for a checkpoint.
func (l *Ledger) ExportState() (*State, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := &State{Version: stateVersion}
	for _, b := range l.batches {
		bs := BatchState{Root: b.root, Entries: make([]json.RawMessage, len(b.leaves))}
		for i := range b.leaves {
			raw, err := encodeEntryJSON(b.leaves[i].entry)
			if err != nil {
				return nil, fmt.Errorf("ledger: exporting state: %w", err)
			}
			bs.Entries[i] = raw
		}
		st.Batches = append(st.Batches, bs)
	}
	return st, nil
}

// LoadState restores sealed batches into an empty ledger, recomputing
// every chain, root and signature check along the way. Any mismatch —
// an edited entry, a reordered batch, a root signed by a different
// key — fails the load.
func (l *Ledger) LoadState(st *State) error {
	if st == nil || len(st.Batches) == 0 {
		return nil
	}
	if st.Version != stateVersion {
		return fmt.Errorf("ledger: unsupported state version %d", st.Version)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.lastLSN != 0 || len(l.batches) > 0 {
		return errors.New("ledger: state must load into an empty ledger")
	}
	for bi, bs := range st.Batches {
		r := bs.Root
		if r.Seq != uint64(bi)+1 {
			return fmt.Errorf("ledger: state batch %d has seq %d", bi, r.Seq)
		}
		if len(bs.Entries) != r.Leaves {
			return fmt.Errorf("ledger: state batch seq %d has %d entries, root says %d", r.Seq, len(bs.Entries), r.Leaves)
		}
		if r.FirstLSN != l.lastLSN+1 {
			return fmt.Errorf("ledger: state batch seq %d starts at LSN %d, want %d", r.Seq, r.FirstLSN, l.lastLSN+1)
		}
		if r.PrevChain != hex.EncodeToString(l.prevRootChain) {
			return fmt.Errorf("ledger: state batch seq %d breaks the root chain", r.Seq)
		}
		leaves := make([]leaf, len(bs.Entries))
		hashes := make([][32]byte, len(bs.Entries))
		for i, raw := range bs.Entries {
			e, err := audit.DecodeEntryJSON(raw)
			if err != nil {
				return fmt.Errorf("ledger: state batch seq %d entry %d: %w", r.Seq, i, err)
			}
			l.chain = audit.ChainNext(l.chain, e)
			lf := leaf{entry: e, lsn: r.FirstLSN + uint64(i), chain: l.chain}
			if l.hmacKey != nil {
				lf.seal = audit.SealChain(l.hmacKey, l.chain)
				l.hmacKey = audit.EvolveKey(l.hmacKey)
			}
			leaves[i] = lf
			hashes[i] = leafHash(l.chain)
			l.byCase[e.Case] = append(l.byCase[e.Case], lf.lsn)
			l.lastLSN = lf.lsn
		}
		root := merkleRoot(hashes)
		if hex.EncodeToString(root[:]) != r.Root {
			return fmt.Errorf("ledger: state batch seq %d root mismatch (checkpoint tampered?)", r.Seq)
		}
		ch := rootChainHash(l.prevRootChain, r.Seq, r.FirstLSN, r.Leaves, root[:])
		if hex.EncodeToString(ch) != r.ChainHash {
			return fmt.Errorf("ledger: state batch seq %d chain hash mismatch", r.Seq)
		}
		sig, err := hex.DecodeString(r.Sig)
		if err != nil || len(sig) != ed25519.SignatureSize || !ed25519.Verify(l.pub, ch, sig) {
			return fmt.Errorf("ledger: state batch seq %d signature invalid under the configured key", r.Seq)
		}
		l.batches = append(l.batches, &sealedBatch{
			root:      r,
			chainHash: ch,
			endChain:  l.chain,
			leaves:    leaves,
		})
		l.prevRootChain = ch
		l.sealedLeaves += uint64(len(leaves))
	}
	return nil
}
