package ledger

// Merkle tree over leaf chain hashes, RFC 6962 style: domain-separated
// leaf and interior hashes (so an interior node can never be passed
// off as a leaf), odd nodes promoted unpaired. A batch of one — the
// direct ledger — degenerates to root == leafHash with an empty path.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Hash domain prefixes.
const (
	domainLeaf     = 0x00 // leafHash = H(0x00 || leaf chain hash)
	domainInterior = 0x01 // nodeHash = H(0x01 || left || right)
	domainRoot     = 0x02 // rootChainHash = H(0x02 || prev || seq || firstLSN || leaves || root)
)

// leafHash wraps a leaf's audit chain hash into the tree's leaf domain.
func leafHash(chain []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{domainLeaf})
	h.Write(chain)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// nodeHash combines two child hashes into their parent.
func nodeHash(left, right []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{domainInterior})
	h.Write(left)
	h.Write(right)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// rootChainSeed anchors the signed-root chain, like audit.ChainSeed
// anchors the leaf chain.
func rootChainSeed() []byte {
	h := sha256.Sum256([]byte("purpose-control-ledger-root-v1"))
	return h[:]
}

// rootChainHash binds a batch root to its predecessor and position:
// the bytes each signature actually covers. Everything in it is
// deterministic, so a crash rebuild re-signs byte-identical material.
func rootChainHash(prev []byte, seq, firstLSN uint64, leaves int, root []byte) []byte {
	h := sha256.New()
	h.Write([]byte{domainRoot})
	h.Write(prev)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], seq)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], firstLSN)
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(leaves))
	h.Write(b[:])
	h.Write(root)
	return h.Sum(nil)
}

// merkleRoot folds leaf hashes into the batch root.
func merkleRoot(leaves [][32]byte) [32]byte {
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		next := level[: 0 : (len(level)+1)/2]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i][:], level[i+1][:]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// merklePath returns the sibling path from leaf idx to the root. Left
// marks siblings that sit left of the running hash when folding.
func merklePath(leaves [][32]byte, idx int) []ProofStep {
	path := []ProofStep{}
	level := append([][32]byte(nil), leaves...)
	for len(level) > 1 {
		if sib := idx ^ 1; sib < len(level) {
			path = append(path, ProofStep{
				Hash: hex.EncodeToString(level[sib][:]),
				Left: sib < idx,
			})
		}
		next := level[: 0 : (len(level)+1)/2]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i][:], level[i+1][:]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		idx /= 2
	}
	return path
}
