package ledger

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
)

func testKey(t *testing.T) ed25519.PrivateKey {
	t.Helper()
	seed := make([]byte, ed25519.SeedSize)
	copy(seed, "ledger-test-seed")
	return ed25519.NewKeyFromSeed(seed)
}

// mkEntries builds n deterministic entries round-robined over cases.
func mkEntries(n int, cases ...string) []audit.Entry {
	base := time.Date(2010, 3, 12, 12, 0, 0, 0, time.UTC)
	out := make([]audit.Entry, n)
	for i := range out {
		out[i] = audit.Entry{
			User:   fmt.Sprintf("user%d", i%3),
			Role:   "GP",
			Action: "read",
			Object: policy.Object{Subject: "Jane", Path: []string{"EPR", "Clinical"}},
			Task:   fmt.Sprintf("T%02d", i),
			Case:   cases[i%len(cases)],
			Time:   base.Add(time.Duration(i) * time.Minute),
			Status: audit.Success,
		}
	}
	return out
}

// TestLedgerConformsToSecureLog is the satellite cross-check: the
// ledger's per-leaf chain and seals must be byte-identical to
// audit.SecureLog over the same entries, and audit.Verify must accept
// the ledger's sealed view — one sealing implementation, two shapes.
func TestLedgerConformsToSecureLog(t *testing.T) {
	key := []byte("his-key")
	entries := mkEntries(13, "HT-1", "HT-2")
	l, err := New(Options{Key: testKey(t), Batch: 4, SealKey: key})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(entries, 0); err != nil {
		t.Fatal(err)
	}
	sl := audit.NewSecureLog(key)
	for _, e := range entries {
		sl.Append(e)
	}
	want := sl.Entries()
	got := l.SealedEntries()
	if len(got) != len(want) {
		t.Fatalf("ledger sealed %d entries, SecureLog %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Chain != want[i].Chain || got[i].Seal != want[i].Seal {
			t.Fatalf("entry %d diverges from SecureLog: chain %s vs %s, seal %s vs %s",
				i, got[i].Chain, want[i].Chain, got[i].Seal, want[i].Seal)
		}
	}
	if err := audit.Verify(key, got, len(entries)); err != nil {
		t.Fatalf("audit.Verify rejected the ledger's sealed entries: %v", err)
	}
}

func TestProofRoundTrip(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	entries := mkEntries(11, "HT-1", "HT-2", "HT-3")
	if err := l.Append(entries, 0); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"HT-1", "HT-2", "HT-3"} {
		p, err := l.ProveCase(id)
		if err != nil {
			t.Fatalf("ProveCase(%s): %v", id, err)
		}
		if err := VerifyCaseProof(l.PublicKey(), p); err != nil {
			t.Fatalf("VerifyCaseProof(%s): %v", id, err)
		}
		if err := VerifyCaseProof(nil, p); err != nil {
			t.Fatalf("embedded-key verify (%s): %v", id, err)
		}
	}
	// The forced cut sealed everything: 11 leaves over batch 4 → 3 batches.
	if batches, leaves, open, _ := func() (int, uint64, int, uint64) { return l.Stats() }(); batches != 3 || leaves != 11 || open != 0 {
		t.Fatalf("after proving: batches=%d leaves=%d open=%d", batches, leaves, open)
	}
}

// TestProofTamper mutates each layer of a verified proof — the entry,
// the root chain, the signature, the path — and requires loud failure.
func TestProofTamper(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(10, "HT-1", "HT-2"), 0); err != nil {
		t.Fatal(err)
	}
	pub := l.PublicKey()
	fresh := func() *CaseProof {
		p, err := l.ProveCase("HT-1")
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyCaseProof(pub, p); err != nil {
			t.Fatalf("pristine proof must verify: %v", err)
		}
		return p
	}
	mutations := map[string]func(p *CaseProof){
		"entry byte": func(p *CaseProof) {
			p.Entries[0].Entry = json.RawMessage(strings.Replace(string(p.Entries[0].Entry), `"read"`, `"rend"`, 1))
		},
		"root leaves count": func(p *CaseProof) { p.Roots[0].Leaves++ },
		"root hash": func(p *CaseProof) {
			p.Roots[0].Root = strings.Repeat("00", 32)
		},
		"root chain": func(p *CaseProof) { p.Roots[1].PrevChain = strings.Repeat("11", 32) },
		"signature": func(p *CaseProof) {
			s := p.Roots[0].Sig
			p.Roots[0].Sig = s[64:] + s[:64]
		},
		"path sibling": func(p *CaseProof) { p.Entries[0].Path[0].Hash = strings.Repeat("22", 32) },
		"prev chain":   func(p *CaseProof) { p.Entries[1].PrevChain = strings.Repeat("33", 32) },
		"case swap":    func(p *CaseProof) { p.Case = "HT-2" },
		"missing root": func(p *CaseProof) { p.Roots = p.Roots[:1] },
	}
	for name, mutate := range mutations {
		p := fresh()
		mutate(p)
		if err := VerifyCaseProof(pub, p); err == nil {
			t.Errorf("mutation %q: proof still verifies", name)
		} else if !errors.Is(err, ErrProof) {
			t.Errorf("mutation %q: error not ErrProof: %v", name, err)
		}
	}
	// Wrong key: a proof must not verify under someone else's key.
	other := ed25519.NewKeyFromSeed(make([]byte, 32))
	p := fresh()
	if err := VerifyCaseProof(other.Public().(ed25519.PublicKey), p); err == nil {
		t.Error("proof verified under the wrong public key")
	}
}

func TestRootsConsistency(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(6, "HT-1"), 0); err != nil {
		t.Fatal(err)
	}
	early := l.Roots(0)
	if len(early) != 3 {
		t.Fatalf("want 3 roots, got %d", len(early))
	}
	if err := l.Append(mkEntries(4, "HT-2"), 7); err != nil {
		t.Fatal(err)
	}
	late := l.Roots(0)
	if len(late) != 5 {
		t.Fatalf("want 5 roots, got %d", len(late))
	}
	// Earlier roots must be a verbatim prefix of the later chain —
	// the append-only consistency property.
	for i, r := range early {
		if late[i] != r {
			t.Fatalf("root %d rewritten after later appends", i)
		}
	}
	if err := VerifyRoots(l.PublicKey(), late); err != nil {
		t.Fatalf("root chain does not verify: %v", err)
	}
	if err := VerifyRoots(l.PublicKey(), late[2:]); err != nil {
		t.Fatalf("root chain suffix must verify standalone: %v", err)
	}
	if got := l.Roots(3); len(got) != 2 {
		t.Fatalf("Roots(3): want 2, got %d", len(got))
	}
}

func TestStateExportLoad(t *testing.T) {
	key := testKey(t)
	l, err := New(Options{Key: key, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	entries := mkEntries(11, "HT-1", "HT-2")
	if err := l.Append(entries, 0); err != nil {
		t.Fatal(err)
	}
	st, err := l.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := st.LastLSN(), uint64(9); got != want {
		t.Fatalf("state LastLSN = %d, want %d (9 sealed, 2 open)", got, want)
	}

	r, err := New(Options{Key: key, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadState(st); err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	// The open tail replays on top (the server's WAL replay path).
	if err := r.Append(entries[9:], 10); err != nil {
		t.Fatalf("replaying open tail: %v", err)
	}
	hWant, _ := l.Head()
	hGot, _ := r.Head()
	if hWant != hGot {
		t.Fatalf("restored head diverges: %+v vs %+v", hGot, hWant)
	}
	p, err := r.ProveCase("HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCaseProof(r.PublicKey(), p); err != nil {
		t.Fatalf("proof from restored ledger: %v", err)
	}
	// Sealing after restore must continue the chain identically to the
	// uninterrupted ledger.
	l.Cut()
	r2, _ := l.Head()
	r3, _ := r.Head()
	if r2 != r3 {
		t.Fatalf("post-restore seal diverges: %+v vs %+v", r3, r2)
	}
}

func TestStateTamperRefusesLoad(t *testing.T) {
	key := testKey(t)
	l, err := New(Options{Key: key, Batch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(9, "HT-1"), 0); err != nil {
		t.Fatal(err)
	}
	export := func() *State {
		st, err := l.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st := export()
	st.Batches[1].Entries[0] = json.RawMessage(strings.Replace(string(st.Batches[1].Entries[0]), `"read"`, `"rend"`, 1))
	r, _ := New(Options{Key: key, Batch: 3})
	if err := r.LoadState(st); err == nil {
		t.Fatal("tampered entry loaded without error")
	}

	st = export()
	st.Batches[0], st.Batches[1] = st.Batches[1], st.Batches[0]
	r, _ = New(Options{Key: key, Batch: 3})
	if err := r.LoadState(st); err == nil {
		t.Fatal("reordered batches loaded without error")
	}

	// A different signing key must refuse the old state.
	st = export()
	other, _ := New(Options{Key: ed25519.NewKeyFromSeed(make([]byte, 32)), Batch: 3})
	if err := other.LoadState(st); err == nil {
		t.Fatal("state signed by another key loaded without error")
	}
}

func TestAppendGapRejected(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(2, "HT-1"), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(1, "HT-1"), 5); err == nil {
		t.Fatal("LSN gap accepted")
	}
	if err := l.Append(mkEntries(1, "HT-1"), 2); err == nil {
		t.Fatal("LSN overlap accepted")
	}
}

func TestWaitTimerSeals(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 1000, Wait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(mkEntries(3, "HT-1"), 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h, ok := l.Head(); ok {
			if h.Leaves != 3 {
				t.Fatalf("wait cut sealed %d leaves, want 3", h.Leaves)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("wait timer never sealed the open batch")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDirectLedgerBatchOne(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(mkEntries(5, "HT-1"), 0); err != nil {
		t.Fatal(err)
	}
	roots := l.Roots(0)
	if len(roots) != 5 {
		t.Fatalf("direct ledger: want 5 roots, got %d", len(roots))
	}
	p, err := l.ProveCase("HT-1")
	if err != nil {
		t.Fatal(err)
	}
	for i, ep := range p.Entries {
		if len(ep.Path) != 0 {
			t.Fatalf("entry %d of a single-leaf batch has a path", i)
		}
	}
	if err := VerifyCaseProof(l.PublicKey(), p); err != nil {
		t.Fatal(err)
	}
}

// TestLSNAccessors: LastLSN tracks every appended leaf, LastSealedLSN
// only those under a signed root — the pair the server uses to clamp
// WAL truncation and resume crash rebuilds.
func TestLSNAccessors(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("ledger without a signing key accepted")
	}
	l, err := New(Options{Key: testKey(t), Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 0 {
		t.Fatalf("empty ledger LastLSN = %d", got)
	}
	if got := l.LastSealedLSN(); got != 0 {
		t.Fatalf("empty ledger LastSealedLSN = %d", got)
	}
	if err := l.Append(mkEntries(6, "HT-1"), 1); err != nil {
		t.Fatal(err)
	}
	if got := l.LastLSN(); got != 6 {
		t.Fatalf("LastLSN = %d, want 6", got)
	}
	// One full batch of 4 sealed; leaves 5-6 still open.
	if got := l.LastSealedLSN(); got != 4 {
		t.Fatalf("LastSealedLSN = %d, want 4", got)
	}
	l.Cut()
	if got := l.LastSealedLSN(); got != 6 {
		t.Fatalf("after Cut: LastSealedLSN = %d, want 6", got)
	}
}

func TestUnknownCase(t *testing.T) {
	l, err := New(Options{Key: testKey(t), Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.ProveCase("nope"); !errors.Is(err, ErrUnknownCase) {
		t.Fatalf("want ErrUnknownCase, got %v", err)
	}
}
