package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// Fuzz targets for the ingestion surface: the decoders must never
// panic, and on input the strict decoder accepts, the lenient decoder
// must agree byte for byte and quarantine nothing (leniency is free on
// clean data).

func fuzzSeedTrail() *Trail {
	return NewTrail([]Entry{
		lenEntry(0, "T1", "C-1"),
		lenEntry(1, "T2", "C-1"),
		{User: "u2", Role: "R2", Action: "cancel", Task: "T3", Case: "C-2",
			Time:   time.Date(2026, 4, 1, 10, 0, 0, 0, time.UTC),
			Status: Failure},
	})
}

func assertStrictLenientAgreement(t *testing.T, strict *Trail, strictErr error, lenient *Trail, q *Quarantine, lenientErr error) {
	t.Helper()
	if strictErr != nil {
		return // corrupt input: lenient may succeed, fail, or quarantine
	}
	if lenientErr != nil {
		t.Fatalf("strict accepted but lenient failed: %v", lenientErr)
	}
	if q.Len() != 0 {
		t.Fatalf("strict accepted but lenient quarantined %d: %v", q.Len(), q.Records)
	}
	if strict.Len() != lenient.Len() {
		t.Fatalf("strict decoded %d entries, lenient %d", strict.Len(), lenient.Len())
	}
	for i := 0; i < strict.Len(); i++ {
		if !entryEqual(strict.At(i), lenient.At(i)) {
			t.Fatalf("entry %d differs: %v vs %v", i, strict.At(i), lenient.At(i))
		}
	}
}

func FuzzReadCSV(f *testing.F) {
	var b bytes.Buffer
	if err := WriteCSV(&b, fuzzSeedTrail()); err != nil {
		f.Fatal(err)
	}
	f.Add(b.Bytes())
	f.Add([]byte("user,role,action,object,task,case,time,status\n"))
	f.Add([]byte("user,role,action,object,task,case,time,status\na,b,c,N/A,q,c-1,202603121210,success\n"))
	f.Add([]byte("user,role,action,object,task,case,time,status\ntoo,short\n"))
	f.Add([]byte("user,role,action,object,task,case,time,status\na,b,c,\"unterminated,q,c,202603121210,success\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict, strictErr := ReadCSV(bytes.NewReader(data))
		lenient, q, lenientErr := DecodeCSV(bytes.NewReader(data), DecodeOptions{Lenient: true, MaxErrors: 256})
		assertStrictLenientAgreement(t, strict, strictErr, lenient, q, lenientErr)
	})
}

func FuzzReadJSONL(f *testing.F) {
	var b bytes.Buffer
	if err := WriteJSONL(&b, fuzzSeedTrail()); err != nil {
		f.Fatal(err)
	}
	f.Add(b.Bytes())
	f.Add([]byte("{\"status\":\"success\"}\n"))
	f.Add([]byte("{\"broken\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte("{\"object\":\"[bad\",\"status\":\"success\"}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict, strictErr := ReadJSONL(bytes.NewReader(data))
		lenient, q, lenientErr := DecodeJSONL(bytes.NewReader(data), DecodeOptions{Lenient: true, MaxErrors: 256})
		assertStrictLenientAgreement(t, strict, strictErr, lenient, q, lenientErr)
	})
}

func FuzzParsePaperTime(f *testing.F) {
	f.Add("202603121210")
	f.Add("000001010000")
	f.Add("not a time")
	f.Add("")
	f.Add("20260312121")
	f.Fuzz(func(t *testing.T, s string) {
		tm, err := ParsePaperTime(s)
		if err != nil {
			return
		}
		// Round trip: a successfully parsed paper time re-renders to a
		// string that parses to the same instant.
		again, err := ParsePaperTime(tm.Format(PaperTimeLayout))
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", tm.Format(PaperTimeLayout), s, err)
		}
		if !again.Equal(tm) {
			t.Fatalf("round trip moved %q: %v vs %v", s, tm, again)
		}
		if strings.ContainsAny(s, "\n\r") {
			t.Fatalf("timestamp with newline parsed: %q", s)
		}
	})
}
