package audit

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/policy"
)

// EntryScanner is the raw-speed NDJSON ingestion path: it streams one
// Entry per line without allocating on clean input. The hot loop never
// touches encoding/json — field lookup is a byte-level parse of the
// known wire shape (see jsonEntry), strings are interned so repeated
// users/roles/tasks share storage, and timestamp parsing is amortized
// by memoizing the last raw token (audit trails are near-sorted, so
// consecutive entries usually repeat or nearly repeat timestamps).
//
// Any structural surprise — escape sequences, non-ASCII bytes, unknown
// value shapes, duplicate-but-odd forms — makes the line fall back to
// entryFromJSON, the exact decoder the slow path uses. A line the fast
// parser accepts decodes to the same Entry the slow path would produce,
// and a line it cannot handle is judged (accepted, rejected, or
// quarantined) by the slow decoder itself, so strict errors and
// lenient quarantine records are byte-identical to DecodeJSONLEntries'
// historical behavior.
type EntryScanner struct {
	r   io.Reader
	buf []byte
	// buf[start:end] is the unconsumed window.
	start, end int
	// readErr is the sticky error from r.Read (io.EOF included);
	// buffered data is still drained after it is set.
	readErr error

	opts DecodeOptions
	quar Quarantine

	entry Entry
	line  int
	err   error

	// interners; bounded so a pathological stream cannot grow them
	// without limit (unseen strings past the cap are simply allocated).
	strs map[string]string
	objs map[string]policy.Object
	// timeRaw/timeVal memoize the last timestamp token (quotes
	// included), keyed on raw bytes so no parse runs for repeats.
	timeRaw []byte
	timeVal time.Time

	// fallbacks counts lines routed through entryFromJSON.
	fallbacks int
}

// maxInterned bounds each intern table of one scanner.
const maxInterned = 4096

// NewEntryScanner returns a scanner reading NDJSON entries from r.
func NewEntryScanner(r io.Reader, opts DecodeOptions) *EntryScanner {
	s := &EntryScanner{
		strs: make(map[string]string),
		objs: make(map[string]policy.Object),
	}
	s.Reset(r)
	s.opts = opts
	return s
}

// Reset rewires the scanner to a new reader, keeping its buffers and
// intern tables warm. Decode options are kept; position, error state
// and the quarantine are cleared.
func (s *EntryScanner) Reset(r io.Reader) {
	s.r = r
	if s.buf == nil {
		s.buf = make([]byte, 64<<10)
	}
	s.start, s.end = 0, 0
	s.readErr = nil
	s.line = 0
	s.err = nil
	s.fallbacks = 0
	s.quar.Records = s.quar.Records[:0]
}

// Entry returns the current entry. It is overwritten by the next Scan,
// so callers that keep it must copy the struct (the strings are
// immutable and safe to share).
func (s *EntryScanner) Entry() *Entry { return &s.entry }

// Line returns the 1-based input line of the current entry.
func (s *EntryScanner) Line() int { return s.line }

// Err returns the terminal error: a read failure, a strict-mode decode
// error, or a lenient-mode MaxErrors overflow. nil after a clean EOF.
func (s *EntryScanner) Err() error { return s.err }

// Quarantine returns the records set aside so far (lenient mode).
func (s *EntryScanner) Quarantine() *Quarantine { return &s.quar }

// Buffered reports whether the scanner holds unconsumed bytes in
// memory — i.e. the next Scan will not block on a read. Batch
// consumers use it to flush pending work before a potentially
// blocking read, so live trickle streams keep per-entry latency.
func (s *EntryScanner) Buffered() bool { return s.end > s.start }

// Fallbacks reports how many lines were routed through the compatible
// slow decoder (diagnostics and tests).
func (s *EntryScanner) Fallbacks() int { return s.fallbacks }

// Scan advances to the next entry. It returns false at end of input or
// on a terminal error (see Err).
func (s *EntryScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	for {
		raw, ok := s.nextLine()
		if !ok {
			if s.err == nil && s.readErr != nil && s.readErr != io.EOF {
				s.err = fmt.Errorf("audit: reading JSONL line %d: %w", s.line+1, s.readErr)
			}
			return false
		}
		s.line++
		trimmed := bytes.TrimSpace(raw)
		if len(trimmed) == 0 {
			continue
		}
		if s.parseFast(trimmed) {
			return true
		}
		// Escape hatch: defer the verdict on this line to the exact
		// decoder the slow path uses, so accepted entries, strict
		// errors and quarantine records never diverge from it.
		s.fallbacks++
		e, err := entryFromJSON(raw)
		if err == nil {
			s.entry = e
			return true
		}
		if !s.opts.Lenient {
			s.err = fmt.Errorf("audit: JSONL line %d: %w", s.line, err)
			return false
		}
		if qerr := s.quar.add(s.line, string(raw), err, s.opts.MaxErrors); qerr != nil {
			s.err = qerr
			return false
		}
	}
}

// nextLine returns the next input line (newline stripped, one trailing
// \r dropped — bufio.ScanLines semantics) as a view into the buffer,
// valid until the next call.
func (s *EntryScanner) nextLine() ([]byte, bool) {
	for {
		if i := bytes.IndexByte(s.buf[s.start:s.end], '\n'); i >= 0 {
			line := s.buf[s.start : s.start+i]
			s.start += i + 1
			return dropCR(line), true
		}
		if s.readErr != nil {
			if s.end > s.start {
				line := s.buf[s.start:s.end]
				s.start = s.end
				return dropCR(line), true
			}
			return nil, false
		}
		if s.start > 0 {
			copy(s.buf, s.buf[s.start:s.end])
			s.end -= s.start
			s.start = 0
		}
		if s.end == len(s.buf) {
			if len(s.buf) >= maxJSONLLine {
				s.err = fmt.Errorf("audit: reading JSONL line %d: %w", s.line+1, bufio.ErrTooLong)
				return nil, false
			}
			size := 2 * len(s.buf)
			if size > maxJSONLLine {
				size = maxJSONLLine
			}
			grown := make([]byte, size)
			copy(grown, s.buf[:s.end])
			s.buf = grown
		}
		n, err := s.r.Read(s.buf[s.end:])
		s.end += n
		if err != nil {
			s.readErr = err
		}
	}
}

func dropCR(line []byte) []byte {
	if len(line) > 0 && line[len(line)-1] == '\r' {
		return line[:len(line)-1]
	}
	return line
}

// parseFast decodes one trimmed line of the exact wire shape, without
// allocating. false means "not claimed": the caller falls back to the
// slow decoder, whose verdict (entry or error) then stands. The fast
// parser only claims a line when its result is provably identical to
// entryFromJSON's: all values are plain ASCII strings without escapes,
// keys are the known fields (unknown string-valued keys are skipped,
// as encoding/json would), the timestamp parses via the same
// time.Time.UnmarshalJSON, and the status is the canonical lowercase
// form.
func (s *EntryScanner) parseFast(b []byte) bool {
	p := lineParser{b: b}
	if !p.eat('{') {
		return false
	}
	var e Entry
	seenStatus := false
	p.ws()
	if !p.eat('}') {
		for {
			p.ws()
			key, _, ok := p.str()
			if !ok {
				return false
			}
			p.ws()
			if !p.eat(':') {
				return false
			}
			p.ws()
			val, token, ok := p.str()
			if !ok {
				// Known fields are always strings on the wire; a
				// non-string value for an unknown key would need a full
				// JSON skip. Either way, the slow path decides.
				return false
			}
			switch string(key) {
			case "user":
				e.User = s.intern(val)
			case "role":
				e.Role = s.intern(val)
			case "action":
				e.Action = s.intern(val)
			case "task":
				e.Task = s.intern(val)
			case "case":
				e.Case = s.intern(val)
			case "object":
				if len(val) > 0 {
					obj, ok := s.objectFor(val)
					if !ok {
						return false
					}
					e.Object = obj
				} else {
					e.Object = policy.Object{}
				}
			case "time":
				if !bytes.Equal(token, s.timeRaw) {
					var t time.Time
					// The same UnmarshalJSON encoding/json would call,
					// so accepted forms and parse failures line up
					// exactly; failures fall back for the exact error.
					if err := t.UnmarshalJSON(token); err != nil {
						return false
					}
					s.timeRaw = append(s.timeRaw[:0], token...)
					s.timeVal = t
				}
				e.Time = s.timeVal
			case "status":
				switch {
				case bytes.Equal(val, statusSuccess):
					e.Status = Success
				case bytes.Equal(val, statusFailure):
					e.Status = Failure
				default:
					// Mixed-case forms ("Success") are legal via
					// ParseStatus; let the slow path produce them.
					return false
				}
				seenStatus = true
			default:
				// Unknown string-valued key: ignored, as encoding/json
				// ignores unmapped fields.
			}
			p.ws()
			if p.eat(',') {
				continue
			}
			if p.eat('}') {
				break
			}
			return false
		}
	}
	p.ws()
	if p.i != len(p.b) {
		return false // trailing garbage: stdlib errors, slow path decides
	}
	if !seenStatus {
		return false // ParseStatus("") must produce the canonical error
	}
	s.entry = e
	return true
}

var (
	statusSuccess = []byte("success")
	statusFailure = []byte("failure")
)

// intern returns a shared string for b. Lookups on known strings do
// not allocate (map access with a string([]byte) key compiles to an
// allocation-free probe).
func (s *EntryScanner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if v, ok := s.strs[string(b)]; ok {
		return v
	}
	v := string(b)
	if len(s.strs) < maxInterned {
		s.strs[v] = v
	}
	return v
}

// objectFor resolves an object literal through the intern table,
// parsing (and caching) unseen ones. ok=false means the literal does
// not parse — the slow path reproduces the exact error.
func (s *EntryScanner) objectFor(b []byte) (policy.Object, bool) {
	if o, ok := s.objs[string(b)]; ok {
		return o, true
	}
	o, err := policy.ParseObject(string(b))
	if err != nil {
		return policy.Object{}, false
	}
	if len(s.objs) < maxInterned {
		s.objs[string(b)] = o
	}
	return o, true
}

// lineParser is a zero-copy cursor over one line.
type lineParser struct {
	b []byte
	i int
}

func (p *lineParser) ws() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *lineParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

// str scans a JSON string containing only printable ASCII without
// escapes — the wire alphabet of every field auditgen and AppendJSONL
// emit. val is the content, token includes the quotes (for
// time.Time.UnmarshalJSON). Anything else (escapes, control bytes,
// non-ASCII — where stdlib's UTF-8 sanitization could diverge) is not
// claimed.
func (p *lineParser) str() (val, token []byte, ok bool) {
	if p.i >= len(p.b) || p.b[p.i] != '"' {
		return nil, nil, false
	}
	start := p.i
	p.i++
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			p.i++
			return p.b[start+1 : p.i-1], p.b[start:p.i], true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, nil, false
		}
		p.i++
	}
	return nil, nil, false
}
