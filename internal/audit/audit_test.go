package audit

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

func mkEntry(user, role, action, object, task, caseID, ts string, st Status) Entry {
	var o policy.Object
	if object != "" && object != NAObject {
		o = policy.MustParseObject(object)
	}
	t, err := ParsePaperTime(ts)
	if err != nil {
		panic(err)
	}
	return Entry{User: user, Role: role, Action: action, Object: o, Task: task, Case: caseID, Time: t, Status: st}
}

func sampleEntries() []Entry {
	return []Entry{
		mkEntry("John", "GP", "read", "[Jane]EPR/Clinical", "T01", "HT-1", "201003121210", Success),
		mkEntry("John", "GP", "write", "[Jane]EPR/Clinical", "T02", "HT-1", "201003121212", Success),
		mkEntry("John", "GP", "cancel", NAObject, "T02", "HT-1", "201003121216", Failure),
		mkEntry("John", "GP", "read", "[David]EPR/Demographics", "T01", "HT-2", "201003121230", Success),
		mkEntry("Bob", "Cardiologist", "read", "[Jane]EPR/Clinical", "T06", "HT-1", "201003141010", Success),
		mkEntry("Bob", "Cardiologist", "write", "ClinicalTrial/Criteria", "T91", "CT-1", "201004151450", Success),
	}
}

func TestTrailOrderingAndSlicing(t *testing.T) {
	es := sampleEntries()
	// Shuffle deterministically, NewTrail must restore order.
	shuffled := []Entry{es[5], es[2], es[0], es[4], es[1], es[3]}
	tr := NewTrail(shuffled)
	if tr.Len() != len(es) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 1; i < tr.Len(); i++ {
		if tr.At(i).Time.Before(tr.At(i - 1).Time) {
			t.Fatalf("trail not sorted at %d", i)
		}
	}
	ht1 := tr.ByCase("HT-1")
	if ht1.Len() != 4 {
		t.Fatalf("HT-1 slice has %d entries, want 4", ht1.Len())
	}
	if got := tr.Cases(); len(got) != 3 {
		t.Fatalf("Cases = %v", got)
	}
	if got := tr.ByUser("Bob").Len(); got != 2 {
		t.Fatalf("Bob entries = %d", got)
	}

	// TouchingObject: Jane's whole EPR was touched in HT-1 only.
	cases := tr.TouchingObject(policy.MustParseObject("[Jane]EPR"))
	if len(cases) != 1 || cases[0] != "HT-1" {
		t.Fatalf("TouchingObject = %v", cases)
	}

	// Window slicing.
	from, _ := ParsePaperTime("201003121212")
	to, _ := ParsePaperTime("201003141010")
	if got := tr.Window(from, to).Len(); got != 3 {
		t.Fatalf("Window = %d entries, want 3", got)
	}
}

func TestTrailAppendOrder(t *testing.T) {
	tr := NewTrail(nil)
	if err := tr.Append(mkEntry("u", "r", "read", "[S]O", "T", "C", "201001010000", Success)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(mkEntry("u", "r", "read", "[S]O", "T", "C", "200912310000", Success)); err == nil {
		t.Fatalf("out-of-order append accepted")
	}
}

func TestStoreIndexes(t *testing.T) {
	s := NewStore()
	if err := s.AppendAll(sampleEntries()); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Case("HT-1").Len(); got != 4 {
		t.Fatalf("Case(HT-1) = %d entries", got)
	}
	if got := s.Cases(); len(got) != 3 || got[0] != "CT-1" {
		t.Fatalf("Cases = %v", got)
	}
	if got := s.User("John").Len(); got != 4 {
		t.Fatalf("User(John) = %d entries", got)
	}
	cases := s.CasesTouching(policy.MustParseObject("[Jane]EPR"))
	if len(cases) != 1 || cases[0] != "HT-1" {
		t.Fatalf("CasesTouching = %v", cases)
	}
	// Subject-less resources are found by full scan.
	cases = s.CasesTouching(policy.MustParseObject("ClinicalTrial"))
	if len(cases) != 1 || cases[0] != "CT-1" {
		t.Fatalf("CasesTouching(ClinicalTrial) = %v", cases)
	}
	if err := s.Append(mkEntry("u", "r", "read", "[S]O", "T", "C", "200001010000", Success)); err == nil {
		t.Fatalf("out-of-order store append accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := NewTrail(sampleEntries())
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		if got.At(i).String() != tr.At(i).String() {
			t.Errorf("entry %d: %s != %s", i, got.At(i), tr.At(i))
		}
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",      // no header
		"a,b\n", // short header
		"user,role,action,object,task,case,time,status\nJohn,GP,read,[Jane]EPR,T01,HT-1,notatime,success\n",
		"user,role,action,object,task,case,time,status\nJohn,GP,read,[Jane]EPR,T01,HT-1,201001010101,maybe\n",
		"user,role,action,object,task,case,time,status\nJohn,GP,read,[]bad,T01,HT-1,201001010101,success\n",
	}
	for _, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", src)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTrail(sampleEntries())
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("round trip length %d != %d", got.Len(), tr.Len())
	}
	for i := 0; i < tr.Len(); i++ {
		a, b := got.At(i), tr.At(i)
		if a.User != b.User || a.Object.String() != b.Object.String() || a.Status != b.Status || !a.Time.Equal(b.Time) {
			t.Errorf("entry %d: %+v != %+v", i, a, b)
		}
	}
}

func TestSecureLogVerifies(t *testing.T) {
	key := []byte("initial-secret")
	l := NewSecureLog(key)
	for _, e := range sampleEntries() {
		l.Append(e)
	}
	if err := Verify(key, l.Entries(), l.Len()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if l.Trail().Len() != 6 {
		t.Fatalf("Trail length %d", l.Trail().Len())
	}
}

func TestSecureLogDetectsTampering(t *testing.T) {
	key := []byte("initial-secret")
	fresh := func() []SealedEntry {
		l := NewSecureLog(key)
		for _, e := range sampleEntries() {
			l.Append(e)
		}
		return l.Entries()
	}

	// In-place modification.
	es := fresh()
	es[2].Entry.User = "Mallory"
	if err := Verify(key, es, len(es)); !errors.Is(err, ErrIntegrity) {
		t.Errorf("modification: err = %v", err)
	}

	// Deletion in the middle.
	es = fresh()
	es = append(es[:3], es[4:]...)
	if err := Verify(key, es, -1); !errors.Is(err, ErrIntegrity) {
		t.Errorf("deletion: err = %v", err)
	}

	// Truncation (detected via expected length).
	es = fresh()
	if err := Verify(key, es[:4], len(fresh())); !errors.Is(err, ErrIntegrity) {
		t.Errorf("truncation: err = %v", err)
	}

	// Reordering.
	es = fresh()
	es[1], es[2] = es[2], es[1]
	if err := Verify(key, es, -1); !errors.Is(err, ErrIntegrity) {
		t.Errorf("reordering: err = %v", err)
	}

	// Forged append with wrong key.
	es = fresh()
	forged := NewSecureLog([]byte("wrong-key"))
	for _, se := range es {
		forged.Append(se.Entry)
	}
	extra := forged.Append(mkEntry("Mallory", "GP", "read", "[Jane]EPR", "T01", "HT-1", "201101010101", Success))
	if err := Verify(key, append(es, extra), -1); !errors.Is(err, ErrIntegrity) {
		t.Errorf("forged append: err = %v", err)
	}
}

func TestPaperTimeParsing(t *testing.T) {
	ts, err := ParsePaperTime("201003121210")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2010, 3, 12, 12, 10, 0, 0, time.UTC)
	if !ts.Equal(want) {
		t.Fatalf("ParsePaperTime = %v, want %v", ts, want)
	}
	if _, err := ParsePaperTime("2010-03-12"); err == nil {
		t.Fatalf("bad layout accepted")
	}
	if _, err := ParseStatus("unknown"); err == nil {
		t.Fatalf("bad status accepted")
	}
}
