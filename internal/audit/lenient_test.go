package audit

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

func lenEntry(min int, task, caseID string) Entry {
	return Entry{
		User: "u1", Role: "R", Action: "read",
		Object: policy.MustParseObject("[P1]EPR/Clinical"),
		Task:   task, Case: caseID,
		Time:   time.Date(2026, 4, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(min) * time.Minute),
		Status: Success,
	}
}

func csvOf(t *testing.T, entries ...Entry) string {
	t.Helper()
	var b strings.Builder
	if err := WriteCSV(&b, NewTrail(entries)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestDecodeCSVLenientQuarantines(t *testing.T) {
	clean := csvOf(t, lenEntry(0, "T1", "C-1"), lenEntry(1, "T2", "C-1"), lenEntry(2, "T3", "C-1"))
	lines := strings.Split(strings.TrimSuffix(clean, "\n"), "\n")
	// Corrupt line 3 (bad time) and append a short line.
	lines[2] = strings.Replace(lines[2], "202604010901", "NOTATIME", 1)
	lines = append(lines, "too,short")
	src := strings.Join(lines, "\n") + "\n"

	if _, err := ReadCSV(strings.NewReader(src)); err == nil {
		t.Fatalf("strict decode accepted corrupt input")
	}
	trail, q, err := DecodeCSV(strings.NewReader(src), DecodeOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if trail.Len() != 2 {
		t.Errorf("decoded %d entries, want 2", trail.Len())
	}
	if got := q.Lines(); len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("quarantine lines = %v, want [3 5]", got)
	}
	for _, r := range q.Records {
		if r.Err == nil || r.Raw == "" {
			t.Errorf("quarantined record missing err/raw: %+v", r)
		}
	}
	if !strings.Contains(q.Summary(), "2 record(s)") {
		t.Errorf("summary = %q", q.Summary())
	}
}

func TestDecodeCSVLenientMaxErrors(t *testing.T) {
	clean := csvOf(t, lenEntry(0, "T1", "C-1"))
	src := clean + "bad\nbad\nbad\n"
	_, q, err := DecodeCSV(strings.NewReader(src), DecodeOptions{Lenient: true, MaxErrors: 2})
	if err == nil {
		t.Fatalf("expected abort after MaxErrors, got quarantine %v", q.Lines())
	}
}

func TestDecodeCSVStrictLenientAgreeOnCleanInput(t *testing.T) {
	clean := csvOf(t, lenEntry(0, "T1", "C-1"), lenEntry(1, "T2", "C-2"))
	strict, err := ReadCSV(strings.NewReader(clean))
	if err != nil {
		t.Fatal(err)
	}
	lenient, q, err := DecodeCSV(strings.NewReader(clean), DecodeOptions{Lenient: true})
	if err != nil || q.Len() != 0 {
		t.Fatalf("lenient on clean input: err=%v quarantine=%d", err, q.Len())
	}
	if strict.Len() != lenient.Len() {
		t.Fatalf("strict %d entries, lenient %d", strict.Len(), lenient.Len())
	}
	for i := 0; i < strict.Len(); i++ {
		if !entryEqual(strict.At(i), lenient.At(i)) {
			t.Errorf("entry %d differs: %v vs %v", i, strict.At(i), lenient.At(i))
		}
	}
}

func TestDecodeJSONLLenient(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, NewTrail([]Entry{lenEntry(0, "T1", "C-1"), lenEntry(1, "T2", "C-1")})); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	src := lines[0] + "\n{\"broken\n\n" + lines[1] + "\n{\"status\":\"bogus\"}\n"

	if _, err := ReadJSONL(strings.NewReader(src)); err == nil {
		t.Fatalf("strict decode accepted corrupt input")
	}
	trail, q, err := DecodeJSONL(strings.NewReader(src), DecodeOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if trail.Len() != 2 {
		t.Errorf("decoded %d entries, want 2", trail.Len())
	}
	// Line 2 is the broken object, line 3 is blank (skipped, not
	// quarantined), line 5 has an unknown status.
	if got := q.Lines(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("quarantine lines = %v, want [2 5]", got)
	}
}

func TestStoreStrictOrderingErrors(t *testing.T) {
	s := NewStore()
	if err := s.Append(lenEntry(5, "T1", "C-1")); err != nil {
		t.Fatal(err)
	}
	// Equal timestamps are accepted.
	dup := lenEntry(5, "T2", "C-2")
	if err := s.Append(dup); err != nil {
		t.Fatalf("equal timestamp rejected: %v", err)
	}
	// Earlier timestamps are rejected, naming the case.
	err := s.Append(lenEntry(1, "T3", "C-3"))
	if err == nil {
		t.Fatalf("out-of-order entry accepted")
	}
	if !strings.Contains(err.Error(), "C-3") {
		t.Errorf("error does not name the case: %v", err)
	}
}

func TestStorePerCaseLenientReorder(t *testing.T) {
	s := NewStoreWith(StoreOptions{Order: OrderPerCaseLenient, ReorderWindow: 4})
	// Case A in order; case B delivers entry 1 late (within window).
	for _, e := range []Entry{
		lenEntry(0, "T1", "A-1"),
		lenEntry(10, "T1", "B-1"),
		lenEntry(12, "T3", "B-1"), // arrives before T2
		lenEntry(11, "T2", "B-1"), // late arrival
		lenEntry(1, "T2", "A-1"),  // global disorder vs case B: fine per case... late for nothing in A
	} {
		if err := s.Append(e); err != nil {
			t.Fatalf("lenient append failed: %v", err)
		}
	}
	got := s.Case("B-1")
	var tasks []string
	for i := 0; i < got.Len(); i++ {
		tasks = append(tasks, got.At(i).Task)
	}
	if strings.Join(tasks, ",") != "T1,T2,T3" {
		t.Errorf("case B order = %v, want T1,T2,T3", tasks)
	}
	an := s.Anomalies()
	if len(an) != 1 || an[0].Kind != AnomalyReordered || an[0].Case != "B-1" {
		t.Errorf("anomalies = %v, want one reordered for B-1", an)
	}
}

func TestStorePerCaseLenientDuplicateAndSkew(t *testing.T) {
	s := NewStoreWith(StoreOptions{Order: OrderPerCaseLenient, ReorderWindow: 2})
	e1 := lenEntry(10, "T1", "C-1")
	e2 := lenEntry(11, "T2", "C-1")
	e3 := lenEntry(12, "T3", "C-1")
	for _, e := range []Entry{e1, e2, e3, e2} { // exact duplicate of e2
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 {
		t.Errorf("store kept %d entries, want 3 (duplicate dropped)", s.Len())
	}
	// An arrival far earlier than the whole window: skew.
	if err := s.Append(lenEntry(0, "T0", "C-1")); err != nil {
		t.Fatal(err)
	}
	kinds := map[AnomalyKind]int{}
	for _, a := range s.Anomalies() {
		kinds[a.Kind]++
	}
	if kinds[AnomalyDuplicate] != 1 || kinds[AnomalySkew] != 1 {
		t.Errorf("anomaly kinds = %v, want one duplicate and one skew", kinds)
	}
}

func TestStoreLenientTrailIsSorted(t *testing.T) {
	s := NewStoreWith(StoreOptions{Order: OrderPerCaseLenient})
	if err := s.AppendAll([]Entry{
		lenEntry(3, "T1", "A-1"), lenEntry(1, "T1", "B-1"), lenEntry(2, "T2", "A-1"),
	}); err != nil {
		t.Fatal(err)
	}
	tr := s.Trail()
	for i := 1; i < tr.Len(); i++ {
		if tr.At(i).Time.Before(tr.At(i - 1).Time) {
			t.Fatalf("lenient Trail() not sorted at %d", i)
		}
	}
}
