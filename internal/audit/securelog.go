package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// The paper assumes audit trails are integrity-protected and cites
// forward-secure logging schemes ([18] Ma & Tsudik, [19] Schneier &
// Kelsey) as orthogonal machinery. This file holds the shared sealing
// primitives — the canonical entry serialization, the SHA-256 hash
// chain over it, and the evolving-key HMAC seal — plus SecureLog, a
// thin per-entry log over them. internal/ledger builds its Merkle
// leaves from the same chain, so there is exactly one definition of
// "what bytes an entry commits to" in the tree.

// ErrIntegrity reports a failed verification of a secure log.
var ErrIntegrity = errors.New("audit: secure log integrity violation")

// SealedEntry is an entry together with its chain hash and seal.
type SealedEntry struct {
	Entry Entry
	// Chain is SHA-256(prevChain || canonical(entry)), hex.
	Chain string
	// Seal is HMAC(key_i, Chain), hex, with key_i the i-th evolution
	// of the log key.
	Seal string
}

// SecureLog is an append-only, hash-chained, HMAC-sealed log.
type SecureLog struct {
	entries []SealedEntry
	chain   []byte // last chain hash
	key     []byte // current (evolved) key
}

// NewSecureLog initializes a log with the given secret key. The caller
// keeps (a copy of) the initial key offline for verification; the log's
// own copy evolves with every append.
func NewSecureLog(key []byte) *SecureLog {
	return &SecureLog{
		chain: ChainSeed(),
		key:   append([]byte(nil), key...),
	}
}

// ChainSeed returns the fixed chain starting point shared by every
// sealed trail (and by the ledger's leaf chain).
func ChainSeed() []byte {
	h := sha256.Sum256([]byte("purpose-control-secure-log-v1"))
	return h[:]
}

// CanonicalEntry serializes the entry for hashing; every field is
// length prefixed so field boundaries cannot be confused. This is the
// byte string an entry commits to — in SecureLog seals and in ledger
// Merkle leaves alike.
func CanonicalEntry(e Entry) []byte {
	fields := []string{
		e.User, e.Role, e.Action, e.Object.String(), e.Task, e.Case,
		e.Time.UTC().Format("20060102150405.000000000"), e.Status.String(),
	}
	var out []byte
	for _, f := range fields {
		out = append(out, []byte(fmt.Sprintf("%d:", len(f)))...)
		out = append(out, f...)
	}
	return out
}

// ChainNext advances the hash chain over one entry:
// SHA-256(prev || CanonicalEntry(e)).
func ChainNext(prev []byte, e Entry) []byte {
	h := sha256.New()
	h.Write(prev)
	h.Write(CanonicalEntry(e))
	return h.Sum(nil)
}

// SealChain computes the HMAC seal of a chain hash under the current
// key.
func SealChain(key, chain []byte) []byte {
	mac := hmac.New(sha256.New, key)
	mac.Write(chain)
	return mac.Sum(nil)
}

// EvolveKey derives the next sealing key from the current one; the
// one-way step is what gives the scheme forward security.
func EvolveKey(key []byte) []byte {
	h := sha256.New()
	h.Write([]byte("evolve"))
	h.Write(key)
	return h.Sum(nil)
}

// Append seals and stores an entry.
func (l *SecureLog) Append(e Entry) SealedEntry {
	chain := ChainNext(l.chain, e)
	seal := SealChain(l.key, chain)
	se := SealedEntry{Entry: e, Chain: hex.EncodeToString(chain), Seal: hex.EncodeToString(seal)}
	l.entries = append(l.entries, se)
	l.chain = chain
	l.key = EvolveKey(l.key)
	return se
}

// Len returns the number of sealed entries.
func (l *SecureLog) Len() int { return len(l.entries) }

// Entries returns a copy of the sealed entries.
func (l *SecureLog) Entries() []SealedEntry {
	return append([]SealedEntry(nil), l.entries...)
}

// Trail extracts the plain trail for analysis.
func (l *SecureLog) Trail() *Trail {
	es := make([]Entry, len(l.entries))
	for i, se := range l.entries {
		es[i] = se.Entry
	}
	return NewTrail(es)
}

// Verify checks a sealed sequence against the initial key: the chain
// must recompute and every seal must match under the corresponding key
// evolution. expectLen, when ≥ 0, additionally detects truncation by
// requiring exactly that many entries.
func Verify(initialKey []byte, entries []SealedEntry, expectLen int) error {
	if expectLen >= 0 && len(entries) != expectLen {
		return fmt.Errorf("%w: have %d entries, expect %d (truncation?)", ErrIntegrity, len(entries), expectLen)
	}
	chain := ChainSeed()
	key := append([]byte(nil), initialKey...)
	for i, se := range entries {
		chain = ChainNext(chain, se.Entry)
		if hex.EncodeToString(chain) != se.Chain {
			return fmt.Errorf("%w: chain mismatch at entry %d", ErrIntegrity, i)
		}
		if !hmac.Equal(SealChain(key, chain), mustHex(se.Seal)) {
			return fmt.Errorf("%w: seal mismatch at entry %d", ErrIntegrity, i)
		}
		key = EvolveKey(key)
	}
	return nil
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil
	}
	return b
}
