package audit

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// The paper assumes audit trails are integrity-protected and cites
// forward-secure logging schemes ([18] Ma & Tsudik, [19] Schneier &
// Kelsey) as orthogonal machinery. SecureLog is a faithful stand-in: a
// SHA-256 hash chain over canonical entry serializations with per-entry
// HMAC seals under an evolving key. Truncation, reordering, insertion
// and in-place modification of sealed entries are all detectable; the
// evolving key gives forward security (compromising the current key does
// not allow re-sealing past entries).

// ErrIntegrity reports a failed verification of a secure log.
var ErrIntegrity = errors.New("audit: secure log integrity violation")

// SealedEntry is an entry together with its chain hash and seal.
type SealedEntry struct {
	Entry Entry
	// Chain is SHA-256(prevChain || canonical(entry)), hex.
	Chain string
	// Seal is HMAC(key_i, Chain), hex, with key_i the i-th evolution
	// of the log key.
	Seal string
}

// SecureLog is an append-only, hash-chained, HMAC-sealed log.
type SecureLog struct {
	entries []SealedEntry
	chain   []byte // last chain hash
	key     []byte // current (evolved) key
}

// NewSecureLog initializes a log with the given secret key. The caller
// keeps (a copy of) the initial key offline for verification; the log's
// own copy evolves with every append.
func NewSecureLog(key []byte) *SecureLog {
	return &SecureLog{
		chain: seedChain(),
		key:   append([]byte(nil), key...),
	}
}

func seedChain() []byte {
	h := sha256.Sum256([]byte("purpose-control-secure-log-v1"))
	return h[:]
}

// canonical serializes the entry for hashing; every field is length
// prefixed so field boundaries cannot be confused.
func canonical(e Entry) []byte {
	fields := []string{
		e.User, e.Role, e.Action, e.Object.String(), e.Task, e.Case,
		e.Time.UTC().Format("20060102150405.000000000"), e.Status.String(),
	}
	var out []byte
	for _, f := range fields {
		out = append(out, []byte(fmt.Sprintf("%d:", len(f)))...)
		out = append(out, f...)
	}
	return out
}

func evolve(key []byte) []byte {
	h := sha256.New()
	h.Write([]byte("evolve"))
	h.Write(key)
	return h.Sum(nil)
}

// Append seals and stores an entry.
func (l *SecureLog) Append(e Entry) SealedEntry {
	h := sha256.New()
	h.Write(l.chain)
	h.Write(canonical(e))
	chain := h.Sum(nil)

	mac := hmac.New(sha256.New, l.key)
	mac.Write(chain)
	seal := mac.Sum(nil)

	se := SealedEntry{Entry: e, Chain: hex.EncodeToString(chain), Seal: hex.EncodeToString(seal)}
	l.entries = append(l.entries, se)
	l.chain = chain
	l.key = evolve(l.key)
	return se
}

// Len returns the number of sealed entries.
func (l *SecureLog) Len() int { return len(l.entries) }

// Entries returns a copy of the sealed entries.
func (l *SecureLog) Entries() []SealedEntry {
	return append([]SealedEntry(nil), l.entries...)
}

// Trail extracts the plain trail for analysis.
func (l *SecureLog) Trail() *Trail {
	es := make([]Entry, len(l.entries))
	for i, se := range l.entries {
		es[i] = se.Entry
	}
	return NewTrail(es)
}

// Verify checks a sealed sequence against the initial key: the chain
// must recompute and every seal must match under the corresponding key
// evolution. expectLen, when ≥ 0, additionally detects truncation by
// requiring exactly that many entries.
func Verify(initialKey []byte, entries []SealedEntry, expectLen int) error {
	if expectLen >= 0 && len(entries) != expectLen {
		return fmt.Errorf("%w: have %d entries, expect %d (truncation?)", ErrIntegrity, len(entries), expectLen)
	}
	chain := seedChain()
	key := append([]byte(nil), initialKey...)
	for i, se := range entries {
		h := sha256.New()
		h.Write(chain)
		h.Write(canonical(se.Entry))
		chain = h.Sum(nil)
		if hex.EncodeToString(chain) != se.Chain {
			return fmt.Errorf("%w: chain mismatch at entry %d", ErrIntegrity, i)
		}
		mac := hmac.New(sha256.New, key)
		mac.Write(chain)
		if !hmac.Equal(mac.Sum(nil), mustHex(se.Seal)) {
			return fmt.Errorf("%w: seal mismatch at entry %d", ErrIntegrity, i)
		}
		key = evolve(key)
	}
	return nil
}

func mustHex(s string) []byte {
	b, err := hex.DecodeString(s)
	if err != nil {
		return nil
	}
	return b
}
