package audit

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
)

// scanTrail builds a wire-realistic NDJSON body: several users, roles,
// tasks and cases, objects present and absent, successes and failures.
func scanTrail(n int) []byte {
	var buf bytes.Buffer
	base := time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		e := Entry{
			User:   fmt.Sprintf("u%d", i%7),
			Role:   []string{"Doctor", "Nurse", "Admin"}[i%3],
			Action: []string{"read", "write", "cancel"}[i%3],
			Task:   fmt.Sprintf("T%d", i%5),
			Case:   fmt.Sprintf("C-%d", i%11),
			Time:   base.Add(time.Duration(i) * time.Second),
			Status: Status(i % 2),
		}
		if i%3 != 2 {
			e.Object = policy.Object{Subject: fmt.Sprintf("P%d", i%4), Path: []string{"EPR", "Clinical"}}
		}
		if err := AppendJSONL(&buf, e); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// referenceDecode is the historical decoder: bufio.Scanner +
// entryFromJSON per line, the behavior DecodeJSONLEntries used before
// the fast scanner and the contract it must keep bit for bit.
func referenceDecode(r io.Reader, opts DecodeOptions) ([]Entry, *Quarantine, error) {
	q := &Quarantine{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxJSONLLine)
	var entries []Entry
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Text()
		if strings.TrimSpace(raw) == "" {
			continue
		}
		e, err := entryFromJSON([]byte(raw))
		if err != nil {
			if !opts.Lenient {
				return nil, q, fmt.Errorf("audit: JSONL line %d: %w", line, err)
			}
			if qerr := q.add(line, raw, err, opts.MaxErrors); qerr != nil {
				return nil, q, qerr
			}
			continue
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, q, fmt.Errorf("audit: reading JSONL line %d: %w", line+1, err)
	}
	return entries, q, nil
}

// scannerInputs are adversarial bodies exercising both the fast path
// and every fallback reason.
var scannerInputs = []struct {
	name string
	body string
}{
	{"clean", string(scanTrail(50))},
	{"blank lines and CRLF", "\r\n{\"user\":\"u\",\"role\":\"R\",\"action\":\"a\",\"task\":\"T\",\"case\":\"C\",\"time\":\"2026-07-05T09:00:00Z\",\"status\":\"success\"}\r\n   \n"},
	{"no trailing newline", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"failure"}`},
	{"mixed-case status", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"Success"}` + "\n"},
	{"escaped strings", `{"user":"u\u0041","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"non-ascii", `{"user":"üser","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"unknown string key", `{"user":"u","extra":"x","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"unknown number key", `{"user":"u","extra":7,"role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"duplicate key", `{"user":"first","user":"second","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"null object", `{"user":"u","object":null,"role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"empty object literal", `{"user":"u","object":"","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"bad object literal", `{"user":"u","object":"[unterminated","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"}` + "\n"},
	{"bad time", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"yesterday","status":"success"}` + "\n"},
	{"offset time", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T11:00:00+02:00","status":"success"}` + "\n"},
	{"missing status", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z"}` + "\n"},
	{"empty braces", "{}\n"},
	{"not json", "this is not json\n"},
	{"truncated object", `{"user":"u","role":` + "\n"},
	{"trailing garbage", `{"user":"u","role":"R","action":"a","task":"T","case":"C","time":"2026-07-05T09:00:00Z","status":"success"} tail` + "\n"},
	{"whitespace inside", ` { "user" : "u" , "role" : "R" , "action" : "a" , "task" : "T" , "case" : "C" , "time" : "2026-07-05T09:00:00Z" , "status" : "success" } ` + "\n"},
	{"mixture", string(scanTrail(10)) + "garbage\n" + string(scanTrail(5)) + "{\"status\":\"maybe\"}\n"},
}

// TestEntryScannerMatchesReferenceDecoder runs every input through the
// fast scanner (via DecodeJSONLEntries) and the historical decoder, in
// both strict and lenient mode, and demands identical entries, errors
// and quarantine records.
func TestEntryScannerMatchesReferenceDecoder(t *testing.T) {
	for _, tc := range scannerInputs {
		for _, opts := range []DecodeOptions{{}, {Lenient: true}, {Lenient: true, MaxErrors: 1}} {
			name := fmt.Sprintf("%s/lenient=%v/max=%d", tc.name, opts.Lenient, opts.MaxErrors)
			t.Run(name, func(t *testing.T) {
				want, wantQ, wantErr := referenceDecode(strings.NewReader(tc.body), opts)
				got, gotQ, gotErr := DecodeJSONLEntries(strings.NewReader(tc.body), opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("error mismatch: reference %v, scanner %v", wantErr, gotErr)
				}
				if wantErr != nil && wantErr.Error() != gotErr.Error() {
					t.Fatalf("error text mismatch:\nreference: %v\nscanner:   %v", wantErr, gotErr)
				}
				if len(want) != len(got) {
					t.Fatalf("decoded %d entries, reference %d", len(got), len(want))
				}
				for i := range want {
					if !entryEqual(want[i], got[i]) {
						t.Fatalf("entry %d differs:\nreference: %+v\nscanner:   %+v", i, want[i], got[i])
					}
				}
				if wantQ.Len() != gotQ.Len() {
					t.Fatalf("quarantined %d, reference %d", gotQ.Len(), wantQ.Len())
				}
				for i := range wantQ.Records {
					wr, gr := wantQ.Records[i], gotQ.Records[i]
					if wr.Line != gr.Line || wr.Raw != gr.Raw || wr.Err.Error() != gr.Err.Error() {
						t.Fatalf("quarantine record %d differs:\nreference: %v\nscanner:   %v", i, wr, gr)
					}
				}
			})
		}
	}
}

// TestEntryScannerZeroAlloc is the tentpole's hard budget: scanning
// clean wire-shaped NDJSON allocates nothing per entry once the intern
// tables are warm.
func TestEntryScannerZeroAlloc(t *testing.T) {
	data := scanTrail(2000)
	br := bytes.NewReader(data)
	sc := NewEntryScanner(br, DecodeOptions{})
	// Warm the interners and the line buffer.
	for sc.Scan() {
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if sc.Fallbacks() != 0 {
		t.Fatalf("clean input took %d slow-path fallbacks", sc.Fallbacks())
	}

	entries := 0
	allocs := testing.AllocsPerRun(10, func() {
		br.Reset(data)
		sc.Reset(br)
		for sc.Scan() {
			entries++
		}
		if sc.Err() != nil {
			t.Fatal(sc.Err())
		}
	})
	if entries == 0 {
		t.Fatal("scanner produced no entries")
	}
	if allocs != 0 {
		t.Errorf("strict-mode scan of %d entries allocates %.1f times per run, want 0", 2000, allocs)
	}
}

// TestEntryScannerTooLongLine mirrors bufio.Scanner's token-size limit.
func TestEntryScannerTooLongLine(t *testing.T) {
	body := "{\"status\":\"" + strings.Repeat("a", maxJSONLLine) + "\"}\n"
	_, _, err := DecodeJSONLEntries(strings.NewReader(body), DecodeOptions{Lenient: true})
	if !errors.Is(err, bufio.ErrTooLong) {
		t.Fatalf("err = %v, want bufio.ErrTooLong", err)
	}
}

// errAfterReader yields its payload, then a non-EOF error.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestEntryScannerReadError checks a mid-stream read failure surfaces
// with the historical message, after draining buffered complete lines.
func TestEntryScannerReadError(t *testing.T) {
	boom := errors.New("connection reset")
	r := &errAfterReader{data: scanTrail(3), err: boom}
	_, _, err := DecodeJSONLEntries(r, DecodeOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped read error", err)
	}
	if want := "audit: reading JSONL line 4: connection reset"; err.Error() != want {
		t.Fatalf("err = %q, want %q", err, want)
	}
}

// TestEntryScannerBuffered checks the batch-flush hint: true while
// bytes remain in the window, false once drained.
func TestEntryScannerBuffered(t *testing.T) {
	sc := NewEntryScanner(bytes.NewReader(scanTrail(5)), DecodeOptions{})
	if !sc.Scan() {
		t.Fatal("no first entry")
	}
	if !sc.Buffered() {
		t.Error("Buffered() = false with four entries unread")
	}
	for sc.Scan() {
	}
	if sc.Buffered() {
		t.Error("Buffered() = true after the stream drained")
	}
}

// TestEntryScannerInternBound checks the intern tables stop growing at
// their cap without affecting correctness.
func TestEntryScannerInternBound(t *testing.T) {
	var buf bytes.Buffer
	n := maxInterned + 100
	for i := 0; i < n; i++ {
		e := Entry{
			User: fmt.Sprintf("user-%05d", i), Role: "R", Action: "a",
			Task: "T", Case: fmt.Sprintf("case-%05d", i),
			Time:   time.Date(2026, 7, 5, 9, 0, 0, 0, time.UTC),
			Status: Success,
		}
		if err := AppendJSONL(&buf, e); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewEntryScanner(bytes.NewReader(buf.Bytes()), DecodeOptions{})
	count := 0
	for sc.Scan() {
		if want := fmt.Sprintf("user-%05d", count); sc.Entry().User != want {
			t.Fatalf("entry %d user = %q, want %q", count, sc.Entry().User, want)
		}
		count++
	}
	if sc.Err() != nil || count != n {
		t.Fatalf("scanned %d entries (err %v), want %d", count, sc.Err(), n)
	}
	if len(sc.strs) > maxInterned {
		t.Errorf("intern table grew to %d, cap is %d", len(sc.strs), maxInterned)
	}
}
