package audit

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/policy"
)

// CSV and JSONL codecs for trails. The CSV layout mirrors Figure 4's
// columns:
//
//	user,role,action,object,task,case,time,status
//
// with time in the paper's 12-digit layout. "N/A" objects (the paper's
// cancel action) are encoded literally and decode to an empty object.

// csvHeader is the canonical column order.
var csvHeader = []string{"user", "role", "action", "object", "task", "case", "time", "status"}

// NAObject is the literal the paper uses for actions without a target
// object.
const NAObject = "N/A"

// WriteCSV writes the trail with a header row.
func WriteCSV(w io.Writer, t *Trail) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("audit: writing CSV header: %w", err)
	}
	for i := 0; i < t.Len(); i++ {
		e := t.At(i)
		obj := NAObject
		if len(e.Object.Path) > 0 {
			obj = e.Object.String()
		}
		rec := []string{
			e.User, e.Role, e.Action, obj, e.Task, e.Case,
			e.Time.Format(PaperTimeLayout), e.Status.String(),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("audit: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("audit: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV reads a trail written by WriteCSV (header required). It is
// strict: the first malformed row aborts. Use DecodeCSV with
// DecodeOptions{Lenient: true} to quarantine bad rows instead.
func ReadCSV(r io.Reader) (*Trail, error) {
	t, _, err := DecodeCSV(r, DecodeOptions{})
	return t, err
}

func entryFromRecord(rec []string) (Entry, error) {
	var e Entry
	if len(rec) != len(csvHeader) {
		return e, fmt.Errorf("have %d fields, want %d", len(rec), len(csvHeader))
	}
	e.User, e.Role, e.Action = rec[0], rec[1], rec[2]
	if rec[3] != NAObject && rec[3] != "" {
		o, err := policy.ParseObject(rec[3])
		if err != nil {
			return e, err
		}
		e.Object = o
	}
	e.Task, e.Case = rec[4], rec[5]
	t, err := ParsePaperTime(rec[6])
	if err != nil {
		return e, err
	}
	e.Time = t
	st, err := ParseStatus(rec[7])
	if err != nil {
		return e, err
	}
	e.Status = st
	return e, nil
}

// jsonEntry is the JSONL wire form.
type jsonEntry struct {
	User   string    `json:"user"`
	Role   string    `json:"role"`
	Action string    `json:"action"`
	Object string    `json:"object,omitempty"`
	Task   string    `json:"task"`
	Case   string    `json:"case"`
	Time   time.Time `json:"time"`
	Status string    `json:"status"`
}

// AppendJSONL writes one entry as a single JSONL line — the unit a
// streaming producer (auditgen -stream) emits and a streaming consumer
// (auditd) ingests.
func AppendJSONL(w io.Writer, e Entry) error {
	je := jsonEntry{
		User: e.User, Role: e.Role, Action: e.Action,
		Task: e.Task, Case: e.Case, Time: e.Time, Status: e.Status.String(),
	}
	if len(e.Object.Path) > 0 {
		je.Object = e.Object.String()
	}
	b, err := json.Marshal(je)
	if err != nil {
		return fmt.Errorf("audit: encoding JSONL entry: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("audit: writing JSONL entry: %w", err)
	}
	return nil
}

// WriteJSONL writes one JSON object per line.
func WriteJSONL(w io.Writer, t *Trail) error {
	for i := 0; i < t.Len(); i++ {
		if err := AppendJSONL(w, t.At(i)); err != nil {
			return fmt.Errorf("audit: entry %d: %w", i, err)
		}
	}
	return nil
}

// DecodeEntryJSON decodes a single JSONL record — the per-line inverse
// of AppendJSONL, for stream consumers that need line-at-a-time
// backpressure instead of whole-body decoding.
func DecodeEntryJSON(b []byte) (Entry, error) { return entryFromJSON(b) }

// ReadJSONL reads a trail written by WriteJSONL: one JSON object per
// line (blank lines are skipped). It is strict: the first malformed
// line aborts. Use DecodeJSONL with DecodeOptions{Lenient: true} to
// quarantine bad lines instead.
func ReadJSONL(r io.Reader) (*Trail, error) {
	t, _, err := DecodeJSONL(r, DecodeOptions{})
	return t, err
}
