package audit

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/policy"
)

// Store is the paper's single audit database: "logs are collected from
// all applications in a single database with the structure given in
// Def. 4" (Section 3.4). It keeps entries in arrival order per case and
// maintains the indexes the investigation workflow needs (case, user,
// object root). Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	all     []Entry
	byCase  map[string][]int
	byUser  map[string][]int
	subject map[string][]int // index by data subject of the object
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		byCase:  map[string][]int{},
		byUser:  map[string][]int{},
		subject: map[string][]int{},
	}
}

// Append records an entry. Entries must arrive in non-decreasing time
// order (the HIS writes them as actions happen).
func (s *Store) Append(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.all); n > 0 && e.Time.Before(s.all[n-1].Time) {
		return fmt.Errorf("audit: out-of-order entry at %s (store tail %s)",
			e.Time.Format(PaperTimeLayout), s.all[n-1].Time.Format(PaperTimeLayout))
	}
	idx := len(s.all)
	s.all = append(s.all, e)
	s.byCase[e.Case] = append(s.byCase[e.Case], idx)
	s.byUser[e.User] = append(s.byUser[e.User], idx)
	if subj := e.Object.Subject; subj != "" {
		s.subject[subj] = append(s.subject[subj], idx)
	}
	return nil
}

// AppendAll records a batch.
func (s *Store) AppendAll(entries []Entry) error {
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// Trail snapshots the full store as a Trail.
func (s *Store) Trail() *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &Trail{entries: append([]Entry(nil), s.all...)}
}

// Case returns the trail of one process instance.
func (s *Store) Case(caseID string) *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byCase[caseID]
	out := make([]Entry, len(idxs))
	for i, idx := range idxs {
		out[i] = s.all[idx]
	}
	return &Trail{entries: out}
}

// Cases returns all case identifiers, sorted.
func (s *Store) Cases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byCase))
	for c := range s.byCase {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CasesTouching returns the cases in which the object (or any
// sub-resource) was accessed — the per-object investigation entry point
// of Section 4. It uses the subject index when the object names a
// subject.
func (s *Store) CasesTouching(o policy.Object) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	scan := func(idxs []int) {
		for _, idx := range idxs {
			e := s.all[idx]
			if o.Covers(e.Object) && !seen[e.Case] {
				seen[e.Case] = true
				out = append(out, e.Case)
			}
		}
	}
	if o.Subject != "" && o.Subject != policy.AnySubject && o.Subject != policy.ConsentSubject {
		scan(s.subject[o.Subject])
	} else {
		idxs := make([]int, len(s.all))
		for i := range s.all {
			idxs[i] = i
		}
		scan(idxs)
	}
	sort.Strings(out)
	return out
}

// User returns the trail of one user.
func (s *Store) User(user string) *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byUser[user]
	out := make([]Entry, len(idxs))
	for i, idx := range idxs {
		out[i] = s.all[idx]
	}
	return &Trail{entries: out}
}
