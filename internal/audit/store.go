package audit

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/policy"
)

// OrderMode selects how a Store enforces Definition 5's chronological
// order at ingest time.
type OrderMode int

const (
	// OrderGlobalStrict rejects any entry earlier than the store tail:
	// the whole database is one non-decreasing timeline (the HIS writes
	// entries as actions happen). Equal timestamps are accepted — the
	// paper itself logs two same-minute entries in Figure 4.
	OrderGlobalStrict OrderMode = iota
	// OrderPerCaseLenient enforces time order per case only, with a
	// bounded reorder buffer: a late arrival is re-inserted at its
	// chronological position within its case as long as it lands within
	// ReorderWindow entries of the case tail. Duplicates and excess
	// clock skew are recorded as Anomaly entries instead of errors, so
	// ingest from skewed multi-application sources never fails.
	OrderPerCaseLenient
)

// DefaultReorderWindow is the per-case reorder buffer used when
// StoreOptions.ReorderWindow is zero.
const DefaultReorderWindow = 16

// StoreOptions configures a Store.
type StoreOptions struct {
	Order OrderMode
	// ReorderWindow bounds, per case, how many recent entries a late
	// arrival may be re-inserted behind (OrderPerCaseLenient only).
	// 0 means DefaultReorderWindow.
	ReorderWindow int
}

// AnomalyKind classifies an ingest anomaly recorded in lenient mode.
type AnomalyKind int

const (
	// AnomalyReordered: a late arrival was placed at its chronological
	// position within the reorder window. The case trail stays ordered.
	AnomalyReordered AnomalyKind = iota
	// AnomalySkew: an arrival was earlier than everything in the reorder
	// window; it was placed at the window edge, so residual disorder may
	// remain in the case trail.
	AnomalySkew
	// AnomalyDuplicate: an exact duplicate of a recent entry of the same
	// case; the duplicate was dropped.
	AnomalyDuplicate
)

// String names the kind.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyReordered:
		return "reordered"
	case AnomalySkew:
		return "skew"
	case AnomalyDuplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("AnomalyKind(%d)", int(k))
	}
}

// Anomaly records one ingest irregularity a lenient store absorbed
// instead of failing.
type Anomaly struct {
	Kind   AnomalyKind
	Case   string
	Entry  Entry
	Detail string
}

// String renders a one-line account.
func (a Anomaly) String() string {
	return fmt.Sprintf("[%s] case %s: %s (%s)", a.Kind, a.Case, a.Detail, a.Entry)
}

// Store is the paper's single audit database: "logs are collected from
// all applications in a single database with the structure given in
// Def. 4" (Section 3.4). It keeps entries in arrival order per case and
// maintains the indexes the investigation workflow needs (case, user,
// object root). Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	opts    StoreOptions
	all     []Entry
	byCase  map[string][]int
	byUser  map[string][]int
	subject map[string][]int // index by data subject of the object

	anomalies []Anomaly
}

// NewStore returns an empty store with strict global ordering.
func NewStore() *Store { return NewStoreWith(StoreOptions{}) }

// NewStoreWith returns an empty store with the given options.
func NewStoreWith(opts StoreOptions) *Store {
	return &Store{
		opts:    opts,
		byCase:  map[string][]int{},
		byUser:  map[string][]int{},
		subject: map[string][]int{},
	}
}

// entryEqual reports field-for-field equality (duplicate detection).
func entryEqual(a, b Entry) bool {
	return a.User == b.User && a.Role == b.Role && a.Action == b.Action &&
		a.Task == b.Task && a.Case == b.Case && a.Status == b.Status &&
		a.Time.Equal(b.Time) && a.Object.Subject == b.Object.Subject &&
		slices.Equal(a.Object.Path, b.Object.Path)
}

// Append records an entry. Under OrderGlobalStrict, entries must arrive
// in non-decreasing time order (equal timestamps are fine) and an
// out-of-order entry is an error naming the offending case. Under
// OrderPerCaseLenient, Append never fails: late arrivals are buffered
// back into per-case order and irregularities are recorded as
// anomalies (see Anomalies).
func (s *Store) Append(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Order == OrderPerCaseLenient {
		s.appendPerCase(e)
		return nil
	}
	if n := len(s.all); n > 0 && e.Time.Before(s.all[n-1].Time) {
		return fmt.Errorf("audit: out-of-order entry for case %s at %s (store tail %s)",
			e.Case, e.Time.Format(PaperTimeLayout), s.all[n-1].Time.Format(PaperTimeLayout))
	}
	s.insertLocked(e, len(s.byCase[e.Case]))
	return nil
}

// insertLocked appends e to the arrival log and all indexes, placing
// its case index at position pos of the case's (time-ordered) slice.
func (s *Store) insertLocked(e Entry, pos int) {
	idx := len(s.all)
	s.all = append(s.all, e)
	idxs := s.byCase[e.Case]
	idxs = append(idxs, 0)
	copy(idxs[pos+1:], idxs[pos:])
	idxs[pos] = idx
	s.byCase[e.Case] = idxs
	s.byUser[e.User] = append(s.byUser[e.User], idx)
	if subj := e.Object.Subject; subj != "" {
		s.subject[subj] = append(s.subject[subj], idx)
	}
}

// appendPerCase is lenient ingest: per-case order with a bounded
// reorder buffer, duplicates dropped, skew recorded.
func (s *Store) appendPerCase(e Entry) {
	window := s.opts.ReorderWindow
	if window <= 0 {
		window = DefaultReorderWindow
	}
	idxs := s.byCase[e.Case]
	n := len(idxs)

	// Exact duplicates within the window are dropped: multi-source
	// collection commonly delivers the same record twice.
	for back := 0; back < window && back < n; back++ {
		if entryEqual(s.all[idxs[n-1-back]], e) {
			s.anomalies = append(s.anomalies, Anomaly{
				Kind: AnomalyDuplicate, Case: e.Case, Entry: e,
				Detail: fmt.Sprintf("duplicate of case entry %d, dropped", n-1-back),
			})
			return
		}
	}

	// Walk back at most window positions to find the chronological slot.
	pos := n
	for pos > 0 && n-pos < window && e.Time.Before(s.all[idxs[pos-1]].Time) {
		pos--
	}
	switch {
	case pos == n:
		// In order; nothing to record.
	case pos > 0 && e.Time.Before(s.all[idxs[pos-1]].Time):
		// Still earlier than everything inside the window: clock skew
		// beyond the buffer. Place at the window edge and flag it.
		s.anomalies = append(s.anomalies, Anomaly{
			Kind: AnomalySkew, Case: e.Case, Entry: e,
			Detail: fmt.Sprintf("late arrival beyond reorder window %d, placed at window edge", window),
		})
	default:
		s.anomalies = append(s.anomalies, Anomaly{
			Kind: AnomalyReordered, Case: e.Case, Entry: e,
			Detail: fmt.Sprintf("late arrival re-inserted %d position(s) back", n-pos),
		})
	}
	s.insertLocked(e, pos)
}

// AppendAll records a batch.
func (s *Store) AppendAll(entries []Entry) error {
	for _, e := range entries {
		if err := s.Append(e); err != nil {
			return err
		}
	}
	return nil
}

// Anomalies returns the ingest anomalies recorded so far (lenient mode
// only; strict stores never record any).
func (s *Store) Anomalies() []Anomaly {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Anomaly(nil), s.anomalies...)
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.all)
}

// Trail snapshots the full store as a Trail. A strict store's arrival
// log is already chronological; a lenient store's snapshot is sorted
// (stably) first.
func (s *Store) Trail() *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.opts.Order == OrderPerCaseLenient {
		return NewTrail(s.all)
	}
	return &Trail{entries: append([]Entry(nil), s.all...)}
}

// Case returns the trail of one process instance, in the per-case
// order the store maintains.
func (s *Store) Case(caseID string) *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byCase[caseID]
	out := make([]Entry, len(idxs))
	for i, idx := range idxs {
		out[i] = s.all[idx]
	}
	return &Trail{entries: out}
}

// Cases returns all case identifiers, sorted.
func (s *Store) Cases() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byCase))
	for c := range s.byCase {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CasesTouching returns the cases in which the object (or any
// sub-resource) was accessed — the per-object investigation entry point
// of Section 4. It uses the subject index when the object names a
// subject.
func (s *Store) CasesTouching(o policy.Object) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := map[string]bool{}
	var out []string
	scan := func(idxs []int) {
		for _, idx := range idxs {
			e := s.all[idx]
			if o.Covers(e.Object) && !seen[e.Case] {
				seen[e.Case] = true
				out = append(out, e.Case)
			}
		}
	}
	if o.Subject != "" && o.Subject != policy.AnySubject && o.Subject != policy.ConsentSubject {
		scan(s.subject[o.Subject])
	} else {
		idxs := make([]int, len(s.all))
		for i := range s.all {
			idxs[i] = i
		}
		scan(idxs)
	}
	sort.Strings(out)
	return out
}

// User returns the trail of one user (arrival order; lenient-mode
// reordering is maintained per case, not per user).
func (s *Store) User(user string) *Trail {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idxs := s.byUser[user]
	out := make([]Entry, len(idxs))
	for i, idx := range idxs {
		out[i] = s.all[idx]
	}
	return &Trail{entries: out}
}
