package audit

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/policy"
)

// Lenient (degraded-mode) trail ingestion. The paper assumes a clean
// audit database (Definition 4), but a real deployment collecting "logs
// from all applications in a single database" sees truncated files,
// malformed rows and clock skew across sources. The strict codecs abort
// an entire investigation on the first bad byte; the lenient decoders
// below quarantine malformed records into a structured report and keep
// going, so one corrupt line never loses the whole audit.

// DecodeOptions configures trail decoding.
type DecodeOptions struct {
	// Lenient quarantines malformed records instead of aborting on the
	// first one. Structural failures that make the rest of the input
	// uninterpretable (a bad CSV header, an I/O error) still abort.
	Lenient bool
	// MaxErrors caps the quarantine in lenient mode: once more than
	// MaxErrors records have been quarantined the decode aborts, on the
	// theory that pervasive corruption is a different problem than a few
	// bad rows. 0 means unlimited.
	MaxErrors int
}

// QuarantinedRecord is one malformed input record set aside by a
// lenient decode.
type QuarantinedRecord struct {
	// Line is the 1-based input line of the record (the CSV header is
	// line 1, so data starts at line 2; JSONL data starts at line 1).
	Line int
	// Raw is the offending record text as far as it could be read.
	Raw string
	// Err is the decode error.
	Err error
}

func (r QuarantinedRecord) String() string {
	return fmt.Sprintf("line %d: %v (%q)", r.Line, r.Err, r.Raw)
}

// Quarantine collects the records a lenient decode set aside. A nil or
// empty quarantine means the input was clean.
type Quarantine struct {
	Records []QuarantinedRecord
}

// Len returns the number of quarantined records.
func (q *Quarantine) Len() int {
	if q == nil {
		return 0
	}
	return len(q.Records)
}

// Lines returns the input lines of the quarantined records, in input
// order.
func (q *Quarantine) Lines() []int {
	if q == nil {
		return nil
	}
	out := make([]int, len(q.Records))
	for i, r := range q.Records {
		out[i] = r.Line
	}
	return out
}

// Summary renders a one-line account ("3 record(s) quarantined, first
// at line 7: ...").
func (q *Quarantine) Summary() string {
	if q.Len() == 0 {
		return "no records quarantined"
	}
	return fmt.Sprintf("%d record(s) quarantined, first at line %d: %v",
		len(q.Records), q.Records[0].Line, q.Records[0].Err)
}

func (q *Quarantine) add(line int, raw string, err error, max int) error {
	q.Records = append(q.Records, QuarantinedRecord{Line: line, Raw: raw, Err: err})
	if max > 0 && len(q.Records) > max {
		return fmt.Errorf("audit: lenient decode aborted: more than %d malformed records (last at line %d: %v)",
			max, line, err)
	}
	return nil
}

// DecodeCSV reads a trail in the Figure 4 CSV layout under the given
// options. In strict mode it behaves exactly like ReadCSV; in lenient
// mode malformed rows are quarantined and decoding continues. The
// returned quarantine is never nil.
func DecodeCSV(r io.Reader, opts DecodeOptions) (*Trail, *Quarantine, error) {
	entries, q, err := DecodeCSVEntries(r, opts)
	if err != nil {
		return nil, q, err
	}
	return NewTrail(entries), q, nil
}

// DecodeCSVEntries is DecodeCSV without the chronological sort: entries
// are returned in input order, which a Store in per-case ordering mode
// needs to detect reordering and duplication at the source.
func DecodeCSVEntries(r io.Reader, opts DecodeOptions) ([]Entry, *Quarantine, error) {
	q := &Quarantine{}
	cr := csv.NewReader(r)
	if opts.Lenient {
		// Field counts are validated per record so a short or long row
		// is quarantined, not fatal.
		cr.FieldsPerRecord = -1
	}
	header, err := cr.Read()
	if err != nil {
		return nil, q, fmt.Errorf("audit: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, q, fmt.Errorf("audit: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	var entries []Entry
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !opts.Lenient {
				return nil, q, fmt.Errorf("audit: reading CSV line %d: %w", line, err)
			}
			var pe *csv.ParseError
			if !errors.As(err, &pe) {
				// Not a per-record syntax problem (e.g. the underlying
				// reader failed); retrying would loop forever.
				return nil, q, fmt.Errorf("audit: reading CSV line %d: %w", line, err)
			}
			if qerr := q.add(line, strings.Join(rec, ","), err, opts.MaxErrors); qerr != nil {
				return nil, q, qerr
			}
			continue
		}
		e, err := entryFromRecord(rec)
		if err != nil {
			if !opts.Lenient {
				return nil, q, fmt.Errorf("audit: CSV line %d: %w", line, err)
			}
			if qerr := q.add(line, strings.Join(rec, ","), err, opts.MaxErrors); qerr != nil {
				return nil, q, qerr
			}
			continue
		}
		entries = append(entries, e)
	}
	return entries, q, nil
}

// maxJSONLLine bounds a single JSONL record; longer lines fail decoding.
const maxJSONLLine = 8 << 20

// DecodeJSONL reads a trail with one JSON object per line under the
// given options. Blank lines are skipped. In lenient mode malformed
// lines are quarantined and decoding continues. The returned quarantine
// is never nil.
func DecodeJSONL(r io.Reader, opts DecodeOptions) (*Trail, *Quarantine, error) {
	entries, q, err := DecodeJSONLEntries(r, opts)
	if err != nil {
		return nil, q, err
	}
	return NewTrail(entries), q, nil
}

// DecodeJSONLEntries is DecodeJSONL without the chronological sort (see
// DecodeCSVEntries). It runs on the zero-allocation EntryScanner; the
// scanner's slow-path escape hatch keeps strict errors and quarantine
// records identical to the historical bufio+encoding/json decoder.
func DecodeJSONLEntries(r io.Reader, opts DecodeOptions) ([]Entry, *Quarantine, error) {
	sc := NewEntryScanner(r, opts)
	var entries []Entry
	for sc.Scan() {
		entries = append(entries, *sc.Entry())
	}
	if err := sc.Err(); err != nil {
		return nil, sc.Quarantine(), err
	}
	return entries, sc.Quarantine(), nil
}

// entryFromJSON decodes one JSONL record.
func entryFromJSON(b []byte) (Entry, error) {
	var je jsonEntry
	if err := json.Unmarshal(b, &je); err != nil {
		return Entry{}, err
	}
	e := Entry{
		User: je.User, Role: je.Role, Action: je.Action,
		Task: je.Task, Case: je.Case, Time: je.Time,
	}
	if je.Object != "" {
		o, err := policy.ParseObject(je.Object)
		if err != nil {
			return Entry{}, err
		}
		e.Object = o
	}
	st, err := ParseStatus(je.Status)
	if err != nil {
		return Entry{}, err
	}
	e.Status = st
	return e, nil
}
