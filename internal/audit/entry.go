// Package audit implements the paper's audit trails (Section 3.4): log
// entries capturing who performed which action on which object, within
// which task and process instance, when, and whether the task step
// succeeded (Definition 4); chronologically ordered trails
// (Definition 5); an indexed store that answers the queries Algorithm 1
// and the preventive layer need; and a hash-chained secure log standing
// in for the integrity mechanisms the paper cites ([18,19]).
package audit

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/policy"
)

// Status is the task status indicator of Definition 4.
type Status int

const (
	// Success marks a completed action within a succeeding task step.
	Success Status = iota
	// Failure marks a failed task; per the paper, a failure completes
	// the task and the process proceeds only through an error handler.
	Failure
)

// String returns "success" or "failure".
func (s Status) String() string {
	if s == Failure {
		return "failure"
	}
	return "success"
}

// ParseStatus reads "success" or "failure".
func ParseStatus(s string) (Status, error) {
	switch strings.ToLower(s) {
	case "success":
		return Success, nil
	case "failure":
		return Failure, nil
	default:
		return 0, fmt.Errorf("audit: unknown status %q", s)
	}
}

// Entry is a log entry (Definition 4): (u, r, a, o, q, c, t, s).
type Entry struct {
	User   string
	Role   string
	Action string
	Object policy.Object
	Task   string
	Case   string
	Time   time.Time
	Status Status
}

// String renders the entry as a Figure 4 row.
func (e Entry) String() string {
	return fmt.Sprintf("%s %s %s %s %s %s %s %s",
		e.User, e.Role, e.Action, e.Object, e.Task, e.Case, e.Time.Format(PaperTimeLayout), e.Status)
}

// Before implements the Definition 5 order: strictly earlier timestamp.
func (e Entry) Before(other Entry) bool { return e.Time.Before(other.Time) }

// PaperTimeLayout is the paper's year-month-day-hour-minute timestamp
// format (e.g. 201003121210).
const PaperTimeLayout = "200601021504"

// ParsePaperTime reads a Figure 4 timestamp.
func ParsePaperTime(s string) (time.Time, error) {
	t, err := time.Parse(PaperTimeLayout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("audit: bad timestamp %q: %w", s, err)
	}
	return t, nil
}

// Trail is a chronologically ordered sequence of entries
// (Definition 5). Construct with NewTrail (which sorts) or maintain
// order through Append.
type Trail struct {
	entries []Entry
}

// NewTrail builds a trail from entries, sorting them chronologically
// (stable, so same-timestamp entries keep their given order — the paper
// itself logs two same-minute entries in Figure 4).
func NewTrail(entries []Entry) *Trail {
	t := &Trail{entries: append([]Entry(nil), entries...)}
	sort.SliceStable(t.entries, func(i, j int) bool {
		return t.entries[i].Time.Before(t.entries[j].Time)
	})
	return t
}

// Append adds an entry, which must not be earlier than the last one.
func (t *Trail) Append(e Entry) error {
	if n := len(t.entries); n > 0 && e.Time.Before(t.entries[n-1].Time) {
		return fmt.Errorf("audit: entry at %s is earlier than trail tail %s",
			e.Time.Format(PaperTimeLayout), t.entries[n-1].Time.Format(PaperTimeLayout))
	}
	t.entries = append(t.entries, e)
	return nil
}

// Len returns the number of entries.
func (t *Trail) Len() int { return len(t.entries) }

// At returns the i-th entry in chronological order.
func (t *Trail) At(i int) Entry { return t.entries[i] }

// Entries returns a copy of the entries in chronological order.
func (t *Trail) Entries() []Entry { return append([]Entry(nil), t.entries...) }

// View returns the entries without copying. The caller must treat the
// slice as read-only; it is invalidated by Append. Replay loops use it
// so that scanning a long case is not dominated by the defensive copy
// Entries makes.
func (t *Trail) View() []Entry { return t.entries }

// Cases returns the distinct case identifiers in order of first
// appearance.
func (t *Trail) Cases() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range t.entries {
		if !seen[e.Case] {
			seen[e.Case] = true
			out = append(out, e.Case)
		}
	}
	return out
}

// ByCase returns the sub-trail of one process instance, preserving
// order. This is the slice Algorithm 1 replays: "for each case in which
// the object under investigation was accessed, we determine if the
// portion of the audit trail related to that case is a valid execution"
// (Section 4).
func (t *Trail) ByCase(caseID string) *Trail {
	n := 0
	for _, e := range t.entries {
		if e.Case == caseID {
			n++
		}
	}
	// Single-case trails (the per-case replay loop's common shape) are
	// returned as-is: copying thousands of entries per check would
	// dominate the replay itself.
	if n == len(t.entries) {
		return t
	}
	out := make([]Entry, 0, n)
	for _, e := range t.entries {
		if e.Case == caseID {
			out = append(out, e)
		}
	}
	return &Trail{entries: out}
}

// TouchingObject returns the case identifiers under which the given
// object (or a sub-resource of it) was accessed — the starting point of
// a per-object investigation.
func (t *Trail) TouchingObject(o policy.Object) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range t.entries {
		if o.Covers(e.Object) && !seen[e.Case] {
			seen[e.Case] = true
			out = append(out, e.Case)
		}
	}
	return out
}

// ByUser returns the sub-trail of one user's actions.
func (t *Trail) ByUser(user string) *Trail {
	var out []Entry
	for _, e := range t.entries {
		if e.User == user {
			out = append(out, e)
		}
	}
	return &Trail{entries: out}
}

// Window returns the sub-trail with from ≤ time < to.
func (t *Trail) Window(from, to time.Time) *Trail {
	var out []Entry
	for _, e := range t.entries {
		if !e.Time.Before(from) && e.Time.Before(to) {
			out = append(out, e)
		}
	}
	return &Trail{entries: out}
}
