package audit

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/policy"
)

// TestTrailSortProperties: NewTrail is a chronological sort that (a) is
// idempotent, (b) is permutation-invariant in its multiset of entries,
// and (c) preserves the relative order of equal-timestamp entries
// (stability — the paper's Figure 4 has same-minute rows whose order
// matters).
func TestTrailSortProperties(t *testing.T) {
	gen := func(seed int64, n uint8) []Entry {
		rng := rand.New(rand.NewSource(seed))
		base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		out := make([]Entry, int(n%20)+1)
		for i := range out {
			out[i] = Entry{
				User: "u", Role: "r", Action: "read",
				Object: policy.Object{Subject: "S", Path: []string{"O"}},
				Task:   "T", Case: "C",
				// Few distinct timestamps => plenty of ties.
				Time: base.Add(time.Duration(rng.Intn(4)) * time.Minute),
			}
		}
		return out
	}

	sortedProp := func(seed int64, n uint8) bool {
		tr := NewTrail(gen(seed, n))
		for i := 1; i < tr.Len(); i++ {
			if tr.At(i).Time.Before(tr.At(i - 1).Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(sortedProp, nil); err != nil {
		t.Errorf("sortedness: %v", err)
	}

	idempotent := func(seed int64, n uint8) bool {
		tr := NewTrail(gen(seed, n))
		re := NewTrail(tr.Entries())
		if re.Len() != tr.Len() {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			if !re.At(i).Time.Equal(tr.At(i).Time) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("idempotence: %v", err)
	}
}

// TestTrailStability: same-timestamp entries keep their input order.
func TestTrailStability(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(user string, min int) Entry {
		return Entry{User: user, Time: base.Add(time.Duration(min) * time.Minute)}
	}
	tr := NewTrail([]Entry{mk("a", 1), mk("b", 0), mk("c", 1), mk("d", 1)})
	got := ""
	for i := 0; i < tr.Len(); i++ {
		got += tr.At(i).User
	}
	if got != "bacd" {
		t.Fatalf("stability broken: %q, want bacd", got)
	}
}

// TestSecureLogDeterminism: the same entry sequence under the same key
// seals identically (needed for replicated verification).
func TestSecureLogDeterminism(t *testing.T) {
	prop := func(users []string) bool {
		if len(users) > 16 {
			users = users[:16]
		}
		base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		build := func() []SealedEntry {
			l := NewSecureLog([]byte("k"))
			for i, u := range users {
				l.Append(Entry{User: u, Time: base.Add(time.Duration(i) * time.Second)})
			}
			return l.Entries()
		}
		a, b := build(), build()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Chain != b[i].Chain || a[i].Seal != b[i].Seal {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Errorf("determinism: %v", err)
	}
}

// TestCanonicalSerializationInjective: entries differing in any field
// have different canonical serializations (no field-boundary confusion).
func TestCanonicalSerializationInjective(t *testing.T) {
	base := Entry{
		User: "ab", Role: "c", Action: "read",
		Object: policy.Object{Subject: "S", Path: []string{"O"}},
		Task:   "T", Case: "C",
		Time: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
	}
	// The classic splice attack: move a character across a field
	// boundary.
	spliced := base
	spliced.User, spliced.Role = "a", "bc"
	if string(CanonicalEntry(base)) == string(CanonicalEntry(spliced)) {
		t.Fatalf("field boundaries not protected")
	}
	other := base
	other.Status = Failure
	if string(CanonicalEntry(base)) == string(CanonicalEntry(other)) {
		t.Fatalf("status not covered")
	}
}
