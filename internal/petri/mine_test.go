package petri

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/workload"
)

func logOf(traces ...[]string) *Log { return &Log{Traces: traces} }

func TestAlphaLinear(t *testing.T) {
	l := logOf([]string{"A", "B", "C"}, []string{"A", "B", "C"})
	net, err := Alpha(l)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replayer{Net: net}
	res, err := r.ReplayEvents("c1", []string{"A", "B", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged() || res.Remaining != 0 {
		t.Fatalf("mined net rejects its own log: %+v", res)
	}
	// Deviations from the mined model are flagged.
	res, err = r.ReplayEvents("c2", []string{"B", "A", "C"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("mined net accepted a reordered trace: %+v", res)
	}
}

func TestAlphaChoice(t *testing.T) {
	l := logOf(
		[]string{"A", "B", "D"},
		[]string{"A", "C", "D"},
	)
	net, err := Alpha(l)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replayer{Net: net}
	for _, tr := range l.Traces {
		res, err := r.ReplayEvents("c", tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged() {
			t.Fatalf("mined net rejects %v: %+v", tr, res)
		}
	}
	// Both branches in one trace: rejected (the choice place holds one
	// token).
	res, err := r.ReplayEvents("c", []string{"A", "B", "C", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("mined choice not exclusive: %+v", res)
	}
}

func TestAlphaParallel(t *testing.T) {
	l := logOf(
		[]string{"A", "B", "C", "D"},
		[]string{"A", "C", "B", "D"},
	)
	net, err := Alpha(l)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replayer{Net: net}
	for _, tr := range [][]string{{"A", "B", "C", "D"}, {"A", "C", "B", "D"}} {
		res, err := r.ReplayEvents("c", tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged() {
			t.Fatalf("mined net rejects interleaving %v: %+v", tr, res)
		}
	}
	// Skipping a parallel branch leaves the join starved.
	res, err := r.ReplayEvents("c", []string{"A", "B", "D"})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("mined parallel join not synchronizing: %+v", res)
	}
}

func TestAlphaEmptyLog(t *testing.T) {
	if _, err := Alpha(&Log{}); err == nil {
		t.Fatalf("empty log accepted")
	}
}

// TestAlphaOnSimulatedWorkload mines a model from simulated trails of a
// generated process and verifies the mined net replays the very log it
// was mined from (the Alpha fitness guarantee on its own input, for
// structured logs).
func TestAlphaOnSimulatedWorkload(t *testing.T) {
	proc := workload.MustGenerate(workload.ProcParams{
		Name: "Mined", Seed: 4, Tasks: 8, Pools: 1,
		TaskWeight: 5, XORWeight: 2, ANDWeight: 1,
		MaxBranch: 2, MaxDepth: 2,
	})
	reg := core.NewRegistry()
	reg.MustRegister(proc, "MN")
	params := workload.DefaultTrailParams(6, 12, "MN")
	params.ActionsPerTask = 1
	trail, err := workload.NewSimulator(reg, params).Generate()
	if err != nil {
		t.Fatal(err)
	}
	l := LogFromTrail(trail)
	net, err := Alpha(l)
	if err != nil {
		t.Fatal(err)
	}
	r := &Replayer{Net: net}
	misses := 0
	for _, tr := range l.Traces {
		res, err := r.ReplayEvents("c", tr)
		if err != nil {
			t.Fatal(err)
		}
		if res.Missing > 0 || !res.Fitting {
			misses++
		}
	}
	// Alpha reconstructs structured (loop-free, OR-free) behavior; the
	// generator can emit constructs outside its class, so allow a small
	// miss rate rather than exact refit.
	if misses*4 > len(l.Traces) {
		t.Fatalf("mined net misses %d of %d traces", misses, len(l.Traces))
	}
}

// TestDriftDetection: a log in which nobody ever runs the counter-
// indication check shows up as structural drift against Fig. 1.
func TestDriftDetection(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	l := LogFromTrail(sc.Trail.ByCase("HT-1"))
	rep := Drift(l, sc.Treatment.Tasks())
	// HT-1 never ordered lab tests: T08 and the lab tasks never ran.
	want := map[string]bool{"T08": true, "T13": true, "T14": true, "T15": true}
	for _, task := range rep.NeverExecuted {
		delete(want, task)
	}
	if len(want) != 0 {
		t.Fatalf("drift misses %v (got %v)", want, rep.NeverExecuted)
	}
	if len(rep.Unknown) != 0 {
		t.Fatalf("unexpected unknown tasks %v", rep.Unknown)
	}
	// A log with an off-process task surfaces it.
	l2 := &Log{Traces: [][]string{{"T01", "T99"}}}
	rep = Drift(l2, sc.Treatment.Tasks())
	if len(rep.Unknown) != 1 || rep.Unknown[0] != "T99" {
		t.Fatalf("unknown = %v", rep.Unknown)
	}
}
