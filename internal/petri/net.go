// Package petri implements the comparison baseline of the paper's
// Section 6: Petri-net-based conformance checking ("token replay"
// fitness, Rozinat & van der Aalst [13]). The paper argues such
// techniques (a) only see events that name model activities — so they
// cannot check roles, objects, actions or purposes — and (b) capture
// BPMN imprecisely (inclusive joins in particular). This package exists
// to make those claims measurable: internal/bpmn processes are mapped to
// labeled Petri nets, trails are replayed, and the P5 experiments
// compare detection capability and cost against Algorithm 1.
package petri

import (
	"fmt"
	"sort"
	"strings"
)

// Place is a Petri net place, identified by name.
type Place string

// Transition is a Petri net transition: consumes one token from each
// input place, produces one on each output place. A transition with an
// empty Label is invisible (τ): it represents routing (gateways, events,
// message flows) that never appears in logs.
type Transition struct {
	Name  string
	Label string // task id; "" for τ
	In    []Place
	Out   []Place
}

// Net is a labeled Petri net with an initial marking.
type Net struct {
	Places      []Place
	Transitions []*Transition
	Initial     Marking

	byLabel map[string][]*Transition
}

// Marking is a multiset of tokens by place.
type Marking map[Place]int

// Clone copies the marking.
func (m Marking) Clone() Marking {
	out := make(Marking, len(m))
	for p, n := range m {
		if n != 0 {
			out[p] = n
		}
	}
	return out
}

// Tokens returns the total token count.
func (m Marking) Tokens() int {
	n := 0
	for _, k := range m {
		n += k
	}
	return n
}

// String renders the marking deterministically.
func (m Marking) String() string {
	var keys []string
	for p, n := range m {
		if n > 0 {
			keys = append(keys, fmt.Sprintf("%s:%d", p, n))
		}
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ",") + "}"
}

// NewNet builds a net and indexes transitions by label.
func NewNet(places []Place, transitions []*Transition, initial Marking) (*Net, error) {
	n := &Net{Places: places, Transitions: transitions, Initial: initial, byLabel: map[string][]*Transition{}}
	known := map[Place]bool{}
	for _, p := range places {
		if known[p] {
			return nil, fmt.Errorf("petri: duplicate place %q", p)
		}
		known[p] = true
	}
	names := map[string]bool{}
	for _, t := range transitions {
		if names[t.Name] {
			return nil, fmt.Errorf("petri: duplicate transition %q", t.Name)
		}
		names[t.Name] = true
		for _, p := range append(append([]Place{}, t.In...), t.Out...) {
			if !known[p] {
				return nil, fmt.Errorf("petri: transition %q references unknown place %q", t.Name, p)
			}
		}
		n.byLabel[t.Label] = append(n.byLabel[t.Label], t)
	}
	for p := range initial {
		if !known[p] {
			return nil, fmt.Errorf("petri: initial marking references unknown place %q", p)
		}
	}
	return n, nil
}

// Labeled returns the transitions carrying the given (non-τ) label.
func (n *Net) Labeled(label string) []*Transition { return n.byLabel[label] }

// Silent returns the τ transitions.
func (n *Net) Silent() []*Transition { return n.byLabel[""] }

// Enabled reports whether t can fire under m.
func Enabled(m Marking, t *Transition) bool {
	need := map[Place]int{}
	for _, p := range t.In {
		need[p]++
	}
	for p, k := range need {
		if m[p] < k {
			return false
		}
	}
	return true
}

// Fire fires t under m, forcing missing tokens into existence when
// force is set (token replay's "missing token" accounting). It returns
// the new marking and how many tokens were missing.
func Fire(m Marking, t *Transition, force bool) (Marking, int) {
	out := m.Clone()
	missing := 0
	for _, p := range t.In {
		if out[p] > 0 {
			out[p]--
			if out[p] == 0 {
				delete(out, p)
			}
		} else if force {
			missing++
		} else {
			return nil, 0
		}
	}
	for _, p := range t.Out {
		out[p]++
	}
	return out, missing
}
