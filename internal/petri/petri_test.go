package petri

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/hospital"
	"repro/internal/policy"
)

func trailOf(caseID string, steps ...string) *audit.Trail {
	var entries []audit.Entry
	for i, s := range steps {
		role, task, _ := strings.Cut(s, ":")
		e := audit.Entry{
			User: "u", Role: role, Action: "read",
			Object: policy.MustParseObject("[P1]EPR"),
			Task:   task, Case: caseID,
			Time:   time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
			Status: audit.Success,
		}
		if strings.HasPrefix(task, "!") {
			e.Task = strings.TrimPrefix(task, "!")
			e.Status = audit.Failure
			e.Object = policy.Object{}
		}
		entries = append(entries, e)
	}
	return audit.NewTrail(entries)
}

func netOf(t *testing.T, p *bpmn.Process) *Replayer {
	t.Helper()
	n, err := FromBPMN(p)
	if err != nil {
		t.Fatalf("FromBPMN: %v", err)
	}
	return &Replayer{Net: n}
}

func TestNetBasics(t *testing.T) {
	n, err := NewNet(
		[]Place{"a", "b"},
		[]*Transition{{Name: "t", Label: "T", In: []Place{"a"}, Out: []Place{"b"}}},
		Marking{"a": 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Labeled("T")) != 1 || len(n.Silent()) != 0 {
		t.Fatalf("indexing broken")
	}
	m := n.Initial.Clone()
	if !Enabled(m, n.Transitions[0]) {
		t.Fatalf("t should be enabled")
	}
	m2, missing := Fire(m, n.Transitions[0], false)
	if missing != 0 || m2["b"] != 1 || m2["a"] != 0 {
		t.Fatalf("fire result %v", m2)
	}
	if Enabled(m2, n.Transitions[0]) {
		t.Fatalf("t should be disabled after firing")
	}
	_, missing = Fire(m2, n.Transitions[0], true)
	if missing != 1 {
		t.Fatalf("forced fire missing = %d", missing)
	}
	if m["a"] != 1 {
		t.Fatalf("Fire mutated its input marking")
	}
}

func TestNetValidation(t *testing.T) {
	if _, err := NewNet([]Place{"a", "a"}, nil, nil); err == nil {
		t.Fatalf("duplicate place accepted")
	}
	if _, err := NewNet([]Place{"a"}, []*Transition{
		{Name: "t", In: []Place{"zz"}},
	}, nil); err == nil {
		t.Fatalf("unknown place accepted")
	}
	if _, err := NewNet([]Place{"a"}, []*Transition{
		{Name: "t", In: []Place{"a"}}, {Name: "t", In: []Place{"a"}},
	}, nil); err == nil {
		t.Fatalf("duplicate transition accepted")
	}
	if _, err := NewNet([]Place{"a"}, nil, Marking{"zz": 1}); err == nil {
		t.Fatalf("bad initial marking accepted")
	}
}

func TestReplayLinearFit(t *testing.T) {
	p := bpmn.NewBuilder("Linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	r := netOf(t, p)

	res, err := r.ReplayCase(trailOf("LN-1", "P:T1", "P:T2"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness() != 1 || res.Flagged() || res.Remaining != 0 {
		t.Fatalf("fit trace: %+v fitness=%v", res, res.Fitness())
	}

	// Skipping T1 forces missing tokens.
	res, err = r.ReplayCase(trailOf("LN-1", "P:T2"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() || res.Missing == 0 || res.Fitness() >= 1 {
		t.Fatalf("skip not flagged: %+v", res)
	}

	// An unknown task is an unknown event.
	res, err = r.ReplayCase(trailOf("LN-1", "P:T1", "P:T9"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() || res.UnknownEvents != 1 {
		t.Fatalf("unknown event: %+v", res)
	}

	// Prefixes leave remaining tokens but are not flagged (the
	// baseline cannot tell pending from abandoned).
	res, err = r.ReplayCase(trailOf("LN-1", "P:T1"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged() || res.Remaining == 0 {
		t.Fatalf("prefix: %+v", res)
	}
}

func TestReplayCollapsesInTaskActions(t *testing.T) {
	p := bpmn.NewBuilder("Linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	r := netOf(t, p)
	res, err := r.ReplayCase(trailOf("LN-1", "P:T1", "P:T1", "P:T1", "P:T2"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != 2 || res.Flagged() {
		t.Fatalf("collapse: %+v", res)
	}
}

func TestReplayXORAndError(t *testing.T) {
	p := bpmn.NewBuilder("Branchy").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		FallibleTask("T1", "P", "", "T0").Task("T2", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").MustBuild()
	r := netOf(t, p)

	for _, steps := range [][]string{
		{"P:T0", "P:T1"},
		{"P:T0", "P:T2"},
		{"P:T0", "P:T1", "P:!T1", "P:T0", "P:T2"},
	} {
		res, err := r.ReplayCase(trailOf("B-1", steps...), "B-1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged() {
			t.Fatalf("%v flagged: %+v", steps, res)
		}
	}
	// Both XOR branches: second one is missing its token.
	res, err := r.ReplayCase(trailOf("B-1", "P:T0", "P:T1", "P:T2"), "B-1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("double branch not flagged: %+v", res)
	}
}

// TestBlindToRolesAndObjects demonstrates the paper's Section 6
// argument: conformance checking sees task names only, so a wrong-role
// execution replays with perfect fitness.
func TestBlindToRolesAndObjects(t *testing.T) {
	p := bpmn.NewBuilder("Linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
	r := netOf(t, p)
	// "Mallory:T1" — wrong role, right control flow.
	res, err := r.ReplayCase(trailOf("LN-1", "Mallory:T1", "Mallory:T2"), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged() || res.Fitness() != 1 {
		t.Fatalf("token replay should be blind to roles: %+v", res)
	}
}

// TestORJoinLocality demonstrates the mapping's inherent OR-join
// imprecision (Section 6): the Petri net accepts T1;T3 even when the
// split chose both branches — because the join decides locally — while
// the COWS encoding's plan handshake rejects exactly that execution.
func TestORJoinLocality(t *testing.T) {
	p := bpmn.NewBuilder("Incl").Pool("P").
		Start("S", "P").OR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").MustBuild()
	r := netOf(t, p)

	// T1, T3, then T2: Algorithm 1 rejects (see core's
	// TestCheckORSubsets); token replay needs the net to have chosen
	// {T1,T2} to fire T2 at all — and its local join lets T3 pass
	// first. The search finds such a path, so nothing is flagged.
	res, err := r.ReplayCase(trailOf("IN-1", "P:T1", "P:T3", "P:T2"), "IN-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Flagged() || res.Missing > 0 {
		t.Fatalf("expected the local join to let the invalid execution pass, got %+v", res)
	}

	// Valid subset executions still fit exactly.
	for _, steps := range [][]string{
		{"P:T1", "P:T3"},
		{"P:T2", "P:T3"},
		{"P:T1", "P:T2", "P:T3"},
		{"P:T2", "P:T1", "P:T3"},
	} {
		res, err := r.ReplayCase(trailOf("IN-1", steps...), "IN-1")
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged() {
			t.Fatalf("valid %v flagged: %+v", steps, res)
		}
	}
}

// TestHospitalHT1Fitness replays the paper's HT-1 on the treatment
// process net: perfect fitness, complete.
func TestHospitalHT1Fitness(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	r := netOf(t, sc.Treatment)
	res, err := r.ReplayCase(sc.Trail, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Fitness() != 1 || res.Flagged() {
		t.Fatalf("HT-1: %+v fitness=%v", res, res.Fitness())
	}
	if res.Remaining != 0 {
		t.Fatalf("HT-1 should drain to completion: %+v", res)
	}

	// HT-11 (mid-process start): flagged via missing tokens — token
	// replay does catch pure control-flow violations.
	res, err = r.ReplayCase(sc.Trail, "HT-11")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Flagged() {
		t.Fatalf("HT-11 not flagged: %+v", res)
	}

	// Whole-trail replay works per case.
	results, err := r.ReplayTrail(sc.Trail)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sc.Trail.Cases()) {
		t.Fatalf("replayed %d cases, want %d", len(results), len(sc.Trail.Cases()))
	}
}
