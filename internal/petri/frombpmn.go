package petri

import (
	"fmt"

	"repro/internal/bpmn"
)

// FromBPMN maps a validated BPMN process onto a labeled Petri net, in
// the style conformance-checking tools assume (paper Section 6, [13]):
//
//   - every flow (sequence or message) becomes a place;
//   - tasks become labeled transitions (one per incoming flow — the
//     implicit exclusive merge);
//   - fallible tasks split into task transition → done-place, a τ to the
//     normal flow and an "Err:<task>" transition to the handler;
//   - XOR gateways become one τ per (in,out) routing; AND gateways a
//     single synchronizing τ; OR splits one τ per branch subset.
//
// The inclusive JOIN is where the mapping is necessarily lossy, as the
// paper notes: a Petri net join decides locally, one τ per subset of its
// inputs, without knowing which subset the split actually activated. A
// net may therefore fire the join after a strict subset of the chosen
// branches — executions Algorithm 1 correctly rejects. TestORJoinLocality
// demonstrates the gap.
func FromBPMN(p *bpmn.Process) (*Net, error) {
	var places []Place
	var transitions []*Transition
	initial := Marking{}

	flowPlace := func(f bpmn.Flow) Place {
		return Place("f_" + f.From + ">" + f.To)
	}
	addPlace := func(pl Place) Place {
		places = append(places, pl)
		return pl
	}
	for _, f := range p.Flows() {
		addPlace(flowPlace(f))
	}

	// Error-edge places, keyed by failing task.
	errPlace := map[string]Place{}
	for _, e := range p.Elements() {
		if e.Kind == bpmn.KindTask && e.OnError != "" {
			errPlace[e.ID] = addPlace(Place("err_" + e.ID))
		}
	}

	tcount := 0
	add := func(label string, in, out []Place) {
		tcount++
		transitions = append(transitions, &Transition{
			Name:  fmt.Sprintf("t%d_%s", tcount, label),
			Label: label,
			In:    in,
			Out:   out,
		})
	}
	inPlaces := func(id string) []Place {
		var out []Place
		for _, f := range p.Incoming(id) {
			out = append(out, flowPlace(f))
		}
		if ep, ok := taskErrInputs(p, id, errPlace); ok {
			out = append(out, ep...)
		}
		return out
	}
	outPlaces := func(id string) []Place {
		var out []Place
		for _, f := range p.Outgoing(id) {
			out = append(out, flowPlace(f))
		}
		return out
	}

	for _, e := range p.Elements() {
		ins, outs := inPlaces(e.ID), outPlaces(e.ID)
		switch e.Kind {
		case bpmn.KindStart:
			start := addPlace(Place("start_" + e.ID))
			initial[start] = 1
			add("", []Place{start}, outs)
		case bpmn.KindMessageStart:
			for _, in := range ins {
				add("", []Place{in}, outs)
			}
		case bpmn.KindEnd, bpmn.KindMessageEnd:
			for _, in := range ins {
				add("", []Place{in}, outs)
			}
		case bpmn.KindTask:
			if e.OnError == "" {
				for _, in := range ins {
					add(e.ID, []Place{in}, outs)
				}
				continue
			}
			done := addPlace(Place("done_" + e.ID))
			for _, in := range ins {
				add(e.ID, []Place{in}, []Place{done})
			}
			add("", []Place{done}, outs)
			add("Err:"+e.ID, []Place{done}, []Place{errPlace[e.ID]})
		case bpmn.KindGatewayXOR:
			for _, in := range ins {
				for _, out := range outs {
					add("", []Place{in}, []Place{out})
				}
			}
		case bpmn.KindGatewayAND:
			add("", ins, outs)
		case bpmn.KindGatewayOR:
			if p.IsORJoin(e.ID) {
				// Local-choice join: one τ per non-empty input
				// subset (the lossy part).
				for mask := 1; mask < (1 << len(ins)); mask++ {
					var sel []Place
					for i, in := range ins {
						if mask&(1<<i) != 0 {
							sel = append(sel, in)
						}
					}
					add("", sel, outs)
				}
			} else {
				for mask := 1; mask < (1 << len(outs)); mask++ {
					var sel []Place
					for i, out := range outs {
						if mask&(1<<i) != 0 {
							sel = append(sel, out)
						}
					}
					add("", ins, sel)
				}
			}
		}
	}
	return NewNet(places, transitions, initial)
}

// taskErrInputs returns the error places feeding element id (the error
// handlers' extra inputs).
func taskErrInputs(p *bpmn.Process, id string, errPlace map[string]Place) ([]Place, bool) {
	var out []Place
	for _, e := range p.Elements() {
		if e.Kind == bpmn.KindTask && e.OnError == id {
			out = append(out, errPlace[e.ID])
		}
	}
	return out, len(out) > 0
}
