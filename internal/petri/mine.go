package petri

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/audit"
)

// Workflow mining after van der Aalst, Weijters & Maruster — the
// paper's reference [33]. The Alpha algorithm discovers a Petri net
// from an event log: it computes the directly-follows footprint of the
// log and synthesizes a place for every maximal pair of task sets (A,B)
// where every a∈A causally precedes every b∈B and neither side
// self-follows.
//
// For purpose control this closes a loop the paper leaves implicit: an
// auditor can mine the de-facto process from the audit database and
// compare it against the de-jure process the organization registered —
// systematic drift (everybody skips the check task) shows up as a
// structural difference before any single case is flagged.

// Log is a task-level event log: one task sequence per case, in
// chronological order with in-task repetitions collapsed (the same
// projection token replay uses).
type Log struct {
	Traces [][]string
}

// LogFromTrail projects a trail onto task sequences per case, dropping
// failure entries (the Alpha algorithm has no error-event notion).
func LogFromTrail(trail *audit.Trail) *Log {
	l := &Log{}
	for _, caseID := range trail.Cases() {
		var seq []string
		prev := ""
		for _, e := range trail.ByCase(caseID).Entries() {
			if e.Status == audit.Failure {
				prev = ""
				continue
			}
			if e.Task == prev {
				continue
			}
			seq = append(seq, e.Task)
			prev = e.Task
		}
		if len(seq) > 0 {
			l.Traces = append(l.Traces, seq)
		}
	}
	return l
}

// footprint holds the Alpha relations.
type footprint struct {
	tasks   []string
	follows map[[2]string]bool // a >W b
}

func (l *Log) footprint() *footprint {
	fp := &footprint{follows: map[[2]string]bool{}}
	seen := map[string]bool{}
	for _, tr := range l.Traces {
		for i, t := range tr {
			if !seen[t] {
				seen[t] = true
				fp.tasks = append(fp.tasks, t)
			}
			if i+1 < len(tr) {
				fp.follows[[2]string{t, tr[i+1]}] = true
			}
		}
	}
	sort.Strings(fp.tasks)
	return fp
}

// causal reports a →W b: a >W b and not b >W a.
func (fp *footprint) causal(a, b string) bool {
	return fp.follows[[2]string{a, b}] && !fp.follows[[2]string{b, a}]
}

// unrelated reports a #W b: neither follows the other.
func (fp *footprint) unrelated(a, b string) bool {
	return !fp.follows[[2]string{a, b}] && !fp.follows[[2]string{b, a}]
}

// Alpha runs the Alpha algorithm and returns the discovered net. Tasks
// become labeled transitions; discovered places wire them; artificial
// source/sink places mark the start/end tasks.
func Alpha(l *Log) (*Net, error) {
	if len(l.Traces) == 0 {
		return nil, fmt.Errorf("petri: empty log")
	}
	fp := l.footprint()

	starts := map[string]bool{}
	ends := map[string]bool{}
	for _, tr := range l.Traces {
		starts[tr[0]] = true
		ends[tr[len(tr)-1]] = true
	}

	// Candidate pairs (A, B): every a→b causal, A pairwise unrelated,
	// B pairwise unrelated. Enumerate maximal pairs by growing from
	// causal seeds (the standard set-cover formulation, fine at audit
	// scale where processes have tens of tasks).
	type pair struct{ a, b []string }
	var pairs []pair
	var causalPairs [][2]string
	for _, a := range fp.tasks {
		for _, b := range fp.tasks {
			if fp.causal(a, b) {
				causalPairs = append(causalPairs, [2]string{a, b})
			}
		}
	}
	valid := func(A, B []string) bool {
		for _, a := range A {
			for _, b := range B {
				if !fp.causal(a, b) {
					return false
				}
			}
		}
		for i := range A {
			for j := i + 1; j < len(A); j++ {
				if !fp.unrelated(A[i], A[j]) {
					return false
				}
			}
		}
		for i := range B {
			for j := i + 1; j < len(B); j++ {
				if !fp.unrelated(B[i], B[j]) {
					return false
				}
			}
		}
		return true
	}
	// Grow each seed to a locally-maximal pair (deterministic order).
	for _, seed := range causalPairs {
		A, B := []string{seed[0]}, []string{seed[1]}
		for _, t := range fp.tasks {
			if !contains(A, t) && valid(append(append([]string{}, A...), t), B) {
				A = append(A, t)
				sort.Strings(A)
			}
		}
		for _, t := range fp.tasks {
			if !contains(B, t) && valid(A, append(append([]string{}, B...), t)) {
				B = append(B, t)
				sort.Strings(B)
			}
		}
		pairs = append(pairs, pair{a: A, b: B})
	}
	// Keep only maximal pairs, dedup.
	keyOf := func(p pair) string {
		return strings.Join(p.a, ",") + "|" + strings.Join(p.b, ",")
	}
	subsumed := func(p, q pair) bool { // p ⊂ q
		return subset(p.a, q.a) && subset(p.b, q.b) && keyOf(p) != keyOf(q)
	}
	var maximal []pair
	seenPair := map[string]bool{}
	for _, p := range pairs {
		dominated := false
		for _, q := range pairs {
			if subsumed(p, q) {
				dominated = true
				break
			}
		}
		if dominated || seenPair[keyOf(p)] {
			continue
		}
		seenPair[keyOf(p)] = true
		maximal = append(maximal, p)
	}
	sort.Slice(maximal, func(i, j int) bool { return keyOf(maximal[i]) < keyOf(maximal[j]) })

	// Assemble the net.
	var places []Place
	trans := map[string]*Transition{}
	for _, t := range fp.tasks {
		trans[t] = &Transition{Name: "t_" + t, Label: t}
	}
	source, sink := Place("p_source"), Place("p_sink")
	places = append(places, source, sink)
	for _, t := range fp.tasks {
		if starts[t] {
			trans[t].In = append(trans[t].In, source)
		}
		if ends[t] {
			trans[t].Out = append(trans[t].Out, sink)
		}
	}
	for i, p := range maximal {
		pl := Place(fmt.Sprintf("p%d_%s__%s", i, strings.Join(p.a, "_"), strings.Join(p.b, "_")))
		places = append(places, pl)
		for _, a := range p.a {
			trans[a].Out = append(trans[a].Out, pl)
		}
		for _, b := range p.b {
			trans[b].In = append(trans[b].In, pl)
		}
	}
	var tlist []*Transition
	for _, t := range fp.tasks {
		tlist = append(tlist, trans[t])
	}
	// A τ draining the sink: the classic WF-net terminates with one
	// token on the sink place; the replayer's completion accounting
	// (Remaining == 0) expects end events to consume, so give the
	// mined net one.
	tlist = append(tlist, &Transition{Name: "t_end", In: []Place{sink}})
	return NewNet(places, tlist, Marking{source: 1})
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func subset(xs, ys []string) bool {
	for _, x := range xs {
		if !contains(ys, x) {
			return false
		}
	}
	return true
}

// DriftReport compares a mined (de-facto) footprint against the
// registered (de-jure) process's task set: tasks the log never exercises
// and tasks the log contains that the process does not know.
type DriftReport struct {
	// NeverExecuted are process tasks absent from the log.
	NeverExecuted []string
	// Unknown are log tasks absent from the process.
	Unknown []string
}

// Drift computes the task-level drift between a log and a task universe.
func Drift(l *Log, processTasks []string) DriftReport {
	inLog := map[string]bool{}
	for _, tr := range l.Traces {
		for _, t := range tr {
			inLog[t] = true
		}
	}
	known := map[string]bool{}
	var rep DriftReport
	for _, t := range processTasks {
		known[t] = true
		if !inLog[t] {
			rep.NeverExecuted = append(rep.NeverExecuted, t)
		}
	}
	for t := range inLog {
		if !known[t] {
			rep.Unknown = append(rep.Unknown, t)
		}
	}
	sort.Strings(rep.NeverExecuted)
	sort.Strings(rep.Unknown)
	return rep
}
