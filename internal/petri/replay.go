package petri

import (
	"fmt"

	"repro/internal/audit"
)

// Conformance checking after Rozinat & van der Aalst [13], upgraded with
// an alignment-style exact search: a case fits iff SOME resolution of
// the net's invisible (τ) transitions replays all its events without
// missing tokens. Naive greedy τ-resolution commits too early on
// duplicate-enabled or subset gateways and flags valid traces; the
// search removes those false positives. When no fitting path exists, a
// greedy forced replay produces the classic missing/remaining counters:
//
//	fitness = ½(1 − missing/consumed) + ½(1 − remaining/produced)
//
// Note what this baseline inherently cannot see: users, roles, objects,
// actions and purposes — its events carry task names only (paper
// Section 6).

// ReplayResult carries the token-replay counters for one case.
type ReplayResult struct {
	Case string
	// Events is the number of replayed events (after in-task
	// collapsing).
	Events    int
	Produced  int
	Consumed  int
	Missing   int
	Remaining int
	// UnknownEvents counts events whose label has no transition in the
	// net at all (e.g. tasks from another process).
	UnknownEvents int
	// TauFired counts invisible transitions fired along the replay.
	TauFired int
	// SearchStates counts (event, marking) states explored by the
	// exact search — the baseline's cost driver.
	SearchStates int
	// Fitting is true when a zero-missing replay exists.
	Fitting bool
}

// Fitness computes the Rozinat–van der Aalst fitness in [0,1].
func (r *ReplayResult) Fitness() float64 {
	f := 0.0
	if r.Consumed > 0 {
		f += 0.5 * (1 - float64(r.Missing)/float64(r.Consumed))
	} else {
		f += 0.5
	}
	if r.Produced > 0 {
		f += 0.5 * (1 - float64(r.Remaining)/float64(r.Produced))
	} else {
		f += 0.5
	}
	return f
}

// Flagged reports whether the replay found a deviation (no fitting path,
// or events unknown to the net). Remaining tokens alone mean the case is
// mid-flight, which conformance checking cannot distinguish from
// abandonment, so they do not flag.
func (r *ReplayResult) Flagged() bool { return !r.Fitting || r.UnknownEvents > 0 }

// MaxSearchStates bounds the exact search per case.
const MaxSearchStates = 200000

// Replayer replays case slices of trails on a net.
type Replayer struct {
	Net *Net
}

// EventsOf projects a case's entries onto the event labels token replay
// understands: the task for successes, "Err:<task>" for failures, with
// consecutive same-task successes collapsed (conformance checking has no
// notion of multiple actions within one task; without collapsing, every
// multi-action task would be a false deviation).
func EventsOf(entries []audit.Entry) []string {
	var out []string
	prevTask := ""
	for _, e := range entries {
		if e.Status == audit.Failure {
			out = append(out, "Err:"+e.Task)
			prevTask = ""
			continue
		}
		if e.Task == prevTask {
			continue
		}
		out = append(out, e.Task)
		prevTask = e.Task
	}
	return out
}

// ReplayCase replays one case of the trail.
func (r *Replayer) ReplayCase(trail *audit.Trail, caseID string) (*ReplayResult, error) {
	return r.ReplayEvents(caseID, EventsOf(trail.ByCase(caseID).Entries()))
}

// ReplayEvents replays a prepared event sequence.
func (r *Replayer) ReplayEvents(caseID string, events []string) (*ReplayResult, error) {
	res := &ReplayResult{Case: caseID, Events: len(events)}

	// Drop events the net has no transitions for; they can never be
	// replayed and would otherwise poison the search.
	known := make([]string, 0, len(events))
	for _, ev := range events {
		if len(r.Net.Labeled(ev)) == 0 {
			res.UnknownEvents++
			continue
		}
		known = append(known, ev)
	}

	if ok := r.exactReplay(known, res, false); ok {
		res.Fitting = true
		if res.Remaining > 0 {
			// The first fitting path may strand tokens (e.g. an OR
			// split over-approximated the chosen subset); prefer a
			// properly completing path when one exists.
			clean := &ReplayResult{Case: res.Case, Events: res.Events, UnknownEvents: res.UnknownEvents}
			if r.exactReplay(known, clean, true) {
				clean.Fitting = true
				clean.SearchStates += res.SearchStates
				*res = *clean
			}
		}
		return res, nil
	}
	r.greedyReplay(known, res)
	return res, nil
}

// pathNode is one state of the exact search.
type pathNode struct {
	idx      int
	m        Marking
	produced int
	consumed int
	taus     int
}

// exactReplay searches for a τ-resolution that replays all events with
// no missing tokens, filling the result's counters from the found path.
// With requireClean set, only paths whose drained final marking is empty
// (proper completion) count as success.
func (r *Replayer) exactReplay(events []string, res *ReplayResult, requireClean bool) bool {
	start := pathNode{m: r.Net.Initial.Clone(), produced: r.Net.Initial.Tokens()}
	stack := []pathNode{start}
	visited := map[string]bool{}

	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := fmt.Sprintf("%d|%s", cur.idx, cur.m.String())
		if visited[key] {
			continue
		}
		visited[key] = true
		res.SearchStates++
		if res.SearchStates > MaxSearchStates {
			return false
		}

		if cur.idx == len(events) {
			final := r.drain(cur.m)
			if requireClean && final.Tokens() != 0 {
				continue
			}
			res.Produced = cur.produced
			res.Consumed = cur.consumed
			res.Missing = 0
			res.Remaining = final.Tokens()
			res.TauFired = cur.taus
			return true
		}

		// Advance on the event's transitions.
		for _, t := range r.Net.Labeled(events[cur.idx]) {
			if !Enabled(cur.m, t) {
				continue
			}
			next, _ := Fire(cur.m, t, false)
			stack = append(stack, pathNode{
				idx: cur.idx + 1, m: next,
				produced: cur.produced + len(t.Out),
				consumed: cur.consumed + len(t.In),
				taus:     cur.taus,
			})
		}
		// Or fire a τ.
		for _, tau := range r.Net.Silent() {
			if !Enabled(cur.m, tau) {
				continue
			}
			next, _ := Fire(cur.m, tau, false)
			stack = append(stack, pathNode{
				idx: cur.idx, m: next,
				produced: cur.produced + len(tau.Out),
				consumed: cur.consumed + len(tau.In),
				taus:     cur.taus + 1,
			})
		}
	}
	return false
}

// greedyReplay is the classic forced replay, used for deviation
// accounting once the exact search has established there is no fitting
// path: per event, enable via a shortest τ sequence if possible,
// otherwise force the firing and count the missing tokens.
func (r *Replayer) greedyReplay(events []string, res *ReplayResult) {
	m := r.Net.Initial.Clone()
	res.Produced = m.Tokens()
	res.Consumed = 0
	res.Missing = 0
	res.TauFired = 0

	for _, ev := range events {
		cands := r.Net.Labeled(ev)
		m2, t, cost, ok := r.enable(m, cands)
		if ok {
			res.TauFired += cost.fired
			res.Produced += cost.produced
			res.Consumed += cost.consumed
			m = m2
			next, _ := Fire(m, t, false)
			res.Consumed += len(t.In)
			res.Produced += len(t.Out)
			m = next
			continue
		}
		t = cands[0]
		next, missing := Fire(m, t, true)
		res.Missing += missing
		res.Consumed += len(t.In)
		res.Produced += len(t.Out)
		m = next
	}
	m = r.drain(m)
	res.Remaining = m.Tokens()
}

type tauCost struct {
	fired    int
	produced int
	consumed int
}

// enable searches for a marking reachable from m via τ transitions under
// which one of the candidate transitions is enabled (shortest first,
// bounded).
func (r *Replayer) enable(m Marking, cands []*Transition) (Marking, *Transition, tauCost, bool) {
	type node struct {
		m    Marking
		cost tauCost
	}
	check := func(n node) (*Transition, bool) {
		for _, t := range cands {
			if Enabled(n.m, t) {
				return t, true
			}
		}
		return nil, false
	}
	start := node{m: m}
	if t, ok := check(start); ok {
		return m, t, tauCost{}, true
	}
	queue := []node{start}
	visited := map[string]bool{m.String(): true}
	expanded := 0
	for len(queue) > 0 && expanded < MaxSearchStates/16 {
		cur := queue[0]
		queue = queue[1:]
		expanded++
		for _, tau := range r.Net.Silent() {
			if !Enabled(cur.m, tau) {
				continue
			}
			next, _ := Fire(cur.m, tau, false)
			key := next.String()
			if visited[key] {
				continue
			}
			visited[key] = true
			n := node{m: next, cost: tauCost{
				fired:    cur.cost.fired + 1,
				produced: cur.cost.produced + len(tau.Out),
				consumed: cur.cost.consumed + len(tau.In),
			}}
			if t, ok := check(n); ok {
				return n.m, t, n.cost, true
			}
			queue = append(queue, n)
		}
	}
	return nil, nil, tauCost{}, false
}

// drain greedily fires τ transitions until quiescence (bounded), letting
// tokens reach and be consumed by end events. Only token-count
// non-increasing τs fire, so subset splits cannot diverge.
func (r *Replayer) drain(m Marking) Marking {
	for i := 0; i < MaxSearchStates/16; i++ {
		fired := false
		for _, tau := range r.Net.Silent() {
			if Enabled(m, tau) {
				next, _ := Fire(m, tau, false)
				if next.Tokens() <= m.Tokens() {
					m = next
					fired = true
					break
				}
			}
		}
		if !fired {
			return m
		}
	}
	return m
}

// ReplayTrail replays every case of a trail.
func (r *Replayer) ReplayTrail(trail *audit.Trail) ([]*ReplayResult, error) {
	var out []*ReplayResult
	for _, caseID := range trail.Cases() {
		res, err := r.ReplayCase(trail, caseID)
		if err != nil {
			return nil, fmt.Errorf("petri: replaying case %s: %w", caseID, err)
		}
		out = append(out, res)
	}
	return out, nil
}
