package core

import (
	"fmt"

	"repro/internal/audit"
)

// Partial-trail checking — the first future-work item of Section 7:
// "Process specifications may contain human activities that cannot be
// logged by the IT system (e.g., a physician discussing patient data
// over the phone). These silent activities make it not possible to
// determine if an audit trail corresponds to a valid execution."
//
// CheckCaseWithSkips extends Algorithm 1 with a *skip budget*: when an
// entry cannot be replayed from any configuration, the checker may
// hypothesize that up to budget observable task executions happened but
// were not logged, advancing configurations along unmatched weak-next
// labels before retrying the entry. A case that replays with k > 0
// skips is reported compliant-with-gaps: the report carries the number
// of hypothesized silent executions, which the severity layer treats as
// suspicion weight rather than a hard infringement.

// SkipReport extends a Report with the gap analysis.
type SkipReport struct {
	Report
	// SkipsUsed is the minimum number of unlogged task executions that
	// had to be hypothesized (0 = plain Algorithm 1 acceptance).
	SkipsUsed int
	// SkippedLabels lists one minimal hypothesized execution sequence
	// (endpoints), for the auditor to confirm with the humans involved.
	SkippedLabels []string
}

// skipConfig pairs a configuration with its skip accounting.
type skipConfig struct {
	conf    *Configuration
	skips   int
	skipped []string
}

// CheckCaseWithSkips replays a case allowing up to budget hypothesized
// unlogged task executions. budget = 0 degenerates to CheckCase.
//
// The search is breadth-preserving: all configurations at all skip
// counts ≤ budget are tracked together, and the reported SkipsUsed is
// the minimum over surviving configurations, so the verdict is the most
// charitable explanation within budget.
func (c *Checker) CheckCaseWithSkips(trail *audit.Trail, caseID string, budget int) (*SkipReport, error) {
	rep, err := c.checkCaseWithSkips(trail, caseID, budget)
	if err != nil {
		if ind := indeterminacyFor(err); ind != nil {
			name := ""
			if pur := c.registry.ForCase(caseID); pur != nil {
				name = pur.Name
			}
			return &SkipReport{Report: *indeterminateReport(caseID, name, trail.ByCase(caseID).Len(), 0, ind)}, nil
		}
		return nil, err
	}
	return rep, nil
}

func (c *Checker) checkCaseWithSkips(trail *audit.Trail, caseID string, budget int) (*SkipReport, error) {
	pur := c.registry.ForCase(caseID)
	if pur == nil {
		rep, err := c.CheckCase(trail, caseID)
		if err != nil {
			return nil, err
		}
		return &SkipReport{Report: *rep}, nil
	}
	entries := trail.ByCase(caseID).View()
	rt := c.runtime(pur)
	maxConfigs := c.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}

	initial, err := c.initialConfiguration(rt, pur)
	if err != nil {
		return nil, err
	}
	live := []skipConfig{{conf: initial}}
	rep := &SkipReport{Report: Report{Case: caseID, Purpose: pur.Name, Entries: len(entries)}}

	for i, e := range entries {
		var next []skipConfig
		seen := map[uint64]int{} // config key -> best (lowest) skip count index+1
		add := func(sc skipConfig) error {
			k := sc.conf.memoKey()
			if idx, ok := seen[k]; ok {
				if next[idx-1].skips <= sc.skips {
					return nil
				}
				next[idx-1] = sc
				return nil
			}
			if len(next) >= maxConfigs {
				return fmt.Errorf("%w: skip-search configuration set exceeds %d at entry %d of case %s", errConfigCap, maxConfigs, i, caseID)
			}
			next = append(next, sc)
			seen[k] = len(next)
			return nil
		}

		// Expand each live configuration by 0..(budget-skips) skips,
		// then try to accept the entry.
		frontier := live
		for hop := 0; ; hop++ {
			var after []skipConfig
			for _, sc := range frontier {
				// Accept directly (absorb or fire).
				if e.Status == audit.Success && c.isActive(sc.conf, e) {
					if err := add(sc); err != nil {
						return nil, err
					}
				}
				for j := range sc.conf.next {
					s := &sc.conf.next[j]
					if !c.matchesEntry(s, e) {
						continue
					}
					nc, err := c.newConfiguration(rt, pur, s.state, s.id, s.active)
					if err != nil {
						return nil, err
					}
					if err := add(skipConfig{conf: nc, skips: sc.skips, skipped: sc.skipped}); err != nil {
						return nil, err
					}
				}
				// Hypothesize one unlogged execution (any successor).
				if sc.skips < budget {
					for j := range sc.conf.next {
						s := &sc.conf.next[j]
						nc, err := c.newConfiguration(rt, pur, s.state, s.id, s.active)
						if err != nil {
							return nil, err
						}
						after = append(after, skipConfig{
							conf:    nc,
							skips:   sc.skips + 1,
							skipped: append(append([]string(nil), sc.skipped...), s.label.Endpoint()),
						})
					}
				}
			}
			if len(after) == 0 || hop >= budget {
				break
			}
			if len(after) > maxConfigs {
				after = after[:maxConfigs]
			}
			frontier = after
		}

		if len(next) == 0 {
			rep.Compliant = false
			rep.Outcome = OutcomeViolation
			confs := make([]*Configuration, len(live))
			for j, sc := range live {
				confs[j] = sc.conf
			}
			rep.Violation = c.describeViolation(pur, confs, i, e)
			rep.StepsReplayed = i
			return rep, nil
		}
		if len(next) > rep.PeakConfigurations {
			rep.PeakConfigurations = len(next)
		}
		live = next
	}

	rep.Compliant = true
	rep.Outcome = OutcomeCompliant
	rep.StepsReplayed = len(entries)
	rep.FinalConfigurations = len(live)
	best := -1
	for _, sc := range live {
		if best < 0 || sc.skips < best {
			best = sc.skips
			rep.SkippedLabels = sc.skipped
		}
		done, err := rt.sys.CanTerminateSilently(sc.conf.state)
		if err != nil {
			return nil, err
		}
		if done {
			rep.CanComplete = true
		}
	}
	rep.SkipsUsed = best
	rep.Pending = !rep.CanComplete
	return rep, nil
}
