package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/bpmn"
)

// orProc is the inclusive-gateway process of TestCheckORSubsets: after
// T1 fires the checker must track ≥2 configurations ({T1} chosen vs
// {T1,T2} chosen), which makes it the minimal fixture for the
// configuration-cap indeterminacy path.
func orProc(t *testing.T) *bpmn.Process {
	t.Helper()
	return bpmn.NewBuilder("Incl").Pool("P").
		Start("S", "P").OR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").MustBuild()
}

func TestIndeterminateConfigurationCap(t *testing.T) {
	c := newChecker(t, orProc(t), "IN", nil)
	c.MaxConfigurations = 1
	rep, err := c.CheckCase(trailOf("IN-1", "P:T1", "P:T3"), "IN-1")
	if err != nil {
		t.Fatalf("cap overflow escaped as error: %v", err)
	}
	if rep.Outcome != OutcomeIndeterminate || rep.Indeterminate == nil {
		t.Fatalf("report not indeterminate: %s", rep)
	}
	if rep.Indeterminate.Cause != CauseConfigurationCap {
		t.Errorf("cause = %v, want configuration-cap", rep.Indeterminate.Cause)
	}
	if rep.Compliant {
		t.Errorf("indeterminate report claims compliance")
	}
	if !strings.Contains(rep.String(), "INDETERMINATE") {
		t.Errorf("String() = %q", rep.String())
	}
	// Without the artificial cap the same checker config is decisive.
	c2 := newChecker(t, orProc(t), "IN", nil)
	rep2, err := c2.CheckCase(trailOf("IN-1", "P:T1", "P:T3"), "IN-1")
	if err != nil || rep2.Outcome != OutcomeCompliant {
		t.Fatalf("uncapped run: %v %s", err, rep2)
	}
}

// deepSilentProc chains silent gateways ahead of the first task so a
// tiny MaxSilentDepth trips the LTS guard before anything observable.
func deepSilentProc(t *testing.T) *bpmn.Process {
	t.Helper()
	return bpmn.NewBuilder("Deep").Pool("P").
		Start("S", "P").XOR("G1", "P").XOR("G2", "P").XOR("G3", "P").
		Task("T1", "P", "").End("E", "P").
		Seq("S", "G1", "G2", "G3", "T1", "E").MustBuild()
}

func TestIndeterminateBudgetExceeded(t *testing.T) {
	c := newChecker(t, deepSilentProc(t), "LN", nil)
	c.MaxSilentDepth = 1 // the silent gateway chain outruns this
	rep, err := c.CheckCase(trailOf("LN-1", "P:T1"), "LN-1")
	if err != nil {
		t.Fatalf("budget overflow escaped as error: %v", err)
	}
	if rep.Outcome != OutcomeIndeterminate || rep.Indeterminate == nil {
		t.Fatalf("report not indeterminate: %s", rep)
	}
	if rep.Indeterminate.Cause != CauseBudgetExceeded {
		t.Errorf("cause = %v, want budget-exceeded", rep.Indeterminate.Cause)
	}
}

func TestIndeterminateRecoveredPanic(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	c.TraceFn = func(step int, e audit.Entry, configs []*Configuration) {
		panic("instrumentation exploded")
	}
	rep, err := c.CheckCase(trailOf("LN-1", "P:T1", "P:T2", "P:T3"), "LN-1")
	if err != nil {
		t.Fatalf("panic escaped as error: %v", err)
	}
	if rep.Outcome != OutcomeIndeterminate || rep.Indeterminate == nil ||
		rep.Indeterminate.Cause != CauseRecoveredPanic {
		t.Fatalf("panic not isolated: %s", rep)
	}
	if !strings.Contains(rep.Indeterminate.Reason, "instrumentation exploded") {
		t.Errorf("reason lost the panic value: %q", rep.Indeterminate.Reason)
	}
	// The checker (and its shared caches) survive the recovered panic.
	c.TraceFn = nil
	rep, err = c.CheckCase(trailOf("LN-1", "P:T1", "P:T2", "P:T3"), "LN-1")
	if err != nil || rep.Outcome != OutcomeCompliant {
		t.Fatalf("checker unusable after recovered panic: %v %s", err, rep)
	}
}

func TestCheckCaseContextCanceled(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	tr := trailOf("LN-1", "P:T1", "P:T2", "P:T3")

	// Already-canceled context: prompt return with the context error,
	// no report.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CheckCaseContext(ctx, tr, "LN-1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Cancel mid-replay (after the first entry) via the trace hook.
	ctx2, cancel2 := context.WithCancel(context.Background())
	c.TraceFn = func(step int, e audit.Entry, configs []*Configuration) {
		if step == 0 {
			cancel2()
		}
	}
	if _, err := c.CheckCaseContext(ctx2, tr, "LN-1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-replay err = %v, want context.Canceled", err)
	}
	c.TraceFn = nil

	// No partial-state corruption: a clean rerun on the same checker is
	// identical to a run on a never-canceled checker.
	rep, err := c.CheckCase(tr, "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	fresh := newChecker(t, linearProc(t), "LN", nil)
	want, err := fresh.CheckCase(tr, "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, want) {
		t.Fatalf("post-cancel report differs:\n got %+v\nwant %+v", rep, want)
	}
}

func TestCheckTrailParallelContextCanceled(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	var entries []audit.Entry
	for _, id := range []string{"LN-1", "LN-2", "LN-3", "LN-4"} {
		entries = append(entries, trailOf(id, "P:T1", "P:T2", "P:T3").Entries()...)
	}
	tr := audit.NewTrail(entries)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CheckTrailParallelContext(ctx, tr, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same checker still works with a live context.
	reps, err := c.CheckTrailParallelContext(context.Background(), tr, 4)
	if err != nil || len(reps) != 4 {
		t.Fatalf("post-cancel parallel run: %v (%d reports)", err, len(reps))
	}
}

func TestCheckCaseWithSkipsIndeterminate(t *testing.T) {
	c := newChecker(t, orProc(t), "IN", nil)
	c.MaxConfigurations = 1
	rep, err := c.CheckCaseWithSkips(trailOf("IN-1", "P:T1", "P:T3"), "IN-1", 1)
	if err != nil {
		t.Fatalf("cap overflow escaped as error: %v", err)
	}
	if rep.Outcome != OutcomeIndeterminate || rep.Indeterminate == nil ||
		rep.Indeterminate.Cause != CauseConfigurationCap {
		t.Fatalf("skip search not indeterminate: %+v", rep)
	}
}

func TestMonitorDeadCaseSemantics(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	m := NewMonitor(c)

	// A deviating entry kills the case.
	v, err := m.Feed(entryAt(0, "u", "P", "T3", "LN-1"))
	if err != nil || v.OK || v.Violation == nil {
		t.Fatalf("deviation not flagged: %+v %v", v, err)
	}
	// Further entries — even ones that would have been valid — are
	// reported against the dead case without replaying.
	v, err = m.Feed(entryAt(1, "u", "P", "T1", "LN-1"))
	if err != nil || v.OK || v.Violation == nil {
		t.Fatalf("dead case accepted an entry: %+v %v", v, err)
	}
	if !strings.Contains(v.Violation.Reason, "already deviated") {
		t.Errorf("reason = %q", v.Violation.Reason)
	}
	if v.CaseEntries != 2 {
		t.Errorf("CaseEntries = %d, want 2 (dead cases still count)", v.CaseEntries)
	}
	// A sibling case is unaffected.
	v, err = m.Feed(entryAt(2, "u", "P", "T1", "LN-2"))
	if err != nil || !v.OK {
		t.Fatalf("sibling case affected: %+v %v", v, err)
	}
	st, err := m.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 || !st[0].Deviated || st[0].Indeterminate != nil || st[1].Deviated {
		t.Fatalf("status = %+v", st)
	}
}

func TestMonitorIndeterminateFeed(t *testing.T) {
	c := newChecker(t, orProc(t), "IN", nil)
	c.MaxConfigurations = 1
	m := NewMonitor(c)
	v, err := m.Feed(entryAt(0, "u", "P", "T1", "IN-1"))
	if err != nil {
		t.Fatalf("cap overflow escaped as error: %v", err)
	}
	if v.OK || v.Indeterminate == nil || v.Indeterminate.Cause != CauseConfigurationCap {
		t.Fatalf("verdict not indeterminate: %+v", v)
	}
	// The case stays dead-indeterminate; further feeds don't replay.
	v, err = m.Feed(entryAt(1, "u", "P", "T3", "IN-1"))
	if err != nil || v.OK || v.Indeterminate == nil {
		t.Fatalf("dead-indeterminate case revived: %+v %v", v, err)
	}
	st, err := m.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || !st[0].Deviated || st[0].Indeterminate == nil {
		t.Fatalf("status = %+v", st)
	}
}

func TestMonitorBornIndeterminate(t *testing.T) {
	c := newChecker(t, deepSilentProc(t), "LN", nil)
	c.MaxSilentDepth = 1
	m := NewMonitor(c)
	// Watch must not error: the case is created dead-indeterminate.
	if err := m.Watch("LN-1"); err != nil {
		t.Fatalf("Watch: %v", err)
	}
	v, err := m.Feed(entryAt(0, "u", "P", "T1", "LN-1"))
	if err != nil {
		t.Fatalf("Feed: %v", err)
	}
	if v.OK || v.Indeterminate == nil || v.Indeterminate.Cause != CauseBudgetExceeded {
		t.Fatalf("verdict = %+v", v)
	}
	if ok, err := m.Peek(entryAt(1, "u", "P", "T1", "LN-1")); err != nil || ok {
		t.Fatalf("Peek on dead case = %v, %v", ok, err)
	}
}

func TestMonitorFeedContextCanceled(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	m := NewMonitor(c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.FeedContext(ctx, entryAt(0, "u", "P", "T1", "LN-1")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The monitor is untouched: the entry was never counted.
	v, err := m.Feed(entryAt(0, "u", "P", "T1", "LN-1"))
	if err != nil || !v.OK || v.CaseEntries != 1 {
		t.Fatalf("post-cancel feed: %+v %v", v, err)
	}
}

func TestCheckStoreParallelIndeterminate(t *testing.T) {
	c := newChecker(t, orProc(t), "IN", nil)
	c.MaxConfigurations = 1
	store := audit.NewStore()
	for i, id := range []string{"IN-1", "IN-2", "IN-3"} {
		if err := store.Append(entryAt(i, "u", "P", "T1", id)); err != nil {
			t.Fatal(err)
		}
	}
	reps, err := CheckStoreParallel(c, store, 3)
	if err != nil {
		t.Fatalf("indeterminacy escaped as error: %v", err)
	}
	if len(reps) != 3 {
		t.Fatalf("got %d reports, want 3", len(reps))
	}
	for id, rep := range reps {
		if rep.Outcome != OutcomeIndeterminate {
			t.Errorf("case %s outcome = %v, want indeterminate", id, rep.Outcome)
		}
	}
}
