package core

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// snapshotFixture is a monitor over a two-purpose registry holding, at
// snapshot time, one mid-flight compliant case (LN-1), one dead
// violating case (LN-2) and one dead indeterminate case (IN-1, killed
// by an artificial configuration cap).
func snapshotChecker(t *testing.T) *Checker {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Register(linearProc(t), "LN"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(orProc(t), "IN"); err != nil {
		t.Fatal(err)
	}
	c := NewChecker(reg, nil)
	// Kills IN-* replays (the OR split overflows a 1-configuration
	// budget) while LN-* replays, which never branch, are untouched.
	c.MaxConfigurations = 1
	return c
}

// TestSnapshotMidTrailResume snapshots a monitor holding compliant,
// violating and indeterminate cases mid-trail, restores it into a fresh
// checker, replays the tail, and requires every post-restore verdict
// and the final Status() to be identical to a monitor that never
// stopped.
func TestSnapshotMidTrailResume(t *testing.T) {
	ln1 := trailOf("LN-1", "P:T1", "P:T2", "P:T3").Entries()
	ln2bad := trailOf("LN-2", "P:T2").Entries()
	in1 := trailOf("IN-1", "P:T1", "P:T3").Entries()

	// Feed indices address the three trails back to back: 0-2 are ln1,
	// 3-4 ln2bad, 5-6 in1. The head runs before the snapshot, the tail
	// after the restore (refeeding the dead cases to check their
	// verdicts stay sticky and identical).
	feedHead := []int{0, 1, 3, 5, 6} // ln1[0], ln1[1], ln2bad[0], in1[0], in1[1]
	feedTail := []int{2, 3, 5}       // ln1[2], ln2bad[0] again, in1[0] again

	feed := func(m *Monitor, idx int) *Verdict {
		t.Helper()
		var v *Verdict
		var err error
		switch {
		case idx < 3:
			v, err = m.Feed(ln1[idx])
		case idx < 5:
			v, err = m.Feed(ln2bad[idx-3])
		default:
			v, err = m.Feed(in1[idx-5])
		}
		if err != nil {
			t.Fatalf("feed %d: %v", idx, err)
		}
		return v
	}

	// Reference: continuous monitor over head + tail.
	ref := NewMonitor(snapshotChecker(t))
	for _, i := range feedHead {
		feed(ref, i)
	}
	var refTail []*Verdict
	for _, i := range feedTail {
		refTail = append(refTail, feed(ref, i))
	}

	// Interrupted monitor: head, snapshot, restore, tail.
	m1 := NewMonitor(snapshotChecker(t))
	for _, i := range feedHead {
		feed(m1, i)
	}
	var buf strings.Builder
	if err := m1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// The snapshot is the deduplicated v2 format and records the
	// indeterminacy cause.
	var st MonitorState
	if err := json.Unmarshal([]byte(buf.String()), &st); err != nil {
		t.Fatal(err)
	}
	if st.Version != 2 || len(st.States) == 0 {
		t.Fatalf("snapshot version=%d states=%d, want v2 with a state table", st.Version, len(st.States))
	}
	if cs := st.Cases["IN-1"]; !cs.Dead || cs.Cause == nil || cs.Cause.Cause != CauseConfigurationCap {
		t.Fatalf("IN-1 snapshot lost its indeterminacy: %+v", cs)
	}
	if cs := st.Cases["LN-2"]; !cs.Dead || cs.Cause != nil {
		t.Fatalf("LN-2 snapshot should be dead without a cause: %+v", cs)
	}

	m2, err := RestoreMonitor(snapshotChecker(t), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for k, i := range feedTail {
		v := feed(m2, i)
		if !reflect.DeepEqual(v, refTail[k]) {
			t.Errorf("tail verdict %d diverges after restore:\n got %+v\nwant %+v", k, v, refTail[k])
		}
	}

	refSt := statusOf(t, ref)
	gotSt := statusOf(t, m2)
	if !reflect.DeepEqual(gotSt, refSt) {
		t.Fatalf("final status diverges:\n got %+v\nwant %+v", gotSt, refSt)
	}
	for _, cs := range gotSt {
		switch cs.Case {
		case "LN-1":
			if cs.Deviated || cs.Entries != 3 {
				t.Errorf("LN-1 = %+v, want 3 compliant entries", cs)
			}
		case "LN-2":
			if !cs.Deviated || cs.Indeterminate != nil {
				t.Errorf("LN-2 = %+v, want dead violation", cs)
			}
		case "IN-1":
			if !cs.Deviated || cs.Indeterminate == nil || cs.Indeterminate.Cause != CauseConfigurationCap {
				t.Errorf("IN-1 = %+v, want dead indeterminate (configuration cap)", cs)
			}
		}
	}
}

// TestSnapshotV1Compat: a version-1 snapshot (inline state terms, no
// table, no cause) still restores; live cases resume exactly, dead
// cases stay dead.
func TestSnapshotV1Compat(t *testing.T) {
	ln1 := trailOf("LN-1", "P:T1", "P:T2", "P:T3").Entries()
	ln2bad := trailOf("LN-2", "P:T2").Entries()

	m1 := NewMonitor(snapshotChecker(t))
	for _, e := range ln1[:2] {
		if _, err := m1.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	if v, err := m1.Feed(ln2bad[0]); err != nil || v.OK {
		t.Fatalf("LN-2 should deviate: %+v %v", v, err)
	}

	// Downgrade the v2 state to the v1 wire shape by hand.
	v2 := m1.State()
	v1 := MonitorState{Version: 1, Cases: map[string]CaseSnapshot{}}
	for id, cs := range v2.Cases {
		configs := make([]ConfigSnapshot, len(cs.Configs))
		for i, cfg := range cs.Configs {
			configs[i] = ConfigSnapshot{State: v2.States[cfg.StateRef], Active: cfg.Active}
		}
		v1.Cases[id] = CaseSnapshot{Purpose: cs.Purpose, Entries: cs.Entries, Dead: cs.Dead, Configs: configs}
	}
	raw, err := json.Marshal(&v1)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := RestoreMonitor(snapshotChecker(t), strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	if v, err := m2.Feed(ln1[2]); err != nil || !v.OK {
		t.Fatalf("LN-1 did not resume from v1 snapshot: %+v %v", v, err)
	}
	if v, err := m2.Feed(ln2bad[0]); err != nil || v.OK {
		t.Fatalf("LN-2 revived by v1 restore: %+v %v", v, err)
	}
}

func statusOf(t *testing.T, m *Monitor) []CaseStatus {
	t.Helper()
	st, err := m.Status()
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(st, func(i, j int) bool { return st[i].Case < st[j].Case })
	return st
}
