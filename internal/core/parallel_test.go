package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
)

// parallelFixture builds a 24-case store on the linear process: a mix
// of compliant, pending and infringing trails, plus the flat trail and
// the per-case sequential reference reports.
func parallelFixture(t *testing.T) (*Checker, *audit.Store, *audit.Trail, map[string]*Report) {
	t.Helper()
	c := newChecker(t, linearProc(t), "LN", nil)
	store := audit.NewStore()
	for i := 0; i < 24; i++ {
		caseID := fmt.Sprintf("LN-%d", i)
		var steps []string
		switch i % 3 {
		case 0:
			steps = []string{"P:T1", "P:T2", "P:T3"}
		case 1:
			steps = []string{"P:T1", "P:T2"} // pending
		default:
			steps = []string{"P:T1", "P:T3"} // skip T2: infringement
		}
		for _, e := range trailOf(caseID, steps...).Entries() {
			e.Time = e.Time.Add(time.Duration(i) * time.Hour)
			if err := store.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	trail := store.Trail()
	// Sequential reference on an isolated cold checker: the shared
	// checker's results must match byte for byte.
	ref := newChecker(t, linearProc(t), "LN", nil)
	want := map[string]*Report{}
	for _, caseID := range store.Cases() {
		want[caseID] = check(t, ref, store.Case(caseID), caseID)
	}
	return c, store, trail, want
}

// TestSharedCheckerConcurrent: N goroutines hammer ONE shared Checker —
// first over disjoint case partitions, then all goroutines over the
// same overlapping case set — and every report must equal the
// sequential reference. Run with -race: this is the proof that the
// interned LTS caches and the configuration memo are safely shared.
func TestSharedCheckerConcurrent(t *testing.T) {
	c, store, _, want := parallelFixture(t)
	cases := store.Cases()
	const workers = 8

	// Disjoint: worker w owns cases w, w+workers, w+2*workers, ...
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(cases); i += workers {
				caseID := cases[i]
				rep, err := c.CheckCase(store.Case(caseID), caseID)
				if err != nil {
					t.Errorf("disjoint %s: %v", caseID, err)
					return
				}
				if !reflect.DeepEqual(rep, want[caseID]) {
					t.Errorf("disjoint %s: shared %+v != sequential %+v", caseID, rep, want[caseID])
				}
			}
		}(w)
	}
	wg.Wait()

	// Overlapping: every worker re-checks EVERY case against the now
	// fully warm caches — maximal read contention on shared state.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, caseID := range cases {
				rep, err := c.CheckCase(store.Case(caseID), caseID)
				if err != nil {
					t.Errorf("overlap %s: %v", caseID, err)
					return
				}
				if !reflect.DeepEqual(rep, want[caseID]) {
					t.Errorf("overlap %s: shared %+v != sequential %+v", caseID, rep, want[caseID])
				}
			}
		}()
	}
	wg.Wait()
}

// TestCheckTrailParallelMatchesSequential: CheckTrailParallel must
// return the same reports in the same (case-sorted) order as CheckTrail
// for every worker count, including on a warm checker.
func TestCheckTrailParallelMatchesSequential(t *testing.T) {
	c, _, trail, _ := parallelFixture(t)
	want, err := c.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 24 {
		t.Fatalf("sequential reports = %d", len(want))
	}
	for _, workers := range []int{0, 1, 2, 4, 8, 64} {
		got, err := c.CheckTrailParallel(trail, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel reports differ from sequential", workers)
		}
	}
}

// TestCloneSharesWarmRuntime: the cold-cache bug fix — Clone must hand
// out a checker backed by the same per-purpose runtime (interned LTS +
// configuration memo), so fan-out via Clone no longer re-derives the
// state space per worker. Flag fields stay per-clone.
func TestCloneSharesWarmRuntime(t *testing.T) {
	c, store, _, want := parallelFixture(t)
	caseID := store.Cases()[0]
	if _, err := c.CheckCase(store.Case(caseID), caseID); err != nil {
		t.Fatal(err)
	}
	cl := c.Clone()
	if cl.rt != c.rt {
		t.Fatalf("Clone did not share the checker runtime")
	}
	pur := c.registry.ForCase(caseID)
	if cl.runtime(pur) != c.runtime(pur) {
		t.Fatalf("Clone resolved a different per-purpose runtime")
	}
	steps, weak := c.runtime(pur).sys.CacheStats()
	if steps == 0 || weak == 0 {
		t.Fatalf("warm runtime has empty caches: %d %d", steps, weak)
	}
	// The clone checks through the warm caches and agrees with the
	// sequential reference.
	for _, id := range store.Cases() {
		rep, err := cl.CheckCase(store.Case(id), id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rep, want[id]) {
			t.Fatalf("case %s: clone %+v != sequential %+v", id, rep, want[id])
		}
	}
	// Independent flag mutation must not leak between clones.
	cl.MaxConfigurations = 7
	if c.MaxConfigurations == 7 {
		t.Fatalf("flag mutation leaked through Clone")
	}
}
