package core

import (
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
)

// Severity metrics — the second future-work item of Section 7: "To
// narrow down the number of situations to be investigated, we are
// complementing the presented mechanism with metrics for measuring the
// severity of privacy infringements."
//
// The scorer turns each infringement report into a 0–100 score from
// auditable components, so an investigation queue can be ranked. The
// components and their rationale:
//
//   - base (25): every confirmed infringement matters;
//   - consent (0–30): data of subjects with no recorded consent to any
//     secondary purpose (the paper's Jane, who explicitly withheld it)
//     score highest — whatever the data were diverted to, the subject
//     never sanctioned it;
//   - sensitivity (0–15): clinical sections above demographics above
//     subject-less artifacts;
//   - spread (0–15): how many distinct subjects' data the violating
//     case touched (harvesting scores above a one-off);
//   - progress (0–15): deviating at the first entry (a fabricated
//     case, like HT-11) is more damning than deviating deep into an
//     otherwise-valid execution (likely sloppiness or an emergency, the
//     paper's §7 exception discussion).
type SeverityScorer struct {
	// Consents is consulted for the consent component; nil scores the
	// component at full weight when the object has a data subject
	// (absence of recorded consent is the worst case).
	Consents *policy.ConsentRegistry
	// SensitiveSections maps path components (e.g. "Clinical") to
	// sensitivity in [0,1]; unlisted sections score 0.3, subject-less
	// objects 0.
	SensitiveSections map[string]float64
}

// NewSeverityScorer returns a scorer with healthcare defaults.
func NewSeverityScorer(consents *policy.ConsentRegistry) *SeverityScorer {
	return &SeverityScorer{
		Consents: consents,
		SensitiveSections: map[string]float64{
			"Clinical":     1.0,
			"Tests":        1.0,
			"Scan":         1.0,
			"Demographics": 0.5,
		},
	}
}

// ScoredReport pairs an infringement with its severity breakdown.
type ScoredReport struct {
	Report *Report
	Score  int
	// Components, for explainability in the investigation UI.
	Base, Consent, Sensitivity, Spread, Progress int
}

// Score rates one non-compliant report against the case's trail slice.
// Compliant reports score 0.
func (s *SeverityScorer) Score(rep *Report, caseTrail *audit.Trail) ScoredReport {
	out := ScoredReport{Report: rep}
	if rep.Compliant || rep.Violation == nil {
		return out
	}
	out.Base = 25

	subjects := map[string]bool{}
	sens := 0.0
	consentViolated := false
	for i := 0; i < caseTrail.Len(); i++ {
		e := caseTrail.At(i)
		if e.Object.Subject != "" {
			subjects[e.Object.Subject] = true
			if s.Consents == nil || len(s.Consents.PurposesOf(e.Object.Subject)) == 0 {
				// The data subject never consented to any secondary
				// purpose: whatever the falsified case fed, it was
				// unsanctioned.
				consentViolated = true
			}
		}
		if v := s.sectionSensitivity(e.Object); v > sens {
			sens = v
		}
	}
	if consentViolated {
		out.Consent = 30
	}
	out.Sensitivity = int(15 * sens)
	switch n := len(subjects); {
	case n >= 3:
		out.Spread = 15
	case n == 2:
		out.Spread = 10
	case n == 1:
		out.Spread = 5
	}
	if rep.Entries > 0 {
		frac := 1 - float64(rep.StepsReplayed)/float64(rep.Entries)
		out.Progress = int(15 * frac)
	}
	out.Score = out.Base + out.Consent + out.Sensitivity + out.Spread + out.Progress
	if out.Score > 100 {
		out.Score = 100
	}
	return out
}

func (s *SeverityScorer) sectionSensitivity(o policy.Object) float64 {
	if o.Subject == "" || len(o.Path) == 0 {
		return 0
	}
	best := 0.3
	for _, part := range o.Path {
		if v, ok := s.SensitiveSections[part]; ok && v > best {
			best = v
		}
	}
	return best
}

// Rank scores every infringement in the audit result and returns them
// most-severe first — the §7 investigation queue.
func (s *SeverityScorer) Rank(res *AuditResult, trail *audit.Trail) []ScoredReport {
	var out []ScoredReport
	for _, rep := range res.Infringements() {
		out = append(out, s.Score(rep, trail.ByCase(rep.Case)))
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// Temporal constraint — Section 4: "if a maximum duration for the
// process is defined, an infringement can be raised in the case where
// this temporal constraint is violated." ExpirePending turns compliant
// but pending cases whose last activity is older than maxIdle (relative
// to now) into infringements of kind ViolationExpired.

// ViolationExpired classifies a pending case that outlived the
// process's maximum duration (Section 4's temporal constraint).
const ViolationExpired ViolationKind = 100

// ExpirePending rewrites pending reports whose case has been idle
// longer than maxIdle at time now.
func ExpirePending(reports []*Report, trail *audit.Trail, maxIdle time.Duration, now time.Time) {
	for _, rep := range reports {
		if !rep.Compliant || !rep.Pending {
			continue
		}
		slice := trail.ByCase(rep.Case)
		if slice.Len() == 0 {
			continue
		}
		last := slice.At(slice.Len() - 1).Time
		if now.Sub(last) > maxIdle {
			rep.Compliant = false
			rep.Violation = &Violation{
				Kind: ViolationExpired,
				Reason: "process instance exceeded its maximum duration: idle since " +
					last.Format(audit.PaperTimeLayout),
			}
		}
	}
}
