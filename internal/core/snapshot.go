package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/cows"
)

// Monitor snapshots: the online analysis must survive auditor restarts
// (the paper's Section 4 resumption, across process lifetimes). A
// snapshot serializes each monitored case's configuration set — the
// COWS states in their textual syntax plus the active-task sets; the
// weak-next components are recomputed on restore.

// monitorSnapshot is the wire form.
type monitorSnapshot struct {
	Version int                     `json:"version"`
	Cases   map[string]caseSnapshot `json:"cases"`
}

type caseSnapshot struct {
	Purpose string           `json:"purpose"`
	Entries int              `json:"entries"`
	Dead    bool             `json:"dead"`
	Configs []configSnapshot `json:"configs"`
}

type configSnapshot struct {
	State  string       `json:"state"`
	Active []ActiveTask `json:"active,omitempty"`
}

// Snapshot writes the monitor's live state.
func (m *Monitor) Snapshot(w io.Writer) error {
	snap := monitorSnapshot{Version: 1, Cases: map[string]caseSnapshot{}}
	for id, st := range m.cases {
		cs := caseSnapshot{Purpose: st.purpose.Name, Entries: st.entries, Dead: st.dead}
		for _, conf := range st.configs {
			cs.Configs = append(cs.Configs, configSnapshot{
				State:  cows.String(conf.state),
				Active: conf.ActiveTasks(),
			})
		}
		snap.Cases[id] = cs
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		return fmt.Errorf("core: writing monitor snapshot: %w", err)
	}
	return nil
}

// RestoreMonitor rebuilds a monitor from a snapshot over the given
// checker (whose registry must contain every purpose the snapshot
// references). Weak-next sets are recomputed, so a restored monitor
// behaves identically to the one that was snapshotted.
func RestoreMonitor(c *Checker, r io.Reader) (*Monitor, error) {
	var snap monitorSnapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("core: reading monitor snapshot: %w", err)
	}
	if snap.Version != 1 {
		return nil, fmt.Errorf("core: unsupported snapshot version %d", snap.Version)
	}
	m := NewMonitor(c)
	for id, cs := range snap.Cases {
		pur := c.registry.Purpose(cs.Purpose)
		if pur == nil {
			return nil, fmt.Errorf("core: snapshot references unknown purpose %q", cs.Purpose)
		}
		st := &caseState{purpose: pur, entries: cs.Entries, dead: cs.Dead}
		rt := c.runtime(pur)
		for _, confSnap := range cs.Configs {
			state, err := cows.Parse(confSnap.State)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot state of case %s: %w", id, err)
			}
			tasks := append([]ActiveTask(nil), confSnap.Active...)
			sort.Slice(tasks, func(i, j int) bool { return activeLess(tasks[i], tasks[j]) })
			dedup := tasks[:0]
			for _, t := range tasks {
				if len(dedup) == 0 || t != dedup[len(dedup)-1] {
					dedup = append(dedup, t)
				}
			}
			conf, err := c.newConfiguration(rt, pur, state, rt.sys.Intern(state), rt.active.intern(dedup))
			if err != nil {
				return nil, fmt.Errorf("core: rebuilding case %s: %w", id, err)
			}
			st.configs = append(st.configs, conf)
		}
		m.cases[id] = st
	}
	return m, nil
}
