package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/automaton"
	"repro/internal/cows"
)

// Monitor snapshots: the online analysis must survive auditor restarts
// (the paper's Section 4 resumption, across process lifetimes). A
// snapshot serializes each monitored case's configuration set — the
// COWS states in their canonical textual syntax plus the active-task
// sets; the weak-next components are recomputed on restore, so a
// restored monitor behaves identically to the one snapshotted.
//
// Wire format. Version 2 (current) deduplicates state terms into a
// shared table: interning (PR 1) makes configurations across cases of
// one purpose share a handful of canonical states, so the table
// shrinks large-population snapshots by orders of magnitude. Version 1
// (inline state text per configuration) is still read. Version 2 also
// carries the Indeterminacy cause of dead-indeterminate cases, which
// version 1 lost — a v1 restore of such a case degrades to a generic
// "already deviated" verdict.

// MonitorState is the exported, serializable form of a monitor's live
// state. It is the unit the auditd server checkpoints: shards export
// their states, the server merges them into one file, and a restart
// splits the merged state back across shards (see internal/server).
type MonitorState struct {
	Version int `json:"version"`
	// States is the deduplicated table of canonical COWS terms;
	// configurations reference it by index.
	States []string `json:"states,omitempty"`
	// Cases maps case id to its live state.
	Cases map[string]CaseSnapshot `json:"cases"`
}

// CaseSnapshot is one case's live state.
type CaseSnapshot struct {
	Purpose string `json:"purpose"`
	Entries int    `json:"entries"`
	Dead    bool   `json:"dead"`
	// Cause records why a dead case is indeterminate rather than
	// violating; nil for violation-dead and live cases.
	Cause *Indeterminacy `json:"cause,omitempty"`
	// Explanation carries a dead case's auditor-facing narrative, so a
	// restored monitor keeps re-surfacing it on further feeds. Absent
	// in snapshots written before version 2 gained the field; restore
	// tolerates nil.
	Explanation *Explanation     `json:"explanation,omitempty"`
	Configs     []ConfigSnapshot `json:"configs,omitempty"`
}

// ConfigSnapshot is one live configuration: a state (by table index in
// version 2, inline text in version 1) plus its active-task set.
type ConfigSnapshot struct {
	// StateRef indexes MonitorState.States (version 2).
	StateRef int `json:"state_ref,omitempty"`
	// State is the inline canonical term (version 1; ignored when the
	// snapshot has a state table).
	State  string       `json:"state,omitempty"`
	Active []ActiveTask `json:"active,omitempty"`
}

// snapshotVersion is the version State emits.
const snapshotVersion = 2

// State exports the monitor's live state. The result shares nothing
// with the monitor and may be serialized or merged freely.
func (m *Monitor) State() *MonitorState {
	st := &MonitorState{Version: snapshotVersion, Cases: make(map[string]CaseSnapshot, len(m.cases))}
	table := map[string]int{}
	for id, cs := range m.cases {
		snap := CaseSnapshot{Purpose: cs.purpose.Name, Entries: cs.entries, Dead: cs.dead}
		if cs.cause != nil {
			c := *cs.cause
			snap.Cause = &c
		}
		if cs.expl != nil {
			x := *cs.expl
			snap.Explanation = &x
		}
		addConfig := func(term string, active []ActiveTask) {
			ref, ok := table[term]
			if !ok {
				ref = len(st.States)
				table[term] = ref
				st.States = append(st.States, term)
			}
			snap.Configs = append(snap.Configs, ConfigSnapshot{StateRef: ref, Active: active})
		}
		if cs.dfa != nil {
			// Compiled cases export the determinized state's member
			// configurations, so the snapshot is engine-neutral: a
			// restoring monitor may resume it under either engine.
			d := cs.dfa
			for _, mid := range d.States[cs.dstate].Members {
				cfg := d.Configs[mid]
				active := make([]ActiveTask, 0, len(d.ActiveSets[cfg.Active]))
				for _, a := range d.ActiveSets[cfg.Active] {
					active = append(active, ActiveTask{Role: a.Role, Task: a.Task})
				}
				sort.Slice(active, func(i, j int) bool { return active[i].String() < active[j].String() })
				addConfig(d.Texts[cfg.Term], active)
			}
		} else {
			for _, conf := range cs.configs {
				addConfig(cows.String(conf.state), conf.ActiveTasks())
			}
		}
		st.Cases[id] = snap
	}
	return st
}

// LoadState merges an exported state into the monitor, rebuilding each
// case's configurations over the monitor's checker (whose registry must
// contain every purpose the state references). Weak-next sets are
// recomputed, so a restored monitor behaves identically to the exported
// one. A case id already present in the monitor is an error.
func (m *Monitor) LoadState(st *MonitorState) error {
	if st.Version < 1 || st.Version > snapshotVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", st.Version)
	}
	stateFor := func(cfg ConfigSnapshot) (string, error) {
		if len(st.States) > 0 {
			if cfg.StateRef < 0 || cfg.StateRef >= len(st.States) {
				return "", fmt.Errorf("state ref %d out of table range %d", cfg.StateRef, len(st.States))
			}
			return st.States[cfg.StateRef], nil
		}
		return cfg.State, nil
	}
	for id, cs := range st.Cases {
		if _, dup := m.cases[id]; dup {
			return fmt.Errorf("core: snapshot case %s already monitored", id)
		}
		pur := m.checker.registry.Purpose(cs.Purpose)
		if pur == nil {
			return fmt.Errorf("core: snapshot references unknown purpose %q", cs.Purpose)
		}
		ns := &caseState{purpose: pur, entries: cs.Entries, dead: cs.Dead}
		if cs.Cause != nil {
			c := *cs.Cause
			ns.cause = &c
		}
		if cs.Explanation != nil {
			x := *cs.Explanation
			ns.expl = &x
		}
		rt := m.checker.runtime(pur)
		for _, cfg := range cs.Configs {
			term, err := stateFor(cfg)
			if err != nil {
				return fmt.Errorf("core: snapshot of case %s: %w", id, err)
			}
			state, err := cows.Parse(term)
			if err != nil {
				return fmt.Errorf("core: snapshot state of case %s: %w", id, err)
			}
			tasks := append([]ActiveTask(nil), cfg.Active...)
			sort.Slice(tasks, func(i, j int) bool { return activeLess(tasks[i], tasks[j]) })
			dedup := tasks[:0]
			for _, t := range tasks {
				if len(dedup) == 0 || t != dedup[len(dedup)-1] {
					dedup = append(dedup, t)
				}
			}
			conf, err := m.checker.newConfiguration(rt, pur, state, rt.sys.Intern(state), rt.active.intern(dedup))
			if err != nil {
				return fmt.Errorf("core: rebuilding case %s: %w", id, err)
			}
			ns.configs = append(ns.configs, conf)
		}
		// A checkpoint taken under either engine resumes on the compiled
		// fast path when the configuration set maps onto a determinized
		// state; otherwise the case keeps running interpreted.
		if d, _ := m.checker.compiledFor(pur); d != nil && !ns.dead {
			if sid, ok := promoteCase(d, rt, ns.configs); ok {
				ns.dfa, ns.dstate, ns.configs = d, sid, nil
			}
		}
		m.cases[id] = ns
	}
	return nil
}

// promoteCase maps an interpreter configuration set onto the DFA state
// with exactly that membership. It fails (ok=false) when any
// configuration — or the set as a whole — is unknown to the automaton,
// in which case the case stays on the interpreter.
func promoteCase(d *automaton.DFA, rt *purposeRT, configs []*Configuration) (int32, bool) {
	if len(configs) == 0 {
		return 0, false
	}
	ids := make([]int32, 0, len(configs))
	scratch := make([]automaton.ActiveTask, 0, 8)
	for _, conf := range configs {
		scratch = scratch[:0]
		for _, a := range conf.active.tasks {
			scratch = append(scratch, automaton.ActiveTask{Role: a.Role, Task: a.Task})
		}
		id, ok := d.ConfigID(rt.sys.CanonOf(conf.state), scratch)
		if !ok {
			return 0, false
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dedup := ids[:0]
	for _, id := range ids {
		if len(dedup) == 0 || id != dedup[len(dedup)-1] {
			dedup = append(dedup, id)
		}
	}
	return d.StateOf(dedup)
}

// Snapshot writes the monitor's live state as indented JSON.
func (m *Monitor) Snapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.State()); err != nil {
		return fmt.Errorf("core: writing monitor snapshot: %w", err)
	}
	return nil
}

// RestoreMonitor rebuilds a monitor from a snapshot over the given
// checker. Both snapshot versions are accepted.
func RestoreMonitor(c *Checker, r io.Reader) (*Monitor, error) {
	var st MonitorState
	dec := json.NewDecoder(r)
	if err := dec.Decode(&st); err != nil {
		return nil, fmt.Errorf("core: reading monitor snapshot: %w", err)
	}
	m := NewMonitor(c)
	if err := m.LoadState(&st); err != nil {
		return nil, err
	}
	return m, nil
}
