package core_test

// Observer contract tests (DESIGN.md §12): both engines must emit the
// same begin/accept/reject/end event skeleton, attaching an observer
// must not change any verdict, and Clone must not share it.

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
)

// eventLog is a recording core.Observer.
type eventLog struct {
	begins   []string // "case/engine/entries"
	accepted []core.StepStats
	rejected []int // steps
	ends     []core.Outcome
	hits     int
}

func (l *eventLog) ReplayBegin(caseID, purpose, engine string, entries int) {
	l.begins = append(l.begins, caseID+"/"+engine)
}

func (l *eventLog) EntryAccepted(step int, e *audit.Entry, st core.StepStats) {
	l.accepted = append(l.accepted, st)
	if st.SymbolCacheHit {
		l.hits++
	}
}

func (l *eventLog) EntryRejected(step int, e *audit.Entry, expl *core.Explanation) {
	l.rejected = append(l.rejected, step)
}

func (l *eventLog) ReplayEnd(rep *core.Report) {
	l.ends = append(l.ends, rep.Outcome)
}

func TestObserverEventSkeleton(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, reg, roles)

	for _, tc := range []struct {
		name    string
		checker *core.Checker
		engine  string
	}{
		{"interpreted", p.interp, core.EngineInterpreted},
		{"compiled", p.compiled, core.EngineCompiled},
	} {
		t.Run(tc.name, func(t *testing.T) {
			log := &eventLog{}
			tc.checker.Observer = log
			defer func() { tc.checker.Observer = nil }()

			// Compliant case: every entry accepted, one end, no reject.
			rep, err := tc.checker.CheckCase(trail, "HT-1")
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Compliant {
				t.Fatalf("HT-1 not compliant: %v", rep)
			}
			if want := "HT-1/" + tc.engine; len(log.begins) != 1 || log.begins[0] != want {
				t.Fatalf("begins %v, want [%s]", log.begins, want)
			}
			if len(log.accepted) != rep.Entries || len(log.rejected) != 0 {
				t.Fatalf("compliant case: %d accepted / %d rejected, want %d / 0",
					len(log.accepted), len(log.rejected), rep.Entries)
			}
			if len(log.ends) != 1 || log.ends[0] != core.OutcomeCompliant {
				t.Fatalf("ends %v", log.ends)
			}
			// Configuration-set sizes must be plausible (every step has
			// at least one live configuration on each side).
			peak := 0
			for _, st := range log.accepted {
				if st.ConfigsBefore < 1 || st.ConfigsAfter < 1 {
					t.Fatalf("empty configuration set in %+v", st)
				}
				if st.ConfigsAfter > peak {
					peak = st.ConfigsAfter
				}
			}
			if peak != rep.PeakConfigurations {
				t.Fatalf("observed peak %d, report says %d", peak, rep.PeakConfigurations)
			}
			if tc.engine == core.EngineCompiled && log.hits == 0 {
				t.Fatal("compiled replay of 16 entries never hit the symbol cache")
			}

			// Violating case: reject event at the diverging entry, then end.
			*log = eventLog{}
			rep, err = tc.checker.CheckCase(trail, "HT-10")
			if err != nil {
				t.Fatal(err)
			}
			if rep.Compliant {
				t.Fatal("HT-10 unexpectedly compliant")
			}
			if len(log.rejected) != 1 || log.rejected[0] != rep.Violation.EntryIndex {
				t.Fatalf("rejected %v, want [%d]", log.rejected, rep.Violation.EntryIndex)
			}
			if len(log.ends) != 1 || log.ends[0] != core.OutcomeViolation {
				t.Fatalf("ends %v", log.ends)
			}
		})
	}
}

// TestObserverDoesNotChangeVerdicts: the observer is write-only — the
// reports with and without one attached are identical.
func TestObserverDoesNotChangeVerdicts(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	for _, compiled := range []bool{false, true} {
		bare := core.NewChecker(reg, roles)
		bare.UseCompiled = compiled
		observed := core.NewChecker(reg, roles)
		observed.UseCompiled = compiled
		observed.Observer = &eventLog{}

		want, err := bare.CheckTrail(trail)
		if err != nil {
			t.Fatal(err)
		}
		got, err := observed.CheckTrail(trail)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("compiled=%v: reports changed under observation", compiled)
		}
	}
}

// TestObserverNotCloned: Clone() must not copy the observer — clones
// run on other goroutines and the observer is single-goroutine state.
func TestObserverNotCloned(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	c := core.NewChecker(reg, roles)
	c.Observer = &eventLog{}
	if clone := c.Clone(); clone.Observer != nil {
		t.Fatal("Clone copied the Observer")
	}
}
