// Sharding-contract tests: monitor state partitions by case, so cases
// hash-routed across N monitors (each fed its cases in trail order)
// must reach verdicts identical to one monitor consuming the whole
// trail. This file runs the contract under -race with real goroutines;
// it lives in package core_test because it drives core through the
// workload generator.
package core_test

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/workload"
)

func TestShardCaseProperties(t *testing.T) {
	if got := core.ShardCase("HT-1", 8); got != core.ShardCase("HT-1", 8) {
		t.Fatal("ShardCase is not deterministic")
	}
	for _, shards := range []int{0, 1, -3} {
		if got := core.ShardCase("HT-1", shards); got != 0 {
			t.Errorf("ShardCase(%d shards) = %d, want 0", shards, got)
		}
	}
	hit := map[int]bool{}
	for i := 0; i < 256; i++ {
		s := core.ShardCase(fmt.Sprintf("HT-%d", i), 8)
		if s < 0 || s >= 8 {
			t.Fatalf("shard %d out of range", s)
		}
		hit[s] = true
	}
	if len(hit) != 8 {
		t.Errorf("256 cases hit only shards %v", hit)
	}
}

// TestShardedMonitorEquivalence feeds a 48-case generated hospital
// workload (with violations injected into every fourth case) through 8
// concurrently-running sharded monitors and through one sequential
// monitor, and requires the merged Status() to be identical.
func TestShardedMonitorEquivalence(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	trail, err := workload.ManyCases(sc.Registry, "HT", 48, 11)
	if err != nil {
		t.Fatal(err)
	}
	inj := workload.NewInjector(7)
	var entries []audit.Entry
	for i, caseID := range trail.Cases() {
		slice := trail.ByCase(caseID).Entries()
		if i%4 == 0 {
			if mut, ok := inj.Inject(workload.WrongRole, slice); ok {
				slice = mut
			}
		}
		entries = append(entries, slice...)
	}

	roles := sc.Policy.Roles
	single := core.NewMonitor(core.NewChecker(sc.Registry, roles))
	for _, e := range entries {
		if _, err := single.Feed(e); err != nil {
			t.Fatal(err)
		}
	}
	want, err := single.Status()
	if err != nil {
		t.Fatal(err)
	}

	const shards = 8
	base := core.NewChecker(sc.Registry, roles)
	monitors := make([]*core.Monitor, shards)
	queues := make([]chan audit.Entry, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := range monitors {
		monitors[i] = core.NewMonitor(base.Clone())
		queues[i] = make(chan audit.Entry, 64)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := range queues[i] {
				if _, err := monitors[i].Feed(e); err != nil && errs[i] == nil {
					errs[i] = err
				}
			}
		}()
	}
	used := map[int]bool{}
	for _, e := range entries {
		s := core.ShardCase(e.Case, shards)
		used[s] = true
		queues[s] <- e
	}
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	if len(used) < 2 {
		t.Fatalf("workload exercised only shards %v; the test proves nothing", used)
	}

	var got []core.CaseStatus
	for _, m := range monitors {
		st, err := m.Status()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, st...)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].Case < got[j].Case })
	sort.Slice(want, func(i, j int) bool { return want[i].Case < want[j].Case })
	if !reflect.DeepEqual(got, want) {
		if len(got) != len(want) {
			t.Fatalf("sharded run has %d cases, single run %d", len(got), len(want))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("case %s diverges:\nsharded %+v\nsingle  %+v", want[i].Case, got[i], want[i])
			}
		}
		t.FailNow()
	}

	// The injected violations actually produced dead cases — the
	// equivalence above compared non-trivial verdicts.
	dead := 0
	for _, st := range want {
		if st.Deviated {
			dead++
		}
	}
	if dead == 0 {
		t.Error("no deviating case in the workload; equivalence was vacuous")
	}
}
