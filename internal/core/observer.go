package core

import "repro/internal/audit"

// Observer receives replay-progress events from both engines. It is
// the core half of the internal/obs tracing subsystem: the checker
// stays free of span/export concerns and only reports what Algorithm 1
// (or its compiled equivalent) actually did, entry by entry.
//
// The nil observer is the fast path: every call site is guarded by a
// single predictable `!= nil` branch and all observer-only statistics
// (candidate counts, absorption checks) are computed only when an
// observer is attached, so the PR 1/PR 4 hot loops stay
// allocation-free when tracing is off.
//
// Observers are invoked synchronously from the replaying goroutine.
// Like TraceFn, the field is per-checker state: Clone() does not copy
// it, and implementations need not be safe for concurrent use unless
// the same checker instance replays cases concurrently. Unlike
// TraceFn, an Observer does not force the interpreter: the compiled
// fast path emits the same event sequence from its DFA tables.
type Observer interface {
	// ReplayBegin opens a case replay. engine is EngineInterpreted or
	// EngineCompiled; entries is the case-slice length.
	ReplayBegin(caseID, purpose, engine string, entries int)
	// EntryAccepted fires after entry step was consumed and the
	// configuration set advanced.
	EntryAccepted(step int, e *audit.Entry, st StepStats)
	// EntryRejected fires when entry step diverges from every live
	// configuration; expl carries the expected observable set at that
	// point. ReplayEnd still follows.
	EntryRejected(step int, e *audit.Entry, expl *Explanation)
	// ReplayEnd closes the replay with the decided report (compliant,
	// violation, or indeterminate). It is not called when the replay
	// aborts with a transport-level error (e.g. context cancellation).
	ReplayEnd(rep *Report)
}

// StepStats describes one accepted entry from the engine's point of
// view.
type StepStats struct {
	// ConfigsBefore/ConfigsAfter are the configuration-set sizes
	// around the WeakNext expansion. On the compiled engine these are
	// the member counts of the DFA states, which the differential
	// suite keeps equal to the interpreter's deduplicated sets.
	ConfigsBefore int
	ConfigsAfter  int
	// Candidates is the number of enabled observable transitions
	// (WeakNext targets) examined across the configuration set.
	// Interpreter only; 0 on the compiled engine, whose tables have
	// pre-resolved the candidate set.
	Candidates int
	// Absorbed reports that at least one configuration accepted the
	// entry via line-8 absorption (an action inside an already-active
	// task) rather than a task-boundary transition. Interpreter only.
	Absorbed bool
	// SymbolCacheHit reports that the compiled engine resolved the
	// entry's (task, role, failure) symbol from its direct-mapped
	// cache instead of the DFA's symbol index. Compiled engine only.
	SymbolCacheHit bool
}
