package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/policy"
)

func TestCheckCaseWithSkipsBridgesGaps(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)

	// T2's execution was never logged (a "silent activity"): plain
	// Algorithm 1 rejects, a budget of 1 accepts with one hypothesized
	// execution.
	gap := trailOf("LN-1", "P:T1", "P:T3")
	plain, err := c.CheckCase(gap, "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Compliant {
		t.Fatalf("plain checker accepted the gapped trail")
	}
	rep, err := c.CheckCaseWithSkips(gap, "LN-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 1 {
		t.Fatalf("skip replay: %+v", rep)
	}
	if len(rep.SkippedLabels) != 1 || rep.SkippedLabels[0] != "P.T2" {
		t.Fatalf("skipped labels = %v, want [P.T2]", rep.SkippedLabels)
	}

	// Two consecutive gaps need budget 2.
	gap2 := trailOf("LN-1", "P:T3")
	rep, err = c.CheckCaseWithSkips(gap2, "LN-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatalf("budget 1 bridged a 2-gap")
	}
	rep, err = c.CheckCaseWithSkips(gap2, "LN-1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 2 {
		t.Fatalf("budget 2: %+v", rep)
	}
}

func TestCheckCaseWithSkipsPrefersFewestSkips(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	// A fully logged trail must report zero skips even with budget.
	full := trailOf("LN-1", "P:T1", "P:T2", "P:T3")
	rep, err := c.CheckCaseWithSkips(full, "LN-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 0 || len(rep.SkippedLabels) != 0 {
		t.Fatalf("full trail: %+v", rep)
	}
}

func TestCheckCaseWithSkipsStillRejectsImpossible(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	// A foreign task cannot be explained by any number of skips.
	rep, err := c.CheckCaseWithSkips(trailOf("LN-1", "P:T1", "P:T9"), "LN-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatalf("skips explained an impossible task")
	}
	// Unknown purpose passes through.
	rep, err = c.CheckCaseWithSkips(trailOf("ZZ-1", "P:T1"), "ZZ-1", 3)
	if err != nil || rep.Compliant {
		t.Fatalf("unknown purpose: %+v %v", rep, err)
	}
}

func TestCheckCaseWithSkipsOnBranches(t *testing.T) {
	p := bpmn.NewBuilder("Branch").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		Task("T1b", "P", "").Task("T2b", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "T1b", "E1").Seq("G", "T2", "T2b", "E2").
		MustBuild()
	c := newChecker(t, p, "BR", nil)
	// Log shows T0 then T1b: the skip must be hypothesized on the T1
	// branch specifically.
	rep, err := c.CheckCaseWithSkips(trailOf("BR-1", "P:T0", "P:T1b"), "BR-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.SkipsUsed != 1 || rep.SkippedLabels[0] != "P.T1" {
		t.Fatalf("branch skip: %+v", rep)
	}
}

func TestSeverityRanking(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	consents := policy.NewConsentRegistry()
	consents.Grant("P9", "Linear")
	scorer := NewSeverityScorer(consents)

	// Three infringing cases of increasing gravity:
	// LN-1: late deviation, consented subject.
	// LN-2: first-entry deviation, non-consenting subject (clinical).
	// LN-3: first-entry deviation, three subjects harvested.
	mk := func(seq int, caseID, task, subject, section string) audit.Entry {
		return audit.Entry{
			User: "u", Role: "P", Action: "read",
			Object: policy.Object{Subject: subject, Path: []string{"EPR", section}},
			Task:   task, Case: caseID,
			Time:   time.Date(2026, 1, 2, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
			Status: audit.Success,
		}
	}
	entries := []audit.Entry{
		mk(0, "LN-1", "T1", "P9", "Clinical"),
		mk(1, "LN-1", "T2", "P9", "Clinical"),
		mk(2, "LN-1", "T1", "P9", "Clinical"), // deviates at entry 2 of 3
		mk(10, "LN-2", "T2", "P1", "Clinical"),
		mk(20, "LN-3", "T2", "A", "Demographics"),
		mk(21, "LN-3", "T2", "B", "Demographics"),
		mk(22, "LN-3", "T2", "C", "Demographics"),
	}
	trail := audit.NewTrail(entries)
	reports, err := c.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	res := &AuditResult{CaseReports: reports}
	ranked := NewSeverityScorer(consents).Rank(res, trail)
	if len(ranked) != 3 {
		t.Fatalf("ranked %d infringements, want 3", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatalf("ranking not descending: %v", ranked)
		}
	}
	byCase := map[string]ScoredReport{}
	for _, r := range ranked {
		byCase[r.Report.Case] = r
	}
	// The consented, late, single-subject deviation scores lowest.
	if !(byCase["LN-1"].Score < byCase["LN-2"].Score) {
		t.Errorf("LN-1 (%d) should score below LN-2 (%d)", byCase["LN-1"].Score, byCase["LN-2"].Score)
	}
	if byCase["LN-1"].Consent != 0 {
		t.Errorf("LN-1 consent component = %d, want 0 (P9 consented)", byCase["LN-1"].Consent)
	}
	if byCase["LN-3"].Spread != 15 {
		t.Errorf("LN-3 spread = %d, want 15 (three subjects)", byCase["LN-3"].Spread)
	}
	if byCase["LN-2"].Progress != 15 {
		t.Errorf("LN-2 progress = %d, want 15 (deviated at entry 0)", byCase["LN-2"].Progress)
	}
	// Compliant reports score zero.
	ok := c
	rep, err := ok.CheckCase(trailOf("LN-9", "P:T1"), "LN-9")
	if err != nil {
		t.Fatal(err)
	}
	if s := scorer.Score(rep, trailOf("LN-9", "P:T1")); s.Score != 0 {
		t.Errorf("compliant case scored %d", s.Score)
	}
}

func TestExpirePending(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	trail := trailOf("LN-1", "P:T1") // pending forever
	reports, err := c.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	if !reports[0].Compliant || !reports[0].Pending {
		t.Fatalf("setup: %s", reports[0])
	}
	last := trail.At(trail.Len() - 1).Time

	// Within the duration: untouched.
	ExpirePending(reports, trail, 24*time.Hour, last.Add(time.Hour))
	if !reports[0].Compliant {
		t.Fatalf("expired too early: %s", reports[0])
	}
	// Beyond it: infringement of kind expired.
	ExpirePending(reports, trail, 24*time.Hour, last.Add(48*time.Hour))
	if reports[0].Compliant || reports[0].Violation.Kind != ViolationExpired {
		t.Fatalf("not expired: %s", reports[0])
	}
	if got := reports[0].Violation.Kind.String(); got != "expired" {
		t.Fatalf("kind string = %q", got)
	}
}

// TestMonitorSnapshotRestore: feed half a case, snapshot, restore into a
// fresh monitor, feed the rest — verdicts and status must match a
// monitor that saw everything.
func TestMonitorSnapshotRestore(t *testing.T) {
	mkChecker := func() *Checker { return newChecker(t, linearProc(t), "LN", nil) }
	entries := trailOf("LN-1", "P:T1", "P:T1", "P:T2", "P:T3").Entries()
	bad := trailOf("LN-2", "P:T2").Entries()

	// Reference: one continuous monitor.
	ref := NewMonitor(mkChecker())
	for _, e := range entries {
		if v, err := ref.Feed(e); err != nil || !v.OK {
			t.Fatalf("ref feed: %+v %v", v, err)
		}
	}

	// Snapshot after two entries, restore, continue.
	m1 := NewMonitor(mkChecker())
	for _, e := range entries[:2] {
		if v, err := m1.Feed(e); err != nil || !v.OK {
			t.Fatalf("pre-snapshot feed: %+v %v", v, err)
		}
	}
	if v, err := m1.Feed(bad[0]); err != nil || v.OK {
		t.Fatalf("bad case should deviate: %+v %v", v, err)
	}
	var buf strings.Builder
	if err := m1.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	m2, err := RestoreMonitor(mkChecker(), strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries[2:] {
		if v, err := m2.Feed(e); err != nil || !v.OK {
			t.Fatalf("post-restore feed: %+v %v", v, err)
		}
	}
	// Deviated case stays dead across the restore.
	if v, err := m2.Feed(bad[0]); err != nil || v.OK {
		t.Fatalf("dead case revived: %+v %v", v, err)
	}

	refSt, err := ref.Status()
	if err != nil {
		t.Fatal(err)
	}
	gotSt, err := m2.Status()
	if err != nil {
		t.Fatal(err)
	}
	// The restored monitor has LN-1 (healthy, complete) and LN-2
	// (deviated); the reference only saw LN-1.
	if len(gotSt) != 2 {
		t.Fatalf("status = %+v", gotSt)
	}
	var ln1 CaseStatus
	for _, st := range gotSt {
		if st.Case == "LN-1" {
			ln1 = st
		}
	}
	if ln1.CanComplete != refSt[0].CanComplete || ln1.Entries != refSt[0].Entries {
		t.Fatalf("restored LN-1 %+v differs from reference %+v", ln1, refSt[0])
	}
}

// TestRestoreMonitorErrors covers the failure paths.
func TestRestoreMonitorErrors(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	cases := []string{
		``,
		`{"version":3,"cases":{}}`,
		`{"version":1,"cases":{"XX-1":{"purpose":"Ghost","configs":[]}}}`,
		`{"version":1,"cases":{"LN-1":{"purpose":"Linear","configs":[{"state":"]["}]}}}`,
		`{"version":2,"states":["nil"],"cases":{"LN-1":{"purpose":"Linear","configs":[{"state_ref":4}]}}}`,
	}
	for i, src := range cases {
		if _, err := RestoreMonitor(c, strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
