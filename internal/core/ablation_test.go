package core

import (
	"testing"

	"repro/internal/audit"
)

// TestAbsorptionAblation demonstrates why Algorithm 1's line 8 exists
// (the Section 3.5 alignment argument): without absorption, the 1-to-n
// mapping between tasks and log entries breaks and any multi-action
// task is falsely flagged.
func TestAbsorptionAblation(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	multi := trailOf("LN-1", "P:T1", "P:T1", "P:T2", "P:T3")

	rep, err := c.CheckCase(multi, "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant {
		t.Fatalf("with absorption: %s", rep)
	}

	c.DisableAbsorption = true
	rep, err = c.CheckCase(multi, "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant {
		t.Fatalf("ablated checker accepted a multi-action task")
	}
	if rep.StepsReplayed != 1 {
		t.Fatalf("ablated checker deviated at step %d, want 1 (the second T1 action)", rep.StepsReplayed)
	}

	// Single-action trails are unaffected by the ablation.
	single := trailOf("LN-1", "P:T1", "P:T2", "P:T3")
	rep, err = c.CheckCase(single, "LN-1")
	if err != nil || !rep.Compliant {
		t.Fatalf("single-action trail under ablation: %v %v", rep, err)
	}
}

// TestMaxConfigurationsGuard exercises the safety cap.
func TestMaxConfigurationsGuard(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	c.MaxConfigurations = 1
	// A linear process never needs more than one configuration, so the
	// cap of 1 must still work.
	rep, err := c.CheckCase(trailOf("LN-1", "P:T1", "P:T2"), "LN-1")
	if err != nil || !rep.Compliant {
		t.Fatalf("cap=1 on linear process: %v %v", rep, err)
	}
}

// TestEmptyCaseSlice: a case with no entries is trivially a (pending)
// prefix.
func TestEmptyCaseSlice(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	rep, err := c.CheckCase(audit.NewTrail(nil), "LN-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || !rep.Pending || rep.Entries != 0 {
		t.Fatalf("empty case: %s", rep)
	}
}
