package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/automaton"
	"repro/internal/cows"
	"repro/internal/lts"
	"repro/internal/policy"
)

// errConfigCap marks a configuration-set overflow; the replay loop
// converts it to an indeterminate verdict rather than failing the run.
var errConfigCap = errors.New("core: configuration set cap exceeded")

// errRecoveredPanic marks a panic recovered during one case's analysis.
var errRecoveredPanic = errors.New("core: recovered panic")

// indeterminacyFor classifies err as an abandon-this-case condition
// (budget exhaustion, configuration cap, isolated panic) and returns
// the corresponding Indeterminacy, or nil for genuine errors.
func indeterminacyFor(err error) *Indeterminacy {
	switch {
	case errors.Is(err, errConfigCap):
		return &Indeterminacy{Cause: CauseConfigurationCap, EntryIndex: -1, Reason: err.Error()}
	case errors.Is(err, lts.ErrBudgetExceeded), errors.Is(err, lts.ErrNotFinitelyObservable):
		return &Indeterminacy{Cause: CauseBudgetExceeded, EntryIndex: -1, Reason: err.Error()}
	case errors.Is(err, errRecoveredPanic):
		return &Indeterminacy{Cause: CauseRecoveredPanic, EntryIndex: -1, Reason: err.Error()}
	}
	return nil
}

// indeterminateReport builds the tri-state "cannot decide" report,
// explanation included (every abstention names the budget it hit).
func indeterminateReport(caseID, purpose string, entries, steps int, ind *Indeterminacy) *Report {
	return &Report{
		Case: caseID, Purpose: purpose, Entries: entries,
		Outcome: OutcomeIndeterminate, Indeterminate: ind,
		StepsReplayed: steps,
		Explanation:   explainIndeterminacy(caseID, purpose, ind),
	}
}

// ActiveTask is one element of a configuration's active-task set
// (Definition 6): a task currently in execution, with the role (pool)
// it belongs to.
type ActiveTask struct {
	Role string
	Task string
}

func (a ActiveTask) String() string { return a.Role + "·" + a.Task }

// activeLess orders active tasks by (Role, Task); the internal canonical
// order of activeSet slices (reports re-sort by String for display).
func activeLess(a, b ActiveTask) bool {
	if a.Role != b.Role {
		return a.Role < b.Role
	}
	return a.Task < b.Task
}

// activeSet is an interned active-task set: a sorted, deduplicated slice
// with a dense per-purpose ID. Equal sets share one value, so comparing
// sets — and keying the configuration memo — is an integer compare
// instead of rebuilding and hashing a map per step.
type activeSet struct {
	id    uint32
	tasks []ActiveTask // sorted by activeLess, deduplicated; never mutated
}

// activeInterner deduplicates active sets per purpose.
type activeInterner struct {
	mu    sync.RWMutex
	byKey map[string]*activeSet
}

// intern returns the canonical activeSet for tasks (which must be sorted
// by activeLess and deduplicated). The input slice is copied on first
// sight, so callers may reuse scratch buffers.
func (ai *activeInterner) intern(tasks []ActiveTask) *activeSet {
	var b strings.Builder
	for _, t := range tasks {
		b.WriteString(t.Role)
		b.WriteByte(0)
		b.WriteString(t.Task)
		b.WriteByte(1)
	}
	key := b.String()
	ai.mu.RLock()
	as, ok := ai.byKey[key]
	ai.mu.RUnlock()
	if ok {
		return as
	}
	ai.mu.Lock()
	defer ai.mu.Unlock()
	if as, ok := ai.byKey[key]; ok {
		return as
	}
	as = &activeSet{id: uint32(len(ai.byKey)), tasks: append([]ActiveTask(nil), tasks...)}
	ai.byKey[key] = as
	return as
}

// succ is one precomputed successor of a configuration: an observable
// label, the interned state it leads to, and the interned active-task
// set in that state.
type succ struct {
	label  cows.Label
	state  cows.Service
	id     lts.StateID
	active *activeSet
}

// Configuration is Definition 6: the current state, the set of active
// tasks in that state, and the WeakNext successors with their active
// sets. Configurations are immutable and memoized per purpose by
// (state ID, active-set ID): in looping processes the same handful of
// configurations recur thousands of times, so replay fetches them from
// a hash map instead of rebuilding successor slices and active maps per
// entry. The memo is shared by every checker cloned from the same
// runtime and is safe for concurrent use.
type Configuration struct {
	state  cows.Service
	id     lts.StateID
	active *activeSet
	next   []succ
}

// ActiveTasks returns the sorted active-task set (for reports and
// tests).
func (c *Configuration) ActiveTasks() []ActiveTask {
	out := append([]ActiveTask(nil), c.active.tasks...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// NextLabels returns the sorted distinct observable labels available
// from the configuration.
func (c *Configuration) NextLabels() []string {
	set := map[string]bool{}
	for _, s := range c.next {
		set[s.label.Endpoint()] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// memoKey identifies a configuration up to state congruence and active
// set — two small dense integers packed into one word.
func (c *Configuration) memoKey() uint64 { return confKey(c.id, c.active.id) }

func confKey(id lts.StateID, activeID uint32) uint64 {
	return uint64(uint32(id))<<32 | uint64(activeID)
}

// purposeRT is the shared per-purpose runtime: the warm LTS system, the
// active-set interner and the configuration memo. All fields are safe
// for concurrent use, so any number of case checks (and checkers cloned
// from the same runtime) share one warm instance.
type purposeRT struct {
	sys     *lts.System
	active  activeInterner
	empty   *activeSet
	configs sync.Map // uint64 (confKey) -> *Configuration

	// compiled is the purpose's ahead-of-time automaton slot (DESIGN.md
	// §11): one compile attempt (or installed artifact) shared by every
	// checker cloned from the same runtime. compiledMu serializes the
	// lazy compile; readers go through the atomic pointer.
	compiledMu sync.Mutex
	compiled   atomic.Pointer[compiledResult]
}

func newPurposeRT(p *Purpose, maxSilent int) *purposeRT {
	var opts []lts.Option
	if maxSilent > 0 {
		opts = append(opts, lts.WithMaxSilentDepth(maxSilent))
	}
	rt := &purposeRT{
		sys:    lts.NewSystem(p.Observable, opts...),
		active: activeInterner{byKey: map[string]*activeSet{}},
	}
	rt.empty = rt.active.intern(nil)
	return rt
}

// checkerRT is the cache state shared between a checker and its clones:
// one purposeRT per purpose, created on demand.
type checkerRT struct {
	mu       sync.RWMutex
	purposes map[string]*purposeRT
}

// Checker runs Algorithm 1. Checking methods are safe for concurrent
// use (per-purpose LTS systems and configuration memos are shared,
// read-mostly and internally synchronized, so parallel per-case analyses
// share warm caches — the Section 7 parallelization); mutating the
// exported configuration fields or setting TraceFn concurrently with
// checks is not.
type Checker struct {
	registry *Registry
	roles    *policy.RoleHierarchy

	// StrictFailureTask requires a failure entry's sys·Err label to
	// originate from the failing entry's own task. The paper's
	// Algorithm 1 (line 10) accepts any sys·Err; strict matching is
	// the sharper default, switchable for fidelity experiments.
	StrictFailureTask bool

	// DisableAbsorption ablates Algorithm 1's line 8 (actions within an
	// active task are absorbed): every entry must then fire a task
	// label. The ablation demonstrates why the paper's 1-to-n
	// task↔action mapping (Section 3.5) needs the active-task set —
	// any task logging more than one action becomes a false positive.
	DisableAbsorption bool

	// MaxConfigurations caps the configuration set as a safeguard
	// against pathological nondeterminism; 0 means DefaultMaxConfigurations.
	// Exceeding the cap yields an OutcomeIndeterminate report for the
	// case, not an error.
	MaxConfigurations int

	// MaxSilentDepth overrides the per-purpose LTS silent-depth guard
	// (0 = lts.DefaultMaxSilentDepth). It must be set before the first
	// check against a purpose: the per-purpose runtime is built once.
	MaxSilentDepth int

	// TraceFn, when set, is invoked after each replayed entry with the
	// surviving configuration set — the data behind the paper's
	// Figure 6 walkthrough. The configurations are shared memoized
	// values: treat them as read-only. Leave nil in production use.
	// Setting TraceFn disables the compiled fast path (the automaton
	// has no per-entry configuration sets to hand out).
	TraceFn func(step int, entry audit.Entry, configs []*Configuration)

	// UseCompiled enables the ahead-of-time automaton fast path
	// (DESIGN.md §11): replay becomes one table lookup per entry. The
	// automaton is compiled lazily on first use (or installed via
	// SetCompiled); when it is absent — the purpose is not compilable,
	// compilation exceeded its budgets, or the checker's flags differ
	// from the automaton's — the interpreter runs instead and the
	// report records the fallback cause.
	UseCompiled bool

	// MaxAutomatonStates bounds subset construction when compiling
	// (0 = automaton.DefaultMaxStates). Exceeding it makes the purpose
	// fall back to the interpreter; it never affects verdicts.
	MaxAutomatonStates int

	// MinimizeAutomata runs Hopcroft minimization and alphabet
	// compaction after compiling (automaton.CompileInput.Minimize):
	// smaller tables, identical reports. It participates in the
	// artifact fingerprint, so minimized and dense artifacts never
	// alias in a cache.
	MinimizeAutomata bool

	// Observer, when set, receives per-entry replay events from
	// whichever engine decides the case (see Observer). Unlike TraceFn
	// it does not disable the compiled fast path, and like TraceFn it
	// is per-clone state: Clone() does not copy it, and the observer is
	// invoked synchronously from the replaying goroutine. Leave nil in
	// production hot paths — the nil check is the only cost then.
	Observer Observer

	// Coverage, when set, records which compiled-DFA states and
	// transitions replays visit (automaton.CoverageSet, keyed per
	// automaton). The scenario runner uses it to report per-fixture
	// state/edge coverage; it only observes the compiled engine — the
	// interpreter has no finite table to cover. Like Observer it is
	// per-clone state (Clone does not copy it) and costs one nil check
	// per replay when unset. Leave nil in production.
	Coverage *automaton.CoverageSet

	rt *checkerRT
}

// DefaultMaxConfigurations bounds the configuration set.
const DefaultMaxConfigurations = 4096

// NewChecker builds a checker over the registry. roles may be nil for
// exact role matching.
func NewChecker(reg *Registry, roles *policy.RoleHierarchy) *Checker {
	return &Checker{
		registry:          reg,
		roles:             roles,
		StrictFailureTask: true,
		rt:                &checkerRT{purposes: map[string]*purposeRT{}},
	}
}

// Clone returns a checker sharing the registry, configuration AND the
// warm per-purpose caches (LTS systems and configuration memos — both
// concurrency-safe), for use on another goroutine. Workers fanned out
// over clones therefore share one warm LTS instead of each re-deriving
// it cold; flag fields (StrictFailureTask, MaxConfigurations) remain
// per-clone, and TraceFn/Observer are deliberately NOT copied — an
// observer belongs to exactly one replaying goroutine.
func (c *Checker) Clone() *Checker {
	return &Checker{
		registry:           c.registry,
		roles:              c.roles,
		StrictFailureTask:  c.StrictFailureTask,
		DisableAbsorption:  c.DisableAbsorption,
		MaxConfigurations:  c.MaxConfigurations,
		MaxSilentDepth:     c.MaxSilentDepth,
		UseCompiled:        c.UseCompiled,
		MaxAutomatonStates: c.MaxAutomatonStates,
		MinimizeAutomata:   c.MinimizeAutomata,
		rt:                 c.rt,
	}
}

// runtime returns the shared per-purpose runtime, creating it on first
// use. Read path is a shared-lock map hit.
func (c *Checker) runtime(p *Purpose) *purposeRT {
	c.rt.mu.RLock()
	rt, ok := c.rt.purposes[p.Name]
	c.rt.mu.RUnlock()
	if ok {
		return rt
	}
	c.rt.mu.Lock()
	defer c.rt.mu.Unlock()
	if rt, ok := c.rt.purposes[p.Name]; ok {
		return rt
	}
	rt = newPurposeRT(p, c.MaxSilentDepth)
	c.rt.purposes[p.Name] = rt
	return rt
}

// system exposes the warm per-purpose LTS (diagnostics, tests).
func (c *Checker) system(p *Purpose) *lts.System { return c.runtime(p).sys }

// roleMatches reports whether the entry's role may perform a task of the
// given pool role: equality, or specialization under the hierarchy
// (Algorithm 1 line 5: r is a generalization of e.role).
func (c *Checker) roleMatches(entryRole, poolRole string) bool {
	if entryRole == poolRole {
		return true
	}
	if c.roles == nil {
		return false
	}
	return c.roles.Specializes(entryRole, poolRole)
}

// newConfiguration returns the memoized configuration for (state,
// active), building it — WeakNext successors and their interned active
// sets — only on first sight of that pair.
func (c *Checker) newConfiguration(rt *purposeRT, pur *Purpose, state cows.Service, id lts.StateID, active *activeSet) (*Configuration, error) {
	key := confKey(id, active.id)
	if v, ok := rt.configs.Load(key); ok {
		return v.(*Configuration), nil
	}
	obs, err := rt.sys.WeakNext(state)
	if err != nil {
		return nil, fmt.Errorf("core: WeakNext for purpose %q: %w", pur.Name, err)
	}
	conf := &Configuration{state: state, id: id, active: active}
	if len(obs) > 0 {
		conf.next = make([]succ, 0, len(obs))
	}
	var scratch []ActiveTask
	for _, o := range obs {
		var na *activeSet
		na, scratch = nextActive(rt, pur, active, o.Label, scratch)
		conf.next = append(conf.next, succ{
			label:  o.Label,
			state:  o.State,
			id:     o.ID,
			active: na,
		})
	}
	v, _ := rt.configs.LoadOrStore(key, conf)
	return v.(*Configuration), nil
}

// nextActive applies the origin discipline: tasks whose token produced
// the label stop being active; a task label activates its task
// (DESIGN.md §4). The result is interned; scratch is reused across
// successors of one configuration build.
func nextActive(rt *purposeRT, pur *Purpose, active *activeSet, l cows.Label, scratch []ActiveTask) (*activeSet, []ActiveTask) {
	origins := l.Origins()
	out := scratch[:0]
	for _, a := range active.tasks {
		consumed := false
		for _, o := range origins {
			if o == a.Task {
				consumed = true
				break
			}
		}
		if !consumed {
			out = append(out, a)
		}
	}
	if l.Op != "Err" && pur.Process.HasTask(l.Op) {
		na := ActiveTask{Role: l.Partner, Task: l.Op}
		pos := sort.Search(len(out), func(i int) bool { return !activeLess(out[i], na) })
		if pos == len(out) || out[pos] != na {
			out = append(out, ActiveTask{})
			copy(out[pos+1:], out[pos:])
			out[pos] = na
		}
	}
	return rt.active.intern(out), out
}

// matchesEntry reports whether a successor's label accepts the entry
// (Algorithm 1 line 10): a successful entry needs the task's own label
// performed by a pool the entry's role specializes; a failure needs
// sys·Err (strictly: originating from the entry's task).
func (c *Checker) matchesEntry(s *succ, e audit.Entry) bool {
	if e.Status == audit.Failure {
		if s.label.Op != "Err" {
			return false
		}
		if !c.StrictFailureTask {
			return true
		}
		for _, o := range s.label.Origins() {
			if o == e.Task {
				return true
			}
		}
		return false
	}
	return s.label.Op == e.Task && c.roleMatches(e.Role, s.label.Partner)
}

// isActive reports whether the entry's task is active in the
// configuration under the role hierarchy (Algorithm 1 line 8).
func (c *Checker) isActive(conf *Configuration, e audit.Entry) bool {
	for _, a := range conf.active.tasks {
		if a.Task == e.Task && c.roleMatches(e.Role, a.Role) {
			return true
		}
	}
	return false
}

// CheckCase replays the case's slice of the trail against the purpose
// its case code names — Algorithm 1. The returned report says whether
// the replay is a valid (prefix of an) execution of the purpose's
// process, and if not, which entry deviated and what was expected.
func (c *Checker) CheckCase(trail *audit.Trail, caseID string) (*Report, error) {
	return c.CheckCaseContext(context.Background(), trail, caseID)
}

// CheckCaseContext is CheckCase honoring ctx: cancellation or deadline
// expiry inside the replay loop returns the context's error promptly.
// The checker's shared caches stay consistent, so the same checker can
// be reused after a cancellation. A panic during the case's analysis is
// recovered and isolated into an OutcomeIndeterminate report instead of
// taking down the whole run.
func (c *Checker) CheckCaseContext(ctx context.Context, trail *audit.Trail, caseID string) (rep *Report, err error) {
	pur := c.registry.ForCase(caseID)
	if pur == nil {
		v := &Violation{
			Kind:   ViolationUnknownPurpose,
			Reason: fmt.Sprintf("case code %q is not bound to any registered purpose", CaseCode(caseID)),
		}
		return &Report{
			Case:        caseID,
			Compliant:   false,
			Outcome:     OutcomeViolation,
			Violation:   v,
			Explanation: explainUnknownPurpose(caseID, v),
		}, nil
	}
	entries := trail.ByCase(caseID).View()
	defer func() {
		if r := recover(); r != nil {
			rep = indeterminateReport(caseID, pur.Name, len(entries), 0, &Indeterminacy{
				Cause:      CauseRecoveredPanic,
				EntryIndex: -1,
				Reason:     fmt.Sprintf("recovered panic: %v", r),
			})
			err = nil
		}
	}()
	return c.replay(ctx, pur, caseID, entries)
}

// initialConfiguration returns the memoized configuration of the
// purpose's initial state with no active tasks.
func (c *Checker) initialConfiguration(rt *purposeRT, pur *Purpose) (*Configuration, error) {
	return c.newConfiguration(rt, pur, pur.Initial, rt.sys.Intern(pur.Initial), rt.empty)
}

// replay decides one case, dispatching to the compiled automaton when
// the fast path is on and available, and to the Algorithm 1 interpreter
// otherwise (recording why — DESIGN.md §11 fallback rules).
func (c *Checker) replay(ctx context.Context, pur *Purpose, caseID string, entries []audit.Entry) (*Report, error) {
	if c.UseCompiled {
		d, why := c.compiledFor(pur)
		if d != nil {
			return c.replayCompiled(ctx, d, pur, caseID, entries)
		}
		rep, err := c.replayInterpreted(ctx, pur, caseID, entries)
		if rep != nil {
			rep.Engine = EngineInterpreted
			rep.EngineFallback = why
		}
		return rep, err
	}
	return c.replayInterpreted(ctx, pur, caseID, entries)
}

// replayInterpreted is the body of Algorithm 1 over a chronological
// entry slice. Budget exhaustion and configuration-cap overflow yield
// an OutcomeIndeterminate report; ctx cancellation yields the context's
// error.
func (c *Checker) replayInterpreted(ctx context.Context, pur *Purpose, caseID string, entries []audit.Entry) (*Report, error) {
	rt := c.runtime(pur)
	maxConfigs := c.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}

	// obs is hoisted so the hot loop pays one predictable nil check per
	// entry; all observer-only bookkeeping hides behind it.
	obs := c.Observer
	if obs != nil {
		obs.ReplayBegin(caseID, pur.Name, EngineInterpreted, len(entries))
	}

	initial, err := c.initialConfiguration(rt, pur)
	if err != nil {
		if ind := indeterminacyFor(err); ind != nil {
			return observed(obs, indeterminateReport(caseID, pur.Name, len(entries), 0, ind)), nil
		}
		return nil, err
	}
	configs := []*Configuration{initial}
	rep := &Report{Case: caseID, Purpose: pur.Name, Entries: len(entries)}

	// Background contexts have a nil Done channel; skip the per-entry
	// poll entirely then.
	done := ctx.Done()

	// Scratch reused across entries: the dedup set is cleared per step
	// and the output buffer alternates with the input slice, so a warm
	// replay performs no per-entry allocations.
	seen := make(map[uint64]bool, 8)
	var spare []*Configuration

	for i, e := range entries {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nextConfigs, found, err := c.advance(rt, pur, configs, e, maxConfigs, seen, spare)
		if err != nil {
			if ind := indeterminacyFor(err); ind != nil {
				ind.EntryIndex = i
				return observed(obs, indeterminateReport(caseID, pur.Name, len(entries), i, ind)), nil
			}
			return nil, fmt.Errorf("core: at entry %d of case %s: %w", i, caseID, err)
		}
		if !found {
			rep.Compliant = false
			rep.Outcome = OutcomeViolation
			rep.Violation = c.describeViolation(pur, configs, i, e)
			rep.StepsReplayed = i
			rep.Explanation = c.explainViolation(pur, caseID, rep.Violation, len(configs))
			if obs != nil {
				obs.EntryRejected(i, &entries[i], rep.Explanation)
				obs.ReplayEnd(rep)
			}
			return rep, nil
		}
		if len(nextConfigs) > rep.PeakConfigurations {
			rep.PeakConfigurations = len(nextConfigs)
		}
		if obs != nil {
			obs.EntryAccepted(i, &entries[i], c.stepStats(configs, nextConfigs, e))
		}
		spare = configs[:0]
		configs = nextConfigs
		if c.TraceFn != nil {
			c.TraceFn(i, e, configs)
		}
	}

	rep.Compliant = true
	rep.Outcome = OutcomeCompliant
	rep.StepsReplayed = len(entries)
	rep.FinalConfigurations = len(configs)
	for _, conf := range configs {
		done, err := rt.sys.CanTerminateSilently(conf.state)
		if err != nil {
			if ind := indeterminacyFor(err); ind != nil {
				ind.EntryIndex = len(entries)
				ind.Reason = "completion check: " + ind.Reason
				return observed(obs, indeterminateReport(caseID, pur.Name, len(entries), len(entries), ind)), nil
			}
			return nil, err
		}
		if done {
			rep.CanComplete = true
			break
		}
	}
	rep.Pending = !rep.CanComplete
	return observed(obs, rep), nil
}

// observed closes an observer's replay with the decided report; the
// identity function when no observer is attached.
func observed(obs Observer, rep *Report) *Report {
	if obs != nil {
		obs.ReplayEnd(rep)
	}
	return rep
}

// stepStats assembles the observer-only per-entry statistics. Only
// called with an observer attached — the extra isActive sweep and
// candidate count never run on the bare hot path.
func (c *Checker) stepStats(configs, next []*Configuration, e audit.Entry) StepStats {
	st := StepStats{ConfigsBefore: len(configs), ConfigsAfter: len(next)}
	for _, conf := range configs {
		st.Candidates += len(conf.next)
		if !st.Absorbed && !c.DisableAbsorption && e.Status == audit.Success && c.isActive(conf, e) {
			st.Absorbed = true
		}
	}
	return st
}

// advance performs one iteration of Algorithm 1's while loop: it feeds
// one entry to every configuration, absorbing in-task actions (line 8)
// and firing matching weak-next labels (line 10). It returns the
// deduplicated next configuration set and whether any configuration
// accepted the entry. seen and out are optional scratch (cleared /
// truncated here) so steady-state callers allocate nothing; the returned
// slice aliases out's backing array when capacity suffices.
func (c *Checker) advance(rt *purposeRT, pur *Purpose, configs []*Configuration, e audit.Entry, maxConfigs int, seen map[uint64]bool, out []*Configuration) ([]*Configuration, bool, error) {
	if seen == nil {
		seen = make(map[uint64]bool, len(configs))
	} else {
		clear(seen)
	}
	nextConfigs := out[:0]
	found := false
	addConfig := func(conf *Configuration) error {
		k := conf.memoKey()
		if seen[k] {
			return nil
		}
		if len(nextConfigs) >= maxConfigs {
			return fmt.Errorf("%w: configuration set exceeds %d", errConfigCap, maxConfigs)
		}
		seen[k] = true
		nextConfigs = append(nextConfigs, conf)
		return nil
	}

	for _, conf := range configs {
		// Line 8: an action within an active, succeeding task is
		// absorbed by the configuration.
		if !c.DisableAbsorption && e.Status == audit.Success && c.isActive(conf, e) {
			found = true
			if err := addConfig(conf); err != nil {
				return nil, false, err
			}
			continue
		}
		// Line 10: otherwise the entry must fire one of the
		// configuration's weak-next labels.
		for i := range conf.next {
			s := &conf.next[i]
			if !c.matchesEntry(s, e) {
				continue
			}
			found = true
			nc, err := c.newConfiguration(rt, pur, s.state, s.id, s.active)
			if err != nil {
				return nil, false, err
			}
			if err := addConfig(nc); err != nil {
				return nil, false, err
			}
		}
	}
	return nextConfigs, found, nil
}

// describeViolation assembles the diagnostic for a rejected entry: what
// the surviving configurations would have accepted instead.
func (c *Checker) describeViolation(pur *Purpose, configs []*Configuration, idx int, e audit.Entry) *Violation {
	v := &Violation{
		Kind:       ViolationInvalidExecution,
		EntryIndex: idx,
		Entry:      &e,
	}
	expected := map[string]bool{}
	activeSet := map[string]bool{}
	for _, conf := range configs {
		for i := range conf.next {
			s := &conf.next[i]
			if s.label.Op == "Err" {
				expected["sys.Err("+strings.Join(s.label.Origins(), "+")+")"] = true
			} else {
				expected[s.label.Endpoint()] = true
			}
		}
		for _, a := range conf.active.tasks {
			activeSet[a.String()] = true
		}
	}
	for l := range expected {
		v.Expected = append(v.Expected, l)
	}
	sort.Strings(v.Expected)
	for a := range activeSet {
		v.ActiveTasks = append(v.ActiveTasks, a)
	}
	sort.Strings(v.ActiveTasks)

	switch {
	case !pur.Process.HasTask(e.Task) && e.Status == audit.Success:
		v.Reason = fmt.Sprintf("task %q is not part of process %q", e.Task, pur.Name)
	case e.Status == audit.Failure:
		v.Reason = fmt.Sprintf("failure of task %q has no matching error handler at this point", e.Task)
	case pur.Process.TaskRole(e.Task) != "" && !c.roleMatches(e.Role, pur.Process.TaskRole(e.Task)):
		v.Reason = fmt.Sprintf("role %q may not perform task %q (pool %q)", e.Role, e.Task, pur.Process.TaskRole(e.Task))
	default:
		v.Reason = fmt.Sprintf("task %q is neither active nor enabled at this point of the process", e.Task)
	}
	return v
}

// CheckTrail replays every case occurring in the trail and returns one
// report per case, ordered by first appearance.
func (c *Checker) CheckTrail(trail *audit.Trail) ([]*Report, error) {
	return c.CheckTrailContext(context.Background(), trail)
}

// CheckTrailContext is CheckTrail honoring ctx between and within case
// replays.
func (c *Checker) CheckTrailContext(ctx context.Context, trail *audit.Trail) ([]*Report, error) {
	var out []*Report
	for _, caseID := range trail.Cases() {
		rep, err := c.CheckCaseContext(ctx, trail, caseID)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// CheckTrailParallel is CheckTrail fanned out over a pool of workers
// sharing this checker's warm caches — the paper's Section 7
// observation that per-case analyses are independent, made concrete.
// Reports are returned in the same order as CheckTrail (first appearance
// of each case), and because configurations and LTS derivations are
// memoized deterministically, the reports are identical to a sequential
// run. workers <= 1 degenerates to CheckTrail.
func (c *Checker) CheckTrailParallel(trail *audit.Trail, workers int) ([]*Report, error) {
	return c.CheckTrailParallelContext(context.Background(), trail, workers)
}

// CheckTrailParallelContext is CheckTrailParallel honoring ctx: workers
// stop claiming cases once the context is done, and the first context
// error is returned.
func (c *Checker) CheckTrailParallelContext(ctx context.Context, trail *audit.Trail, workers int) ([]*Report, error) {
	cases := trail.Cases()
	if workers <= 1 || len(cases) <= 1 {
		return c.CheckTrailContext(ctx, trail)
	}
	if workers > len(cases) {
		workers = len(cases)
	}
	reports := make([]*Report, len(cases))
	errs := make([]error, len(cases))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cases) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				reports[i], errs[i] = c.CheckCaseContext(ctx, trail, cases[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return reports, nil
}

// CheckObject investigates one object per Section 4: for each case in
// which the object (or a sub-resource) was accessed, replay that case.
func (c *Checker) CheckObject(trail *audit.Trail, obj policy.Object) ([]*Report, error) {
	return c.CheckObjectContext(context.Background(), trail, obj)
}

// CheckObjectContext is CheckObject honoring ctx.
func (c *Checker) CheckObjectContext(ctx context.Context, trail *audit.Trail, obj policy.Object) ([]*Report, error) {
	var out []*Report
	for _, caseID := range trail.TouchingObject(obj) {
		rep, err := c.CheckCaseContext(ctx, trail, caseID)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
