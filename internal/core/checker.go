package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/audit"
	"repro/internal/cows"
	"repro/internal/lts"
	"repro/internal/policy"
)

// ActiveTask is one element of a configuration's active-task set
// (Definition 6): a task currently in execution, with the role (pool)
// it belongs to.
type ActiveTask struct {
	Role string
	Task string
}

func (a ActiveTask) String() string { return a.Role + "·" + a.Task }

// succ is one precomputed successor of a configuration: an observable
// label, the state it leads to, and the active-task set in that state.
type succ struct {
	label  cows.Label
	state  cows.Service
	canon  string
	active map[ActiveTask]bool
}

// Configuration is Definition 6: the current state, the set of active
// tasks in that state, and the WeakNext successors with their active
// sets.
type Configuration struct {
	state  cows.Service
	canon  string
	active map[ActiveTask]bool
	next   []succ
}

// ActiveTasks returns the sorted active-task set (for reports and
// tests).
func (c *Configuration) ActiveTasks() []ActiveTask {
	out := make([]ActiveTask, 0, len(c.active))
	for a := range c.active {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// NextLabels returns the sorted distinct observable labels available
// from the configuration.
func (c *Configuration) NextLabels() []string {
	set := map[string]bool{}
	for _, s := range c.next {
		set[s.label.Endpoint()] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// key identifies a configuration up to state congruence and active set.
func (c *Configuration) key() string {
	parts := make([]string, 0, len(c.active))
	for a := range c.active {
		parts = append(parts, a.String())
	}
	sort.Strings(parts)
	return c.canon + "\x00" + strings.Join(parts, ",")
}

// Checker runs Algorithm 1. Checking methods are safe for concurrent
// use (per-purpose LTS systems have guarded caches, so parallel per-case
// analyses share warm caches — the Section 7 parallelization); mutating
// the exported configuration fields or setting TraceFn concurrently with
// checks is not.
type Checker struct {
	registry *Registry
	roles    *policy.RoleHierarchy

	// StrictFailureTask requires a failure entry's sys·Err label to
	// originate from the failing entry's own task. The paper's
	// Algorithm 1 (line 10) accepts any sys·Err; strict matching is
	// the sharper default, switchable for fidelity experiments.
	StrictFailureTask bool

	// DisableAbsorption ablates Algorithm 1's line 8 (actions within an
	// active task are absorbed): every entry must then fire a task
	// label. The ablation demonstrates why the paper's 1-to-n
	// task↔action mapping (Section 3.5) needs the active-task set —
	// any task logging more than one action becomes a false positive.
	DisableAbsorption bool

	// MaxConfigurations caps the configuration set as a safeguard
	// against pathological nondeterminism; 0 means DefaultMaxConfigurations.
	MaxConfigurations int

	// TraceFn, when set, is invoked after each replayed entry with the
	// surviving configuration set — the data behind the paper's
	// Figure 6 walkthrough. Leave nil in production use.
	TraceFn func(step int, entry audit.Entry, configs []*Configuration)

	mu      sync.Mutex
	systems map[string]*lts.System // per purpose
}

// DefaultMaxConfigurations bounds the configuration set.
const DefaultMaxConfigurations = 4096

// NewChecker builds a checker over the registry. roles may be nil for
// exact role matching.
func NewChecker(reg *Registry, roles *policy.RoleHierarchy) *Checker {
	return &Checker{
		registry:          reg,
		roles:             roles,
		StrictFailureTask: true,
		systems:           map[string]*lts.System{},
	}
}

// Clone returns a checker sharing the registry and configuration but
// with fresh LTS caches, for use on another goroutine.
func (c *Checker) Clone() *Checker {
	out := NewChecker(c.registry, c.roles)
	out.StrictFailureTask = c.StrictFailureTask
	out.MaxConfigurations = c.MaxConfigurations
	return out
}

func (c *Checker) system(p *Purpose) *lts.System {
	c.mu.Lock()
	defer c.mu.Unlock()
	y, ok := c.systems[p.Name]
	if !ok {
		y = lts.NewSystem(p.Observable)
		c.systems[p.Name] = y
	}
	return y
}

// roleMatches reports whether the entry's role may perform a task of the
// given pool role: equality, or specialization under the hierarchy
// (Algorithm 1 line 5: r is a generalization of e.role).
func (c *Checker) roleMatches(entryRole, poolRole string) bool {
	if entryRole == poolRole {
		return true
	}
	if c.roles == nil {
		return false
	}
	return c.roles.Specializes(entryRole, poolRole)
}

// newConfiguration builds a configuration around a state, computing its
// WeakNext successors and their active sets from the source active set
// and the origins carried by each label.
func (c *Checker) newConfiguration(y *lts.System, pur *Purpose, state cows.Service, canon string, active map[ActiveTask]bool) (*Configuration, error) {
	obs, err := y.WeakNext(state)
	if err != nil {
		return nil, fmt.Errorf("core: WeakNext for purpose %q: %w", pur.Name, err)
	}
	conf := &Configuration{state: state, canon: canon, active: active}
	for _, o := range obs {
		conf.next = append(conf.next, succ{
			label:  o.Label,
			state:  o.State,
			canon:  o.Canon,
			active: nextActive(pur, active, o.Label),
		})
	}
	return conf, nil
}

// nextActive applies the origin discipline: tasks whose token produced
// the label stop being active; a task label activates its task
// (DESIGN.md §4).
func nextActive(pur *Purpose, active map[ActiveTask]bool, l cows.Label) map[ActiveTask]bool {
	out := make(map[ActiveTask]bool, len(active)+1)
	consumed := map[string]bool{}
	for _, o := range l.Origins() {
		consumed[o] = true
	}
	for a := range active {
		if !consumed[a.Task] {
			out[a] = true
		}
	}
	if l.Op != "Err" && pur.Process.HasTask(l.Op) {
		out[ActiveTask{Role: l.Partner, Task: l.Op}] = true
	}
	return out
}

// matchesEntry reports whether a successor's label accepts the entry
// (Algorithm 1 line 10): a successful entry needs the task's own label
// performed by a pool the entry's role specializes; a failure needs
// sys·Err (strictly: originating from the entry's task).
func (c *Checker) matchesEntry(s succ, e audit.Entry) bool {
	if e.Status == audit.Failure {
		if s.label.Op != "Err" {
			return false
		}
		if !c.StrictFailureTask {
			return true
		}
		for _, o := range s.label.Origins() {
			if o == e.Task {
				return true
			}
		}
		return false
	}
	return s.label.Op == e.Task && c.roleMatches(e.Role, s.label.Partner)
}

// isActive reports whether the entry's task is active in the
// configuration under the role hierarchy (Algorithm 1 line 8).
func (c *Checker) isActive(conf *Configuration, e audit.Entry) bool {
	for a := range conf.active {
		if a.Task == e.Task && c.roleMatches(e.Role, a.Role) {
			return true
		}
	}
	return false
}

// CheckCase replays the case's slice of the trail against the purpose
// its case code names — Algorithm 1. The returned report says whether
// the replay is a valid (prefix of an) execution of the purpose's
// process, and if not, which entry deviated and what was expected.
func (c *Checker) CheckCase(trail *audit.Trail, caseID string) (*Report, error) {
	pur := c.registry.ForCase(caseID)
	if pur == nil {
		return &Report{
			Case:      caseID,
			Compliant: false,
			Violation: &Violation{
				Kind:   ViolationUnknownPurpose,
				Reason: fmt.Sprintf("case code %q is not bound to any registered purpose", CaseCode(caseID)),
			},
		}, nil
	}
	slice := trail.ByCase(caseID)
	return c.replay(pur, caseID, slice.Entries())
}

// replay is the body of Algorithm 1 over a chronological entry slice.
func (c *Checker) replay(pur *Purpose, caseID string, entries []audit.Entry) (*Report, error) {
	y := c.system(pur)
	maxConfigs := c.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}

	initial, err := c.newConfiguration(y, pur, pur.Initial, cows.Canon(pur.Initial), map[ActiveTask]bool{})
	if err != nil {
		return nil, err
	}
	configs := []*Configuration{initial}
	rep := &Report{Case: caseID, Purpose: pur.Name, Entries: len(entries)}

	for i, e := range entries {
		nextConfigs, found, err := c.advance(y, pur, configs, e, maxConfigs)
		if err != nil {
			return nil, fmt.Errorf("core: at entry %d of case %s: %w", i, caseID, err)
		}
		if !found {
			rep.Compliant = false
			rep.Violation = c.describeViolation(pur, configs, i, e)
			rep.StepsReplayed = i
			return rep, nil
		}
		if len(nextConfigs) > rep.PeakConfigurations {
			rep.PeakConfigurations = len(nextConfigs)
		}
		configs = nextConfigs
		if c.TraceFn != nil {
			c.TraceFn(i, e, configs)
		}
	}

	rep.Compliant = true
	rep.StepsReplayed = len(entries)
	rep.FinalConfigurations = len(configs)
	for _, conf := range configs {
		done, err := y.CanTerminateSilently(conf.state)
		if err != nil {
			return nil, err
		}
		if done {
			rep.CanComplete = true
			break
		}
	}
	rep.Pending = !rep.CanComplete
	return rep, nil
}

// advance performs one iteration of Algorithm 1's while loop: it feeds
// one entry to every configuration, absorbing in-task actions (line 8)
// and firing matching weak-next labels (line 10). It returns the
// deduplicated next configuration set and whether any configuration
// accepted the entry.
func (c *Checker) advance(y *lts.System, pur *Purpose, configs []*Configuration, e audit.Entry, maxConfigs int) ([]*Configuration, bool, error) {
	var nextConfigs []*Configuration
	seen := map[string]bool{}
	found := false
	addConfig := func(conf *Configuration) error {
		k := conf.key()
		if seen[k] {
			return nil
		}
		if len(nextConfigs) >= maxConfigs {
			return fmt.Errorf("configuration set exceeds %d", maxConfigs)
		}
		seen[k] = true
		nextConfigs = append(nextConfigs, conf)
		return nil
	}

	for _, conf := range configs {
		// Line 8: an action within an active, succeeding task is
		// absorbed by the configuration.
		if !c.DisableAbsorption && e.Status == audit.Success && c.isActive(conf, e) {
			found = true
			if err := addConfig(conf); err != nil {
				return nil, false, err
			}
			continue
		}
		// Line 10: otherwise the entry must fire one of the
		// configuration's weak-next labels.
		for _, s := range conf.next {
			if !c.matchesEntry(s, e) {
				continue
			}
			found = true
			nc, err := c.newConfiguration(y, pur, s.state, s.canon, s.active)
			if err != nil {
				return nil, false, err
			}
			if err := addConfig(nc); err != nil {
				return nil, false, err
			}
		}
	}
	return nextConfigs, found, nil
}

// describeViolation assembles the diagnostic for a rejected entry: what
// the surviving configurations would have accepted instead.
func (c *Checker) describeViolation(pur *Purpose, configs []*Configuration, idx int, e audit.Entry) *Violation {
	v := &Violation{
		Kind:       ViolationInvalidExecution,
		EntryIndex: idx,
		Entry:      &e,
	}
	expected := map[string]bool{}
	activeSet := map[string]bool{}
	for _, conf := range configs {
		for _, s := range conf.next {
			if s.label.Op == "Err" {
				expected["sys.Err("+strings.Join(s.label.Origins(), "+")+")"] = true
			} else {
				expected[s.label.Endpoint()] = true
			}
		}
		for a := range conf.active {
			activeSet[a.String()] = true
		}
	}
	for l := range expected {
		v.Expected = append(v.Expected, l)
	}
	sort.Strings(v.Expected)
	for a := range activeSet {
		v.ActiveTasks = append(v.ActiveTasks, a)
	}
	sort.Strings(v.ActiveTasks)

	switch {
	case !pur.Process.HasTask(e.Task) && e.Status == audit.Success:
		v.Reason = fmt.Sprintf("task %q is not part of process %q", e.Task, pur.Name)
	case e.Status == audit.Failure:
		v.Reason = fmt.Sprintf("failure of task %q has no matching error handler at this point", e.Task)
	case pur.Process.TaskRole(e.Task) != "" && !c.roleMatches(e.Role, pur.Process.TaskRole(e.Task)):
		v.Reason = fmt.Sprintf("role %q may not perform task %q (pool %q)", e.Role, e.Task, pur.Process.TaskRole(e.Task))
	default:
		v.Reason = fmt.Sprintf("task %q is neither active nor enabled at this point of the process", e.Task)
	}
	return v
}

// CheckTrail replays every case occurring in the trail and returns one
// report per case, ordered by first appearance.
func (c *Checker) CheckTrail(trail *audit.Trail) ([]*Report, error) {
	var out []*Report
	for _, caseID := range trail.Cases() {
		rep, err := c.CheckCase(trail, caseID)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// CheckObject investigates one object per Section 4: for each case in
// which the object (or a sub-resource) was accessed, replay that case.
func (c *Checker) CheckObject(trail *audit.Trail, obj policy.Object) ([]*Report, error) {
	var out []*Report
	for _, caseID := range trail.TouchingObject(obj) {
		rep, err := c.CheckCase(trail, caseID)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}
