package core_test

// Online-monitor and snapshot equivalence for the compiled fast path:
// Feed/Peek/Enabled/Status must agree with the interpreter entry by
// entry, and checkpoints must resume under either engine (DESIGN.md
// §11: snapshots are engine-neutral).

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/loan"
)

func normalizeStatus(in []core.CaseStatus) []core.CaseStatus {
	out := append([]core.CaseStatus(nil), in...)
	for i := range out {
		out[i].Engine = ""
	}
	return out
}

func sortedOffers(in []core.Offer) []core.Offer {
	out := append([]core.Offer(nil), in...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		return !out[i].Active && out[j].Active
	})
	return out
}

// normalizeVerdict strips the engine marker so verdicts from the two
// engines can be compared field by field — Explanation included, which
// must be byte-identical across engines.
func normalizeVerdict(v *core.Verdict) *core.Verdict {
	cp := *v
	cp.Engine = ""
	return &cp
}

func TestCompiledMonitorEquivalence(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, reg, roles)
	mi := core.NewMonitor(p.interp)
	mc := core.NewMonitor(p.compiled)

	for i, e := range trail.Entries() {
		pi, err := mi.Peek(e)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := mc.Peek(e)
		if err != nil {
			t.Fatal(err)
		}
		if pi != pc {
			t.Fatalf("entry %d (%s): Peek %v vs %v", i, e.Task, pi, pc)
		}
		vi, err := mi.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		vc, err := mc.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(normalizeVerdict(vi), normalizeVerdict(vc)) {
			t.Fatalf("entry %d (%s) verdicts diverge:\ninterpreted: %+v\ncompiled:    %+v", i, e.Task, vi, vc)
		}
		oi, err := mi.Enabled(e.Case)
		if err != nil {
			t.Fatal(err)
		}
		oc, err := mc.Enabled(e.Case)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sortedOffers(oi), sortedOffers(oc)) {
			t.Fatalf("entry %d (%s) worklists diverge:\ninterpreted: %+v\ncompiled:    %+v", i, e.Task, oi, oc)
		}
	}

	si, err := mi.Status()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := mc.Status()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeStatus(si), normalizeStatus(sc)) {
		t.Fatalf("status diverges:\ninterpreted: %+v\ncompiled:    %+v", si, sc)
	}
	for _, cs := range sc {
		if !cs.Deviated && cs.Engine != core.EngineCompiled {
			t.Fatalf("live case %s on engine %q", cs.Case, cs.Engine)
		}
	}
}

// TestCompiledSnapshotCrossEngineResume checkpoints a monitor mid-trail
// under one engine and resumes it under the other, in both directions;
// the verdicts and final statuses must match an uninterrupted run.
func TestCompiledSnapshotCrossEngineResume(t *testing.T) {
	reg, roles := loanRegistry(t)
	entries := loan.Trail().Entries()
	half := len(entries) / 2

	run := func(first, second *core.Checker) []core.CaseStatus {
		t.Helper()
		m1 := core.NewMonitor(first)
		for _, e := range entries[:half] {
			if _, err := m1.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := m1.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := core.RestoreMonitor(second, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries[half:] {
			if _, err := m2.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		st, err := m2.Status()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	p := newEnginePair(t, reg, roles)
	baseline := run(p.interp.Clone(), p.interp.Clone())
	compiledToInterp := run(p.compiled.Clone(), p.interp.Clone())
	interpToCompiled := run(p.interp.Clone(), p.compiled.Clone())
	compiledToCompiled := run(p.compiled.Clone(), p.compiled.Clone())

	for name, got := range map[string][]core.CaseStatus{
		"compiled->interpreted": compiledToInterp,
		"interpreted->compiled": interpToCompiled,
		"compiled->compiled":    compiledToCompiled,
	} {
		if !reflect.DeepEqual(normalizeStatus(baseline), normalizeStatus(got)) {
			t.Fatalf("%s resume diverges:\nbaseline: %+v\ngot:      %+v", name, baseline, got)
		}
	}
	// Restoring under the compiled engine must actually promote the
	// live cases onto the automaton.
	for _, cs := range interpToCompiled {
		if !cs.Deviated && cs.Engine != core.EngineCompiled {
			t.Fatalf("case %s restored to engine %q, want compiled", cs.Case, cs.Engine)
		}
	}
}

// TestCompiledSnapshotDeadCases makes sure violation-dead and sticky
// verdict behavior survives a compiled checkpoint.
func TestCompiledSnapshotDeadCases(t *testing.T) {
	reg, roles := loanRegistry(t)
	p := newEnginePair(t, reg, roles)
	mc := core.NewMonitor(p.compiled.Clone())
	bad := diffTrail("LA-66", "IntakeClerk:L01", "Underwriter:L05").Entries()
	var lastV *core.Verdict
	for _, e := range bad {
		v, err := mc.Feed(e)
		if err != nil {
			t.Fatal(err)
		}
		lastV = v
	}
	if lastV.OK || lastV.Violation == nil {
		t.Fatalf("expected violation, got %+v", lastV)
	}
	var buf bytes.Buffer
	if err := mc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := core.RestoreMonitor(p.interp.Clone(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m2.Feed(diffEntry(9, "Underwriter", "L05", "LA-66"))
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Violation == nil {
		t.Fatalf("dead case revived after cross-engine restore: %+v", v)
	}
}
