// Package core implements the paper's contribution: the purpose-control
// framework of Sections 3–5. It ties together data protection policies
// (internal/policy), organizational processes (internal/bpmn encoded via
// internal/encode into internal/cows services), and audit trails
// (internal/audit), and decides — with Algorithm 1 — whether the data
// recorded in a trail were actually processed for the purpose claimed
// when access was granted.
//
// The package exposes:
//
//   - Registry: purposes bound to their organizational processes and
//     case-code prefixes (the "HT" in "HT-1");
//   - Checker: Algorithm 1 over configuration sets (Definition 6),
//     sound and complete for well-founded processes (Theorems 1–2);
//   - Monitor: the online/resumable variant that consumes entries as
//     they are logged;
//   - Framework: the combined preventive + a-posteriori audit the paper
//     envisions (Definition 3 per entry, Algorithm 1 per case).
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/bpmn"
	"repro/internal/cows"
	"repro/internal/encode"
	"repro/internal/lts"
)

// Registry binds purposes (by process name) to organizational processes
// and resolves which purpose a case instantiates from the case
// identifier's code prefix ("HT-1" → the process registered under code
// "HT"). It implements policy.PurposeDirectory. Safe for concurrent use
// after registration is complete.
type Registry struct {
	mu      sync.RWMutex
	byName  map[string]*Purpose
	byCode  map[string]*Purpose
	ordered []string
}

// Purpose is a registered purpose: the organizational process that
// operationalizes it, its COWS encoding, and the case-code prefixes
// that identify its instances.
type Purpose struct {
	Name    string
	Codes   []string
	Process *bpmn.Process
	// Initial is the encoded COWS service: the initial state of one
	// process instance.
	Initial cows.Service
	// Observable is the process's observable-label predicate.
	Observable lts.Observability
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*Purpose{}, byCode: map[string]*Purpose{}}
}

// Register encodes the process and binds it to the given case codes.
// The process name is the purpose name policies refer to.
func (r *Registry) Register(p *bpmn.Process, codes ...string) (*Purpose, error) {
	if len(codes) == 0 {
		return nil, fmt.Errorf("core: purpose %q needs at least one case code", p.Name)
	}
	initial, err := encode.Encode(p)
	if err != nil {
		return nil, fmt.Errorf("core: encoding purpose %q: %w", p.Name, err)
	}
	pur := &Purpose{
		Name:       p.Name,
		Codes:      append([]string(nil), codes...),
		Process:    p,
		Initial:    initial,
		Observable: encode.Observability(p),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[p.Name]; dup {
		return nil, fmt.Errorf("core: purpose %q already registered", p.Name)
	}
	for _, c := range codes {
		if prev, dup := r.byCode[c]; dup {
			return nil, fmt.Errorf("core: case code %q already bound to purpose %q", c, prev.Name)
		}
	}
	r.byName[p.Name] = pur
	for _, c := range codes {
		r.byCode[c] = pur
	}
	r.ordered = append(r.ordered, p.Name)
	return pur, nil
}

// MustRegister is Register that panics on error (fixtures).
func (r *Registry) MustRegister(p *bpmn.Process, codes ...string) *Purpose {
	pur, err := r.Register(p, codes...)
	if err != nil {
		panic(err)
	}
	return pur
}

// Purpose returns the purpose registered under the given name, or nil.
func (r *Registry) Purpose(name string) *Purpose {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// Purposes returns registered purpose names in registration order.
func (r *Registry) Purposes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ordered...)
}

// CaseCode extracts the code prefix of a case identifier: the part
// before the first '-' ("HT-1" → "HT"). A case without a dash is its own
// code.
func CaseCode(caseID string) string {
	if i := strings.IndexByte(caseID, '-'); i >= 0 {
		return caseID[:i]
	}
	return caseID
}

// ForCase resolves the purpose a case instantiates, or nil.
func (r *Registry) ForCase(caseID string) *Purpose {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byCode[CaseCode(caseID)]
}

// PurposeOf implements policy.PurposeDirectory.
func (r *Registry) PurposeOf(caseID string) string {
	if p := r.ForCase(caseID); p != nil {
		return p.Name
	}
	return ""
}

// PurposeHasTask implements policy.PurposeDirectory.
func (r *Registry) PurposeHasTask(purpose, task string) bool {
	p := r.Purpose(purpose)
	return p != nil && p.Process.HasTask(task)
}

// TasksOf returns the sorted tasks of a purpose's process (diagnostics).
func (r *Registry) TasksOf(purpose string) []string {
	p := r.Purpose(purpose)
	if p == nil {
		return nil
	}
	tasks := append([]string(nil), p.Process.Tasks()...)
	sort.Strings(tasks)
	return tasks
}
