package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/automaton"
)

// Monitor is the online variant of Algorithm 1 the paper calls for in
// Section 4 ("the analysis should be resumed when new actions within
// the process instance are recorded"): it keeps one live configuration
// set per case and consumes entries as they are logged, flagging the
// first deviating entry of each case immediately.
//
// A Monitor is NOT safe for concurrent use (it owns a Checker); wrap it
// or shard cases across monitors for concurrency.
//
// Sharding contract: a monitor's state is partitioned by case — no
// field is shared across cases except the checker's caches, which are
// concurrency-safe and semantics-free (memoization only). Feeding a
// trail through N monitors, routing every entry of one case to the
// same monitor (ShardCase) and preserving per-case entry order, yields
// verdicts and final Status() identical to one monitor consuming the
// whole trail. TestShardedMonitorEquivalence enforces this under the
// race detector; internal/server builds its worker pool on it.
type Monitor struct {
	checker *Checker
	cases   map[string]*caseState
	// syms caches (task, role, failure) → symbol lookups across feeds
	// for every compiled case; slots key on the DFA pointer so one
	// table serves all purposes. Owned by the feeding goroutine.
	syms symCacheTable
	// symHits/symMisses count syms outcomes. Atomics so an exporter on
	// another goroutine (auditd /metrics) can read them while the shard
	// goroutine feeds.
	symHits, symMisses atomic.Uint64
}

// SymbolCacheStats reports the compiled fast path's symbol-cache
// counters. Safe to call from any goroutine.
func (m *Monitor) SymbolCacheStats() (hits, misses uint64) {
	return m.symHits.Load(), m.symMisses.Load()
}

// symbolFor resolves an entry's automaton symbol through the monitor's
// persistent cache, bumping the hit/miss counters.
func (m *Monitor) symbolFor(d *automaton.DFA, e audit.Entry) (int32, bool) {
	task, role := e.Task, e.Role
	failure := e.Status == audit.Failure
	if failure {
		role = ""
	}
	sym, ok, hit := m.syms.lookup(d, task, role, failure)
	if hit {
		m.symHits.Add(1)
	} else {
		m.symMisses.Add(1)
	}
	return sym, ok
}

// ShardCase maps a case id to a shard in [0, shards) by FNV-1a hash.
// All entries of one case land on one shard, which is what preserves
// the sharding contract above. shards < 2 always yields 0.
func ShardCase(caseID string, shards int) int {
	if shards < 2 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(caseID); i++ {
		h ^= uint64(caseID[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

type caseState struct {
	purpose *Purpose
	configs []*Configuration
	entries int
	dead    bool // a violation or indeterminacy was already flagged; further entries are reported, not replayed
	// cause is set when the case died of an analysis abandon (budget,
	// configuration cap, recovered panic) rather than a violation.
	cause *Indeterminacy
	// dfa/dstate, when dfa is non-nil, carry the case on the compiled
	// fast path (DESIGN.md §11): dstate is the current automaton state
	// and configs stays nil. Cases restored from a snapshot that cannot
	// be mapped onto the automaton run interpreted instead; the two
	// engines coexist per case within one monitor.
	dfa    *automaton.DFA
	dstate int32
	// expl is the explanation captured when the case died; repeated
	// feeds of a dead case re-surface it, and snapshots carry it so a
	// restored monitor keeps the narrative.
	expl *Explanation
}

// configCount is the live configuration-set size under either engine.
func (cs *caseState) configCount() int {
	if cs.dfa != nil {
		return len(cs.dfa.States[cs.dstate].Members)
	}
	return len(cs.configs)
}

// Verdict is the outcome of feeding one entry.
type Verdict struct {
	Case string
	// OK is true when the entry extended a valid execution.
	OK bool
	// Violation describes the deviation when !OK and the case's analysis
	// reached a verdict.
	Violation *Violation
	// Indeterminate is set when !OK because the case's analysis was
	// abandoned (budget, configuration cap, recovered panic); neither
	// compliance nor violation is claimed for this case.
	Indeterminate *Indeterminacy
	// CaseEntries counts entries seen for the case so far.
	CaseEntries int
	// Configurations is the live configuration count after the entry.
	Configurations int
	// Engine is the replay engine that consumed the entry ("compiled"
	// or "interpreted"); empty when no engine ran (unknown purpose).
	Engine string
	// Explanation accounts for a non-OK verdict (see Report.Explanation);
	// engine-neutral and sticky — repeated feeds of a dead case carry
	// the original explanation, including across snapshot restores.
	Explanation *Explanation
}

// NewMonitor builds a monitor sharing the checker's configuration (the
// checker must not be used elsewhere concurrently).
func NewMonitor(c *Checker) *Monitor {
	return &Monitor{checker: c, cases: map[string]*caseState{}}
}

// Watch initializes a case's live state without feeding an entry, so
// Enabled can be queried before any activity (a workflow engine starting
// a fresh instance).
func (m *Monitor) Watch(caseID string) error {
	_, err := m.caseStateFor(caseID)
	return err
}

// errUnknownPurpose distinguishes resolution failures in caseStateFor.
var errUnknownPurpose = fmt.Errorf("core: case code is not bound to any registered purpose")

func (m *Monitor) caseStateFor(caseID string) (*caseState, error) {
	st, ok := m.cases[caseID]
	if ok {
		return st, nil
	}
	pur := m.checker.registry.ForCase(caseID)
	if pur == nil {
		return nil, fmt.Errorf("%w: %q", errUnknownPurpose, CaseCode(caseID))
	}
	if d, _ := m.checker.compiledFor(pur); d != nil {
		st = &caseState{purpose: pur, dfa: d, dstate: d.Start}
		m.cases[caseID] = st
		return st, nil
	}
	initial, err := m.checker.initialConfiguration(m.checker.runtime(pur), pur)
	if err != nil {
		if ind := indeterminacyFor(err); ind != nil {
			// The purpose's process cannot even be set up within budget:
			// the case is born dead-indeterminate instead of erroring out
			// the whole monitoring run.
			st = &caseState{purpose: pur, dead: true, cause: ind}
			m.cases[caseID] = st
			return st, nil
		}
		return nil, err
	}
	st = &caseState{purpose: pur, configs: []*Configuration{initial}}
	m.cases[caseID] = st
	return st, nil
}

// Offer is one unit of available work in a monitored case: either a
// task that can start now (Fire) or a task already active that can
// absorb further actions (Active). Failing describes whether the task
// may fail here (an error boundary is reachable).
type Offer struct {
	Role   string
	Task   string
	Active bool
}

// Enabled returns the union, over the case's live configurations, of
// startable tasks and active tasks — a workflow worklist. Deviated
// cases return nil.
func (m *Monitor) Enabled(caseID string) ([]Offer, error) {
	st, err := m.caseStateFor(caseID)
	if err != nil {
		return nil, err
	}
	if st.dead {
		return nil, nil
	}
	seen := map[Offer]bool{}
	var out []Offer
	add := func(o Offer) {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	if st.dfa != nil {
		ds := &st.dfa.States[st.dstate]
		for _, o := range ds.Active {
			add(Offer{Role: o.Role, Task: o.Task, Active: true})
		}
		for _, o := range ds.Fire {
			add(Offer{Role: o.Role, Task: o.Task})
		}
	}
	for _, conf := range st.configs {
		for _, a := range conf.active.tasks {
			add(Offer{Role: a.Role, Task: a.Task, Active: true})
		}
		for _, s := range conf.next {
			if s.label.Op == "Err" {
				continue
			}
			if st.purpose.Process.HasTask(s.label.Op) {
				add(Offer{Role: s.label.Partner, Task: s.label.Op})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return !out[i].Active && out[j].Active
	})
	return out, nil
}

// Peek reports whether the entry would extend the case's valid
// execution, without mutating any state — the dry run a workflow engine
// needs to refuse an operation instead of recording a deviation.
func (m *Monitor) Peek(e audit.Entry) (bool, error) {
	st, err := m.caseStateFor(e.Case)
	if err != nil {
		if errors.Is(err, errUnknownPurpose) {
			return false, nil
		}
		return false, err
	}
	if st.dead {
		return false, nil
	}
	if st.dfa != nil {
		sym, ok := m.symbolFor(st.dfa, e)
		return ok && st.dfa.Step(st.dstate, sym) != automaton.Reject, nil
	}
	maxConfigs := m.checker.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}
	rt := m.checker.runtime(st.purpose)
	_, found, err := m.checker.advance(rt, st.purpose, st.configs, e, maxConfigs, nil, nil)
	if err != nil {
		return false, fmt.Errorf("core: peeking case %s: %w", e.Case, err)
	}
	return found, nil
}

// Feed consumes one entry.
func (m *Monitor) Feed(e audit.Entry) (*Verdict, error) {
	return m.FeedContext(context.Background(), e)
}

// FeedContext is Feed honoring ctx. A budget/cap overflow or a panic
// while advancing the case yields an indeterminate verdict and kills the
// case (further feeds keep reporting it indeterminate); other monitored
// cases are unaffected.
func (m *Monitor) FeedContext(ctx context.Context, e audit.Entry) (*Verdict, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	v := &Verdict{Case: e.Case}
	st, err := m.caseStateFor(e.Case)
	if err != nil {
		if errors.Is(err, errUnknownPurpose) {
			uv := &Violation{
				Kind:   ViolationUnknownPurpose,
				Entry:  &e,
				Reason: fmt.Sprintf("case code %q is not bound to any registered purpose", CaseCode(e.Case)),
			}
			return &Verdict{
				Case:        e.Case,
				Violation:   uv,
				Explanation: m.checker.explainViolation(nil, e.Case, uv, 0),
			}, nil
		}
		return nil, err
	}
	st.entries++
	v.CaseEntries = st.entries
	v.Engine = EngineInterpreted
	if st.dfa != nil {
		v.Engine = EngineCompiled
	}

	if st.dead {
		if st.expl == nil && st.cause != nil {
			// Born-dead case (setup exceeded its budget): derive the
			// narrative on first feed.
			st.expl = explainIndeterminacy(e.Case, st.purpose.Name, st.cause)
		}
		v.Explanation = st.expl
		if st.cause != nil {
			v.Indeterminate = st.cause
		} else {
			v.Violation = &Violation{
				Kind:   ViolationInvalidExecution,
				Entry:  &e,
				Reason: "case already deviated from its purpose's process",
			}
		}
		return v, nil
	}

	if st.dfa != nil {
		dnext := automaton.Reject
		if sym, ok := m.symbolFor(st.dfa, e); ok {
			dnext = st.dfa.Step(st.dstate, sym)
		}
		if dnext == automaton.Reject {
			st.dead = true
			v.Violation = m.checker.describeViolationCompiled(st.dfa, st.dstate, st.purpose, st.entries-1, e)
			v.Configurations = st.configCount()
			st.expl = m.checker.explainViolation(st.purpose, e.Case, v.Violation, st.configCount())
			v.Explanation = st.expl
			return v, nil
		}
		st.dstate = dnext
		v.OK = true
		v.Configurations = st.configCount()
		return v, nil
	}

	maxConfigs := m.checker.MaxConfigurations
	if maxConfigs <= 0 {
		maxConfigs = DefaultMaxConfigurations
	}
	rt := m.checker.runtime(st.purpose)
	next, found, err := func() (next []*Configuration, found bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%w: %v", errRecoveredPanic, r)
			}
		}()
		return m.checker.advance(rt, st.purpose, st.configs, e, maxConfigs, nil, nil)
	}()
	if err != nil {
		if ind := indeterminacyFor(err); ind != nil {
			ind.EntryIndex = st.entries - 1
			st.dead = true
			st.cause = ind
			st.expl = explainIndeterminacy(e.Case, st.purpose.Name, ind)
			v.Indeterminate = ind
			v.Explanation = st.expl
			return v, nil
		}
		return nil, fmt.Errorf("core: monitoring case %s: %w", e.Case, err)
	}
	if !found {
		st.dead = true
		v.Violation = m.checker.describeViolation(st.purpose, st.configs, st.entries-1, e)
		v.Configurations = len(st.configs)
		st.expl = m.checker.explainViolation(st.purpose, e.Case, v.Violation, len(st.configs))
		v.Explanation = st.expl
		return v, nil
	}
	st.configs = next
	v.OK = true
	v.Configurations = len(next)
	return v, nil
}

// CaseStatus summarizes a monitored case.
type CaseStatus struct {
	Case           string
	Purpose        string
	Entries        int
	Deviated       bool
	Configurations int
	CanComplete    bool
	// Indeterminate is set when the case's analysis was abandoned
	// (budget, configuration cap, recovered panic); Deviated is then
	// true without a violation verdict.
	Indeterminate *Indeterminacy
	// Engine is the replay engine carrying the case: "compiled" or
	// "interpreted". Cases restored from snapshots may stay interpreted
	// even when the fast path is on (DESIGN.md §11).
	Engine string
}

// Status reports all monitored cases, sorted by case id.
func (m *Monitor) Status() ([]CaseStatus, error) {
	var out []CaseStatus
	for id, st := range m.cases {
		cs := CaseStatus{
			Case:           id,
			Purpose:        st.purpose.Name,
			Entries:        st.entries,
			Deviated:       st.dead,
			Configurations: st.configCount(),
			Indeterminate:  st.cause,
			Engine:         EngineInterpreted,
		}
		if st.dfa != nil {
			cs.Engine = EngineCompiled
			if !st.dead {
				cs.CanComplete = st.dfa.States[st.dstate].CanComplete
			}
			out = append(out, cs)
			continue
		}
		if !st.dead {
			y := m.checker.runtime(st.purpose).sys
			for _, conf := range st.configs {
				done, err := y.CanTerminateSilently(conf.state)
				if err != nil {
					if indeterminacyFor(err) != nil {
						// Completion is unknowable within budget; leave
						// CanComplete false rather than failing the sweep.
						break
					}
					return nil, err
				}
				if done {
					cs.CanComplete = true
					break
				}
			}
		}
		out = append(out, cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Case < out[j].Case })
	return out, nil
}

// Forget drops a case's live state (e.g. after it completed and was
// archived).
func (m *Monitor) Forget(caseID string) { delete(m.cases, caseID) }

// CheckStoreParallel fans the per-case analysis of a store out over
// nWorkers goroutines — the "massive parallelization" the paper notes is
// possible because case analyses are independent (Section 7). Workers
// share the checker (and thus its warm LTS and configuration caches; the
// caches are concurrency-safe). Dispatch is a lock-free work counter
// over the case list — per-case checks on a warm checker are
// microseconds, so channel coordination would dominate. Reports come
// back keyed by case.
func CheckStoreParallel(c *Checker, store *audit.Store, nWorkers int) (map[string]*Report, error) {
	return CheckStoreParallelContext(context.Background(), c, store, nWorkers)
}

// CheckStoreParallelContext is CheckStoreParallel honoring ctx: workers
// stop claiming cases once the context is done, and the first context
// error is returned.
func CheckStoreParallelContext(ctx context.Context, c *Checker, store *audit.Store, nWorkers int) (map[string]*Report, error) {
	cases := store.Cases()
	if nWorkers <= 0 {
		nWorkers = 1
	}
	if nWorkers > len(cases) && len(cases) > 0 {
		nWorkers = len(cases)
	}
	reports := make([]*Report, len(cases))
	errs := make([]error, len(cases))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cases) {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				reports[i], errs[i] = c.CheckCaseContext(ctx, store.Case(cases[i]), cases[i])
			}
		}()
	}
	wg.Wait()

	out := make(map[string]*Report, len(cases))
	for i := range cases {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[reports[i].Case] = reports[i]
	}
	return out, nil
}
