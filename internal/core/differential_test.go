package core_test

// Differential tests for the compiled fast path (DESIGN.md §11): the
// table-driven automaton and the Algorithm 1 interpreter must return
// identical verdicts on every workload — the paper's examples, the
// loan-origination scenario, generated populations with injected
// violations, and adversarial random trails. Run under -race in CI.

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/hospital"
	"repro/internal/loan"
	"repro/internal/policy"
	"repro/internal/workload"
)

// enginePair is an interpreter checker and a compiled clone sharing one
// warm runtime.
type enginePair struct {
	interp   *core.Checker
	compiled *core.Checker
}

func newEnginePair(t testing.TB, reg *core.Registry, roles *policy.RoleHierarchy) enginePair {
	t.Helper()
	interp := core.NewChecker(reg, roles)
	compiled := interp.Clone()
	compiled.UseCompiled = true
	return enginePair{interp: interp, compiled: compiled}
}

func hospitalRegistry(t testing.TB) (*core.Registry, *policy.RoleHierarchy) {
	t.Helper()
	treatment, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	trial, err := hospital.ClinicalTrial()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(treatment, hospital.TreatmentCode); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(trial, hospital.TrialCode); err != nil {
		t.Fatal(err)
	}
	return reg, roles
}

func loanRegistry(t testing.TB) (*core.Registry, *policy.RoleHierarchy) {
	t.Helper()
	proc, err := loan.Process()
	if err != nil {
		t.Fatal(err)
	}
	pol, err := loan.Policy()
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, loan.Code); err != nil {
		t.Fatal(err)
	}
	return reg, pol.Roles
}

// normalizeEngine strips the engine markers so reports from the two
// engines can be compared field by field.
func normalizeEngine(rep *core.Report) *core.Report {
	cp := *rep
	cp.Engine = ""
	cp.EngineFallback = ""
	return &cp
}

// requireSameReports replays the trail through both engines and
// requires identical reports; the compiled run must really have used
// the automaton.
func requireSameReports(t *testing.T, p enginePair, trail *audit.Trail) {
	t.Helper()
	want, err := p.interp.CheckTrail(trail)
	if err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	got, err := p.compiled.CheckTrail(trail)
	if err != nil {
		t.Fatalf("compiled: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("report counts differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		if got[i].Engine != core.EngineCompiled {
			t.Fatalf("case %s: engine %q (fallback %q), want compiled",
				got[i].Case, got[i].Engine, got[i].EngineFallback)
		}
		if !reflect.DeepEqual(normalizeEngine(want[i]), normalizeEngine(got[i])) {
			t.Fatalf("case %s diverges:\ninterpreted: %+v\n   violation: %+v\ncompiled:    %+v\n   violation: %+v",
				want[i].Case, want[i], want[i].Violation, got[i], got[i].Violation)
		}
	}
}

func TestDifferentialHospitalFigure4(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, reg, roles)
	requireSameReports(t, p, trail)

	// The paper's verdicts survive the fast path: HT-11 (re-purposing)
	// violates, HT-1 complies.
	rep, err := p.compiled.CheckCase(trail, "HT-11")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compliant || rep.Engine != core.EngineCompiled {
		t.Fatalf("HT-11: %s (engine %s)", rep, rep.Engine)
	}
}

func TestDifferentialLoanOrigination(t *testing.T) {
	reg, roles := loanRegistry(t)
	p := newEnginePair(t, reg, roles)
	requireSameReports(t, p, loan.Trail())
}

// diffEntry builds one synthetic trail entry; "!" before the task marks
// a failure entry.
func diffEntry(seq int, role, task, caseID string) audit.Entry {
	e := audit.Entry{
		User: "u", Role: role, Action: "read",
		Object: policy.MustParseObject("[K]EPR"),
		Task:   task, Case: caseID,
		Time:   time.Date(2026, 2, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
		Status: audit.Success,
	}
	if strings.HasPrefix(task, "!") {
		e.Task = strings.TrimPrefix(task, "!")
		e.Status = audit.Failure
	}
	return e
}

// diffTrail builds a one-case trail from role:task steps.
func diffTrail(caseID string, steps ...string) *audit.Trail {
	var entries []audit.Entry
	for i, s := range steps {
		role, task, _ := strings.Cut(s, ":")
		entries = append(entries, diffEntry(i, role, task, caseID))
	}
	return audit.NewTrail(entries)
}

func TestDifferentialLoanFailurePaths(t *testing.T) {
	reg, roles := loanRegistry(t)
	p := newEnginePair(t, reg, roles)
	trails := []*audit.Trail{
		// Failure of L02 routes to L02b and back to intake.
		diffTrail("LA-20", "IntakeClerk:L01", "CreditAnalyst:L02", "CreditAnalyst:!L02",
			"CreditAnalyst:L02b", "IntakeClerk:L01", "CreditAnalyst:L02"),
		// Unhandled failure of L01.
		diffTrail("LA-21", "IntakeClerk:L01", "IntakeClerk:!L01"),
		// OR join: both branches, one branch, wrong order.
		diffTrail("LA-22", "IntakeClerk:L01", "CreditAnalyst:L02",
			"Underwriter:L03", "Underwriter:L04", "Underwriter:L05"),
		diffTrail("LA-23", "IntakeClerk:L01", "CreditAnalyst:L02",
			"Underwriter:L04", "Underwriter:L05"),
		diffTrail("LA-24", "IntakeClerk:L01", "CreditAnalyst:L02", "Underwriter:L05"),
		// Role violations: a BankStaff generalization may not do L02.
		diffTrail("LA-25", "IntakeClerk:L01", "BankStaff:L02"),
		diffTrail("LA-26", "IntakeClerk:L01", "Nobody:L02"),
		// Unknown task and empty trail.
		diffTrail("LA-27", "IntakeClerk:L99"),
		audit.NewTrail(nil),
	}
	for _, trail := range trails {
		requireSameReports(t, p, trail)
	}
}

func TestDifferentialStrictnessAndAbsorption(t *testing.T) {
	reg, roles := loanRegistry(t)
	for _, mode := range []struct {
		name             string
		strict, noAbsorb bool
	}{
		{"lenient-failure", false, false},
		{"no-absorption", true, true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			p := newEnginePair(t, reg, roles)
			p.interp.StrictFailureTask = mode.strict
			p.interp.DisableAbsorption = mode.noAbsorb
			p.compiled.StrictFailureTask = mode.strict
			p.compiled.DisableAbsorption = mode.noAbsorb
			requireSameReports(t, p, diffTrail("LA-30",
				"IntakeClerk:L01", "CreditAnalyst:L02", "CreditAnalyst:!L01"))
			requireSameReports(t, p, diffTrail("LA-31",
				"IntakeClerk:L01", "IntakeClerk:L01", "CreditAnalyst:L02"))
			requireSameReports(t, p, loan.Trail())
		})
	}
}

func TestDifferentialGeneratedPopulation(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := workload.ManyCases(reg, hospital.TreatmentCode, 48, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, reg, roles)

	// Parallel replay through both engines must agree case by case —
	// this is the -race exercise of the shared compiled slot.
	want, err := p.interp.CheckTrailParallel(trail, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.compiled.CheckTrailParallel(trail, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Engine != core.EngineCompiled {
			t.Fatalf("case %s ran on %q (%s)", got[i].Case, got[i].Engine, got[i].EngineFallback)
		}
		if !reflect.DeepEqual(normalizeEngine(want[i]), normalizeEngine(got[i])) {
			t.Fatalf("case %s diverges:\n%+v\n%+v", want[i].Case, want[i], got[i])
		}
	}

	// Injected violations must divide the engines identically too.
	inj := workload.NewInjector(11)
	entries := trail.Entries()
	for _, kind := range []workload.ViolationKind{
		workload.SkipTask, workload.SwapAdjacent, workload.WrongRole,
		workload.ForeignTask, workload.FakeFailure,
	} {
		mutated, ok := inj.Inject(kind, entries)
		if !ok {
			continue
		}
		requireSameReports(t, p, audit.NewTrail(mutated))
	}
}

// TestDifferentialRandomTrails throws seeded random trails — valid
// tasks, garbage tasks, wrong roles, failures, random interleavings —
// at both engines.
func TestDifferentialRandomTrails(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	p := newEnginePair(t, reg, roles)
	tasks := []string{"T01", "T02", "T03", "T04", "T05", "T06", "T07", "T08", "T09",
		"T10", "T11", "T12", "T13", "T14", "T15", "T91", "T92", "T93", "Zed", ""}
	rolesList := []string{"GP", "Cardiologist", "Radiologist", "MedicalLabTech",
		"Physician", "MedicalTech", "Janitor", ""}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		caseID := fmt.Sprintf("HT-%d", 1000+i)
		n := rng.Intn(12)
		var entries []audit.Entry
		for j := 0; j < n; j++ {
			task := tasks[rng.Intn(len(tasks))]
			if rng.Intn(8) == 0 {
				task = "!" + task
			}
			entries = append(entries, diffEntry(j, rolesList[rng.Intn(len(rolesList))], task, caseID))
		}
		requireSameReports(t, p, audit.NewTrail(entries))
	}
}

func TestCompiledFallbackRecordsCause(t *testing.T) {
	reg, roles := loanRegistry(t)
	c := core.NewChecker(reg, roles)
	c.UseCompiled = true
	c.MaxAutomatonStates = 2 // force subset construction over budget

	if _, err := c.EnsureCompiled(loan.PurposeName); !core.IsNotCompilable(err) {
		t.Fatalf("EnsureCompiled err = %v, want not-compilable", err)
	}
	if _, err := c.CompiledStatus(loan.PurposeName); err == nil {
		t.Fatal("CompiledStatus reported an automaton after a failed compile")
	}

	rep, err := c.CheckCase(loan.Trail(), "LA-1")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Compliant || rep.Engine != core.EngineInterpreted || rep.EngineFallback == "" {
		t.Fatalf("fallback report: %+v", rep)
	}

	// The interpreter-only verdicts equal an unconstrained checker's.
	plain := core.NewChecker(reg, roles)
	want, err := plain.CheckTrail(loan.Trail())
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CheckTrail(loan.Trail())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], normalizeEngine(got[i])) {
			t.Fatalf("fallback diverges on %s", want[i].Case)
		}
	}
}

func TestCompiledFlagMismatchFallsBack(t *testing.T) {
	reg, roles := loanRegistry(t)
	c := core.NewChecker(reg, roles)
	c.UseCompiled = true
	if _, err := c.EnsureCompiled(loan.PurposeName); err != nil {
		t.Fatal(err)
	}
	// A clone flips a semantic flag: it must not reuse the automaton.
	c2 := c.Clone()
	c2.StrictFailureTask = false
	rep, err := c2.CheckCase(loan.Trail(), "LA-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != core.EngineInterpreted || !strings.Contains(rep.EngineFallback, "flags") {
		t.Fatalf("flag mismatch not recorded: engine=%q fallback=%q", rep.Engine, rep.EngineFallback)
	}
	// The original still rides the automaton.
	rep, err = c.CheckCase(loan.Trail(), "LA-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Engine != core.EngineCompiled {
		t.Fatalf("original lost the fast path: %+v", rep)
	}
}

func TestCompiledArtifactInstall(t *testing.T) {
	reg, roles := loanRegistry(t)
	src := core.NewChecker(reg, roles)
	src.UseCompiled = true
	d, err := src.EnsureCompiled(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := encode.SaveAutomaton(dir, d); err != nil {
		t.Fatal(err)
	}

	// A fresh checker loads the artifact by its own fingerprint and
	// must produce identical verdicts without ever compiling.
	reg2, roles2 := loanRegistry(t)
	dst := core.NewChecker(reg2, roles2)
	dst.UseCompiled = true
	fp, err := dst.AutomatonFingerprint(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	if fp != d.Fingerprint {
		t.Fatalf("fingerprint drift: %s vs %s", fp, d.Fingerprint)
	}
	loaded, err := encode.LoadAutomaton(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SetCompiled(loan.PurposeName, loaded); err != nil {
		t.Fatal(err)
	}
	p := enginePair{interp: core.NewChecker(reg, roles), compiled: dst}
	requireSameReports(t, p, loan.Trail())

	// A flag change invalidates the fingerprint, so a stale artifact is
	// refused.
	dst.StrictFailureTask = false
	if err := dst.SetCompiled(loan.PurposeName, loaded); err == nil {
		t.Fatal("stale artifact accepted after flag change")
	}
}
