package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/policy"
)

// entryAt builds a success entry with a synthetic timestamp derived from
// the sequence number.
func entryAt(seq int, user, role, task, caseID string) audit.Entry {
	return audit.Entry{
		User: user, Role: role, Action: "read",
		Object: policy.MustParseObject("[P1]EPR/Clinical"),
		Task:   task, Case: caseID,
		Time:   time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(seq) * time.Minute),
		Status: audit.Success,
	}
}

func failureAt(seq int, user, role, task, caseID string) audit.Entry {
	e := entryAt(seq, user, role, task, caseID)
	e.Status = audit.Failure
	e.Object = policy.Object{}
	e.Action = "cancel"
	return e
}

// trailOf builds a trail from (role, task) pairs in one case; "!" prefix
// marks a failure entry.
func trailOf(caseID string, steps ...string) *audit.Trail {
	var entries []audit.Entry
	for i, s := range steps {
		role, task, ok := strings.Cut(s, ":")
		if !ok {
			panic("step must be role:task")
		}
		if strings.HasPrefix(task, "!") {
			entries = append(entries, failureAt(i, "u", role, strings.TrimPrefix(task, "!"), caseID))
		} else {
			entries = append(entries, entryAt(i, "u", role, task, caseID))
		}
	}
	return audit.NewTrail(entries)
}

func linearProc(t *testing.T) *bpmn.Process {
	t.Helper()
	return bpmn.NewBuilder("Linear").Pool("P").
		Start("S", "P").Task("T1", "P", "").Task("T2", "P", "").Task("T3", "P", "").End("E", "P").
		Seq("S", "T1", "T2", "T3", "E").MustBuild()
}

func newChecker(t *testing.T, p *bpmn.Process, code string, roles *policy.RoleHierarchy) *Checker {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.Register(p, code); err != nil {
		t.Fatalf("Register: %v", err)
	}
	return NewChecker(reg, roles)
}

func check(t *testing.T, c *Checker, tr *audit.Trail, caseID string) *Report {
	t.Helper()
	rep, err := c.CheckCase(tr, caseID)
	if err != nil {
		t.Fatalf("CheckCase: %v", err)
	}
	return rep
}

func TestRegistry(t *testing.T) {
	p := linearProc(t)
	reg := NewRegistry()
	if _, err := reg.Register(p, "LN", "L2"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(p, "XX"); err == nil {
		t.Fatalf("duplicate purpose accepted")
	}
	q := bpmn.NewBuilder("Other").Pool("P").
		Start("S", "P").Task("T9", "P", "").End("E", "P").Seq("S", "T9", "E").MustBuild()
	if _, err := reg.Register(q, "LN"); err == nil {
		t.Fatalf("duplicate code accepted")
	}
	if _, err := reg.Register(q); err == nil {
		t.Fatalf("codeless registration accepted")
	}

	if got := CaseCode("HT-123"); got != "HT" {
		t.Errorf("CaseCode = %q", got)
	}
	if got := CaseCode("nodash"); got != "nodash" {
		t.Errorf("CaseCode = %q", got)
	}
	if reg.PurposeOf("LN-1") != "Linear" || reg.PurposeOf("L2-7") != "Linear" {
		t.Errorf("PurposeOf broken")
	}
	if reg.PurposeOf("ZZ-1") != "" {
		t.Errorf("unknown code resolved")
	}
	if !reg.PurposeHasTask("Linear", "T2") || reg.PurposeHasTask("Linear", "T9") {
		t.Errorf("PurposeHasTask broken")
	}
	if got := reg.Purposes(); len(got) != 1 || got[0] != "Linear" {
		t.Errorf("Purposes = %v", got)
	}
	if got := reg.TasksOf("Linear"); len(got) != 3 {
		t.Errorf("TasksOf = %v", got)
	}
}

func TestCheckLinearCompliant(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	rep := check(t, c, trailOf("LN-1", "P:T1", "P:T2", "P:T3"), "LN-1")
	if !rep.Compliant || !rep.CanComplete || rep.Pending {
		t.Fatalf("report = %s", rep)
	}
	if rep.StepsReplayed != 3 || rep.Entries != 3 {
		t.Fatalf("steps = %d entries = %d", rep.StepsReplayed, rep.Entries)
	}
}

func TestCheckPrefixPending(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	rep := check(t, c, trailOf("LN-1", "P:T1", "P:T2"), "LN-1")
	if !rep.Compliant || rep.CanComplete || !rep.Pending {
		t.Fatalf("report = %s", rep)
	}
}

func TestCheckAbsorbsInTaskActions(t *testing.T) {
	// Multiple log entries within one task: the first fires the task
	// label, the rest are absorbed while the task is active
	// (Algorithm 1 line 8 / the paper's 1-to-n task↔action mapping).
	c := newChecker(t, linearProc(t), "LN", nil)
	rep := check(t, c, trailOf("LN-1", "P:T1", "P:T1", "P:T1", "P:T2", "P:T2", "P:T3"), "LN-1")
	if !rep.Compliant {
		t.Fatalf("report = %s", rep)
	}
	// Once T2 fired, T1 is no longer active: a late T1 action is an
	// infringement.
	rep = check(t, c, trailOf("LN-1", "P:T1", "P:T2", "P:T1"), "LN-1")
	if rep.Compliant || rep.Violation == nil || rep.StepsReplayed != 2 {
		t.Fatalf("report = %s", rep)
	}
}

func TestCheckRejectsWrongOrderAndUnknownTask(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)

	rep := check(t, c, trailOf("LN-1", "P:T2"), "LN-1")
	if rep.Compliant {
		t.Fatalf("out-of-order accepted")
	}
	if got := rep.Violation.Expected; len(got) != 1 || got[0] != "P.T1" {
		t.Fatalf("expected = %v", got)
	}

	rep = check(t, c, trailOf("LN-1", "P:T1", "P:T9"), "LN-1")
	if rep.Compliant || !strings.Contains(rep.Violation.Reason, "not part of process") {
		t.Fatalf("unknown task: %s", rep)
	}

	rep = check(t, c, trailOf("ZZ-1", "P:T1"), "ZZ-1")
	if rep.Compliant || rep.Violation.Kind != ViolationUnknownPurpose {
		t.Fatalf("unknown purpose: %s", rep)
	}
}

func TestCheckRoleHierarchyMatching(t *testing.T) {
	roles := policy.NewRoleHierarchy()
	if err := roles.Add("Physician"); err != nil {
		t.Fatal(err)
	}
	if err := roles.Add("GP", "Physician"); err != nil {
		t.Fatal(err)
	}
	proc := bpmn.NewBuilder("Phys").Pool("Physician").
		Start("S", "Physician").Task("T1", "Physician", "").End("E", "Physician").
		Seq("S", "T1", "E").MustBuild()

	// With the hierarchy, a GP may perform Physician-pool tasks.
	c := newChecker(t, proc, "PH", roles)
	rep := check(t, c, trailOf("PH-1", "GP:T1"), "PH-1")
	if !rep.Compliant {
		t.Fatalf("specialized role rejected: %s", rep)
	}
	// A sibling or unknown role may not.
	rep = check(t, c, trailOf("PH-1", "Nurse:T1"), "PH-1")
	if rep.Compliant || !strings.Contains(rep.Violation.Reason, "may not perform") {
		t.Fatalf("unrelated role accepted: %s", rep)
	}
	// Without a hierarchy, only exact matches.
	c2 := newChecker(t, proc, "PH", nil)
	rep = check(t, c2, trailOf("PH-1", "GP:T1"), "PH-1")
	if rep.Compliant {
		t.Fatalf("specialization accepted without hierarchy")
	}
}

func fallibleProc(t *testing.T) *bpmn.Process {
	t.Helper()
	return bpmn.NewBuilder("Fallible").Pool("P").
		Start("S", "P").Task("T1", "P", "").FallibleTask("T2", "P", "", "T1").End("E", "P").
		Seq("S", "T1", "T2", "E").MustBuild()
}

func TestCheckFailureHandling(t *testing.T) {
	c := newChecker(t, fallibleProc(t), "FB", nil)

	// T2 fails, the process restarts at T1 and completes.
	rep := check(t, c, trailOf("FB-1", "P:T1", "P:T2", "P:!T2", "P:T1", "P:T2"), "FB-1")
	if !rep.Compliant || !rep.CanComplete {
		t.Fatalf("failure cycle rejected: %s", rep)
	}

	// A failure of T1 (no error boundary) is an infringement.
	rep = check(t, c, trailOf("FB-1", "P:T1", "P:!T1"), "FB-1")
	if rep.Compliant || !strings.Contains(rep.Violation.Reason, "no matching error handler") {
		t.Fatalf("unhandled failure accepted: %s", rep)
	}

	// Strict matching: a failure entry for T1 while only T2's handler
	// is available must be rejected...
	rep = check(t, c, trailOf("FB-1", "P:T1", "P:T2", "P:!T1"), "FB-1")
	if rep.Compliant {
		t.Fatalf("strict failure matching broken: %s", rep)
	}
	// ...but the paper's literal line 10 (any sys·Err) accepts it.
	c.StrictFailureTask = false
	rep = check(t, c, trailOf("FB-1", "P:T1", "P:T2", "P:!T1"), "FB-1")
	if !rep.Compliant {
		t.Fatalf("lenient failure matching broken: %s", rep)
	}
}

func TestCheckXORBranches(t *testing.T) {
	p := bpmn.NewBuilder("Branch").Pool("P").
		Start("S", "P").Task("T0", "P", "").XOR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").End("E1", "P").End("E2", "P").
		Seq("S", "T0", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").MustBuild()
	c := newChecker(t, p, "BR", nil)

	for _, branch := range []string{"T1", "T2"} {
		rep := check(t, c, trailOf("BR-1", "P:T0", "P:"+branch), "BR-1")
		if !rep.Compliant || !rep.CanComplete {
			t.Fatalf("branch %s rejected: %s", branch, rep)
		}
	}
	// Both branches in one case: exclusive gateway forbids it.
	rep := check(t, c, trailOf("BR-1", "P:T0", "P:T1", "P:T2"), "BR-1")
	if rep.Compliant {
		t.Fatalf("exclusive gateway violated: %s", rep)
	}
}

func TestCheckANDInterleavings(t *testing.T) {
	p := bpmn.NewBuilder("Para").Pool("P").
		Start("S", "P").AND("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		AND("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").MustBuild()
	c := newChecker(t, p, "PA", nil)

	for _, order := range [][]string{{"P:T1", "P:T2", "P:T3"}, {"P:T2", "P:T1", "P:T3"}} {
		rep := check(t, c, trailOf("PA-1", order...), "PA-1")
		if !rep.Compliant {
			t.Fatalf("interleaving %v rejected: %s", order, rep)
		}
	}
	// T3 before both branches completed: rejected.
	rep := check(t, c, trailOf("PA-1", "P:T1", "P:T3"), "PA-1")
	if rep.Compliant {
		t.Fatalf("join fired early: %s", rep)
	}
	// While T1 and T2 run in parallel, both are active.
	var lastActive []string
	c.TraceFn = func(step int, e audit.Entry, configs []*Configuration) {
		if step == 1 {
			for _, conf := range configs {
				for _, a := range conf.ActiveTasks() {
					lastActive = append(lastActive, a.String())
				}
			}
		}
	}
	check(t, c, trailOf("PA-1", "P:T1", "P:T2", "P:T3"), "PA-1")
	joined := strings.Join(lastActive, " ")
	if !strings.Contains(joined, "P·T1") || !strings.Contains(joined, "P·T2") {
		t.Fatalf("parallel active set = %v", lastActive)
	}
	c.TraceFn = nil
}

func TestCheckORSubsets(t *testing.T) {
	p := bpmn.NewBuilder("Incl").Pool("P").
		Start("S", "P").OR("G", "P").
		Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").MustBuild()
	c := newChecker(t, p, "IN", nil)

	for _, steps := range [][]string{
		{"P:T1", "P:T3"},
		{"P:T2", "P:T3"},
		{"P:T1", "P:T2", "P:T3"},
		{"P:T2", "P:T1", "P:T3"},
	} {
		rep := check(t, c, trailOf("IN-1", steps...), "IN-1")
		if !rep.Compliant {
			t.Fatalf("subset %v rejected: %s", steps, rep)
		}
	}
	// After only T1 fired, the algorithm cannot know whether the
	// gateway chose {T1} or {T1,T2}: both configurations survive (the
	// paper's St10/St11 ambiguity).
	rep := check(t, c, trailOf("IN-1", "P:T1"), "IN-1")
	if !rep.Compliant || rep.FinalConfigurations < 2 {
		t.Fatalf("ambiguity not tracked: %s (final=%d)", rep, rep.FinalConfigurations)
	}
	// T3 cannot fire while the {T1,T2} plan still awaits T2 — but the
	// {T1}-only configuration allows it; then a later T2 is rejected.
	rep = check(t, c, trailOf("IN-1", "P:T1", "P:T3", "P:T2"), "IN-1")
	if rep.Compliant || rep.StepsReplayed != 2 {
		t.Fatalf("late branch accepted: %s", rep)
	}
}

func TestCheckTrailAndObject(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	var entries []audit.Entry
	entries = append(entries, trailOf("LN-1", "P:T1", "P:T2", "P:T3").Entries()...)
	e := entryAt(10, "u", "P", "T2", "LN-2") // starts mid-process: infringement
	e.Object = policy.MustParseObject("[P2]EPR/Clinical")
	entries = append(entries, e)
	tr := audit.NewTrail(entries)

	reports, err := c.CheckTrail(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || !reports[0].Compliant || reports[1].Compliant {
		t.Fatalf("reports = %v", reports)
	}

	// Investigating P2's EPR touches only LN-2.
	reports, err = c.CheckObject(tr, policy.MustParseObject("[P2]EPR"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || reports[0].Case != "LN-2" || reports[0].Compliant {
		t.Fatalf("object reports = %v", reports)
	}
}

func TestMonitorOnline(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	m := NewMonitor(c)

	steps := trailOf("LN-1", "P:T1", "P:T2", "P:T1").Entries() // third deviates
	v, err := m.Feed(steps[0])
	if err != nil || !v.OK {
		t.Fatalf("feed 1: %v %v", v, err)
	}
	v, err = m.Feed(steps[1])
	if err != nil || !v.OK {
		t.Fatalf("feed 2: %v %v", v, err)
	}
	v, err = m.Feed(steps[2])
	if err != nil || v.OK || v.Violation == nil {
		t.Fatalf("feed 3 should deviate: %+v %v", v, err)
	}
	// Further entries on a dead case are flagged immediately.
	v, err = m.Feed(steps[1])
	if err != nil || v.OK {
		t.Fatalf("dead case accepted: %+v", v)
	}

	// Unknown purpose.
	v, err = m.Feed(entryAt(0, "u", "P", "T1", "ZZ-1"))
	if err != nil || v.Violation == nil || v.Violation.Kind != ViolationUnknownPurpose {
		t.Fatalf("unknown purpose: %+v %v", v, err)
	}

	// Status covers both cases.
	st, err := m.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || !st[0].Deviated {
		t.Fatalf("status = %+v", st)
	}
	m.Forget("LN-1")
	st, _ = m.Status()
	if len(st) != 0 {
		t.Fatalf("Forget failed: %+v", st)
	}

	// A healthy case reports CanComplete when done.
	m2 := NewMonitor(newChecker(t, linearProc(t), "LN", nil))
	for _, e := range trailOf("LN-9", "P:T1", "P:T2", "P:T3").Entries() {
		if v, err := m2.Feed(e); err != nil || !v.OK {
			t.Fatalf("healthy feed: %+v %v", v, err)
		}
	}
	st, err = m2.Status()
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 1 || !st[0].CanComplete || st[0].Deviated {
		t.Fatalf("status = %+v", st)
	}
}

func TestCheckStoreParallelMatchesSerial(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	store := audit.NewStore()
	for i := 0; i < 20; i++ {
		caseID := fmt.Sprintf("LN-%d", i)
		var steps []string
		if i%3 == 0 {
			steps = []string{"P:T1", "P:T2", "P:T3"}
		} else if i%3 == 1 {
			steps = []string{"P:T1", "P:T2"}
		} else {
			steps = []string{"P:T1", "P:T3"} // skip T2: infringement
		}
		for _, e := range trailOf(caseID, steps...).Entries() {
			e.Time = e.Time.Add(time.Duration(i) * time.Hour)
			if err := store.Append(e); err != nil {
				t.Fatal(err)
			}
		}
	}

	parallel, err := CheckStoreParallel(c, store, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != 20 {
		t.Fatalf("parallel reports = %d", len(parallel))
	}
	serial := c.Clone()
	for _, caseID := range store.Cases() {
		want := check(t, serial, store.Case(caseID), caseID)
		got := parallel[caseID]
		if got == nil || got.Compliant != want.Compliant || got.Pending != want.Pending {
			t.Fatalf("case %s: parallel %v vs serial %v", caseID, got, want)
		}
	}
}

func TestFrameworkPolicyAndPurpose(t *testing.T) {
	roles := policy.NewRoleHierarchy()
	if err := roles.Add("P"); err != nil {
		t.Fatal(err)
	}
	pol := policy.NewPolicy(roles)
	if err := pol.Permit("P", "read", "[*]EPR/Clinical", "Linear"); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if _, err := reg.Register(linearProc(t), "LN"); err != nil {
		t.Fatal(err)
	}
	fw := NewFramework(reg, pol, policy.NewConsentRegistry())

	// A process-valid trail with one policy-violating action (writing,
	// while only reading is permitted): Algorithm 1 says compliant,
	// the preventive layer flags the entry — the two layers are
	// complementary (Section 3.5).
	entries := trailOf("LN-1", "P:T1", "P:T2", "P:T3").Entries()
	entries[1].Action = "write"
	tr := audit.NewTrail(entries)

	res, err := fw.Audit(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CaseReports) != 1 || !res.CaseReports[0].Compliant {
		t.Fatalf("case reports = %v", res.CaseReports)
	}
	if len(res.PolicyFindings) != 1 || res.PolicyFindings[0].Index != 1 {
		t.Fatalf("policy findings = %+v", res.PolicyFindings)
	}
	if got := res.Infringements(); len(got) != 0 {
		t.Fatalf("infringements = %v", got)
	}

	// Per-object audit narrows both layers to the object.
	objRes, err := fw.AuditObject(tr, policy.MustParseObject("[P1]EPR"))
	if err != nil {
		t.Fatal(err)
	}
	if len(objRes.CaseReports) != 1 || len(objRes.PolicyFindings) != 1 {
		t.Fatalf("object audit = %+v", objRes)
	}
}

func TestConfigurationIntrospection(t *testing.T) {
	c := newChecker(t, linearProc(t), "LN", nil)
	var nexts []string
	c.TraceFn = func(step int, e audit.Entry, configs []*Configuration) {
		for _, conf := range configs {
			nexts = append(nexts, strings.Join(conf.NextLabels(), ","))
		}
	}
	check(t, c, trailOf("LN-1", "P:T1", "P:T2"), "LN-1")
	if len(nexts) != 2 || nexts[0] != "P.T2" || nexts[1] != "P.T3" {
		t.Fatalf("next labels = %v", nexts)
	}
}

func TestCheckErrorHandlerOnlyTask(t *testing.T) {
	// A dedicated handler task whose only input is the error edge (a
	// boundary-event flow): the failure routes through it and the
	// process resumes.
	p := bpmn.NewBuilder("Handler").Pool("P").
		Start("S", "P").FallibleTask("T1", "P", "", "H").Task("T2", "P", "").End("E", "P").
		Task("H", "P", "remediate").
		Seq("S", "T1", "T2", "E").Seq("H", "T1").
		MustBuild()
	c := newChecker(t, p, "HD", nil)

	// Failure path: T1 fails, handler H runs, T1 retries, T2 closes.
	rep := check(t, c, trailOf("HD-1", "P:T1", "P:!T1", "P:H", "P:T1", "P:T2"), "HD-1")
	if !rep.Compliant || !rep.CanComplete {
		t.Fatalf("handler path rejected: %s", rep)
	}
	// The handler cannot run without a failure.
	rep = check(t, c, trailOf("HD-1", "P:T1", "P:H"), "HD-1")
	if rep.Compliant {
		t.Fatalf("handler without failure accepted: %s", rep)
	}
}
