package core

import (
	"fmt"

	"repro/internal/audit"
	"repro/internal/policy"
)

// Framework is the complete purpose-control stack of Section 3: the
// preventive layer (a PDP evaluating Definition 3 per access) plus the
// a-posteriori layer (Algorithm 1 per case). The paper's alignment
// discussion (Section 3.5) motivates running both: Algorithm 1 accepts
// any action inside an active task, so fine-grained object/action
// authorization must be checked per request in isolation.
type Framework struct {
	Registry *Registry
	PDP      *policy.PDP
	Checker  *Checker
}

// NewFramework wires the three components. The registry doubles as the
// PDP's purpose directory.
func NewFramework(reg *Registry, pol *policy.Policy, consent *policy.ConsentRegistry) *Framework {
	pdp := &policy.PDP{Policy: pol, Consent: consent, Directory: reg}
	var roles *policy.RoleHierarchy
	if pol != nil {
		roles = pol.Roles
	}
	return &Framework{
		Registry: reg,
		PDP:      pdp,
		Checker:  NewChecker(reg, roles),
	}
}

// EntryFinding is a per-entry preventive-layer finding: an action that
// the policy would not have authorized (Definition 3 evaluated
// a-posteriori over the logged request).
type EntryFinding struct {
	Index  int
	Entry  audit.Entry
	Reason string
}

// AuditResult is the combined outcome of auditing a trail.
type AuditResult struct {
	// CaseReports holds Algorithm 1's per-case verdicts, in order of
	// first appearance of each case.
	CaseReports []*Report
	// PolicyFindings holds entries that fail Definition 3.
	PolicyFindings []EntryFinding
}

// Infringements returns the non-compliant case reports.
func (a *AuditResult) Infringements() []*Report {
	var out []*Report
	for _, r := range a.CaseReports {
		if !r.Compliant {
			out = append(out, r)
		}
	}
	return out
}

// Audit runs the full analysis over a trail: every entry against the
// policy, every case through Algorithm 1.
func (f *Framework) Audit(trail *audit.Trail) (*AuditResult, error) {
	res := &AuditResult{}
	for i := 0; i < trail.Len(); i++ {
		e := trail.At(i)
		if finding := f.evaluateEntry(i, e); finding != nil {
			res.PolicyFindings = append(res.PolicyFindings, *finding)
		}
	}
	reports, err := f.Checker.CheckTrail(trail)
	if err != nil {
		return nil, fmt.Errorf("core: auditing trail: %w", err)
	}
	res.CaseReports = reports
	return res, nil
}

// evaluateEntry applies Definition 3 to a logged action. Entries without
// an object (e.g. the paper's "cancel" rows) have no access to
// authorize and are skipped.
func (f *Framework) evaluateEntry(i int, e audit.Entry) *EntryFinding {
	if len(e.Object.Path) == 0 {
		return nil
	}
	dec := f.PDP.Evaluate(policy.AccessRequest{
		User:   e.User,
		Role:   e.Role,
		Action: e.Action,
		Object: e.Object,
		Task:   e.Task,
		Case:   e.Case,
	})
	if dec.Granted {
		return nil
	}
	return &EntryFinding{Index: i, Entry: e, Reason: dec.Reason}
}

// AuditObject investigates one object: policy findings for entries
// touching it, plus Algorithm 1 for each case in which it was accessed
// (Section 4's per-object workflow).
func (f *Framework) AuditObject(trail *audit.Trail, obj policy.Object) (*AuditResult, error) {
	res := &AuditResult{}
	for i := 0; i < trail.Len(); i++ {
		e := trail.At(i)
		if !obj.Covers(e.Object) {
			continue
		}
		if finding := f.evaluateEntry(i, e); finding != nil {
			res.PolicyFindings = append(res.PolicyFindings, *finding)
		}
	}
	reports, err := f.Checker.CheckObject(trail, obj)
	if err != nil {
		return nil, fmt.Errorf("core: auditing object %s: %w", obj, err)
	}
	res.CaseReports = reports
	return res, nil
}
