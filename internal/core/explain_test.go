package core_test

// Explanation tests (DESIGN.md §12): every non-compliant Figure 4 case
// must name its diverging entry and expected-task set, byte-identically
// across the interpreter and the compiled automaton, and indeterminate
// / unknown-purpose verdicts must carry a narrative too.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
)

// figure4Violations are the paper's five infringing cases; every one
// diverges on its first entry (task T06 fired before T01 opened the
// treatment process).
var figure4Violations = []string{"HT-10", "HT-11", "HT-20", "HT-21", "HT-30"}

func TestExplanationFigure4(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	p := newEnginePair(t, reg, roles)

	for _, caseID := range figure4Violations {
		ri, err := p.interp.CheckCase(trail, caseID)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := p.compiled.CheckCase(trail, caseID)
		if err != nil {
			t.Fatal(err)
		}
		if rc.Engine != core.EngineCompiled {
			t.Fatalf("%s: compiled checker ran %q (fallback %q)", caseID, rc.Engine, rc.EngineFallback)
		}
		for _, rep := range []*core.Report{ri, rc} {
			x := rep.Explanation
			if x == nil {
				t.Fatalf("%s: no explanation on %s report", caseID, rep.Engine)
			}
			if x.Outcome != "violation" {
				t.Errorf("%s: outcome %q", caseID, x.Outcome)
			}
			if x.EntryIndex != 0 {
				t.Errorf("%s: diverging entry %d, want 0", caseID, x.EntryIndex)
			}
			if x.Task != "T06" {
				t.Errorf("%s: diverging task %q, want T06", caseID, x.Task)
			}
			if len(x.Expected) != 1 || x.Expected[0] != "GP.T01" {
				t.Errorf("%s: expected set %v, want [GP.T01]", caseID, x.Expected)
			}
			if len(x.ExpectedTasks) != 1 || x.ExpectedTasks[0] != "T01" {
				t.Errorf("%s: expected tasks %v, want [T01]", caseID, x.ExpectedTasks)
			}
			if x.LastGoodConfigurations != 1 {
				t.Errorf("%s: last-good configurations %d, want 1", caseID, x.LastGoodConfigurations)
			}
			if x.Timestamp == "" || x.Entry == "" || x.NearestMiss == "" {
				t.Errorf("%s: incomplete explanation: %+v", caseID, x)
			}
		}
		// Byte-identical across engines: the explanation may not leak
		// which engine produced it.
		bi, err := json.Marshal(ri.Explanation)
		if err != nil {
			t.Fatal(err)
		}
		bc, err := json.Marshal(rc.Explanation)
		if err != nil {
			t.Fatal(err)
		}
		if string(bi) != string(bc) {
			t.Errorf("%s: explanations differ across engines:\ninterpreted: %s\ncompiled:    %s", caseID, bi, bc)
		}
	}

	// Compliant cases carry no explanation.
	rep, err := p.interp.CheckCase(trail, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Explanation != nil {
		t.Fatalf("HT-1 is compliant but got explanation %+v", rep.Explanation)
	}
}

func TestExplanationNearestMissClassification(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewChecker(reg, roles)

	// Role mismatch: the right task attempted by the wrong role names
	// the owning pool.
	e := trail.At(0)
	e.Role = "Nurse"
	e.Case = "HT-90"
	wrongRole := audit.NewTrail([]audit.Entry{e})
	r, err := c.CheckCase(wrongRole, "HT-90")
	if err != nil {
		t.Fatal(err)
	}
	if r.Explanation == nil || !strings.Contains(r.Explanation.NearestMiss, `pool "GP"`) {
		t.Errorf("role-mismatch hint should name the pool, got %+v", r.Explanation)
	}
	if r.Explanation != nil && r.Explanation.NearestMissClass != core.MissWrongRole {
		t.Errorf("role-mismatch class = %q, want %q", r.Explanation.NearestMissClass, core.MissWrongRole)
	}

	// Unknown task close to a real one: hint proposes the near miss.
	e2 := trail.At(0)
	e2.Task = "T0"
	e2.Case = "HT-91"
	typo := audit.NewTrail([]audit.Entry{e2})
	r2, err := c.CheckCase(typo, "HT-91")
	if err != nil {
		t.Fatal(err)
	}
	if r2.Explanation == nil || !strings.Contains(r2.Explanation.NearestMiss, "closest process task") {
		t.Errorf("typo hint should propose the closest task, got %+v", r2.Explanation)
	}
	if r2.Explanation != nil && r2.Explanation.NearestMissClass != core.MissTaskTypo {
		t.Errorf("typo class = %q, want %q", r2.Explanation.NearestMissClass, core.MissTaskTypo)
	}

	// Unknown purpose: no entry is blamed, the hint says register it.
	r3, err := c.CheckCase(trail, "ZZ-1")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Explanation == nil || r3.Explanation.EntryIndex != -1 ||
		!strings.Contains(r3.Explanation.NearestMiss, "no registered purpose") {
		t.Errorf("unknown-purpose explanation wrong: %+v", r3.Explanation)
	}
	if r3.Explanation != nil && r3.Explanation.NearestMissClass != core.MissUnknownPurpose {
		t.Errorf("unknown-purpose class = %q, want %q", r3.Explanation.NearestMissClass, core.MissUnknownPurpose)
	}
}

func TestExplanationIndeterminate(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewChecker(reg, roles)
	c.MaxSilentDepth = 1 // starve the LTS budget so analysis abstains
	rep, err := c.CheckCase(trail, "HT-1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != core.OutcomeIndeterminate {
		t.Skipf("budget starving did not trigger indeterminacy (outcome %v)", rep.Outcome)
	}
	x := rep.Explanation
	if x == nil || x.Outcome != "indeterminate" || x.NearestMiss == "" {
		t.Fatalf("indeterminate report lacks a usable explanation: %+v", x)
	}
	if x.NearestMissClass != core.MissBudgetExceeded {
		t.Errorf("budget-starved class = %q, want %q", x.NearestMissClass, core.MissBudgetExceeded)
	}
}

// TestExplanationMonitorSticky: a dead case keeps re-surfacing its
// original explanation, including across a snapshot round trip.
func TestExplanationMonitorSticky(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	m := core.NewMonitor(core.NewChecker(reg, roles))
	var bad audit.Entry
	for _, e := range trail.Entries() {
		if e.Case == "HT-10" {
			bad = e
			break
		}
	}
	v, err := m.Feed(bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.OK || v.Explanation == nil || v.Explanation.Task != "T06" {
		t.Fatalf("first deviation verdict lacks explanation: %+v", v)
	}

	// Restore into a fresh monitor: the narrative survives.
	state, err := json.Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	var ms core.MonitorState
	if err := json.Unmarshal(state, &ms); err != nil {
		t.Fatal(err)
	}
	m2 := core.NewMonitor(core.NewChecker(reg, roles))
	if err := m2.LoadState(&ms); err != nil {
		t.Fatal(err)
	}
	v2, err := m2.Feed(bad)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Explanation == nil || v2.Explanation.Task != "T06" {
		t.Fatalf("restored dead case lost its explanation: %+v", v2)
	}
}
