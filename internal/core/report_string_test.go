package core

// Rendering and introspection coverage: the String methods auditors
// read in CLI output, the registry's fixture helper, and the compiled
// fast path's symbol plumbing. These are the blind spots the coverage
// ratchet flagged — small surfaces, but they format evidence, and a
// wrong rendering misreports a verdict.

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestOutcomeString(t *testing.T) {
	for want, o := range map[string]Outcome{
		"compliant":     OutcomeCompliant,
		"violation":     OutcomeViolation,
		"indeterminate": OutcomeIndeterminate,
		"Outcome(99)":   Outcome(99),
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

func TestIndeterminacyCauseStringAndJSON(t *testing.T) {
	for want, c := range map[string]IndeterminacyCause{
		"budget-exceeded":        CauseBudgetExceeded,
		"configuration-cap":      CauseConfigurationCap,
		"recovered-panic":        CauseRecoveredPanic,
		"IndeterminacyCause(-1)": IndeterminacyCause(-1),
	} {
		if got := c.String(); got != want {
			t.Errorf("cause %d: String() = %q, want %q", int(c), got, want)
		}
	}
	data, err := json.Marshal(CauseConfigurationCap)
	if err != nil {
		t.Fatal(err)
	}
	var back IndeterminacyCause
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != CauseConfigurationCap {
		t.Errorf("cause round-trip: got %v", back)
	}
	if err := back.UnmarshalJSON([]byte(`"no-such-cause"`)); err == nil {
		t.Error("unknown cause name accepted")
	}
}

func TestViolationKindString(t *testing.T) {
	for want, k := range map[string]ViolationKind{
		"invalid-execution": ViolationInvalidExecution,
		"unknown-purpose":   ViolationUnknownPurpose,
		"expired":           ViolationExpired,
		"ViolationKind(42)": ViolationKind(42),
	} {
		if got := k.String(); got != want {
			t.Errorf("kind %d: String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestIndeterminacyString(t *testing.T) {
	with := Indeterminacy{Cause: CauseBudgetExceeded, EntryIndex: 3, Reason: "state budget"}
	if got := with.String(); !strings.Contains(got, "budget-exceeded") || !strings.Contains(got, "entry 3") {
		t.Errorf("with index: %q", got)
	}
	without := Indeterminacy{Cause: CauseRecoveredPanic, EntryIndex: -1, Reason: "setup"}
	if got := without.String(); strings.Contains(got, "entry") || !strings.Contains(got, "recovered-panic") {
		t.Errorf("without index: %q", got)
	}
}

func TestViolationString(t *testing.T) {
	e := entryAt(0, "Bob", "Cardiologist", "T06", "HT-11")
	v := &Violation{
		Kind: ViolationInvalidExecution, EntryIndex: 2, Entry: &e,
		Reason:   "task not enabled",
		Expected: []string{"T02"}, ActiveTasks: []string{"T01"},
	}
	got := v.String()
	for _, part := range []string{"invalid-execution", "task not enabled", "entry 2", "T06", "expected one of [T02]", "active [T01]"} {
		if !strings.Contains(got, part) {
			t.Errorf("violation string %q misses %q", got, part)
		}
	}
	bare := &Violation{Kind: ViolationUnknownPurpose, Reason: "no purpose for code XX"}
	if got := bare.String(); strings.Contains(got, "entry") || strings.Contains(got, "expected") {
		t.Errorf("bare violation leaks empty parts: %q", got)
	}
}

// TestReportStringForms walks real replays through the three rendered
// shapes rather than hand-assembling reports — the renderings must
// match what the checker actually produces.
func TestReportStringForms(t *testing.T) {
	c := newChecker(t, linearProc(t), "L", nil)

	compliant := check(t, c, trailOf("L-1", "P:T1", "P:T2", "P:T3"), "L-1")
	if got := compliant.String(); !strings.Contains(got, "COMPLIANT") || !strings.Contains(got, "complete") {
		t.Errorf("complete case: %q", got)
	}

	pending := check(t, c, trailOf("L-2", "P:T1"), "L-2")
	if got := pending.String(); !strings.Contains(got, "COMPLIANT") || !strings.Contains(got, "pending") {
		t.Errorf("pending case: %q", got)
	}

	violating := check(t, c, trailOf("L-3", "P:T2"), "L-3")
	if got := violating.String(); !strings.Contains(got, "INFRINGEMENT") {
		t.Errorf("violating case: %q", got)
	}

	// An OR split forks the configuration set, so a cap of 1 abandons
	// the analysis — the INDETERMINATE rendering.
	capped := newChecker(t, orProc(t), "M", nil)
	capped.MaxConfigurations = 1
	indet := check(t, capped, trailOf("M-1", "P:T1"), "M-1")
	if indet.Outcome != OutcomeIndeterminate {
		t.Fatalf("capped checker returned %v", indet.Outcome)
	}
	if got := indet.String(); !strings.Contains(got, "INDETERMINATE") {
		t.Errorf("indeterminate case: %q", got)
	}
}

func TestMustRegister(t *testing.T) {
	reg := NewRegistry()
	if p := reg.MustRegister(linearProc(t), "L"); p == nil {
		t.Fatal("MustRegister returned nil purpose")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate MustRegister did not panic")
		}
	}()
	reg.MustRegister(linearProc(t), "L")
}

// TestCheckerSystemWarm: the diagnostics accessor returns the same warm
// LTS the replay used — deriving it is idempotent per purpose.
func TestCheckerSystemWarm(t *testing.T) {
	c := newChecker(t, linearProc(t), "L", nil)
	check(t, c, trailOf("L-1", "P:T1"), "L-1")
	p := c.registry.ForCase("L-1")
	if p == nil {
		t.Fatal("no purpose for L-1")
	}
	sys := c.system(p)
	if sys == nil {
		t.Fatal("system returned nil LTS")
	}
	if again := c.system(p); again != sys {
		t.Error("system re-derived the LTS instead of reusing the runtime")
	}
}

// TestSymbolForEntryAndCacheStats drives the compiled engine's symbol
// classification directly and through a monitor, checking both the
// failure/success split and the cache counters' visibility.
func TestSymbolForEntryAndCacheStats(t *testing.T) {
	c := newChecker(t, fallibleProc(t), "F", nil)
	c.UseCompiled = true
	d, err := c.EnsureCompiled("Fallible")
	if err != nil {
		t.Fatalf("EnsureCompiled: %v", err)
	}

	ok := entryAt(0, "u", "P", "T1", "F-1")
	if sym, found := symbolForEntry(d, ok); !found || sym < 0 {
		t.Errorf("success entry: symbol %d found=%v", sym, found)
	}
	fail := failureAt(1, "u", "P", "T1", "F-1")
	if sym, found := symbolForEntry(d, fail); !found || sym < 0 {
		t.Errorf("failure entry: symbol %d found=%v", sym, found)
	}
	if _, found := symbolForEntry(d, entryAt(2, "u", "P", "NoSuchTask", "F-1")); found {
		t.Error("unknown task classified into the alphabet")
	}

	m := NewMonitor(c)
	if h, miss := m.SymbolCacheStats(); h != 0 || miss != 0 {
		t.Fatalf("fresh monitor stats %d/%d, want 0/0", h, miss)
	}
	for i, task := range []string{"T1", "T2", "T1", "T2"} {
		if _, err := m.Feed(entryAt(i, "u", "P", task, "F-1")); err != nil {
			t.Fatalf("feed %d: %v", i, err)
		}
	}
	hits, misses := m.SymbolCacheStats()
	if hits+misses == 0 {
		t.Error("compiled feed recorded no symbol lookups")
	}
	if misses == 0 {
		t.Error("first lookups cannot all be cache hits")
	}
}
