package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/audit"
)

// Explanation is the auditor-facing account of a non-compliant or
// indeterminate verdict: not just *that* Algorithm 1 rejected the
// case, but where the replay diverged and what the process would have
// accepted instead. It is deliberately engine-neutral — the
// interpreter and the compiled automaton must produce byte-identical
// explanations for the same trail (the differential suite enforces
// this), so it carries no engine marker.
type Explanation struct {
	Case    string `json:"case"`
	Purpose string `json:"purpose,omitempty"`
	// Outcome is "violation" or "indeterminate".
	Outcome string `json:"outcome"`
	// EntryIndex is the diverging entry's position in the case slice;
	// -1 when no single entry can be blamed (unknown purpose, or an
	// analysis that never started).
	EntryIndex int `json:"entry_index"`
	// Timestamp is the diverging entry's time in the paper's
	// YYYYMMDDhhmm layout; empty when EntryIndex is -1.
	Timestamp string `json:"timestamp,omitempty"`
	// Entry is the diverging entry rendered in the paper's row format.
	Entry string `json:"entry,omitempty"`
	Task  string `json:"task,omitempty"`
	Role  string `json:"role,omitempty"`
	User  string `json:"user,omitempty"`
	// Status is "success" or "failure" for the diverging entry.
	Status string `json:"status,omitempty"`
	// StepsReplayed counts the entries consumed before the divergence.
	StepsReplayed int `json:"steps_replayed"`
	// LastGoodConfigurations is the size of the last configuration set
	// that was still consistent with the trail — the live hypotheses
	// the diverging entry killed.
	LastGoodConfigurations int `json:"last_good_configurations,omitempty"`
	// ActiveTasks are the Role·Task pairs in execution across the
	// last-good configurations.
	ActiveTasks []string `json:"active_tasks,omitempty"`
	// Expected is the expected observable set at the divergence: the
	// weak-next labels some configuration would have fired.
	Expected []string `json:"expected,omitempty"`
	// ExpectedTasks projects Expected onto plain task identifiers
	// (error-handler labels excluded), deduplicated and sorted.
	ExpectedTasks []string `json:"expected_tasks,omitempty"`
	// NearestMiss is a one-line hint at what probably went wrong:
	// a near-matching task name, the pool a role conflicts with, or
	// the knob an indeterminate analysis ran out of.
	NearestMiss string `json:"nearest_miss,omitempty"`
	// NearestMissClass is the machine-readable classification of
	// NearestMiss (the Miss* constants) — what scenario fixtures assert
	// their expected first-deviation against. Derived from the same
	// deterministic classification as the sentence, so it is identical
	// across engines.
	NearestMissClass string `json:"nearest_miss_class,omitempty"`
	// Reason restates the verdict's reason line.
	Reason string `json:"reason"`
}

// Nearest-miss classes: the deterministic classification behind
// Explanation.NearestMiss, exposed so test fixtures (internal/scenario)
// can assert the expected first-deviation without string-matching a
// hint sentence.
const (
	// MissUnhandledFailure: a failure entry found no reachable error
	// handler (StrictFailureTask semantics included).
	MissUnhandledFailure = "unhandled-failure"
	// MissTaskTypo: the task is not in the process but a process task
	// is within edit distance 2 — probably a mislabelled entry.
	MissTaskTypo = "task-typo"
	// MissForeignTask: the task belongs to no task of this process —
	// the data was likely processed for a different purpose.
	MissForeignTask = "foreign-task"
	// MissWrongRole: the task's pool does not admit the entry's role.
	MissWrongRole = "wrong-role"
	// MissWrongPerformer: the task is expected at this point, but not
	// as performed by the entry's role.
	MissWrongPerformer = "wrong-performer"
	// MissOutOfOrder: the task exists and the role could perform it,
	// but the process expects other tasks at this point.
	MissOutOfOrder = "out-of-order"
	// MissCaseComplete: the process run had already completed; nothing
	// could continue the case.
	MissCaseComplete = "case-complete"
	// MissUnknownPurpose: the case code maps to no registered purpose.
	MissUnknownPurpose = "unknown-purpose"
	// MissConfigurationCap / MissBudgetExceeded / MissRecoveredPanic
	// classify indeterminate outcomes by their cause.
	MissConfigurationCap = "configuration-cap"
	MissBudgetExceeded   = "budget-exceeded"
	MissRecoveredPanic   = "recovered-panic"
)

// explainViolation turns a Violation into an Explanation. lastGood is
// the configuration-set size before the diverging entry (on the
// compiled engine: the member count of the last accepting DFA state).
func (c *Checker) explainViolation(pur *Purpose, caseID string, v *Violation, lastGood int) *Explanation {
	x := &Explanation{
		Case:                   caseID,
		Outcome:                OutcomeViolation.String(),
		EntryIndex:             v.EntryIndex,
		StepsReplayed:          v.EntryIndex,
		LastGoodConfigurations: lastGood,
		ActiveTasks:            append([]string(nil), v.ActiveTasks...),
		Expected:               append([]string(nil), v.Expected...),
		Reason:                 v.Reason,
	}
	if pur != nil {
		x.Purpose = pur.Name
	}
	x.ExpectedTasks = expectedTasks(x.Expected)
	if v.Entry == nil {
		x.EntryIndex = -1
		x.StepsReplayed = 0
		return x
	}
	e := v.Entry
	x.Entry = e.String()
	x.Timestamp = e.Time.Format(audit.PaperTimeLayout)
	x.Task, x.Role, x.User = e.Task, e.Role, e.User
	x.Status = e.Status.String()
	if v.Kind == ViolationUnknownPurpose {
		x.NearestMissClass = MissUnknownPurpose
		x.NearestMiss = "the case code maps to no registered purpose; register the purpose (or fix the case numbering) and re-audit"
		return x
	}
	x.NearestMissClass, x.NearestMiss = c.nearestMiss(pur, e, x.ExpectedTasks)
	return x
}

// explainUnknownPurpose covers the pre-replay rejection where the case
// code itself is unregistered and no entry can be blamed.
func explainUnknownPurpose(caseID string, v *Violation) *Explanation {
	return &Explanation{
		Case:             caseID,
		Outcome:          OutcomeViolation.String(),
		EntryIndex:       -1,
		NearestMissClass: MissUnknownPurpose,
		NearestMiss:      "the case code maps to no registered purpose; register the purpose (or fix the case numbering) and re-audit",
		Reason:           v.Reason,
	}
}

// explainIndeterminacy accounts for an abstained verdict, hinting at
// the budget knob that would let the analysis finish.
func explainIndeterminacy(caseID, purpose string, ind *Indeterminacy) *Explanation {
	x := &Explanation{
		Case:       caseID,
		Purpose:    purpose,
		Outcome:    OutcomeIndeterminate.String(),
		EntryIndex: ind.EntryIndex,
		Reason:     ind.Reason,
	}
	if ind.EntryIndex >= 0 {
		x.StepsReplayed = ind.EntryIndex
	}
	switch ind.Cause {
	case CauseConfigurationCap:
		x.NearestMissClass = MissConfigurationCap
		x.NearestMiss = "the configuration set outgrew Checker.MaxConfigurations; raise the cap to keep more concurrent hypotheses live"
	case CauseBudgetExceeded:
		x.NearestMissClass = MissBudgetExceeded
		x.NearestMiss = "the LTS exploration hit a budget; raise MaxSilentDepth / the state budget and re-run the case"
	case CauseRecoveredPanic:
		x.NearestMissClass = MissRecoveredPanic
		x.NearestMiss = "the analysis crashed and was isolated to this case; no verdict is claimed — re-run after fixing the inputs"
	}
	return x
}

// expectedTasks projects rendered expected labels ("Pool.Task",
// "sys.Err(T03)") onto plain task identifiers. Error-handler labels
// are dropped: they name the failure being handled, not a task the
// auditor could look for next. Both engines render Expected from the
// same label set, so this derivation is engine-stable.
func expectedTasks(expected []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range expected {
		if strings.HasPrefix(l, "sys.Err(") {
			continue
		}
		task := l
		if i := strings.LastIndexByte(l, '.'); i >= 0 {
			task = l[i+1:]
		}
		if task != "" && !seen[task] {
			seen[task] = true
			out = append(out, task)
		}
	}
	sort.Strings(out)
	return out
}

// nearestMiss classifies the divergence into the hint an auditor acts
// on, returning the machine-readable class alongside the sentence.
// Deterministic: candidate scans run in sorted order, so both engines
// and repeated runs produce the same classification.
func (c *Checker) nearestMiss(pur *Purpose, e *audit.Entry, expTasks []string) (class, hint string) {
	if e.Status == audit.Failure {
		if len(expTasks) == 0 {
			return MissUnhandledFailure, fmt.Sprintf("the failure of task %q is unhandled and no further task could continue the case", e.Task)
		}
		return MissUnhandledFailure, fmt.Sprintf("the failure of task %q has no reachable error handler; only successful steps of %s could continue the case",
			e.Task, quoteList(expTasks))
	}
	if !pur.Process.HasTask(e.Task) {
		if near, d := nearestString(e.Task, pur.Process.Tasks()); near != "" && d <= 2 {
			return MissTaskTypo, fmt.Sprintf("task %q is not in the process; the closest process task is %q — possibly a mislabelled entry", e.Task, near)
		}
		return MissForeignTask, fmt.Sprintf("task %q belongs to no task of this process — the data was likely processed for a different purpose", e.Task)
	}
	if pool := pur.Process.TaskRole(e.Task); pool != "" && !c.roleMatches(e.Role, pool) {
		return MissWrongRole, fmt.Sprintf("task %q is performed by pool %q, which role %q may not act for", e.Task, pool, e.Role)
	}
	for _, t := range expTasks {
		if t == e.Task {
			return MissWrongPerformer, fmt.Sprintf("task %q is expected here but not as performed by role %q", e.Task, e.Role)
		}
	}
	if len(expTasks) > 0 {
		return MissOutOfOrder, fmt.Sprintf("the process expects %s at this point; task %q comes too early, too late, or on a dead branch", quoteList(expTasks), e.Task)
	}
	return MissCaseComplete, "no further task can continue the case at this point — the process run had already completed"
}

// quoteList renders []{"T05","T09"} as `"T05" or "T09"`.
func quoteList(tasks []string) string {
	switch len(tasks) {
	case 0:
		return ""
	case 1:
		return fmt.Sprintf("%q", tasks[0])
	}
	var b strings.Builder
	for i, t := range tasks[:len(tasks)-1] {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%q", t)
	}
	fmt.Fprintf(&b, " or %q", tasks[len(tasks)-1])
	return b.String()
}

// nearestString returns the candidate with the smallest edit distance
// to s, ties broken lexicographically (candidates are scanned sorted).
func nearestString(s string, candidates []string) (string, int) {
	sorted := append([]string(nil), candidates...)
	sort.Strings(sorted)
	best, bestD := "", -1
	for _, c := range sorted {
		d := editDistance(s, c)
		if bestD < 0 || d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// editDistance is the Levenshtein distance with unit costs.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
