package core_test

// Differential tests for DFA minimization (CompileInput.Minimize):
// replay over the minimized automaton must produce reports that are
// byte-identical — JSON-encoded — to both the dense automaton's and
// the interpreter's, on every workload. Run under -race in CI.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/loan"
	"repro/internal/policy"
)

// newMinimizedChecker builds the third engine: compiled with
// minimization on. It gets its own runtime — the shared compiled slot
// is flag-keyed, so a minimized clone sharing a dense clone's runtime
// would (correctly) fall back to the interpreter instead of compiling.
func newMinimizedChecker(reg *core.Registry, roles *policy.RoleHierarchy) *core.Checker {
	m := core.NewChecker(reg, roles)
	m.UseCompiled = true
	m.MinimizeAutomata = true
	return m
}

// requireByteIdenticalReports replays the trail through the
// interpreter, the dense automaton and the minimized automaton and
// demands the three JSON encodings agree byte for byte (modulo the
// engine markers).
func requireByteIdenticalReports(t *testing.T, p enginePair, min *core.Checker, trail *audit.Trail) {
	t.Helper()
	encode := func(c *core.Checker, name string) [][]byte {
		reps, err := c.CheckTrail(trail)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := make([][]byte, len(reps))
		for i, r := range reps {
			if name != "interpreted" && r.Engine != core.EngineCompiled {
				t.Fatalf("%s: case %s ran on %q (%s)", name, r.Case, r.Engine, r.EngineFallback)
			}
			b, err := json.Marshal(normalizeEngine(r))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = b
		}
		return out
	}
	interp := encode(p.interp, "interpreted")
	dense := encode(p.compiled, "dense")
	mini := encode(min, "minimized")
	if len(interp) != len(dense) || len(interp) != len(mini) {
		t.Fatalf("report counts differ: %d interpreted, %d dense, %d minimized", len(interp), len(dense), len(mini))
	}
	for i := range interp {
		if !bytes.Equal(mini[i], dense[i]) {
			t.Fatalf("minimized report differs from dense:\ndense:     %s\nminimized: %s", dense[i], mini[i])
		}
		if !bytes.Equal(mini[i], interp[i]) {
			t.Fatalf("minimized report differs from interpreter:\ninterpreted: %s\nminimized:   %s", interp[i], mini[i])
		}
	}
}

func TestDifferentialMinimizedHospital(t *testing.T) {
	reg, roles := hospitalRegistry(t)
	p := newEnginePair(t, reg, roles)
	min := newMinimizedChecker(reg, roles)
	trail, err := hospital.Trail()
	if err != nil {
		t.Fatal(err)
	}
	requireByteIdenticalReports(t, p, min, trail)

	// Seeded random trails: garbage tasks, wrong roles, failures.
	tasks := []string{"T01", "T02", "T03", "T04", "T05", "T06", "T07", "T08",
		"T09", "T10", "T11", "T91", "Zed", ""}
	rolesList := []string{"GP", "Cardiologist", "Radiologist", "MedicalLabTech",
		"Physician", "Janitor", ""}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 150; i++ {
		caseID := fmt.Sprintf("HT-%d", 5000+i)
		var entries []audit.Entry
		for j, n := 0, rng.Intn(12); j < n; j++ {
			task := tasks[rng.Intn(len(tasks))]
			if rng.Intn(8) == 0 {
				task = "!" + task
			}
			entries = append(entries, diffEntry(j, rolesList[rng.Intn(len(rolesList))], task, caseID))
		}
		requireByteIdenticalReports(t, p, min, audit.NewTrail(entries))
	}
}

func TestDifferentialMinimizedLoan(t *testing.T) {
	reg, roles := loanRegistry(t)
	p := newEnginePair(t, reg, roles)
	min := newMinimizedChecker(reg, roles)
	requireByteIdenticalReports(t, p, min, loan.Trail())
	requireByteIdenticalReports(t, p, min, diffTrail("LA-40",
		"IntakeClerk:L01", "CreditAnalyst:L02", "CreditAnalyst:!L02",
		"CreditAnalyst:L02b", "IntakeClerk:L01", "CreditAnalyst:L02"))
	requireByteIdenticalReports(t, p, min, diffTrail("LA-41",
		"IntakeClerk:L01", "BankStaff:L02"))
	requireByteIdenticalReports(t, p, min, diffTrail("LA-42", "IntakeClerk:L99"))
}

// TestMinimizedSnapshotResume checkpoints mid-trail under the
// minimized engine and resumes under every engine (and vice versa);
// all verdicts must match an uninterrupted interpreter run. The
// minimized->dense direction exercises the promotion guarantee
// (representative member sets are real dense states); dense->minimized
// exercises the graceful interpreter fallback for merged-away states.
func TestMinimizedSnapshotResume(t *testing.T) {
	reg, roles := loanRegistry(t)
	entries := loan.Trail().Entries()
	half := len(entries) / 2
	p := newEnginePair(t, reg, roles)
	min := newMinimizedChecker(reg, roles)

	run := func(first, second *core.Checker) []core.CaseStatus {
		t.Helper()
		m1 := core.NewMonitor(first)
		for _, e := range entries[:half] {
			if _, err := m1.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := m1.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		m2, err := core.RestoreMonitor(second, &buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries[half:] {
			if _, err := m2.Feed(e); err != nil {
				t.Fatal(err)
			}
		}
		st, err := m2.Status()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	baseline := run(p.interp.Clone(), p.interp.Clone())
	for name, got := range map[string][]core.CaseStatus{
		"minimized->minimized":   run(min.Clone(), min.Clone()),
		"minimized->interpreted": run(min.Clone(), p.interp.Clone()),
		"interpreted->minimized": run(p.interp.Clone(), min.Clone()),
		"minimized->dense":       run(min.Clone(), p.compiled.Clone()),
		"dense->minimized":       run(p.compiled.Clone(), min.Clone()),
	} {
		if !reflect.DeepEqual(normalizeStatus(baseline), normalizeStatus(got)) {
			t.Fatalf("%s resume diverges:\nbaseline: %+v\ngot:      %+v", name, baseline, got)
		}
	}
}

// TestMinimizeFingerprintDistinct pins the cache-safety property: the
// minimize flag changes the fingerprint, so a dense artifact can never
// be installed into a minimizing checker (or vice versa).
func TestMinimizeFingerprintDistinct(t *testing.T) {
	reg, roles := loanRegistry(t)
	p := newEnginePair(t, reg, roles)
	min := newMinimizedChecker(reg, roles)

	fpDense, err := p.compiled.AutomatonFingerprint(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	fpMin, err := min.AutomatonFingerprint(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	if fpDense == fpMin {
		t.Fatal("dense and minimized fingerprints alias")
	}

	d, err := p.compiled.EnsureCompiled(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	if err := min.SetCompiled(loan.PurposeName, d); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("dense artifact accepted by minimizing checker: %v", err)
	}
	dm, err := min.EnsureCompiled(loan.PurposeName)
	if err != nil {
		t.Fatal(err)
	}
	if !dm.Minimized || dm.Fingerprint != fpMin {
		t.Fatalf("EnsureCompiled under MinimizeAutomata: minimized=%v fp=%s want %s",
			dm.Minimized, dm.Fingerprint, fpMin)
	}
}
