package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/audit"
)

// Outcome is the tri-state verdict of a case analysis. The paper's
// Algorithm 1 is binary (valid execution or not); a production checker
// replaying imperfect evidence needs a third answer — "cannot decide" —
// for cases whose analysis was abandoned (state-space budget, config
// cap, isolated panic) rather than completed. De Masellis et al.'s
// declarative framework draws the same violation/undecided line.
type Outcome int

const (
	// OutcomeCompliant: the trail is a valid (prefix of an) execution.
	OutcomeCompliant Outcome = iota
	// OutcomeViolation: Algorithm 1 rejected an entry (or the case's
	// purpose is unknown).
	OutcomeViolation
	// OutcomeIndeterminate: the analysis could not run to a verdict;
	// Report.Indeterminate says why. Neither compliance nor violation
	// is claimed.
	OutcomeIndeterminate
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeCompliant:
		return "compliant"
	case OutcomeViolation:
		return "violation"
	case OutcomeIndeterminate:
		return "indeterminate"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// IndeterminacyCause classifies why the checker abstained.
type IndeterminacyCause int

const (
	// CauseBudgetExceeded: LTS exploration hit a budget (state budget,
	// silent-depth guard, or a non-finitely-observable process).
	CauseBudgetExceeded IndeterminacyCause = iota
	// CauseConfigurationCap: the configuration set exceeded
	// MaxConfigurations.
	CauseConfigurationCap
	// CauseRecoveredPanic: a panic during this case's analysis was
	// recovered and isolated to the case.
	CauseRecoveredPanic
)

// String names the cause.
func (c IndeterminacyCause) String() string {
	switch c {
	case CauseBudgetExceeded:
		return "budget-exceeded"
	case CauseConfigurationCap:
		return "configuration-cap"
	case CauseRecoveredPanic:
		return "recovered-panic"
	default:
		return fmt.Sprintf("IndeterminacyCause(%d)", int(c))
	}
}

// MarshalJSON serializes the cause by name, so snapshots stay readable
// and stable if the enum is ever reordered.
func (c IndeterminacyCause) MarshalJSON() ([]byte, error) {
	return json.Marshal(c.String())
}

// UnmarshalJSON reads a cause name written by MarshalJSON.
func (c *IndeterminacyCause) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for _, k := range []IndeterminacyCause{CauseBudgetExceeded, CauseConfigurationCap, CauseRecoveredPanic} {
		if k.String() == s {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("core: unknown indeterminacy cause %q", s)
}

// Indeterminacy explains an OutcomeIndeterminate report.
type Indeterminacy struct {
	Cause IndeterminacyCause `json:"cause"`
	// EntryIndex is the entry being replayed when the analysis was
	// abandoned; -1 when it never started (e.g. the initial
	// configuration could not be derived).
	EntryIndex int    `json:"entry_index"`
	Reason     string `json:"reason"`
}

// String renders a one-line account.
func (ind *Indeterminacy) String() string {
	if ind.EntryIndex >= 0 {
		return fmt.Sprintf("[%s] %s (at entry %d)", ind.Cause, ind.Reason, ind.EntryIndex)
	}
	return fmt.Sprintf("[%s] %s", ind.Cause, ind.Reason)
}

// ViolationKind classifies why a case failed compliance.
type ViolationKind int

const (
	// ViolationInvalidExecution: the trail is not a valid execution of
	// the purpose's process (Algorithm 1 returned false).
	ViolationInvalidExecution ViolationKind = iota
	// ViolationUnknownPurpose: the case code names no registered
	// purpose, so the claimed purpose cannot be validated at all.
	ViolationUnknownPurpose
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationInvalidExecution:
		return "invalid-execution"
	case ViolationUnknownPurpose:
		return "unknown-purpose"
	case ViolationExpired:
		return "expired"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation pinpoints the first entry Algorithm 1 could not replay.
type Violation struct {
	Kind       ViolationKind
	EntryIndex int
	Entry      *audit.Entry
	Reason     string
	// Expected lists the observable labels the surviving
	// configurations offered instead.
	Expected []string
	// ActiveTasks lists the tasks that were active across surviving
	// configurations.
	ActiveTasks []string
}

// String renders a one-line diagnosis.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", v.Kind, v.Reason)
	if v.Entry != nil {
		fmt.Fprintf(&b, " (entry %d: %s)", v.EntryIndex, v.Entry)
	}
	if len(v.Expected) > 0 {
		fmt.Fprintf(&b, "; expected one of %v", v.Expected)
	}
	if len(v.ActiveTasks) > 0 {
		fmt.Fprintf(&b, "; active %v", v.ActiveTasks)
	}
	return b.String()
}

// Report is the outcome of replaying one case (Algorithm 1).
type Report struct {
	Case    string
	Purpose string
	// Entries is the number of entries in the case slice.
	Entries int
	// Compliant is Algorithm 1's verdict: the trail is a valid
	// (prefix of an) execution of the purpose's process. It is true
	// exactly when Outcome is OutcomeCompliant.
	Compliant bool
	// Outcome is the tri-state verdict; indeterminate cases are neither
	// compliant nor violations.
	Outcome Outcome
	// Violation is set when Outcome is OutcomeViolation.
	Violation *Violation
	// Indeterminate is set when Outcome is OutcomeIndeterminate.
	Indeterminate *Indeterminacy
	// Explanation is the auditor-facing account of a non-compliant or
	// indeterminate outcome (nil when compliant). Both engines produce
	// identical explanations for the same trail.
	Explanation *Explanation
	// StepsReplayed counts entries successfully replayed (all of them
	// when compliant).
	StepsReplayed int
	// PeakConfigurations is the largest configuration set during the
	// replay — the cost driver of the algorithm.
	PeakConfigurations int
	// FinalConfigurations is the surviving configuration count.
	FinalConfigurations int
	// CanComplete reports that some surviving configuration can reach
	// process completion without further observable activity.
	CanComplete bool
	// Pending reports a compliant but mid-flight case: the analysis
	// should be resumed when new actions are recorded (Section 4).
	Pending bool
	// Engine records which replay engine decided the case when the
	// compiled fast path was requested (Checker.UseCompiled):
	// "compiled" for the table-driven automaton, "interpreted" for the
	// Algorithm 1 fallback. Empty when UseCompiled is off.
	Engine string
	// EngineFallback, set when UseCompiled was requested but the
	// interpreter ran, records why the automaton was unavailable
	// (DESIGN.md §11 fallback rules).
	EngineFallback string
}

// String renders a one-line summary.
func (r *Report) String() string {
	if r.Outcome == OutcomeIndeterminate {
		return fmt.Sprintf("case %s (%s): INDETERMINATE after %d step(s): %s", r.Case, r.Purpose, r.StepsReplayed, r.Indeterminate)
	}
	if r.Compliant {
		state := "complete"
		if r.Pending {
			state = "pending"
		}
		return fmt.Sprintf("case %s (%s): COMPLIANT (%d entries, %s)", r.Case, r.Purpose, r.Entries, state)
	}
	return fmt.Sprintf("case %s (%s): INFRINGEMENT at entry %d: %s", r.Case, r.Purpose, r.StepsReplayed, r.Violation)
}
