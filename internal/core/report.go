package core

import (
	"fmt"
	"strings"

	"repro/internal/audit"
)

// ViolationKind classifies why a case failed compliance.
type ViolationKind int

const (
	// ViolationInvalidExecution: the trail is not a valid execution of
	// the purpose's process (Algorithm 1 returned false).
	ViolationInvalidExecution ViolationKind = iota
	// ViolationUnknownPurpose: the case code names no registered
	// purpose, so the claimed purpose cannot be validated at all.
	ViolationUnknownPurpose
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationInvalidExecution:
		return "invalid-execution"
	case ViolationUnknownPurpose:
		return "unknown-purpose"
	case ViolationExpired:
		return "expired"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Violation pinpoints the first entry Algorithm 1 could not replay.
type Violation struct {
	Kind       ViolationKind
	EntryIndex int
	Entry      *audit.Entry
	Reason     string
	// Expected lists the observable labels the surviving
	// configurations offered instead.
	Expected []string
	// ActiveTasks lists the tasks that were active across surviving
	// configurations.
	ActiveTasks []string
}

// String renders a one-line diagnosis.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %s", v.Kind, v.Reason)
	if v.Entry != nil {
		fmt.Fprintf(&b, " (entry %d: %s)", v.EntryIndex, v.Entry)
	}
	if len(v.Expected) > 0 {
		fmt.Fprintf(&b, "; expected one of %v", v.Expected)
	}
	if len(v.ActiveTasks) > 0 {
		fmt.Fprintf(&b, "; active %v", v.ActiveTasks)
	}
	return b.String()
}

// Report is the outcome of replaying one case (Algorithm 1).
type Report struct {
	Case    string
	Purpose string
	// Entries is the number of entries in the case slice.
	Entries int
	// Compliant is Algorithm 1's verdict: the trail is a valid
	// (prefix of an) execution of the purpose's process.
	Compliant bool
	// Violation is set when not compliant.
	Violation *Violation
	// StepsReplayed counts entries successfully replayed (all of them
	// when compliant).
	StepsReplayed int
	// PeakConfigurations is the largest configuration set during the
	// replay — the cost driver of the algorithm.
	PeakConfigurations int
	// FinalConfigurations is the surviving configuration count.
	FinalConfigurations int
	// CanComplete reports that some surviving configuration can reach
	// process completion without further observable activity.
	CanComplete bool
	// Pending reports a compliant but mid-flight case: the analysis
	// should be resumed when new actions are recorded (Section 4).
	Pending bool
}

// String renders a one-line summary.
func (r *Report) String() string {
	if r.Compliant {
		state := "complete"
		if r.Pending {
			state = "pending"
		}
		return fmt.Sprintf("case %s (%s): COMPLIANT (%d entries, %s)", r.Case, r.Purpose, r.Entries, state)
	}
	return fmt.Sprintf("case %s (%s): INFRINGEMENT at entry %d: %s", r.Case, r.Purpose, r.StepsReplayed, r.Violation)
}
