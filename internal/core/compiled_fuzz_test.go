package core_test

// FuzzCompiledReplay is the differential fuzz target gating the
// compiled fast path: arbitrary bytes decode into a trail over the
// clinical-trial alphabet (plus off-alphabet tasks and roles) and the
// table-driven engine must return byte-identical reports to the
// interpreter, including violation messages and configuration counts.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
)

var fuzzTasks = []string{
	"T91", "T92", "T93", "T94", "T95", // clinical trial
	"T01", "T02", "T05", "T11", "T15", // treatment (wrong purpose)
	"Zed", "", // off-alphabet
}

var fuzzRoles = []string{
	"Researcher", "Physician", "Cardiologist", "Nurse",
	"Janitor", "", // off-alphabet
}

// decodeFuzzTrail reads two bytes per entry: the first selects the
// task, the second the role and whether the entry is a failure.
func decodeFuzzTrail(data []byte) *audit.Trail {
	t0 := time.Date(2026, 3, 1, 8, 0, 0, 0, time.UTC)
	var entries []audit.Entry
	for i := 0; i+1 < len(data) && len(entries) < 64; i += 2 {
		e := audit.Entry{
			User: "u", Role: fuzzRoles[int(data[i+1]>>2)%len(fuzzRoles)],
			Action: "read",
			Object: policy.MustParseObject("[K]EPR"),
			Task:   fuzzTasks[int(data[i])%len(fuzzTasks)],
			Case:   "CT-F",
			Time:   t0.Add(time.Duration(len(entries)) * time.Minute),
			Status: audit.Success,
		}
		if data[i+1]&3 == 3 {
			e.Status = audit.Failure
		}
		entries = append(entries, e)
	}
	return audit.NewTrail(entries)
}

func FuzzCompiledReplay(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0, 4, 0})       // the Figure 4 happy path
	f.Add([]byte{0, 0, 2, 0})                         // out of order
	f.Add([]byte{0, 16, 1, 16})                       // Janitor
	f.Add([]byte{5, 0, 6, 0})                         // treatment tasks under trial purpose
	f.Add([]byte{10, 0})                              // off-alphabet task
	f.Add([]byte{0, 3, 0, 0})                         // failure marker
	f.Add([]byte{})                                   // empty trail
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 0, 2, 0, 2, 0}) // duplicates

	reg, roles := hospitalRegistry(f)
	interp := core.NewChecker(reg, roles)
	compiled := interp.Clone()
	compiled.UseCompiled = true

	f.Fuzz(func(t *testing.T, data []byte) {
		trail := decodeFuzzTrail(data)
		ri, errI := interp.CheckTrail(trail)
		rc, errC := compiled.CheckTrail(trail)
		if (errI == nil) != (errC == nil) {
			t.Fatalf("error divergence: interpreted %v, compiled %v", errI, errC)
		}
		if errI != nil {
			return
		}
		if len(ri) != len(rc) {
			t.Fatalf("report count divergence: %d vs %d", len(ri), len(rc))
		}
		for i := range ri {
			if rc[i].Engine != core.EngineCompiled {
				t.Fatalf("case %s ran on engine %q, want compiled", rc[i].Case, rc[i].Engine)
			}
			a, b := *ri[i], *rc[i]
			a.Engine, a.EngineFallback = "", ""
			b.Engine, b.EngineFallback = "", ""
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("report divergence for trail %v:\ninterpreted: %+v\ncompiled:    %+v", data, a, b)
			}
		}
	})
}
