package core

// Compiled fast path (DESIGN.md §11). For well-founded processes the
// observable-trace semantics of Definition 6 is a regular language over
// task/error labels, so Algorithm 1's configuration-set machine can be
// determinized once, ahead of time (internal/automaton), and replay
// becomes one dense-table lookup per entry. The checker compiles each
// purpose lazily on first use (or accepts a preloaded artifact via
// SetCompiled) and falls back to the interpreter — recording the cause
// — whenever the automaton is absent: the purpose is not compilable
// within its budgets, the checker's semantic flags differ from the
// automaton's, or a TraceFn needs live configuration sets.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/audit"
	"repro/internal/automaton"
)

// Engine names recorded in Report.Engine when UseCompiled is on.
const (
	EngineCompiled    = "compiled"
	EngineInterpreted = "interpreted"
)

// compiledResult is one purpose's compile outcome, stored in the shared
// runtime: either a usable automaton or the error explaining its
// absence, plus the semantic flags it was built under.
type compiledResult struct {
	dfa *automaton.DFA
	err error

	strict       bool
	noAbsorption bool
	maxConfigs   int
	minimize     bool
}

func (c *Checker) effectiveMaxConfigurations() int {
	if c.MaxConfigurations > 0 {
		return c.MaxConfigurations
	}
	return DefaultMaxConfigurations
}

// automatonInput assembles the compiler input for a purpose under this
// checker's semantic flags, reusing the warm shared LTS.
func (c *Checker) automatonInput(pur *Purpose, rt *purposeRT) automaton.CompileInput {
	in := automaton.CompileInput{
		Purpose:           pur.Name,
		Initial:           pur.Initial,
		Observable:        pur.Observable,
		Roles:             c.roles,
		StrictFailureTask: c.StrictFailureTask,
		DisableAbsorption: c.DisableAbsorption,
		MaxConfigurations: c.MaxConfigurations,
		MaxSilentDepth:    c.MaxSilentDepth,
		MaxStates:         c.MaxAutomatonStates,
		Minimize:          c.MinimizeAutomata,
		System:            rt.sys,
	}
	for _, task := range pur.Process.Tasks() {
		in.Tasks = append(in.Tasks, automaton.TaskSpec{Name: task, Role: pur.Process.TaskRole(task)})
	}
	return in
}

// purposeByName resolves a registered purpose for the compiled-artifact
// API surface.
func (c *Checker) purposeByName(name string) (*Purpose, error) {
	pur := c.registry.Purpose(name)
	if pur == nil {
		return nil, fmt.Errorf("core: unknown purpose %q", name)
	}
	return pur, nil
}

// AutomatonFingerprint returns the content address a compiled automaton
// for the purpose would have under this checker's current flags —
// computable without compiling, so callers can probe an artifact cache
// (encode.LoadAutomaton) before paying for subset construction.
func (c *Checker) AutomatonFingerprint(purpose string) (string, error) {
	pur, err := c.purposeByName(purpose)
	if err != nil {
		return "", err
	}
	return automaton.Fingerprint(c.automatonInput(pur, c.runtime(pur))), nil
}

// EnsureCompiled compiles the purpose's automaton under the checker's
// current flags (replacing any slot compiled under different flags) and
// returns it. Non-compilable purposes return an error wrapping
// automaton.ErrNotCompilable; the failure is recorded so replay falls
// back to the interpreter without retrying the compile.
func (c *Checker) EnsureCompiled(purpose string) (*automaton.DFA, error) {
	pur, err := c.purposeByName(purpose)
	if err != nil {
		return nil, err
	}
	rt := c.runtime(pur)
	rt.compiledMu.Lock()
	defer rt.compiledMu.Unlock()
	if r := rt.compiled.Load(); r != nil && c.flagsMatch(r) {
		return r.dfa, r.err
	}
	return c.compileLocked(pur, rt)
}

// SetCompiled installs a previously compiled automaton (typically
// loaded from an artifact via encode.LoadAutomaton) for the purpose.
// The automaton's fingerprint must equal the one this checker would
// compile to under its current flags; a mismatched artifact is refused
// so a stale cache can never change verdicts.
func (c *Checker) SetCompiled(purpose string, d *automaton.DFA) error {
	pur, err := c.purposeByName(purpose)
	if err != nil {
		return err
	}
	rt := c.runtime(pur)
	want := automaton.Fingerprint(c.automatonInput(pur, rt))
	if d.Fingerprint != want {
		return fmt.Errorf("core: automaton fingerprint %.12s does not match purpose %q under current flags (want %.12s)",
			d.Fingerprint, purpose, want)
	}
	rt.compiledMu.Lock()
	defer rt.compiledMu.Unlock()
	rt.compiled.Store(&compiledResult{
		dfa:          d,
		strict:       c.StrictFailureTask,
		noAbsorption: c.DisableAbsorption,
		maxConfigs:   c.effectiveMaxConfigurations(),
		minimize:     c.MinimizeAutomata,
	})
	return nil
}

// CompiledStatus reports the purpose's automaton table sizes, or the
// recorded reason no automaton is in use (never compiled, or the
// compile failed).
func (c *Checker) CompiledStatus(purpose string) (automaton.Stats, error) {
	pur, err := c.purposeByName(purpose)
	if err != nil {
		return automaton.Stats{}, err
	}
	r := c.runtime(pur).compiled.Load()
	switch {
	case r == nil:
		return automaton.Stats{}, fmt.Errorf("core: purpose %q has no compiled automaton", purpose)
	case r.err != nil:
		return automaton.Stats{}, r.err
	default:
		return r.dfa.Stats(), nil
	}
}

func (c *Checker) flagsMatch(r *compiledResult) bool {
	return r.strict == c.StrictFailureTask &&
		r.noAbsorption == c.DisableAbsorption &&
		r.maxConfigs == c.effectiveMaxConfigurations() &&
		r.minimize == c.MinimizeAutomata
}

// compileLocked compiles and records the result; rt.compiledMu held.
func (c *Checker) compileLocked(pur *Purpose, rt *purposeRT) (*automaton.DFA, error) {
	d, err := automaton.Compile(c.automatonInput(pur, rt))
	r := &compiledResult{
		dfa:          d,
		err:          err,
		strict:       c.StrictFailureTask,
		noAbsorption: c.DisableAbsorption,
		maxConfigs:   c.effectiveMaxConfigurations(),
		minimize:     c.MinimizeAutomata,
	}
	rt.compiled.Store(r)
	return d, err
}

// compiledFor returns the purpose's automaton when the fast path
// applies, compiling lazily on first use. Otherwise it returns nil and
// the fallback cause to record.
func (c *Checker) compiledFor(pur *Purpose) (*automaton.DFA, string) {
	if !c.UseCompiled {
		return nil, ""
	}
	if c.TraceFn != nil {
		return nil, "TraceFn requires live configuration sets"
	}
	rt := c.runtime(pur)
	r := rt.compiled.Load()
	if r == nil {
		rt.compiledMu.Lock()
		if r = rt.compiled.Load(); r == nil {
			c.compileLocked(pur, rt)
			r = rt.compiled.Load()
		}
		rt.compiledMu.Unlock()
	}
	if !c.flagsMatch(r) {
		return nil, "automaton was compiled under different checker flags"
	}
	if r.err != nil {
		return nil, r.err.Error()
	}
	return r.dfa, ""
}

// symbolForEntry classifies an audit entry into the automaton's
// alphabet. No symbol means no configuration could accept the entry —
// a violation, mirroring the interpreter's matchesEntry.
func symbolForEntry(d *automaton.DFA, e audit.Entry) (int32, bool) {
	if e.Status == audit.Failure {
		return d.SymbolFor(e.Task, "", true)
	}
	return d.SymbolFor(e.Task, e.Role, false)
}

// symCacheSize is the direct-mapped symbol-cache size of one compiled
// replay. Trails draw tasks and roles from a small alphabet, so even a
// tiny cache turns the two map probes of SymbolFor into one string
// compare per entry on the hot path.
const symCacheSize = 32

type symCacheSlot struct {
	dfa        *automaton.DFA // nil = empty slot; also invalidates across automata
	task, role string
	failure    bool
	sym        int32
	ok         bool
}

// symCacheTable is a direct-mapped (task, role, failure) → symbol
// cache. replayCompiled keeps one on its stack per replay; a Monitor
// keeps one across feeds (its slots key on the DFA pointer, so one
// table safely serves every purpose's automaton).
type symCacheTable [symCacheSize]symCacheSlot

// lookup resolves the symbol for (task, role, failure) under d,
// reporting whether the answer came from the cache.
func (t *symCacheTable) lookup(d *automaton.DFA, task, role string, failure bool) (sym int32, ok, hit bool) {
	slot := &t[symCacheIdx(task, role)]
	if slot.dfa == d && slot.task == task && slot.role == role && slot.failure == failure {
		return slot.sym, slot.ok, true
	}
	slot.sym, slot.ok = d.SymbolFor(task, role, failure)
	slot.dfa, slot.task, slot.role, slot.failure = d, task, role, failure
	return slot.sym, slot.ok, false
}

func symCacheIdx(task, role string) uint8 {
	h := uint32(len(task))*131 + uint32(len(role))*31
	if len(task) > 0 {
		h += uint32(task[len(task)-1]) * 7
	}
	if len(role) > 0 {
		h += uint32(role[0])
	}
	return uint8(h % symCacheSize)
}

// replayCompiled is Algorithm 1 as one table lookup per entry.
func (c *Checker) replayCompiled(ctx context.Context, d *automaton.DFA, pur *Purpose, caseID string, entries []audit.Entry) (*Report, error) {
	rep := &Report{Case: caseID, Purpose: pur.Name, Entries: len(entries), Engine: EngineCompiled}
	obs := c.Observer
	if obs != nil {
		obs.ReplayBegin(caseID, pur.Name, EngineCompiled, len(entries))
	}
	// cov is hoisted like obs: one nil check per entry, nothing else on
	// the bare hot path.
	var cov *automaton.Coverage
	if c.Coverage != nil {
		cov = c.Coverage.For(d)
		cov.VisitState(d.Start)
	}
	state := d.Start
	done := ctx.Done()
	var cache symCacheTable
	for i := range entries {
		if done != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		e := &entries[i]
		task, role := e.Task, e.Role
		failure := e.Status == audit.Failure
		if failure {
			role = ""
		}
		sym, ok, hit := cache.lookup(d, task, role, failure)
		next := automaton.Reject
		if ok {
			next = d.Step(state, sym)
		}
		if next == automaton.Reject {
			rep.Compliant = false
			rep.Outcome = OutcomeViolation
			rep.Violation = c.describeViolationCompiled(d, state, pur, i, entries[i])
			rep.StepsReplayed = i
			rep.Explanation = c.explainViolation(pur, caseID, rep.Violation, len(d.States[state].Members))
			if obs != nil {
				obs.EntryRejected(i, e, rep.Explanation)
				obs.ReplayEnd(rep)
			}
			return rep, nil
		}
		if obs != nil {
			obs.EntryAccepted(i, e, StepStats{
				ConfigsBefore:  len(d.States[state].Members),
				ConfigsAfter:   len(d.States[next].Members),
				SymbolCacheHit: hit,
			})
		}
		if cov != nil {
			cov.VisitEdge(state, sym)
			cov.VisitState(next)
		}
		state = next
		if n := len(d.States[state].Members); n > rep.PeakConfigurations {
			rep.PeakConfigurations = n
		}
	}
	st := &d.States[state]
	rep.Compliant = true
	rep.Outcome = OutcomeCompliant
	rep.StepsReplayed = len(entries)
	rep.FinalConfigurations = len(st.Members)
	rep.CanComplete = st.CanComplete
	rep.Pending = !rep.CanComplete
	return observed(obs, rep), nil
}

// describeViolationCompiled renders the same diagnostic the interpreter
// would: the expected labels and active tasks are precomputed per DFA
// state, the reason classification reuses the checker's own logic.
func (c *Checker) describeViolationCompiled(d *automaton.DFA, state int32, pur *Purpose, idx int, e audit.Entry) *Violation {
	st := &d.States[state]
	v := &Violation{
		Kind:        ViolationInvalidExecution,
		EntryIndex:  idx,
		Entry:       &e,
		Expected:    append([]string(nil), st.Expected...),
		ActiveTasks: append([]string(nil), st.ActiveTasks...),
	}
	switch {
	case !pur.Process.HasTask(e.Task) && e.Status == audit.Success:
		v.Reason = fmt.Sprintf("task %q is not part of process %q", e.Task, pur.Name)
	case e.Status == audit.Failure:
		v.Reason = fmt.Sprintf("failure of task %q has no matching error handler at this point", e.Task)
	case pur.Process.TaskRole(e.Task) != "" && !c.roleMatches(e.Role, pur.Process.TaskRole(e.Task)):
		v.Reason = fmt.Sprintf("role %q may not perform task %q (pool %q)", e.Role, e.Task, pur.Process.TaskRole(e.Task))
	default:
		v.Reason = fmt.Sprintf("task %q is neither active nor enabled at this point of the process", e.Task)
	}
	return v
}

// IsNotCompilable reports whether err (e.g. from EnsureCompiled or
// CompiledStatus) means the purpose cannot be determinized, as opposed
// to a genuine failure.
func IsNotCompilable(err error) bool {
	return errors.Is(err, automaton.ErrNotCompilable)
}
