package lts

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cows"
)

// obsPrefix marks labels whose operation starts with "obs" as observable
// (for abstract-shape tests like Fig. 5).
func obsPrefix(l cows.Label) bool {
	return l.Kind == cows.LComm && strings.HasPrefix(l.Op, "obs")
}

// obsAllComm marks every communication as observable and kills as silent
// (the view of the paper's appendix figures, which draw all
// synchronizations including the private sys steps).
func obsAllComm(l cows.Label) bool { return l.Kind == cows.LComm }

func traceStrings(t *testing.T, y *System, s cows.Service, maxDepth int) []string {
	t.Helper()
	res, err := y.ObservableTraces(s, TraceLimits{MaxDepth: maxDepth, MaxTraces: 10000})
	if err != nil {
		t.Fatalf("ObservableTraces: %v", err)
	}
	out := make([]string, len(res.Traces))
	for i, tr := range res.Traces {
		out[i] = tr.String()
	}
	return out
}

// TestFig5WeakNext reproduces Figure 5: from s, WeakNext must return the
// three states reachable with exactly one observable label — the
// directly-observable successor s1 and the two successors s2, s3 of the
// silently-reachable s0 — and not the deeper s4, s5.
func TestFig5WeakNext(t *testing.T) {
	src := `
		// s: silent step to S0, observable obs1 to S1
		x.tau!<> | y.obs1!<> |
		( x.tau?<>.( a.obs2!<> | b.obs3!<> | (a.obs2?<>.0 + b.obs3?<>.0) )
		+ y.obs1?<>.( c.tau2!<> | d.obs4!<> | (c.tau2?<>.0 + d.obs4?<>.0) ) )`
	s := cows.MustParse(src)
	y := NewSystem(obsPrefix)
	obs, err := y.WeakNext(s)
	if err != nil {
		t.Fatalf("WeakNext: %v", err)
	}
	var lbls []string
	for _, o := range obs {
		lbls = append(lbls, o.Label.String())
	}
	want := []string{"a.obs2", "b.obs3", "y.obs1"}
	if len(lbls) != 3 {
		t.Fatalf("WeakNext returned %d results %v, want 3 %v", len(lbls), lbls, want)
	}
	for i, w := range want {
		if lbls[i] != w {
			t.Errorf("WeakNext label[%d] = %q, want %q", i, lbls[i], w)
		}
	}
	// Silent prefix lengths: obs1 fires immediately (0 silent steps),
	// obs2/obs3 fire after the tau step (1 silent step).
	for _, o := range obs {
		wantSilent := 1
		if o.Label.String() == "y.obs1" {
			wantSilent = 0
		}
		if o.Silent != wantSilent {
			t.Errorf("silent prefix of %s = %d, want %d", o.Label, o.Silent, wantSilent)
		}
	}
}

// fig7 builds the Appendix A, Figure 7 service: a single pool P with
// start event S, task T and end event E.
func fig7() cows.Service {
	return cows.MustParse(`P.T!<> | P.T?<>.P.E!<> | P.E?<>`)
}

func TestFig7LinearLTS(t *testing.T) {
	y := NewSystem(obsAllComm)
	g, err := y.Explore(fig7(), 100)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !g.Complete {
		t.Fatalf("exploration incomplete")
	}
	if g.NumStates() != 3 || g.NumEdges() != 2 {
		t.Fatalf("LTS has %d states / %d edges, want 3 / 2 (paper Fig. 7c)", g.NumStates(), g.NumEdges())
	}
	traces := traceStrings(t, y, fig7(), 10)
	if len(traces) != 1 || traces[0] != "P.T P.E" {
		t.Fatalf("traces = %v, want [P.T P.E]", traces)
	}
}

// fig8 builds the Appendix A, Figure 8 service: an exclusive (XOR)
// gateway G choosing between tasks T1 and T2.
func fig8() cows.Service {
	return cows.MustParse(`
		P.T!<>
		| P.T?<>.P.G!<>
		| P.G?<>.[k:kill][sys:name](
			sys.T1!<> | sys.T2!<>
			| sys.T1?<>.(kill(k) | {|P.T1!<>|})
			| sys.T2?<>.(kill(k) | {|P.T2!<>|}) )
		| P.T1?<>.P.E1!<>
		| P.E1?<>
		| P.T2?<>.P.E2!<>
		| P.E2?<>`)
}

func TestFig8ExclusiveGateway(t *testing.T) {
	y := NewSystem(obsAllComm)
	traces := traceStrings(t, y, fig8(), 10)
	want := []string{
		"P.T P.G sys.T1 P.T1 P.E1",
		"P.T P.G sys.T2 P.T2 P.E2",
	}
	if len(traces) != len(want) {
		t.Fatalf("traces = %v, want %v", traces, want)
	}
	for i := range want {
		if traces[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, traces[i], want[i])
		}
	}
	// Exclusivity: no trace contains both T1 and T2 (the kill removed
	// the losing branch) — implied by the exact match above, but spelled
	// out as the property the paper's Fig. 8 illustrates.
	for _, tr := range traces {
		if strings.Contains(tr, "P.T1") && strings.Contains(tr, "P.T2") {
			t.Errorf("gateway not exclusive: %q", tr)
		}
	}
}

// fig9 builds the Appendix A, Figure 9 service: task T either proceeds
// to T2 or raises error Err handled by T1. (The paper's [[T]] contains a
// typo — it receives on P.G which nothing invokes; the intended trigger
// is P.T as in Figure 7, which is what we encode.)
func fig9() cows.Service {
	return cows.MustParse(`
		P.T!<>
		| P.T?<>.[k:kill][sys:name](
			sys.Err!<> | sys.T2!<>
			| sys.Err?<>.(kill(k) | {|P.T1!<>|})
			| sys.T2?<>.(kill(k) | {|P.T2!<>|}) )
		| P.T1?<>.P.E1!<>
		| P.E1?<>
		| P.T2?<>.P.E2!<>
		| P.E2?<>`)
}

func TestFig9ErrorEvent(t *testing.T) {
	y := NewSystem(obsAllComm)
	traces := traceStrings(t, y, fig9(), 10)
	want := []string{
		"P.T sys.Err P.T1 P.E1",
		"P.T sys.T2 P.T2 P.E2",
	}
	if len(traces) != len(want) {
		t.Fatalf("traces = %v, want %v", traces, want)
	}
	for i := range want {
		if traces[i] != want[i] {
			t.Errorf("trace[%d] = %q, want %q", i, traces[i], want[i])
		}
	}
}

// fig10 builds the Appendix A, Figure 10 service: two pools connected by
// message flows forming a cycle.
func fig10() cows.Service {
	return cows.MustParse(`
		P1.T1!<>
		| *[z:var] P1.S2?<$z>.P1.T1!<>
		| *P1.T1?<>.P1.E1!<>
		| *P1.E1?<>.P2.S3!<msg1>
		| *[z:var] P2.S3?<$z>.P2.T2!<>
		| *P2.T2?<>.P2.E2!<>
		| *P2.E2?<>.P1.S2!<msg2>`)
}

func TestFig10MessageFlowCycle(t *testing.T) {
	y := NewSystem(obsAllComm)
	g, err := y.Explore(fig10(), 100)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if !g.Complete {
		t.Fatalf("cyclic process should have a finite LTS after replication garbage collection")
	}
	if g.NumStates() != 6 || g.NumEdges() != 6 {
		t.Fatalf("LTS has %d states / %d edges, want 6 / 6 (paper Fig. 10c)", g.NumStates(), g.NumEdges())
	}
	// The cycle: following the unique path of 6 labels returns to the
	// initial state.
	wantCycle := []string{"P1.T1", "P1.E1", "P2.S3(msg1)", "P2.T2", "P2.E2", "P1.S2(msg2)"}
	cur := 0
	for i, w := range wantCycle {
		succ := g.Succ(cur)
		if len(succ) != 1 {
			t.Fatalf("state %d has %d successors, want 1", cur, len(succ))
		}
		if succ[0].Label.String() != w {
			t.Fatalf("edge %d label = %q, want %q", i, succ[0].Label, w)
		}
		cur = succ[0].To
	}
	if cur != 0 {
		t.Fatalf("cycle does not close: ended at state %d", cur)
	}
}

// TestNotFinitelyObservable checks the Definition 8 guard: a service
// that can loop forever on silent labels must be rejected by WeakNext,
// not diverge (Proposition 1's contrapositive).
func TestNotFinitelyObservable(t *testing.T) {
	// A silent self-feeding loop: tick synchronizes with a replicated
	// service that re-issues tick.
	s := cows.MustParse(`sys.tick!<> | *sys.tick?<>.sys.tick!<>`)
	y := NewSystem(obsPrefix)
	_, err := y.WeakNext(s)
	if !errors.Is(err, ErrNotFinitelyObservable) {
		t.Fatalf("WeakNext error = %v, want ErrNotFinitelyObservable", err)
	}
}

// TestWeakNextMemoization checks the cache returns identical results.
func TestWeakNextMemoization(t *testing.T) {
	y := NewSystem(obsAllComm)
	s := fig8()
	a, err := y.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := y.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("memoized result differs in length")
	}
	for i := range a {
		if a[i].Canon != b[i].Canon || a[i].Label.String() != b[i].Label.String() {
			t.Fatalf("memoized result differs at %d", i)
		}
	}
	if _, weak := y.CacheStats(); weak == 0 {
		t.Fatalf("weak cache unexpectedly empty")
	}
}

// TestAcceptsTraceOracle cross-checks the brute-force acceptance oracle
// on Fig. 8.
func TestAcceptsTraceOracle(t *testing.T) {
	y := NewSystem(obsAllComm)
	s := fig8()
	cases := []struct {
		trace []string
		want  bool
	}{
		{[]string{"P.T", "P.G", "sys.T1", "P.T1", "P.E1"}, true},
		{[]string{"P.T", "P.G", "sys.T2", "P.T2", "P.E2"}, true},
		{[]string{"P.T", "P.G"}, true}, // prefixes accepted
		{[]string{"P.T", "P.G", "sys.T1", "P.T2"}, false},
		{[]string{"P.T1"}, false},
		{nil, true},
	}
	for _, c := range cases {
		got, err := y.AcceptsTrace(s, c.trace)
		if err != nil {
			t.Fatalf("AcceptsTrace(%v): %v", c.trace, err)
		}
		if got != c.want {
			t.Errorf("AcceptsTrace(%v) = %v, want %v", c.trace, got, c.want)
		}
	}
}

// TestExploreBudget checks the explicit budget error on an unbounded
// state space.
func TestExploreBudget(t *testing.T) {
	// A process that spawns unbounded parallel tokens: each sync leaves
	// an extra pending invoke.
	s := cows.MustParse(`go.x!<> | *go.x?<>.(go.x!<> | go.x!<>)`)
	y := NewSystem(obsAllComm)
	_, err := y.Explore(s, 50)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Explore error = %v, want ErrBudgetExceeded", err)
	}
}

// TestDOTExport sanity-checks the Graphviz rendering.
func TestDOTExport(t *testing.T) {
	y := NewSystem(obsAllComm)
	g, err := y.Explore(fig7(), 10)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT("fig7", true)
	for _, want := range []string{"digraph", "P.T", "P.E", "n0 -> n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// TestCanTerminateSilently checks quiescence detection through silent
// suffixes.
func TestCanTerminateSilently(t *testing.T) {
	y := NewSystem(obsPrefix)
	// One silent step then done.
	s := cows.MustParse(`x.tau!<> | x.tau?<>.0`)
	ok, err := y.CanTerminateSilently(s)
	if err != nil || !ok {
		t.Fatalf("CanTerminateSilently = %v, %v; want true", ok, err)
	}
	// An observable step is required before quiescence: not silently
	// terminable? The definition asks only for reachability of a
	// quiescent state via silent steps; here the only transition is
	// observable, so the current state is not quiescent and no silent
	// steps exist.
	s2 := cows.MustParse(`x.obs1!<> | x.obs1?<>.0`)
	ok, err = y.CanTerminateSilently(s2)
	if err != nil || ok {
		t.Fatalf("CanTerminateSilently = %v, %v; want false", ok, err)
	}
}
