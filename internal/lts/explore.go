package lts

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/cows"
)

// ErrBudgetExceeded reports that exploration hit its state budget before
// exhausting the reachable state space (expected for services with
// unbounded replication).
var ErrBudgetExceeded = errors.New("lts: state budget exceeded")

// Graph is a finite, explicitly materialized fragment of a labeled
// transition system, produced by Explore. State 0 is the initial state.
type Graph struct {
	// States holds the canonical form of each explored state, indexed
	// by state id.
	States []string
	// Services holds the corresponding service values.
	Services []cows.Service
	// Edges holds all discovered transitions between explored states.
	Edges []Edge
	// Complete is true when the whole reachable state space fit within
	// the budget.
	Complete bool

	// succOnce/succIdx lazily index Edges by source state so Succ is an
	// O(1) slice lookup instead of an O(E) scan. Built on first use;
	// callers must not append to Edges after querying Succ.
	succOnce sync.Once
	succIdx  [][]Edge
}

// Edge is one transition of a Graph.
type Edge struct {
	From  int
	Label cows.Label
	To    int
}

// NumStates returns the number of explored states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumEdges returns the number of discovered transitions.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Succ returns the outgoing edges of state id, in insertion order. The
// adjacency index is built once on first call (counting sort over Edges,
// one shared backing array), so repeated queries are O(out-degree).
func (g *Graph) Succ(id int) []Edge {
	g.succOnce.Do(g.buildSuccIndex)
	if id < 0 || id >= len(g.succIdx) {
		return nil
	}
	return g.succIdx[id]
}

func (g *Graph) buildSuccIndex() {
	n := len(g.States)
	offsets := make([]int, n+1)
	for _, e := range g.Edges {
		if e.From >= 0 && e.From < n {
			offsets[e.From+1]++
		}
	}
	for i := 0; i < n; i++ {
		offsets[i+1] += offsets[i]
	}
	flat := make([]Edge, offsets[n])
	pos := append([]int(nil), offsets[:n]...)
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= n {
			continue
		}
		flat[pos[e.From]] = e
		pos[e.From]++
	}
	g.succIdx = make([][]Edge, n)
	for i := 0; i < n; i++ {
		g.succIdx[i] = flat[offsets[i]:offsets[i+1]:offsets[i+1]]
	}
}

// LabelSet returns the sorted set of distinct label strings in the graph.
func (g *Graph) LabelSet() []string {
	set := map[string]bool{}
	for _, e := range g.Edges {
		set[e.Label.String()] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Explore materializes the LTS of s breadth-first up to maxStates states.
// All labels (observable and silent) appear as edges. If the reachable
// space exceeds the budget the partial graph is returned together with
// ErrBudgetExceeded.
func (y *System) Explore(s cows.Service, maxStates int) (*Graph, error) {
	if maxStates <= 0 {
		return nil, fmt.Errorf("lts: non-positive state budget %d", maxStates)
	}
	g := &Graph{}
	index := map[string]int{}

	add := func(st cows.Service) (int, bool) {
		key := y.CanonOf(st)
		if id, ok := index[key]; ok {
			return id, true
		}
		if len(g.States) >= maxStates {
			return -1, false
		}
		id := len(g.States)
		index[key] = id
		g.States = append(g.States, key)
		g.Services = append(g.Services, st)
		return id, true
	}

	if _, ok := add(s); !ok {
		return g, ErrBudgetExceeded
	}
	truncated := false
	for frontier := 0; frontier < len(g.States); frontier++ {
		ts, err := y.Transitions(g.Services[frontier])
		if err != nil {
			return nil, err
		}
		for _, tr := range ts {
			to, ok := add(tr.Next)
			if !ok {
				truncated = true
				continue
			}
			g.Edges = append(g.Edges, Edge{From: frontier, Label: tr.Label, To: to})
		}
	}
	if truncated {
		return g, ErrBudgetExceeded
	}
	g.Complete = true
	return g, nil
}

// ExploreObservable materializes the weak (observable-projected) LTS of
// s: states are the initial state plus targets of observable
// transitions, edges are WeakNext results. This is the view the paper's
// figures draw (silent gateway steps compressed away, task
// synchronizations visible).
func (y *System) ExploreObservable(s cows.Service, maxStates int) (*Graph, error) {
	if maxStates <= 0 {
		return nil, fmt.Errorf("lts: non-positive state budget %d", maxStates)
	}
	g := &Graph{}
	index := map[string]int{}

	add := func(st cows.Service, key string) (int, bool) {
		if id, ok := index[key]; ok {
			return id, true
		}
		if len(g.States) >= maxStates {
			return -1, false
		}
		id := len(g.States)
		index[key] = id
		g.States = append(g.States, key)
		g.Services = append(g.Services, st)
		return id, true
	}

	if _, ok := add(s, y.CanonOf(s)); !ok {
		return g, ErrBudgetExceeded
	}
	truncated := false
	for frontier := 0; frontier < len(g.States); frontier++ {
		obs, err := y.WeakNext(g.Services[frontier])
		if err != nil {
			return nil, err
		}
		for _, o := range obs {
			to, ok := add(o.State, o.Canon)
			if !ok {
				truncated = true
				continue
			}
			g.Edges = append(g.Edges, Edge{From: frontier, Label: o.Label, To: to})
		}
	}
	if truncated {
		return g, ErrBudgetExceeded
	}
	g.Complete = true
	return g, nil
}

// DOT renders the graph in Graphviz format. Node labels are state ids;
// pass withStates to include (long) canonical state strings as tooltips.
func (g *Graph) DOT(name string, withStates bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle fontsize=10];\n", name)
	for i := range g.States {
		attrs := fmt.Sprintf("label=\"St%d\"", i+1)
		if i == 0 {
			attrs += " style=bold"
		}
		if withStates {
			attrs += fmt.Sprintf(" tooltip=%q", g.States[i])
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", i, attrs)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -> n%d [label=%q fontsize=9];\n", e.From, e.To, e.Label.String())
	}
	b.WriteString("}\n")
	return b.String()
}
