package lts

import (
	"sort"

	"repro/internal/cows"
)

// Trace is a sequence of observable label strings.
type Trace []string

// String joins the trace with spaces.
func (t Trace) String() string {
	out := ""
	for i, l := range t {
		if i > 0 {
			out += " "
		}
		out += l
	}
	return out
}

// TraceSet enumeration limits.
type TraceLimits struct {
	// MaxDepth bounds trace length; traces longer than MaxDepth are
	// truncated and marked incomplete.
	MaxDepth int
	// MaxTraces bounds how many traces are collected.
	MaxTraces int
}

// TraceResult is the outcome of ObservableTraces.
type TraceResult struct {
	// Traces are the collected maximal observable traces, sorted.
	Traces []Trace
	// Exhaustive is true when every maximal trace within MaxDepth was
	// collected (no truncation by MaxTraces or MaxDepth).
	Exhaustive bool
	// StatesVisited counts distinct weak states expanded.
	StatesVisited int
}

// ObservableTraces enumerates the maximal observable traces of s: label
// sequences of observable transitions, extended until quiescence (no
// further observable activity). This materializes exactly the object the
// paper's naive approach (Section 1) would need — and demonstrates why
// it explodes: the number of traces is exponential in the process's
// concurrency and unbounded in its cycles, which is why Algorithm 1
// replays the trail against WeakNext instead.
func (y *System) ObservableTraces(s cows.Service, lim TraceLimits) (*TraceResult, error) {
	if lim.MaxDepth <= 0 {
		lim.MaxDepth = 64
	}
	if lim.MaxTraces <= 0 {
		lim.MaxTraces = 1 << 20
	}
	res := &TraceResult{Exhaustive: true}
	visited := map[StateID]bool{}

	var dfs func(st cows.Service, prefix Trace) error
	dfs = func(st cows.Service, prefix Trace) error {
		if len(res.Traces) >= lim.MaxTraces {
			res.Exhaustive = false
			return nil
		}
		key := y.Intern(st)
		if !visited[key] {
			visited[key] = true
			res.StatesVisited++
		}
		obs, err := y.WeakNext(st)
		if err != nil {
			return err
		}
		if len(obs) == 0 {
			tr := make(Trace, len(prefix))
			copy(tr, prefix)
			res.Traces = append(res.Traces, tr)
			return nil
		}
		if len(prefix) >= lim.MaxDepth {
			res.Exhaustive = false
			tr := make(Trace, len(prefix))
			copy(tr, prefix)
			res.Traces = append(res.Traces, tr)
			return nil
		}
		for _, o := range obs {
			if err := dfs(o.State, append(prefix, o.Label.String())); err != nil {
				return err
			}
		}
		return nil
	}

	if err := dfs(s, nil); err != nil {
		return nil, err
	}
	sort.Slice(res.Traces, func(i, j int) bool { return res.Traces[i].String() < res.Traces[j].String() })
	return res, nil
}

// AcceptsTrace reports whether the given observable label sequence is a
// prefix of some trace of s, by brute-force search over WeakNext — the
// reference oracle used to validate Algorithm 1's soundness and
// completeness (Theorem 2) in tests and by the naive baseline.
func (y *System) AcceptsTrace(s cows.Service, trace []string) (bool, error) {
	type frame struct {
		st  cows.Service
		pos int
	}
	type visitKey struct {
		id  StateID
		pos int
	}
	stack := []frame{{st: s, pos: 0}}
	seen := map[visitKey]bool{}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.pos == len(trace) {
			return true, nil
		}
		key := visitKey{id: y.Intern(f.st), pos: f.pos}
		if seen[key] {
			continue
		}
		seen[key] = true
		obs, err := y.WeakNext(f.st)
		if err != nil {
			return false, err
		}
		for _, o := range obs {
			if o.Label.String() == trace[f.pos] {
				stack = append(stack, frame{st: o.State, pos: f.pos + 1})
			}
		}
	}
	return false, nil
}
