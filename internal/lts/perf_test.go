package lts

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cows"
)

// TestInternIdentity: congruent services (equal cows.Canon) intern to
// one StateID; distinct services get distinct IDs; representatives are
// stable.
func TestInternIdentity(t *testing.T) {
	y := NewSystem(obsAllComm)
	a := cows.MustParse("a.t!<> | b.u?<>.0")
	b := cows.MustParse("b.u?<>.0 | a.t!<>") // same state, reordered
	c := cows.MustParse("c.v!<>")
	if y.Intern(a) != y.Intern(b) {
		t.Fatalf("congruent services interned to different StateIDs")
	}
	if y.Intern(a) == y.Intern(c) {
		t.Fatalf("distinct services share a StateID")
	}
	if y.Representative(a) != y.Representative(b) {
		t.Fatalf("congruent services have different representatives")
	}
	if y.CanonOf(a) != cows.Canon(b) {
		t.Fatalf("CanonOf disagrees with cows.Canon")
	}
	if y.StateCount() != 2 {
		t.Fatalf("StateCount = %d, want 2", y.StateCount())
	}
}

// TestShareKeepsWarmCaches: Share returns the same warm System (the
// fan-out discipline), while Clone deliberately starts cold.
func TestShareKeepsWarmCaches(t *testing.T) {
	y := NewSystem(obsAllComm)
	if _, err := y.WeakNext(fig7()); err != nil {
		t.Fatal(err)
	}
	steps, weak := y.CacheStats()
	if steps == 0 || weak == 0 {
		t.Fatalf("warmup left caches empty: %d %d", steps, weak)
	}
	sh := y.Share()
	if sh != y {
		t.Fatalf("Share returned a different System")
	}
	if s2, w2 := sh.CacheStats(); s2 != steps || w2 != weak {
		t.Fatalf("Share lost warm caches: %d %d vs %d %d", s2, w2, steps, weak)
	}
	if s0, w0 := y.Clone().CacheStats(); s0 != 0 || w0 != 0 {
		t.Fatalf("Clone inherited caches: %d %d", s0, w0)
	}
}

// TestCanTerminateSilentlyMemo: the verdict is derived once per state
// and served from the per-state cache afterwards, including across
// congruent (re-parsed) services, and concurrent queries agree.
func TestCanTerminateSilentlyMemo(t *testing.T) {
	obs := func(l cows.Label) bool { return l.Kind == cows.LComm && l.Op == "o" }
	// Silent chain to quiescence: CanTerminateSilently = true.
	src := `a.t1!<> | a.t1?<>.a.t2!<> | a.t2?<>.0`
	y := NewSystem(obs)
	s := cows.MustParse(src)
	ok, err := y.CanTerminateSilently(s)
	if err != nil || !ok {
		t.Fatalf("CanTerminateSilently = %v %v", ok, err)
	}
	// A congruent re-parse hits the same interned state and its cached
	// verdict.
	ok2, err := y.CanTerminateSilently(cows.MustParse(src))
	if err != nil || ok2 != ok {
		t.Fatalf("memoized verdict disagrees: %v %v", ok2, err)
	}
	// Negative verdict (pending observable step) is cached too and
	// stable under concurrent queries.
	pending := cows.MustParse(`x.o!<> | x.o?<>.0`)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, err := y.CanTerminateSilently(pending)
			if err != nil || ok {
				t.Errorf("pending state: CanTerminateSilently = %v %v", ok, err)
			}
		}()
	}
	wg.Wait()
}

// TestSystemConcurrentWarmup: many goroutines racing to derive the same
// states agree on IDs and results (run under -race).
func TestSystemConcurrentWarmup(t *testing.T) {
	y := NewSystem(obsAllComm)
	s := fig8()
	want, err := y.Clone().WeakNext(s) // reference from a private cold system
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := y.WeakNext(s)
			if err != nil {
				t.Error(err)
				return
			}
			if len(got) != len(want) {
				t.Errorf("WeakNext len = %d, want %d", len(got), len(want))
				return
			}
			for j := range got {
				if got[j].Label.String() != want[j].Label.String() || got[j].Canon != want[j].Canon {
					t.Errorf("WeakNext[%d] disagrees", j)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// chainGraph builds a synthetic Graph with n states and k outgoing
// edges per state (to the next state), exercising Succ.
func chainGraph(n, k int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.States = append(g.States, fmt.Sprintf("s%d", i))
		g.Services = append(g.Services, nil)
	}
	for i := 0; i < n-1; i++ {
		for j := 0; j < k; j++ {
			g.Edges = append(g.Edges, Edge{From: i, Label: cows.CommLabel("P", fmt.Sprintf("T%d", j)), To: i + 1})
		}
	}
	return g
}

// TestGraphSuccIndex: the adjacency index returns exactly the edges of
// each state in insertion order, and out-of-range ids are empty.
func TestGraphSuccIndex(t *testing.T) {
	g := chainGraph(50, 3)
	for i := 0; i < 49; i++ {
		es := g.Succ(i)
		if len(es) != 3 {
			t.Fatalf("Succ(%d) = %d edges, want 3", i, len(es))
		}
		for j, e := range es {
			if e.From != i || e.To != i+1 || e.Label.Op != fmt.Sprintf("T%d", j) {
				t.Fatalf("Succ(%d)[%d] = %+v (insertion order lost)", i, j, e)
			}
		}
	}
	if len(g.Succ(49)) != 0 {
		t.Fatalf("terminal state has successors")
	}
	if g.Succ(-1) != nil || g.Succ(50) != nil {
		t.Fatalf("out-of-range ids not empty")
	}
}

// BenchmarkGraphSucc: regression guard for the Succ adjacency index —
// a full sweep over a 2000-state graph used to be O(V·E); with the
// index it is O(V+E) amortized.
func BenchmarkGraphSucc(b *testing.B) {
	g := chainGraph(2000, 4)
	g.Succ(0) // build the index outside the timer
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		for id := 0; id < g.NumStates(); id++ {
			total += len(g.Succ(id))
		}
	}
	if total == 0 {
		b.Fatal("no edges visited")
	}
}
