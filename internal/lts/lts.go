// Package lts derives and explores the labeled transition systems of
// COWS services (paper Section 3.3) and implements the WeakNext function
// of Definition 7, including the finitely-observable guard of
// Definition 8 that underpins the termination results of Section 5.
//
// A System wraps a COWS derivation engine with an observability
// predicate: the paper's set of observable labels is
//
//	L = { r·q | r a role, q a task } ∪ { sys·Err }
//
// (Section 3.5); everything else — gateway bookkeeping, message flows,
// kill signals — is silent. The predicate is injected so other label
// disciplines (e.g. logging message flows too) can reuse the machinery.
//
// # Performance architecture
//
// A System interns every state it meets: the canonical string of a
// service (cows.Canon) is computed exactly once per distinct state and
// mapped to a dense StateID. All per-state results — outgoing
// transitions, WeakNext sets, silent-termination verdicts — live on the
// interned state record and are derived at most once, guarded by
// sync.Once, so the steady-state read path is an atomic load with no
// lock acquisition at all. The intern table itself is sharded by canon
// hash, and a pointer-identity side index short-circuits
// re-canonicalization of services the System has already seen (every
// successor a System hands out is an interned representative, so the
// replay hot path never recomputes a canonical string). This is what
// makes the paper's Section 7 "massive parallelization" real: any number
// of per-case analyses can share one warm System without convoying on a
// global cache lock.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cows"
)

// ErrNotFinitelyObservable reports a silent cycle: from some reachable
// state the service can perform infinitely many consecutive unobservable
// transitions, violating Definition 8. BPMN processes whose encoding
// triggers this are not well-founded (Section 5) and cannot be audited.
var ErrNotFinitelyObservable = errors.New("lts: silent cycle: transition system is not finitely observable")

// DefaultMaxSilentDepth bounds the silent-prefix exploration of WeakNext
// as a belt-and-braces guard in addition to cycle detection.
const DefaultMaxSilentDepth = 100000

// Observability classifies labels as observable (recorded in audit
// trails) or silent.
type Observability func(cows.Label) bool

// StateID is the interned identity of a state: two services receive the
// same StateID iff they are structurally congruent (equal cows.Canon).
// IDs are dense within one System and are the currency higher layers use
// to key their own memoization (e.g. core's configuration cache) without
// carrying canonical strings around.
type StateID int32

// state is the interned record of one distinct state. Derived results
// are computed at most once each (sync.Once / atomic publication), so
// concurrent readers never contend once a state is warm.
type state struct {
	id    StateID
	svc   cows.Service
	canon string

	stepsOnce sync.Once
	steps     []cows.Transition
	stepsErr  error

	weakOnce sync.Once
	weak     []Observable
	weakErr  error

	// term caches CanTerminateSilently. Published atomically; positive
	// verdicts are recorded for every state on a terminating path,
	// negative verdicts only where the full silent closure was explored.
	term atomic.Pointer[termResult]
}

type termResult struct {
	ok  bool
	err error
}

// internShards shards the canon→state table so concurrent cold misses on
// unrelated states do not serialize. Must be a power of two.
const internShards = 64

type internShard struct {
	mu      sync.RWMutex
	byCanon map[string]*state
}

// System memoizes transition derivation for a family of services sharing
// one observability discipline. A System is safe for concurrent use and
// is designed to be *shared*: per-state results are derived once and
// read lock-free afterwards, so Algorithm 1's per-case analyses should
// all run against one warm System — the "massive parallelization" the
// paper notes in Section 7. See Share.
type System struct {
	engine    *cows.Engine
	obs       Observability
	maxSilent int

	shards [internShards]internShard
	// byPtr short-circuits interning for service values already seen,
	// keyed by pointer identity: every successor the System returns is an
	// interned representative, so warm replay never re-canonicalizes.
	byPtr  sync.Map // cows.Service -> *state
	nextID atomic.Int32

	stepsCached atomic.Int64
	weakCached  atomic.Int64
}

// Option configures a System.
type Option func(*System)

// WithMaxSilentDepth overrides the silent-prefix depth guard.
func WithMaxSilentDepth(n int) Option {
	return func(y *System) { y.maxSilent = n }
}

// NewSystem builds a System with the given observability predicate.
func NewSystem(obs Observability, opts ...Option) *System {
	y := &System{
		engine:    cows.NewEngine(),
		obs:       obs,
		maxSilent: DefaultMaxSilentDepth,
	}
	for i := range y.shards {
		y.shards[i].byCanon = map[string]*state{}
	}
	for _, o := range opts {
		o(y)
	}
	return y
}

// Clone returns a fresh System with the same configuration and empty
// caches. Use it only when cache *isolation* is the point (memory
// experiments, cold-start measurements); parallel workers should call
// Share instead — a System's caches are concurrency-safe and re-deriving
// the LTS per goroutine throws the warm caches away.
func (y *System) Clone() *System {
	return NewSystem(y.obs, WithMaxSilentDepth(y.maxSilent))
}

// Share returns y itself, documenting the sharing discipline: a System
// is safe for concurrent use and per-case analyses are independent, so
// fan-out workers share one warm instance instead of cloning cold ones.
func (y *System) Share() *System { return y }

// Observable says whether the system's discipline records the label.
func (y *System) Observable(l cows.Label) bool { return y.obs(l) }

func shardOf(canon string) uint32 {
	// FNV-1a; only shard selection, not identity, depends on it.
	h := uint32(2166136261)
	for i := 0; i < len(canon); i++ {
		h ^= uint32(canon[i])
		h *= 16777619
	}
	return h & (internShards - 1)
}

// intern resolves s to its interned state record, canonicalizing at most
// once per distinct pointer and once per distinct state overall.
func (y *System) intern(s cows.Service) *state {
	if v, ok := y.byPtr.Load(s); ok {
		return v.(*state)
	}
	canon := cows.Canon(s)
	st := y.internCanon(s, canon)
	y.byPtr.Store(s, st)
	return st
}

func (y *System) internCanon(s cows.Service, canon string) *state {
	sh := &y.shards[shardOf(canon)]
	sh.mu.RLock()
	st, ok := sh.byCanon[canon]
	sh.mu.RUnlock()
	if ok {
		return st
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.byCanon[canon]; ok {
		return st
	}
	st = &state{id: StateID(y.nextID.Add(1) - 1), svc: s, canon: canon}
	sh.byCanon[canon] = st
	return st
}

// Intern returns the StateID of s, interning it if new. Congruent
// services (equal cows.Canon) always map to the same StateID.
func (y *System) Intern(s cows.Service) StateID { return y.intern(s).id }

// CanonOf returns the canonical form of s, memoized by the intern table
// (for services the System has already seen this is a pointer lookup,
// not a re-canonicalization).
func (y *System) CanonOf(s cows.Service) string { return y.intern(s).canon }

// Representative returns the interned service congruent to s. All
// transitions the System returns already point at representatives, so
// pointer identity of representatives implies state identity.
func (y *System) Representative(s cows.Service) cows.Service { return y.intern(s).svc }

// StateCount reports how many distinct states have been interned.
func (y *System) StateCount() int { return int(y.nextID.Load()) }

// Transitions returns the outgoing transitions of s, derived at most
// once per distinct state.
func (y *System) Transitions(s cows.Service) ([]cows.Transition, error) {
	return y.transitions(y.intern(s))
}

func (y *System) transitions(st *state) ([]cows.Transition, error) {
	st.stepsOnce.Do(func() {
		ts, err := y.engine.Step(st.svc)
		if err != nil {
			st.stepsErr = fmt.Errorf("deriving transitions: %w", err)
			return
		}
		// Intern successors so repeated states share one representative
		// (and so downstream interning of them is a pointer lookup).
		for i := range ts {
			ts[i].Next = y.intern(ts[i].Next).svc
		}
		st.steps = ts
		y.stepsCached.Add(1)
	})
	return st.steps, st.stepsErr
}

// Observable is one result of WeakNext: an observable label, the state
// reached by performing it after a finite silent prefix, that state's
// interned ID and canonical form. The compliance layer keys its own
// memoization by ID; Canon is retained for rendering and debugging.
type Observable struct {
	Label  cows.Label
	State  cows.Service
	ID     StateID
	Canon  string
	Silent int // length of the silent prefix before the observable step
}

// WeakNext implements Definition 7: the set of states reachable from s
// by a finite (possibly empty) sequence of unobservable transitions
// followed by exactly one observable transition, paired with that
// transition's label.
//
// WeakNext performs a depth-first search over silent transitions. A
// silent edge back into a state on the current DFS stack means the
// service can diverge silently; WeakNext then fails with
// ErrNotFinitelyObservable (Definition 8, Proposition 1).
//
// Results are deduplicated by (label, state), deterministically ordered,
// and computed at most once per distinct state.
func (y *System) WeakNext(s cows.Service) ([]Observable, error) {
	st := y.intern(s)
	st.weakOnce.Do(func() {
		st.weak, st.weakErr = y.computeWeak(st)
		if st.weakErr == nil {
			y.weakCached.Add(1)
		}
	})
	return st.weak, st.weakErr
}

func (y *System) computeWeak(root *state) ([]Observable, error) {
	type dedupKey struct {
		label string
		id    StateID
	}
	var results []Observable
	seen := map[*state]bool{}    // states fully expanded
	onStack := map[*state]bool{} // states on the current DFS path
	dedup := map[dedupKey]bool{} // (label, state) pairs already emitted

	var dfs func(st *state, depth int) error
	dfs = func(st *state, depth int) error {
		if depth > y.maxSilent {
			return fmt.Errorf("%w (silent depth exceeds %d)", ErrNotFinitelyObservable, y.maxSilent)
		}
		onStack[st] = true
		defer delete(onStack, st)
		seen[st] = true

		ts, err := y.transitions(st)
		if err != nil {
			return err
		}
		for _, tr := range ts {
			next := y.intern(tr.Next)
			if y.obs(tr.Label) {
				dk := dedupKey{label: tr.Label.Key(), id: next.id}
				if !dedup[dk] {
					dedup[dk] = true
					results = append(results, Observable{
						Label:  tr.Label,
						State:  next.svc,
						ID:     next.id,
						Canon:  next.canon,
						Silent: depth,
					})
				}
				continue
			}
			if onStack[next] {
				return fmt.Errorf("%w (cycle through %s)", ErrNotFinitelyObservable, tr.Label)
			}
			if seen[next] {
				continue
			}
			if err := dfs(next, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	if err := dfs(root, 0); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Label.Key() != results[j].Label.Key() {
			return results[i].Label.Key() < results[j].Label.Key()
		}
		return results[i].Canon < results[j].Canon
	})
	return results, nil
}

// Quiescent reports whether s has no transitions at all (the process
// instance has run to completion or is stuck).
func (y *System) Quiescent(s cows.Service) (bool, error) {
	ts, err := y.Transitions(s)
	if err != nil {
		return false, err
	}
	return len(ts) == 0, nil
}

// CanTerminateSilently reports whether s can reach a quiescent state via
// unobservable transitions only — i.e. whether the process instance can
// be considered complete without further observable activity. The
// compliance layer uses it to decide whether a fully-replayed trail ends
// in a final state or leaves the process mid-flight.
//
// Verdicts are memoized per state: replaying the same case (or many
// cases ending in congruent states) pays for the silent DFS once.
func (y *System) CanTerminateSilently(s cows.Service) (bool, error) {
	st := y.intern(s)
	if r := st.term.Load(); r != nil {
		return r.ok, r.err
	}
	seen := map[*state]bool{}
	ok, err := y.canTerm(st, seen, 0)
	// The root's silent closure was fully explored, so even a negative
	// (or failed) verdict is complete and safe to publish.
	st.term.Store(&termResult{ok: ok, err: err})
	return ok, err
}

func (y *System) canTerm(st *state, seen map[*state]bool, depth int) (bool, error) {
	if r := st.term.Load(); r != nil {
		return r.ok, r.err
	}
	if depth > y.maxSilent {
		return false, fmt.Errorf("%w (silent depth exceeds %d)", ErrNotFinitelyObservable, y.maxSilent)
	}
	if seen[st] {
		return false, nil
	}
	seen[st] = true
	ts, err := y.transitions(st)
	if err != nil {
		return false, err
	}
	if len(ts) == 0 {
		st.term.Store(&termResult{ok: true})
		return true, nil
	}
	for _, tr := range ts {
		if y.obs(tr.Label) {
			continue
		}
		ok, err := y.canTerm(y.intern(tr.Next), seen, depth+1)
		if err != nil {
			return false, err
		}
		if ok {
			// Positive verdicts are path-independent: a silent route to
			// quiescence exists regardless of how we got here.
			st.term.Store(&termResult{ok: true})
			return true, nil
		}
	}
	// A negative here may be an artifact of the shared visited set (a
	// successor on the current path was skipped), so only the root —
	// whose closure is complete — publishes negatives.
	return false, nil
}

// CacheStats reports memoization sizes (states with derived transitions,
// states with derived WeakNext sets), for diagnostics and benchmarks.
func (y *System) CacheStats() (steps, weak int) {
	return int(y.stepsCached.Load()), int(y.weakCached.Load())
}
