// Package lts derives and explores the labeled transition systems of
// COWS services (paper Section 3.3) and implements the WeakNext function
// of Definition 7, including the finitely-observable guard of
// Definition 8 that underpins the termination results of Section 5.
//
// A System wraps a COWS derivation engine with an observability
// predicate: the paper's set of observable labels is
//
//	L = { r·q | r a role, q a task } ∪ { sys·Err }
//
// (Section 3.5); everything else — gateway bookkeeping, message flows,
// kill signals — is silent. The predicate is injected so other label
// disciplines (e.g. logging message flows too) can reuse the machinery.
package lts

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cows"
)

// ErrNotFinitelyObservable reports a silent cycle: from some reachable
// state the service can perform infinitely many consecutive unobservable
// transitions, violating Definition 8. BPMN processes whose encoding
// triggers this are not well-founded (Section 5) and cannot be audited.
var ErrNotFinitelyObservable = errors.New("lts: silent cycle: transition system is not finitely observable")

// DefaultMaxSilentDepth bounds the silent-prefix exploration of WeakNext
// as a belt-and-braces guard in addition to cycle detection.
const DefaultMaxSilentDepth = 100000

// Observability classifies labels as observable (recorded in audit
// trails) or silent.
type Observability func(cows.Label) bool

// System memoizes transition derivation for a family of services sharing
// one observability discipline. A System is safe for concurrent use: the
// caches are mutex-guarded and the derivation engine is lock-free, so
// Algorithm 1's per-case analyses can share one warm System — the
// "massive parallelization" the paper notes in Section 7. Concurrent
// cache misses on the same state may derive it twice; both derivations
// are identical and the second write is a no-op overwrite.
type System struct {
	engine    *cows.Engine
	obs       Observability
	maxSilent int

	mu sync.RWMutex
	// step cache: canonical state -> outgoing transitions.
	steps map[string][]cows.Transition
	// weak cache: canonical state -> weak-next results.
	weak map[string][]Observable
	// interned states by canonical string, so equal states share one
	// service value.
	intern map[string]cows.Service
}

// Option configures a System.
type Option func(*System)

// WithMaxSilentDepth overrides the silent-prefix depth guard.
func WithMaxSilentDepth(n int) Option {
	return func(y *System) { y.maxSilent = n }
}

// NewSystem builds a System with the given observability predicate.
func NewSystem(obs Observability, opts ...Option) *System {
	y := &System{
		engine:    cows.NewEngine(),
		obs:       obs,
		maxSilent: DefaultMaxSilentDepth,
		steps:     map[string][]cows.Transition{},
		weak:      map[string][]Observable{},
		intern:    map[string]cows.Service{},
	}
	for _, o := range opts {
		o(y)
	}
	return y
}

// Clone returns a fresh System with the same configuration and empty
// caches, suitable for a different goroutine.
func (y *System) Clone() *System {
	return NewSystem(y.obs, WithMaxSilentDepth(y.maxSilent))
}

// Observable says whether the system's discipline records the label.
func (y *System) Observable(l cows.Label) bool { return y.obs(l) }

// Transitions returns the outgoing transitions of s, memoized by
// canonical state.
func (y *System) Transitions(s cows.Service) ([]cows.Transition, error) {
	key := cows.Canon(s)
	y.mu.RLock()
	ts, ok := y.steps[key]
	y.mu.RUnlock()
	if ok {
		return ts, nil
	}
	ts, err := y.engine.Step(s)
	if err != nil {
		return nil, fmt.Errorf("deriving transitions: %w", err)
	}
	y.mu.Lock()
	// Intern successors so repeated states share storage.
	for i := range ts {
		ck := cows.Canon(ts[i].Next)
		if prev, ok := y.intern[ck]; ok {
			ts[i].Next = prev
		} else {
			y.intern[ck] = ts[i].Next
		}
	}
	y.steps[key] = ts
	y.mu.Unlock()
	return ts, nil
}

// Observable is one result of WeakNext: an observable label, the state
// reached by performing it after a finite silent prefix, and that
// state's canonical form. Origins carries the provenance (origin task
// set) decoded from the label's communicated values; the compliance
// layer uses it to maintain active-task sets (Definition 6).
type Observable struct {
	Label  cows.Label
	State  cows.Service
	Canon  string
	Silent int // length of the silent prefix before the observable step
}

// WeakNext implements Definition 7: the set of states reachable from s
// by a finite (possibly empty) sequence of unobservable transitions
// followed by exactly one observable transition, paired with that
// transition's label.
//
// WeakNext performs a depth-first search over silent transitions. A
// silent edge back into a state on the current DFS stack means the
// service can diverge silently; WeakNext then fails with
// ErrNotFinitelyObservable (Definition 8, Proposition 1).
//
// Results are deduplicated by (label, state) and deterministically
// ordered.
func (y *System) WeakNext(s cows.Service) ([]Observable, error) {
	key := cows.Canon(s)
	y.mu.RLock()
	w, ok := y.weak[key]
	y.mu.RUnlock()
	if ok {
		return w, nil
	}

	var results []Observable
	seen := map[string]bool{}    // states fully expanded
	onStack := map[string]bool{} // states on the current DFS path
	dedup := map[string]bool{}   // label+state keys already emitted

	var dfs func(st cows.Service, stKey string, depth int) error
	dfs = func(st cows.Service, stKey string, depth int) error {
		if depth > y.maxSilent {
			return fmt.Errorf("%w (silent depth exceeds %d)", ErrNotFinitelyObservable, y.maxSilent)
		}
		onStack[stKey] = true
		defer delete(onStack, stKey)
		seen[stKey] = true

		ts, err := y.Transitions(st)
		if err != nil {
			return err
		}
		for _, tr := range ts {
			if y.obs(tr.Label) {
				ck := cows.Canon(tr.Next)
				dk := tr.Label.Key() + "\x00" + ck
				if !dedup[dk] {
					dedup[dk] = true
					results = append(results, Observable{
						Label:  tr.Label,
						State:  tr.Next,
						Canon:  ck,
						Silent: depth,
					})
				}
				continue
			}
			ck := cows.Canon(tr.Next)
			if onStack[ck] {
				return fmt.Errorf("%w (cycle through %s)", ErrNotFinitelyObservable, tr.Label)
			}
			if seen[ck] {
				continue
			}
			if err := dfs(tr.Next, ck, depth+1); err != nil {
				return err
			}
		}
		return nil
	}

	if err := dfs(s, key, 0); err != nil {
		return nil, err
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Label.Key() != results[j].Label.Key() {
			return results[i].Label.Key() < results[j].Label.Key()
		}
		return results[i].Canon < results[j].Canon
	})
	y.mu.Lock()
	y.weak[key] = results
	y.mu.Unlock()
	return results, nil
}

// Quiescent reports whether s has no transitions at all (the process
// instance has run to completion or is stuck).
func (y *System) Quiescent(s cows.Service) (bool, error) {
	ts, err := y.Transitions(s)
	if err != nil {
		return false, err
	}
	return len(ts) == 0, nil
}

// CanTerminateSilently reports whether s can reach a quiescent state via
// unobservable transitions only — i.e. whether the process instance can
// be considered complete without further observable activity. The
// compliance layer uses it to decide whether a fully-replayed trail ends
// in a final state or leaves the process mid-flight.
func (y *System) CanTerminateSilently(s cows.Service) (bool, error) {
	seen := map[string]bool{}
	var dfs func(st cows.Service, depth int) (bool, error)
	dfs = func(st cows.Service, depth int) (bool, error) {
		if depth > y.maxSilent {
			return false, fmt.Errorf("%w (silent depth exceeds %d)", ErrNotFinitelyObservable, y.maxSilent)
		}
		key := cows.Canon(st)
		if seen[key] {
			return false, nil
		}
		seen[key] = true
		ts, err := y.Transitions(st)
		if err != nil {
			return false, err
		}
		if len(ts) == 0 {
			return true, nil
		}
		for _, tr := range ts {
			if y.obs(tr.Label) {
				continue
			}
			ok, err := dfs(tr.Next, depth+1)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	}
	return dfs(s, 0)
}

// CacheStats reports memoization sizes, for diagnostics and benchmarks.
func (y *System) CacheStats() (steps, weak int) {
	y.mu.RLock()
	defer y.mu.RUnlock()
	return len(y.steps), len(y.weak)
}
