package lts

import (
	"testing"

	"repro/internal/cows"
)

func TestExploreObservableProjectsSilentSteps(t *testing.T) {
	// Fig. 8 with only task-ish labels observable: the weak view
	// compresses P.G / sys.* / †k away.
	y := NewSystem(func(l cows.Label) bool {
		if l.Kind != cows.LComm {
			return false
		}
		switch l.Op {
		case "T", "T1", "T2", "E1", "E2":
			return l.Partner == "P"
		}
		return false
	})
	g, err := y.ExploreObservable(fig8(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete {
		t.Fatalf("incomplete")
	}
	// Weak states: init, after T, after T1, after T2, after E1, after
	// E2 (E1/E2 targets differ in leftover services).
	if g.NumStates() != 6 {
		t.Fatalf("weak LTS has %d states, want 6", g.NumStates())
	}
	labels := g.LabelSet()
	for _, l := range labels {
		switch l {
		case "P.T", "P.T1", "P.T2", "P.E1", "P.E2":
		default:
			t.Fatalf("silent label leaked into weak view: %q", l)
		}
	}
	// Branching: initial state has one successor (T), the post-T state
	// two (T1, T2).
	if got := len(g.Succ(0)); got != 1 {
		t.Fatalf("init successors = %d", got)
	}
	if got := len(g.Succ(1)); got != 2 {
		t.Fatalf("post-T successors = %d", got)
	}
}

func TestExploreErrors(t *testing.T) {
	y := NewSystem(obsAllComm)
	if _, err := y.Explore(fig7(), 0); err == nil {
		t.Fatalf("zero budget accepted")
	}
	if _, err := y.ExploreObservable(fig7(), 0); err == nil {
		t.Fatalf("zero budget accepted")
	}
}

func TestTraceString(t *testing.T) {
	tr := Trace{"a.b", "c.d(v)"}
	if got := tr.String(); got != "a.b c.d(v)" {
		t.Fatalf("Trace.String = %q", got)
	}
	if got := (Trace{}).String(); got != "" {
		t.Fatalf("empty trace = %q", got)
	}
}

func TestObservableTracesDefaults(t *testing.T) {
	y := NewSystem(obsAllComm)
	res, err := y.ObservableTraces(fig7(), TraceLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhaustive || len(res.Traces) != 1 {
		t.Fatalf("defaults: %+v", res)
	}
	if res.StatesVisited < 2 {
		t.Fatalf("states visited = %d", res.StatesVisited)
	}
}

func TestWithMaxSilentDepth(t *testing.T) {
	// A long but finite silent chain: with a tiny depth bound the
	// guard trips, with the default it does not.
	src := `x.o!<> |
		a.t1!<> | a.t1?<>.a.t2!<> | a.t2?<>.a.t3!<> | a.t3?<>.(x.o?<>.0)`
	s := cows.MustParse(src)
	obs := func(l cows.Label) bool { return l.Kind == cows.LComm && l.Op == "o" }

	y := NewSystem(obs, WithMaxSilentDepth(1))
	if _, err := y.WeakNext(s); err == nil {
		t.Fatalf("depth bound did not trip")
	}
	y2 := NewSystem(obs)
	res, err := y2.WeakNext(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Label.String() != "x.o" {
		t.Fatalf("WeakNext = %v", res)
	}
	if res[0].Silent != 3 {
		t.Fatalf("silent prefix = %d, want 3", res[0].Silent)
	}
}

func TestSystemClone(t *testing.T) {
	y := NewSystem(obsAllComm, WithMaxSilentDepth(123))
	if _, err := y.WeakNext(fig7()); err != nil {
		t.Fatal(err)
	}
	c := y.Clone()
	if s, w := c.CacheStats(); s != 0 || w != 0 {
		t.Fatalf("clone inherited caches: %d %d", s, w)
	}
	if c.maxSilent != 123 {
		t.Fatalf("clone lost configuration")
	}
	if !c.Observable(cows.CommLabel("P", "T")) {
		t.Fatalf("clone lost observability predicate")
	}
}
