// Package cli holds the pieces the purpose-control binaries
// (purposectl, auditd) share, so their flag conventions, time parsing
// and exit-code semantics cannot drift apart: process-binding flags,
// built-in scenario loading, timestamp parsing, and the canonical
// exit-status help text.
package cli

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/hospital"
)

// ProcList is the repeatable -proc flag: each value binds a BPMN file
// to one or more case codes as file.json:CODE[,CODE...].
type ProcList []string

// String implements flag.Value.
func (p *ProcList) String() string { return strings.Join(*p, " ") }

// Set implements flag.Value.
func (p *ProcList) Set(v string) error { *p = append(*p, v); return nil }

// ProcUsage is the canonical usage string for the -proc flag.
const ProcUsage = "process binding file.json:CODE[,CODE...] (repeatable)"

// LoadProcs registers every -proc binding into the registry. Files
// ending in .bpmn or .xml are decoded as OMG BPMN 2.0 XML, everything
// else as the BPMN JSON interchange.
func LoadProcs(reg *core.Registry, specs []string) error {
	for _, spec := range specs {
		file, codes, ok := strings.Cut(spec, ":")
		if !ok {
			return fmt.Errorf("-proc %q: want file.json:CODE[,CODE...]", spec)
		}
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		var proc *bpmn.Process
		if strings.HasSuffix(file, ".bpmn") || strings.HasSuffix(file, ".xml") {
			proc, err = bpmn.DecodeXML(f)
		} else {
			proc, err = bpmn.DecodeJSON(f)
		}
		f.Close()
		if err != nil {
			return err
		}
		if _, err := reg.Register(proc, strings.Split(codes, ",")...); err != nil {
			return err
		}
	}
	return nil
}

// Builtin loads a named built-in scenario ("hospital": the paper's
// Figures 1–4).
func Builtin(name string) (*hospital.Scenario, error) {
	switch name {
	case "hospital":
		return hospital.NewScenario()
	default:
		return nil, fmt.Errorf("unknown builtin %q (try 'hospital')", name)
	}
}

// TimeUsage is the canonical usage suffix for timestamp-valued flags.
const TimeUsage = "paper layout (200601021504) or RFC 3339"

// ParseTime reads a timestamp in either the paper's 12-digit layout
// (e.g. 201003121210, as in trail files) or RFC 3339.
func ParseTime(s string) (time.Time, error) {
	if len(s) == len(audit.PaperTimeLayout) && !strings.ContainsAny(s, "TZ:-") {
		return audit.ParsePaperTime(s)
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("cli: bad timestamp %q: want %s", s, TimeUsage)
	}
	return t, nil
}

// Exit statuses shared by the audit binaries. purposectl exits with
// these directly; auditd uses the same scale in its smoke tooling.
const (
	// ExitClean: every case compliant, no findings.
	ExitClean = 0
	// ExitProblem: infringements or policy findings were reported.
	ExitProblem = 1
	// ExitUsage: usage or input errors.
	ExitUsage = 2
	// ExitIndeterminate: the only irregularities are indeterminate
	// cases (analysis abandoned on a budget or cap).
	ExitIndeterminate = 3
)

// ExitCodesHelp is the canonical one-line exit-status contract, shared
// by the binaries' usage text.
const ExitCodesHelp = "exit status: 0 all compliant; 1 infringements or policy findings; 2 usage/input error; 3 indeterminate cases only"

// ExitCode maps audit tallies onto the shared exit statuses: definite
// problems dominate; indeterminate-only runs get their own status so
// callers can retry with larger budgets.
func ExitCode(infringements, findings, indeterminate int) int {
	switch {
	case infringements > 0 || findings > 0:
		return ExitProblem
	case indeterminate > 0:
		return ExitIndeterminate
	default:
		return ExitClean
	}
}

// Window trims the trail to from ≤ t < to; zero bounds are open.
func Window(t *audit.Trail, from, to time.Time) *audit.Trail {
	if from.IsZero() && to.IsZero() {
		return t
	}
	if to.IsZero() {
		to = time.Date(9999, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	return t.Window(from, to)
}
