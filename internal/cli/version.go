package cli

import (
	"fmt"
	"runtime"

	"repro/internal/automaton"
)

// Version is the single source of build-version truth for all five
// binaries. Release builds stamp it at link time:
//
//	go build -ldflags "-X repro/internal/cli.Version=v1.2.3" ./cmd/...
//
// Unstamped builds report "dev".
var Version = "dev"

// CompilerFingerprint identifies the automaton compiler baked into
// this binary — whether two builds produce interchangeable
// content-addressed artifacts, at a glance.
func CompilerFingerprint() string { return automaton.CompilerVersion }

// VersionString renders the canonical one-line -version output for a
// binary.
func VersionString(binary string) string {
	return fmt.Sprintf("%s %s (%s, %s)", binary, Version, runtime.Version(), CompilerFingerprint())
}
