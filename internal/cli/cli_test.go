package cli_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/cli"
	"repro/internal/core"
)

const interchangeProc = `{
  "name": "MiniProc",
  "pools": ["Ops"],
  "elements": [
    {"id": "S1", "kind": "start", "pool": "Ops"},
    {"id": "T01", "kind": "task", "pool": "Ops", "name": "Only step"},
    {"id": "E1", "kind": "end", "pool": "Ops"}
  ],
  "flows": [
    {"from": "S1", "to": "T01", "kind": "sequence"},
    {"from": "T01", "to": "E1", "kind": "sequence"}
  ]
}`

func TestLoadProcs(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "mini.json")
	if err := os.WriteFile(file, []byte(interchangeProc), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := core.NewRegistry()
	if err := cli.LoadProcs(reg, []string{file + ":MP,XA"}); err != nil {
		t.Fatal(err)
	}
	for _, caseID := range []string{"MP-1", "XA-7"} {
		if p := reg.ForCase(caseID); p == nil || p.Name != "MiniProc" {
			t.Errorf("case %s resolved to %v, want MiniProc", caseID, p)
		}
	}
}

func TestLoadProcsErrors(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "mini.json")
	if err := os.WriteFile(good, []byte(interchangeProc), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "broken.json")
	if err := os.WriteFile(bad, []byte(`{"name": "Broken"`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		spec string
		want string
	}{
		{"no-codes", good, "want file.json:CODE"},
		{"missing-file", filepath.Join(dir, "nope.json") + ":MP", "no such file"},
		{"unparsable", bad + ":MP", "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cli.LoadProcs(core.NewRegistry(), []string{tc.spec})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestProcList(t *testing.T) {
	var p cli.ProcList
	if err := p.Set("a.json:HT"); err != nil {
		t.Fatal(err)
	}
	if err := p.Set("b.bpmn:CT,XT"); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != "a.json:HT b.bpmn:CT,XT" {
		t.Fatalf("String() = %q", got)
	}
}

func TestBuiltin(t *testing.T) {
	s, err := cli.Builtin("hospital")
	if err != nil || s == nil {
		t.Fatalf("hospital builtin: %v", err)
	}
	if _, err := cli.Builtin("casino"); err == nil || !strings.Contains(err.Error(), "unknown builtin") {
		t.Fatalf("unknown builtin: err = %v", err)
	}
}

func TestParseTime(t *testing.T) {
	paper, err := cli.ParseTime("201003121210")
	if err != nil {
		t.Fatal(err)
	}
	if paper.Year() != 2010 || paper.Month() != time.March || paper.Minute() != 10 {
		t.Fatalf("paper layout parsed to %v", paper)
	}

	rfc, err := cli.ParseTime("2010-03-12T12:10:00Z")
	if err != nil {
		t.Fatal(err)
	}
	if !rfc.Equal(paper) {
		t.Fatalf("RFC 3339 %v != paper %v", rfc, paper)
	}

	for _, bad := range []string{"", "yesterday", "2010-03-12", "20100312121"} {
		if _, err := cli.ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) accepted", bad)
		}
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		infringements, findings, indeterminate, want int
	}{
		{0, 0, 0, cli.ExitClean},
		{1, 0, 0, cli.ExitProblem},
		{0, 2, 0, cli.ExitProblem},
		{1, 0, 3, cli.ExitProblem}, // definite problems dominate
		{0, 0, 1, cli.ExitIndeterminate},
	}
	for _, tc := range cases {
		if got := cli.ExitCode(tc.infringements, tc.findings, tc.indeterminate); got != tc.want {
			t.Errorf("ExitCode(%d, %d, %d) = %d, want %d",
				tc.infringements, tc.findings, tc.indeterminate, got, tc.want)
		}
	}
}

func TestWindow(t *testing.T) {
	base := time.Date(2010, 3, 12, 12, 0, 0, 0, time.UTC)
	var entries []audit.Entry
	for i := 0; i < 4; i++ {
		entries = append(entries, audit.Entry{
			User: "u", Role: "Ops", Action: "access", Task: "T01", Case: "MP-1",
			Time: base.Add(time.Duration(i) * time.Hour), Status: audit.Success,
		})
	}
	trail := audit.NewTrail(entries)

	if got := cli.Window(trail, time.Time{}, time.Time{}); got != trail {
		t.Error("fully open window should return the trail unchanged")
	}
	if got := cli.Window(trail, base.Add(time.Hour), time.Time{}); got.Len() != 3 {
		t.Errorf("open-ended window kept %d entries, want 3", got.Len())
	}
	if got := cli.Window(trail, time.Time{}, base.Add(time.Hour)); got.Len() != 1 {
		// to is exclusive: only the base entry falls before it.
		t.Errorf("upper-bounded window kept %d entries, want 1", got.Len())
	}
	if got := cli.Window(trail, base.Add(time.Hour), base.Add(3*time.Hour)); got.Len() != 2 {
		t.Errorf("closed window kept %d entries, want 2", got.Len())
	}
}
