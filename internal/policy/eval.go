package policy

import (
	"fmt"
	"sort"
	"sync"
)

// PurposeDirectory resolves the process-instance side of Definition 3:
// which purpose (organizational process) a case instantiates, and
// whether a task belongs to a purpose's process. internal/core's
// ProcessRegistry implements it.
type PurposeDirectory interface {
	// PurposeOf returns the purpose the case instantiates, or "" when
	// the case is unknown.
	PurposeOf(caseID string) string
	// PurposeHasTask reports whether the purpose's process contains
	// the task.
	PurposeHasTask(purpose, task string) bool
}

// ConsentRegistry records which data subjects consented to which
// purposes; it backs the paper's [X] statements ("patients who give
// consent to use their data for clinical trial"). Safe for concurrent
// use.
type ConsentRegistry struct {
	mu sync.RWMutex
	m  map[string]map[string]bool // subject -> purpose -> consented
}

// NewConsentRegistry returns an empty registry.
func NewConsentRegistry() *ConsentRegistry {
	return &ConsentRegistry{m: map[string]map[string]bool{}}
}

// Grant records the subject's consent to the purpose.
func (c *ConsentRegistry) Grant(subject, purpose string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m[subject] == nil {
		c.m[subject] = map[string]bool{}
	}
	c.m[subject][purpose] = true
}

// Revoke withdraws the subject's consent to the purpose.
func (c *ConsentRegistry) Revoke(subject, purpose string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m[subject], purpose)
}

// HasConsent reports whether the subject consented to the purpose.
func (c *ConsentRegistry) HasConsent(subject, purpose string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[subject][purpose]
}

// PurposesOf returns the sorted purposes the subject consented to.
func (c *ConsentRegistry) PurposesOf(subject string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.m[subject]))
	for p := range c.m[subject] {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Subjects returns the sorted subjects with at least one consent.
func (c *ConsentRegistry) Subjects() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.m))
	for s, ps := range c.m {
		if len(ps) > 0 {
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// Decision is the outcome of evaluating an access request.
type Decision struct {
	Granted bool
	// Statement is the matching statement when granted.
	Statement *Statement
	// Reason explains denial (or names the matching statement).
	Reason string
}

// PDP is the policy decision point: it evaluates access requests against
// a policy per Definition 3. A nil Consent treats every consent check as
// failed; a nil Directory rejects every purpose binding.
type PDP struct {
	Policy    *Policy
	Consent   *ConsentRegistry
	Directory PurposeDirectory
}

// Evaluate implements Definition 3. The request is authorized iff some
// statement (s, a', o', p) satisfies:
//
//	(i)   s = u, or s = r1 and the requester's active role r2 ≥R r1;
//	(ii)  a = a';
//	(iii) o' ≥O o;
//	(iv)  c is an instance of p and q is a task in p;
//
// plus, for consent-gated statements, the data subject's consent to p.
func (d *PDP) Evaluate(req AccessRequest) Decision {
	if d.Policy == nil {
		return Decision{Reason: "no policy configured"}
	}
	purpose := ""
	if d.Directory != nil {
		purpose = d.Directory.PurposeOf(req.Case)
	}
	if purpose == "" {
		return Decision{Reason: fmt.Sprintf("case %q does not instantiate any known purpose", req.Case)}
	}
	if d.Directory == nil || !d.Directory.PurposeHasTask(purpose, req.Task) {
		return Decision{Reason: fmt.Sprintf("task %q is not part of purpose %q", req.Task, purpose)}
	}
	for i := range d.Policy.Statements {
		st := &d.Policy.Statements[i]
		if st.Purpose != purpose {
			continue
		}
		if st.Action != req.Action {
			continue
		}
		if st.SubjectUser != "" {
			if st.SubjectUser != req.User {
				continue
			}
		} else if !d.Policy.Roles.Specializes(req.Role, st.SubjectRole) {
			continue
		}
		if !st.Object.Covers(req.Object) {
			continue
		}
		if st.RequiresConsent() {
			if d.Consent == nil || !d.Consent.HasConsent(req.Object.Subject, purpose) {
				continue
			}
		}
		return Decision{Granted: true, Statement: st, Reason: "matched " + st.String()}
	}
	return Decision{Reason: fmt.Sprintf("no statement permits %s", req)}
}

// VisibleObjects filters, out of the given candidate objects, those the
// requester may access — modeling the HIS behavior in the paper's
// footnote 3: a query for clinical-trial purposes returns only the EPRs
// of consenting patients, while the same query claimed for treatment
// returns all of them.
func (d *PDP) VisibleObjects(req AccessRequest, candidates []Object) []Object {
	var out []Object
	for _, o := range candidates {
		r := req
		r.Object = o
		if d.Evaluate(r).Granted {
			out = append(out, o)
		}
	}
	return out
}
