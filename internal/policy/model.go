// Package policy implements the paper's data protection policies
// (Section 3.1–3.2): role hierarchies with specialization ordering ≥R,
// directory-like object hierarchies with data subjects and ordering ≥O,
// purpose-qualified authorization statements (Definition 1), access
// requests (Definition 2) and their evaluation (Definition 3), including
// the consent-gated statements of Figure 3 ("[X]EPR" — patients X who
// consented to the purpose).
//
// The policy layer is the *preventive* half of the paper's framework; it
// decides whether an access may happen at all. The a-posteriori half —
// whether the claimed purpose was genuine — is internal/core.
package policy

import (
	"fmt"
	"sort"
	"strings"
)

// Roles

// RoleHierarchy records the specialization partial order ≥R: a role may
// specialize several more general roles (Section 3.1). The zero value is
// unusable; call NewRoleHierarchy.
type RoleHierarchy struct {
	parents map[string][]string
	known   map[string]bool
}

// NewRoleHierarchy returns an empty hierarchy.
func NewRoleHierarchy() *RoleHierarchy {
	return &RoleHierarchy{parents: map[string][]string{}, known: map[string]bool{}}
}

// Add declares a role with its (possibly empty) set of generalizations.
// Declaring a role twice merges parent sets.
func (h *RoleHierarchy) Add(role string, generalizes ...string) error {
	if role == "" {
		return fmt.Errorf("policy: empty role name")
	}
	h.known[role] = true
	for _, g := range generalizes {
		if g == "" {
			return fmt.Errorf("policy: role %q generalizes empty role", role)
		}
		if g == role {
			return fmt.Errorf("policy: role %q cannot specialize itself", role)
		}
		h.known[g] = true
		h.parents[role] = append(h.parents[role], g)
	}
	if h.cyclic(role) {
		return fmt.Errorf("policy: role hierarchy cycle through %q", role)
	}
	return nil
}

func (h *RoleHierarchy) cyclic(start string) bool {
	seen := map[string]bool{}
	var dfs func(r string) bool
	dfs = func(r string) bool {
		if r == start && len(seen) > 0 {
			return true
		}
		if seen[r] {
			return false
		}
		seen[r] = true
		for _, p := range h.parents[r] {
			if dfs(p) {
				return true
			}
		}
		return false
	}
	for _, p := range h.parents[start] {
		if dfs(p) {
			return true
		}
	}
	return false
}

// Known reports whether the role has been declared.
func (h *RoleHierarchy) Known(role string) bool { return h.known[role] }

// Roles returns all declared roles, sorted.
func (h *RoleHierarchy) Roles() []string {
	out := make([]string, 0, len(h.known))
	for r := range h.known {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Specializes reports r1 ≥R r2: r1 is r2 or a (transitive)
// specialization of r2. A user holding r1 satisfies a statement
// targeting r2.
func (h *RoleHierarchy) Specializes(r1, r2 string) bool {
	if r1 == r2 {
		return true
	}
	seen := map[string]bool{}
	var dfs func(r string) bool
	dfs = func(r string) bool {
		if r == r2 {
			return true
		}
		if seen[r] {
			return false
		}
		seen[r] = true
		for _, p := range h.parents[r] {
			if dfs(p) {
				return true
			}
		}
		return false
	}
	return dfs(r1)
}

// Generalizations returns r and every role it (transitively)
// specializes, sorted.
func (h *RoleHierarchy) Generalizations(r string) []string {
	seen := map[string]bool{}
	var dfs func(x string)
	dfs = func(x string) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, p := range h.parents[x] {
			dfs(p)
		}
	}
	dfs(r)
	out := make([]string, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// Objects

// AnySubject is the wildcard data subject, written [·] in the paper and
// [*] in the textual policy syntax: the statement applies to every
// subject's resource.
const AnySubject = "*"

// ConsentSubject is the consent variable, written [X] in the paper: the
// statement applies to the resources of subjects who consented to the
// statement's purpose.
const ConsentSubject = "X"

// Object identifies a protected resource: an optional data subject and a
// directory-like path (Section 3.1). The textual form is
// "[Jane]EPR/Clinical" for subject resources and "ClinicalTrial/Criteria"
// for subject-less ones.
type Object struct {
	// Subject is the data subject ("" for subject-less resources;
	// AnySubject / ConsentSubject in statement patterns).
	Subject string
	// Path is the resource path, outermost first.
	Path []string
}

// ParseObject reads the textual object form.
func ParseObject(s string) (Object, error) {
	var o Object
	rest := s
	if strings.HasPrefix(s, "[") {
		end := strings.IndexByte(s, ']')
		if end < 0 {
			return o, fmt.Errorf("policy: object %q: unterminated subject", s)
		}
		o.Subject = s[1:end]
		if o.Subject == "" {
			return o, fmt.Errorf("policy: object %q: empty subject", s)
		}
		rest = s[end+1:]
	}
	if rest == "" {
		return o, fmt.Errorf("policy: object %q: empty path", s)
	}
	for _, part := range strings.Split(rest, "/") {
		if part == "" {
			return o, fmt.Errorf("policy: object %q: empty path component", s)
		}
		o.Path = append(o.Path, part)
	}
	return o, nil
}

// MustParseObject is ParseObject that panics on error (fixtures).
func MustParseObject(s string) Object {
	o, err := ParseObject(s)
	if err != nil {
		panic(err)
	}
	return o
}

// String renders the textual form.
func (o Object) String() string {
	p := strings.Join(o.Path, "/")
	if o.Subject == "" {
		return p
	}
	return "[" + o.Subject + "]" + p
}

// Covers reports o ≥O other: o is an ancestor of (or equal to) other in
// the resource hierarchy — the path of o is a prefix of other's — with
// the subject matching rules: a concrete subject matches only itself;
// AnySubject and ConsentSubject match any concrete subject (consent is
// checked separately by the evaluator); a subject-less pattern matches
// only subject-less objects.
func (o Object) Covers(other Object) bool {
	switch o.Subject {
	case "":
		if other.Subject != "" {
			return false
		}
	case AnySubject, ConsentSubject:
		if other.Subject == "" {
			return false
		}
	default:
		if o.Subject != other.Subject {
			return false
		}
	}
	if len(o.Path) > len(other.Path) {
		return false
	}
	for i, part := range o.Path {
		if other.Path[i] != part {
			return false
		}
	}
	return true
}

// Statements

// Statement is a data protection statement (Definition 1): subject (a
// user or role), action, object pattern, and purpose. When the object
// pattern's subject is ConsentSubject, the statement additionally
// requires the data subject's consent to the purpose.
type Statement struct {
	// SubjectUser or SubjectRole identifies who the statement permits;
	// exactly one is non-empty.
	SubjectUser string
	SubjectRole string
	Action      string
	Object      Object
	Purpose     string
}

// String renders the statement like the paper's Figure 3 rows.
func (st Statement) String() string {
	who := st.SubjectRole
	if who == "" {
		who = "user:" + st.SubjectUser
	}
	return fmt.Sprintf("(%s, %s, %s, %s)", who, st.Action, st.Object, st.Purpose)
}

// RequiresConsent reports whether the statement is consent-gated
// (paper's [X] pattern).
func (st Statement) RequiresConsent() bool { return st.Object.Subject == ConsentSubject }

// Policy is a set of statements with the role hierarchy they are
// interpreted under (Definition 1).
type Policy struct {
	Roles      *RoleHierarchy
	Statements []Statement
}

// NewPolicy returns an empty policy with the given hierarchy (nil for a
// flat one).
func NewPolicy(roles *RoleHierarchy) *Policy {
	if roles == nil {
		roles = NewRoleHierarchy()
	}
	return &Policy{Roles: roles}
}

// Permit appends a role-subject statement.
func (p *Policy) Permit(role, action, object, purpose string) error {
	o, err := ParseObject(object)
	if err != nil {
		return err
	}
	if !p.Roles.Known(role) {
		return fmt.Errorf("policy: statement references undeclared role %q", role)
	}
	p.Statements = append(p.Statements, Statement{SubjectRole: role, Action: action, Object: o, Purpose: purpose})
	return nil
}

// PermitUser appends a user-subject statement.
func (p *Policy) PermitUser(user, action, object, purpose string) error {
	o, err := ParseObject(object)
	if err != nil {
		return err
	}
	p.Statements = append(p.Statements, Statement{SubjectUser: user, Action: action, Object: o, Purpose: purpose})
	return nil
}

// Requests

// AccessRequest is Definition 2: who wants to perform which action on
// which object, within which task and process instance (the claimed
// access purpose).
type AccessRequest struct {
	User   string
	Role   string // the requester's active role (Definition 3 footnote)
	Action string
	Object Object
	Task   string
	Case   string
}

// String renders the request tuple.
func (r AccessRequest) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s, %s)", r.User, r.Action, r.Object, r.Task, r.Case)
}
