package policy

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoleHierarchy(t *testing.T) {
	h := NewRoleHierarchy()
	if err := h.Add("Physician"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("GP", "Physician"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("Cardiologist", "Physician"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("InterventionalCardiologist", "Cardiologist"); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		r1, r2 string
		want   bool
	}{
		{"GP", "Physician", true},
		{"Physician", "GP", false},
		{"GP", "GP", true},
		{"InterventionalCardiologist", "Physician", true}, // transitive
		{"GP", "Cardiologist", false},                     // siblings
		{"Nurse", "Physician", false},                     // unknown role
	}
	for _, c := range cases {
		if got := h.Specializes(c.r1, c.r2); got != c.want {
			t.Errorf("Specializes(%s, %s) = %v, want %v", c.r1, c.r2, got, c.want)
		}
	}
	gens := h.Generalizations("InterventionalCardiologist")
	if len(gens) != 3 {
		t.Errorf("Generalizations = %v, want 3 roles", gens)
	}
}

func TestRoleHierarchyMultipleInheritance(t *testing.T) {
	h := NewRoleHierarchy()
	for _, r := range []string{"Physician", "Researcher"} {
		if err := h.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Add("TrialPhysician", "Physician", "Researcher"); err != nil {
		t.Fatal(err)
	}
	if !h.Specializes("TrialPhysician", "Physician") || !h.Specializes("TrialPhysician", "Researcher") {
		t.Errorf("multiple inheritance broken")
	}
}

func TestRoleHierarchyRejectsCycles(t *testing.T) {
	h := NewRoleHierarchy()
	if err := h.Add("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("B", "C"); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("C", "A"); err == nil {
		t.Fatalf("cycle accepted")
	}
	if err := h.Add("D", "D"); err == nil {
		t.Fatalf("self-specialization accepted")
	}
}

func TestParseObject(t *testing.T) {
	cases := []struct {
		in      string
		subject string
		path    string
		wantErr bool
	}{
		{"[Jane]EPR/Clinical", "Jane", "EPR/Clinical", false},
		{"[*]EPR", "*", "EPR", false},
		{"[X]EPR", "X", "EPR", false},
		{"ClinicalTrial/Criteria", "", "ClinicalTrial/Criteria", false},
		{"[Jane]", "", "", true},
		{"[]EPR", "", "", true},
		{"[Jane]EPR//Clinical", "", "", true},
		{"", "", "", true},
	}
	for _, c := range cases {
		o, err := ParseObject(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseObject(%q) succeeded, want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseObject(%q): %v", c.in, err)
			continue
		}
		if o.Subject != c.subject || strings.Join(o.Path, "/") != c.path {
			t.Errorf("ParseObject(%q) = %+v", c.in, o)
		}
		if o.String() != c.in {
			t.Errorf("round trip: %q -> %q", c.in, o.String())
		}
	}
}

func TestObjectCovers(t *testing.T) {
	cases := []struct {
		pattern, object string
		want            bool
	}{
		{"[Jane]EPR", "[Jane]EPR/Clinical", true},
		{"[Jane]EPR/Clinical", "[Jane]EPR", false}, // child does not cover parent
		{"[*]EPR/Clinical", "[Jane]EPR/Clinical/Tests", true},
		{"[*]EPR", "[David]EPR/Demographics", true},
		{"[X]EPR", "[Jane]EPR/Clinical", true}, // consent checked separately
		{"[Jane]EPR", "[David]EPR", false},
		{"[*]EPR", "ClinicalTrial/Criteria", false}, // subject pattern vs subject-less
		{"ClinicalTrial", "ClinicalTrial/Criteria", true},
		{"ClinicalTrial", "[Jane]EPR", false},
		{"[Jane]EPR/Clinical", "[Jane]EPR/Demographics", false},
	}
	for _, c := range cases {
		p, o := MustParseObject(c.pattern), MustParseObject(c.object)
		if got := p.Covers(o); got != c.want {
			t.Errorf("Covers(%s, %s) = %v, want %v", c.pattern, c.object, got, c.want)
		}
	}
}

func TestObjectCoversProperties(t *testing.T) {
	// Reflexivity and transitivity of ≥O on generated path objects.
	gen := func(n uint8, d uint8) Object {
		depth := int(d%3) + 1
		var path []string
		for i := 0; i < depth; i++ {
			path = append(path, string(rune('a'+int(n)%3+i)))
		}
		return Object{Subject: "S", Path: path}
	}
	refl := func(n, d uint8) bool {
		o := gen(n, d)
		return o.Covers(o)
	}
	if err := quick.Check(refl, nil); err != nil {
		t.Errorf("reflexivity: %v", err)
	}
	trans := func(a, b, c uint8, d1, d2, d3 uint8) bool {
		x, y, z := gen(a, d1), gen(b, d2), gen(c, d3)
		if x.Covers(y) && y.Covers(z) {
			return x.Covers(z)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Errorf("transitivity: %v", err)
	}
}

// stubDirectory maps case prefixes to purposes, as the HIS does with
// case codes HT-n / CT-n.
type stubDirectory struct {
	purposes map[string]string          // case prefix -> purpose
	tasks    map[string]map[string]bool // purpose -> tasks
}

func (d *stubDirectory) PurposeOf(caseID string) string {
	for prefix, purpose := range d.purposes {
		if strings.HasPrefix(caseID, prefix) {
			return purpose
		}
	}
	return ""
}

func (d *stubDirectory) PurposeHasTask(purpose, task string) bool {
	return d.tasks[purpose][task]
}

func testPDP(t *testing.T) *PDP {
	t.Helper()
	pol, err := ParsePolicyString(`
		role Physician
		role MedicalTech
		role GP : Physician
		role Cardiologist : Physician
		role Radiologist : Physician
		role MedicalLabTech : MedicalTech

		permit Physician read [*]EPR/Clinical for treatment
		permit Physician write [*]EPR/Clinical for treatment
		permit Physician read [*]EPR/Demographics for treatment
		permit MedicalTech read [*]EPR/Clinical for treatment
		permit MedicalTech read [*]EPR/Demographics for treatment
		permit MedicalLabTech write [*]EPR/Clinical/Tests for treatment
		permit Physician read [X]EPR for clinicaltrial
		permit user:Audrey read [*]EPR for audit
	`)
	if err != nil {
		t.Fatalf("ParsePolicyString: %v", err)
	}
	consent := NewConsentRegistry()
	consent.Grant("Alice", "clinicaltrial")
	dir := &stubDirectory{
		purposes: map[string]string{"HT-": "treatment", "CT-": "clinicaltrial", "AU-": "audit"},
		tasks: map[string]map[string]bool{
			"treatment":     {"T01": true, "T02": true, "T06": true, "T14": true},
			"clinicaltrial": {"T92": true},
			"audit":         {"T99": true},
		},
	}
	return &PDP{Policy: pol, Consent: consent, Directory: dir}
}

func TestEvaluateDefinition3(t *testing.T) {
	pdp := testPDP(t)
	obj := func(s string) Object { return MustParseObject(s) }
	cases := []struct {
		name string
		req  AccessRequest
		want bool
	}{
		{"GP reads clinical for treatment (role hierarchy)",
			AccessRequest{User: "John", Role: "GP", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T01", Case: "HT-1"}, true},
		{"cardiologist writes clinical",
			AccessRequest{User: "Bob", Role: "Cardiologist", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T06", Case: "HT-1"}, true},
		{"object hierarchy: statement covers subsection",
			AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical/Scan"), Task: "T06", Case: "HT-1"}, true},
		{"lab tech writes tests subsection",
			AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical/Tests"), Task: "T14", Case: "HT-1"}, true},
		{"lab tech cannot write outside tests",
			AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "write", Object: obj("[Jane]EPR/Clinical"), Task: "T14", Case: "HT-1"}, false},
		{"lab tech inherits read from MedicalTech",
			AccessRequest{User: "Tess", Role: "MedicalLabTech", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T14", Case: "HT-1"}, true},
		{"physician cannot execute",
			AccessRequest{User: "Bob", Role: "Cardiologist", Action: "execute", Object: obj("[Jane]EPR/Clinical"), Task: "T06", Case: "HT-1"}, false},
		{"clinical trial needs consent: Alice consented",
			AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Alice]EPR/Clinical"), Task: "T92", Case: "CT-1"}, true},
		{"clinical trial needs consent: Jane did not",
			AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "CT-1"}, false},
		{"task not in purpose's process",
			AccessRequest{User: "John", Role: "GP", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T92", Case: "HT-1"}, false},
		{"unknown case",
			AccessRequest{User: "John", Role: "GP", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T01", Case: "ZZ-1"}, false},
		{"user-level statement",
			AccessRequest{User: "Audrey", Role: "", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T99", Case: "AU-1"}, true},
		{"user-level statement other user",
			AccessRequest{User: "Mallory", Role: "", Action: "read", Object: obj("[Jane]EPR/Clinical"), Task: "T99", Case: "AU-1"}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dec := pdp.Evaluate(c.req)
			if dec.Granted != c.want {
				t.Fatalf("Evaluate(%s) = %v (%s), want %v", c.req, dec.Granted, dec.Reason, c.want)
			}
			if dec.Granted && dec.Statement == nil {
				t.Fatalf("granted decision missing statement")
			}
		})
	}
}

func TestVisibleObjectsFootnote3(t *testing.T) {
	// Paper footnote 3: a clinical-trial query returns only consenting
	// patients' EPRs; the same objects claimed under treatment are all
	// visible.
	pdp := testPDP(t)
	candidates := []Object{
		MustParseObject("[Alice]EPR/Clinical"),
		MustParseObject("[Jane]EPR/Clinical"),
		MustParseObject("[David]EPR/Clinical"),
	}
	ctReq := AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Task: "T92", Case: "CT-1"}
	got := pdp.VisibleObjects(ctReq, candidates)
	if len(got) != 1 || got[0].Subject != "Alice" {
		t.Fatalf("clinical-trial visibility = %v, want only Alice", got)
	}
	htReq := AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read", Task: "T06", Case: "HT-1"}
	got = pdp.VisibleObjects(htReq, candidates)
	if len(got) != 3 {
		t.Fatalf("treatment visibility = %v, want all 3", got)
	}
}

func TestConsentRevocation(t *testing.T) {
	pdp := testPDP(t)
	req := AccessRequest{User: "Bob", Role: "Cardiologist", Action: "read",
		Object: MustParseObject("[Alice]EPR/Clinical"), Task: "T92", Case: "CT-1"}
	if !pdp.Evaluate(req).Granted {
		t.Fatalf("pre-revocation denied")
	}
	pdp.Consent.Revoke("Alice", "clinicaltrial")
	if pdp.Evaluate(req).Granted {
		t.Fatalf("post-revocation granted")
	}
	if subs := pdp.Consent.Subjects(); len(subs) != 0 {
		t.Fatalf("Subjects = %v, want empty", subs)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"permit Physician read [Jane]EPR",           // missing "for"
		"permit Ghost read [Jane]EPR for treatment", // undeclared role
		"role",                                 // missing name
		"role A B",                             // missing colon
		"grant A read [Jane]EPR for treatment", // unknown directive
		"role A : ",                            // empty generalization
		"permit Physician read []EPR for treatment", // bad object
	}
	for _, src := range cases {
		full := "role Physician\n" + src
		if _, err := ParsePolicyString(full); err == nil {
			t.Errorf("ParsePolicyString(%q) succeeded, want error", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	pdp := testPDP(t)
	text := Format(pdp.Policy)
	re, err := ParsePolicyString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if len(re.Statements) != len(pdp.Policy.Statements) {
		t.Fatalf("statement count %d != %d", len(re.Statements), len(pdp.Policy.Statements))
	}
	for i := range re.Statements {
		if re.Statements[i].String() != pdp.Policy.Statements[i].String() {
			t.Errorf("statement %d: %s != %s", i, re.Statements[i], pdp.Policy.Statements[i])
		}
	}
}
