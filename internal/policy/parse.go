package policy

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParsePolicy reads the textual policy format, one declaration per line:
//
//	# comment
//	role Physician
//	role GP : Physician            # GP specializes Physician
//	role GP : Physician, OnCall    # multiple generalizations
//	permit Physician read [*]EPR/Clinical for treatment
//	permit user:John read [Jane]EPR/Demographics for treatment
//	permit Physician read [X]EPR for clinicaltrial   # consent-gated
//
// Subjects in object patterns: [*] any subject (the paper's [·]), [X]
// consenting subjects, [Name] one subject; no bracket form addresses
// subject-less resources.
func ParsePolicy(r io.Reader) (*Policy, error) {
	pol := NewPolicy(nil)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "role":
			if err := parseRoleLine(pol, fields[1:]); err != nil {
				return nil, fmt.Errorf("policy: line %d: %w", lineNo, err)
			}
		case "permit":
			if err := parsePermitLine(pol, fields[1:]); err != nil {
				return nil, fmt.Errorf("policy: line %d: %w", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("policy: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("policy: reading: %w", err)
	}
	return pol, nil
}

func parseRoleLine(pol *Policy, fields []string) error {
	if len(fields) == 0 {
		return fmt.Errorf("role: missing name")
	}
	name := fields[0]
	rest := strings.Join(fields[1:], " ")
	var parents []string
	if rest != "" {
		if !strings.HasPrefix(rest, ":") {
			return fmt.Errorf("role %s: expected ':' before generalizations", name)
		}
		for _, p := range strings.Split(strings.TrimPrefix(rest, ":"), ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				return fmt.Errorf("role %s: empty generalization", name)
			}
			parents = append(parents, p)
		}
	}
	return pol.Roles.Add(name, parents...)
}

func parsePermitLine(pol *Policy, fields []string) error {
	// permit <subject> <action> <object> for <purpose>
	if len(fields) != 5 || fields[3] != "for" {
		return fmt.Errorf("permit: want \"permit <subject> <action> <object> for <purpose>\", got %q", strings.Join(fields, " "))
	}
	subject, action, object, purpose := fields[0], fields[1], fields[2], fields[4]
	if user, ok := strings.CutPrefix(subject, "user:"); ok {
		return pol.PermitUser(user, action, object, purpose)
	}
	// Roles may be used before their role line for convenience? No:
	// require prior declaration to catch typos, matching Permit.
	if err := pol.Permit(subject, action, object, purpose); err != nil {
		return err
	}
	return nil
}

// ParsePolicyString is ParsePolicy over a string.
func ParsePolicyString(s string) (*Policy, error) {
	return ParsePolicy(strings.NewReader(s))
}

// Format renders the policy back to its textual form (roles first, then
// statements, in declaration order).
func Format(pol *Policy) string {
	var b strings.Builder
	for _, r := range pol.Roles.Roles() {
		parents := pol.Roles.parents[r]
		if len(parents) == 0 {
			fmt.Fprintf(&b, "role %s\n", r)
		} else {
			fmt.Fprintf(&b, "role %s : %s\n", r, strings.Join(parents, ", "))
		}
	}
	for _, st := range pol.Statements {
		subject := st.SubjectRole
		if subject == "" {
			subject = "user:" + st.SubjectUser
		}
		obj := st.Object.String()
		if st.Object.Subject == AnySubject {
			obj = "[*]" + strings.Join(st.Object.Path, "/")
		}
		fmt.Fprintf(&b, "permit %s %s %s for %s\n", subject, st.Action, obj, st.Purpose)
	}
	return b.String()
}
