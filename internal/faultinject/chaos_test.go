package faultinject_test

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/workload"
)

// The chaos test drives the full degraded-mode pipeline end to end:
// generate a valid multi-case workload, serialize it, damage the bytes
// with every fault kind, then run lenient ingestion + tri-state checking
// and assert (under -race, via CI) that nothing panics, every injected
// corruption is quarantined at exactly its line, duplicates surface as
// anomalies, and the verdicts of cases no fault touched are identical to
// a clean-run baseline.

// chaosPipeline is the production lenient path: decode in file order,
// ingest per-case lenient, check every case in parallel.
func chaosPipeline(t *testing.T, checker *core.Checker, text string) (*audit.Quarantine, *audit.Store, map[string]*core.Report) {
	t.Helper()
	entries, q, err := audit.DecodeCSVEntries(strings.NewReader(text), audit.DecodeOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	store := audit.NewStoreWith(audit.StoreOptions{Order: audit.OrderPerCaseLenient})
	for _, e := range entries {
		if err := store.Append(e); err != nil {
			t.Fatalf("lenient append failed: %v", err)
		}
	}
	reports, err := core.CheckStoreParallel(checker, store, 8)
	if err != nil {
		t.Fatalf("parallel check failed: %v", err)
	}
	return q, store, reports
}

func TestChaosPipeline(t *testing.T) {
	proc := workload.MustGenerate(workload.DefaultProcParams("Chaos", 7, 10))
	reg := core.NewRegistry()
	if _, err := reg.Register(proc, "CH"); err != nil {
		t.Fatal(err)
	}
	trail, err := workload.ManyCases(reg, "CH", 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := audit.WriteCSV(&b, trail); err != nil {
		t.Fatal(err)
	}
	clean := b.String()
	checker := core.NewChecker(reg, nil)

	_, _, baseline := chaosPipeline(t, checker, clean)

	res := faultinject.New(7).MutateCSV(clean, 12)
	kindsApplied := 0
	for _, k := range faultinject.AllKinds() {
		if res.Count(k) > 0 {
			kindsApplied++
		}
	}
	if kindsApplied < 4 {
		t.Fatalf("only %d fault kinds applied, want >=4: %v", kindsApplied, res.Injections)
	}

	q, store, damaged := chaosPipeline(t, checker, res.Text)

	// Every injected corruption is quarantined at exactly its line — no
	// misses, no collateral quarantining of healthy records.
	if got, want := q.Lines(), res.CorruptLines(); !reflect.DeepEqual(got, want) {
		t.Errorf("quarantine lines = %v, want %v", got, want)
	}

	// Every injected duplicate surfaces as a duplicate anomaly; the
	// generated workload has no natural duplicates (strictly increasing
	// clock), so the counts match exactly.
	dups := 0
	for _, a := range store.Anomalies() {
		if a.Kind == audit.AnomalyDuplicate {
			dups++
		}
	}
	if dups != res.Count(faultinject.Duplicate) {
		t.Errorf("duplicate anomalies = %d, want %d", dups, res.Count(faultinject.Duplicate))
	}

	// Cases no fault touched get verdicts identical to the clean run.
	touched := map[string]bool{}
	for _, c := range res.Touched {
		touched[c] = true
	}
	compared := 0
	for id, want := range baseline {
		if touched[id] {
			continue
		}
		compared++
		if got := damaged[id]; !reflect.DeepEqual(got, want) {
			t.Errorf("untouched case %s verdict changed:\n got %+v\nwant %+v", id, got, want)
		}
	}
	if compared == 0 {
		t.Fatalf("every case was touched; widen the workload or reduce faults")
	}

	// Cancellation mid-run returns promptly with the context error and
	// leaves the checker reusable.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.CheckStoreParallelContext(ctx, checker, store, 8); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled parallel check: err = %v, want context.Canceled", err)
	}
	if _, err := core.CheckStoreParallel(checker, store, 8); err != nil {
		t.Errorf("checker unusable after cancellation: %v", err)
	}
}
