package faultinject_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/faultinject"
	"repro/internal/policy"
)

func sampleCSV(t *testing.T, n int) string {
	t.Helper()
	entries := make([]audit.Entry, n)
	for i := range entries {
		entries[i] = audit.Entry{
			User: "u1", Role: "R", Action: "read",
			Object: policy.MustParseObject("[P1]EPR/Clinical"),
			Task:   fmt.Sprintf("T%d", i%4+1), Case: fmt.Sprintf("C-%d", i/4+1),
			Time:   time.Date(2026, 4, 1, 9, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
			Status: audit.Success,
		}
	}
	var b strings.Builder
	if err := audit.WriteCSV(&b, audit.NewTrail(entries)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestMutatorDeterministic(t *testing.T) {
	src := sampleCSV(t, 40)
	a := faultinject.New(42).MutateCSV(src, 8)
	b := faultinject.New(42).MutateCSV(src, 8)
	if a.Text != b.Text || !reflect.DeepEqual(a.Injections, b.Injections) {
		t.Fatalf("same seed diverged")
	}
	c := faultinject.New(43).MutateCSV(src, 8)
	if a.Text == c.Text {
		t.Fatalf("different seeds produced identical mutations")
	}
}

func TestMutatorAppliesAllKinds(t *testing.T) {
	src := sampleCSV(t, 60)
	res := faultinject.New(7).MutateCSV(src, 10)
	for _, k := range faultinject.AllKinds() {
		if res.Count(k) == 0 {
			t.Errorf("kind %s never applied: %v", k, res.Injections)
		}
	}
	if res.Count(faultinject.Truncate) != 1 {
		t.Errorf("truncate applied %d times, want exactly 1", res.Count(faultinject.Truncate))
	}
	if len(res.Touched) == 0 {
		t.Errorf("no touched cases recorded")
	}
	for _, in := range res.Injections {
		if in.Kind != faultinject.Truncate && in.Case == "" {
			t.Errorf("injection lost its case: %s", in)
		}
	}
}

func TestMutatedCSVQuarantinesExactly(t *testing.T) {
	src := sampleCSV(t, 60)
	res := faultinject.New(11).MutateCSV(src, 9)
	_, q, err := audit.DecodeCSV(strings.NewReader(res.Text), audit.DecodeOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode of mutated text failed: %v", err)
	}
	if got, want := q.Lines(), res.CorruptLines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("quarantine lines = %v, want exactly the corrupt injections %v", got, want)
	}
}

func TestMutatedJSONLQuarantinesExactly(t *testing.T) {
	entries, _, err := audit.DecodeCSVEntries(strings.NewReader(sampleCSV(t, 60)), audit.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := audit.WriteJSONL(&b, audit.NewTrail(entries)); err != nil {
		t.Fatal(err)
	}
	res := faultinject.New(11).MutateJSONL(b.String(), 9)
	_, q, err := audit.DecodeJSONL(strings.NewReader(res.Text), audit.DecodeOptions{Lenient: true})
	if err != nil {
		t.Fatalf("lenient decode of mutated text failed: %v", err)
	}
	if got, want := q.Lines(), res.CorruptLines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("quarantine lines = %v, want exactly the corrupt injections %v", got, want)
	}
}

func TestMutatorTinyInputUntouched(t *testing.T) {
	src := sampleCSV(t, 2)
	res := faultinject.New(1).MutateCSV(src, 5)
	if res.Text != src || len(res.Injections) != 0 {
		t.Fatalf("tiny input should pass through unchanged")
	}
}
