// Package faultinject mutates serialized audit trails with seeded,
// line-oriented faults — corrupted records, drops, duplicates, local
// reorderings, truncation — so the degraded-mode ingestion and checking
// pipeline can be exercised against realistic log damage. The mutator
// works on the textual encodings (CSV, JSONL) rather than on decoded
// entries: that is where real damage happens (partial writes, collector
// crashes, transport reordering), and it lets tests assert that every
// injected corruption is quarantined at exactly the line it landed on.
package faultinject

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Kind is one fault family.
type Kind int

const (
	// Corrupt replaces a record with an unparsable line (same line
	// count, no quote or newline characters, so decoder line accounting
	// stays in sync).
	Corrupt Kind = iota
	// Drop deletes a record.
	Drop
	// Duplicate emits a record twice, adjacently.
	Duplicate
	// Reorder swaps a record with its successor (a window-1 transport
	// reordering).
	Reorder
	// Truncate cuts the file at the record (collector crash); it is
	// always placed near the end so most of the trail survives.
	Truncate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Corrupt:
		return "corrupt"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists every fault family.
func AllKinds() []Kind { return []Kind{Corrupt, Drop, Duplicate, Reorder, Truncate} }

// Injection records one applied fault.
type Injection struct {
	Kind Kind
	// SourceLine is the 1-based line of the input text the fault
	// targeted.
	SourceLine int
	// OutLine is the 1-based line in the mutated text where the fault
	// materialized (the corrupted line, the second copy of a duplicate,
	// the displaced line of a reorder); 0 for Drop and Truncate, which
	// leave nothing behind.
	OutLine int
	// Case is the case id of the targeted record ("" if it could not be
	// determined).
	Case   string
	Detail string
}

// String renders a one-line account.
func (in Injection) String() string {
	return fmt.Sprintf("[%s] source line %d case %q: %s", in.Kind, in.SourceLine, in.Case, in.Detail)
}

// Result is a mutated text plus the ground truth of what was done to it.
type Result struct {
	Text       string
	Injections []Injection
	// Touched lists, sorted, the case ids whose slices were altered by
	// any injection — the complement is the set of cases whose verdicts
	// must match a clean run exactly.
	Touched []string
}

// CorruptLines returns the 1-based mutated-text lines carrying Corrupt
// injections, sorted — exactly what a lenient decoder must quarantine.
func (r Result) CorruptLines() []int {
	var out []int
	for _, in := range r.Injections {
		if in.Kind == Corrupt {
			out = append(out, in.OutLine)
		}
	}
	sort.Ints(out)
	return out
}

// Count returns how many injections of kind k were applied.
func (r Result) Count(k Kind) int {
	n := 0
	for _, in := range r.Injections {
		if in.Kind == k {
			n++
		}
	}
	return n
}

// Mutator applies seeded faults. The same seed, kinds, input and count
// always produce the same Result.
type Mutator struct {
	rng   *rand.Rand
	kinds []Kind
}

// New builds a mutator drawing faults from kinds (all of them when none
// are given).
func New(seed int64, kinds ...Kind) *Mutator {
	if len(kinds) == 0 {
		kinds = AllKinds()
	}
	return &Mutator{rng: rand.New(rand.NewSource(seed)), kinds: append([]Kind(nil), kinds...)}
}

// MutateCSV applies up to n faults to a WriteCSV-encoded trail (header
// on line 1 is never targeted).
func (m *Mutator) MutateCSV(text string, n int) Result {
	return m.mutate(text, n, 1, csvCase, corruptCSVLine)
}

// MutateJSONL applies up to n faults to a WriteJSONL-encoded trail.
func (m *Mutator) MutateJSONL(text string, n int) Result {
	return m.mutate(text, n, 0, jsonlCase, corruptJSONLLine)
}

// CorruptBytes flips n bytes of data in place at seeded positions at or
// after offset skip (protecting, say, a file header), returning the
// 0-based offsets flipped, sorted. Each flip XORs a non-zero mask so
// the byte always changes — bit rot for binary artifacts (WAL
// segments, checkpoint containers) the way the line mutators are bit
// rot for textual trails.
func (m *Mutator) CorruptBytes(data []byte, skip, n int) []int {
	if skip < 0 {
		skip = 0
	}
	span := len(data) - skip
	if span <= 0 || n <= 0 {
		return nil
	}
	if n > span {
		n = span
	}
	hit := map[int]bool{}
	for len(hit) < n {
		hit[skip+m.rng.Intn(span)] = true
	}
	offsets := make([]int, 0, n)
	for off := range hit {
		offsets = append(offsets, off)
	}
	sort.Ints(offsets)
	for _, off := range offsets {
		data[off] ^= byte(1 + m.rng.Intn(255))
	}
	return offsets
}

// csvCase extracts the case column (user,role,action,object,task,case,
// time,status) without a full CSV parse; trail writers never quote
// these simple fields.
func csvCase(line string) string {
	fields := strings.Split(line, ",")
	if len(fields) != 8 {
		return ""
	}
	return fields[5]
}

func jsonlCase(line string) string {
	var rec struct {
		Case string `json:"case"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		return ""
	}
	return rec.Case
}

// corruptCSVLine yields a record that parses as CSV (keeping the line
// counter in sync — no quotes, commas or newlines) but fails entry
// decoding on field count.
func corruptCSVLine(string) string { return "CORRUPTED RECORD" }

// corruptJSONLLine yields an unterminated JSON object.
func corruptJSONLLine(string) string { return "{\"corrupted" }

// mutate is the shared engine. first is the index of the first
// targetable line (1 skips a header). Fault positions are sampled with
// pairwise spacing ≥ 2 so faults never interact (a reorder never swaps
// into a dropped or corrupted line), keeping the ground truth exact.
func (m *Mutator) mutate(text string, n int, first int, caseOf func(string) string, corruptFn func(string) string) Result {
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	data := len(lines) - first
	if max := data / 3; n > max {
		n = max
	}
	if n <= 0 || data < 4 {
		return Result{Text: text}
	}

	// One fault kind per slot, cycling through the configured kinds;
	// Truncate at most once (a second truncation is a no-op).
	kinds := make([]Kind, 0, n)
	haveTrunc := false
	for i := 0; len(kinds) < n; i++ {
		k := m.kinds[i%len(m.kinds)]
		if k == Truncate {
			if haveTrunc {
				continue
			}
			haveTrunc = true
		}
		kinds = append(kinds, k)
	}

	// Truncation lands in the last eighth of the file; every other
	// fault is sampled before it, away from the final line so Reorder
	// always has a successor to swap with.
	truncateAt := -1
	hi := len(lines) - 1 // exclusive bound for non-truncate positions
	if haveTrunc {
		tail := data / 8
		if tail < 2 {
			tail = 2
		}
		truncateAt = len(lines) - 1 - m.rng.Intn(tail)
		hi = truncateAt - 1
	}

	chosen := map[int]Kind{}
	var positions []int
	for _, k := range kinds {
		if k == Truncate {
			continue
		}
		placed := false
		for attempt := 0; attempt < 200 && !placed; attempt++ {
			p := first + m.rng.Intn(hi-first)
			if _, hit := chosen[p-1]; hit {
				continue
			}
			if _, hit := chosen[p]; hit {
				continue
			}
			if _, hit := chosen[p+1]; hit {
				continue
			}
			chosen[p] = k
			positions = append(positions, p)
			placed = true
		}
	}
	sort.Ints(positions)

	touched := map[string]bool{}
	touch := func(c string) {
		if c != "" {
			touched[c] = true
		}
	}
	var injections []Injection
	out := make([]string, 0, len(lines)+n)
	skip := -1
	for i := 0; i < len(lines); i++ {
		if i == truncateAt {
			for j := i; j < len(lines); j++ {
				touch(caseOf(lines[j]))
			}
			injections = append(injections, Injection{
				Kind: Truncate, SourceLine: i + 1, Case: caseOf(lines[i]),
				Detail: fmt.Sprintf("file cut, %d line(s) lost", len(lines)-i),
			})
			break
		}
		if i == skip {
			continue
		}
		k, hit := chosen[i]
		if !hit {
			out = append(out, lines[i])
			continue
		}
		cs := caseOf(lines[i])
		touch(cs)
		switch k {
		case Corrupt:
			out = append(out, corruptFn(lines[i]))
			injections = append(injections, Injection{
				Kind: Corrupt, SourceLine: i + 1, OutLine: len(out), Case: cs,
				Detail: "record replaced with unparsable bytes",
			})
		case Drop:
			injections = append(injections, Injection{
				Kind: Drop, SourceLine: i + 1, Case: cs,
				Detail: "record deleted",
			})
		case Duplicate:
			out = append(out, lines[i], lines[i])
			injections = append(injections, Injection{
				Kind: Duplicate, SourceLine: i + 1, OutLine: len(out), Case: cs,
				Detail: "record emitted twice",
			})
		case Reorder:
			next := lines[i+1]
			touch(caseOf(next))
			out = append(out, next, lines[i])
			skip = i + 1
			injections = append(injections, Injection{
				Kind: Reorder, SourceLine: i + 1, OutLine: len(out), Case: cs,
				Detail: "record swapped with its successor",
			})
		}
	}

	cases := make([]string, 0, len(touched))
	for c := range touched {
		cases = append(cases, c)
	}
	sort.Strings(cases)
	return Result{Text: strings.Join(out, "\n") + "\n", Injections: injections, Touched: cases}
}
