package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/cows"
	"repro/internal/lts"
	"repro/internal/policy"
)

// TrailParams parameterizes trail simulation for one registered
// purpose.
type TrailParams struct {
	Seed int64
	// Cases is how many process instances to simulate.
	Cases int
	// CasePrefix prefixes case ids ("HT" → HT-1, HT-2, …); it must be
	// a registered case code of the purpose.
	CasePrefix string
	// ActionsPerTask draws 1..ActionsPerTask log entries per executed
	// task (the paper's 1-to-n task↔action mapping).
	ActionsPerTask int
	// MaxSteps caps observable steps per case (loops would otherwise
	// run forever); reaching the cap leaves the case pending.
	MaxSteps int
	// CompleteBias is the probability of stopping at the first
	// opportunity once the process can complete (1 = always finish as
	// early as possible, 0 = keep running until MaxSteps or forced).
	CompleteBias float64
	// Subjects is the pool of data-subject names for generated
	// objects.
	Subjects []string
	// Start is the wall-clock time of the first entry.
	Start time.Time
	// Step is the time between consecutive entries.
	Step time.Duration
}

// DefaultTrailParams returns a balanced parameterization.
func DefaultTrailParams(seed int64, cases int, prefix string) TrailParams {
	return TrailParams{
		Seed: seed, Cases: cases, CasePrefix: prefix,
		ActionsPerTask: 2, MaxSteps: 60, CompleteBias: 0.7,
		Subjects: []string{"P01", "P02", "P03", "P04", "P05"},
		Start:    time.Date(2026, 3, 2, 8, 0, 0, 0, time.UTC),
		Step:     time.Minute,
	}
}

// Simulator generates valid trails by random walks over a purpose's
// weak transition system — every generated case is, by construction, a
// valid execution of the process (Algorithm 1 must accept it; the
// workload tests verify this agreement).
type Simulator struct {
	reg    *core.Registry
	params TrailParams
	rng    *rand.Rand
	sys    map[string]*lts.System
	// users per role, synthesized on demand.
	users map[string]string
}

// NewSimulator builds a simulator over the registry.
func NewSimulator(reg *core.Registry, params TrailParams) *Simulator {
	if params.ActionsPerTask < 1 {
		params.ActionsPerTask = 1
	}
	if params.MaxSteps < 1 {
		params.MaxSteps = 50
	}
	if len(params.Subjects) == 0 {
		params.Subjects = []string{"P01"}
	}
	if params.Step <= 0 {
		params.Step = time.Minute
	}
	if params.Start.IsZero() {
		params.Start = time.Date(2026, 3, 2, 8, 0, 0, 0, time.UTC)
	}
	return &Simulator{
		reg:    reg,
		params: params,
		rng:    rand.New(rand.NewSource(params.Seed)),
		sys:    map[string]*lts.System{},
		users:  map[string]string{},
	}
}

func (s *Simulator) system(p *core.Purpose) *lts.System {
	y, ok := s.sys[p.Name]
	if !ok {
		y = lts.NewSystem(p.Observable)
		s.sys[p.Name] = y
	}
	return y
}

func (s *Simulator) userFor(role string) string {
	u, ok := s.users[role]
	if !ok {
		u = "u-" + role
		s.users[role] = u
	}
	return u
}

// Generate simulates all cases and returns the merged chronological
// trail. Entries of different cases interleave (cases are dealt
// round-robin across the timeline), as in a real audit database.
func (s *Simulator) Generate() (*audit.Trail, error) {
	pur := s.reg.ForCase(s.params.CasePrefix + "-0")
	if pur == nil {
		return nil, fmt.Errorf("workload: case prefix %q resolves no purpose", s.params.CasePrefix)
	}
	var all []audit.Entry
	clock := s.params.Start
	for c := 1; c <= s.params.Cases; c++ {
		caseID := fmt.Sprintf("%s-%d", s.params.CasePrefix, c)
		entries, err := s.simulateCase(pur, caseID, &clock)
		if err != nil {
			return nil, fmt.Errorf("workload: simulating %s: %w", caseID, err)
		}
		all = append(all, entries...)
	}
	return audit.NewTrail(all), nil
}

// simulateCase walks the weak LTS once.
func (s *Simulator) simulateCase(pur *core.Purpose, caseID string, clock *time.Time) ([]audit.Entry, error) {
	y := s.system(pur)
	state := pur.Initial
	subject := s.params.Subjects[s.rng.Intn(len(s.params.Subjects))]
	var entries []audit.Entry

	for step := 0; step < s.params.MaxSteps; step++ {
		done, err := y.CanTerminateSilently(state)
		if err != nil {
			return nil, err
		}
		if done && s.rng.Float64() < s.params.CompleteBias {
			break
		}
		obs, err := y.WeakNext(state)
		if err != nil {
			return nil, err
		}
		if len(obs) == 0 {
			break
		}
		pick := obs[s.rng.Intn(len(obs))]
		entries = append(entries, s.entriesForLabel(pur, pick.Label, caseID, subject, clock)...)
		state = pick.State
	}
	return entries, nil
}

// entriesForLabel renders one observable label as 1..ActionsPerTask log
// entries (or a single failure entry for sys·Err).
func (s *Simulator) entriesForLabel(pur *core.Purpose, l cows.Label, caseID, subject string, clock *time.Time) []audit.Entry {
	tick := func() time.Time {
		t := *clock
		*clock = clock.Add(s.params.Step)
		return t
	}
	if l.Op == "Err" {
		task := ""
		if or := l.Origins(); len(or) > 0 {
			task = or[0]
		}
		role := pur.Process.TaskRole(task)
		return []audit.Entry{{
			User: s.userFor(role), Role: role, Action: "cancel",
			Task: task, Case: caseID, Time: tick(), Status: audit.Failure,
		}}
	}
	role := l.Partner
	task := l.Op
	n := 1 + s.rng.Intn(s.params.ActionsPerTask)
	actions := []string{"read", "write", "read", "write"}
	var out []audit.Entry
	for i := 0; i < n; i++ {
		section := "Clinical"
		if i%3 == 2 {
			section = "Demographics"
		}
		out = append(out, audit.Entry{
			User: s.userFor(role), Role: role, Action: actions[i%len(actions)],
			Object: policy.Object{Subject: subject, Path: []string{"EPR", section}},
			Task:   task, Case: caseID, Time: tick(), Status: audit.Success,
		})
	}
	return out
}

// HospitalDay generates a day of audit load shaped like the paper's
// motivating statistic: opens record-accesses across cases until at
// least `opens` entries exist (Geneva University Hospitals: >20,000 per
// day, Section 1). It returns the trail and the number of cases used.
func HospitalDay(reg *core.Registry, prefix string, opens int, seed int64) (*audit.Trail, int, error) {
	params := DefaultTrailParams(seed, 0, prefix)
	params.Step = 2 * time.Second
	sim := NewSimulator(reg, params)
	pur := reg.ForCase(prefix + "-0")
	if pur == nil {
		return nil, 0, fmt.Errorf("workload: case prefix %q resolves no purpose", prefix)
	}
	var all []audit.Entry
	clock := params.Start
	cases := 0
	for len(all) < opens {
		cases++
		caseID := fmt.Sprintf("%s-%d", prefix, cases)
		entries, err := sim.simulateCase(pur, caseID, &clock)
		if err != nil {
			return nil, 0, err
		}
		all = append(all, entries...)
	}
	return audit.NewTrail(all), cases, nil
}

// ManyCases generates exactly `cases` valid process instances under the
// purpose bound to prefix — the case-count-controlled companion of
// HospitalDay (which is entry-count-controlled), used by the parallel
// benchmarks to sweep worker counts over a fixed case population.
func ManyCases(reg *core.Registry, prefix string, cases int, seed int64) (*audit.Trail, error) {
	params := DefaultTrailParams(seed, cases, prefix)
	params.Step = 2 * time.Second
	return NewSimulator(reg, params).Generate()
}
