package workload

import (
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
)

// fixtureEntries builds a 5-task case with one multi-action task.
func fixtureEntries() []audit.Entry {
	base := time.Date(2026, 6, 1, 9, 0, 0, 0, time.UTC)
	mk := func(i int, task string, st audit.Status) audit.Entry {
		return audit.Entry{
			User: "u", Role: "R0", Action: "read",
			Object: policy.Object{Subject: "P1", Path: []string{"EPR", "Clinical"}},
			Task:   task, Case: "IJ-1",
			Time: base.Add(time.Duration(i) * time.Minute), Status: st,
		}
	}
	return []audit.Entry{
		mk(0, "T01", audit.Success),
		mk(1, "T02", audit.Success),
		mk(2, "T02", audit.Success), // second action within T02
		mk(3, "T03", audit.Success),
		mk(4, "T04", audit.Success),
	}
}

func TestInjectSkipTask(t *testing.T) {
	inj := NewInjector(1)
	out, ok := inj.Inject(SkipTask, fixtureEntries())
	if !ok {
		t.Fatalf("not applicable")
	}
	if len(out) >= len(fixtureEntries()) {
		t.Fatalf("nothing removed: %d entries", len(out))
	}
	// First and last tasks survive.
	if out[0].Task != "T01" || out[len(out)-1].Task != "T04" {
		t.Fatalf("skip removed a boundary task: %v .. %v", out[0].Task, out[len(out)-1].Task)
	}
	// Chronological order preserved.
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestInjectSwapAdjacent(t *testing.T) {
	inj := NewInjector(2)
	src := fixtureEntries()
	out, ok := inj.Inject(SwapAdjacent, src)
	if !ok {
		t.Fatalf("not applicable")
	}
	if len(out) != len(src) {
		t.Fatalf("length changed")
	}
	// The task multiset is unchanged, order differs.
	count := map[string]int{}
	for _, e := range out {
		count[e.Task]++
	}
	if count["T02"] != 2 || count["T01"] != 1 {
		t.Fatalf("multiset changed: %v", count)
	}
	same := true
	for i := range out {
		if out[i].Task != src[i].Task {
			same = false
		}
	}
	if same {
		t.Fatalf("no swap happened")
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestInjectWrongRoleAndForeignTask(t *testing.T) {
	inj := NewInjector(3)
	out, ok := inj.Inject(WrongRole, fixtureEntries())
	if !ok {
		t.Fatalf("not applicable")
	}
	found := false
	for _, e := range out {
		if e.Role == "Intruder" && e.User == "mallory" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no role rewritten")
	}

	out, ok = inj.Inject(ForeignTask, fixtureEntries())
	if !ok {
		t.Fatalf("not applicable")
	}
	found = false
	for _, e := range out {
		if e.Task == "T99x" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no task rewritten")
	}
}

func TestInjectRepurpose(t *testing.T) {
	inj := NewInjector(4)
	out, ok := inj.Inject(Repurpose, fixtureEntries())
	if !ok {
		t.Fatalf("not applicable")
	}
	if len(out) != 1 {
		t.Fatalf("repurpose should emit a single isolated entry, got %d", len(out))
	}
	if out[0].Case == "IJ-1" {
		t.Fatalf("case id not freshened")
	}
	if out[0].Task == "T01" {
		t.Fatalf("repurpose picked the initial task (would be a valid prefix)")
	}
}

func TestInjectFakeFailure(t *testing.T) {
	inj := NewInjector(5)
	src := fixtureEntries()
	out, ok := inj.Inject(FakeFailure, src)
	if !ok {
		t.Fatalf("not applicable")
	}
	if len(out) != len(src)+1 {
		t.Fatalf("length = %d, want %d", len(out), len(src)+1)
	}
	failures := 0
	for _, e := range out {
		if e.Status == audit.Failure {
			failures++
		}
	}
	if failures != 1 {
		t.Fatalf("failures = %d", failures)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Time.Before(out[i-1].Time) {
			t.Fatalf("order broken at %d", i)
		}
	}
}

func TestInjectInapplicable(t *testing.T) {
	inj := NewInjector(6)
	if _, ok := inj.Inject(SkipTask, nil); ok {
		t.Fatalf("skip on empty applicable")
	}
	one := fixtureEntries()[:1]
	if _, ok := inj.Inject(SkipTask, one); ok {
		t.Fatalf("skip on single-task trail applicable")
	}
	if _, ok := inj.Inject(SwapAdjacent, one); ok {
		t.Fatalf("swap on single entry applicable")
	}
	if _, ok := inj.Inject(Repurpose, one); ok {
		t.Fatalf("repurpose on single-task trail applicable")
	}
	if _, ok := inj.Inject(ViolationKind(99), fixtureEntries()); ok {
		t.Fatalf("unknown kind applicable")
	}
}

func TestViolationKindStrings(t *testing.T) {
	want := map[ViolationKind]string{
		SkipTask:     "skip-task",
		SwapAdjacent: "swap-adjacent",
		WrongRole:    "wrong-role",
		ForeignTask:  "foreign-task",
		Repurpose:    "re-purpose",
		FakeFailure:  "fake-failure",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if ViolationKind(42).String() == "" {
		t.Errorf("unknown kind has empty string")
	}
}
