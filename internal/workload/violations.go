package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/audit"
)

// ViolationKind enumerates the injectors used by the detection
// experiments (P5): each takes a valid case slice and perturbs it into a
// (usually) non-compliant one. The kinds are chosen to separate the
// detection capabilities of Algorithm 1 from Petri-net token replay:
// control-flow violations are visible to both; role violations are
// invisible to conformance checking (paper Section 6); re-purposing is
// the paper's motivating attack.
type ViolationKind int

const (
	// SkipTask removes all entries of one mid-trail task.
	SkipTask ViolationKind = iota
	// SwapAdjacent swaps two adjacent entries of different tasks.
	SwapAdjacent
	// WrongRole relabels one entry's role (and user) with an
	// unrelated role.
	WrongRole
	// ForeignTask rewrites one entry's task to a task of another
	// process.
	ForeignTask
	// Repurpose duplicates the first entry under a fresh case of the
	// same purpose — an access claiming a process instance that never
	// ran (the paper's HT-11).
	Repurpose
	// FakeFailure inserts a failure entry for a task with no error
	// boundary.
	FakeFailure
	// NumViolationKinds counts the kinds.
	NumViolationKinds
)

// String names the kind.
func (k ViolationKind) String() string {
	switch k {
	case SkipTask:
		return "skip-task"
	case SwapAdjacent:
		return "swap-adjacent"
	case WrongRole:
		return "wrong-role"
	case ForeignTask:
		return "foreign-task"
	case Repurpose:
		return "re-purpose"
	case FakeFailure:
		return "fake-failure"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// Injector perturbs valid case slices.
type Injector struct {
	rng *rand.Rand
	// UnrelatedRole is the role used by WrongRole (default "Intruder").
	UnrelatedRole string
	// ForeignTaskID is the task used by ForeignTask (default "T99x").
	ForeignTaskID string
}

// NewInjector builds an injector with the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), UnrelatedRole: "Intruder", ForeignTaskID: "T99x"}
}

// Inject applies the kind to a copy of the entries. It returns the
// perturbed entries and whether the perturbation was applicable (some
// kinds need minimum length or task variety). The perturbed slice keeps
// chronological order (timestamps are preserved positionally).
func (inj *Injector) Inject(kind ViolationKind, entries []audit.Entry) ([]audit.Entry, bool) {
	if len(entries) == 0 {
		return nil, false
	}
	out := append([]audit.Entry(nil), entries...)
	switch kind {
	case SkipTask:
		// Pick a task that is neither the first nor only task.
		tasks := taskSpans(out)
		if len(tasks) < 3 {
			return nil, false
		}
		victim := tasks[1+inj.rng.Intn(len(tasks)-2)] // not first, not last
		var kept []audit.Entry
		for _, e := range out {
			if e.Task != victim.task {
				kept = append(kept, e)
			}
		}
		return renumberTimes(kept, entries), true
	case SwapAdjacent:
		var idxs []int
		for i := 0; i+1 < len(out); i++ {
			if out[i].Task != out[i+1].Task {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			return nil, false
		}
		i := idxs[inj.rng.Intn(len(idxs))]
		out[i], out[i+1] = out[i+1], out[i]
		return renumberTimes(out, entries), true
	case WrongRole:
		i := inj.rng.Intn(len(out))
		out[i].Role = inj.UnrelatedRole
		out[i].User = "mallory"
		return out, true
	case ForeignTask:
		i := inj.rng.Intn(len(out))
		out[i].Task = inj.ForeignTaskID
		return out, true
	case Repurpose:
		// An isolated access mid-process under a fresh case id: pick a
		// non-initial task occurrence.
		tasks := taskSpans(out)
		if len(tasks) < 2 {
			return nil, false
		}
		src := out[tasks[1+inj.rng.Intn(len(tasks)-1)].start]
		src.Case = src.Case + "9999" // fresh case id, same code prefix
		return []audit.Entry{src}, true
	case FakeFailure:
		i := inj.rng.Intn(len(out))
		f := out[i]
		f.Status = audit.Failure
		f.Action = "cancel"
		// Insert right after i.
		out = append(out[:i+1], append([]audit.Entry{f}, out[i+1:]...)...)
		return renumberTimes(out, entries), true
	default:
		return nil, false
	}
}

type span struct {
	task  string
	start int
}

// taskSpans lists maximal runs of consecutive same-task entries.
func taskSpans(entries []audit.Entry) []span {
	var out []span
	prev := ""
	for i, e := range entries {
		if e.Task != prev {
			out = append(out, span{task: e.Task, start: i})
			prev = e.Task
		}
	}
	return out
}

// renumberTimes rebases timestamps onto the original sequence so the
// perturbed slice stays chronologically ordered.
func renumberTimes(out, original []audit.Entry) []audit.Entry {
	for i := range out {
		j := i
		if j >= len(original) {
			j = len(original) - 1
		}
		out[i].Time = original[j].Time
		if i >= len(original) {
			out[i].Time = out[i].Time.Add(1)
		}
	}
	return out
}
