package workload

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/bpmn"
	"repro/internal/core"
	"repro/internal/hospital"
	"repro/internal/petri"
	"repro/internal/policy"
)

// TestGeneratedProcessesValidate fuzzes the generator over seeds and
// shapes: every output must build (validity incl. well-foundedness is
// enforced by bpmn.Build) and be encodable.
func TestGeneratedProcessesValidate(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		for _, tasks := range []int{1, 5, 20, 60} {
			p := DefaultProcParams(fmt.Sprintf("Gen%d_%d", seed, tasks), seed, tasks)
			if seed%3 == 0 {
				p.Pools = 3
			}
			if seed%4 == 0 {
				p.ORWeight = 4
				p.LoopWeight = 3
			}
			proc, err := Generate(p)
			if err != nil {
				t.Fatalf("seed=%d tasks=%d: %v", seed, tasks, err)
			}
			if got := proc.Stats().Tasks; got < tasks {
				t.Errorf("seed=%d tasks=%d: generated only %d tasks", seed, tasks, got)
			}
			reg := core.NewRegistry()
			if _, err := reg.Register(proc, fmt.Sprintf("Z%d", seed)); err != nil {
				t.Fatalf("seed=%d tasks=%d: encoding: %v", seed, tasks, err)
			}
		}
	}
}

func TestGenerateRejectsBadParams(t *testing.T) {
	if _, err := Generate(ProcParams{Name: "x", Tasks: 0}); err == nil {
		t.Fatalf("zero tasks accepted")
	}
}

// TestSimulatedTrailsAreCompliant is the central agreement property:
// every simulated case is a valid execution, so Algorithm 1 must accept
// it (soundness of the simulator, completeness of the checker).
func TestSimulatedTrailsAreCompliant(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		proc := MustGenerate(DefaultProcParams(fmt.Sprintf("Sim%d", seed), seed, 12))
		reg := core.NewRegistry()
		reg.MustRegister(proc, "SM")
		params := DefaultTrailParams(seed, 4, "SM")
		sim := NewSimulator(reg, params)
		trail, err := sim.Generate()
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if trail.Len() == 0 {
			t.Fatalf("seed=%d: empty trail", seed)
		}
		checker := core.NewChecker(reg, nil)
		reports, err := checker.CheckTrail(trail)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(reports) != 4 {
			t.Fatalf("seed=%d: %d reports", seed, len(reports))
		}
		for _, rep := range reports {
			if !rep.Compliant {
				t.Errorf("seed=%d: simulated case rejected: %s", seed, rep)
			}
		}
	}
}

// TestSimulatedHospitalTrails simulates on the paper's own process.
func TestSimulatedHospitalTrails(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(sc.Registry, DefaultTrailParams(7, 5, hospital.TreatmentCode))
	trail, err := sim.Generate()
	if err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(sc.Registry, roles)
	reports, err := checker.CheckTrail(trail)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Compliant {
			t.Errorf("simulated treatment case rejected: %s", rep)
		}
	}
}

// TestInjectedViolationsDetected applies every injector kind to valid
// simulated cases and checks Algorithm 1's verdict flips (where the
// perturbation is applicable). WrongRole is only a violation when a
// role hierarchy separates roles — the checker gets one here.
func TestInjectedViolationsDetected(t *testing.T) {
	proc := MustGenerate(DefaultProcParams("Inj", 3, 10))
	reg := core.NewRegistry()
	reg.MustRegister(proc, "IJ")
	roles := policy.NewRoleHierarchy()
	if err := roles.Add("R0"); err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(reg, roles)

	sim := NewSimulator(reg, DefaultTrailParams(11, 6, "IJ"))
	trail, err := sim.Generate()
	if err != nil {
		t.Fatal(err)
	}

	inj := NewInjector(42)
	applied, detected := 0, 0
	for _, caseID := range trail.Cases() {
		entries := trail.ByCase(caseID).Entries()
		base, err := checker.CheckCase(trail, caseID)
		if err != nil {
			t.Fatal(err)
		}
		if !base.Compliant {
			t.Fatalf("baseline case %s not compliant", caseID)
		}
		for kind := ViolationKind(0); kind < NumViolationKinds; kind++ {
			mut, ok := inj.Inject(kind, entries)
			if !ok {
				continue
			}
			applied++
			mt := audit.NewTrail(mut)
			mutCase := mt.Cases()[len(mt.Cases())-1]
			rep, err := checker.CheckCase(mt, mutCase)
			if err != nil {
				t.Fatalf("%s on %s: %v", kind, caseID, err)
			}
			if !rep.Compliant {
				detected++
			} else if kind == WrongRole || kind == ForeignTask || kind == FakeFailure || kind == Repurpose {
				// These kinds are violations by construction;
				// Skip/Swap can occasionally stay valid (parallel
				// branches, optional OR paths).
				t.Errorf("%s on %s not detected: %s", kind, caseID, rep)
			}
		}
	}
	if applied == 0 {
		t.Fatalf("no injections applied")
	}
	if detected*10 < applied*6 {
		t.Errorf("detected only %d of %d injections", detected, applied)
	}
}

// TestDetectionGapVersusTokenReplay quantifies the Section 6 argument:
// token replay misses every wrong-role injection Algorithm 1 catches.
func TestDetectionGapVersusTokenReplay(t *testing.T) {
	proc := MustGenerate(DefaultProcParams("Gap", 5, 8))
	reg := core.NewRegistry()
	reg.MustRegister(proc, "GP")
	roles := policy.NewRoleHierarchy()
	if err := roles.Add("R0"); err != nil {
		t.Fatal(err)
	}
	checker := core.NewChecker(reg, roles)
	net, err := petri.FromBPMN(proc)
	if err != nil {
		t.Fatal(err)
	}
	replayer := &petri.Replayer{Net: net}

	sim := NewSimulator(reg, DefaultTrailParams(13, 5, "GP"))
	trail, err := sim.Generate()
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(99)

	for _, caseID := range trail.Cases() {
		entries := trail.ByCase(caseID).Entries()
		mut, ok := inj.Inject(WrongRole, entries)
		if !ok {
			continue
		}
		mt := audit.NewTrail(mut)
		rep, err := checker.CheckCase(mt, caseID)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Compliant {
			t.Fatalf("Algorithm 1 missed a wrong-role injection in %s", caseID)
		}
		res, err := replayer.ReplayCase(mt, caseID)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flagged() {
			t.Fatalf("token replay unexpectedly saw a role violation in %s: %+v", caseID, res)
		}
	}
}

// TestHospitalDayScale generates the Section 1 daily load shape.
func TestHospitalDayScale(t *testing.T) {
	if testing.Short() {
		t.Skip("hospital-day generation is sized for benchmarks")
	}
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	trail, cases, err := HospitalDay(sc.Registry, hospital.TreatmentCode, 2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if trail.Len() < 2000 {
		t.Fatalf("opens = %d, want ≥ 2000", trail.Len())
	}
	if cases < 10 {
		t.Fatalf("cases = %d", cases)
	}
	// Spot-check a few cases replay cleanly.
	roles, _ := hospital.Roles()
	checker := core.NewChecker(sc.Registry, roles)
	for i, caseID := range trail.Cases() {
		if i >= 5 {
			break
		}
		rep, err := checker.CheckCase(trail, caseID)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Compliant {
			t.Errorf("day case %s rejected: %s", caseID, rep)
		}
	}
}

func TestManyCases(t *testing.T) {
	sc, err := hospital.NewScenario()
	if err != nil {
		t.Fatal(err)
	}
	trail, err := ManyCases(sc.Registry, hospital.TreatmentCode, 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(trail.Cases()); got != 12 {
		t.Fatalf("cases = %d, want 12", got)
	}
	roles, _ := hospital.Roles()
	checker := core.NewChecker(sc.Registry, roles)
	reports, err := checker.CheckTrailParallel(trail, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range reports {
		if !rep.Compliant {
			t.Errorf("generated case %s rejected: %s", rep.Case, rep)
		}
	}
}

// TestGeneratedProcessesJSONRoundTrip: every generated process survives
// the JSON interchange format with structure and routing intact.
func TestGeneratedProcessesJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for seed := int64(1); seed <= 8; seed++ {
		p := DefaultProcParams(fmt.Sprintf("RT%d", seed), seed, 15)
		p.Pools = 1 + int(seed%3)
		proc := MustGenerate(p)
		buf.Reset()
		if err := proc.EncodeJSON(&buf); err != nil {
			t.Fatalf("seed=%d: encode: %v", seed, err)
		}
		re, err := bpmn.DecodeJSON(&buf)
		if err != nil {
			t.Fatalf("seed=%d: decode: %v", seed, err)
		}
		if re.Stats() != proc.Stats() {
			t.Fatalf("seed=%d: stats changed: %+v vs %+v", seed, re.Stats(), proc.Stats())
		}
		for split, join := range proc.ORPairs() {
			if re.ORJoin(split) != join {
				t.Fatalf("seed=%d: OR pairing lost for %s", seed, split)
			}
		}
		// And the round-tripped process still encodes and simulates.
		reg := core.NewRegistry()
		reg.MustRegister(re, "RT")
		trail, err := NewSimulator(reg, DefaultTrailParams(seed, 1, "RT")).Generate()
		if err != nil {
			t.Fatalf("seed=%d: simulate after round trip: %v", seed, err)
		}
		rep, err := core.NewChecker(reg, nil).CheckCase(trail, trail.Cases()[0])
		if err != nil || !rep.Compliant {
			t.Fatalf("seed=%d: replay after round trip: %v %v", seed, rep, err)
		}
	}
}
