// Package workload synthesizes the experimental inputs the paper's
// unreported "first experiments" (Section 7) would have needed: random
// well-founded BPMN processes, valid audit trails simulated from their
// COWS semantics, violation injectors for detection studies, and a
// hospital-scale load generator calibrated to the paper's motivating
// figure of 20,000 record opens per day at the Geneva University
// Hospitals (Section 1).
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/bpmn"
)

// ProcParams parameterizes random process generation. Generated
// processes are block-structured, which guarantees validity and
// well-foundedness by construction: a block is a sequence of fragments,
// and a fragment is a task, an exclusive/parallel/inclusive block of
// sub-blocks, or a task-guarded loop.
type ProcParams struct {
	Name string
	Seed int64
	// Tasks is the approximate number of tasks to generate (the
	// generator stops opening new fragments once reached).
	Tasks int
	// Pools is the number of sequential pool segments, connected by
	// message flows (1 = single pool).
	Pools int
	// XORWeight, ANDWeight, ORWeight, LoopWeight are the relative
	// weights of compound fragments versus plain tasks (TaskWeight).
	TaskWeight, XORWeight, ANDWeight, ORWeight, LoopWeight int
	// MaxBranch bounds gateway fan-out (≥2; OR fan-out additionally
	// respects bpmn.MaxORBranches).
	MaxBranch int
	// FallibleProb is the probability a task gets an error boundary
	// looping back to the segment's first task.
	FallibleProb float64
	// MaxDepth bounds fragment nesting.
	MaxDepth int
}

// DefaultProcParams returns a balanced parameterization.
func DefaultProcParams(name string, seed int64, tasks int) ProcParams {
	return ProcParams{
		Name: name, Seed: seed, Tasks: tasks, Pools: 1,
		TaskWeight: 6, XORWeight: 2, ANDWeight: 1, ORWeight: 1, LoopWeight: 1,
		MaxBranch: 3, FallibleProb: 0.1, MaxDepth: 3,
	}
}

// procGen carries generation state.
type procGen struct {
	p       ProcParams
	rng     *rand.Rand
	b       *bpmn.Builder
	nTask   int
	nGate   int
	nEvent  int
	pool    string
	anchor  string // segment's first task (error-boundary target)
	orPairs int
}

// Generate builds a random well-founded process.
func Generate(p ProcParams) (*bpmn.Process, error) {
	if p.Tasks < 1 {
		return nil, fmt.Errorf("workload: need at least 1 task")
	}
	if p.Pools < 1 {
		p.Pools = 1
	}
	if p.MaxBranch < 2 {
		p.MaxBranch = 2
	}
	if p.MaxDepth < 1 {
		p.MaxDepth = 1
	}
	if p.TaskWeight+p.XORWeight+p.ANDWeight+p.ORWeight+p.LoopWeight <= 0 {
		p.TaskWeight = 1
	}
	g := &procGen{p: p, rng: rand.New(rand.NewSource(p.Seed)), b: bpmn.NewBuilder(p.Name)}

	pools := make([]string, p.Pools)
	for i := range pools {
		pools[i] = fmt.Sprintf("R%d", i)
		g.b.Pool(pools[i])
	}

	// Sequential pool segments: start in pool 0; each segment ends in
	// a message end feeding the next segment's message start; the last
	// segment ends in a plain end.
	perSegment := p.Tasks / p.Pools
	if perSegment < 1 {
		perSegment = 1
	}
	entry := ""
	for i, pool := range pools {
		g.pool = pool
		var segStart string
		if i == 0 {
			segStart = g.newEvent("S")
			g.b.Start(segStart, pool)
		} else {
			segStart = g.newEvent("M")
			g.b.MessageStart(segStart, pool)
			g.b.Msg(entry, segStart)
		}
		budget := perSegment
		if i == len(pools)-1 {
			budget = p.Tasks - g.nTask // remainder
			if budget < 1 {
				budget = 1
			}
		}
		g.anchor = ""
		last := g.block(segStart, budget, p.MaxDepth)
		if i == len(pools)-1 {
			end := g.newEvent("E")
			g.b.End(end, pool)
			g.b.Seq(last, end)
		} else {
			end := g.newEvent("X")
			g.b.MessageEnd(end, pool)
			g.b.Seq(last, end)
			entry = end
		}
	}
	return g.b.Build()
}

// MustGenerate is Generate that panics on error (benchmarks).
func MustGenerate(p ProcParams) *bpmn.Process {
	proc, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return proc
}

func (g *procGen) newTask() string {
	g.nTask++
	return fmt.Sprintf("T%02d", g.nTask)
}

func (g *procGen) newGate() string {
	g.nGate++
	return fmt.Sprintf("G%02d", g.nGate)
}

func (g *procGen) newEvent(prefix string) string {
	g.nEvent++
	return fmt.Sprintf("%s%02d", prefix, g.nEvent)
}

// block emits a sequence of fragments after `from` until the block has
// actually produced `budget` new tasks (fragments may emit fewer tasks
// than asked — integer branch division — so the loop is driven by the
// real task counter), and returns the last element id.
func (g *procGen) block(from string, budget, depth int) string {
	target := g.nTask + budget
	cur := from
	for g.nTask < target {
		n := g.fragmentBudget(target-g.nTask, depth)
		cur = g.fragment(cur, n, depth)
	}
	return cur
}

// fragmentBudget decides how many of the remaining tasks the next
// fragment consumes.
func (g *procGen) fragmentBudget(budget, depth int) int {
	if budget <= 1 || depth <= 1 {
		return 1
	}
	n := 1 + g.rng.Intn(budget)
	return n
}

// fragment emits one fragment consuming ~n tasks after cur, returning
// its exit element.
func (g *procGen) fragment(cur string, n, depth int) string {
	if n <= 1 || depth <= 1 {
		return g.task(cur)
	}
	total := g.p.TaskWeight + g.p.XORWeight + g.p.ANDWeight + g.p.ORWeight + g.p.LoopWeight
	pick := g.rng.Intn(total)
	switch {
	case pick < g.p.TaskWeight:
		return g.task(cur)
	case pick < g.p.TaskWeight+g.p.XORWeight:
		return g.gateway(cur, bpmn.KindGatewayXOR, n, depth)
	case pick < g.p.TaskWeight+g.p.XORWeight+g.p.ANDWeight:
		return g.gateway(cur, bpmn.KindGatewayAND, n, depth)
	case pick < g.p.TaskWeight+g.p.XORWeight+g.p.ANDWeight+g.p.ORWeight:
		return g.gateway(cur, bpmn.KindGatewayOR, n, depth)
	default:
		return g.loop(cur, n, depth)
	}
}

// task emits one task, possibly fallible (error boundary to the
// segment's first task, mirroring the paper's T02→T01).
func (g *procGen) task(cur string) string {
	id := g.newTask()
	if g.anchor != "" && g.rng.Float64() < g.p.FallibleProb {
		g.b.FallibleTask(id, g.pool, "", g.anchor)
	} else {
		g.b.Task(id, g.pool, "")
	}
	if g.anchor == "" {
		g.anchor = id
	}
	g.b.Seq(cur, id)
	return id
}

// gateway emits a split of the given kind with 2..MaxBranch branches, a
// matching join, and recursive blocks on each branch.
func (g *procGen) gateway(cur string, kind bpmn.Kind, n, depth int) string {
	maxBranch := g.p.MaxBranch
	if kind == bpmn.KindGatewayOR && maxBranch > bpmn.MaxORBranches {
		maxBranch = bpmn.MaxORBranches
	}
	branches := 2 + g.rng.Intn(maxBranch-1)
	if branches > n {
		branches = n
	}
	if branches < 2 {
		return g.task(cur)
	}
	split, join := g.newGate(), g.newGate()
	switch kind {
	case bpmn.KindGatewayXOR:
		g.b.XOR(split, g.pool)
		g.b.XOR(join, g.pool)
	case bpmn.KindGatewayAND:
		g.b.AND(split, g.pool)
		g.b.AND(join, g.pool)
	case bpmn.KindGatewayOR:
		g.b.OR(split, g.pool)
		g.b.OR(join, g.pool)
		g.b.PairOR(split, join)
		g.orPairs++
	}
	g.b.Seq(cur, split)
	per := n / branches
	if per < 1 {
		per = 1
	}
	for i := 0; i < branches; i++ {
		// Branch bodies must not be fallible toward an anchor outside
		// the branch for OR/AND joins (the error path would bypass the
		// join and corrupt its token accounting), so suspend anchors.
		savedAnchor := g.anchor
		if kind != bpmn.KindGatewayXOR {
			g.anchor = "-" // sentinel: no fallible tasks inside
		}
		exit := g.branchBlock(split, per, depth-1, kind != bpmn.KindGatewayXOR)
		g.anchor = savedAnchor
		g.b.Seq(exit, join)
	}
	return join
}

// branchBlock emits a linear block for a gateway branch. Inside AND/OR
// branches only plain tasks are generated (noFallible), keeping join
// token accounting exact.
func (g *procGen) branchBlock(from string, budget, depth int, noFallible bool) string {
	cur := from
	for i := 0; i < budget; i++ {
		id := g.newTask()
		if !noFallible && g.anchor != "" && g.anchor != "-" && g.rng.Float64() < g.p.FallibleProb {
			g.b.FallibleTask(id, g.pool, "", g.anchor)
		} else {
			g.b.Task(id, g.pool, "")
		}
		g.b.Seq(cur, id)
		cur = id
	}
	if cur == from {
		// A branch needs at least one element distinct from the split.
		id := g.newTask()
		g.b.Task(id, g.pool, "")
		g.b.Seq(cur, id)
		cur = id
	}
	return cur
}

// loop emits a merge-gate → body → split-gate cycle (well-founded: the
// cycle contains the body's tasks) followed by an exit task.
func (g *procGen) loop(cur string, n, depth int) string {
	merge := g.newGate()
	g.b.XOR(merge, g.pool)
	g.b.Seq(cur, merge)
	body := g.task(merge)
	if n > 1 {
		body = g.block(body, n-1, depth-1)
	}
	split := g.newGate()
	g.b.XOR(split, g.pool)
	g.b.Seq(body, split)
	g.b.Seq(split, merge)
	exit := g.newTask()
	g.b.Task(exit, g.pool, "")
	g.b.Seq(split, exit)
	return exit
}
