package bpmn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is the JSON interchange form of a process, used by the command
// line tools. Marshal a *Process with EncodeJSON; DecodeJSON rebuilds
// and re-validates it through the normal Builder path.
type Spec struct {
	Name     string     `json:"name"`
	Pools    []string   `json:"pools"`
	Elements []ElemSpec `json:"elements"`
	Flows    []FlowSpec `json:"flows"`
	ORPairs  []ORPair   `json:"orPairs,omitempty"`
}

// ElemSpec is the JSON form of an element.
type ElemSpec struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Pool    string `json:"pool"`
	Name    string `json:"name,omitempty"`
	OnError string `json:"onError,omitempty"`
}

// FlowSpec is the JSON form of a flow.
type FlowSpec struct {
	From string `json:"from"`
	To   string `json:"to"`
	Kind string `json:"kind"` // "sequence" or "message"
}

// ORPair is the JSON form of an inclusive split/join pairing.
type ORPair struct {
	Split string `json:"split"`
	Join  string `json:"join"`
}

var kindNames = map[Kind]string{
	KindStart:        "start",
	KindMessageStart: "messageStart",
	KindEnd:          "end",
	KindMessageEnd:   "messageEnd",
	KindTask:         "task",
	KindGatewayXOR:   "xor",
	KindGatewayAND:   "and",
	KindGatewayOR:    "or",
}

var kindByName = func() map[string]Kind {
	m := map[string]Kind{}
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// ToSpec converts a validated process to its interchange form.
func (p *Process) ToSpec() Spec {
	spec := Spec{Name: p.Name, Pools: append([]string(nil), p.pools...)}
	for _, e := range p.elements {
		spec.Elements = append(spec.Elements, ElemSpec{
			ID: e.ID, Kind: kindNames[e.Kind], Pool: e.Pool, Name: e.Name, OnError: e.OnError,
		})
	}
	for _, f := range p.flows {
		spec.Flows = append(spec.Flows, FlowSpec{From: f.From, To: f.To, Kind: f.Kind.String()})
	}
	for split, join := range p.orPairs {
		spec.ORPairs = append(spec.ORPairs, ORPair{Split: split, Join: join})
	}
	return spec
}

// EncodeJSON writes the process as indented JSON.
func (p *Process) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p.ToSpec()); err != nil {
		return fmt.Errorf("bpmn: encoding process %q: %w", p.Name, err)
	}
	return nil
}

// FromSpec rebuilds (and re-validates) a process from its interchange
// form.
func FromSpec(spec Spec) (*Process, error) {
	b := NewBuilder(spec.Name)
	for _, pool := range spec.Pools {
		b.Pool(pool)
	}
	for _, e := range spec.Elements {
		kind, ok := kindByName[e.Kind]
		if !ok {
			return nil, fmt.Errorf("bpmn: unknown element kind %q for %q", e.Kind, e.ID)
		}
		el := &Element{ID: e.ID, Kind: kind, Pool: e.Pool, Name: e.Name, OnError: e.OnError}
		b.add(el)
	}
	for _, f := range spec.Flows {
		switch f.Kind {
		case "sequence", "":
			b.Seq(f.From, f.To)
		case "message":
			b.Msg(f.From, f.To)
		default:
			return nil, fmt.Errorf("bpmn: unknown flow kind %q for %s→%s", f.Kind, f.From, f.To)
		}
	}
	for _, pr := range spec.ORPairs {
		b.PairOR(pr.Split, pr.Join)
	}
	return b.Build()
}

// DecodeJSON reads one process from JSON.
func DecodeJSON(r io.Reader) (*Process, error) {
	var spec Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("bpmn: decoding process JSON: %w", err)
	}
	return FromSpec(spec)
}
