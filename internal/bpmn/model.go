// Package bpmn models the fragment of the Business Process Modeling
// Notation the paper uses to describe organizational processes
// (Section 2, Section 3.3): pools, start/end events (plain and message),
// tasks with optional error boundary events, exclusive/parallel/inclusive
// gateways, sequence flows and message flows.
//
// A Process is a validated, immutable-after-Build value constructed with
// a Builder. Validation enforces the structural rules the paper's
// results rely on, in particular well-foundedness (Section 5): every
// cycle must contain an observable activity (a task), otherwise the
// encoded transition system is not finitely observable and Algorithm 1's
// termination guarantee is void.
package bpmn

import (
	"fmt"
	"sort"
)

// Kind enumerates BPMN element kinds in the supported fragment.
type Kind int

const (
	// KindStart is a plain start event: it injects the case's initial
	// token.
	KindStart Kind = iota
	// KindMessageStart is a start event triggered by a message flow
	// from another pool.
	KindMessageStart
	// KindEnd is a plain end event: it consumes a token.
	KindEnd
	// KindMessageEnd is an end event that sends a message to another
	// pool's message start event or inclusive join.
	KindMessageEnd
	// KindTask is an activity performed by the pool's role. Task
	// executions are the observable labels r·q of the paper.
	KindTask
	// KindGatewayXOR is an exclusive decision gateway: exactly one
	// outgoing branch is taken. With multiple incoming flows it also
	// acts as an exclusive merge.
	KindGatewayXOR
	// KindGatewayAND is a parallel gateway: as a split it activates
	// all branches, as a join it waits for all incoming tokens.
	KindGatewayAND
	// KindGatewayOR is an inclusive decision gateway: as a split it
	// activates any non-empty subset of branches; as a join it must be
	// paired with its split so it knows which subset to await.
	KindGatewayOR
)

// String returns the BPMN name of the kind.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "startEvent"
	case KindMessageStart:
		return "messageStartEvent"
	case KindEnd:
		return "endEvent"
	case KindMessageEnd:
		return "messageEndEvent"
	case KindTask:
		return "task"
	case KindGatewayXOR:
		return "exclusiveGateway"
	case KindGatewayAND:
		return "parallelGateway"
	case KindGatewayOR:
		return "inclusiveGateway"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsGateway reports whether the kind is one of the gateway kinds.
func (k Kind) IsGateway() bool {
	return k == KindGatewayXOR || k == KindGatewayAND || k == KindGatewayOR
}

// IsStart reports whether the kind starts a pool's flow.
func (k Kind) IsStart() bool { return k == KindStart || k == KindMessageStart }

// IsEnd reports whether the kind terminates a flow.
func (k Kind) IsEnd() bool { return k == KindEnd || k == KindMessageEnd }

// Element is one node of the process diagram.
type Element struct {
	// ID is the element's identifier, unique within the process and
	// usable as a COWS operation name (e.g. "T01", "G1", "S1").
	ID string
	// Kind is the element kind.
	Kind Kind
	// Pool is the pool (role) the element belongs to. Every BPMN pool
	// corresponds to a role of the data protection policy
	// (Section 3.1).
	Pool string
	// Name is an optional human-readable description.
	Name string
	// OnError, for tasks only, is the element that handles the task's
	// error boundary event. A task with OnError set may fail; the
	// failure is the observable sys·Err label. Empty means the task
	// cannot fail (a failure entry in a trail is then an
	// infringement).
	OnError string
}

// FlowKind distinguishes sequence flows (within a pool) from message
// flows (across pools).
type FlowKind int

const (
	// FlowSeq is a sequence flow.
	FlowSeq FlowKind = iota
	// FlowMsg is a message flow.
	FlowMsg
)

// String returns "sequence" or "message".
func (k FlowKind) String() string {
	if k == FlowMsg {
		return "message"
	}
	return "sequence"
}

// Flow is a directed edge of the process diagram.
type Flow struct {
	From string
	To   string
	Kind FlowKind
}

// Process is a validated organizational process: the operational
// definition of a purpose (Section 3.1). Build one with a Builder; the
// zero value is not usable.
type Process struct {
	// Name identifies the process; data protection policies refer to
	// purposes by this name.
	Name string
	// pools in declaration order.
	pools []string
	// elements in declaration order.
	elements []*Element
	byID     map[string]*Element
	flows    []Flow
	// orPairs maps each inclusive split gateway to its paired join
	// (empty if the split has no join).
	orPairs map[string]string

	// orRoutes, filled by validation, maps each paired inclusive split
	// to the routing of its branches onto its join's incoming flows.
	orRoutes map[string]orRoute

	in    map[string][]Flow // incoming flows by element
	out   map[string][]Flow // outgoing flows by element
	tasks []string          // task IDs in declaration order
}

// ORBranchJoinFlow returns, for a paired inclusive split and one of its
// branch targets, the incoming flow of the paired join on which that
// branch's token arrives (established during validation).
func (p *Process) ORBranchJoinFlow(split, branchTarget string) (Flow, bool) {
	r, ok := p.orRoutes[split]
	if !ok {
		return Flow{}, false
	}
	f, ok := r.branchToJoinFlow[branchTarget]
	return f, ok
}

// Name-accessors below are read-only views; Process is immutable after
// Build.

// Pools returns the pool (role) names in declaration order.
func (p *Process) Pools() []string { return p.pools }

// Elements returns the elements in declaration order.
func (p *Process) Elements() []*Element { return p.elements }

// Element returns the element with the given ID, or nil.
func (p *Process) Element(id string) *Element { return p.byID[id] }

// Flows returns all flows.
func (p *Process) Flows() []Flow { return p.flows }

// Incoming returns the flows into the element.
func (p *Process) Incoming(id string) []Flow { return p.in[id] }

// Outgoing returns the flows out of the element.
func (p *Process) Outgoing(id string) []Flow { return p.out[id] }

// Tasks returns the task IDs in declaration order.
func (p *Process) Tasks() []string { return p.tasks }

// HasTask reports whether id names a task of the process.
func (p *Process) HasTask(id string) bool {
	e := p.byID[id]
	return e != nil && e.Kind == KindTask
}

// TaskRole returns the pool (role) of the given task, or "" if the id is
// not a task.
func (p *Process) TaskRole(id string) string {
	e := p.byID[id]
	if e == nil || e.Kind != KindTask {
		return ""
	}
	return e.Pool
}

// ORJoin returns the paired inclusive join of the given inclusive split,
// or "" when the split is unpaired.
func (p *Process) ORJoin(split string) string { return p.orPairs[split] }

// ORPairs returns a copy of the split→join pairing map.
func (p *Process) ORPairs() map[string]string {
	out := make(map[string]string, len(p.orPairs))
	for k, v := range p.orPairs {
		out[k] = v
	}
	return out
}

// IsANDJoin reports whether id names a parallel gateway acting as a
// join (more than one incoming sequence flow). Joins receive each
// incoming token on a per-flow endpoint.
func (p *Process) IsANDJoin(id string) bool {
	e := p.byID[id]
	if e == nil || e.Kind != KindGatewayAND {
		return false
	}
	seq, _ := countKinds(p.in[id])
	return seq > 1
}

// IsORJoin reports whether id names an inclusive gateway acting as a
// join.
func (p *Process) IsORJoin(id string) bool {
	e := p.byID[id]
	if e == nil {
		return false
	}
	return isORJoin(p, e)
}

// StartEvents returns the plain (non-message) start events; these inject
// the case's initial tokens.
func (p *Process) StartEvents() []*Element {
	var out []*Element
	for _, e := range p.elements {
		if e.Kind == KindStart {
			out = append(out, e)
		}
	}
	return out
}

// Stats summarizes the process size for reports and benchmarks.
type Stats struct {
	Pools     int
	Elements  int
	Tasks     int
	Gateways  int
	Events    int
	SeqFlows  int
	MsgFlows  int
	ErrorEdge int
}

// Stats computes size statistics.
func (p *Process) Stats() Stats {
	var s Stats
	s.Pools = len(p.pools)
	s.Elements = len(p.elements)
	for _, e := range p.elements {
		switch {
		case e.Kind == KindTask:
			s.Tasks++
			if e.OnError != "" {
				s.ErrorEdge++
			}
		case e.Kind.IsGateway():
			s.Gateways++
		default:
			s.Events++
		}
	}
	for _, f := range p.flows {
		if f.Kind == FlowSeq {
			s.SeqFlows++
		} else {
			s.MsgFlows++
		}
	}
	return s
}

// RolesOfTasks returns the sorted set of roles that perform at least one
// task — the participants whose cooperation the process requires. The
// mimicry-attack discussion of Section 4 rests on this: a single user
// cannot simulate a process whose tasks span several roles.
func (p *Process) RolesOfTasks() []string {
	set := map[string]bool{}
	for _, id := range p.tasks {
		set[p.byID[id].Pool] = true
	}
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}
