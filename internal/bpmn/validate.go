package bpmn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cows"
)

// ErrNotWellFounded reports a cycle containing no task: the encoded
// transition system would admit an infinite silent run, violating the
// finitely-observable condition (Definition 8) that Algorithm 1's
// termination rests on. As the paper notes (Section 5), such processes
// are detectable directly on the diagram — which is exactly what this
// check does.
var ErrNotWellFounded = errors.New("bpmn: process is not well-founded (cycle without any task)")

// MaxORBranches caps inclusive-split fan-out: an inclusive gateway with
// k branches encodes 2^k−1 subset alternatives.
const MaxORBranches = 8

// reserved identifiers that would collide with the encoding's internal
// machinery.
var reservedIDs = map[string]bool{"Err": true, "sys": true, "plan": true, "u": true, "kill": true}

func validate(p *Process) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if p.Name == "" {
		bad("bpmn: empty process name")
	}
	if len(p.pools) == 0 {
		bad("bpmn: process has no pools")
	}
	for _, pool := range p.pools {
		if err := cows.ParseFragmentName(pool); err != nil {
			bad("bpmn: invalid pool name %q: %v", pool, err)
		}
		if reservedIDs[pool] {
			bad("bpmn: pool name %q is reserved", pool)
		}
	}

	starts := 0
	for _, e := range p.elements {
		if err := cows.ParseFragmentName(e.ID); err != nil {
			bad("bpmn: invalid element id %q: %v", e.ID, err)
			continue
		}
		if reservedIDs[e.ID] {
			bad("bpmn: element id %q is reserved", e.ID)
		}
		if e.Kind == KindStart {
			starts++
		}
		if e.OnError != "" {
			if e.Kind != KindTask {
				bad("bpmn: element %q: only tasks may have error boundary events", e.ID)
			} else if h := p.byID[e.OnError]; h == nil {
				bad("bpmn: task %q: error handler %q does not exist", e.ID, e.OnError)
			} else if h.Pool != e.Pool {
				bad("bpmn: task %q: error handler %q is in pool %q, want %q", e.ID, e.OnError, h.Pool, e.Pool)
			}
		}
	}
	if starts == 0 {
		bad("bpmn: process has no plain start event")
	}

	// Flow endpoint and pool discipline.
	for _, f := range p.flows {
		from, to := p.byID[f.From], p.byID[f.To]
		if from == nil || to == nil {
			bad("bpmn: flow %s→%s references missing element", f.From, f.To)
			continue
		}
		switch f.Kind {
		case FlowSeq:
			if from.Pool != to.Pool {
				bad("bpmn: sequence flow %s→%s crosses pools %q→%q", f.From, f.To, from.Pool, to.Pool)
			}
		case FlowMsg:
			if from.Pool == to.Pool {
				bad("bpmn: message flow %s→%s stays within pool %q", f.From, f.To, from.Pool)
			}
			if from.Kind != KindMessageEnd {
				bad("bpmn: message flow %s→%s must originate at a message end event, found %s", f.From, f.To, from.Kind)
			}
			if to.Kind != KindMessageStart && !isORJoin(p, to) {
				bad("bpmn: message flow %s→%s must target a message start event or inclusive join, found %s", f.From, f.To, to.Kind)
			}
		}
	}

	// Error-handler targets may be fed exclusively by their error edge.
	errTarget := map[string]bool{}
	for _, e := range p.elements {
		if e.OnError != "" {
			errTarget[e.OnError] = true
		}
	}

	// Degree rules.
	for _, e := range p.elements {
		inSeq, inMsg := countKinds(p.in[e.ID])
		outSeq, outMsg := countKinds(p.out[e.ID])
		switch e.Kind {
		case KindStart:
			if inSeq+inMsg != 0 {
				bad("bpmn: start event %q has incoming flows", e.ID)
			}
			if outSeq != 1 || outMsg != 0 {
				bad("bpmn: start event %q must have exactly one outgoing sequence flow", e.ID)
			}
		case KindMessageStart:
			if inMsg == 0 {
				bad("bpmn: message start event %q has no incoming message flow", e.ID)
			}
			if inSeq != 0 {
				bad("bpmn: message start event %q has incoming sequence flows", e.ID)
			}
			if outSeq != 1 || outMsg != 0 {
				bad("bpmn: message start event %q must have exactly one outgoing sequence flow", e.ID)
			}
		case KindEnd:
			if inSeq == 0 {
				bad("bpmn: end event %q has no incoming sequence flow", e.ID)
			}
			if outSeq+outMsg != 0 {
				bad("bpmn: end event %q has outgoing flows", e.ID)
			}
		case KindMessageEnd:
			if inSeq == 0 {
				bad("bpmn: message end event %q has no incoming sequence flow", e.ID)
			}
			if outMsg != 1 || outSeq != 0 {
				bad("bpmn: message end event %q must have exactly one outgoing message flow", e.ID)
			}
		case KindTask:
			if inSeq == 0 && !errTarget[e.ID] {
				bad("bpmn: task %q has no incoming sequence flow", e.ID)
			}
			if outSeq != 1 || outMsg != 0 {
				bad("bpmn: task %q must have exactly one outgoing sequence flow", e.ID)
			}
		case KindGatewayXOR, KindGatewayAND:
			if inSeq == 0 || outSeq == 0 {
				bad("bpmn: gateway %q must have incoming and outgoing sequence flows", e.ID)
			}
			if inSeq > 1 && outSeq > 1 {
				bad("bpmn: gateway %q mixes split and join (in=%d out=%d); use two gateways", e.ID, inSeq, outSeq)
			}
		case KindGatewayOR:
			if isORJoin(p, e) {
				if outSeq != 1 {
					bad("bpmn: inclusive join %q must have exactly one outgoing sequence flow", e.ID)
				}
				if inSeq+inMsg < 2 {
					bad("bpmn: inclusive join %q needs at least two incoming flows", e.ID)
				}
			} else {
				if outSeq < 2 {
					bad("bpmn: inclusive split %q needs at least two outgoing branches", e.ID)
				}
				if outSeq > MaxORBranches {
					bad("bpmn: inclusive split %q has %d branches; max %d (2^k−1 subset encoding)", e.ID, outSeq, MaxORBranches)
				}
			}
		}
	}

	// OR pairing discipline.
	joinPaired := map[string]string{}
	for split, join := range p.orPairs {
		se, je := p.byID[split], p.byID[join]
		if se == nil || se.Kind != KindGatewayOR {
			bad("bpmn: OR pairing: split %q is not an inclusive gateway", split)
			continue
		}
		if je == nil || je.Kind != KindGatewayOR {
			bad("bpmn: OR pairing: join %q is not an inclusive gateway", join)
			continue
		}
		if prev, dup := joinPaired[join]; dup {
			bad("bpmn: inclusive join %q paired with both %q and %q", join, prev, split)
		}
		joinPaired[join] = split
	}
	for _, e := range p.elements {
		if e.Kind == KindGatewayOR && isORJoin(p, e) {
			if _, ok := joinPaired[e.ID]; !ok {
				bad("bpmn: inclusive join %q is not paired with any split (use PairOR)", e.ID)
			}
		}
	}

	// Error handlers must not be join gateways: a join's per-flow input
	// endpoints are reserved for its declared incoming flows.
	for _, e := range p.elements {
		if e.OnError == "" {
			continue
		}
		if h := p.byID[e.OnError]; h != nil && (p.IsANDJoin(h.ID) || isORJoin(p, h)) {
			bad("bpmn: task %q: error handler %q may not be a join gateway", e.ID, e.OnError)
		}
	}

	if len(errs) == 0 {
		errs = append(errs, routeORPairs(p)...)
	}
	if len(errs) == 0 {
		if err := checkWellFounded(p); err != nil {
			errs = append(errs, err)
		}
		errs = append(errs, checkReachable(p)...)
	}
	return errs
}

func countKinds(fs []Flow) (seq, msg int) {
	for _, f := range fs {
		if f.Kind == FlowSeq {
			seq++
		} else {
			msg++
		}
	}
	return
}

// isORJoin reports whether an inclusive gateway acts as a join (single
// outgoing sequence flow, several incoming flows of any kind).
func isORJoin(p *Process, e *Element) bool {
	if e.Kind != KindGatewayOR {
		return false
	}
	outSeq, _ := countKinds(p.out[e.ID])
	return outSeq <= 1 && len(p.in[e.ID]) >= 2
}

// orRouting traces, for each branch of a paired inclusive split, the
// unique incoming flow of the join that the branch's tokens arrive on.
// The encoder uses the result to synthesize per-subset join behaviors.
type orRoute struct {
	// branchToJoinFlow maps the split's branch target element to the
	// join's incoming flow carrying that branch's token.
	branchToJoinFlow map[string]Flow
}

func routeORPairs(p *Process) []error {
	var errs []error
	p.orRoutes = map[string]orRoute{}
	for split, join := range p.orPairs {
		route := orRoute{branchToJoinFlow: map[string]Flow{}}
		used := map[string]bool{} // join incoming flow "from" already claimed
		for _, bf := range p.out[split] {
			flows := joinFlowsReachableFrom(p, bf.To, join)
			if len(flows) != 1 {
				errs = append(errs, fmt.Errorf(
					"bpmn: inclusive split %q branch %q reaches %d incoming flows of join %q, want exactly 1",
					split, bf.To, len(flows), join))
				continue
			}
			f := flows[0]
			if used[f.From] {
				errs = append(errs, fmt.Errorf(
					"bpmn: two branches of inclusive split %q share join input %s→%s", split, f.From, f.To))
				continue
			}
			used[f.From] = true
			route.branchToJoinFlow[bf.To] = f
		}
		p.orRoutes[split] = route
	}
	return errs
}

// joinFlowsReachableFrom follows flows (and error edges) forward from
// start, not expanding past the join, and collects which of the join's
// incoming flows are reached.
func joinFlowsReachableFrom(p *Process, start, join string) []Flow {
	seen := map[string]bool{}
	found := map[string]Flow{}
	var dfs func(id string)
	dfs = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, f := range p.out[id] {
			if f.To == join {
				found[f.From+"→"+f.To] = f
				continue
			}
			dfs(f.To)
		}
		if e := p.byID[id]; e != nil && e.OnError != "" {
			dfs(e.OnError)
		}
	}
	dfs(start)
	keys := make([]string, 0, len(found))
	for k := range found {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Flow, 0, len(found))
	for _, k := range keys {
		out = append(out, found[k])
	}
	return out
}

// checkWellFounded verifies the Section 5 condition: every cycle of the
// diagram (over sequence flows, message flows and error edges) contains
// at least one task. Equivalently: the subgraph induced by non-task
// elements is acyclic.
func checkWellFounded(p *Process) error {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var cyclePath []string

	var dfs func(id string) bool // returns true when a cycle is found
	dfs = func(id string) bool {
		color[id] = gray
		for _, f := range p.out[id] {
			next := p.byID[f.To]
			if next == nil || next.Kind == KindTask {
				continue // tasks break silent cycles
			}
			switch color[f.To] {
			case gray:
				cyclePath = append(cyclePath, id, f.To)
				return true
			case white:
				if dfs(f.To) {
					cyclePath = append(cyclePath, id)
					return true
				}
			}
		}
		color[id] = black
		return false
	}

	for _, e := range p.elements {
		if e.Kind == KindTask {
			continue
		}
		if color[e.ID] == white {
			if dfs(e.ID) {
				return fmt.Errorf("%w: through %v", ErrNotWellFounded, cyclePath)
			}
		}
	}
	return nil
}

// checkReachable verifies every element is reachable from some plain
// start event via flows and error edges, catching disconnected fragments
// and typos.
func checkReachable(p *Process) []error {
	seen := map[string]bool{}
	var dfs func(id string)
	dfs = func(id string) {
		if seen[id] {
			return
		}
		seen[id] = true
		for _, f := range p.out[id] {
			dfs(f.To)
		}
		if e := p.byID[id]; e != nil && e.OnError != "" {
			dfs(e.OnError)
		}
	}
	for _, e := range p.elements {
		if e.Kind == KindStart {
			dfs(e.ID)
		}
	}
	var errs []error
	for _, e := range p.elements {
		if !seen[e.ID] {
			errs = append(errs, fmt.Errorf("bpmn: element %q unreachable from any start event", e.ID))
		}
	}
	return errs
}
