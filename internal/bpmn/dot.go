package bpmn

import (
	"fmt"
	"strings"
)

// DOT renders the process diagram in Graphviz format, with one cluster
// per pool (the BPMN pool/lane visual), BPMN-ish node shapes, and
// dashed message flows — a quick way to eyeball an imported or
// generated process.
func (p *Process) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [fontsize=10];\n", p.Name)

	byPool := map[string][]*Element{}
	for _, e := range p.elements {
		byPool[e.Pool] = append(byPool[e.Pool], e)
	}
	for i, pool := range p.pools {
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    style=rounded;\n", i, pool)
		for _, e := range byPool[pool] {
			fmt.Fprintf(&b, "    %s [%s];\n", nodeID(e.ID), nodeAttrs(e))
		}
		b.WriteString("  }\n")
	}
	for _, f := range p.flows {
		attrs := ""
		if f.Kind == FlowMsg {
			attrs = " [style=dashed]"
		}
		fmt.Fprintf(&b, "  %s -> %s%s;\n", nodeID(f.From), nodeID(f.To), attrs)
	}
	// Error edges, dotted red.
	for _, e := range p.elements {
		if e.OnError != "" {
			fmt.Fprintf(&b, "  %s -> %s [style=dotted color=red label=\"error\"];\n",
				nodeID(e.ID), nodeID(e.OnError))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func nodeID(id string) string { return "n_" + strings.ReplaceAll(id, "-", "_") }

func nodeAttrs(e *Element) string {
	label := e.ID
	if e.Name != "" {
		label = e.ID + "\\n" + e.Name
	}
	switch e.Kind {
	case KindStart, KindMessageStart:
		shape := "circle"
		if e.Kind == KindMessageStart {
			shape = "doublecircle"
		}
		return fmt.Sprintf("shape=%s label=%q width=0.3", shape, e.ID)
	case KindEnd, KindMessageEnd:
		return fmt.Sprintf("shape=circle style=bold label=%q width=0.3", e.ID)
	case KindTask:
		return fmt.Sprintf("shape=box style=rounded label=%q", label)
	case KindGatewayXOR:
		return fmt.Sprintf("shape=diamond label=%q", "X "+e.ID)
	case KindGatewayAND:
		return fmt.Sprintf("shape=diamond label=%q", "+ "+e.ID)
	case KindGatewayOR:
		return fmt.Sprintf("shape=diamond label=%q", "O "+e.ID)
	default:
		return fmt.Sprintf("label=%q", label)
	}
}
