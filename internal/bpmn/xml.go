package bpmn

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// DecodeXML reads a process from the OMG BPMN 2.0 XML interchange
// format — the format the common modeling tools (Camunda Modeler,
// Signavio, bpmn.io) export — and maps it onto the supported fragment:
//
//   - one <process> per participant/pool (a <collaboration> names the
//     pools; without one, the process id is the pool name);
//   - <startEvent> (with <messageEventDefinition> → message start),
//     <endEvent> (ditto → message end), <task>/<userTask>/
//     <serviceTask>/<manualTask>/<scriptTask>/<sendTask>/<receiveTask>,
//     <exclusiveGateway>, <parallelGateway>, <inclusiveGateway>;
//   - <sequenceFlow> within a process, <messageFlow> across pools;
//   - <boundaryEvent> with <errorEventDefinition> attached to a task,
//     whose outgoing flow becomes the task's error edge;
//   - inclusive split/join pairing is inferred: a lone split/join pair
//     in one pool pairs up automatically; otherwise annotate the join
//     with `purposecontrol:pairs="splitId"` (any namespace prefix).
//
// Element names use the XML id attribute (BPMN names are free text and
// rarely identifier-safe); the name attribute is kept as the
// human-readable label.
func DecodeXML(r io.Reader) (*Process, error) {
	var doc xmlDefinitions
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("bpmn: decoding BPMN XML: %w", err)
	}
	return doc.toProcess()
}

// The XML schema fragment we read. Field tags use local names only, so
// any namespace prefixing (bpmn:, bpmn2:, none) is accepted.
type xmlDefinitions struct {
	XMLName       xml.Name          `xml:"definitions"`
	Collaboration *xmlCollaboration `xml:"collaboration"`
	Processes     []xmlProcess      `xml:"process"`
}

type xmlCollaboration struct {
	ID           string           `xml:"id,attr"`
	Participants []xmlParticipant `xml:"participant"`
	MessageFlows []xmlMessageFlow `xml:"messageFlow"`
}

type xmlParticipant struct {
	ID      string `xml:"id,attr"`
	Name    string `xml:"name,attr"`
	Process string `xml:"processRef,attr"`
}

type xmlMessageFlow struct {
	Source string `xml:"sourceRef,attr"`
	Target string `xml:"targetRef,attr"`
}

type xmlProcess struct {
	ID             string        `xml:"id,attr"`
	Name           string        `xml:"name,attr"`
	StartEvents    []xmlEvent    `xml:"startEvent"`
	EndEvents      []xmlEvent    `xml:"endEvent"`
	Tasks          []xmlTask     `xml:"task"`
	UserTasks      []xmlTask     `xml:"userTask"`
	ServiceTasks   []xmlTask     `xml:"serviceTask"`
	ManualTasks    []xmlTask     `xml:"manualTask"`
	ScriptTasks    []xmlTask     `xml:"scriptTask"`
	SendTasks      []xmlTask     `xml:"sendTask"`
	ReceiveTasks   []xmlTask     `xml:"receiveTask"`
	ExclusiveGWs   []xmlGateway  `xml:"exclusiveGateway"`
	ParallelGWs    []xmlGateway  `xml:"parallelGateway"`
	InclusiveGWs   []xmlGateway  `xml:"inclusiveGateway"`
	SequenceFlows  []xmlSeqFlow  `xml:"sequenceFlow"`
	BoundaryEvents []xmlBoundary `xml:"boundaryEvent"`
}

type xmlEvent struct {
	ID      string    `xml:"id,attr"`
	Name    string    `xml:"name,attr"`
	Message *struct{} `xml:"messageEventDefinition"`
}

type xmlTask struct {
	ID   string `xml:"id,attr"`
	Name string `xml:"name,attr"`
}

type xmlGateway struct {
	ID    string `xml:"id,attr"`
	Name  string `xml:"name,attr"`
	Pairs string `xml:"pairs,attr"` // purposecontrol:pairs on inclusive joins
}

type xmlSeqFlow struct {
	ID     string `xml:"id,attr"`
	Source string `xml:"sourceRef,attr"`
	Target string `xml:"targetRef,attr"`
}

type xmlBoundary struct {
	ID         string    `xml:"id,attr"`
	AttachedTo string    `xml:"attachedToRef,attr"`
	Error      *struct{} `xml:"errorEventDefinition"`
}

func (d *xmlDefinitions) toProcess() (*Process, error) {
	if len(d.Processes) == 0 {
		return nil, fmt.Errorf("bpmn: XML contains no <process>")
	}
	name := d.Processes[0].Name
	if d.Collaboration != nil && d.Collaboration.ID != "" {
		name = d.Collaboration.ID
	}
	if name == "" {
		name = d.Processes[0].ID
	}
	b := NewBuilder(name)

	// Pool names: participant name (sanitized) or process id.
	poolOf := map[string]string{} // process id -> pool
	if d.Collaboration != nil {
		for _, part := range d.Collaboration.Participants {
			pool := sanitizeIdent(part.Name)
			if pool == "" {
				pool = sanitizeIdent(part.Process)
			}
			poolOf[part.Process] = pool
		}
	}
	for _, p := range d.Processes {
		if poolOf[p.ID] == "" {
			poolOf[p.ID] = sanitizeIdent(p.ID)
		}
	}
	for _, p := range d.Processes {
		b.Pool(poolOf[p.ID])
	}

	// elemPool records each element's pool for message-flow targets;
	// boundary events map their id to the attached task.
	boundaryTask := map[string]string{}
	boundaryErrTarget := map[string]string{} // task -> handler (filled from flows)

	for _, p := range d.Processes {
		pool := poolOf[p.ID]
		for _, e := range p.StartEvents {
			if e.Message != nil {
				b.MessageStart(sanitizeIdent(e.ID), pool)
			} else {
				b.Start(sanitizeIdent(e.ID), pool)
			}
		}
		for _, e := range p.EndEvents {
			if e.Message != nil {
				b.MessageEnd(sanitizeIdent(e.ID), pool)
			} else {
				b.End(sanitizeIdent(e.ID), pool)
			}
		}
		for _, ts := range [][]xmlTask{p.Tasks, p.UserTasks, p.ServiceTasks, p.ManualTasks, p.ScriptTasks, p.SendTasks, p.ReceiveTasks} {
			for _, t := range ts {
				// Tasks are added plain; error boundaries are
				// attached in a second pass (they need the flow
				// targets).
				b.Task(sanitizeIdent(t.ID), pool, t.Name)
			}
		}
		for _, g := range p.ExclusiveGWs {
			b.XOR(sanitizeIdent(g.ID), pool)
		}
		for _, g := range p.ParallelGWs {
			b.AND(sanitizeIdent(g.ID), pool)
		}
		for _, g := range p.InclusiveGWs {
			b.OR(sanitizeIdent(g.ID), pool)
			if g.Pairs != "" {
				b.PairOR(sanitizeIdent(g.Pairs), sanitizeIdent(g.ID))
			}
		}
		for _, be := range p.BoundaryEvents {
			if be.Error != nil {
				boundaryTask[be.ID] = sanitizeIdent(be.AttachedTo)
			}
		}
		for _, f := range p.SequenceFlows {
			if task, isBoundary := boundaryTask[f.Source]; isBoundary {
				boundaryErrTarget[task] = sanitizeIdent(f.Target)
				continue
			}
			b.Seq(sanitizeIdent(f.Source), sanitizeIdent(f.Target))
		}
	}
	if d.Collaboration != nil {
		for _, mf := range d.Collaboration.MessageFlows {
			b.Msg(sanitizeIdent(mf.Source), sanitizeIdent(mf.Target))
		}
	}

	// Attach error boundaries.
	for task, handler := range boundaryErrTarget {
		el := b.byID[task]
		if el == nil || el.Kind != KindTask {
			return nil, fmt.Errorf("bpmn: boundary error event attached to non-task %q", task)
		}
		el.OnError = handler
	}

	// Auto-pair a single unpaired inclusive split with a single
	// unpaired inclusive join of the same pool.
	autoPairInclusive(b)

	return b.Build()
}

// autoPairInclusive pairs lone inclusive split/join pairs per pool when
// the XML carried no explicit pairing annotation.
func autoPairInclusive(b *Builder) {
	out := map[string]int{}
	in := map[string]int{}
	for _, f := range b.flows {
		if f.Kind == FlowSeq {
			out[f.From]++
		}
		in[f.To]++
	}
	paired := map[string]bool{}
	for s, j := range b.orPairs {
		paired[s] = true
		paired[j] = true
	}
	byPool := map[string][2][]string{} // pool -> [splits, joins]
	for _, e := range b.elements {
		if e.Kind != KindGatewayOR || paired[e.ID] {
			continue
		}
		entry := byPool[e.Pool]
		if out[e.ID] >= 2 {
			entry[0] = append(entry[0], e.ID)
		} else if in[e.ID] >= 2 {
			entry[1] = append(entry[1], e.ID)
		}
		byPool[e.Pool] = entry
	}
	for _, entry := range byPool {
		if len(entry[0]) == 1 && len(entry[1]) == 1 {
			b.PairOR(entry[0][0], entry[1][0])
		}
	}
}

// sanitizeIdent maps arbitrary XML ids/names to identifier-safe names:
// word characters are kept, runs of anything else become a single '_'.
func sanitizeIdent(s string) string {
	var out strings.Builder
	lastUnderscore := false
	for _, r := range s {
		ok := r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')
		if ok {
			out.WriteRune(r)
			lastUnderscore = false
			continue
		}
		if !lastUnderscore && out.Len() > 0 {
			out.WriteByte('_')
			lastUnderscore = true
		}
	}
	return strings.TrimSuffix(out.String(), "_")
}
