package bpmn

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// linear builds S→T1→T2→E in one pool.
func linear(t *testing.T) *Process {
	t.Helper()
	p, err := NewBuilder("linear").
		Pool("P").
		Start("S", "P").
		Task("T1", "P", "first").
		Task("T2", "P", "second").
		End("E", "P").
		Seq("S", "T1", "T2", "E").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildLinear(t *testing.T) {
	p := linear(t)
	if got := p.Tasks(); len(got) != 2 || got[0] != "T1" || got[1] != "T2" {
		t.Errorf("Tasks = %v", got)
	}
	if !p.HasTask("T1") || p.HasTask("S") || p.HasTask("missing") {
		t.Errorf("HasTask misclassifies")
	}
	if got := p.TaskRole("T2"); got != "P" {
		t.Errorf("TaskRole(T2) = %q", got)
	}
	if got := p.TaskRole("S"); got != "" {
		t.Errorf("TaskRole(S) = %q, want empty", got)
	}
	st := p.Stats()
	if st.Tasks != 2 || st.Events != 2 || st.SeqFlows != 3 || st.Pools != 1 {
		t.Errorf("Stats = %+v", st)
	}
	if got := p.RolesOfTasks(); len(got) != 1 || got[0] != "P" {
		t.Errorf("RolesOfTasks = %v", got)
	}
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Process, error)
		want  string
	}{
		{
			"duplicate pool",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Pool("P").Start("S", "P").Task("T", "P", "").End("E", "P").Seq("S", "T", "E").Build()
			},
			"duplicate pool",
		},
		{
			"duplicate element",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Start("S", "P").Task("S", "P", "").Build()
			},
			"duplicate element id",
		},
		{
			"undeclared pool",
			func() (*Process, error) {
				return NewBuilder("x").Start("S", "P").Build()
			},
			"undeclared pool",
		},
		{
			"reserved id",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Start("S", "P").Task("Err", "P", "").End("E", "P").Seq("S", "Err", "E").Build()
			},
			"reserved",
		},
		{
			"no start",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").MessageStart("S", "P").Task("T", "P", "").End("E", "P").Seq("S", "T", "E").Build()
			},
			"no plain start",
		},
		{
			"dangling flow",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Start("S", "P").End("E", "P").Seq("S", "missing", "E").Build()
			},
			"missing element",
		},
		{
			"cross-pool sequence flow",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Pool("Q").
					Start("S", "P").Task("T", "Q", "").End("E", "Q").
					Seq("S", "T", "E").Build()
			},
			"crosses pools",
		},
		{
			"same-pool message flow",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").
					Start("S", "P").MessageEnd("E", "P").MessageStart("M", "P").
					Task("T", "P", "").End("E2", "P").
					Seq("S", "E").Msg("E", "M").Seq("M", "T", "E2").Build()
			},
			"stays within pool",
		},
		{
			"task without outgoing",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Start("S", "P").Task("T", "P", "").Seq("S", "T").Build()
			},
			"exactly one outgoing",
		},
		{
			"start with incoming",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Start("S", "P").Task("T", "P", "").End("E", "P").
					Seq("S", "T", "E").Seq("T", "S").Build()
			},
			"incoming",
		},
		{
			"gateway split+join",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").
					Start("S", "P").Start("S2", "P").XOR("G", "P").
					Task("T1", "P", "").Task("T2", "P", "").End("E1", "P").End("E2", "P").
					Seq("S", "G").Seq("S2", "G").Seq("G", "T1", "E1").Seq("G", "T2", "E2").Build()
			},
			"mixes split and join",
		},
		{
			"error handler in other pool",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").Pool("Q").
					Start("S", "P").FallibleTask("T", "P", "", "H").End("E", "P").
					Start("S2", "Q").Task("H", "Q", "").End("E2", "Q").
					Seq("S", "T", "E").Seq("S2", "H", "E2").Build()
			},
			"in pool",
		},
		{
			"unpaired OR join",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").
					Start("S", "P").OR("G", "P").Task("T1", "P", "").Task("T2", "P", "").
					OR("J", "P").Task("T3", "P", "").End("E", "P").
					Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
					Build()
			},
			"not paired",
		},
		{
			"unreachable fragment",
			func() (*Process, error) {
				return NewBuilder("x").Pool("P").
					Start("S", "P").Task("T", "P", "").End("E", "P").
					Task("U", "P", "").End("E2", "P").
					Seq("S", "T", "E").Seq("T", "U").Seq("U", "E2").Build()
			},
			"exactly one outgoing",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestWellFoundedness(t *testing.T) {
	// A cycle through a task is fine.
	_, err := NewBuilder("taskCycle").Pool("P").
		Start("S", "P").Task("T", "P", "").XOR("G", "P").End("E", "P").
		Seq("S", "T", "G").Seq("G", "T").Seq("G", "E").
		Build()
	if err != nil {
		t.Fatalf("task cycle rejected: %v", err)
	}

	// A gateway-only cycle is not well-founded.
	_, err = NewBuilder("gateCycle").Pool("P").
		Start("S", "P").XOR("G1", "P").XOR("G2", "P").Task("T", "P", "").End("E", "P").
		Seq("S", "G1").Seq("G1", "G2").Seq("G2", "G1").Seq("G2", "T", "E").
		Build()
	if !errors.Is(err, ErrNotWellFounded) {
		t.Fatalf("gateway cycle: err = %v, want ErrNotWellFounded", err)
	}

	// An error-edge cycle without tasks cannot be constructed (error
	// edges originate at tasks), but a message-flow cycle without
	// tasks can.
	_, err = NewBuilder("msgCycle").Pool("P").Pool("Q").
		Start("S", "P").MessageEnd("E1", "P").
		MessageStart("M2", "Q").MessageEnd("E2", "Q").
		MessageStart("M1", "P").XOR("G", "P").End("E", "P").Task("T", "P", "").
		Seq("S", "E1").Msg("E1", "M2").Seq("M2", "E2").Msg("E2", "M1").
		Seq("M1", "G").Seq("G", "E1b").Build()
	if err == nil {
		t.Fatalf("expected error for malformed message cycle fixture")
	}
}

func TestWellFoundedMessageCycle(t *testing.T) {
	// Fig. 10's shape: a cross-pool cycle containing tasks — valid.
	p, err := NewBuilder("fig10").Pool("P1").Pool("P2").
		Start("S1", "P1").MessageStart("S2", "P1").Task("T1", "P1", "").MessageEnd("E1", "P1").
		MessageStart("S3", "P2").Task("T2", "P2", "").MessageEnd("E2", "P2").
		Seq("S1", "T1").Seq("S2", "T1").Seq("T1", "E1").
		Msg("E1", "S3").Seq("S3", "T2", "E2").Msg("E2", "S2").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := p.RolesOfTasks(); len(got) != 2 {
		t.Errorf("RolesOfTasks = %v, want 2 pools", got)
	}

	// Same shape with the tasks removed: silent message cycle →
	// rejected.
	_, err = NewBuilder("fig10silent").Pool("P1").Pool("P2").
		Start("S1", "P1").MessageStart("M1", "P1").
		XOR("Gm", "P1").XOR("Gs", "P1").MessageEnd("E1", "P1").
		MessageStart("M2", "P2").MessageEnd("E2", "P2").
		Task("T", "P1", "").End("E", "P1").
		Seq("S1", "Gm").Seq("M1", "Gm").Seq("Gm", "Gs").
		Seq("Gs", "E1").Seq("Gs", "T", "E").
		Msg("E1", "M2").Seq("M2", "E2").Msg("E2", "M1").
		Build()
	if !errors.Is(err, ErrNotWellFounded) {
		t.Fatalf("silent message cycle: err = %v, want ErrNotWellFounded", err)
	}
}

// orFixture builds S→G(OR)→T1,T2→J(OR join)→T3→E with pairing.
func orFixture(t *testing.T) *Process {
	t.Helper()
	p, err := NewBuilder("orj").Pool("P").
		Start("S", "P").OR("G", "P").Task("T1", "P", "").Task("T2", "P", "").
		OR("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		PairOR("G", "J").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestORRouting(t *testing.T) {
	p := orFixture(t)
	if !p.IsORJoin("J") {
		t.Fatalf("J not recognized as OR join")
	}
	if p.IsORJoin("G") {
		t.Fatalf("G misrecognized as OR join")
	}
	f, ok := p.ORBranchJoinFlow("G", "T1")
	if !ok || f.From != "T1" || f.To != "J" {
		t.Fatalf("ORBranchJoinFlow(G,T1) = %+v, %v", f, ok)
	}
	f, ok = p.ORBranchJoinFlow("G", "T2")
	if !ok || f.From != "T2" {
		t.Fatalf("ORBranchJoinFlow(G,T2) = %+v, %v", f, ok)
	}
}

func TestANDJoinRecognition(t *testing.T) {
	p, err := NewBuilder("andj").Pool("P").
		Start("S", "P").AND("G", "P").Task("T1", "P", "").Task("T2", "P", "").
		AND("J", "P").Task("T3", "P", "").End("E", "P").
		Seq("S", "G").Seq("G", "T1", "J").Seq("G", "T2", "J").Seq("J", "T3", "E").
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !p.IsANDJoin("J") || p.IsANDJoin("G") || p.IsANDJoin("T1") {
		t.Fatalf("AND join misclassification")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := orFixture(t)
	var buf bytes.Buffer
	if err := p.EncodeJSON(&buf); err != nil {
		t.Fatalf("EncodeJSON: %v", err)
	}
	q, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatalf("DecodeJSON: %v", err)
	}
	if q.Name != p.Name {
		t.Errorf("name %q != %q", q.Name, p.Name)
	}
	if len(q.Elements()) != len(p.Elements()) {
		t.Errorf("element count %d != %d", len(q.Elements()), len(p.Elements()))
	}
	if len(q.Flows()) != len(p.Flows()) {
		t.Errorf("flow count %d != %d", len(q.Flows()), len(p.Flows()))
	}
	if q.ORJoin("G") != "J" {
		t.Errorf("OR pairing lost in round trip")
	}
	// Re-validation happens on decode: routing must be rebuilt.
	if _, ok := q.ORBranchJoinFlow("G", "T1"); !ok {
		t.Errorf("OR routing missing after round trip")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	_, err := DecodeJSON(strings.NewReader(`{"name":"x","bogus":1}`))
	if err == nil {
		t.Fatalf("unknown field accepted")
	}
}

func TestDecodeRejectsUnknownKinds(t *testing.T) {
	_, err := DecodeJSON(strings.NewReader(
		`{"name":"x","pools":["P"],"elements":[{"id":"S","kind":"nope","pool":"P"}],"flows":[]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown element kind") {
		t.Fatalf("err = %v", err)
	}
}

func TestORBranchSharingJoinInputRejected(t *testing.T) {
	// Both branches funnel through the same element before J, so the
	// join cannot attribute inputs: must be rejected.
	_, err := NewBuilder("orShared").Pool("P").
		Start("S", "P").OR("G", "P").Task("T1", "P", "").Task("T2", "P", "").
		XOR("M", "P").OR("J", "P").Task("T3", "P", "").End("E", "P").
		Task("T4", "P", "").
		Seq("S", "G").Seq("G", "T1", "M").Seq("G", "T2", "M").
		Seq("M", "T4", "J").Seq("J", "T3", "E").
		PairOR("G", "J").
		Build()
	if err == nil {
		t.Fatalf("shared join input accepted")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustBuild did not panic")
		}
	}()
	NewBuilder("bad").MustBuild()
}
