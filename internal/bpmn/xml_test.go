package bpmn

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cows"
)

// referralXML is a two-pool collaboration in vendor-style BPMN 2.0 XML
// (namespaced elements, boundary error event, message flows).
const referralXML = `<?xml version="1.0" encoding="UTF-8"?>
<bpmn:definitions xmlns:bpmn="http://www.omg.org/spec/BPMN/20100524/MODEL"
                  xmlns:pc="http://example.org/purposecontrol"
                  id="defs1" targetNamespace="http://example.org">
  <bpmn:collaboration id="Referral">
    <bpmn:participant id="pGP" name="GP" processRef="procGP"/>
    <bpmn:participant id="pSpec" name="Specialist!" processRef="procSpec"/>
    <bpmn:messageFlow id="mf1" sourceRef="E_refer" targetRef="S_spec"/>
    <bpmn:messageFlow id="mf2" sourceRef="E_report" targetRef="S_back"/>
  </bpmn:collaboration>
  <bpmn:process id="procGP" name="GP side">
    <bpmn:startEvent id="S_visit" name="patient arrives"/>
    <bpmn:startEvent id="S_back" name="report received">
      <bpmn:messageEventDefinition/>
    </bpmn:startEvent>
    <bpmn:userTask id="T_intake" name="intake &amp; anamnesis"/>
    <bpmn:task id="T_plan" name="write care plan"/>
    <bpmn:exclusiveGateway id="G_route"/>
    <bpmn:sendTask id="T_refer" name="refer to specialist"/>
    <bpmn:endEvent id="E_done"/>
    <bpmn:endEvent id="E_refer">
      <bpmn:messageEventDefinition/>
    </bpmn:endEvent>
    <bpmn:boundaryEvent id="B_err" attachedToRef="T_plan">
      <bpmn:errorEventDefinition/>
    </bpmn:boundaryEvent>
    <bpmn:sequenceFlow id="f1" sourceRef="S_visit" targetRef="T_intake"/>
    <bpmn:sequenceFlow id="f1b" sourceRef="S_back" targetRef="T_intake"/>
    <bpmn:sequenceFlow id="f2" sourceRef="T_intake" targetRef="G_route"/>
    <bpmn:sequenceFlow id="f3" sourceRef="G_route" targetRef="T_plan"/>
    <bpmn:sequenceFlow id="f4" sourceRef="G_route" targetRef="T_refer"/>
    <bpmn:sequenceFlow id="f5" sourceRef="T_plan" targetRef="E_done"/>
    <bpmn:sequenceFlow id="f6" sourceRef="T_refer" targetRef="E_refer"/>
    <bpmn:sequenceFlow id="fErr" sourceRef="B_err" targetRef="T_intake"/>
  </bpmn:process>
  <bpmn:process id="procSpec" name="Specialist side">
    <bpmn:startEvent id="S_spec">
      <bpmn:messageEventDefinition/>
    </bpmn:startEvent>
    <bpmn:serviceTask id="T_exam" name="examine"/>
    <bpmn:endEvent id="E_report">
      <bpmn:messageEventDefinition/>
    </bpmn:endEvent>
    <bpmn:sequenceFlow id="f7" sourceRef="S_spec" targetRef="T_exam"/>
    <bpmn:sequenceFlow id="f8" sourceRef="T_exam" targetRef="E_report"/>
  </bpmn:process>
</bpmn:definitions>`

func TestDecodeXMLCollaboration(t *testing.T) {
	p, err := DecodeXML(strings.NewReader(referralXML))
	if err != nil {
		t.Fatalf("DecodeXML: %v", err)
	}
	if p.Name != "Referral" {
		t.Errorf("name = %q", p.Name)
	}
	st := p.Stats()
	if st.Pools != 2 {
		t.Errorf("pools = %d", st.Pools)
	}
	if st.Tasks != 4 {
		t.Errorf("tasks = %d, want 4", st.Tasks)
	}
	if st.MsgFlows != 2 {
		t.Errorf("message flows = %d", st.MsgFlows)
	}
	if st.ErrorEdge != 1 {
		t.Errorf("error edges = %d", st.ErrorEdge)
	}
	// Pool name sanitization: "Specialist!" → "Specialist".
	pools := p.Pools()
	found := false
	for _, pool := range pools {
		if pool == "Specialist" {
			found = true
		}
		if strings.ContainsAny(pool, "!?") {
			t.Errorf("unsanitized pool %q", pool)
		}
	}
	if !found {
		t.Errorf("pools = %v", pools)
	}
	// Error boundary attached: T_plan fails back to T_intake.
	el := p.Element("T_plan")
	if el == nil || el.OnError != "T_intake" {
		t.Errorf("T_plan = %+v", el)
	}
	// Human-readable names survive.
	if got := p.Element("T_intake").Name; got != "intake & anamnesis" {
		t.Errorf("task name = %q", got)
	}
	if p.TaskRole("T_exam") != "Specialist" {
		t.Errorf("T_exam role = %q", p.TaskRole("T_exam"))
	}
}

const inclusiveXML = `<?xml version="1.0"?>
<definitions xmlns="http://www.omg.org/spec/BPMN/20100524/MODEL" id="d">
  <process id="Orders">
    <startEvent id="S"/>
    <inclusiveGateway id="G_split"/>
    <task id="T_a"/>
    <task id="T_b"/>
    <inclusiveGateway id="G_join"/>
    <task id="T_z"/>
    <endEvent id="E"/>
    <sequenceFlow id="f1" sourceRef="S" targetRef="G_split"/>
    <sequenceFlow id="f2" sourceRef="G_split" targetRef="T_a"/>
    <sequenceFlow id="f3" sourceRef="G_split" targetRef="T_b"/>
    <sequenceFlow id="f4" sourceRef="T_a" targetRef="G_join"/>
    <sequenceFlow id="f5" sourceRef="T_b" targetRef="G_join"/>
    <sequenceFlow id="f6" sourceRef="G_join" targetRef="T_z"/>
    <sequenceFlow id="f7" sourceRef="T_z" targetRef="E"/>
  </process>
</definitions>`

func TestDecodeXMLAutoPairsInclusive(t *testing.T) {
	p, err := DecodeXML(strings.NewReader(inclusiveXML))
	if err != nil {
		t.Fatalf("DecodeXML: %v", err)
	}
	if p.ORJoin("G_split") != "G_join" {
		t.Fatalf("auto-pairing failed: %q", p.ORJoin("G_split"))
	}
	if _, ok := p.ORBranchJoinFlow("G_split", "T_a"); !ok {
		t.Fatalf("routing missing after auto-pair")
	}
}

func TestDecodeXMLExplicitPairing(t *testing.T) {
	src := strings.Replace(inclusiveXML,
		`<inclusiveGateway id="G_join"/>`,
		`<inclusiveGateway id="G_join" pairs="G_split"/>`, 1)
	p, err := DecodeXML(strings.NewReader(src))
	if err != nil {
		t.Fatalf("DecodeXML: %v", err)
	}
	if p.ORJoin("G_split") != "G_join" {
		t.Fatalf("explicit pairing failed")
	}
}

func TestDecodeXMLErrors(t *testing.T) {
	cases := []string{
		``,
		`<definitions xmlns="x"/>`, // no process
		`not xml at all`,
		// Boundary attached to a non-task.
		`<definitions xmlns="x"><process id="P">
		   <startEvent id="S"/><task id="T"/><endEvent id="E"/>
		   <boundaryEvent id="B" attachedToRef="S"><errorEventDefinition/></boundaryEvent>
		   <sequenceFlow id="f1" sourceRef="S" targetRef="T"/>
		   <sequenceFlow id="f2" sourceRef="T" targetRef="E"/>
		   <sequenceFlow id="f3" sourceRef="B" targetRef="T"/>
		 </process></definitions>`,
	}
	for i, src := range cases {
		if _, err := DecodeXML(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSanitizeIdent(t *testing.T) {
	cases := map[string]string{
		"Specialist!":        "Specialist",
		"intake & anamnesis": "intake_anamnesis",
		"a  b":               "a_b",
		"T-1_x":              "T-1_x",
		"éxo":                "xo",
		"--ok--":             "--ok--",
	}
	for in, want := range cases {
		if got := sanitizeIdent(in); got != want {
			t.Errorf("sanitizeIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestXMLProcessIsCheckable: the imported collaboration runs through the
// whole stack (encode + replay).
func TestXMLProcessIsCheckable(t *testing.T) {
	p, err := DecodeXML(strings.NewReader(referralXML))
	if err != nil {
		t.Fatal(err)
	}
	// Smoke: JSON round trip of the imported process.
	var b strings.Builder
	if err := p.EncodeJSON(&b); err != nil {
		t.Fatal(err)
	}
	q, err := DecodeJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if q.Stats() != p.Stats() {
		t.Fatalf("stats changed through JSON: %+v vs %+v", q.Stats(), p.Stats())
	}
}

func TestProcessDOT(t *testing.T) {
	p, err := DecodeXML(strings.NewReader(referralXML))
	if err != nil {
		t.Fatal(err)
	}
	dot := p.DOT()
	for _, want := range []string{
		"digraph", "cluster_0", `label="GP"`, "shape=diamond",
		"style=dashed",            // message flows
		`color=red label="error"`, // the boundary edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestSanitizeIdentProperty(t *testing.T) {
	// For any input, the result is either empty or a valid COWS
	// identifier fragment (quick over arbitrary strings).
	prop := func(s string) bool {
		out := sanitizeIdent(s)
		if out == "" {
			return true
		}
		return cows.ParseFragmentName(out) == nil || out[0] >= '0' && out[0] <= '9' || out[0] == '-'
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Errorf("sanitizeIdent property: %v", err)
	}
}
