package bpmn

import (
	"fmt"
)

// Builder constructs a Process incrementally. Methods record
// declarations and defer all checking to Build, so construction code
// reads like the diagram. The zero Builder is not usable; call
// NewBuilder.
type Builder struct {
	name     string
	pools    []string
	poolSet  map[string]bool
	elements []*Element
	byID     map[string]*Element
	flows    []Flow
	orPairs  map[string]string
	errs     []error
}

// NewBuilder starts a process definition with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:    name,
		poolSet: map[string]bool{},
		byID:    map[string]*Element{},
		orPairs: map[string]string{},
	}
}

func (b *Builder) fail(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Pool declares a pool (role). Pools are implicit participants; they
// must be declared before elements reference them.
func (b *Builder) Pool(role string) *Builder {
	if b.poolSet[role] {
		b.fail("bpmn: duplicate pool %q", role)
		return b
	}
	b.poolSet[role] = true
	b.pools = append(b.pools, role)
	return b
}

func (b *Builder) add(e *Element) *Builder {
	if _, dup := b.byID[e.ID]; dup {
		b.fail("bpmn: duplicate element id %q", e.ID)
		return b
	}
	if !b.poolSet[e.Pool] {
		b.fail("bpmn: element %q references undeclared pool %q", e.ID, e.Pool)
		return b
	}
	b.byID[e.ID] = e
	b.elements = append(b.elements, e)
	return b
}

// Start declares a plain start event.
func (b *Builder) Start(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindStart, Pool: pool})
}

// MessageStart declares a message start event.
func (b *Builder) MessageStart(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindMessageStart, Pool: pool})
}

// End declares a plain end event.
func (b *Builder) End(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindEnd, Pool: pool})
}

// MessageEnd declares a message end event.
func (b *Builder) MessageEnd(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindMessageEnd, Pool: pool})
}

// Task declares a task; name is a human-readable description.
func (b *Builder) Task(id, pool, name string) *Builder {
	return b.add(&Element{ID: id, Kind: KindTask, Pool: pool, Name: name})
}

// FallibleTask declares a task with an error boundary event routed to
// onError (an element of the same pool). Its failures appear as the
// observable sys·Err label.
func (b *Builder) FallibleTask(id, pool, name, onError string) *Builder {
	return b.add(&Element{ID: id, Kind: KindTask, Pool: pool, Name: name, OnError: onError})
}

// XOR declares an exclusive gateway.
func (b *Builder) XOR(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindGatewayXOR, Pool: pool})
}

// AND declares a parallel gateway.
func (b *Builder) AND(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindGatewayAND, Pool: pool})
}

// OR declares an inclusive gateway.
func (b *Builder) OR(id, pool string) *Builder {
	return b.add(&Element{ID: id, Kind: KindGatewayOR, Pool: pool})
}

// PairOR pairs an inclusive split gateway with the inclusive join that
// synchronizes its chosen branches.
func (b *Builder) PairOR(split, join string) *Builder {
	if _, dup := b.orPairs[split]; dup {
		b.fail("bpmn: inclusive split %q paired twice", split)
		return b
	}
	b.orPairs[split] = join
	return b
}

// Seq declares a sequence flow from one element to the next, both in the
// same pool. Variadic form chains several elements:
// Seq("a","b","c") declares a→b and b→c.
func (b *Builder) Seq(ids ...string) *Builder {
	if len(ids) < 2 {
		b.fail("bpmn: Seq needs at least two elements")
		return b
	}
	for i := 0; i+1 < len(ids); i++ {
		b.flows = append(b.flows, Flow{From: ids[i], To: ids[i+1], Kind: FlowSeq})
	}
	return b
}

// Msg declares a message flow across pools.
func (b *Builder) Msg(from, to string) *Builder {
	b.flows = append(b.flows, Flow{From: from, To: to, Kind: FlowMsg})
	return b
}

// Build validates the accumulated declarations and returns the process.
// All structural errors are collected and reported together.
func (b *Builder) Build() (*Process, error) {
	p := &Process{
		Name:     b.name,
		pools:    b.pools,
		elements: b.elements,
		byID:     b.byID,
		flows:    b.flows,
		orPairs:  b.orPairs,
		in:       map[string][]Flow{},
		out:      map[string][]Flow{},
	}
	for _, f := range b.flows {
		p.out[f.From] = append(p.out[f.From], f)
		p.in[f.To] = append(p.in[f.To], f)
	}
	for _, e := range b.elements {
		if e.Kind == KindTask {
			p.tasks = append(p.tasks, e.ID)
		}
	}
	errs := b.errs
	errs = append(errs, validate(p)...)
	if len(errs) > 0 {
		return nil, joinErrors(p.Name, errs)
	}
	return p, nil
}

// MustBuild is Build that panics on error, for fixtures and tests.
func (b *Builder) MustBuild() *Process {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

func joinErrors(name string, errs []error) error {
	if len(errs) == 1 {
		return fmt.Errorf("bpmn: process %q invalid: %w", name, errs[0])
	}
	msg := ""
	for i, e := range errs {
		if i > 0 {
			msg += "; "
		}
		msg += e.Error()
	}
	return fmt.Errorf("bpmn: process %q invalid (%d problems): %s", name, len(errs), msg)
}
