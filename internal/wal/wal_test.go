package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/encode"
	"repro/internal/policy"
)

var testBase = time.Date(2010, 3, 1, 9, 0, 0, 0, time.UTC)

// mkEntry builds a deterministic entry; i makes it unique.
func mkEntry(i int) audit.Entry {
	return audit.Entry{
		User:   fmt.Sprintf("user-%d", i%7),
		Role:   "Clerk",
		Action: "read",
		Object: policy.Object{Subject: "Alice", Path: []string{"EPR", "Clinical"}},
		Task:   fmt.Sprintf("T%d", i%5),
		Case:   fmt.Sprintf("case-%d", i%3),
		Time:   testBase.Add(time.Duration(i) * time.Minute),
		Status: audit.Status(i % 2),
	}
}

// collect replays the log from LSN from into a slice.
func collect(t *testing.T, l *Log, from uint64) ([]uint64, []audit.Entry) {
	t.Helper()
	var lsns []uint64
	var entries []audit.Entry
	if err := l.Replay(from, func(lsn uint64, e audit.Entry) error {
		lsns = append(lsns, lsn)
		entries = append(entries, e)
		return nil
	}); err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return lsns, entries
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want []audit.Entry
	for b := 0; b < 5; b++ {
		batch := make([]audit.Entry, 0, 8)
		for i := 0; i < 8; i++ {
			batch = append(batch, mkEntry(b*8+i))
		}
		first, last, err := l.Append(batch)
		if err != nil {
			t.Fatalf("Append batch %d: %v", b, err)
		}
		if wantFirst := uint64(b*8 + 1); first != wantFirst || last != wantFirst+7 {
			t.Fatalf("batch %d: LSN range [%d,%d], want [%d,%d]", b, first, last, wantFirst, wantFirst+7)
		}
		want = append(want, batch...)
	}
	if got := l.LastLSN(); got != 40 {
		t.Fatalf("LastLSN = %d, want 40", got)
	}
	lsns, got := collect(t, l, 1)
	if len(lsns) != 40 || lsns[0] != 1 || lsns[39] != 40 {
		t.Fatalf("replayed %d records, LSNs %v", len(lsns), lsns)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("replayed entries differ from appended entries")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: state and contents survive.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 40 {
		t.Fatalf("LastLSN after reopen = %d, want 40", got)
	}
	// Replay from the middle skips but still verifies the prefix.
	lsns, got = collect(t, l2, 30)
	if len(lsns) != 11 || lsns[0] != 30 {
		t.Fatalf("Replay(30) gave %d records starting at %v", len(lsns), lsns[:1])
	}
	if !reflect.DeepEqual(got, want[29:]) {
		t.Fatal("Replay(30) entries differ")
	}
	// Appends continue in the same active segment with the next LSN.
	first, _, err := l2.Append([]audit.Entry{mkEntry(40)})
	if err != nil {
		t.Fatal(err)
	}
	if first != 41 {
		t.Fatalf("append after reopen got LSN %d, want 41", first)
	}
	if names, _ := listSegments(dir); len(names) != 1 {
		t.Fatalf("expected 1 segment, found %v", names)
	}
}

func TestCodecEdgeCases(t *testing.T) {
	entries := []audit.Entry{
		{}, // all zero values
		{User: "u", Object: policy.Object{Subject: "", Path: []string{"Order"}}, Time: testBase},
		{User: "ûser", Role: "rôle", Action: "wr\nite", Case: "c,1", Time: testBase.Add(time.Nanosecond), Status: audit.Failure},
	}
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, err := l.Append(entries); err != nil {
		t.Fatal(err)
	}
	_, got := collect(t, l, 1)
	for i := range entries {
		want := entries[i]
		want.Time = want.Time.UTC() // codec canonicalizes to UTC
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("entry %d: got %+v, want %+v", i, got[i], want)
		}
	}

	// An entry the codec cannot represent is rejected atomically.
	big := audit.Entry{Object: policy.Object{Path: make([]string, objectPathLimit+1)}}
	before := l.LastLSN()
	if _, _, err := l.Append([]audit.Entry{mkEntry(0), big}); err == nil {
		t.Fatal("oversized object path accepted")
	}
	if l.LastLSN() != before {
		t.Fatal("rejected batch advanced the LSN")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if _, _, err := l.Append([]audit.Entry{mkEntry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, syncs, segments, _ := l.Stats()
	if segments < 4 {
		t.Fatalf("expected several segments at 512-byte rotation, got %d", segments)
	}
	if syncs < n {
		t.Fatalf("always policy issued %d fsyncs for %d appends", syncs, n)
	}
	lsns, _ := collect(t, l, 1)
	if len(lsns) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(lsns), n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen across many segments: the chain must validate and continue.
	l2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != n {
		t.Fatalf("LastLSN after rotation reopen = %d, want %d", got, n)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 100; i++ {
		if _, _, err := l.Append([]audit.Entry{mkEntry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	_, _, before, _ := l.Stats()

	// Truncating at LSN 0 removes nothing.
	if n, err := l.TruncateBefore(0); err != nil || n != 0 {
		t.Fatalf("TruncateBefore(0) = %d, %v", n, err)
	}
	// Truncating at the checkpoint high-water mark drops only segments
	// entirely at or below it.
	removed, err := l.TruncateBefore(50)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore(50) removed no segments")
	}
	_, _, after, _ := l.Stats()
	if after != before-removed {
		t.Fatalf("segments %d -> %d after removing %d", before, after, removed)
	}
	// Everything past the mark must still replay; the first surviving
	// record must be <= 51 (nothing above the mark may be lost).
	lsns, _ := collect(t, l, 51)
	if len(lsns) != 50 || lsns[0] != 51 || lsns[len(lsns)-1] != 100 {
		t.Fatalf("post-truncation replay lost records: %d records, range [%d,%d]",
			len(lsns), lsns[0], lsns[len(lsns)-1])
	}
	// The active segment survives even a mark past the end.
	if _, err := l.TruncateBefore(1 << 60); err != nil {
		t.Fatal(err)
	}
	if _, _, segs, _ := l.Stats(); segs == 0 {
		t.Fatal("TruncateBefore removed the active segment")
	}
}

// TestStatsBytesTracked pins Stats' byte total — maintained
// incrementally at seal/truncate/open time so a metrics scrape never
// stats files under the log mutex — to the real on-disk sizes across
// rotation, truncation and reopen.
func TestStatsBytesTracked(t *testing.T) {
	dir := t.TempDir()
	check := func(l *Log, when string) {
		t.Helper()
		names, err := listSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		var disk int64
		for _, name := range names {
			fi, err := os.Stat(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			disk += fi.Size()
		}
		_, _, segs, bytes := l.Stats()
		if bytes != disk {
			t.Errorf("%s: Stats bytes = %d, on disk %d", when, bytes, disk)
		}
		if segs != len(names) {
			t.Errorf("%s: Stats segments = %d, on disk %d", when, segs, len(names))
		}
	}

	l, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, _, err := l.Append([]audit.Entry{mkEntry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	check(l, "after rotation")
	if n, err := l.TruncateBefore(30); err != nil || n == 0 {
		t.Fatalf("TruncateBefore(30) = %d, %v", n, err)
	}
	check(l, "after truncation")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{SegmentBytes: 512, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	check(l2, "after reopen")
	for i := 60; i < 90; i++ {
		if _, _, err := l2.Append([]audit.Entry{mkEntry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	check(l2, "after reopen appends")
}

// lastSegment returns the path of the highest-LSN segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	names, err := listSegments(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

func TestCrashMidBatchTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var batch []audit.Entry
	for i := 0; i < 10; i++ {
		batch = append(batch, mkEntry(i))
	}
	if _, _, err := l.Append(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: the last record is half-written.
	path := lastSegment(t, dir)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after torn tail: %v", err)
	}
	if got := l2.LastLSN(); got != 9 {
		t.Fatalf("LastLSN after repair = %d, want 9 (torn record dropped)", got)
	}
	lsns, entries := collect(t, l2, 1)
	if len(lsns) != 9 {
		t.Fatalf("replayed %d records after repair, want 9", len(lsns))
	}
	if !reflect.DeepEqual(entries, batch[:9]) {
		t.Fatal("acknowledged prefix not fully recovered after torn-tail repair")
	}
	// The repaired log must accept appends at the repaired LSN.
	first, _, err := l2.Append([]audit.Entry{mkEntry(100)})
	if err != nil {
		t.Fatal(err)
	}
	if first != 10 {
		t.Fatalf("append after repair got LSN %d, want 10", first)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroFilledTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]audit.Entry{mkEntry(0), mkEntry(1)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Some filesystems recover a crash as a zero-filled extent: record
	// bytes never made it, but the size did.
	path := lastSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after zero-filled tail: %v", err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 2 {
		t.Fatalf("LastLSN = %d, want 2", got)
	}
}

func TestTornHeaderSegmentDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]audit.Entry{mkEntry(0)}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash between sealing and header write leaves a runt file.
	runt := filepath.Join(dir, segName(2))
	if err := os.WriteFile(runt, segMagic[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with runt segment: %v", err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 1 {
		t.Fatalf("LastLSN = %d, want 1", got)
	}
	if _, err := os.Stat(runt); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("runt segment not removed")
	}
}

func TestCorruptRecordFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := l.Append([]audit.Entry{mkEntry(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip one byte inside a complete interior record: this is
	// corruption of acknowledged data, not a torn tail, and must never
	// be silently repaired.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHeaderSize+encode.FrameOverhead+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt record")
	} else if !errors.Is(err, ErrCorrupt) || !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("corruption error %v does not match ErrCorrupt/ErrArtifactMismatch", err)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Fsync: "sometimes"}); err == nil {
		t.Fatal("unknown fsync policy accepted")
	}
	if _, err := Open(t.TempDir(), Options{SegmentBytes: 8}); err == nil {
		t.Fatal("segment size smaller than a record accepted")
	}
}

func TestIntervalFsyncDurableAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncInterval, FsyncInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]audit.Entry{mkEntry(0), mkEntry(1), mkEntry(2)}); err != nil {
		t.Fatal(err)
	}
	// Records may still be buffered; Replay must see them anyway.
	lsns, _ := collect(t, l, 1)
	if len(lsns) != 3 {
		t.Fatalf("Replay before flush saw %d records, want 3", len(lsns))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastLSN(); got != 3 {
		t.Fatalf("LastLSN after interval-policy close = %d, want 3", got)
	}
}

func TestStickyWriteFailure(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Append([]audit.Entry{mkEntry(0)}); err != nil {
		t.Fatal(err)
	}
	// Sabotage the active segment's descriptor: the next synced append
	// must fail, and the failure must stick.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if _, _, err := l.Append([]audit.Entry{mkEntry(1)}); err == nil {
		t.Fatal("append to closed file succeeded")
	}
	if l.Err() == nil {
		t.Fatal("write failure not sticky")
	}
	if _, _, err := l.Append([]audit.Entry{mkEntry(2)}); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
}
