package wal

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/audit"
)

// Record payload codec. WAL appends sit on the acknowledged-ingest hot
// path (every 202'd entry passes through before dispatch), so the
// payload is a flat binary layout instead of JSON: one status byte,
// the timestamp as big-endian-free little-endian unix nanoseconds, and
// the string fields as uvarint-length-prefixed bytes. Encoding is
// allocation-free into a caller-owned scratch buffer.
//
//	[u8 status][i64 unix-nanos]
//	[user][role][action][task][case]        (uvarint len + bytes each)
//	[object subject][u8 path len][path...]  (subject "" for none)

// appendString appends one uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readString consumes one length-prefixed string, returning it and the
// remaining bytes.
func readString(data []byte) (string, []byte, error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || uint64(len(data)-used) < n {
		return "", nil, fmt.Errorf("wal: string field escapes record")
	}
	return string(data[used : used+int(n)]), data[used+int(n):], nil
}

// zeroTimeNanos marks a zero time.Time, which has no unix-nano
// representation (entries decoded from trails with a missing timestamp
// carry one).
const zeroTimeNanos = int64(-1 << 63)

// appendEntry encodes e into dst.
func appendEntry(dst []byte, e *audit.Entry) []byte {
	dst = append(dst, byte(e.Status))
	nanos := zeroTimeNanos
	if !e.Time.IsZero() {
		nanos = e.Time.UnixNano()
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(nanos))
	dst = appendString(dst, e.User)
	dst = appendString(dst, e.Role)
	dst = appendString(dst, e.Action)
	dst = appendString(dst, e.Task)
	dst = appendString(dst, e.Case)
	dst = appendString(dst, e.Object.Subject)
	dst = append(dst, byte(len(e.Object.Path)))
	for _, p := range e.Object.Path {
		dst = appendString(dst, p)
	}
	return dst
}

// decodeEntry is the inverse of appendEntry.
func decodeEntry(data []byte) (audit.Entry, error) {
	var e audit.Entry
	if len(data) < 9 {
		return e, fmt.Errorf("wal: record of %d bytes is shorter than its fixed header", len(data))
	}
	e.Status = audit.Status(data[0])
	if nanos := int64(binary.LittleEndian.Uint64(data[1:])); nanos != zeroTimeNanos {
		e.Time = time.Unix(0, nanos).UTC()
	}
	data = data[9:]
	var err error
	for _, dst := range []*string{&e.User, &e.Role, &e.Action, &e.Task, &e.Case, &e.Object.Subject} {
		if *dst, data, err = readString(data); err != nil {
			return e, err
		}
	}
	if len(data) < 1 {
		return e, fmt.Errorf("wal: record missing object path count")
	}
	nPath := int(data[0])
	data = data[1:]
	if nPath > 0 {
		e.Object.Path = make([]string, nPath)
		for i := 0; i < nPath; i++ {
			if e.Object.Path[i], data, err = readString(data); err != nil {
				return e, err
			}
		}
	}
	if len(data) != 0 {
		return e, fmt.Errorf("wal: %d trailing bytes in record", len(data))
	}
	return e, nil
}

// objectPathLimit guards the u8 path-count field; policy objects in
// practice are a subject plus a handful of path components.
const objectPathLimit = 255

// checkEncodable rejects entries the codec cannot represent losslessly.
func checkEncodable(e *audit.Entry) error {
	if len(e.Object.Path) > objectPathLimit {
		return fmt.Errorf("wal: object path of %d components exceeds %d", len(e.Object.Path), objectPathLimit)
	}
	return nil
}
