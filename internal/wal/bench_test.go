package wal

import (
	"testing"
	"time"

	"repro/internal/audit"
)

func benchEntries(n int) []audit.Entry {
	es := make([]audit.Entry, n)
	for i := range es {
		es[i] = audit.Entry{
			User: "John", Role: "GP", Action: "read", Task: "T01",
			Case: "HT-1", Time: time.Unix(1000, 0), Status: audit.Success,
		}
	}
	return es
}

func BenchmarkAppendSingle(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Fsync: FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	es := benchEntries(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Append(es); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBatch256(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Fsync: FsyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	es := benchEntries(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := l.Append(es); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*256), "ns/entry")
}
