package wal

import (
	"errors"
	"os"
	"testing"

	"repro/internal/audit"
	"repro/internal/encode"
	"repro/internal/faultinject"
)

// TestChaosCorruptTails drives seeded bit rot into WAL segment tails
// and asserts the invariant the durability model stands on: damage is
// either (a) repaired as a torn tail — in which case every surviving
// record is bit-exact and the log stays appendable — or (b) reported
// loudly as ErrCorrupt / ErrArtifactMismatch. Silent loss or silently
// altered records are never acceptable outcomes.
func TestChaosCorruptTails(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, Options{Fsync: FsyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			const n = 40
			want := make([]audit.Entry, 0, n)
			for i := 0; i < n; i++ {
				want = append(want, mkEntry(i))
			}
			if _, _, err := l.Append(want); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			// Corrupt 1-3 bytes in the tail half of the segment,
			// sparing the header (header damage is a separate, always-
			// fatal case).
			path := lastSegment(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			mut := faultinject.New(seed)
			offsets := mut.CorruptBytes(data, len(data)/2, 1+int(seed)%3)
			if len(offsets) == 0 {
				t.Fatal("no bytes corrupted")
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			l2, err := Open(dir, Options{})
			if err != nil {
				// Outcome (b): loud failure, properly classified.
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, encode.ErrArtifactMismatch) {
					t.Fatalf("corruption at %v surfaced as unclassified error: %v", offsets, err)
				}
				return
			}
			defer l2.Close()
			// Outcome (a): Open interpreted the damage as a torn tail
			// (e.g. a length field now points past EOF). Every record
			// it kept must be bit-exact against the original.
			kept := 0
			err = l2.Replay(1, func(lsn uint64, e audit.Entry) error {
				i := int(lsn - 1)
				if i >= len(want) {
					return errors.New("replay produced a record that was never appended")
				}
				if !entriesEqual(e, want[i]) {
					t.Fatalf("seed %d: surviving record LSN %d altered: got %+v want %+v", seed, lsn, e, want[i])
				}
				kept++
				return nil
			})
			if err != nil {
				if !errors.Is(err, ErrCorrupt) && !errors.Is(err, encode.ErrArtifactMismatch) {
					t.Fatalf("replay after corruption surfaced as unclassified error: %v", err)
				}
				return
			}
			if kept > n {
				t.Fatalf("replay produced %d records from %d appended", kept, n)
			}
		})
	}
}

func entriesEqual(a, b audit.Entry) bool {
	if a.User != b.User || a.Role != b.Role || a.Action != b.Action ||
		a.Task != b.Task || a.Case != b.Case || a.Status != b.Status ||
		!a.Time.Equal(b.Time) || a.Object.Subject != b.Object.Subject ||
		len(a.Object.Path) != len(b.Object.Path) {
		return false
	}
	for i := range a.Object.Path {
		if a.Object.Path[i] != b.Object.Path[i] {
			return false
		}
	}
	return true
}
