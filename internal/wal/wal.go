// Package wal implements auditd's write-ahead ingest log: the
// durability layer under the streaming server (DESIGN.md §14). Every
// acknowledged entry is appended here *before* it is dispatched to a
// shard, so the set of entries the server has 202'd is exactly the set
// a restart can reconstruct: boot restores the last checkpoint and
// replays the WAL tail through the monitors. The paper's verdicts are
// only as trustworthy as the trail's completeness (§3.4); without this
// layer, every entry accepted between periodic checkpoints lived only
// in shard memory and a crash silently un-processed it.
//
// Layout. The log is a directory of segment files named by the LSN of
// their first record (%016x.wal). Each segment opens with a fixed
// header (magic, version, base LSN — the internal/encode container
// idiom) and then holds CRC-32C-framed records (encode.AppendRecordFrame),
// one per entry, LSNs implicit and sequential from the base. Rotation
// seals the active segment (flush + fsync) before the next one is
// created, so only the last segment can ever have a torn tail.
//
// Recovery semantics. Open scans the last segment: a record that runs
// past EOF (or a zero-filled tail) is the expected shape of a crash
// mid-append — it was never acknowledged — and is truncated away. A
// complete record whose CRC does not match is a different animal:
// corruption of acknowledged data. That fails loudly as ErrCorrupt
// (wrapping encode.ErrArtifactMismatch), never a silent loss.
//
// Fsync policy trades durability for ingest latency:
//
//	always    fsync once per appended batch — a kill -9 loses nothing
//	          acknowledged
//	interval  background flush+fsync every FsyncInterval — bounded loss
//	          window (the default)
//	off       no explicit fsync; the OS decides — benchmarking and
//	          don't-care workloads
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/encode"
)

// ErrCorrupt reports acknowledged WAL data that fails its integrity
// check. It wraps encode.ErrArtifactMismatch, so either sentinel
// matches with errors.Is — corruption is the same class of failure as
// a damaged automaton artifact and gets the same loud treatment.
var ErrCorrupt = fmt.Errorf("wal: corrupt segment: %w", encode.ErrArtifactMismatch)

// Fsync policies.
const (
	FsyncAlways   = "always"
	FsyncInterval = "interval"
	FsyncOff      = "off"
)

// Options tunes a log; zero values take the documented defaults.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 64 MiB).
	SegmentBytes int64
	// Fsync is the durability policy: FsyncAlways, FsyncInterval
	// (default) or FsyncOff.
	Fsync string
	// FsyncInterval is the background flush+fsync period under the
	// interval policy (default 100ms). The off policy flushes (without
	// syncing) on the same cadence so records reach the OS promptly.
	FsyncInterval time.Duration
}

func (o Options) withDefaults() (Options, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SegmentBytes < segHeaderSize+encode.FrameOverhead {
		return o, fmt.Errorf("wal: segment size %d cannot hold one record", o.SegmentBytes)
	}
	switch o.Fsync {
	case "":
		o.Fsync = FsyncInterval
	case FsyncAlways, FsyncInterval, FsyncOff:
	default:
		return o, fmt.Errorf("wal: unknown fsync policy %q (want %s|%s|%s)", o.Fsync, FsyncAlways, FsyncInterval, FsyncOff)
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	return o, nil
}

// Segment header: the encode binary-container idiom shrunk to an
// append-only file — magic that detects text-mode mangling, a version,
// and the base LSN records count up from.
//
//	[0:8)   magic 0x89 "PCW" \r \n 0x1a \n
//	[8:12)  uint32 segment format version
//	[12:16) uint32 reserved (zero)
//	[16:24) uint64 base LSN (LSN of the first record in this file)
const (
	segHeaderSize = 24
	segVersion    = 1
)

var segMagic = [8]byte{0x89, 'P', 'C', 'W', '\r', '\n', 0x1a, '\n'}

func segName(base uint64) string { return fmt.Sprintf("%016x.wal", base) }

// segment is one sealed (or active) file of the log.
type segment struct {
	base  uint64 // LSN of the first record
	count uint64 // records in the file (live for the active segment)
	size  int64  // on-disk bytes once sealed (stale for the active segment)
	path  string
}

func (s segment) last() uint64 { return s.base + s.count - 1 } // only valid when count > 0

// Log is a segmented write-ahead log of audit entries. All methods are
// safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	sealed  []segment // read-only files, ascending base LSN
	active  segment
	f       *os.File
	buf     []byte // pending bytes not yet written to f (our own buffer: one write syscall per flush)
	written int64  // bytes in f (excluding buf)
	// sealedBytes is the on-disk total of the sealed segments,
	// maintained at seal/truncate time so Stats never stats files under
	// l.mu (a metrics scrape must not stall the append hot path).
	sealedBytes int64
	nextLSN     uint64 // LSN the next appended record receives
	scratch     []byte // payload encoding scratch, reused across appends
	err         error  // sticky write failure; every later Append returns it

	stopFlush chan struct{}
	flushDone chan struct{}

	appended uint64 // records appended since Open (stats)
	synced   uint64 // explicit fsyncs issued (stats)

	// syncWait is the wall-clock time the most recent Append spent in
	// its inline fsync (zero unless the policy is always). The server
	// reads it right after Append — appends there are globally
	// serialized — to split the fsync wait out of the stage timing.
	syncWait time.Duration
}

// Open opens (or creates) the log in dir, repairing a torn tail: the
// last segment is scanned record by record, and an incomplete final
// record — the footprint of a crash mid-append — is truncated away. A
// complete record failing its CRC, a bad header, or segment files
// whose LSN ranges do not chain are ErrCorrupt.
func Open(dir string, opts Options) (*Log, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, nextLSN: 1}

	// A crash between sealing segment N and writing segment N+1's
	// header can leave a final file too short to even hold the header;
	// nothing acknowledged lives in it (records are acknowledged only
	// after the header is down), so it is discarded, not an error.
	if n := len(names); n > 0 {
		last := filepath.Join(dir, names[n-1])
		if fi, err := os.Stat(last); err != nil {
			return nil, fmt.Errorf("wal: %s: %w", last, err)
		} else if fi.Size() < segHeaderSize {
			if err := os.Remove(last); err != nil {
				return nil, fmt.Errorf("wal: removing torn segment %s: %w", last, err)
			}
			names = names[:n-1]
		}
	}

	for i, name := range names {
		path := filepath.Join(dir, name)
		isLast := i == len(names)-1
		seg, err := scanSegment(path, isLast)
		if err != nil {
			return nil, err
		}
		if seg.base != l.nextLSN && !(i == 0) {
			return nil, fmt.Errorf("%w: segment %s starts at LSN %d, want %d", ErrCorrupt, name, seg.base, l.nextLSN)
		}
		if i == 0 {
			l.nextLSN = seg.base
		}
		l.nextLSN = seg.base + seg.count
		l.sealed = append(l.sealed, seg)
	}

	// The most recent segment stays active if it has room; otherwise
	// (or when the log is empty) a fresh one is started lazily on the
	// first append.
	if n := len(l.sealed); n > 0 {
		seg := l.sealed[n-1]
		fi, err := os.Stat(seg.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %s: %w", seg.path, err)
		}
		if fi.Size() < opts.SegmentBytes {
			f, err := os.OpenFile(seg.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: reopening active segment: %w", err)
			}
			l.sealed = l.sealed[:n-1]
			l.active = seg
			l.f = f
			l.written = fi.Size()
		}
	}
	for _, seg := range l.sealed {
		l.sealedBytes += seg.size
	}

	if opts.Fsync != FsyncAlways {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

// listSegments returns the segment file names in dir, ascending.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".wal" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// scanSegment validates one segment file. Sealed segments (repair
// false) must parse end to end. For the last segment (repair true) a
// truncated final record is repaired by truncating the file at the
// last complete record; corruption is still fatal.
func scanSegment(path string, repair bool) (segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segment{}, fmt.Errorf("wal: %s: %w", path, err)
	}
	if len(data) < segHeaderSize || [8]byte(data[:8]) != segMagic {
		return segment{}, fmt.Errorf("%w: %s has no segment header", ErrCorrupt, filepath.Base(path))
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != segVersion {
		return segment{}, fmt.Errorf("%w: %s is format version %d, want %d", ErrCorrupt, filepath.Base(path), v, segVersion)
	}
	seg := segment{base: binary.LittleEndian.Uint64(data[16:]), path: path}
	off := segHeaderSize
	for off < len(data) {
		_, n, err := encode.ReadRecordFrame(data[off:])
		if errors.Is(err, encode.ErrFrameTruncated) {
			if !repair {
				return segment{}, fmt.Errorf("%w: sealed segment %s ends mid-record at byte %d", ErrCorrupt, filepath.Base(path), off)
			}
			if err := os.Truncate(path, int64(off)); err != nil {
				return segment{}, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
			}
			seg.size = int64(off)
			return seg, nil
		}
		if err != nil {
			return segment{}, fmt.Errorf("%w: %s record %d (LSN %d): %v", ErrCorrupt, filepath.Base(path), seg.count, seg.base+seg.count, err)
		}
		off += n
		seg.count++
	}
	seg.size = int64(len(data))
	return seg, nil
}

// Append encodes, frames and buffers the entries as consecutive
// records and returns their LSN range [first, last]. Under the always
// policy the batch is flushed and fsynced before Append returns —
// acknowledged means durable. A write failure is sticky: the append
// that hit it and every one after fail, so the server can degrade
// loudly instead of acknowledging into a black hole.
func (l *Log) Append(entries []audit.Entry) (first, last uint64, err error) {
	if len(entries) == 0 {
		return 0, 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return 0, 0, l.err
	}
	first = l.nextLSN
	// Validate the whole batch before buffering any of it, so a
	// rejected batch leaves no partial records behind.
	for i := range entries {
		if err := checkEncodable(&entries[i]); err != nil {
			return 0, 0, err
		}
	}
	for i := range entries {
		if l.f == nil {
			if err := l.openSegmentLocked(); err != nil {
				return 0, 0, l.fail(err)
			}
		}
		l.scratch = appendEntry(l.scratch[:0], &entries[i])
		l.buf = encode.AppendRecordFrame(l.buf, l.scratch)
		l.nextLSN++
		l.appended++
		if l.written+int64(len(l.buf)) >= l.opts.SegmentBytes {
			if err := l.sealLocked(); err != nil {
				return 0, 0, l.fail(err)
			}
		} else if len(l.buf) >= flushChunk {
			// Push full chunks into the page cache as we go: without
			// this the buffer balloons toward a whole segment between
			// interval flushes and append-growth memmove dominates the
			// producer (fsync policy is untouched — a write is not a
			// sync, and flushChunk capacity is reused forever after).
			if err := l.flushLocked(); err != nil {
				return 0, 0, l.fail(err)
			}
		}
	}
	l.syncWait = 0
	if l.opts.Fsync == FsyncAlways {
		t0 := time.Now()
		if err := l.syncLocked(); err != nil {
			return 0, 0, l.fail(err)
		}
		l.syncWait = time.Since(t0)
	}
	return first, l.nextLSN - 1, nil
}

// AppendSyncWait reports the wall-clock time the most recent Append
// spent in its inline fsync — zero under the interval and off
// policies, where durability is deferred and Append never waits.
func (l *Log) AppendSyncWait() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncWait
}

// flushChunk bounds the in-memory append buffer: once this many bytes
// are pending they are written (not synced) to the active segment, so
// the buffer's capacity is reused instead of regrowing toward a whole
// segment.
const flushChunk = 256 << 10

// fail records a sticky failure and returns it.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// openSegmentLocked starts a fresh active segment at nextLSN.
func (l *Log) openSegmentLocked() error {
	path := filepath.Join(l.dir, segName(l.nextLSN))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:], l.nextLSN)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	l.f = f
	l.active = segment{base: l.nextLSN, path: path}
	l.written = segHeaderSize
	return nil
}

// flushLocked pushes the pending buffer into the file with one write.
func (l *Log) flushLocked() error {
	if len(l.buf) == 0 || l.f == nil {
		return nil
	}
	n, err := l.f.Write(l.buf)
	l.written += int64(n)
	if err != nil {
		return fmt.Errorf("wal: writing segment: %w", err)
	}
	l.buf = l.buf[:0]
	return nil
}

// syncLocked flushes and fsyncs the active segment.
func (l *Log) syncLocked() error {
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.synced++
	return nil
}

// sealLocked durably closes the active segment. Rotation always syncs
// — whatever the policy — so a segment's existence implies its
// predecessor is complete on disk, which is what lets Open repair only
// the last one.
func (l *Log) sealLocked() error {
	if l.f == nil {
		return nil
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	l.active.count = l.nextLSN - l.active.base
	l.active.size = l.written // buf is empty after syncLocked
	l.sealed = append(l.sealed, l.active)
	l.sealedBytes += l.written
	l.f = nil
	l.written = 0
	return nil
}

// flushLoop services the interval and off policies in the background.
func (l *Log) flushLoop() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			l.mu.Lock()
			if l.err == nil {
				var err error
				if l.opts.Fsync == FsyncInterval {
					err = l.syncLocked()
				} else {
					err = l.flushLocked()
				}
				if err != nil {
					l.fail(err)
				}
			}
			l.mu.Unlock()
		}
	}
}

// Sync flushes buffered records and fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return l.err
	}
	if err := l.syncLocked(); err != nil {
		return l.fail(err)
	}
	return nil
}

// Close flushes, fsyncs and closes the log. The log is unusable
// afterwards.
func (l *Log) Close() error {
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
		l.stopFlush = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.syncLocked()
	if l.f != nil {
		if cerr := l.f.Close(); err == nil {
			err = cerr
		}
		l.f = nil
	}
	if l.err == nil {
		l.err = errClosed
	}
	return err
}

var errClosed = errors.New("wal: log closed")

// LastLSN returns the LSN of the most recently appended record (0 when
// the log is empty).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Err returns the sticky write failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if errors.Is(l.err, errClosed) {
		return nil
	}
	return l.err
}

// Stats reports log totals: records appended since Open, explicit
// fsyncs, sealed segment count and total bytes (including records
// still in the append buffer). Sealed sizes are tracked incrementally
// at seal/truncate time, so no filesystem call happens under the lock
// — a metrics scrape never stalls the append hot path.
func (l *Log) Stats() (appended, syncs uint64, segments int, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segments = len(l.sealed)
	bytes = l.sealedBytes
	if l.f != nil {
		segments++
		bytes += l.written + int64(len(l.buf))
	}
	return l.appended, l.synced, segments, bytes
}

// TruncateBefore removes sealed segments every record of which has
// LSN <= lsn — the checkpoint high-water mark. The active segment is
// never removed. Returns how many segments were deleted.
func (l *Log) TruncateBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.sealed) > 0 {
		seg := l.sealed[0]
		if seg.count == 0 || seg.last() > lsn {
			break
		}
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return removed, fmt.Errorf("wal: removing sealed segment: %w", err)
		}
		l.sealed = l.sealed[1:]
		l.sealedBytes -= seg.size
		removed++
	}
	return removed, nil
}

// Replay streams every record still in the log, in LSN order, into fn.
// Records with LSN < from are skipped (but still integrity-checked).
// The log must be quiescent — Replay reads the files directly and
// flushes pending buffers first. Any integrity failure is ErrCorrupt:
// Open already repaired the only legitimately torn region.
func (l *Log) Replay(from uint64, fn func(lsn uint64, e audit.Entry) error) error {
	l.mu.Lock()
	if l.err != nil {
		l.mu.Unlock()
		return l.err
	}
	if err := l.flushLocked(); err != nil {
		l.mu.Unlock()
		return l.fail(err)
	}
	segs := append([]segment(nil), l.sealed...)
	if l.f != nil {
		active := l.active
		active.count = l.nextLSN - active.base
		segs = append(segs, active)
	}
	l.mu.Unlock()

	for _, seg := range segs {
		if seg.count > 0 && seg.last() < from {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return fmt.Errorf("wal: replaying %s: %w", seg.path, err)
		}
		if len(data) < segHeaderSize {
			return fmt.Errorf("%w: segment %s lost its header", ErrCorrupt, filepath.Base(seg.path))
		}
		off := segHeaderSize
		lsn := seg.base
		for off < len(data) {
			payload, n, err := encode.ReadRecordFrame(data[off:])
			if err != nil {
				return fmt.Errorf("%w: %s LSN %d: %v", ErrCorrupt, filepath.Base(seg.path), lsn, err)
			}
			if lsn >= from {
				e, err := decodeEntry(payload)
				if err != nil {
					return fmt.Errorf("%w: %s LSN %d: %v", ErrCorrupt, filepath.Base(seg.path), lsn, err)
				}
				if err := fn(lsn, e); err != nil {
					return err
				}
			}
			off += n
			lsn++
		}
	}
	return nil
}
