package cows

import (
	"fmt"
	"strings"
)

// LabelKind distinguishes the transition labels the closed-system
// semantics produces: communications (synchronizations) and executed
// kills.
type LabelKind int

const (
	// LComm is a communication p·o(v̄) between an invoke and a
	// matching request.
	LComm LabelKind = iota
	// LKill is an executed kill signal, the paper's † label.
	LKill
)

// Label is a transition label of the COWS labeled transition system.
//
// For LComm labels, Partner and Op identify the endpoint in display form
// (private names are shown with their source spelling, e.g. "sys", as in
// the paper's figures) and Args carries the ground values communicated.
// For LKill labels, KillLabel names the killer label that fired.
type Label struct {
	Kind      LabelKind
	Partner   string
	Op        string
	Args      []string
	KillLabel string
}

// CommLabel builds a communication label, mainly for tests and
// expectations.
func CommLabel(partner, op string, args ...string) Label {
	return Label{Kind: LComm, Partner: partner, Op: op, Args: args}
}

// KillLabelOf builds an executed-kill label.
func KillLabelOf(k string) Label {
	return Label{Kind: LKill, KillLabel: k}
}

// Endpoint renders "partner.op"; empty for kill labels.
func (l Label) Endpoint() string {
	if l.Kind != LComm {
		return ""
	}
	return l.Partner + "." + l.Op
}

// String renders the label as in the paper: "P.T01", "P.S3(msg1)" when
// values are communicated, or "†k" for kills.
func (l Label) String() string {
	switch l.Kind {
	case LComm:
		if len(l.Args) == 0 {
			return l.Endpoint()
		}
		return fmt.Sprintf("%s(%s)", l.Endpoint(), strings.Join(l.Args, ","))
	case LKill:
		return "†" + l.KillLabel
	default:
		return fmt.Sprintf("label(%d)", int(l.Kind))
	}
}

// Key returns a canonical comparable form of the label including values,
// used for deduplication and deterministic ordering.
func (l Label) Key() string { return l.String() }

// Origins decodes the set of origin tasks carried by the label's values.
// The BPMN encoder passes token provenance as the single argument of
// every token-passing communication; Origins flattens all arguments'
// set encodings (see SetValue) into one sorted element list.
func (l Label) Origins() []string {
	var all []string
	for _, a := range l.Args {
		all = append(all, SetElems(a)...)
	}
	if len(all) == 0 {
		return nil
	}
	return SetElems(SetValue(all...))
}

// Transition is one step of the labeled transition system: a label and
// the successor service.
type Transition struct {
	Label Label
	Next  Service
}
