package cows

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Engine derives the transitions of COWS services under the closed-system
// operational semantics: the observable steps of a complete service are
// communications between its own invoke and request activities, plus
// executed kill signals (which take priority, as in COWS).
//
// An Engine carries a freshness counter used to alpha-rename bound
// identifiers when replications unfold; the counter is atomic and
// derivation never mutates services, so an Engine is safe for concurrent
// use.
type Engine struct {
	fresh atomic.Int64
}

// NewEngine returns a ready-to-use derivation engine.
func NewEngine() *Engine { return &Engine{} }

// Step returns the outgoing transitions of s, deterministically ordered
// by (label, successor) and deduplicated. Successor services are
// Normalized. If any kill signal is executable, only kill transitions
// are returned (kill priority).
func (e *Engine) Step(s Service) ([]Transition, error) {
	exposed := e.expose(s)
	sc := &scanner{}
	sc.scan(exposed, nil, nil)
	if sc.err != nil {
		return nil, sc.err
	}

	var out []Transition
	if len(sc.kills) > 0 {
		for _, k := range sc.kills {
			next, err := applyKill(exposed, k)
			if err != nil {
				return nil, err
			}
			out = append(out, Transition{
				Label: Label{Kind: LKill, KillLabel: display(k.label)},
				Next:  Normalize(next),
			})
		}
		return dedupSort(out), nil
	}

	for _, inv := range sc.invokes {
		for _, req := range sc.requests {
			if inv.key != req.key {
				continue
			}
			sigma, ok := matchParams(req.params, inv.args)
			if !ok {
				continue
			}
			next, err := applyComm(exposed, inv, req, sigma)
			if err != nil {
				return nil, err
			}
			out = append(out, Transition{
				Label: Label{
					Kind:    LComm,
					Partner: display(inv.partner),
					Op:      display(inv.op),
					Args:    inv.args,
				},
				Next: Normalize(next),
			})
		}
	}
	return dedupSort(out), nil
}

// expose unfolds every replication in active position exactly once:
// *s becomes s' | *s with s' an alpha-fresh copy. One unfolding per step
// suffices for services where a single replica never needs to
// synchronize with a second replica of itself within one transition,
// which holds for all BPMN encodings produced by internal/encode.
func (e *Engine) expose(s Service) Service {
	switch t := s.(type) {
	case *Par:
		kids := make([]Service, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = e.expose(k)
		}
		return &Par{Kids: kids}
	case *Scope:
		return &Scope{Kind: t.Kind, Ident: t.Ident, Body: e.expose(t.Body)}
	case *Protect:
		return &Protect{Body: e.expose(t.Body)}
	case *Repl:
		copyBody := freshen(t.Body, func() int { return int(e.fresh.Add(1)) })
		return &Par{Kids: []Service{e.expose(copyBody), t}}
	default:
		return s
	}
}

// display strips the alpha-renaming suffix ("~n") so labels read as in
// the paper's figures regardless of how many unfoldings happened.
func display(ident string) string {
	if i := strings.IndexByte(ident, '~'); i >= 0 {
		return ident[:i]
	}
	return ident
}

//
// Scanning: collect executable atoms (exposed invokes, requests, kills)
// together with the information needed to rewrite the tree when they
// fire.
//

type invokeAtom struct {
	path    []int
	key     string // privacy-resolved endpoint
	partner string
	op      string
	args    []string
}

type requestAtom struct {
	path    []int // node to replace: the Request itself, or its enclosing Choice
	key     string
	partner string
	op      string
	params  []Pattern
	cont    Service
	binders map[string][]int // pattern variable -> path of its binder scope
}

type killAtom struct {
	label     string
	scopePath []int // binder [k] scope
}

// scopeRef resolves an identifier occurrence to its binder.
type scopeRef struct {
	ident string
	kind  DeclKind
	path  []int
}

type scanner struct {
	invokes  []invokeAtom
	requests []requestAtom
	kills    []killAtom
	err      error
}

// scan walks the exposed service. env is the stack of enclosing scope
// declarations (innermost last); path addresses the current node.
func (sc *scanner) scan(s Service, path []int, env []scopeRef) {
	switch t := s.(type) {
	case nil, Nil:
	case *Invoke:
		args := make([]string, len(t.Args))
		for i, a := range t.Args {
			v, ok := a.eval(nil)
			if !ok {
				// Unbound variable argument: the invoke is stuck
				// until an enclosing communication substitutes it.
				return
			}
			args[i] = v
		}
		sc.invokes = append(sc.invokes, invokeAtom{
			path:    clonePath(path),
			key:     endpointKey(t.Partner, t.Op, env),
			partner: t.Partner,
			op:      t.Op,
			args:    args,
		})
	case *Request:
		sc.addRequest(t, path, env)
	case *Choice:
		for _, b := range t.Branches {
			sc.addRequest(b, path, env)
		}
	case *Par:
		for i, k := range t.Kids {
			sc.scan(k, append(path, i), env)
		}
	case *Scope:
		sc.scan(t.Body, append(path, 0), append(env, scopeRef{ident: t.Ident, kind: t.Kind, path: clonePath(path)}))
	case *Protect:
		sc.scan(t.Body, append(path, 0), env)
	case *Kill:
		ref, ok := lookup(env, t.Label, DeclKill)
		if !ok {
			// Free killer label: stuck (cannot be delimited).
			return
		}
		sc.kills = append(sc.kills, killAtom{label: t.Label, scopePath: ref.path})
	case *Repl:
		// Already represented by its exposed unfolding; skip.
		_ = t
	}
}

func (sc *scanner) addRequest(r *Request, path []int, env []scopeRef) {
	binders := map[string][]int{}
	for _, p := range r.Params {
		v, isVar := p.(PVar)
		if !isVar {
			continue
		}
		ref, ok := lookup(env, string(v), DeclVar)
		if !ok {
			sc.err = fmt.Errorf("cows: request %s.%s uses unbound variable %q", r.Partner, r.Op, string(v))
			return
		}
		binders[string(v)] = ref.path
	}
	sc.requests = append(sc.requests, requestAtom{
		path:    clonePath(path),
		key:     endpointKey(r.Partner, r.Op, env),
		partner: r.Partner,
		op:      r.Op,
		params:  r.Params,
		cont:    r.Cont,
		binders: binders,
	})
}

// endpointKey resolves partner/op privacy: an identifier bound by a
// DeclName scope is qualified with its binder's position, so equal
// spellings in different scopes (e.g. two gateways' private "sys") never
// match each other.
func endpointKey(partner, op string, env []scopeRef) string {
	return resolveIdent(partner, env) + "." + resolveIdent(op, env)
}

func resolveIdent(ident string, env []scopeRef) string {
	if ref, ok := lookup(env, ident, DeclName); ok {
		return ident + "@" + pathString(ref.path)
	}
	return ident
}

// lookup finds the innermost binder of ident with the given kind,
// respecting shadowing across kinds: any closer binder of the same
// ident (of whatever kind) shadows.
func lookup(env []scopeRef, ident string, kind DeclKind) (scopeRef, bool) {
	for i := len(env) - 1; i >= 0; i-- {
		if env[i].ident == ident {
			if env[i].kind == kind {
				return env[i], true
			}
			return scopeRef{}, false
		}
	}
	return scopeRef{}, false
}

func clonePath(p []int) []int {
	out := make([]int, len(p))
	copy(out, p)
	return out
}

func pathString(p []int) string {
	parts := make([]string, len(p))
	for i, x := range p {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, "/")
}

//
// Rewriting
//

// replaceAt rebuilds s with the node at path transformed by f.
func replaceAt(s Service, path []int, f func(Service) (Service, error)) (Service, error) {
	if len(path) == 0 {
		return f(s)
	}
	idx, rest := path[0], path[1:]
	switch t := s.(type) {
	case *Par:
		if idx < 0 || idx >= len(t.Kids) {
			return nil, fmt.Errorf("cows: path index %d out of range in parallel of %d", idx, len(t.Kids))
		}
		kids := make([]Service, len(t.Kids))
		copy(kids, t.Kids)
		nk, err := replaceAt(kids[idx], rest, f)
		if err != nil {
			return nil, err
		}
		kids[idx] = nk
		return &Par{Kids: kids}, nil
	case *Scope:
		if idx != 0 {
			return nil, fmt.Errorf("cows: invalid path index %d into scope", idx)
		}
		body, err := replaceAt(t.Body, rest, f)
		if err != nil {
			return nil, err
		}
		return &Scope{Kind: t.Kind, Ident: t.Ident, Body: body}, nil
	case *Protect:
		if idx != 0 {
			return nil, fmt.Errorf("cows: invalid path index %d into protect", idx)
		}
		body, err := replaceAt(t.Body, rest, f)
		if err != nil {
			return nil, err
		}
		return &Protect{Body: body}, nil
	default:
		return nil, fmt.Errorf("cows: path descends into non-composite node %T", s)
	}
}

// applyComm rewrites the exposed tree for a communication: the invoke
// becomes 0, the request (or its whole choice) becomes its continuation,
// and every variable bound by the match is substituted throughout its
// binder scope, consuming the scope (the COWS delimitation rule).
func applyComm(s Service, inv invokeAtom, req requestAtom, sigma map[string]string) (Service, error) {
	t, err := replaceAt(s, inv.path, func(Service) (Service, error) { return Nil{}, nil })
	if err != nil {
		return nil, err
	}
	t, err = replaceAt(t, req.path, func(node Service) (Service, error) {
		switch node.(type) {
		case *Request, *Choice:
			return req.cont, nil
		default:
			return nil, fmt.Errorf("cows: request path does not address a request/choice, found %T", node)
		}
	})
	if err != nil {
		return nil, err
	}

	// Dissolve binder scopes deepest-first so ancestor paths stay valid.
	type binding struct {
		ident string
		path  []int
	}
	var binds []binding
	for v := range sigma {
		bp, ok := req.binders[v]
		if !ok {
			return nil, fmt.Errorf("cows: bound variable %q has no recorded binder", v)
		}
		binds = append(binds, binding{ident: v, path: bp})
	}
	sort.Slice(binds, func(i, j int) bool { return len(binds[i].path) > len(binds[j].path) })
	for _, b := range binds {
		val := sigma[b.ident]
		t, err = replaceAt(t, b.path, func(node Service) (Service, error) {
			scope, ok := node.(*Scope)
			if !ok || scope.Kind != DeclVar || scope.Ident != b.ident {
				return nil, fmt.Errorf("cows: binder path for %q does not address its scope", b.ident)
			}
			return subst(scope.Body, map[string]string{b.ident: val}), nil
		})
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// applyKill rewrites the exposed tree for an executed kill: everything
// unprotected inside the killer label's scope is terminated.
func applyKill(s Service, k killAtom) (Service, error) {
	return replaceAt(s, k.scopePath, func(node Service) (Service, error) {
		scope, ok := node.(*Scope)
		if !ok || scope.Kind != DeclKill || scope.Ident != k.label {
			return nil, fmt.Errorf("cows: kill scope path for %q does not address its scope", k.label)
		}
		body := halt(scope.Body)
		if identOccurs(body, k.label) {
			return &Scope{Kind: DeclKill, Ident: k.label, Body: body}, nil
		}
		return body, nil
	})
}

func dedupSort(ts []Transition) []Transition {
	type keyed struct {
		key string
		t   Transition
	}
	ks := make([]keyed, 0, len(ts))
	for _, t := range ts {
		ks = append(ks, keyed{key: t.Label.Key() + "\x00" + Canon(t.Next), t: t})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := ts[:0]
	var prev string
	for i, k := range ks {
		if i > 0 && k.key == prev {
			continue
		}
		prev = k.key
		out = append(out, k.t)
	}
	return out
}
