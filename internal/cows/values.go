package cows

import (
	"sort"
	"strings"
)

// Communicated values are plain strings. The BPMN encoder additionally
// uses values that denote *sets of names* — the set of origin tasks a
// token carries. A set value is the '+'-joined, duplicate-free, sorted
// concatenation of its elements; the empty set is the distinguished
// value "-". This keeps values first-class names as far as the calculus
// is concerned while letting the compliance layer decode them.

// EmptySet is the canonical encoding of the empty origin set.
const EmptySet = "-"

// SetValue encodes a set of names as a canonical value string.
func SetValue(elems ...string) string {
	seen := map[string]bool{}
	var out []string
	for _, e := range elems {
		for _, part := range strings.Split(e, "+") {
			if part == "" || part == EmptySet || seen[part] {
				continue
			}
			seen[part] = true
			out = append(out, part)
		}
	}
	if len(out) == 0 {
		return EmptySet
	}
	sort.Strings(out)
	return strings.Join(out, "+")
}

// SetElems decodes a canonical set value into its elements. A plain name
// decodes to a singleton; EmptySet decodes to nil.
func SetElems(v string) []string {
	if v == "" || v == EmptySet {
		return nil
	}
	parts := strings.Split(v, "+")
	out := parts[:0]
	for _, p := range parts {
		if p != "" && p != EmptySet {
			out = append(out, p)
		}
	}
	return out
}

// Expr is an invoke-argument expression, evaluated to a ground value when
// the invoke fires. Concrete types: Lit, Var, UnionExpr.
type Expr interface {
	isExpr()
	// eval resolves the expression under the substitution env. It
	// returns ok=false when a variable is unbound (the invoke is then
	// not yet executable).
	eval(env map[string]string) (string, bool)
}

// Lit is a literal name.
type Lit string

// Var references a communication variable bound by an enclosing [x].
type Var string

// UnionExpr computes the set union of its operand values.
type UnionExpr struct {
	Operands []Expr
}

func (Lit) isExpr()        {}
func (Var) isExpr()        {}
func (*UnionExpr) isExpr() {}

func (l Lit) eval(map[string]string) (string, bool) { return string(l), true }

func (v Var) eval(env map[string]string) (string, bool) {
	val, ok := env[string(v)]
	return val, ok
}

func (u *UnionExpr) eval(env map[string]string) (string, bool) {
	elems := make([]string, 0, len(u.Operands))
	for _, op := range u.Operands {
		v, ok := op.eval(env)
		if !ok {
			return "", false
		}
		elems = append(elems, v)
	}
	return SetValue(elems...), true
}

// Union builds a set-union expression.
func Union(ops ...Expr) Expr {
	if len(ops) == 1 {
		return ops[0]
	}
	return &UnionExpr{Operands: ops}
}

// Pattern is a request parameter: a literal to be matched or a variable
// to be bound.
type Pattern interface{ isPattern() }

// PLit matches a value equal to the literal.
type PLit string

// PVar binds the received value to a variable.
type PVar string

func (PLit) isPattern() {}
func (PVar) isPattern() {}

// matchParams matches ground values against request patterns, returning
// the variable bindings, or ok=false when arities differ or a literal
// mismatches.
func matchParams(patterns []Pattern, values []string) (map[string]string, bool) {
	if len(patterns) != len(values) {
		return nil, false
	}
	var binds map[string]string
	for i, p := range patterns {
		switch t := p.(type) {
		case PLit:
			if string(t) != values[i] {
				return nil, false
			}
		case PVar:
			if binds == nil {
				binds = map[string]string{}
			}
			if prev, dup := binds[string(t)]; dup {
				// Non-linear pattern: repeated variable must
				// receive equal values.
				if prev != values[i] {
					return nil, false
				}
				continue
			}
			binds[string(t)] = values[i]
		}
	}
	return binds, true
}
