package cows

import (
	"strings"
	"testing"
)

// step1 derives one transition and returns its residual, asserting the
// label.
func step1(t *testing.T, src, wantLabel string) Service {
	t.Helper()
	e := NewEngine()
	ts, err := e.Step(MustParse(src))
	if err != nil {
		t.Fatalf("Step(%s): %v", src, err)
	}
	for _, tr := range ts {
		if tr.Label.String() == wantLabel {
			return tr.Next
		}
	}
	var have []string
	for _, tr := range ts {
		have = append(have, tr.Label.String())
	}
	t.Fatalf("label %q not available from %s; have %v", wantLabel, src, have)
	return nil
}

func TestSubstitutionUnderChoice(t *testing.T) {
	// Binding x must rewrite occurrences inside a sibling choice's
	// branch continuations.
	next := step1(t,
		`[x:var]( P.in?<$x>.0 | (Q.a?<>.Q.out!<$x> + Q.b?<>.0) ) | P.in!<v>`,
		"P.in(v)")
	if !strings.Contains(String(next), "Q.out!<v>") {
		t.Fatalf("substitution did not reach choice branch: %s", String(next))
	}
}

func TestSubstitutionUnderProtectAndRepl(t *testing.T) {
	next := step1(t,
		`[x:var]( P.in?<$x>.0 | {| *Q.a?<>.Q.out!<$x> |} ) | P.in!<v>`,
		"P.in(v)")
	if !strings.Contains(String(next), "Q.out!<v>") {
		t.Fatalf("substitution did not reach protected replication: %s", String(next))
	}
}

func TestSubstitutionShadowing(t *testing.T) {
	// The inner [x] shadows the outer binding: its occurrences must
	// not be rewritten.
	next := step1(t,
		`[x:var]( P.in?<$x>.0 | [x:var] Q.r?<$x>.Q.out!<$x> ) | P.in!<v>`,
		"P.in(v)")
	// The inner scope must still be a variable binder with its own x.
	if !strings.Contains(String(next), "?<$x") {
		t.Fatalf("inner binder lost: %s", String(next))
	}
	// Feeding the inner request now yields its own value, not v.
	e := NewEngine()
	ts, err := e.Step(Parallel(next, MustParse(`Q.r!<w>`)))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range ts {
		if tr.Label.String() == "Q.r(w)" {
			found = true
			if !strings.Contains(String(tr.Next), "Q.out!<w>") {
				t.Fatalf("inner binding wrong: %s", String(tr.Next))
			}
		}
	}
	if !found {
		t.Fatalf("inner request did not fire")
	}
}

func TestSubstitutionIntoUnionExpr(t *testing.T) {
	// A union expression with one bound and one literal operand.
	s := Parallel(
		NewScope(cows_DeclVar(), "x",
			Req("P", "in", []string{"$x"},
				InvE("P", "out", Union(Var("x"), Lit("T9"))))),
		Inv("P", "in", "T1"),
		NewScope(cows_DeclVar(), "y", Req("P", "out", []string{"$y"}, Zero())),
	)
	e := NewEngine()
	ts, err := e.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Label.String() != "P.in(T1)" {
		t.Fatalf("first step: %v", ts)
	}
	ts, err = e.Step(ts[0].Next)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Label.String() != "P.out(T1+T9)" {
		t.Fatalf("union step: %v", ts)
	}
}

// cows_DeclVar avoids an unused-import dance in this focused test file.
func cows_DeclVar() DeclKind { return DeclVar }

func TestSubstitutionUsedAsMatchLiteral(t *testing.T) {
	// An outer binding whose variable reappears in a later request's
	// parameter position acts as a match literal after substitution:
	// the request then only accepts the bound value.
	src := `[x:var]( P.in?<$x>.( Q.r?<$x>.Q.yes!<> ) ) | P.in!<v> | Q.r!<w> | Q.r!<v>`
	next := step1(t, src, "P.in(v)")
	e := NewEngine()
	ts, err := e.Step(next)
	if err != nil {
		t.Fatal(err)
	}
	// Only the matching invoke can fire the request.
	for _, tr := range ts {
		if tr.Label.String() == "Q.r(w)" {
			t.Fatalf("substituted pattern matched wrong value")
		}
	}
	found := false
	for _, tr := range ts {
		if tr.Label.String() == "Q.r(v)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("substituted pattern did not match bound value; %v", ts)
	}
}

func TestKillInsideProtectSurvivesOuterKill(t *testing.T) {
	// {|...|} shields its contents from a kill, including a nested
	// kill activity for a different label.
	src := `[k:kill][q:kill]( kill(k) | P.a!<> | {| kill(q) | P.b!<> |} )`
	e := NewEngine()
	ts, err := e.Step(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	// Kill priority: both kills are executable; after †k the protected
	// block (with kill(q) and P.b) must survive while P.a dies.
	var afterK Service
	for _, tr := range ts {
		if tr.Label.String() == "†k" {
			afterK = tr.Next
		}
	}
	if afterK == nil {
		t.Fatalf("no †k transition: %v", ts)
	}
	if strings.Contains(String(afterK), "P.a!") {
		t.Fatalf("unprotected invoke survived kill: %s", String(afterK))
	}
	if !strings.Contains(String(afterK), "P.b!") {
		t.Fatalf("protected invoke did not survive: %s", String(afterK))
	}
}

func TestHaltKeepsScopedProtection(t *testing.T) {
	// A protected block nested under a scope inside the killed region
	// survives with its scope intact.
	src := `[k:kill]( kill(k) | [n:name]( n.x!<> | {| n.x?<>.P.done!<> |} ) )`
	e := NewEngine()
	ts, err := e.Step(MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || ts[0].Label.Kind != LKill {
		t.Fatalf("transitions: %v", ts)
	}
	after := String(ts[0].Next)
	if strings.Contains(after, "n.x!") {
		t.Fatalf("unprotected invoke survived: %s", after)
	}
	if !strings.Contains(after, "n.x?") {
		t.Fatalf("protected request lost: %s", after)
	}
}

func TestInvokeConstructors(t *testing.T) {
	i1 := Inv("P", "T", "a", "b")
	i2 := InvE("P", "T", Lit("a"), Lit("b"))
	if Canon(i1) != Canon(i2) {
		t.Fatalf("Inv and InvE disagree: %s vs %s", Canon(i1), Canon(i2))
	}
	if i1.Endpoint() != "P.T" {
		t.Fatalf("Endpoint = %s", i1.Endpoint())
	}
	r := Req("P", "T", []string{"lit", "$v"}, nil)
	if r.Endpoint() != "P.T" {
		t.Fatalf("request endpoint = %s", r.Endpoint())
	}
	if _, ok := r.Params[0].(PLit); !ok {
		t.Fatalf("param 0 should be literal")
	}
	if _, ok := r.Params[1].(PVar); !ok {
		t.Fatalf("param 1 should be variable")
	}
	if !IsNil(r.Cont) {
		t.Fatalf("nil continuation should become 0")
	}
}
