// Package cows implements the mini Calculus for Orchestration of Web
// Services (COWS) used by Petković, Prandi and Zannone to give BPMN
// processes a formal semantics (SDM@VLDB 2011, Section 3.3).
//
// The grammar implemented here is exactly the one the paper presents:
//
//	s ::= p·o!<w>  |  [d]s  |  g  |  s|s  |  {|s|}  |  kill(k)  |  *s
//	g ::= 0  |  p·o?<w>.s  |  g+g
//
// Services are immutable trees. All derivation functions return new trees
// and never mutate their inputs, so services can be shared freely across
// goroutines once built.
//
// Extensions relative to the paper's mini-calculus, both needed by the
// BPMN encoder of the companion internal/encode package:
//
//   - Invoke arguments may be Union expressions, which at firing time
//     compute the set-union of their operands (values are canonical
//     '+'-separated sorted name sets, see values.go). Tokens in the
//     encoded processes carry the set of "origin" tasks that produced
//     them; OR/AND joins union the sets of their incoming tokens.
//   - Scope declarations carry an explicit kind (name, variable or killer
//     label) rather than relying on three disjoint ambient sets.
package cows

import (
	"fmt"
	"sort"
	"strings"
)

// DeclKind says what a Scope delimiter [d] binds: a private name, a
// communication variable, or a killer label.
type DeclKind int

// The three kinds of COWS delimited identifiers.
const (
	DeclName DeclKind = iota
	DeclVar
	DeclKill
)

// String returns "name", "var" or "kill".
func (k DeclKind) String() string {
	switch k {
	case DeclName:
		return "name"
	case DeclVar:
		return "var"
	case DeclKill:
		return "kill"
	default:
		return fmt.Sprintf("DeclKind(%d)", int(k))
	}
}

// Service is a COWS term. The concrete types are Nil, Invoke, Choice
// (whose branches are Requests), Par, Scope, Protect, Kill and Repl.
// A bare Request is also a Service (a one-branch choice).
type Service interface {
	// isService is a marker; the sum of service types is closed.
	isService()
}

// Nil is the empty activity 0.
type Nil struct{}

// Invoke is the sending activity p·o!<w̄>.
type Invoke struct {
	Partner string
	Op      string
	Args    []Expr
}

// Request is the receiving activity p·o?<w̄>.s. It doubles as a choice
// branch; a Request used directly as a Service behaves as a singleton
// Choice.
type Request struct {
	Partner string
	Op      string
	Params  []Pattern
	Cont    Service
}

// Choice is the guarded choice g+g between two or more request branches.
type Choice struct {
	Branches []*Request
}

// Par is the parallel composition s|s, n-ary for convenience.
type Par struct {
	Kids []Service
}

// Scope is the delimitation [d]s. Kind determines whether Ident is a
// private name, a variable or a killer label.
type Scope struct {
	Kind  DeclKind
	Ident string
	Body  Service
}

// Protect is the protection block {|s|}: its body survives kill signals.
type Protect struct {
	Body Service
}

// Kill is the forced-termination activity kill(k).
type Kill struct {
	Label string
}

// Repl is the replication *s: behaves as s | *s, unfolded lazily.
type Repl struct {
	Body Service
}

func (Nil) isService()      {}
func (*Invoke) isService()  {}
func (*Request) isService() {}
func (*Choice) isService()  {}
func (*Par) isService()     {}
func (*Scope) isService()   {}
func (*Protect) isService() {}
func (*Kill) isService()    {}
func (*Repl) isService()    {}

// Endpoint renders the activity endpoint "partner.op".
func (i *Invoke) Endpoint() string { return i.Partner + "." + i.Op }

// Endpoint renders the activity endpoint "partner.op".
func (r *Request) Endpoint() string { return r.Partner + "." + r.Op }

//
// Constructors. These keep trees in a lightly normalized shape (flattened
// parallels, no empty choices) so that structural work downstream stays
// simple. Full canonicalization lives in canon.go.
//

// Zero returns the empty activity.
func Zero() Service { return Nil{} }

// Inv builds an invoke activity with literal arguments.
func Inv(partner, op string, args ...string) *Invoke {
	ex := make([]Expr, len(args))
	for i, a := range args {
		ex[i] = Lit(a)
	}
	return &Invoke{Partner: partner, Op: op, Args: ex}
}

// InvE builds an invoke activity with expression arguments.
func InvE(partner, op string, args ...Expr) *Invoke {
	return &Invoke{Partner: partner, Op: op, Args: args}
}

// Req builds a request-prefixed service p·o?<params>.cont. Params that
// start with '$' denote variables; anything else is a literal name.
// A nil cont means the continuation is 0.
func Req(partner, op string, params []string, cont Service) *Request {
	ps := make([]Pattern, len(params))
	for i, p := range params {
		if strings.HasPrefix(p, "$") {
			ps[i] = PVar(strings.TrimPrefix(p, "$"))
		} else {
			ps[i] = PLit(p)
		}
	}
	if cont == nil {
		cont = Nil{}
	}
	return &Request{Partner: partner, Op: op, Params: ps, Cont: cont}
}

// Sum builds a guarded choice from the given branches. Zero branches
// yield 0, one branch yields the branch itself.
func Sum(branches ...*Request) Service {
	switch len(branches) {
	case 0:
		return Nil{}
	case 1:
		return branches[0]
	default:
		return &Choice{Branches: branches}
	}
}

// Parallel composes services in parallel, flattening nested parallels and
// dropping Nils. Zero kids yield 0, one kid yields the kid itself.
func Parallel(kids ...Service) Service {
	var flat []Service
	var walk func(Service)
	walk = func(s Service) {
		switch t := s.(type) {
		case Nil:
		case *Par:
			for _, k := range t.Kids {
				walk(k)
			}
		default:
			flat = append(flat, s)
		}
	}
	for _, k := range kids {
		if k == nil {
			continue
		}
		walk(k)
	}
	switch len(flat) {
	case 0:
		return Nil{}
	case 1:
		return flat[0]
	default:
		return &Par{Kids: flat}
	}
}

// NewScope wraps body in a delimiter of the given kind.
func NewScope(kind DeclKind, ident string, body Service) *Scope {
	return &Scope{Kind: kind, Ident: ident, Body: body}
}

// Protected wraps body in a protection block.
func Protected(body Service) *Protect { return &Protect{Body: body} }

// KillSig builds a kill(k) activity.
func KillSig(label string) *Kill { return &Kill{Label: label} }

// Replicate wraps body in the replication operator.
func Replicate(body Service) *Repl { return &Repl{Body: body} }

// IsNil reports whether s is structurally the empty activity (0, an empty
// parallel, or compositions thereof).
func IsNil(s Service) bool {
	switch t := s.(type) {
	case nil:
		return true
	case Nil:
		return true
	case *Par:
		for _, k := range t.Kids {
			if !IsNil(k) {
				return false
			}
		}
		return true
	case *Protect:
		return IsNil(t.Body)
	case *Scope:
		return IsNil(t.Body)
	default:
		return false
	}
}

// Size returns the number of AST nodes in s; useful for reporting and for
// sanity caps in exploration.
func Size(s Service) int {
	switch t := s.(type) {
	case nil:
		return 0
	case Nil:
		return 1
	case *Invoke:
		return 1
	case *Request:
		return 1 + Size(t.Cont)
	case *Choice:
		n := 1
		for _, b := range t.Branches {
			n += Size(b)
		}
		return n
	case *Par:
		n := 1
		for _, k := range t.Kids {
			n += Size(k)
		}
		return n
	case *Scope:
		return 1 + Size(t.Body)
	case *Protect:
		return 1 + Size(t.Body)
	case *Kill:
		return 1
	case *Repl:
		return 1 + Size(t.Body)
	default:
		return 1
	}
}

// Endpoints returns the sorted set of endpoints ("partner.op") occurring
// anywhere in s, for diagnostics.
func Endpoints(s Service) []string {
	set := map[string]bool{}
	var walk func(Service)
	walk = func(s Service) {
		switch t := s.(type) {
		case *Invoke:
			set[t.Endpoint()] = true
		case *Request:
			set[t.Endpoint()] = true
			walk(t.Cont)
		case *Choice:
			for _, b := range t.Branches {
				walk(b)
			}
		case *Par:
			for _, k := range t.Kids {
				walk(k)
			}
		case *Scope:
			walk(t.Body)
		case *Protect:
			walk(t.Body)
		case *Repl:
			walk(t.Body)
		}
	}
	walk(s)
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}
