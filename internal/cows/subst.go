package cows

import "strconv"

// subst applies the variable substitution sigma to s, returning a new
// tree. Substitution stops at an inner Scope re-declaring one of the
// substituted variables (shadowing).
func subst(s Service, sigma map[string]string) Service {
	if len(sigma) == 0 {
		return s
	}
	switch t := s.(type) {
	case nil, Nil:
		return Nil{}
	case *Invoke:
		args := make([]Expr, len(t.Args))
		changed := false
		for i, a := range t.Args {
			na := substExpr(a, sigma)
			args[i] = na
			if na != a {
				changed = true
			}
		}
		if !changed {
			return t
		}
		return &Invoke{Partner: t.Partner, Op: t.Op, Args: args}
	case *Request:
		params := make([]Pattern, len(t.Params))
		for i, p := range t.Params {
			if v, ok := p.(PVar); ok {
				if val, hit := sigma[string(v)]; hit {
					// A bound occurrence in pattern position
					// would have been shadowed by its scope;
					// reaching here means the variable was
					// substituted from an outer binding that
					// this request reuses as a match literal.
					params[i] = PLit(val)
					continue
				}
			}
			params[i] = p
		}
		return &Request{Partner: t.Partner, Op: t.Op, Params: params, Cont: subst(t.Cont, sigma)}
	case *Choice:
		branches := make([]*Request, len(t.Branches))
		for i, b := range t.Branches {
			branches[i] = subst(b, sigma).(*Request)
		}
		return &Choice{Branches: branches}
	case *Par:
		kids := make([]Service, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = subst(k, sigma)
		}
		return &Par{Kids: kids}
	case *Scope:
		if t.Kind == DeclVar {
			if _, shadowed := sigma[t.Ident]; shadowed {
				inner := shallowCopyWithout(sigma, t.Ident)
				if len(inner) == 0 {
					return t
				}
				return &Scope{Kind: t.Kind, Ident: t.Ident, Body: subst(t.Body, inner)}
			}
		}
		return &Scope{Kind: t.Kind, Ident: t.Ident, Body: subst(t.Body, sigma)}
	case *Protect:
		return &Protect{Body: subst(t.Body, sigma)}
	case *Kill:
		return t
	case *Repl:
		return &Repl{Body: subst(t.Body, sigma)}
	default:
		return s
	}
}

func substExpr(e Expr, sigma map[string]string) Expr {
	switch t := e.(type) {
	case Lit:
		return t
	case Var:
		if v, ok := sigma[string(t)]; ok {
			return Lit(v)
		}
		return t
	case *UnionExpr:
		ops := make([]Expr, len(t.Operands))
		for i, op := range t.Operands {
			ops[i] = substExpr(op, sigma)
		}
		return &UnionExpr{Operands: ops}
	default:
		return e
	}
}

func shallowCopyWithout(m map[string]string, key string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		if k != key {
			out[k] = v
		}
	}
	return out
}

// freshen alpha-renames every Scope-bound identifier in s to a fresh
// identifier drawn from next. Replication unfolds use it so that
// concurrent copies of a service do not share private names, variables or
// killer labels.
func freshen(s Service, next func() int) Service {
	return renameBound(s, map[string]string{}, next)
}

func renameBound(s Service, ren map[string]string, next func() int) Service {
	switch t := s.(type) {
	case nil, Nil:
		return Nil{}
	case *Invoke:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = renameExpr(a, ren)
		}
		return &Invoke{Partner: renameIdent(t.Partner, ren), Op: renameIdent(t.Op, ren), Args: args}
	case *Request:
		params := make([]Pattern, len(t.Params))
		for i, p := range t.Params {
			switch pt := p.(type) {
			case PLit:
				params[i] = PLit(renameIdent(string(pt), ren))
			case PVar:
				params[i] = PVar(renameIdent(string(pt), ren))
			}
		}
		return &Request{
			Partner: renameIdent(t.Partner, ren),
			Op:      renameIdent(t.Op, ren),
			Params:  params,
			Cont:    renameBound(t.Cont, ren, next),
		}
	case *Choice:
		branches := make([]*Request, len(t.Branches))
		for i, b := range t.Branches {
			branches[i] = renameBound(b, ren, next).(*Request)
		}
		return &Choice{Branches: branches}
	case *Par:
		kids := make([]Service, len(t.Kids))
		for i, k := range t.Kids {
			kids[i] = renameBound(k, ren, next)
		}
		return &Par{Kids: kids}
	case *Scope:
		fresh := t.Ident + "~" + strconv.Itoa(next())
		inner := make(map[string]string, len(ren)+1)
		for k, v := range ren {
			inner[k] = v
		}
		inner[t.Ident] = fresh
		return &Scope{Kind: t.Kind, Ident: fresh, Body: renameBound(t.Body, inner, next)}
	case *Protect:
		return &Protect{Body: renameBound(t.Body, ren, next)}
	case *Kill:
		return &Kill{Label: renameIdent(t.Label, ren)}
	case *Repl:
		return &Repl{Body: renameBound(t.Body, ren, next)}
	default:
		return s
	}
}

func renameIdent(id string, ren map[string]string) string {
	if v, ok := ren[id]; ok {
		return v
	}
	return id
}

func renameExpr(e Expr, ren map[string]string) Expr {
	switch t := e.(type) {
	case Lit:
		return Lit(renameIdent(string(t), ren))
	case Var:
		return Var(renameIdent(string(t), ren))
	case *UnionExpr:
		ops := make([]Expr, len(t.Operands))
		for i, op := range t.Operands {
			ops[i] = renameExpr(op, ren)
		}
		return &UnionExpr{Operands: ops}
	default:
		return e
	}
}

// halt implements the effect of a kill signal on a service: every
// unprotected activity is terminated (replaced by 0); protection blocks
// survive intact. See the COWS semantics, rule for kill(k).
func halt(s Service) Service {
	switch t := s.(type) {
	case nil, Nil:
		return Nil{}
	case *Invoke, *Request, *Choice, *Kill:
		return Nil{}
	case *Par:
		kids := make([]Service, 0, len(t.Kids))
		for _, k := range t.Kids {
			h := halt(k)
			if !IsNil(h) {
				kids = append(kids, h)
			}
		}
		return Parallel(kids...)
	case *Scope:
		b := halt(t.Body)
		if IsNil(b) {
			return Nil{}
		}
		return &Scope{Kind: t.Kind, Ident: t.Ident, Body: b}
	case *Protect:
		return t
	case *Repl:
		return Nil{}
	default:
		return Nil{}
	}
}
