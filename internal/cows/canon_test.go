package cows

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonAlphaInvariance(t *testing.T) {
	pairs := [][2]string{
		{`[x:var] P.T?<$x>.P.E!<$x>`, `[y:var] P.T?<$y>.P.E!<$y>`},
		{`[sys:name](sys.a!<> | sys.a?<>.0)`, `[zzz:name](zzz.a!<> | zzz.a?<>.0)`},
		{`[k:kill](kill(k) | {|P.b!<>|})`, `[q:kill](kill(q) | {|P.b!<>|})`},
		{
			`[x:var][y:var] P.T?<$x,$y>.P.E!<$y,$x>`,
			`[a:var][b:var] P.T?<$a,$b>.P.E!<$b,$a>`,
		},
	}
	for _, p := range pairs {
		a, b := MustParse(p[0]), MustParse(p[1])
		if Canon(a) != Canon(b) {
			t.Errorf("alpha-variants differ:\n %s -> %s\n %s -> %s", p[0], Canon(a), p[1], Canon(b))
		}
	}
	// And genuinely different binders must differ.
	a := MustParse(`[x:var] P.T?<$x>.P.E!<$x>`)
	b := MustParse(`[x:var] P.T?<$x>.P.E!<v>`)
	if Canon(a) == Canon(b) {
		t.Errorf("distinct terms canonize equal")
	}
}

func TestCanonParallelPermutationInvariance(t *testing.T) {
	kids := []string{`P.a!<>`, `P.b?<>.0`, `*Q.c?<>.Q.d!<>`, `[x:var] R.e?<$x>.0`}
	base := MustParse(kids[0] + "|" + kids[1] + "|" + kids[2] + "|" + kids[3])
	want := Canon(base)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(kids))
		src := ""
		for i, idx := range perm {
			if i > 0 {
				src += "|"
			}
			src += kids[idx]
		}
		if got := Canon(MustParse(src)); got != want {
			t.Fatalf("permutation %v changed canon:\n %s\n %s", perm, got, want)
		}
	}
}

func TestCanonChoicePermutationInvariance(t *testing.T) {
	a := MustParse(`P.a?<>.0 + P.b?<>.P.x!<> + P.c?<>.0`)
	b := MustParse(`P.c?<>.0 + P.a?<>.0 + P.b?<>.P.x!<>`)
	if Canon(a) != Canon(b) {
		t.Errorf("choice order changed canon")
	}
}

func TestNormalizeLaws(t *testing.T) {
	cases := [][2]string{
		// 0 | s ≡ s
		{`0 | P.a!<>`, `P.a!<>`},
		// nested parallels flatten
		{`(P.a!<> | P.b!<>) | P.c!<>`, `P.a!<> | P.b!<> | P.c!<>`},
		// dead scope elimination
		{`[n:name] P.a!<>`, `P.a!<>`},
		// s | *s ≡ *s
		{`P.T?<>.P.E!<> | *P.T?<>.P.E!<>`, `*P.T?<>.P.E!<>`},
		// alpha-variant copy also absorbed
		{`[x:var] P.T?<$x>.0 | *[y:var] P.T?<$y>.0`, `*[y:var] P.T?<$y>.0`},
		// protect of 0 is 0
		{`{|0|} | P.a!<>`, `P.a!<>`},
		// replication of 0 is 0
		{`*0 | P.a!<>`, `P.a!<>`},
	}
	for _, c := range cases {
		got := Canon(Normalize(MustParse(c[0])))
		want := Canon(MustParse(c[1]))
		if got != want {
			t.Errorf("Normalize(%q):\n got  %s\n want %s", c[0], got, want)
		}
	}
	// Normalize must NOT absorb a component that differs from the
	// replication body.
	s := Normalize(MustParse(`P.E!<> | *P.T?<>.P.E!<>`))
	if Canon(s) == Canon(MustParse(`*P.T?<>.P.E!<>`)) {
		t.Errorf("Normalize over-absorbed a distinct component")
	}
}

func TestCanonDeterministicUnderStepping(t *testing.T) {
	// Two engines stepping the same replicated service through
	// different numbers of prior derivations must produce canonically
	// equal successors (freshness suffixes are alpha-normalized away).
	src := `*[sys:name]( P.go?<>.sys.mid!<> | sys.mid?<>.P.done!<> ) | P.go!<> | P.done?<>`
	e1, e2 := NewEngine(), NewEngine()
	// Burn some freshness on e2.
	for i := 0; i < 3; i++ {
		if _, err := e2.Step(MustParse(`*[a:name](a.x!<> | a.x?<>.0) | P.kick!<> | P.kick?<>.0`)); err != nil {
			t.Fatal(err)
		}
	}
	s := MustParse(src)
	t1, err := e1.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e2.Step(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("different transition counts %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if Canon(t1[i].Next) != Canon(t2[i].Next) {
			t.Fatalf("freshness leaked into canon at %d:\n %s\n %s",
				i, Canon(t1[i].Next), Canon(t2[i].Next))
		}
	}
}

func TestSizeAndEndpoints(t *testing.T) {
	s := MustParse(`P.T!<> | P.T?<>.P.E!<> | [x:var] Q.r?<$x>.0`)
	if got := Size(s); got <= 4 {
		t.Errorf("Size = %d", got)
	}
	eps := Endpoints(s)
	want := []string{"P.E", "P.T", "Q.r"}
	if len(eps) != len(want) {
		t.Fatalf("Endpoints = %v", eps)
	}
	for i := range want {
		if eps[i] != want[i] {
			t.Errorf("Endpoints[%d] = %q, want %q", i, eps[i], want[i])
		}
	}
}

func TestSetValueProperties(t *testing.T) {
	// Idempotent, commutative, associative, deduplicating.
	if got := SetValue("b", "a", "b"); got != "a+b" {
		t.Errorf("SetValue = %q", got)
	}
	if got := SetValue(); got != EmptySet {
		t.Errorf("empty SetValue = %q", got)
	}
	if got := SetValue("-"); got != EmptySet {
		t.Errorf("SetValue(-) = %q", got)
	}
	if got := SetValue("a+b", "c"); got != "a+b+c" {
		t.Errorf("nested SetValue = %q", got)
	}
	comm := func(xs, ys []uint8) bool {
		a := namesOf(xs)
		b := namesOf(ys)
		return SetValue(SetValue(a...), SetValue(b...)) == SetValue(SetValue(b...), SetValue(a...))
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	idem := func(xs []uint8) bool {
		a := namesOf(xs)
		v := SetValue(a...)
		return SetValue(v, v) == v
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("idempotence: %v", err)
	}
	roundTrip := func(xs []uint8) bool {
		a := namesOf(xs)
		v := SetValue(a...)
		return SetValue(SetElems(v)...) == v
	}
	if err := quick.Check(roundTrip, nil); err != nil {
		t.Errorf("round trip: %v", err)
	}
}

func namesOf(xs []uint8) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		out = append(out, string(rune('a'+int(x)%5)))
	}
	return out
}

func TestIsNilAndZero(t *testing.T) {
	for _, s := range []Service{Zero(), Parallel(), Parallel(Zero(), Zero()), Protected(Zero()), NewScope(DeclName, "n", Zero())} {
		if !IsNil(s) {
			t.Errorf("IsNil(%s) = false", String(s))
		}
	}
	for _, s := range []Service{Inv("P", "a"), Req("P", "a", nil, nil), KillSig("k"), Replicate(Inv("P", "a"))} {
		if IsNil(s) {
			t.Errorf("IsNil(%s) = true", String(s))
		}
	}
}

func TestLabelHelpers(t *testing.T) {
	l := CommLabel("P", "T", "a+b")
	if l.Endpoint() != "P.T" || l.String() != "P.T(a+b)" || l.Key() != "P.T(a+b)" {
		t.Errorf("label rendering: %s / %s", l.Endpoint(), l)
	}
	if got := l.Origins(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Origins = %v", got)
	}
	k := KillLabelOf("q")
	if k.String() != "†q" || k.Endpoint() != "" {
		t.Errorf("kill label: %s / %q", k, k.Endpoint())
	}
	empty := CommLabel("P", "T", "-")
	if got := empty.Origins(); len(got) != 0 {
		t.Errorf("empty origins = %v", got)
	}
}
