package cows

import (
	"strings"
)

// String renders s in the textual syntax accepted by Parse:
//
//	P.T!<a,b>  [x]s  {|s|}  kill(k)  *s  s|s  g+g  P.T?<$x>.s  0
//
// Bound identifiers keep their source spelling (including freshness
// suffixes); use Canon for an alpha-invariant form.
func String(s Service) string {
	var b strings.Builder
	printInto(&b, s, precPar)
	return b.String()
}

// Operator precedence levels for parenthesization, loosest first.
const (
	precPar = iota
	precChoice
	precPrefix
)

func printInto(b *strings.Builder, s Service, ctx int) {
	switch t := s.(type) {
	case nil, Nil:
		b.WriteString("0")
	case *Invoke:
		b.WriteString(t.Partner)
		b.WriteByte('.')
		b.WriteString(t.Op)
		b.WriteString("!<")
		for i, a := range t.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			printExpr(b, a)
		}
		b.WriteByte('>')
	case *Request:
		printRequest(b, t)
	case *Choice:
		if ctx > precChoice {
			b.WriteByte('(')
		}
		for i, br := range t.Branches {
			if i > 0 {
				b.WriteString(" + ")
			}
			printRequest(b, br)
		}
		if ctx > precChoice {
			b.WriteByte(')')
		}
	case *Par:
		if ctx > precPar {
			b.WriteByte('(')
		}
		for i, k := range t.Kids {
			if i > 0 {
				b.WriteString(" | ")
			}
			printInto(b, k, precChoice)
		}
		if ctx > precPar {
			b.WriteByte(')')
		}
	case *Scope:
		b.WriteByte('[')
		b.WriteString(t.Ident)
		switch t.Kind {
		case DeclVar:
			b.WriteString(":var")
		case DeclKill:
			b.WriteString(":kill")
		}
		b.WriteByte(']')
		printInto(b, t.Body, precPrefix)
	case *Protect:
		b.WriteString("{|")
		printInto(b, t.Body, precPar)
		b.WriteString("|}")
	case *Kill:
		b.WriteString("kill(")
		b.WriteString(t.Label)
		b.WriteByte(')')
	case *Repl:
		b.WriteByte('*')
		printInto(b, t.Body, precPrefix)
	}
}

func printRequest(b *strings.Builder, r *Request) {
	b.WriteString(r.Partner)
	b.WriteByte('.')
	b.WriteString(r.Op)
	b.WriteString("?<")
	for i, p := range r.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		switch pt := p.(type) {
		case PLit:
			printAtom(b, string(pt))
		case PVar:
			b.WriteByte('$')
			b.WriteString(string(pt))
		}
	}
	b.WriteByte('>')
	if !IsNil(r.Cont) {
		b.WriteByte('.')
		printInto(b, r.Cont, precPrefix)
	}
}

// printAtom writes a literal value, quoting it when it is not a plain
// identifier (runtime values such as the empty origin set "-" or set
// values "T1+T2" must survive a print→parse round trip).
func printAtom(b *strings.Builder, v string) {
	if ParseFragmentName(v) == nil {
		b.WriteString(v)
		return
	}
	b.WriteByte('\'')
	b.WriteString(v)
	b.WriteByte('\'')
}

func printExpr(b *strings.Builder, e Expr) {
	switch t := e.(type) {
	case Lit:
		printAtom(b, string(t))
	case Var:
		b.WriteByte('$')
		b.WriteString(string(t))
	case *UnionExpr:
		b.WriteString("u(")
		for i, op := range t.Operands {
			if i > 0 {
				b.WriteByte(',')
			}
			printExpr(b, op)
		}
		b.WriteByte(')')
	}
}
