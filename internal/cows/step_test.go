package cows

import (
	"sort"
	"strings"
	"testing"
)

// run derives one transition step and returns the labels, failing the
// test on derivation errors.
func run(t *testing.T, e *Engine, s Service) []Transition {
	t.Helper()
	ts, err := e.Step(s)
	if err != nil {
		t.Fatalf("Step(%s): %v", String(s), err)
	}
	return ts
}

func labels(ts []Transition) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.Label.String()
	}
	sort.Strings(out)
	return out
}

// only asserts the service has exactly one transition and returns it.
func only(t *testing.T, e *Engine, s Service) Transition {
	t.Helper()
	ts := run(t, e, s)
	if len(ts) != 1 {
		t.Fatalf("expected exactly 1 transition from %s, got %v", String(s), labels(ts))
	}
	return ts[0]
}

func TestBasicSynchronization(t *testing.T) {
	s := MustParse("P.T!<> | P.T?<>.P.E!<> | P.E?<>")
	e := NewEngine()

	tr := only(t, e, s)
	if got, want := tr.Label.String(), "P.T"; got != want {
		t.Fatalf("first label = %q, want %q", got, want)
	}
	tr = only(t, e, tr.Next)
	if got, want := tr.Label.String(), "P.E"; got != want {
		t.Fatalf("second label = %q, want %q", got, want)
	}
	ts := run(t, e, tr.Next)
	if len(ts) != 0 {
		t.Fatalf("expected terminal state, got %v", labels(ts))
	}
	if !IsNil(Normalize(tr.Next)) {
		t.Fatalf("final state not nil: %s", String(tr.Next))
	}
}

func TestNoPartnerNoTransition(t *testing.T) {
	e := NewEngine()
	for _, src := range []string{"P.T!<>", "P.T?<>.0", "P.T!<> | P.U?<>", "P.T!<a> | P.T?<b>"} {
		ts := run(t, e, MustParse(src))
		if len(ts) != 0 {
			t.Errorf("%s: expected stuck, got %v", src, labels(ts))
		}
	}
}

func TestValuePassingBindsVariable(t *testing.T) {
	s := MustParse("P.T!<msg1> | [x] P.T?<$x>.Q.U!<$x> | Q.U?<msg1>.done.ok!<> | done.ok?<>")
	e := NewEngine()

	tr := only(t, e, s)
	if got, want := tr.Label.String(), "P.T(msg1)"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
	tr = only(t, e, tr.Next)
	if got, want := tr.Label.String(), "Q.U(msg1)"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
	tr = only(t, e, tr.Next)
	if got, want := tr.Label.String(), "done.ok"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
}

func TestLiteralParameterMatch(t *testing.T) {
	// Two requests on the same endpoint with different literal
	// patterns: only the matching one can synchronize.
	s := MustParse("P.T!<a> | P.T?<a>.P.yes!<> | P.T?<b>.P.no!<>")
	e := NewEngine()
	tr := only(t, e, s)
	ts := run(t, e, tr.Next)
	if len(ts) != 0 {
		t.Fatalf("expected stuck after match (no partner for P.yes), got %v", labels(ts))
	}
	if !strings.Contains(String(tr.Next), "yes") {
		t.Fatalf("wrong branch consumed: %s", String(tr.Next))
	}
	if !strings.Contains(String(tr.Next), "no") {
		t.Fatalf("non-matching branch should remain: %s", String(tr.Next))
	}
}

func TestChoiceCommitsToOneBranch(t *testing.T) {
	s := MustParse("P.a!<> | P.b!<> | P.a?<>.P.ra!<> + P.b?<>.P.rb!<>")
	e := NewEngine()
	ts := run(t, e, s)
	if got := labels(ts); len(got) != 2 || got[0] != "P.a" || got[1] != "P.b" {
		t.Fatalf("labels = %v, want [P.a P.b]", got)
	}
	// Taking P.a must discard the P.b branch of the choice: afterwards
	// the P.b invoke has no partner.
	var next Service
	for _, tr := range ts {
		if tr.Label.String() == "P.a" {
			next = tr.Next
		}
	}
	after := run(t, e, next)
	if len(after) != 0 {
		t.Fatalf("choice not committed, residual transitions %v", labels(after))
	}
}

func TestPrivateNamesDoNotCollide(t *testing.T) {
	// Two scopes both binding "sys": the invoke in one scope must not
	// synchronize with the request in the other.
	s := MustParse("[sys:name](sys.go!<>) | [sys:name](sys.go?<>.P.leak!<>)")
	e := NewEngine()
	ts := run(t, e, s)
	if len(ts) != 0 {
		t.Fatalf("cross-scope synchronization on private name: %v", labels(ts))
	}

	// Within one scope it synchronizes fine.
	s2 := MustParse("[sys:name](sys.go!<> | sys.go?<>.0)")
	tr := only(t, e, s2)
	if got, want := tr.Label.String(), "sys.go"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
}

func TestKillPriorityAndProtection(t *testing.T) {
	// kill(k) must preempt the available communication, terminate the
	// unprotected invoke and spare the protected one.
	s := MustParse("[k:kill]( kill(k) | P.a!<> | P.a?<>.0 | {|P.b!<>|} ) | P.b?<>.0")
	e := NewEngine()
	ts := run(t, e, s)
	if len(ts) != 1 || ts[0].Label.Kind != LKill {
		t.Fatalf("expected only the kill transition, got %v", labels(ts))
	}
	if got, want := ts[0].Label.String(), "†k"; got != want {
		t.Fatalf("kill label = %q, want %q", got, want)
	}
	// After the kill, only the protected invoke survives.
	tr := only(t, e, ts[0].Next)
	if got, want := tr.Label.String(), "P.b"; got != want {
		t.Fatalf("label after kill = %q, want %q", got, want)
	}
}

func TestReplicationServesMultipleClients(t *testing.T) {
	s := MustParse("P.T!<> | P.T!<> | *P.T?<>.P.E!<> | P.E?<> | P.E?<>")
	e := NewEngine()
	cur := s
	want := []string{"P.T", "P.E", "P.T", "P.E"}
	for i, w := range want {
		ts := run(t, e, cur)
		if len(ts) == 0 {
			t.Fatalf("step %d: stuck at %s", i, String(cur))
		}
		var chosen *Transition
		for j := range ts {
			if ts[j].Label.String() == w {
				chosen = &ts[j]
				break
			}
		}
		if chosen == nil {
			t.Fatalf("step %d: no %q among %v", i, w, labels(ts))
		}
		cur = chosen.Next
	}
	ts := run(t, e, cur)
	if len(ts) != 0 {
		t.Fatalf("expected quiescence, got %v", labels(ts))
	}
}

func TestReplicationUnfoldingIsGarbageCollected(t *testing.T) {
	// Stepping a service with an unused replication must not grow the
	// canonical state: s | *s ≡ *s.
	s := MustParse("P.a!<> | P.a?<>.0 | *Q.srv?<>.Q.done!<>")
	e := NewEngine()
	tr := only(t, e, s)
	if got, want := Canon(tr.Next), Canon(MustParse("*Q.srv?<>.Q.done!<>")); got != want {
		t.Fatalf("replication garbage not collected:\n got %s\nwant %s", got, want)
	}
}

func TestUnionExpressionMergesOrigins(t *testing.T) {
	s := MustParse("P.j!<u(T01,T02)> | [x] P.j?<$x>.P.next!<$x> | [y] P.next?<$y>.0")
	e := NewEngine()
	tr := only(t, e, s)
	if got, want := tr.Label.String(), "P.j(T01+T02)"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
	if got := tr.Label.Origins(); len(got) != 2 || got[0] != "T01" || got[1] != "T02" {
		t.Fatalf("origins = %v", got)
	}
	tr = only(t, e, tr.Next)
	if got, want := tr.Label.String(), "P.next(T01+T02)"; got != want {
		t.Fatalf("propagated label = %q, want %q", got, want)
	}
}

func TestStuckInvokeWithUnboundVariable(t *testing.T) {
	// An invoke whose argument variable is not yet bound cannot fire.
	s := MustParse("[x]( P.out!<$x> | P.in?<$x>.0 ) | P.in!<v>")
	e := NewEngine()
	ts := run(t, e, s)
	if got := labels(ts); len(got) != 1 || got[0] != "P.in(v)" {
		t.Fatalf("labels = %v, want [P.in(v)]", got)
	}
	tr := ts[0]
	// After binding, the invoke becomes executable... but with no
	// matching request it stays stuck; check the bound value is there.
	if !strings.Contains(String(tr.Next), "P.out!<v>") {
		t.Fatalf("substitution missing: %s", String(tr.Next))
	}
}

func TestDeterministicTransitionOrder(t *testing.T) {
	s := MustParse("P.b!<> | P.a!<> | P.a?<>.0 | P.b?<>.0")
	e1, e2 := NewEngine(), NewEngine()
	ts1 := run(t, e1, s)
	ts2 := run(t, e2, s)
	if len(ts1) != len(ts2) {
		t.Fatalf("nondeterministic transition count")
	}
	for i := range ts1 {
		if ts1[i].Label.String() != ts2[i].Label.String() {
			t.Fatalf("nondeterministic order: %v vs %v", labels(ts1), labels(ts2))
		}
		if Canon(ts1[i].Next) != Canon(ts2[i].Next) {
			t.Fatalf("nondeterministic successors at %d", i)
		}
	}
}

func TestTwoConcurrentInstancesOfReplicatedScope(t *testing.T) {
	// A replicated service with a private scope must give each
	// instance its own private name: the two pending continuations
	// must not cross-talk. Each instance does in.go -> sys.mid -> out.done.
	src := "*[sys:name]( P.go?<>.sys.mid!<> | sys.mid?<>.P.done!<> ) | P.go!<> | P.go!<> | P.done?<> | P.done?<>"
	s := MustParse(src)
	e := NewEngine()

	// Fire both P.go first, then both internal syncs, then both dones.
	seen := map[string]int{}
	cur := s
	for i := 0; i < 6; i++ {
		ts := run(t, e, cur)
		if len(ts) == 0 {
			t.Fatalf("stuck after %d steps (%v)", i, seen)
		}
		cur = ts[0].Next
		seen[ts[0].Label.String()]++
	}
	if seen["P.go"] != 2 || seen["sys.mid"] != 2 || seen["P.done"] != 2 {
		t.Fatalf("unexpected label multiset: %v", seen)
	}
	ts := run(t, e, cur)
	if len(ts) != 0 {
		t.Fatalf("expected quiescence, got %v", labels(ts))
	}
}

func TestScopeConsumedOnBinding(t *testing.T) {
	s := MustParse("[x]( P.r?<$x>.P.s!<$x> ) | P.r!<v> | P.s?<v>.0")
	e := NewEngine()
	tr := only(t, e, s)
	if strings.Contains(String(tr.Next), "[x]") {
		t.Fatalf("variable scope not consumed: %s", String(tr.Next))
	}
	tr = only(t, e, tr.Next)
	if got, want := tr.Label.String(), "P.s(v)"; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
}

func TestNonLinearPatternRequiresEqualValues(t *testing.T) {
	e := NewEngine()
	s := MustParse("[x] P.r?<$x,$x>.0 | P.r!<a,b>")
	if ts := run(t, e, s); len(ts) != 0 {
		t.Fatalf("non-linear pattern matched unequal values: %v", labels(ts))
	}
	s2 := MustParse("[x] P.r?<$x,$x>.0 | P.r!<a,a>")
	if ts := run(t, e, s2); len(ts) != 1 {
		t.Fatalf("non-linear pattern failed on equal values")
	}
}
