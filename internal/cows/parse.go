package cows

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a COWS service from its textual syntax:
//
//	service  := par
//	par      := term ( '|' term )*
//	term     := '*' term
//	          | '[' ident (':' ('name'|'var'|'kill'))? ']' term
//	          | '{|' par '|}'
//	          | 'kill' '(' ident ')'
//	          | '0'
//	          | '(' par ')'
//	          | choice
//	choice   := activity ( '+' activity )*
//	activity := ident '.' ident ( '!' '<' args '>' | '?' '<' params '>' ( '.' term )? )
//	args     := ( arg (',' arg)* )?     arg   := ident | '$'ident | 'u(' arg (',' arg)* ')'
//	params   := ( param (',' param)* )?  param := ident | '$'ident
//
// When a scope omits its kind annotation it is inferred: kill if the body
// contains kill(ident); var if ident occurs as a '$'-variable in the body;
// name otherwise. Whitespace and //-to-end-of-line comments are ignored.
func Parse(src string) (Service, error) {
	p := &parser{lex: newLexer(src)}
	s, err := p.parsePar()
	if err != nil {
		return nil, err
	}
	if tok := p.lex.peek(); tok.kind != tokEOF {
		return nil, fmt.Errorf("cows: unexpected %q at offset %d", tok.text, tok.pos)
	}
	return s, nil
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(src string) Service {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokZero   // 0
	tokStar   // *
	tokPipe   // |
	tokPlus   // +
	tokDot    // .
	tokBang   // !
	tokQuest  // ?
	tokLT     // <
	tokGT     // >
	tokLBrak  // [
	tokRBrak  // ]
	tokLParen // (
	tokRParen // )
	tokComma  // ,
	tokColon  // :
	tokDollar // $
	tokLProt  // {|
	tokRProt  // |}
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	peeked *token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) peek() token {
	if l.peeked == nil {
		t := l.scan()
		l.peeked = &t
	}
	return *l.peeked
}

func (l *lexer) next() token {
	t := l.peek()
	l.peeked = nil
	return t
}

func (l *lexer) scan() token {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "{|":
		l.pos += 2
		return token{kind: tokLProt, text: two, pos: start}
	case two == "|}":
		l.pos += 2
		return token{kind: tokRProt, text: two, pos: start}
	}
	single := map[byte]tokKind{
		'*': tokStar, '|': tokPipe, '+': tokPlus, '.': tokDot, '!': tokBang,
		'?': tokQuest, '<': tokLT, '>': tokGT, '[': tokLBrak, ']': tokRBrak,
		'(': tokLParen, ')': tokRParen, ',': tokComma, ':': tokColon, '$': tokDollar,
	}
	if k, ok := single[c]; ok {
		l.pos++
		return token{kind: k, text: string(c), pos: start}
	}
	if c == '\'' {
		// Quoted atom: a literal value that is not identifier-shaped
		// (e.g. "-" or "T1+T2" from serialized runtime states).
		end := l.pos + 1
		for end < len(l.src) && l.src[end] != '\'' && l.src[end] != '\n' {
			end++
		}
		if end >= len(l.src) || l.src[end] != '\'' {
			return token{kind: tokEOF, text: "unterminated quote", pos: start}
		}
		text := l.src[l.pos+1 : end]
		l.pos = end + 1
		return token{kind: tokIdent, text: text, pos: start}
	}
	if c == '0' && (l.pos+1 >= len(l.src) || !isIdentByte(l.src[l.pos+1])) {
		l.pos++
		return token{kind: tokZero, text: "0", pos: start}
	}
	if isIdentStart(rune(c)) || (c >= '0' && c <= '9') {
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}
	}
	l.pos++
	return token{kind: tokEOF, text: string(c), pos: start}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentByte(b byte) bool {
	return b == '_' || b == '-' || b == '~' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

type parser struct {
	lex *lexer
}

func (p *parser) parsePar() (Service, error) {
	first, err := p.parseTerm(true)
	if err != nil {
		return nil, err
	}
	kids := []Service{first}
	for p.lex.peek().kind == tokPipe {
		p.lex.next()
		t, err := p.parseTerm(true)
		if err != nil {
			return nil, err
		}
		kids = append(kids, t)
	}
	return Parallel(kids...), nil
}

// parseTerm parses one term. When allowChoice is false the term stops
// before a '+' (prefix binds tighter than choice), so activity
// continuations do not swallow outer choice branches.
func (p *parser) parseTerm(allowChoice bool) (Service, error) {
	tok := p.lex.peek()
	switch tok.kind {
	case tokZero:
		p.lex.next()
		return Nil{}, nil
	case tokStar:
		p.lex.next()
		body, err := p.parseTerm(allowChoice)
		if err != nil {
			return nil, err
		}
		return &Repl{Body: body}, nil
	case tokLBrak:
		return p.parseScope(allowChoice)
	case tokLProt:
		p.lex.next()
		body, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRProt); err != nil {
			return nil, err
		}
		return &Protect{Body: body}, nil
	case tokLParen:
		p.lex.next()
		body, err := p.parsePar()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return body, nil
	case tokIdent:
		if tok.text == "kill" {
			return p.parseKill(allowChoice)
		}
		return p.parseChoice(allowChoice)
	default:
		return nil, fmt.Errorf("cows: unexpected %q at offset %d", tok.text, tok.pos)
	}
}

func (p *parser) parseKill(allowChoice bool) (Service, error) {
	// Lookahead: "kill(" is the activity; a plain ident "kill" used as
	// a partner would be followed by '.', which we also support.
	kw := p.lex.next() // "kill"
	if p.lex.peek().kind != tokLParen {
		// It was an endpoint partner named "kill"; rewind is not
		// supported, so parse the rest of the activity here.
		return p.parseChoiceFromPartner(kw.text, allowChoice)
	}
	p.lex.next()
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return &Kill{Label: id}, nil
}

func (p *parser) parseScope(allowChoice bool) (Service, error) {
	p.lex.next() // '['
	ident, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	kind := DeclKind(-1)
	if p.lex.peek().kind == tokColon {
		p.lex.next()
		k, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch k {
		case "name":
			kind = DeclName
		case "var":
			kind = DeclVar
		case "kill":
			kind = DeclKill
		default:
			return nil, fmt.Errorf("cows: unknown scope kind %q", k)
		}
	}
	if err := p.expect(tokRBrak); err != nil {
		return nil, err
	}
	body, err := p.parseTerm(allowChoice)
	if err != nil {
		return nil, err
	}
	if kind == DeclKind(-1) {
		kind = inferKind(body, ident)
	}
	return &Scope{Kind: kind, Ident: ident, Body: body}, nil
}

// inferKind guesses what an unannotated scope binds by inspecting how the
// identifier is used in the body.
func inferKind(body Service, ident string) DeclKind {
	if usesAsKill(body, ident) {
		return DeclKill
	}
	if usesAsVar(body, ident) {
		return DeclVar
	}
	return DeclName
}

func usesAsKill(s Service, ident string) bool {
	switch t := s.(type) {
	case *Kill:
		return t.Label == ident
	case *Request:
		return usesAsKill(t.Cont, ident)
	case *Choice:
		for _, b := range t.Branches {
			if usesAsKill(b, ident) {
				return true
			}
		}
	case *Par:
		for _, k := range t.Kids {
			if usesAsKill(k, ident) {
				return true
			}
		}
	case *Scope:
		if t.Ident == ident {
			return false
		}
		return usesAsKill(t.Body, ident)
	case *Protect:
		return usesAsKill(t.Body, ident)
	case *Repl:
		return usesAsKill(t.Body, ident)
	}
	return false
}

func usesAsVar(s Service, ident string) bool {
	switch t := s.(type) {
	case *Invoke:
		for _, a := range t.Args {
			if exprUsesVar(a, ident) {
				return true
			}
		}
	case *Request:
		for _, prm := range t.Params {
			if v, ok := prm.(PVar); ok && string(v) == ident {
				return true
			}
		}
		return usesAsVar(t.Cont, ident)
	case *Choice:
		for _, b := range t.Branches {
			if usesAsVar(b, ident) {
				return true
			}
		}
	case *Par:
		for _, k := range t.Kids {
			if usesAsVar(k, ident) {
				return true
			}
		}
	case *Scope:
		if t.Ident == ident {
			return false
		}
		return usesAsVar(t.Body, ident)
	case *Protect:
		return usesAsVar(t.Body, ident)
	case *Repl:
		return usesAsVar(t.Body, ident)
	}
	return false
}

func exprUsesVar(e Expr, ident string) bool {
	switch t := e.(type) {
	case Var:
		return string(t) == ident
	case *UnionExpr:
		for _, op := range t.Operands {
			if exprUsesVar(op, ident) {
				return true
			}
		}
	}
	return false
}

func (p *parser) parseChoice(allowChoice bool) (Service, error) {
	partner, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return p.parseChoiceFromPartner(partner, allowChoice)
}

func (p *parser) parseChoiceFromPartner(partner string, allowChoice bool) (Service, error) {
	first, err := p.parseActivity(partner)
	if err != nil {
		return nil, err
	}
	req, isReq := first.(*Request)
	if !isReq {
		if allowChoice && p.lex.peek().kind == tokPlus {
			return nil, fmt.Errorf("cows: invoke activity cannot be a choice branch (offset %d)", p.lex.peek().pos)
		}
		return first, nil
	}
	branches := []*Request{req}
	for allowChoice && p.lex.peek().kind == tokPlus {
		p.lex.next()
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		act, err := p.parseActivity(pn)
		if err != nil {
			return nil, err
		}
		r, ok := act.(*Request)
		if !ok {
			return nil, fmt.Errorf("cows: choice branches must be request activities")
		}
		branches = append(branches, r)
	}
	return Sum(branches...), nil
}

// parseActivity parses the remainder of an activity whose partner name
// was already consumed.
func (p *parser) parseActivity(partner string) (Service, error) {
	if err := p.expect(tokDot); err != nil {
		return nil, err
	}
	op, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	switch p.lex.peek().kind {
	case tokBang:
		p.lex.next()
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		return &Invoke{Partner: partner, Op: op, Args: args}, nil
	case tokQuest:
		p.lex.next()
		params, err := p.parseParams()
		if err != nil {
			return nil, err
		}
		cont := Service(Nil{})
		if p.lex.peek().kind == tokDot {
			p.lex.next()
			cont, err = p.parseTerm(false)
			if err != nil {
				return nil, err
			}
		}
		return &Request{Partner: partner, Op: op, Params: params, Cont: cont}, nil
	default:
		tok := p.lex.peek()
		return nil, fmt.Errorf("cows: expected '!' or '?' after endpoint %s.%s at offset %d", partner, op, tok.pos)
	}
}

func (p *parser) parseArgs() ([]Expr, error) {
	if err := p.expect(tokLT); err != nil {
		return nil, err
	}
	var args []Expr
	if p.lex.peek().kind != tokGT {
		for {
			a, err := p.parseArg()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.lex.peek().kind != tokComma {
				break
			}
			p.lex.next()
		}
	}
	if err := p.expect(tokGT); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) parseArg() (Expr, error) {
	tok := p.lex.peek()
	switch tok.kind {
	case tokDollar:
		p.lex.next()
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return Var(id), nil
	case tokIdent:
		p.lex.next()
		if tok.text == "u" && p.lex.peek().kind == tokLParen {
			p.lex.next()
			var ops []Expr
			for {
				a, err := p.parseArg()
				if err != nil {
					return nil, err
				}
				ops = append(ops, a)
				if p.lex.peek().kind != tokComma {
					break
				}
				p.lex.next()
			}
			if err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return Union(ops...), nil
		}
		return Lit(tok.text), nil
	case tokZero:
		p.lex.next()
		return Lit("0"), nil
	default:
		return nil, fmt.Errorf("cows: expected argument at offset %d, found %q", tok.pos, tok.text)
	}
}

func (p *parser) parseParams() ([]Pattern, error) {
	if err := p.expect(tokLT); err != nil {
		return nil, err
	}
	var params []Pattern
	if p.lex.peek().kind != tokGT {
		for {
			tok := p.lex.next()
			switch tok.kind {
			case tokDollar:
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				params = append(params, PVar(id))
			case tokIdent:
				params = append(params, PLit(tok.text))
			case tokZero:
				params = append(params, PLit("0"))
			default:
				return nil, fmt.Errorf("cows: expected parameter at offset %d, found %q", tok.pos, tok.text)
			}
			if p.lex.peek().kind != tokComma {
				break
			}
			p.lex.next()
		}
	}
	if err := p.expect(tokGT); err != nil {
		return nil, err
	}
	return params, nil
}

func (p *parser) expect(kind tokKind) error {
	tok := p.lex.next()
	if tok.kind != kind {
		return fmt.Errorf("cows: unexpected %q at offset %d", tok.text, tok.pos)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	tok := p.lex.next()
	if tok.kind != tokIdent {
		return "", fmt.Errorf("cows: expected identifier at offset %d, found %q", tok.pos, tok.text)
	}
	return tok.text, nil
}

// ParseFragmentName is a helper exposing identifier syntax checks to
// other packages (the BPMN validator rejects element names that would
// not survive a round trip through the textual syntax).
func ParseFragmentName(name string) error {
	if name == "" {
		return fmt.Errorf("cows: empty identifier")
	}
	if strings.ContainsAny(name, "~+") {
		return fmt.Errorf("cows: identifier %q uses reserved character (~ or +)", name)
	}
	for i, r := range name {
		if i == 0 && !isIdentStart(r) && !(r >= '0' && r <= '9') {
			return fmt.Errorf("cows: identifier %q starts with invalid character", name)
		}
		if r > 127 || !isIdentByte(byte(r)) {
			return fmt.Errorf("cows: identifier %q contains invalid character %q", name, r)
		}
	}
	return nil
}
