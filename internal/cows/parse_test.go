package cows

import (
	"strings"
	"testing"
)

func TestParseRoundTrips(t *testing.T) {
	// Parse → String → Parse must converge; Canon must agree across
	// both parses.
	sources := []string{
		`0`,
		`P.T!<>`,
		`P.T?<>`,
		`P.T?<>.P.E!<>`,
		`P.T!<> | P.T?<>.P.E!<> | P.E?<>`,
		`P.a?<>.0 + P.b?<>.0`,
		`P.a?<>.P.x!<> + P.b?<>.P.y!<> + P.c?<>.0`,
		`*P.T?<>.P.E!<>`,
		`[x:var] P.T?<$x>.P.E!<$x>`,
		`[sys:name](sys.go!<> | sys.go?<>.0)`,
		`[k:kill](kill(k) | {|P.b!<>|})`,
		`P.T!<a,b,c>`,
		`P.j!<u(a,b)>`,
		`[z:var] P1.S2?<$z>.P1.T1!<>`,
		`{|P.a!<> | P.b?<>.0|}`,
		`*[x:var] P.G?<$x>.[k:kill][sys:name](sys.c1!<> | sys.c1?<>.(kill(k) | {|P.b1!<$x>|}))`,
		`(P.a?<>.0 + P.b?<>.0) | P.a!<>`,
	}
	for _, src := range sources {
		s1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		printed := String(s1)
		s2, err := Parse(printed)
		if err != nil {
			t.Errorf("reparse of %q (printed %q): %v", src, printed, err)
			continue
		}
		if Canon(s1) != Canon(s2) {
			t.Errorf("round trip changed term: %q -> %q\n canon1 %s\n canon2 %s",
				src, printed, Canon(s1), Canon(s2))
		}
	}
}

func TestParseScopeKindInference(t *testing.T) {
	cases := []struct {
		src  string
		want DeclKind
	}{
		{`[k](kill(k) | P.a!<>)`, DeclKill},
		{`[x] P.T?<$x>.0`, DeclVar},
		{`[x] P.T!<$x>`, DeclVar},
		{`[sys](sys.a!<> | sys.a?<>.0)`, DeclName},
		{`[n] P.a!<>`, DeclName}, // unused: defaults to name
	}
	for _, c := range cases {
		s, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		sc, ok := s.(*Scope)
		if !ok {
			t.Errorf("Parse(%q): not a scope, %T", c.src, s)
			continue
		}
		if sc.Kind != c.want {
			t.Errorf("Parse(%q): inferred %v, want %v", c.src, sc.Kind, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`P.`,
		`P.T`,
		`P.T!`,
		`P.T!<`,
		`P.T!<a`,
		`P.T?<>.`,
		`P.T!<> |`,
		`P.a!<> + P.b?<>.0`, // invoke in choice
		`P.a?<>.0 + P.b!<>`, // invoke as later branch
		`[`,
		`[x`,
		`[x]`,
		`[x:frob] 0`,
		`{|P.a!<>`,
		`kill(`,
		`kill()`,
		`(P.a!<>`,
		`P.T?<$>.0`,
		`P.T!<> extra`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	src := `
		// the classic three-element pipeline
		P.T!<>            // start
		| P.T?<>.P.E!<>   // task
		| P.E?<>          // end
	`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := Canon(s); got != Canon(MustParse(`P.T!<> | P.T?<>.P.E!<> | P.E?<>`)) {
		t.Errorf("comment handling changed term: %s", got)
	}
}

func TestParsePrecedence(t *testing.T) {
	// Prefix binds tighter than choice; parallel is loosest.
	s := MustParse(`P.a?<>.P.x!<> + P.b?<>.0 | P.c!<>`)
	par, ok := s.(*Par)
	if !ok || len(par.Kids) != 2 {
		t.Fatalf("top level should be a 2-ary parallel, got %s", String(s))
	}
	if _, ok := par.Kids[0].(*Choice); !ok {
		t.Fatalf("first kid should be a choice, got %T", par.Kids[0])
	}
	// Continuation does not swallow '+': the branch continuation is
	// just the invoke.
	ch := par.Kids[0].(*Choice)
	if len(ch.Branches) != 2 {
		t.Fatalf("choice has %d branches", len(ch.Branches))
	}
	if _, ok := ch.Branches[0].Cont.(*Invoke); !ok {
		t.Fatalf("branch continuation should be the invoke, got %T", ch.Branches[0].Cont)
	}
}

func TestParseKillAsPartnerName(t *testing.T) {
	// "kill" followed by '.' is an endpoint partner, not the activity.
	s, err := Parse(`kill.op!<>`)
	if err != nil {
		t.Fatal(err)
	}
	inv, ok := s.(*Invoke)
	if !ok || inv.Partner != "kill" || inv.Op != "op" {
		t.Fatalf("got %s", String(s))
	}
}

func TestParseFragmentName(t *testing.T) {
	good := []string{"T01", "GP", "a_b", "x-1", "Radiologist", "p9"}
	for _, n := range good {
		if err := ParseFragmentName(n); err != nil {
			t.Errorf("ParseFragmentName(%q): %v", n, err)
		}
	}
	bad := []string{"", "a~b", "a+b", "a.b", "a b", "é", "[x]"}
	for _, n := range bad {
		if err := ParseFragmentName(n); err == nil {
			t.Errorf("ParseFragmentName(%q) succeeded, want error", n)
		}
	}
}

func TestPrinterParenthesization(t *testing.T) {
	// A choice nested under replication must be parenthesized so it
	// reparses identically.
	s := Replicate(Sum(
		Req("P", "a", nil, Zero()),
		Req("P", "b", nil, Zero()),
	))
	printed := String(s)
	re, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if Canon(s) != Canon(re) {
		t.Fatalf("parenthesization broken: %q", printed)
	}
	if !strings.Contains(printed, "(") {
		t.Fatalf("expected parentheses in %q", printed)
	}
}

func TestQuotedAtoms(t *testing.T) {
	// Runtime states carry non-identifier literal values (the empty
	// origin set "-", set values "T1+T2"); print→parse must round-trip
	// them.
	s := Parallel(
		Inv("P", "T", "-"),
		Inv("P", "J", "T1+T2"),
		Req("P", "J", []string{"T1+T2"}, Zero()),
	)
	printed := String(s)
	re, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse %q: %v", printed, err)
	}
	if Canon(s) != Canon(re) {
		t.Fatalf("round trip changed term:\n %s\n %s", Canon(s), Canon(re))
	}
	// Direct quoted syntax.
	q := MustParse(`P.T!<'-'> | P.J!<'a+b'>`)
	if !strings.Contains(String(q), "'-'") {
		t.Fatalf("quoting lost: %s", String(q))
	}
	// Unterminated quote errors.
	if _, err := Parse(`P.T!<'oops>`); err == nil {
		t.Fatalf("unterminated quote accepted")
	}
}
