package cows

import "testing"

// FuzzParse checks two properties over arbitrary inputs: the parser
// never panics, and for accepted inputs the print→reparse round trip
// converges to the same canonical term.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"0",
		"P.T!<>",
		"P.T?<>.P.E!<>",
		"P.T!<> | P.T?<>.P.E!<> | P.E?<>",
		"P.a?<>.0 + P.b?<>.0",
		"*[x:var] P.G?<$x>.[k:kill][sys:name](sys.c!<> | sys.c?<>.(kill(k) | {|P.b!<$x>|}))",
		"[z:var] P1.S2?<$z>.P1.T1!<>",
		"P.j!<u(a,b)>",
		"kill(k)",
		"{|P.a!<>|}",
		"[x] P.T?<$x,$x>.0",
		"((((P.a!<>))))",
		"P..!<>",
		"[:var] 0",
		"+",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		printed := String(s)
		re, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %q -> %q: %v", src, printed, err)
		}
		if Canon(s) != Canon(re) {
			t.Fatalf("round trip changed term: %q -> %q", src, printed)
		}
	})
}

// FuzzStepTerminates checks the derivation engine never panics and
// always terminates on parseable terms (bounded by construction: Step is
// one derivation, not a closure).
func FuzzStepTerminates(f *testing.F) {
	for _, s := range []string{
		"P.T!<> | P.T?<>.0",
		"*P.T?<>.P.T!<> | P.T!<>",
		"[k:kill](kill(k) | P.a!<>)",
		"[x:var](P.r?<$x>.P.s!<$x>) | P.r!<v>",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return
		}
		e := NewEngine()
		ts, err := e.Step(s)
		if err != nil {
			return // unbound variables etc. are legitimate errors
		}
		for _, tr := range ts {
			_ = Canon(tr.Next)
			_ = tr.Label.String()
		}
	})
}
