package encode

// Compiled-automaton artifacts (DESIGN.md §11). A purpose automaton is
// serialized as a single gzip-compressed JSON envelope, versioned and
// content-addressed: the file name is the automaton fingerprint — a
// hash over the canonical COWS term, the compiler version and every
// semantic knob — so a cache directory can hold artifacts for many
// purposes, flag combinations and compiler versions side by side, and
// a loader that computes the expected fingerprint from its own inputs
// can never pick up a stale or mismatched table.

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/automaton"
	"repro/internal/bpmn"
	"repro/internal/lts"
	"repro/internal/policy"
)

// ArtifactMagic identifies the envelope; ArtifactVersion is the
// envelope format version (the table layout itself is versioned by
// automaton.CompilerVersion inside).
const (
	ArtifactMagic   = "purpose-automaton-artifact"
	ArtifactVersion = 1
)

// ErrArtifactMismatch reports an artifact whose identity does not
// match what the loader expected (wrong magic, version, or
// fingerprint). Callers treat it like a cache miss.
var ErrArtifactMismatch = errors.New("encode: automaton artifact mismatch")

// artifactEnvelope is the on-disk JSON shape.
type artifactEnvelope struct {
	Magic       string         `json:"magic"`
	Version     int            `json:"version"`
	Fingerprint string         `json:"fingerprint"`
	Automaton   *automaton.DFA `json:"automaton"`
}

// WriteAutomaton serializes a compiled automaton to w (gzip + JSON).
func WriteAutomaton(w io.Writer, d *automaton.DFA) error {
	zw := gzip.NewWriter(w)
	env := artifactEnvelope{
		Magic:       ArtifactMagic,
		Version:     ArtifactVersion,
		Fingerprint: d.Fingerprint,
		Automaton:   d,
	}
	if err := json.NewEncoder(zw).Encode(&env); err != nil {
		zw.Close()
		return fmt.Errorf("encode automaton: %w", err)
	}
	return zw.Close()
}

// ReadAutomaton deserializes an artifact and validates it (envelope
// identity, then the automaton's own table invariants via Finish).
func ReadAutomaton(r io.Reader) (*automaton.DFA, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("%w: not gzip: %v", ErrArtifactMismatch, err)
	}
	defer zr.Close()
	var env artifactEnvelope
	if err := json.NewDecoder(zr).Decode(&env); err != nil {
		return nil, fmt.Errorf("decode automaton: %w", err)
	}
	if env.Magic != ArtifactMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrArtifactMismatch, env.Magic)
	}
	if env.Version != ArtifactVersion {
		return nil, fmt.Errorf("%w: envelope version %d, want %d", ErrArtifactMismatch, env.Version, ArtifactVersion)
	}
	if env.Automaton == nil {
		return nil, fmt.Errorf("%w: empty automaton", ErrArtifactMismatch)
	}
	if env.Automaton.Fingerprint != env.Fingerprint {
		return nil, fmt.Errorf("%w: envelope fingerprint %.12s != automaton %.12s",
			ErrArtifactMismatch, env.Fingerprint, env.Automaton.Fingerprint)
	}
	if err := env.Automaton.Finish(); err != nil {
		return nil, fmt.Errorf("invalid automaton artifact: %w", err)
	}
	return env.Automaton, nil
}

// ArtifactPath is the content-addressed location of an automaton with
// the given fingerprint inside dir.
func ArtifactPath(dir, fingerprint string) string {
	return filepath.Join(dir, fingerprint+".dfa.json.gz")
}

// SaveAutomaton writes d into dir under its content address
// (temp file + rename, so concurrent writers of the same fingerprint
// are harmless) and returns the final path.
func SaveAutomaton(dir string, d *automaton.DFA) (string, error) {
	if d.Fingerprint == "" {
		return "", errors.New("encode: automaton has no fingerprint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	tmp, err := os.CreateTemp(dir, ".dfa-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())
	if err := WriteAutomaton(tmp, d); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	path := ArtifactPath(dir, d.Fingerprint)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", err
	}
	return path, nil
}

// LoadAutomaton loads the artifact with the given fingerprint from
// dir: the flat binary artifact if present (binary.go), else the
// gzip+JSON envelope as the compatibility reader. A missing file
// returns os.ErrNotExist; a file whose content does not carry that
// fingerprint returns ErrArtifactMismatch. A present-but-corrupt
// binary fails loudly rather than silently falling back — the two
// files are written by different flags, not redundant copies.
func LoadAutomaton(dir, fingerprint string) (*automaton.DFA, error) {
	if bin := BinaryArtifactPath(dir, fingerprint); fileExists(bin) {
		return loadAutomatonBinary(bin, fingerprint)
	}
	f, err := os.Open(ArtifactPath(dir, fingerprint))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadAutomaton(f)
	if err != nil {
		return nil, err
	}
	if d.Fingerprint != fingerprint {
		return nil, fmt.Errorf("%w: loaded fingerprint %.12s, want %.12s",
			ErrArtifactMismatch, d.Fingerprint, fingerprint)
	}
	return d, nil
}

// fileExists reports whether path exists (any stat error counts as
// absent; the subsequent open surfaces real problems).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// CompileInput assembles the automaton compiler input for a process:
// the canonical encoding, the purpose's own observability, the task
// alphabet with pool roles, and the role hierarchy. Flags and caps are
// zero — callers overlay their own before compiling so the fingerprint
// reflects the semantics they will replay with.
func CompileInput(p *bpmn.Process, roles *policy.RoleHierarchy) (automaton.CompileInput, error) {
	initial, err := Encode(p)
	if err != nil {
		return automaton.CompileInput{}, err
	}
	in := automaton.CompileInput{
		Purpose:    p.Name,
		Initial:    initial,
		Observable: Observability(p),
		Roles:      roles,
	}
	for _, task := range p.Tasks() {
		in.Tasks = append(in.Tasks, automaton.TaskSpec{Name: task, Role: p.TaskRole(task)})
	}
	return in, nil
}

// CompileProcess is the one-call path used by the CLIs: assemble the
// input, compile, and return the DFA.
func CompileProcess(p *bpmn.Process, roles *policy.RoleHierarchy, opts ...lts.Option) (*automaton.DFA, error) {
	in, err := CompileInput(p, roles)
	if err != nil {
		return nil, err
	}
	in.System = NewSystem(p, opts...)
	return automaton.Compile(in)
}
