package encode_test

// Compatibility tests for the flat binary artifact (DESIGN.md §13):
// both containers — binary and gzip+JSON — must decode to identical
// DFA tables and fingerprints, and a damaged binary file must be
// rejected, never half-loaded.

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/automaton"
	"repro/internal/encode"
	"repro/internal/hospital"
)

func compileTreatmentMinimized(t *testing.T) *automaton.DFA {
	t.Helper()
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	in, err := encode.CompileInput(p, roles)
	if err != nil {
		t.Fatal(err)
	}
	in.System = encode.NewSystem(p)
	in.Minimize = true
	d, err := automaton.Compile(in)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// requireSameDFA demands two decoded automata agree on every table the
// replay path touches.
func requireSameDFA(t *testing.T, a, b *automaton.DFA) {
	t.Helper()
	if a.Fingerprint != b.Fingerprint || a.Start != b.Start ||
		a.Minimized != b.Minimized || a.Columns != b.Columns {
		t.Fatalf("identity differs: %s vs %s", a.Stats(), b.Stats())
	}
	if !reflect.DeepEqual(a.Delta, b.Delta) || !reflect.DeepEqual(a.SymMap, b.SymMap) {
		t.Fatal("transition tables differ")
	}
	if !reflect.DeepEqual(a.States, b.States) || !reflect.DeepEqual(a.Configs, b.Configs) {
		t.Fatal("state or config tables differ")
	}
	if !reflect.DeepEqual(a.Terms, b.Terms) || !reflect.DeepEqual(a.ActiveSets, b.ActiveSets) {
		t.Fatal("term or active-set tables differ")
	}
	if !reflect.DeepEqual(a.RoleClass, b.RoleClass) || !reflect.DeepEqual(a.Classes, b.Classes) {
		t.Fatal("role class tables differ")
	}
}

func TestBinaryArtifactRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name    string
		compile func(*testing.T) *automaton.DFA
	}{
		{"dense", compileTreatment},
		{"minimized", compileTreatmentMinimized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.compile(t)
			var bin bytes.Buffer
			if err := encode.WriteAutomatonBinary(&bin, d); err != nil {
				t.Fatal(err)
			}
			got, err := encode.ReadAutomatonBinary(bin.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			requireSameDFA(t, d, got)

			// The two container formats must be interchangeable: the
			// gzip+JSON envelope of the same automaton decodes to the
			// same tables.
			var env bytes.Buffer
			if err := encode.WriteAutomaton(&env, d); err != nil {
				t.Fatal(err)
			}
			fromJSON, err := encode.ReadAutomaton(bytes.NewReader(env.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			requireSameDFA(t, got, fromJSON)
		})
	}
}

// TestBinaryArtifactSaveLoad pins the loader's format auto-detection:
// with only a binary artifact on disk LoadAutomaton uses it, with only
// the envelope it falls back, and a stale address is rejected.
func TestBinaryArtifactSaveLoad(t *testing.T) {
	d := compileTreatment(t)
	dir := t.TempDir()
	path, err := encode.SaveAutomatonBinary(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if path != encode.BinaryArtifactPath(dir, d.Fingerprint) {
		t.Fatalf("saved to %q, want content address", path)
	}
	got, err := encode.LoadAutomaton(dir, d.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDFA(t, d, got)

	// Binary under a wrong content address is a mismatch, not a load.
	if err := os.Rename(path, encode.BinaryArtifactPath(dir, "deadbeef")); err != nil {
		t.Fatal(err)
	}
	if _, err := encode.LoadAutomaton(dir, "deadbeef"); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("mismatched binary artifact: err = %v, want ErrArtifactMismatch", err)
	}
}

func TestBinaryArtifactRejectsCorruption(t *testing.T) {
	d := compileTreatment(t)
	var buf bytes.Buffer
	if err := encode.WriteAutomatonBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()

	// Wrong magic.
	if _, err := encode.ReadAutomatonBinary([]byte("not a container")); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("bad magic accepted: %v", err)
	}
	// Truncation at every interesting boundary.
	for _, n := range []int{0, 7, 16, 23, len(img) / 2, len(img) - 1} {
		if _, err := encode.ReadAutomatonBinary(img[:n]); err == nil {
			t.Fatalf("truncated image (%d bytes) accepted", n)
		}
	}
	// A single flipped payload byte fails the CRC.
	bad := append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xff
	if _, err := encode.ReadAutomatonBinary(bad); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("corrupt payload accepted: %v", err)
	}
	// Wrong container kind.
	var ckpt bytes.Buffer
	if err := encode.WriteContainer(&ckpt, encode.KindCheckpoint, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := encode.ReadAutomatonBinary(ckpt.Bytes()); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("checkpoint container accepted as automaton: %v", err)
	}
}

func TestContainerSections(t *testing.T) {
	secs := []encode.Section{
		{ID: 9, Data: []byte("alpha")},
		{ID: 4, Data: nil},
		{ID: 7, Data: encode.Int32Section([]int32{-1, 0, 1 << 20})},
	}
	var buf bytes.Buffer
	if err := encode.WriteContainer(&buf, encode.KindCheckpoint, secs); err != nil {
		t.Fatal(err)
	}
	got, err := encode.ReadContainer(buf.Bytes(), encode.KindCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[9]) != "alpha" || len(got[4]) != 0 {
		t.Fatalf("sections round-tripped wrong: %q %q", got[9], got[4])
	}
	ints, err := encode.ReadInt32Section(got[7])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ints, []int32{-1, 0, 1 << 20}) {
		t.Fatalf("int32 section round-tripped to %v", ints)
	}
	if _, err := encode.ReadInt32Section([]byte{1, 2, 3}); err == nil {
		t.Fatal("ragged int32 section accepted")
	}
}

func TestStringTableSection(t *testing.T) {
	for _, tc := range [][]string{
		nil,
		{""},
		{"a", "", "long \x00 binary \n term", "a"},
	} {
		got, err := encode.ReadStringTableSection(encode.StringTableSection(tc))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(tc) {
			t.Fatalf("%d strings round-tripped to %d", len(tc), len(got))
		}
		for i := range tc {
			if got[i] != tc[i] {
				t.Fatalf("string %d: %q != %q", i, got[i], tc[i])
			}
		}
	}
	if _, err := encode.ReadStringTableSection([]byte{0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("oversized string table header accepted")
	}
}

// TestRecordFrameRoundTrip covers the framing shared with the WAL:
// appended frames read back exactly, a short buffer is truncation (the
// torn-tail signal), and a flipped bit in a complete frame is
// corruption (ErrArtifactMismatch), never silently accepted.
func TestRecordFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("x"),
		[]byte("hello record frame"),
		bytes.Repeat([]byte{0xab}, 4096),
	}
	var buf []byte
	for _, p := range payloads {
		buf = encode.AppendRecordFrame(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		got, n, err := encode.ReadRecordFrame(rest)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: payload differs", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after the last frame", len(rest))
	}

	// Every strict prefix of a frame is truncation, not corruption.
	one := encode.AppendRecordFrame(nil, []byte("acknowledged"))
	for cut := 0; cut < len(one); cut++ {
		_, _, err := encode.ReadRecordFrame(one[:cut])
		if !errors.Is(err, encode.ErrFrameTruncated) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrFrameTruncated", cut, err)
		}
	}
	// A zero length (zero-filled torn tail) is truncation too.
	if _, _, err := encode.ReadRecordFrame(make([]byte, 64)); !errors.Is(err, encode.ErrFrameTruncated) {
		t.Fatalf("zeroed tail: err = %v, want ErrFrameTruncated", err)
	}
	// A complete frame with any byte flipped is loud corruption.
	for _, bit := range []int{0, 5, len(one) - 1} {
		bad := append([]byte(nil), one...)
		bad[bit] ^= 0x40
		_, _, err := encode.ReadRecordFrame(bad)
		if err == nil && bit != 0 {
			t.Fatalf("flipped byte %d accepted", bit)
		}
		if err != nil && !errors.Is(err, encode.ErrArtifactMismatch) && !errors.Is(err, encode.ErrFrameTruncated) {
			t.Fatalf("flipped byte %d: err = %v, want ErrArtifactMismatch or truncation", bit, err)
		}
	}
}
