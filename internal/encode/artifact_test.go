package encode_test

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"testing"

	"repro/internal/automaton"
	"repro/internal/encode"
	"repro/internal/hospital"
)

func compileTreatment(t *testing.T) *automaton.DFA {
	t.Helper()
	p, err := hospital.Treatment()
	if err != nil {
		t.Fatal(err)
	}
	roles, err := hospital.Roles()
	if err != nil {
		t.Fatal(err)
	}
	d, err := encode.CompileProcess(p, roles)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestArtifactRoundTrip(t *testing.T) {
	d := compileTreatment(t)
	var buf bytes.Buffer
	if err := encode.WriteAutomaton(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := encode.ReadAutomaton(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != d.Fingerprint || got.NumStates() != d.NumStates() ||
		got.NumSymbols() != d.NumSymbols() {
		t.Fatalf("round trip changed identity: %s vs %s", got.Stats(), d.Stats())
	}
	if !reflect.DeepEqual(got.Delta, d.Delta) {
		t.Fatal("round trip changed the transition table")
	}
	if !reflect.DeepEqual(got.States, d.States) {
		t.Fatal("round trip changed state metadata")
	}
}

func TestArtifactSaveLoad(t *testing.T) {
	d := compileTreatment(t)
	dir := t.TempDir()
	path, err := encode.SaveAutomaton(dir, d)
	if err != nil {
		t.Fatal(err)
	}
	if path != encode.ArtifactPath(dir, d.Fingerprint) {
		t.Fatalf("saved to %q, want content address", path)
	}
	got, err := encode.LoadAutomaton(dir, d.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != d.Fingerprint {
		t.Fatal("load returned a different automaton")
	}
	// A fingerprint with no artifact is a plain cache miss.
	if _, err := encode.LoadAutomaton(dir, "deadbeef"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing artifact: err = %v, want ErrNotExist", err)
	}
	// A file whose content disagrees with its address is rejected.
	if err := os.Rename(path, encode.ArtifactPath(dir, "deadbeef")); err != nil {
		t.Fatal(err)
	}
	if _, err := encode.LoadAutomaton(dir, "deadbeef"); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("mismatched artifact: err = %v, want ErrArtifactMismatch", err)
	}
}

func TestArtifactRejectsCorruption(t *testing.T) {
	d := compileTreatment(t)
	var buf bytes.Buffer
	if err := encode.WriteAutomaton(&buf, d); err != nil {
		t.Fatal(err)
	}
	// Not gzip at all.
	if _, err := encode.ReadAutomaton(bytes.NewReader([]byte("{}"))); !errors.Is(err, encode.ErrArtifactMismatch) {
		t.Fatalf("plain JSON accepted: %v", err)
	}
	// Truncated stream.
	if _, err := encode.ReadAutomaton(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated artifact accepted")
	}
}
